module ndlog

go 1.24
