// Command ndcheck is the NDlog static analyzer front end. It parses
// each program, runs every analysis pass (Definition 6 validity,
// arity/type inference, safety, lifetime dataflow, reachability, and
// lints — see DESIGN.md §9 for the catalogue), and prints all findings
// as "file:line:col: severity: message [check-id]" diagnostics. It can
// also report the rewrites the planner would perform — the localized
// rule set (Algorithm 2) and detected aggregate-selection
// opportunities (Section 5.1.1).
//
// Usage:
//
//	ndcheck program.ndl...
//	ndcheck -json program.ndl
//	ndcheck -Werror -localize program.ndl
//
// Exit status is 0 when no errors were found (warnings alone do not
// fail the build), 1 when any file has an error (or fails to parse),
// and 2 on usage errors. -Werror promotes warnings to errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ndlog/internal/analysis"
	"ndlog/internal/parser"
	"ndlog/internal/planner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the stable -json wire shape of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Check    string `json:"check"`
	Rule     string `json:"rule,omitempty"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ndcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	localize := fs.Bool("localize", false, "print the localized program")
	verbose := fs.Bool("v", false, "print analysis details")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	werror := fs.Bool("Werror", false, "treat warnings as errors")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ndcheck [flags] program.ndl...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}

	var all []jsonDiag
	failed := false
	for _, file := range fs.Args() {
		diags, ok := checkFile(file, *localize, *verbose, *asJSON, *werror, stdout, stderr)
		all = append(all, diags...)
		if !ok {
			failed = true
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiag{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "ndcheck:", err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

// checkFile analyzes one file. It returns the diagnostics in JSON shape
// (for -json aggregation) and whether the file is error-free.
func checkFile(file string, localize, verbose, asJSON, werror bool, stdout, stderr io.Writer) ([]jsonDiag, bool) {
	src, err := os.ReadFile(file)
	if err != nil {
		return reportFatal(file, "read", err, asJSON, stderr), false
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return reportFatal(file, "parse", err, asJSON, stderr), false
	}

	diags := analysis.Analyze(prog)
	if werror {
		for i := range diags {
			diags[i].Severity = analysis.Error
		}
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: file, Line: d.Pos.Line, Col: d.Pos.Col,
			Severity: d.Severity.String(), Check: d.Check, Rule: d.Rule, Message: d.Msg,
		})
		if !asJSON {
			fmt.Fprintln(stdout, d.Format(file))
		}
	}
	if analysis.HasErrors(diags) {
		return out, false
	}

	if !asJSON && len(diags) == 0 {
		fmt.Fprintf(stdout, "%s: OK (%d rules, %d facts, %d materialized tables)\n",
			file, len(prog.Rules), len(prog.Facts), len(prog.Materialized))
	}
	if verbose && !asJSON {
		links := planner.LinkRelations(prog)
		fmt.Fprintf(stdout, "link relations: %v\n", keys(links))
		idb := planner.IDBPredicates(prog)
		fmt.Fprintf(stdout, "derived predicates: %v\n", keys(idb))
		local, nonLocal := 0, 0
		for _, r := range prog.Rules {
			if r.IsLocal() {
				local++
			} else {
				nonLocal++
			}
		}
		fmt.Fprintf(stdout, "rules: %d local, %d link-restricted non-local\n", local, nonLocal)
		for _, sel := range planner.DetectAggSelections(prog) {
			note := "not prunable"
			if sel.Prunable() {
				note = "prunable"
			}
			fmt.Fprintf(stdout, "aggregate selection: %s over %s (%s, group %v, value col %d) — %s\n",
				sel.AggPred, sel.SrcPred, sel.Func, sel.GroupCols, sel.ValueCol, note)
		}
	}
	if localize && !asJSON {
		lp, err := planner.Localize(prog)
		if err != nil {
			fmt.Fprintln(stderr, "ndcheck: localize:", err)
			return out, false
		}
		fmt.Fprintln(stdout, "\n// localized program (Algorithm 2):")
		fmt.Fprint(stdout, lp.String())
	}
	return out, true
}

// reportFatal renders a read or parse failure, which has no source
// position of its own, as a file-level error diagnostic.
func reportFatal(file, stage string, err error, asJSON bool, stderr io.Writer) []jsonDiag {
	if !asJSON {
		fmt.Fprintf(stderr, "%s: error: %s: %v [%s]\n", file, stage, err, stage)
	}
	return []jsonDiag{{File: file, Severity: "error", Check: stage, Message: err.Error()}}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
