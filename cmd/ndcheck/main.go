// Command ndcheck statically checks NDlog programs: the Definition 6
// validity constraints (location specificity, address type safety,
// stored link relations, link restriction), plus reports the rewrites
// the planner would perform — the localized rule set (Algorithm 2) and
// detected aggregate-selection opportunities (Section 5.1.1).
//
// Usage:
//
//	ndcheck program.ndl
//	ndcheck -localize program.ndl
package main

import (
	"flag"
	"fmt"
	"os"

	"ndlog/internal/parser"
	"ndlog/internal/planner"
)

func main() {
	localize := flag.Bool("localize", false, "print the localized program")
	verbose := flag.Bool("v", false, "print analysis details")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ndcheck [flags] program.ndl")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fail(fmt.Errorf("parse: %w", err))
	}
	if err := planner.Check(prog); err != nil {
		fail(err)
	}
	fmt.Printf("%s: OK (%d rules, %d facts, %d materialized tables)\n",
		flag.Arg(0), len(prog.Rules), len(prog.Facts), len(prog.Materialized))

	if *verbose {
		links := planner.LinkRelations(prog)
		fmt.Printf("link relations: %v\n", keys(links))
		idb := planner.IDBPredicates(prog)
		fmt.Printf("derived predicates: %v\n", keys(idb))
		local, nonLocal := 0, 0
		for _, r := range prog.Rules {
			if r.IsLocal() {
				local++
			} else {
				nonLocal++
			}
		}
		fmt.Printf("rules: %d local, %d link-restricted non-local\n", local, nonLocal)
		for _, sel := range planner.DetectAggSelections(prog) {
			note := "not prunable"
			if sel.Prunable() {
				note = "prunable"
			}
			fmt.Printf("aggregate selection: %s over %s (%s, group %v, value col %d) — %s\n",
				sel.AggPred, sel.SrcPred, sel.Func, sel.GroupCols, sel.ValueCol, note)
		}
	}

	if *localize {
		lp, err := planner.Localize(prog)
		if err != nil {
			fail(fmt.Errorf("localize: %w", err))
		}
		fmt.Println("\n// localized program (Algorithm 2):")
		fmt.Print(lp.String())
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ndcheck:", err)
	os.Exit(1)
}
