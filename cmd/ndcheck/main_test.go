package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const (
	cleanFile    = "../../testdata/shortestpath.ndl"
	errorFile    = "../../testdata/analysis/multi.ndl"
	warnOnlyFile = "../../testdata/analysis/singleton.ndl"
)

func runCheck(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitCodeClean(t *testing.T) {
	code, out, _ := runCheck(t, cleanFile)
	if code != 0 {
		t.Fatalf("clean file: exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "OK") {
		t.Errorf("clean file should print OK summary, got:\n%s", out)
	}
}

func TestExitCodeErrors(t *testing.T) {
	code, out, _ := runCheck(t, errorFile)
	if code != 1 {
		t.Fatalf("file with errors: exit %d, want 1", code)
	}
	for _, want := range []string{"error:", "[lifetime]", "[safety]", "[arity]", "[agg-arg]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every diagnostic must carry a real file:line:col prefix.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, errorFile+":") {
			t.Errorf("diagnostic without file prefix: %q", line)
		}
	}
}

func TestExitCodeWarningsOnly(t *testing.T) {
	code, out, _ := runCheck(t, warnOnlyFile)
	if code != 0 {
		t.Fatalf("warnings-only file: exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "warning:") {
		t.Errorf("warnings should still be printed:\n%s", out)
	}
}

func TestWerrorPromotesWarnings(t *testing.T) {
	code, out, _ := runCheck(t, "-Werror", warnOnlyFile)
	if code != 1 {
		t.Fatalf("-Werror on warnings-only file: exit %d, want 1", code)
	}
	if strings.Contains(out, "warning:") || !strings.Contains(out, "error:") {
		t.Errorf("-Werror should render promoted diagnostics as errors:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runCheck(t, "-json", errorFile)
	if code != 1 {
		t.Fatalf("-json exit %d, want 1", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(diags) < 3 {
		t.Fatalf("want >=3 diagnostics, got %d", len(diags))
	}
	for _, d := range diags {
		if d.File != errorFile || d.Line <= 0 || d.Col <= 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runCheck(t, "-json", cleanFile)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output should be [], got %q", out)
	}
}

func TestMultipleFilesAggregated(t *testing.T) {
	code, out, _ := runCheck(t, "-json", cleanFile, errorFile)
	if code != 1 {
		t.Fatalf("one bad file should fail the whole run: exit %d", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, d := range diags {
		if d.File == cleanFile {
			t.Errorf("clean file should contribute no diagnostics: %+v", d)
		}
	}
}

func TestParseFailureIsError(t *testing.T) {
	code, _, stderr := runCheck(t, "main_test.go") // not an .ndl program
	if code != 1 {
		t.Fatalf("unparseable file: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "error") {
		t.Errorf("parse failure should be reported on stderr: %q", stderr)
	}
}

func TestUsageError(t *testing.T) {
	if code, _, _ := runCheck(t); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
}
