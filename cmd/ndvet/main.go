// Command ndvet runs the repo's custom Go invariant lints (see
// internal/govet): atomic-counter discipline and the parallel-worker
// interner-capture check. It is stdlib-only — the usual
// golang.org/x/tools analysis driver is not vendored in this build
// environment, so internal/govet provides the framework.
//
// Usage:
//
//	ndvet ./internal/...
//	ndvet internal/engine internal/netrun
//
// Exit status is 0 when no findings survive suppression, 1 otherwise,
// 2 on usage errors. Suppress an intentional finding with a
// "//ndvet:ok <reason>" comment on the flagged line or the line above.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"

	"ndlog/internal/govet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ndvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ndvet package-dir...   (dir/... walks recursively)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	dirs, err := govet.ExpandPatterns(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "ndvet:", err)
		return 2
	}
	fset := token.NewFileSet()
	pkgs, err := govet.Load(fset, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "ndvet:", err)
		return 1
	}
	diags := govet.Run(fset, pkgs, []*govet.Analyzer{govet.AtomicCounter, govet.InternerCapture})
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
