// Command ndnode runs one shard of a sharded NDlog deployment: it
// hosts the shard's nodes as real UDP sockets (internal/netrun) and
// speaks the coordinator control protocol (internal/shard).
//
// Usage:
//
//	ndnode -manifest deploy.json -shard 0 -coord 127.0.0.1:9000
//	ndnode -manifest deploy.json -shard 1            # static book, no coordinator
//
// With -coord, the process joins the coordinator handshake: it reports
// its ephemeral node addresses, receives the merged cluster book,
// seeds its home facts on the start barrier, answers gather queries,
// and exits on the coordinator's stop. Without -coord, every node
// address in the manifest must be static ("host:port"); the shard
// seeds immediately and serves until killed — the multi-machine
// deployment mode, one ndnode per host.
//
// ndlog -shards N spawns this same worker loop via re-exec; ndnode is
// the standalone entry point for manifests you write yourself.
package main

import (
	"flag"
	"fmt"
	"os"

	"ndlog/internal/shard"
)

func main() {
	// Re-exec entry: a coordinator may spawn ndnode itself with the
	// worker environment set.
	if handled, err := shard.MaybeRunWorker(); handled {
		if err != nil {
			fail(err)
		}
		return
	}

	manifest := flag.String("manifest", "", "deployment manifest (JSON)")
	shardID := flag.Int("shard", -1, "shard id to run (from the manifest)")
	coord := flag.String("coord", "", "coordinator control address (empty: static book, run until killed)")
	coordTimeout := flag.Duration("coord-timeout", 0, "max coordinator silence before exiting (0: 60s default)")
	data := flag.String("data", "", "override the manifest's data directory (WAL + snapshots; empty: use manifest)")
	parallel := flag.Int("parallel", -1, "override the manifest's parallelism: per-node worker pool for seeds and rederivation sweeps (0: GOMAXPROCS, 1: sequential; negative: use manifest)")
	psnBatch := flag.Int("psn-batch", -1, "override the manifest's psn_batch: flush PSN trigger strands every N deltas (0 or 1: tuple-at-a-time; negative: use manifest)")
	sharedSockets := flag.Bool("shared-sockets", false, "force the shared-socket receive path (small socket set + bounded demux pool) regardless of the manifest")
	groupCommit := flag.Bool("group-commit", false, "force one shard-wide WAL (single fsync per drain) regardless of the manifest")
	verbose := flag.Bool("v", false, "log shard lifecycle to stderr")
	flag.Parse()

	if *manifest == "" || *shardID < 0 {
		fmt.Fprintln(os.Stderr, "usage: ndnode -manifest deploy.json -shard N [-coord host:port]")
		flag.Usage()
		os.Exit(2)
	}
	m, err := shard.Load(*manifest)
	if err != nil {
		fail(err)
	}
	if *data != "" {
		m.Options.DataDir = *data
	}
	if *parallel >= 0 {
		m.Options.Parallelism = *parallel
	}
	if *psnBatch >= 0 {
		m.Options.PSNBatch = *psnBatch
	}
	if *sharedSockets {
		m.Options.SharedSockets = true
	}
	if *groupCommit {
		m.Options.GroupCommit = true
	}
	cfg := shard.WorkerConfig{Manifest: m, ShardID: *shardID, Coord: *coord, CoordTimeout: *coordTimeout}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ndnode: "+format+"\n", args...)
		}
	}
	if err := shard.RunWorker(cfg); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ndnode:", err)
	os.Exit(1)
}
