package main

import (
	"os"
	"testing"

	"ndlog/internal/parser"
)

func loadTestProgram(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/shortestpath.ndl")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func TestFactAddresses(t *testing.T) {
	prog, err := parser.Parse(loadTestProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	addrs := factAddresses(prog)
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true}
	if len(addrs) != len(want) {
		t.Fatalf("addresses = %v", addrs)
	}
	for _, a := range addrs {
		if !want[a] {
			t.Errorf("unexpected address %q", a)
		}
	}
}

func TestLinkPairs(t *testing.T) {
	prog, err := parser.Parse(loadTestProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	pairs := linkPairs(prog)
	if len(pairs) != 10 {
		t.Fatalf("pairs = %d, want 10 (5 bidirectional links)", len(pairs))
	}
	seen := map[[2]string]bool{}
	for _, p := range pairs {
		seen[p] = true
	}
	for _, must := range [][2]string{{"a", "b"}, {"b", "a"}, {"e", "a"}} {
		if !seen[must] {
			t.Errorf("missing pair %v", must)
		}
	}
}

func TestLinkPairsIgnoresNonLinkFacts(t *testing.T) {
	prog, err := parser.Parse(`
r1 p(@S) :- #edge(@S,@D).
edge(a, b).
other(a, b).
short(a).
`)
	if err != nil {
		t.Fatal(err)
	}
	pairs := linkPairs(prog)
	if len(pairs) != 1 || pairs[0] != [2]string{"a", "b"} {
		t.Errorf("pairs = %v", pairs)
	}
}
