// Command ndlog runs an NDlog program. By default it evaluates the
// program at a single site (centralized); with -dist it deploys one
// runtime per address mentioned in the program's facts over the
// discrete-event simulator, connecting nodes according to the link
// facts.
//
// Usage:
//
//	ndlog program.ndl                 # centralized evaluation
//	ndlog -dist -latency 10ms prog.ndl
//	ndlog -dump path,shortestPath prog.ndl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ndlog/internal/ast"
	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

func main() {
	dist := flag.Bool("dist", false, "distributed execution over the simulator")
	latency := flag.Duration("latency", 10*time.Millisecond, "link latency for distributed execution")
	aggsel := flag.Bool("aggsel", true, "enable aggregate selections")
	arena := flag.Bool("arena", false, "per-drain arena interning for transient tuples (long-running forwarding workloads)")
	dump := flag.String("dump", "", "comma-separated extra predicates to print")
	trace := flag.Bool("trace", false, "trace derivations of watched predicates")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ndlog [flags] program.ndl")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fail(err)
	}

	opts := engine.Options{AggSel: *aggsel, ArenaIntern: *arena}
	if *trace && len(prog.Watches) > 0 {
		watched := map[string]bool{}
		for _, w := range prog.Watches {
			watched[w] = true
		}
		opts.OnDerive = func(nodeID, rule string, d engine.Delta) {
			if watched[d.Tuple.Pred] {
				fmt.Printf("watch [%s] %s: %s\n", nodeID, rule, d)
			}
		}
	}

	var results func(pred string) []val.Tuple
	var queryPred string
	if prog.Query != nil {
		queryPred = prog.Query.Pred
	}

	if *dist {
		sim := simnet.New(1)
		cl, err := engine.NewCluster(sim, prog, opts, engine.ClusterConfig{ProcDelay: 0.001})
		if err != nil {
			fail(err)
		}
		for _, id := range factAddresses(prog) {
			cl.AddNode(simnet.NodeID(id))
		}
		for _, l := range linkPairs(prog) {
			if !sim.HasLink(simnet.NodeID(l[0]), simnet.NodeID(l[1])) {
				if err := sim.AddLink(simnet.NodeID(l[0]), simnet.NodeID(l[1]), latency.Seconds(), 0); err != nil {
					fail(err)
				}
			}
		}
		ok, err := cl.Run(50_000_000)
		if err != nil {
			fail(err)
		}
		if !ok {
			fail(fmt.Errorf("execution did not quiesce"))
		}
		fmt.Printf("// distributed: %d nodes, %d messages, %d bytes, converged at %.3fs\n",
			len(cl.Nodes()), sim.Messages(), sim.Bytes(), sim.LastDelivery())
		results = cl.Tuples
	} else {
		c, err := engine.NewCentral(prog, opts)
		if err != nil {
			fail(err)
		}
		c.LoadFacts()
		results = c.Tuples
	}

	printed := map[string]bool{}
	if queryPred != "" {
		printPred(queryPred, results(queryPred))
		printed[queryPred] = true
	}
	for _, pred := range strings.Split(*dump, ",") {
		pred = strings.TrimSpace(pred)
		if pred == "" || printed[pred] {
			continue
		}
		printPred(pred, results(pred))
		printed[pred] = true
	}
}

func printPred(pred string, tuples []val.Tuple) {
	fmt.Printf("// %s: %d tuples\n", pred, len(tuples))
	for _, t := range tuples {
		fmt.Printf("%s.\n", t)
	}
}

// factAddresses collects every address constant in the program's facts:
// the node population for distributed execution.
func factAddresses(p *ast.Program) []string {
	seen := map[string]bool{}
	var out []string
	add := func(v val.Value) {
		if v.Kind() == val.KindAddr && !seen[v.Addr()] {
			seen[v.Addr()] = true
			out = append(out, v.Addr())
		}
	}
	for _, f := range p.Facts {
		for _, v := range f.Fields {
			add(v)
		}
	}
	return out
}

// linkPairs returns the (src,dst) pairs of the program's link-relation
// facts, determining simulator connectivity.
func linkPairs(p *ast.Program) [][2]string {
	links := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			if a.Link {
				links[a.Pred] = true
			}
		}
	}
	var out [][2]string
	for _, f := range p.Facts {
		if !links[f.Pred] || len(f.Fields) < 2 {
			continue
		}
		if f.Fields[0].Kind() != val.KindAddr || f.Fields[1].Kind() != val.KindAddr {
			continue
		}
		out = append(out, [2]string{f.Fields[0].Addr(), f.Fields[1].Addr()})
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ndlog:", err)
	os.Exit(1)
}
