// Command ndlog runs an NDlog program. By default it evaluates the
// program at a single site (centralized); with -dist it deploys one
// runtime per address mentioned in the program's facts over the
// discrete-event simulator, connecting nodes according to the link
// facts; with -parallel N it runs the same population inside one
// process with independent nodes drained concurrently by N workers;
// with -shards N it deploys the population as N real OS processes
// exchanging tuples over loopback UDP (internal/shard).
//
// Usage:
//
//	ndlog program.ndl                 # centralized evaluation
//	ndlog -dist -latency 10ms prog.ndl
//	ndlog -parallel 4 prog.ndl        # one runtime per node, 4 workers
//	ndlog -shards 3 prog.ndl          # 3 worker processes over UDP
//	ndlog -shards 3 -data ./state prog.ndl   # durable workers (WAL + snapshots)
//	ndlog -dump path,shortestPath prog.ndl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ndlog/internal/ast"
	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/shard"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

func main() {
	// Re-exec entry: `ndlog -shards N` spawns copies of this binary as
	// shard workers, selected by environment (see internal/shard).
	if handled, err := shard.MaybeRunWorker(); handled {
		if err != nil {
			fail(err)
		}
		return
	}

	dist := flag.Bool("dist", false, "distributed execution over the simulator")
	parallel := flag.Int("parallel", 0, "in-process parallel execution: one runtime per node address, drained concurrently by N workers (0: off; negative: GOMAXPROCS workers); with -shards, bounds each worker's per-node pool instead")
	shards := flag.Int("shards", 0, "deploy as N OS processes over loopback UDP (0: off)")
	migrate := flag.String("migrate", "", "with -shards: migrate nodes mid-run, e.g. 'c@1' or 'c@1,d@2' (node@target-shard)")
	data := flag.String("data", "", "with -shards: persist worker state (WAL + snapshots) under this directory; workers respawn warm from it")
	idle := flag.Duration("idle", 500*time.Millisecond, "quiescence idle window for -shards")
	timeout := flag.Duration("timeout", 60*time.Second, "convergence timeout for -shards")
	latency := flag.Duration("latency", 10*time.Millisecond, "link latency for distributed execution")
	aggsel := flag.Bool("aggsel", true, "enable aggregate selections")
	arena := flag.Bool("arena", false, "per-drain arena interning for transient tuples (long-running forwarding workloads)")
	psnBatch := flag.Int("psn-batch", 0, "batch-at-a-time PSN: flush trigger strands every N deltas (0 or 1: tuple-at-a-time; fixpoints are byte-identical either way)")
	sharedSockets := flag.Bool("shared-sockets", false, "with -shards: route each worker's nodes through a shared socket set drained by a bounded demux pool instead of one socket+goroutine per node")
	groupCommit := flag.Bool("group-commit", false, "with -shards -data: one shard-wide WAL per worker (one fsync per drain instead of one per node)")
	dump := flag.String("dump", "", "comma-separated extra predicates to print")
	trace := flag.Bool("trace", false, "trace derivations of watched predicates")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ndlog [flags] program.ndl")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fail(err)
	}

	opts := engine.Options{AggSel: *aggsel, ArenaIntern: *arena, PSNBatch: *psnBatch}
	if *trace && len(prog.Watches) > 0 {
		watched := map[string]bool{}
		for _, w := range prog.Watches {
			watched[w] = true
		}
		opts.OnDerive = func(nodeID, rule string, d engine.Delta) {
			if watched[d.Tuple.Pred] {
				fmt.Printf("watch [%s] %s: %s\n", nodeID, rule, d)
			}
		}
	}

	var results func(pred string) []val.Tuple
	var queryPred string
	if prog.Query != nil {
		queryPred = prog.Query.Pred
	}

	var cleanup func()
	if *shards > 0 {
		if *trace {
			fmt.Fprintln(os.Stderr, "ndlog: -trace has no effect with -shards (derivations happen in worker processes)")
		}
		migs, err := parseMigrations(*migrate)
		if err != nil {
			fail(err)
		}
		sOpts := shard.Options{
			AggSel: *aggsel, ArenaIntern: *arena, DataDir: *data,
			Parallelism: max(*parallel, 0), PSNBatch: *psnBatch,
			SharedSockets: *sharedSockets, GroupCommit: *groupCommit,
		}
		results, cleanup, err = runSharded(string(src), prog, *shards, migs, sOpts, *idle, *timeout)
		if err != nil {
			fail(err)
		}
	} else if *parallel != 0 {
		// In-process parallel executor: one runtime per node address,
		// independent nodes drained concurrently on a bounded worker pool
		// sharing a concurrent interner. Real concurrency, no modeled
		// latency — the multi-core counterpart of -dist.
		if *parallel > 0 {
			opts.Parallelism = *parallel
		} // negative: leave 0, which resolves to GOMAXPROCS
		p, err := engine.NewParallel(prog, opts)
		if err != nil {
			fail(err)
		}
		for _, id := range factAddresses(prog) {
			p.AddNode(id)
		}
		start := time.Now()
		if err := p.Run(); err != nil {
			fail(err)
		}
		fmt.Printf("// parallel: %d nodes, %d workers, %d undeliverable, converged in %.3fs\n",
			len(p.Nodes()), p.Workers(), p.Undeliverable(), time.Since(start).Seconds())
		results = p.Tuples
	} else if *dist {
		sim := simnet.New(1)
		cl, err := engine.NewCluster(sim, prog, opts, engine.ClusterConfig{ProcDelay: 0.001})
		if err != nil {
			fail(err)
		}
		for _, id := range factAddresses(prog) {
			cl.AddNode(simnet.NodeID(id))
		}
		for _, l := range linkPairs(prog) {
			if !sim.HasLink(simnet.NodeID(l[0]), simnet.NodeID(l[1])) {
				if err := sim.AddLink(simnet.NodeID(l[0]), simnet.NodeID(l[1]), latency.Seconds(), 0); err != nil {
					fail(err)
				}
			}
		}
		ok, err := cl.Run(50_000_000)
		if err != nil {
			fail(err)
		}
		if !ok {
			fail(fmt.Errorf("execution did not quiesce"))
		}
		fmt.Printf("// distributed: %d nodes, %d messages, %d bytes, converged at %.3fs\n",
			len(cl.Nodes()), sim.Messages(), sim.Bytes(), sim.LastDelivery())
		results = cl.Tuples
	} else {
		c, err := engine.NewCentral(prog, opts)
		if err != nil {
			fail(err)
		}
		c.LoadFacts()
		results = c.Tuples
	}

	printed := map[string]bool{}
	if queryPred != "" {
		printPred(queryPred, results(queryPred))
		printed[queryPred] = true
	}
	for _, pred := range strings.Split(*dump, ",") {
		pred = strings.TrimSpace(pred)
		if pred == "" || printed[pred] {
			continue
		}
		printPred(pred, results(pred))
		printed[pred] = true
	}
	if cleanup != nil {
		cleanup()
	}
}

// parseMigrations parses a -migrate spec: comma-separated node@shard
// moves, applied as one rebalance plan after the deployment starts.
func parseMigrations(spec string) ([]shard.Migration, error) {
	if spec == "" {
		return nil, nil
	}
	var migs []shard.Migration
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		node, shardStr, ok := strings.Cut(part, "@")
		if !ok || node == "" {
			return nil, fmt.Errorf("bad -migrate entry %q (want node@shard)", part)
		}
		id, err := strconv.Atoi(shardStr)
		if err != nil {
			return nil, fmt.Errorf("bad -migrate shard in %q: %v", part, err)
		}
		migs = append(migs, shard.Migration{Node: node, To: id})
	}
	return migs, nil
}

// runSharded deploys the program as N worker processes (re-execs of
// this binary) over loopback UDP, optionally rebalances nodes mid-run,
// waits for convergence, and returns a live gather function plus the
// teardown. The manifest carries the program source inline so every
// worker parses identical text.
func runSharded(src string, prog *ast.Program, shards int, migs []shard.Migration, sOpts shard.Options, idle, timeout time.Duration) (func(pred string) []val.Tuple, func(), error) {
	ids := factAddresses(prog)
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("no node addresses in program facts")
	}
	if sOpts.DataDir != "" {
		// Workers resolve relative DataDir against their own cwd; pin it.
		abs, err := filepath.Abs(sOpts.DataDir)
		if err != nil {
			return nil, nil, err
		}
		sOpts.DataDir = abs
	}
	m := &shard.Manifest{
		Source:  src,
		Options: sOpts,
		Shards:  shard.Partition(ids, shards),
	}
	dir, err := os.MkdirTemp("", "ndlog-shards-")
	if err != nil {
		return nil, nil, err
	}
	manifestPath := dir + "/manifest.json"
	if err := m.Save(manifestPath); err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	coord, err := shard.NewCoordinator(m)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	self, err := os.Executable()
	if err != nil {
		coord.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	start := time.Now()
	err = coord.Spawn(func(shardID int) *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(), shard.WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
		cmd.Stderr = os.Stderr
		return cmd
	})
	if err != nil {
		// Spawn killed any partially started workers.
		coord.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		if err := coord.Shutdown(10 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "ndlog:", err)
		}
		os.RemoveAll(dir)
	}
	if err := coord.WaitReady(15 * time.Second); err != nil {
		cleanup()
		return nil, nil, err
	}
	// Mid-run elasticity demo: rebalance the requested nodes onto their
	// target shards under a new epoch, then converge as usual.
	if len(migs) > 0 {
		rep, err := coord.Rebalance(migs, idle, timeout)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		fmt.Printf("// rebalance: epoch %d, %d nodes moved, %d state bytes, quiesce-wait %.3fs, pause %.3fs\n",
			rep.Epoch, len(rep.Moved), rep.StateBytes,
			rep.QuiesceWait.Seconds(), rep.Pause.Seconds())
	}
	// Converge, recovering from datagram loss: an unbalanced ledger
	// after quiescence means a delta went missing — re-seed the home
	// facts (soft-state refresh) and wait again.
	for attempt := 0; ; attempt++ {
		if !coord.WaitQuiescent(idle, timeout) {
			cleanup()
			return nil, nil, fmt.Errorf("sharded execution did not quiesce within %v", timeout)
		}
		if coord.LedgerBalanced() {
			break
		}
		if attempt >= 3 {
			fmt.Fprintln(os.Stderr, "ndlog: warning: datagram loss persisted through reseeds; results may be incomplete")
			break
		}
		coord.Reseed()
	}
	stats := coord.TotalStats()
	fmt.Printf("// sharded: %d processes, %d nodes, %d messages, %d bytes, converged in %.3fs\n",
		len(m.Shards), m.NodeCount(), stats.SentMessages, stats.SentBytes,
		time.Since(start).Seconds())
	results := func(pred string) []val.Tuple {
		ts, err := coord.Tuples(pred, 10*time.Second)
		if err != nil {
			// Tear the fleet down before exiting: fail() skips cleanup.
			cleanup()
			fail(err)
		}
		return ts
	}
	return results, cleanup, nil
}

func printPred(pred string, tuples []val.Tuple) {
	fmt.Printf("// %s: %d tuples\n", pred, len(tuples))
	for _, t := range tuples {
		fmt.Printf("%s.\n", t)
	}
}

// factAddresses collects every address constant in the program's facts:
// the node population for distributed execution.
func factAddresses(p *ast.Program) []string {
	seen := map[string]bool{}
	var out []string
	add := func(v val.Value) {
		if v.Kind() == val.KindAddr && !seen[v.Addr()] {
			seen[v.Addr()] = true
			out = append(out, v.Addr())
		}
	}
	for _, f := range p.Facts {
		for _, v := range f.Fields {
			add(v)
		}
	}
	return out
}

// linkPairs returns the (src,dst) pairs of the program's link-relation
// facts, determining simulator connectivity.
func linkPairs(p *ast.Program) [][2]string {
	links := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			if a.Link {
				links[a.Pred] = true
			}
		}
	}
	var out [][2]string
	for _, f := range p.Facts {
		if !links[f.Pred] || len(f.Fields) < 2 {
			continue
		}
		if f.Fields[0].Kind() != val.KindAddr || f.Fields[1].Kind() != val.KindAddr {
			continue
		}
		out = append(out, [2]string{f.Fields[0].Addr(), f.Fields[1].Addr()})
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ndlog:", err)
	os.Exit(1)
}
