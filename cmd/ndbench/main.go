// Command ndbench regenerates the paper's evaluation figures
// (Section 6) on the simulated testbed. Each -fig value corresponds to a
// figure in the paper; output is the textual series the figure plots.
//
// Usage:
//
//	ndbench -fig 7            # aggregate selections, bandwidth
//	ndbench -fig 8            # aggregate selections, % results
//	ndbench -fig 9 -fig 10    # periodic aggregate selections
//	ndbench -fig 11 -queries 300
//	ndbench -fig 12
//	ndbench -fig 13 -fig 14
//	ndbench -all -small       # everything, scaled-down topology
//	ndbench -parallel 1,2,4   # multi-core scaling rows (wall-clock)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ndlog/internal/experiments"
)

type figList []int

func (f *figList) String() string { return fmt.Sprint([]int(*f)) }

func (f *figList) Set(v string) error {
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return err
	}
	*f = append(*f, n)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure number to reproduce (7-14; repeatable)")
	all := flag.Bool("all", false, "run every figure")
	small := flag.Bool("small", false, "use the scaled-down topology (fast)")
	queries := flag.Int("queries", 300, "query count for figure 11")
	samples := flag.Int("samples", 10, "sample points for figure 11")
	seed := flag.Int64("seed", 1, "experiment seed")
	period := flag.Float64("period", 0.5, "periodic aggregate-selection interval (s), figures 9/10")
	shareDelay := flag.Float64("share-delay", 0.3, "message sharing delay (s), figure 12")
	horizon := flag.Float64("horizon", 100, "update-run horizon (s), figures 13/14")
	hybrid := flag.Bool("hybrid", false, "run the Section 5.3 TD/BU/hybrid cost analysis")
	hybridPairs := flag.Int("hybrid-pairs", 200, "pair sample size for -hybrid")
	parallel := flag.String("parallel", "", "run the multi-core scaling rows at these comma-separated worker counts, e.g. 1,2,4 (wall-clock, real cores)")
	protocols := flag.Bool("protocols", false, "run the protocol conformance rows (chord, link-state, gossip)")
	aggsel := flag.Bool("aggsel", false, "with -protocols: add aggregate-selection variant rows (chord+aggsel, linkstate+aggsel) — same oracle checks, message delta vs the baseline rows")
	magic := flag.Bool("magic", false, "with -protocols: add query-driven magic shortest-path rows on the link-state topology (plus magic+aggsel when -aggsel is also set)")
	flag.Parse()

	cfg := experiments.Default()
	if *small {
		cfg = experiments.Small()
	}
	cfg.Seed = *seed

	want := map[int]bool{}
	for _, f := range figs {
		want[f] = true
	}
	if *all {
		for f := 7; f <= 14; f++ {
			want[f] = true
		}
	}
	if len(want) == 0 && !*hybrid && *parallel == "" && !*protocols {
		flag.Usage()
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ndbench:", err)
		os.Exit(1)
	}

	var immediate, periodic []experiments.SPResult
	if want[7] || want[8] || want[9] || want[10] {
		var err error
		if want[7] || want[8] || want[9] || want[10] {
			if immediate, err = experiments.RunAggSel(cfg, 0); err != nil {
				fail(err)
			}
		}
		if want[7] || want[8] {
			fmt.Print(experiments.FormatAggSel(immediate, 0))
			fmt.Println()
		}
		if want[9] || want[10] {
			if periodic, err = experiments.RunAggSel(cfg, *period); err != nil {
				fail(err)
			}
			fmt.Print(experiments.FormatAggSel(periodic, *period))
			fmt.Println()
			fmt.Print(experiments.CompareAggSel(immediate, periodic))
			fmt.Println()
		}
	}
	if want[11] {
		res, err := experiments.RunMagic(cfg, *queries, *samples)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatMagic(res))
		fmt.Println()
	}
	if want[12] {
		res, err := experiments.RunShare(cfg, *shareDelay)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatShare(res))
		fmt.Println()
	}
	if want[13] {
		res, err := experiments.RunUpdates(cfg, []float64{10}, *horizon, 0.10, 0.10)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatUpdates(res, "Figure 13: periodic link updates (10 s interval)"))
		fmt.Println()
	}
	if want[14] {
		res, err := experiments.RunUpdates(cfg, []float64{2, 8}, *horizon, 0.10, 0.10)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatUpdates(res, "Figure 14: interleaved 2 s / 8 s update intervals"))
		fmt.Println()
	}
	if *hybrid {
		fmt.Print(experiments.FormatHybrid(experiments.RunHybrid(cfg, *hybridPairs)))
		fmt.Println()
	}
	if *parallel != "" {
		var workers []int
		for _, part := range strings.Split(*parallel, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fail(fmt.Errorf("bad -parallel worker count %q", part))
			}
			workers = append(workers, n)
		}
		rows, err := experiments.RunParallel(cfg, workers)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatParallel(rows))
		fmt.Println()
	}
	if *protocols {
		if err := runProtocols(os.Stdout, *seed, *small, *aggsel, *magic); err != nil {
			fail(err)
		}
		fmt.Println()
	}
}
