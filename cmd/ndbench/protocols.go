package main

import (
	"fmt"
	"io"
	"time"

	"ndlog/internal/conform"
	"ndlog/internal/engine"
)

// runProtocols prints one measurement row per protocol of the
// conformance suite: virtual seconds to the oracle-clean fixpoint
// (and to re-convergence after one churn event where that applies),
// plus message/byte counts and wall-clock cost. Rows are deterministic
// under -seed; -small shrinks the topologies the way the figure
// experiments do.
//
// aggsel adds optimizer-measurement variants: the same runs under
// aggregate selections restricted to the predicates each protocol's
// semantics tolerate (see chordAggSelPreds / linkStateAggSelPreds) —
// identical oracle checks, so a row that prints is a row that stayed
// correct, and the message delta against the baseline row is the
// measured bandwidth effect. magic adds query-driven shortest-path
// rows (the Section 5.1.2 magic rewrite) on the link-state topology —
// the on-demand counterpart to the flooded all-pairs row, with the
// pruned combination when both flags are set.
func runProtocols(w io.Writer, seed int64, small, aggsel, magic bool) error {
	fmt.Fprintf(w, "Protocol conformance rows (seed %d)\n", seed)

	if err := chordRow(w, seed, small, "chord", engine.Options{}); err != nil {
		return err
	}
	if err := linkStateRow(w, seed, small, "linkstate", engine.Options{}); err != nil {
		return err
	}
	if err := gossipRow(w, seed, small); err != nil {
		return err
	}
	if aggsel {
		if err := chordRow(w, seed, small, "chord+aggsel",
			engine.Options{AggSel: true, AggSelPreds: chordAggSelPreds}); err != nil {
			return err
		}
		if err := linkStateRow(w, seed, small, "linkstate+aggsel",
			engine.Options{AggSel: true, AggSelPreds: linkStateAggSelPreds}); err != nil {
			return err
		}
	}
	if magic {
		if err := magicRow(w, seed, small, "magic", engine.Options{}); err != nil {
			return err
		}
		if aggsel {
			if err := magicRow(w, seed, small, "magic+aggsel",
				engine.Options{AggSel: true, AggSelPreds: magicAggSelPreds}); err != nil {
				return err
			}
		}
	}
	return nil
}

// chordAggSelPreds is the aggregate-selection restriction Chord
// tolerates. Of its two detectable selections (idmap's max over succ,
// cand's max over finger), succ is unsafe — non-improving succ rows
// must still trigger the f0 finger derivation — leaving finger, whose
// only consumer is the cand aggregate itself. The measured result is
// the point: aggsel has no useful handle on Chord, because its
// aggregates are candidate-set views other rules still join.
var chordAggSelPreds = []string{"finger"}

// linkStateAggSelPreds prunes the node-local SPF: lpath rows that do
// not improve their (node, dest) minimum skip the r2 extension and r4
// route strands. Safe per the classic shortest-path argument (positive
// costs, one advertised representative per group, delete-time
// re-advertisement), and checked here by the same Dijkstra oracle as
// the baseline row. The SPF never crosses a link, so the saving shows
// in the derivation count, not the message count.
var linkStateAggSelPreds = []string{"lpath"}

// magicAggSelPreds prunes query exploration: pathDst tuples that do
// not improve their (node, src, query) localBest minimum stop
// exploring. Exploration is cross-link, so this saving is bandwidth.
var magicAggSelPreds = []string{"pathDst"}

// countDerivs layers a rule-firing counter over the row's engine
// options — the metric that exposes aggregate-selection savings for
// protocols whose pruned rules are node-local.
func countDerivs(eng engine.Options) (engine.Options, *int64) {
	derivs := new(int64)
	prev := eng.OnDerive
	eng.OnDerive = func(nodeID, rule string, d engine.Delta) {
		if prev != nil {
			prev(nodeID, rule, d)
		}
		*derivs++
	}
	return eng, derivs
}

// settle advances time in 1-vsec steps until check is clean, returning
// the virtual time reached, or an error at the deadline.
func settle(run func(float64), now func() float64, deadline float64, check func() []string) (float64, error) {
	for {
		errs := check()
		if len(errs) == 0 {
			return now(), nil
		}
		if now() >= deadline {
			return 0, fmt.Errorf("not converged by t=%.1f: %s (+%d more)",
				now(), errs[0], len(errs)-1)
		}
		run(now() + 1)
	}
}

func chordRow(w io.Writer, seed int64, small bool, label string, eng engine.Options) error {
	o := conform.DefaultChordOpts(seed)
	o.Nodes, o.Reserve = 32, 2
	eng, derivs := countDerivs(eng)
	o.Engine = eng
	deadline := 240.0
	if small {
		o.Nodes = 16
		deadline = 120
	}
	start := time.Now()
	r, err := conform.NewChordRun(o)
	if err != nil {
		return err
	}
	// Skip past the staggered bring-up joins before polling the ring
	// invariant; at t=0 the landmark alone is (vacuously) a valid ring.
	r.RunUntil(10)
	conv, err := settle(r.RunUntil, r.Net.Sim.Now, deadline, r.CheckRing)
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	samples := r.InjectLookups(24)
	total, ok := len(samples), 0
	for attempt := 0; len(samples) > 0 && attempt < 5; attempt++ {
		r.RunUntil(r.Net.Sim.Now() + 2)
		failed, errs := r.CheckLookups(samples)
		if len(errs) > 0 {
			return fmt.Errorf("%s: wrong lookup: %s", label, errs[0])
		}
		ok = total - len(failed)
		samples = samples[:0]
		for _, s := range failed {
			samples = append(samples, r.Reinject(s))
		}
	}
	fmt.Fprintf(w, "%-17s nodes=%-3d ring-stable=%.1f vsec  lookups=%d/%d ok  msgs=%d bytes=%d derivs=%d  wall=%.2fs\n",
		label, o.Nodes, conv, ok, total, r.Net.Sim.Messages(), r.Net.Sim.Bytes(), *derivs, time.Since(start).Seconds())
	return nil
}

func linkStateRow(w io.Writer, seed int64, small bool, label string, eng engine.Options) error {
	o := conform.DefaultLinkStateOpts(seed)
	eng, derivs := countDerivs(eng)
	o.Engine = eng
	if small {
		o.Nodes, o.Chords = 10, 4
	}
	start := time.Now()
	r, err := conform.NewLinkStateRun(o)
	if err != nil {
		return err
	}
	conv, err := settle(r.RunUntil, r.Net.Sim.Now, 30, r.CheckRoutes)
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	a, b := r.RandomEdge()
	r.SetCost(a, b, 1+r.Net.Rng.Int63n(o.MaxCost))
	reconv, err := settle(r.RunUntil, r.Net.Sim.Now, conv+30, r.CheckRoutes)
	if err != nil {
		return fmt.Errorf("%s churn: %w", label, err)
	}
	fmt.Fprintf(w, "%-17s nodes=%-3d routes=%.1f vsec  recost-reconverge=%.1f vsec  msgs=%d bytes=%d derivs=%d  wall=%.2fs\n",
		label, o.Nodes, conv, reconv-conv, r.Net.Sim.Messages(), r.Net.Sim.Bytes(), *derivs, time.Since(start).Seconds())
	return nil
}

// magicRow runs query-driven shortest paths: the same ring-plus-chords
// graph as the link-state row, but nothing computes until a (src, dst)
// query is asked, and each query's answer — checked against Dijkstra —
// returns to the source along the discovered path, caching suffix
// costs on the way.
func magicRow(w io.Writer, seed int64, small bool, label string, eng engine.Options) error {
	o := conform.DefaultMagicOpts(seed)
	eng, derivs := countDerivs(eng)
	o.Engine = eng
	queries := 6
	if small {
		o.Nodes, o.Chords = 10, 4
		queries = 3
	}
	start := time.Now()
	r, err := conform.NewMagicRun(o)
	if err != nil {
		return err
	}
	// Let the link facts settle (no derivations run yet — the magic
	// program is inert until seeded).
	r.RunUntil(1)
	answered := 0.0
	for q := 0; q < queries; q++ {
		src := r.Names[r.Net.Rng.Intn(len(r.Names))]
		dst := r.Names[r.Net.Rng.Intn(len(r.Names))]
		if src == dst {
			dst = r.Names[(r.Net.Rng.Intn(len(r.Names)-1)+1+q)%len(r.Names)]
			if src == dst {
				dst = r.Names[(len(r.Names)/2+q)%len(r.Names)]
			}
		}
		asked := r.Net.Sim.Now()
		r.Ask(src, dst)
		_, err := settle(r.RunUntil, r.Net.Sim.Now, asked+30,
			func() []string { return r.CheckAnswer(src, dst) })
		if err != nil {
			return fmt.Errorf("%s query %s->%s: %w", label, src, dst, err)
		}
		answered = r.Net.Sim.Now()
	}
	fmt.Fprintf(w, "%-17s nodes=%-3d queries=%d answered=%.1f vsec  msgs=%d bytes=%d derivs=%d  wall=%.2fs\n",
		label, o.Nodes, queries, answered, r.Net.Sim.Messages(), r.Net.Sim.Bytes(), *derivs, time.Since(start).Seconds())
	return nil
}

func gossipRow(w io.Writer, seed int64, small bool) error {
	o := conform.DefaultGossipOpts(seed)
	if small {
		o.Nodes = 16
	}
	start := time.Now()
	r, err := conform.NewGossipRun(o)
	if err != nil {
		return err
	}
	bound := r.ConvergeRounds()
	r.RunRounds(bound)
	extra := 0
	for len(r.CheckFresh(nil)) > 0 {
		if extra++; extra > 5 {
			return fmt.Errorf("gossip: view not fresh %d rounds past the infection bound", extra)
		}
		r.RunRounds(1)
	}
	fmt.Fprintf(w, "%-17s nodes=%-3d fresh=%d rounds (bound %d)  detect-after=%d rounds  wall=%.2fs\n",
		"gossip", o.Nodes, bound+extra, bound, r.DetectRounds(), time.Since(start).Seconds())
	return nil
}
