package main

import (
	"fmt"
	"io"
	"time"

	"ndlog/internal/conform"
)

// runProtocols prints one measurement row per protocol of the
// conformance suite: virtual seconds to the oracle-clean fixpoint
// (and to re-convergence after one churn event where that applies),
// plus wall-clock cost. Rows are deterministic under -seed; -small
// shrinks the topologies the way the figure experiments do.
func runProtocols(w io.Writer, seed int64, small bool) error {
	fmt.Fprintf(w, "Protocol conformance rows (seed %d)\n", seed)

	if err := chordRow(w, seed, small); err != nil {
		return err
	}
	if err := linkStateRow(w, seed, small); err != nil {
		return err
	}
	return gossipRow(w, seed, small)
}

// settle advances time in 1-vsec steps until check is clean, returning
// the virtual time reached, or an error at the deadline.
func settle(run func(float64), now func() float64, deadline float64, check func() []string) (float64, error) {
	for {
		errs := check()
		if len(errs) == 0 {
			return now(), nil
		}
		if now() >= deadline {
			return 0, fmt.Errorf("not converged by t=%.1f: %s (+%d more)",
				now(), errs[0], len(errs)-1)
		}
		run(now() + 1)
	}
}

func chordRow(w io.Writer, seed int64, small bool) error {
	o := conform.DefaultChordOpts(seed)
	o.Nodes, o.Reserve = 32, 2
	deadline := 240.0
	if small {
		o.Nodes = 16
		deadline = 120
	}
	start := time.Now()
	r, err := conform.NewChordRun(o)
	if err != nil {
		return err
	}
	// Skip past the staggered bring-up joins before polling the ring
	// invariant; at t=0 the landmark alone is (vacuously) a valid ring.
	r.RunUntil(10)
	conv, err := settle(r.RunUntil, r.Net.Sim.Now, deadline, r.CheckRing)
	if err != nil {
		return fmt.Errorf("chord: %w", err)
	}
	samples := r.InjectLookups(24)
	total, ok := len(samples), 0
	for attempt := 0; len(samples) > 0 && attempt < 5; attempt++ {
		r.RunUntil(r.Net.Sim.Now() + 2)
		failed, errs := r.CheckLookups(samples)
		if len(errs) > 0 {
			return fmt.Errorf("chord: wrong lookup: %s", errs[0])
		}
		ok = total - len(failed)
		samples = samples[:0]
		for _, s := range failed {
			samples = append(samples, r.Reinject(s))
		}
	}
	fmt.Fprintf(w, "chord      nodes=%-3d ring-stable=%.1f vsec  lookups=%d/%d ok  wall=%.2fs\n",
		o.Nodes, conv, ok, total, time.Since(start).Seconds())
	return nil
}

func linkStateRow(w io.Writer, seed int64, small bool) error {
	o := conform.DefaultLinkStateOpts(seed)
	if small {
		o.Nodes, o.Chords = 10, 4
	}
	start := time.Now()
	r, err := conform.NewLinkStateRun(o)
	if err != nil {
		return err
	}
	conv, err := settle(r.RunUntil, r.Net.Sim.Now, 30, r.CheckRoutes)
	if err != nil {
		return fmt.Errorf("linkstate: %w", err)
	}
	a, b := r.RandomEdge()
	r.SetCost(a, b, 1+r.Net.Rng.Int63n(o.MaxCost))
	reconv, err := settle(r.RunUntil, r.Net.Sim.Now, conv+30, r.CheckRoutes)
	if err != nil {
		return fmt.Errorf("linkstate churn: %w", err)
	}
	fmt.Fprintf(w, "linkstate  nodes=%-3d routes=%.1f vsec  recost-reconverge=%.1f vsec  wall=%.2fs\n",
		o.Nodes, conv, reconv-conv, time.Since(start).Seconds())
	return nil
}

func gossipRow(w io.Writer, seed int64, small bool) error {
	o := conform.DefaultGossipOpts(seed)
	if small {
		o.Nodes = 16
	}
	start := time.Now()
	r, err := conform.NewGossipRun(o)
	if err != nil {
		return err
	}
	bound := r.ConvergeRounds()
	r.RunRounds(bound)
	extra := 0
	for len(r.CheckFresh(nil)) > 0 {
		if extra++; extra > 5 {
			return fmt.Errorf("gossip: view not fresh %d rounds past the infection bound", extra)
		}
		r.RunRounds(1)
	}
	fmt.Fprintf(w, "gossip     nodes=%-3d fresh=%d rounds (bound %d)  detect-after=%d rounds  wall=%.2fs\n",
		o.Nodes, bound+extra, bound, r.DetectRounds(), time.Since(start).Seconds())
	return nil
}
