package experiments

import (
	"strings"
	"testing"

	"ndlog/internal/topology"
)

func TestAggSelImmediate(t *testing.T) {
	res, err := RunAggSel(Small(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	byMetric := map[topology.Metric]SPResult{}
	for _, r := range res {
		byMetric[r.Metric] = r
		if r.Missing != 0 || r.Wrong != 0 {
			t.Errorf("%s: missing=%d wrong=%d", r.Metric, r.Missing, r.Wrong)
		}
		if r.TotalMB <= 0 || r.PeakKBps <= 0 {
			t.Errorf("%s: empty bandwidth", r.Metric)
		}
		if len(r.Completion) == 0 || r.Completion[len(r.Completion)-1].V != 1.0 {
			t.Errorf("%s: completion did not reach 1: %v", r.Metric, r.Completion)
		}
	}
	// The paper's qualitative claim: Random is the stress case — worst
	// convergence and highest cost among the four metrics.
	rnd := byMetric[topology.Random]
	for _, m := range []topology.Metric{topology.HopCount, topology.Latency, topology.Reliability} {
		if rnd.TotalMB < byMetric[m].TotalMB {
			t.Errorf("Random MB %.3f < %s MB %.3f", rnd.TotalMB, m, byMetric[m].TotalMB)
		}
	}
	out := FormatAggSel(res, 0)
	for _, want := range []string{"Hop-Count", "Random", "converge(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatAggSel missing %q", want)
		}
	}
}

func TestAggSelPeriodicReducesBandwidth(t *testing.T) {
	cfg := Small()
	imm, err := RunAggSel(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	per, err := RunAggSel(cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imm {
		if per[i].Missing != 0 || per[i].Wrong != 0 {
			t.Errorf("periodic %s: missing=%d wrong=%d", per[i].Metric, per[i].Missing, per[i].Wrong)
		}
		if per[i].TotalMB >= imm[i].TotalMB {
			t.Errorf("%s: periodic %.4f MB >= immediate %.4f MB",
				imm[i].Metric, per[i].TotalMB, imm[i].TotalMB)
		}
	}
	if out := CompareAggSel(imm, per); !strings.Contains(out, "reduction") {
		t.Errorf("CompareAggSel output: %q", out)
	}
}

func TestMagicExperiment(t *testing.T) {
	cfg := Small()
	res, err := RunMagic(cfg, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Queries) - 1
	// MS grows with query count; MSC is never more expensive than MS;
	// restricted destination sets are cheaper still at the tail.
	if res.MS[last] <= res.MS[0] {
		t.Errorf("MS should grow: %v", res.MS)
	}
	if res.MSC[last] > res.MS[last] {
		t.Errorf("MSC %.4f > MS %.4f at %d queries", res.MSC[last], res.MS[last], res.Queries[last])
	}
	if res.MSC10[last] > res.MSC30[last] {
		t.Errorf("MSC-10 %.4f > MSC-30 %.4f", res.MSC10[last], res.MSC30[last])
	}
	// No-MS is flat.
	if res.NoMS[0] != res.NoMS[last] || res.NoMS[0] <= 0 {
		t.Errorf("No-MS should be a positive constant: %v", res.NoMS)
	}
	if out := FormatMagic(res); !strings.Contains(out, "MSC-10%") {
		t.Errorf("FormatMagic output: %q", out)
	}
}

func TestShareExperiment(t *testing.T) {
	cfg := Small()
	res, err := RunShare(cfg, 0.050)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShareMB >= res.NoShareMB {
		t.Errorf("share %.4f MB >= no-share %.4f MB", res.ShareMB, res.NoShareMB)
	}
	if res.SharePeak > res.NoSharePeak {
		t.Errorf("share peak %.2f > no-share peak %.2f", res.SharePeak, res.NoSharePeak)
	}
	if len(res.Individual) != 3 {
		t.Errorf("individual runs = %d", len(res.Individual))
	}
	if out := FormatShare(res); !strings.Contains(out, "No-Share") {
		t.Errorf("FormatShare output: %q", out)
	}
}

func TestUpdateExperiment(t *testing.T) {
	cfg := Small()
	res, err := RunUpdates(cfg, []float64{2}, 10, 0.10, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bursts < 3 {
		t.Fatalf("bursts = %d", res.Bursts)
	}
	if res.Missing != 0 || res.Wrong != 0 {
		t.Errorf("final state: missing=%d wrong=%d", res.Missing, res.Wrong)
	}
	// Incremental maintenance must be much cheaper than from-scratch.
	if res.BurstAvgMB >= res.InitialMB {
		t.Errorf("burst avg %.4f MB >= initial %.4f MB", res.BurstAvgMB, res.InitialMB)
	}
	if out := FormatUpdates(res, "Figure 13"); !strings.Contains(out, "from-scratch") {
		t.Errorf("FormatUpdates output: %q", out)
	}
}

func TestInterleavedUpdates(t *testing.T) {
	cfg := Small()
	res, err := RunUpdates(cfg, []float64{0.5, 2}, 8, 0.10, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missing != 0 || res.Wrong != 0 {
		t.Errorf("final state: missing=%d wrong=%d", res.Missing, res.Wrong)
	}
}

func TestHybridAnalysis(t *testing.T) {
	res := RunHybrid(Small(), 40)
	if res.Pairs != 40 {
		t.Fatalf("pairs = %d", res.Pairs)
	}
	// The optimal split can never cost more than either pure strategy.
	if res.AvgHyb > res.AvgTD || res.AvgHyb > res.AvgBU {
		t.Errorf("hybrid avg %.1f worse than TD %.1f / BU %.1f",
			res.AvgHyb, res.AvgTD, res.AvgBU)
	}
	if res.HybWins+res.TDWins+res.BUWins != res.Pairs {
		t.Errorf("win counts don't add up: %+v", res)
	}
	if out := FormatHybrid(res); !strings.Contains(out, "hybrid") {
		t.Errorf("FormatHybrid output: %q", out)
	}
}
