package experiments

import (
	"fmt"
	"math"
	"strings"

	"ndlog/internal/engine"
	"ndlog/internal/metrics"
	"ndlog/internal/programs"
	"ndlog/internal/topology"
)

// SPResult is one metric's outcome in the aggregate-selections
// experiment (Figures 7-10 and the Section 6.2 summary numbers).
type SPResult struct {
	Metric         topology.Metric
	ConvergenceSec float64
	TotalMB        float64
	PeakKBps       float64
	Bandwidth      []metrics.Point // per-node kBps over time (Fig 7/9)
	Completion     []metrics.Point // fraction of best paths over time (Fig 8/10)
	Missing        int             // oracle pairs never answered (0 expected)
	Wrong          int             // oracle pairs answered with a wrong cost
}

// RunAggSel runs the all-pairs shortest-path query under every link
// metric with aggregate selections enabled. period == 0 reproduces
// Figures 7/8 (immediate propagation); period > 0 reproduces Figures
// 9/10 (periodic aggregate selections with the given flush interval).
func RunAggSel(cfg Config, period float64) ([]SPResult, error) {
	o := BuildOverlay(cfg)
	var out []SPResult
	for _, m := range topology.AllMetrics() {
		r, err := runOneMetric(cfg, o, m, period)
		if err != nil {
			return nil, fmt.Errorf("metric %s: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runOneMetric(cfg Config, o *topology.Overlay, m topology.Metric, period float64) (SPResult, error) {
	want := oracle(o, m)
	opts := engine.Options{AggSel: true, AggSelPeriod: period}
	comp := trackCompletion(&opts, "shortestPath", want)
	dep, err := deploy(cfg, o, programs.ShortestPath(""), opts, engine.ClusterConfig{},
		map[string]topology.Metric{"": m}, nil)
	if err != nil {
		return SPResult{}, err
	}
	ok, err := dep.cluster.Run(cfg.MaxEvents)
	if err != nil {
		return SPResult{}, err
	}
	if !ok {
		return SPResult{}, fmt.Errorf("did not quiesce within %d events", cfg.MaxEvents)
	}
	missing, wrong := VerifyAgainstOracle(dep.cluster, "shortestPath", want)
	conv := comp.ConvergenceTime()
	if math.IsNaN(conv) {
		conv = dep.sim.LastDelivery()
	}
	return SPResult{
		Metric:         m,
		ConvergenceSec: conv,
		TotalMB:        dep.bw.TotalMB(),
		PeakKBps:       dep.bw.PeakKBps(),
		Bandwidth:      dep.bw.PerNodeKBps(),
		Completion:     comp.Series(cfg.Bucket),
		Missing:        missing,
		Wrong:          wrong,
	}, nil
}

// FormatAggSel renders the Figure 7/9 bandwidth series, the Figure 8/10
// completion series, and the Section 6.2 summary table.
func FormatAggSel(results []SPResult, period float64) string {
	var b strings.Builder
	title := "Figure 7/8: aggregate selections (immediate)"
	if period > 0 {
		title = fmt.Sprintf("Figure 9/10: periodic aggregate selections (%.0f ms)", period*1000)
	}
	fmt.Fprintf(&b, "== %s ==\n\n", title)

	labels := make([]string, len(results))
	bwSeries := make([][]metrics.Point, len(results))
	compSeries := make([][]metrics.Point, len(results))
	for i, r := range results {
		labels[i] = r.Metric.String()
		bwSeries[i] = r.Bandwidth
		compSeries[i] = r.Completion
	}
	b.WriteString("Per-node bandwidth (kBps) vs time (s):\n")
	b.WriteString(metrics.FormatSeries("time", labels, bwSeries))
	b.WriteString("\n% eventual best paths vs time (s):\n")
	b.WriteString(metrics.FormatSeries("time", labels, compSeries))
	b.WriteString("\nSummary (Section 6.2):\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %8s %8s\n",
		"metric", "converge(s)", "total(MB)", "peak(kBps)", "missing", "wrong")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %12.2f %12.3f %12.2f %8d %8d\n",
			r.Metric, r.ConvergenceSec, r.TotalMB, r.PeakKBps, r.Missing, r.Wrong)
	}
	return b.String()
}

// CompareAggSel summarizes the bandwidth reduction of periodic vs
// immediate aggregate selections per metric (the 17/12/16/29% numbers).
func CompareAggSel(immediate, periodic []SPResult) string {
	var b strings.Builder
	b.WriteString("Bandwidth reduction from periodic aggregate selections:\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %10s\n", "metric", "immediate", "periodic", "reduction")
	for i := range immediate {
		im, pe := immediate[i], periodic[i]
		red := 0.0
		if im.TotalMB > 0 {
			red = 1 - pe.TotalMB/im.TotalMB
		}
		fmt.Fprintf(&b, "%-14s %9.3fMB %9.3fMB %10s\n",
			im.Metric, im.TotalMB, pe.TotalMB, fmtPct(red))
	}
	return b.String()
}
