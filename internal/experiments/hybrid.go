package experiments

import (
	"fmt"
	"math/rand"
	"strings"
)

// HybridResult evaluates the cost-based rewrite analysis of Section 5.3:
// for single-pair shortest-path discovery queries, compare the message
// cost of pure top-down search from the source (N(s, dist)), pure
// bottom-up from the destination (N(d, dist)), and the optimal hybrid
// split that runs both searches with radii rs + rd = dist minimizing
// N(s,rs) + N(d,rd).
type HybridResult struct {
	Pairs   int
	AvgTD   float64 // average N(s, dist(s,d))
	AvgBU   float64 // average N(d, dist(s,d))
	AvgHyb  float64 // average optimal-split cost
	HybWins int     // pairs where the hybrid beats both pure strategies
	TDWins  int     // pairs where TD is (weakly) optimal
	BUWins  int     // pairs where BU is (weakly) optimal
}

// RunHybrid samples random (src,dst) pairs on the experiment overlay and
// evaluates the three strategies with the neighborhood-function cost
// model of Section 5.3.
func RunHybrid(cfg Config, pairs int) HybridResult {
	o := BuildOverlay(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 55))
	res := HybridResult{Pairs: pairs}
	for i := 0; i < pairs; i++ {
		s := o.Nodes[rng.Intn(len(o.Nodes))]
		d := o.Nodes[rng.Intn(len(o.Nodes))]
		if s == d {
			i--
			continue
		}
		dist := o.HopDistance(s, d)
		td := o.Neighborhood(s, dist)
		bu := o.Neighborhood(d, dist)
		_, _, hyb := o.HybridSplit(s, d)
		res.AvgTD += float64(td)
		res.AvgBU += float64(bu)
		res.AvgHyb += float64(hyb)
		switch {
		case hyb < td && hyb < bu:
			res.HybWins++
		case td <= bu:
			res.TDWins++
		default:
			res.BUWins++
		}
	}
	res.AvgTD /= float64(pairs)
	res.AvgBU /= float64(pairs)
	res.AvgHyb /= float64(pairs)
	return res
}

// FormatHybrid renders the Section 5.3 analysis table.
func FormatHybrid(r HybridResult) string {
	var b strings.Builder
	b.WriteString("== Section 5.3: cost-based TD/BU/hybrid rewrite analysis ==\n\n")
	fmt.Fprintf(&b, "random (src,dst) pairs: %d\n\n", r.Pairs)
	fmt.Fprintf(&b, "%-22s %12s\n", "strategy", "avg msgs")
	fmt.Fprintf(&b, "%-22s %12.1f\n", "top-down (from src)", r.AvgTD)
	fmt.Fprintf(&b, "%-22s %12.1f\n", "bottom-up (from dst)", r.AvgBU)
	fmt.Fprintf(&b, "%-22s %12.1f\n", "hybrid optimal split", r.AvgHyb)
	fmt.Fprintf(&b, "\nhybrid strictly best on %d/%d pairs (TD weakly best: %d, BU: %d)\n",
		r.HybWins, r.Pairs, r.TDWins, r.BUWins)
	return b.String()
}
