package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ndlog/internal/engine"
	"ndlog/internal/programs"
	"ndlog/internal/topology"
	"ndlog/internal/val"
)

// MagicResult is the Figure 11 outcome: cumulative aggregate
// communication (MB) as the number of (src,dst) queries grows, for the
// five strategies of Section 6.3.
type MagicResult struct {
	Queries []int     // x-axis sample points
	NoMS    []float64 // all-pairs bottom-up baseline (flat line)
	MS      []float64 // magic sets + predicate reordering, no sharing
	MSC     []float64 // MS + query-result caching
	MSC30   []float64 // MSC with destinations restricted to 30% of nodes
	MSC10   []float64 // MSC with destinations restricted to 10% of nodes
}

// RunMagic reproduces Figure 11. nQueries is the x-axis extent (the
// paper runs 0..300); samples is the number of evenly spaced sample
// points recorded.
func RunMagic(cfg Config, nQueries, samples int) (MagicResult, error) {
	o := BuildOverlay(cfg)

	res := MagicResult{}
	for i := 1; i <= samples; i++ {
		res.Queries = append(res.Queries, i*nQueries/samples)
	}

	// Baseline: all-pairs bottom-up (Hop-Count, as in Section 6.3),
	// computed once; its cost does not depend on the query count.
	noMS, err := runAllPairsOnce(cfg, o)
	if err != nil {
		return res, fmt.Errorf("no-ms baseline: %w", err)
	}
	for range res.Queries {
		res.NoMS = append(res.NoMS, noMS)
	}

	queries := randomQueries(o, cfg.Seed, nQueries, 1.0)
	if res.MS, err = runMSFresh(cfg, o, queries, res.Queries); err != nil {
		return res, fmt.Errorf("ms: %w", err)
	}
	if res.MSC, err = runMSCached(cfg, o, queries, res.Queries); err != nil {
		return res, fmt.Errorf("msc: %w", err)
	}
	q30 := randomQueries(o, cfg.Seed+1, nQueries, 0.30)
	if res.MSC30, err = runMSCached(cfg, o, q30, res.Queries); err != nil {
		return res, fmt.Errorf("msc-30: %w", err)
	}
	q10 := randomQueries(o, cfg.Seed+2, nQueries, 0.10)
	if res.MSC10, err = runMSCached(cfg, o, q10, res.Queries); err != nil {
		return res, fmt.Errorf("msc-10: %w", err)
	}
	return res, nil
}

// randomQueries draws (src,dst) pairs; destinations are limited to the
// first dstFrac fraction of the node list (the paper's MSC-30%/10%
// variants).
func randomQueries(o *topology.Overlay, seed int64, n int, dstFrac float64) [][2]string {
	rng := rand.New(rand.NewSource(seed + 77))
	nd := int(float64(len(o.Nodes)) * dstFrac)
	if nd < 1 {
		nd = 1
	}
	out := make([][2]string, 0, n)
	for len(out) < n {
		s := o.Nodes[rng.Intn(len(o.Nodes))]
		d := o.Nodes[rng.Intn(nd)]
		if s == d {
			continue
		}
		out = append(out, [2]string{string(s), string(d)})
	}
	return out
}

func runAllPairsOnce(cfg Config, o *topology.Overlay) (float64, error) {
	dep, err := deploy(cfg, o, programs.ShortestPath(""), engine.Options{AggSel: true},
		engine.ClusterConfig{}, map[string]topology.Metric{"": topology.HopCount}, nil)
	if err != nil {
		return 0, err
	}
	ok, err := dep.cluster.Run(cfg.MaxEvents)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("did not quiesce")
	}
	return dep.bw.TotalMB(), nil
}

// cachePruneFilter implements the engine-level half of query-result
// caching (Section 5.2):
//
//   - exploration (rule cs2) is suppressed at nodes that already hold a
//     cached suffix to the query's destination, and
//   - the cache-hit rule (hit1) fires only for freshly arriving
//     exploration tuples, not for cache-triggered replays against old
//     queries' stored exploration state.
func cachePruneFilter(n *engine.Node, rule string, d engine.Delta) bool {
	if rule == "hit1" && d.Tuple.Pred == "cache" {
		return false
	}
	if rule != "cs2" || d.Sign < 0 || d.Tuple.Pred != "pathDst" {
		return true
	}
	qd := d.Tuple.Fields[2]
	probe := val.NewTuple("cache", val.NewAddr(n.ID()), qd, val.Nil)
	cache := n.Catalog().Get("cache")
	if e, ok := cache.Get(probe); ok && e.Tuple.Fields[1].Equal(qd) {
		return false
	}
	return true
}

// runMSFresh measures magic sets without caching: every query runs on a
// fresh deployment (no state carries over), and the per-query bytes
// accumulate. The answer still travels back to the source (both
// strategies pay for the return trip), but nothing is cached: the ca1
// and hit1 strands are disabled.
func runMSFresh(cfg Config, o *topology.Overlay, queries [][2]string, samplePts []int) ([]float64, error) {
	noCache := func(n *engine.Node, rule string, d engine.Delta) bool {
		return rule != "ca1" && rule != "hit1"
	}
	cum := 0.0
	out := make([]float64, 0, len(samplePts))
	next := 0
	for qi, q := range queries {
		if next >= len(samplePts) {
			break
		}
		dep, err := deploy(cfg, o, programs.CachedSourceRoute(),
			engine.Options{AggSel: true, AggSelPreds: []string{"pathDst"}, StrandFilter: noCache}, engine.ClusterConfig{},
			map[string]topology.Metric{"": topology.HopCount},
			func(p *progFacts) { p.addFact(programs.MagicQueryFact(q[0], q[1])) })
		if err != nil {
			return nil, err
		}
		ok, err := dep.cluster.Run(cfg.MaxEvents)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("query %d did not quiesce", qi)
		}
		cum += dep.bw.TotalMB()
		for next < len(samplePts) && qi+1 >= samplePts[next] {
			out = append(out, cum)
			next++
		}
	}
	for next < len(samplePts) {
		out = append(out, cum)
		next++
	}
	return out, nil
}

// runMSCached runs the query sequence on one persistent deployment with
// query-result caching: cache tables survive across queries, cache hits
// answer directly, and exploration is pruned at cached nodes.
func runMSCached(cfg Config, o *topology.Overlay, queries [][2]string, samplePts []int) ([]float64, error) {
	opts := engine.Options{AggSel: true, AggSelPreds: []string{"pathDst"}, StrandFilter: cachePruneFilter}
	dep, err := deploy(cfg, o, programs.CachedSourceRoute(), opts, engine.ClusterConfig{},
		map[string]topology.Metric{"": topology.HopCount}, nil)
	if err != nil {
		return nil, err
	}
	if err := dep.cluster.Seed(); err != nil {
		return nil, err
	}
	if !dep.sim.RunToQuiescence(cfg.MaxEvents) {
		return nil, fmt.Errorf("seed did not quiesce")
	}

	out := make([]float64, 0, len(samplePts))
	next := 0
	for qi, q := range queries {
		if next >= len(samplePts) {
			break
		}
		if err := dep.cluster.Inject(q[0], engine.Insert(programs.MagicQueryFact(q[0], q[1]))); err != nil {
			return nil, err
		}
		if !dep.sim.RunToQuiescence(cfg.MaxEvents) {
			return nil, fmt.Errorf("query %d did not quiesce", qi)
		}
		for next < len(samplePts) && qi+1 >= samplePts[next] {
			out = append(out, dep.bw.TotalMB())
			next++
		}
	}
	for next < len(samplePts) {
		out = append(out, dep.bw.TotalMB())
		next++
	}
	return out, nil
}

// FormatMagic renders the Figure 11 table.
func FormatMagic(r MagicResult) string {
	var b strings.Builder
	b.WriteString("== Figure 11: aggregate communication (MB) vs number of queries ==\n\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %10s\n",
		"queries", "No-MS", "MS", "MSC", "MSC-30%", "MSC-10%")
	for i, q := range r.Queries {
		fmt.Fprintf(&b, "%-8d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			q, r.NoMS[i], r.MS[i], r.MSC[i], r.MSC30[i], r.MSC10[i])
	}
	return b.String()
}
