package experiments

import (
	"fmt"
	"strings"
	"time"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/topology"
)

// ParallelRow is one worker-count's outcome in the multi-core scaling
// experiment: the all-pairs shortest-path query on the experiment
// overlay, run to fixpoint on the in-process parallel executor.
type ParallelRow struct {
	Workers    int
	WallSec    float64
	Speedup    float64 // vs the Workers=1 row
	Tuples     int     // fixpoint size (shortestPath), identical across rows
	Missing    int     // oracle pairs never answered (0 expected)
	Wrong      int     // oracle pairs answered with a wrong cost
	Undelivers int     // deltas routed to unknown nodes (0 expected)
}

// RunParallel measures wall-clock convergence of the in-process
// parallel executor at each worker count, on the latency-metric
// all-pairs shortest-path workload. Unlike the simulator figures this
// is real time on real cores: on a single-core host the rows document
// overhead rather than speedup, which is still the honest number.
func RunParallel(cfg Config, workers []int) ([]ParallelRow, error) {
	o := BuildOverlay(cfg)
	m := topology.Latency
	want := oracle(o, m)
	var out []ParallelRow
	for _, w := range workers {
		prog, err := parser.Parse(programs.ShortestPath(""))
		if err != nil {
			return nil, err
		}
		for _, l := range o.Links {
			cost := l.Cost[m]
			prog.Facts = append(prog.Facts,
				programs.LinkFact(linkPred(""), string(l.A), string(l.B), cost),
				programs.LinkFact(linkPred(""), string(l.B), string(l.A), cost))
		}
		p, err := engine.NewParallel(prog, engine.Options{AggSel: true, Parallelism: w})
		if err != nil {
			return nil, err
		}
		for _, n := range o.Nodes {
			p.AddNode(string(n))
		}
		start := time.Now()
		if err := p.Run(); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()

		got := map[string]float64{}
		results := p.QueryResults()
		for _, t := range results {
			key := t.Fields[0].Addr() + "," + t.Fields[1].Addr()
			got[key] = t.Fields[len(t.Fields)-1].Float()
		}
		missing, wrong := 0, 0
		for k, wv := range want {
			g, ok := got[k]
			switch {
			case !ok:
				missing++
			case g-wv > 1e-6 || wv-g > 1e-6:
				wrong++
			}
		}
		row := ParallelRow{
			Workers:    p.Workers(),
			WallSec:    wall,
			Tuples:     len(results),
			Missing:    missing,
			Wrong:      wrong,
			Undelivers: p.Undeliverable(),
		}
		if len(out) > 0 && wall > 0 {
			row.Speedup = out[0].WallSec / wall
		} else {
			row.Speedup = 1
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatParallel renders the multi-core scaling table.
func FormatParallel(rows []ParallelRow) string {
	var b strings.Builder
	b.WriteString("== Multi-core scaling: in-process parallel executor ==\n\n")
	fmt.Fprintf(&b, "%8s %10s %8s %8s %8s %8s\n",
		"workers", "wall(s)", "speedup", "tuples", "missing", "wrong")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10.3f %7.2fx %8d %8d %8d\n",
			r.Workers, r.WallSec, r.Speedup, r.Tuples, r.Missing, r.Wrong)
	}
	return b.String()
}
