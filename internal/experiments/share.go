package experiments

import (
	"fmt"
	"strings"

	"ndlog/internal/engine"
	"ndlog/internal/metrics"
	"ndlog/internal/programs"
	"ndlog/internal/topology"
)

// shareMetrics are the three queries run concurrently in Figure 12.
var shareMetrics = []topology.Metric{topology.Latency, topology.Reliability, topology.Random}

// shareSuffix maps a metric to its predicate suffix.
func shareSuffix(m topology.Metric) string {
	switch m {
	case topology.Latency:
		return "_lat"
	case topology.Reliability:
		return "_rel"
	default:
		return "_rnd"
	}
}

// ShareResult is the Figure 12 outcome.
type ShareResult struct {
	// Individual per-query bandwidth series (the Latency, Reliability
	// and Random lines).
	Individual map[topology.Metric][]metrics.Point
	// NoShare is the three queries running together with the 300 ms
	// outbound delay but no combining; Share adds opportunistic message
	// sharing.
	NoShare, Share         []metrics.Point
	NoShareMB, ShareMB     float64
	NoSharePeak, SharePeak float64
}

// RunShare reproduces Figure 12: the Latency, Reliability and Random
// queries run concurrently; outbound tuples are delayed `delay` seconds
// (300 ms in the paper) and, in the Share configuration, combined when
// they agree on everything but the metric attribute.
func RunShare(cfg Config, delay float64) (ShareResult, error) {
	o := BuildOverlay(cfg)
	res := ShareResult{Individual: map[topology.Metric][]metrics.Point{}}

	// Individual runs (no batching: the plain per-query footprint).
	for _, m := range shareMetrics {
		dep, err := deploy(cfg, o, programs.ShortestPath(shareSuffix(m)),
			engine.Options{AggSel: true}, engine.ClusterConfig{},
			map[string]topology.Metric{shareSuffix(m): m}, nil)
		if err != nil {
			return res, err
		}
		ok, err := dep.cluster.Run(cfg.MaxEvents)
		if err != nil || !ok {
			return res, fmt.Errorf("individual %s: ok=%v err=%v", m, ok, err)
		}
		res.Individual[m] = dep.bw.PerNodeKBps()
	}

	combined := programs.Combine(
		programs.ShortestPath("_lat"),
		programs.ShortestPath("_rel"),
		programs.ShortestPath("_rnd"),
	)
	links := map[string]topology.Metric{}
	group := map[string]string{}
	vary := map[string][]int{}
	for _, m := range shareMetrics {
		sfx := shareSuffix(m)
		links[sfx] = m
		group["path"+sfx] = "path"
		vary["path"+sfx] = []int{4} // the cost column
	}

	runCombined := func(ccfg engine.ClusterConfig) (*deployment, error) {
		dep, err := deploy(cfg, o, combined, engine.Options{AggSel: true}, ccfg, links, nil)
		if err != nil {
			return nil, err
		}
		ok, err := dep.cluster.Run(cfg.MaxEvents)
		if err != nil || !ok {
			return nil, fmt.Errorf("combined run: ok=%v err=%v", ok, err)
		}
		return dep, nil
	}

	noShare, err := runCombined(engine.ClusterConfig{Batch: delay})
	if err != nil {
		return res, fmt.Errorf("no-share: %w", err)
	}
	share, err := runCombined(engine.ClusterConfig{
		Share: &engine.ShareConfig{Delay: delay, Group: group, VaryCols: vary},
	})
	if err != nil {
		return res, fmt.Errorf("share: %w", err)
	}
	res.NoShare = noShare.bw.PerNodeKBps()
	res.Share = share.bw.PerNodeKBps()
	res.NoShareMB = noShare.bw.TotalMB()
	res.ShareMB = share.bw.TotalMB()
	res.NoSharePeak = noShare.bw.PeakKBps()
	res.SharePeak = share.bw.PeakKBps()
	return res, nil
}

// FormatShare renders the Figure 12 series and summary.
func FormatShare(r ShareResult) string {
	var b strings.Builder
	b.WriteString("== Figure 12: per-node bandwidth (kBps) with opportunistic message sharing ==\n\n")
	labels := []string{"Share", "No-Share"}
	series := [][]metrics.Point{r.Share, r.NoShare}
	for _, m := range shareMetrics {
		labels = append(labels, m.String())
		series = append(series, r.Individual[m])
	}
	b.WriteString(metrics.FormatSeries("time", labels, series))
	red := 0.0
	if r.NoShareMB > 0 {
		red = 1 - r.ShareMB/r.NoShareMB
	}
	fmt.Fprintf(&b, "\nTotal: no-share %.3f MB, share %.3f MB (reduction %s)\n",
		r.NoShareMB, r.ShareMB, fmtPct(red))
	fmt.Fprintf(&b, "Peak per-node: no-share %.2f kBps, share %.2f kBps\n",
		r.NoSharePeak, r.SharePeak)
	return b.String()
}
