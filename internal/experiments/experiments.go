// Package experiments reproduces the evaluation of Section 6: every
// figure's workload, parameter sweep, baseline and output series. The
// substrate is the deterministic discrete-event simulator instead of the
// authors' Emulab testbed (see DESIGN.md for the substitution argument),
// so absolute numbers differ but the comparative shapes hold.
//
// Each Run* function builds its own simulator, cluster, and collectors
// and returns plain result structs — no state is shared between runs,
// so sweeps may run back to back (or in parallel from separate
// goroutines, one deployment each).
package experiments

import (
	"fmt"
	"math"

	"ndlog/internal/ast"
	"ndlog/internal/engine"
	"ndlog/internal/metrics"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/topology"
	"ndlog/internal/val"
)

// Config parameterizes one experiment run.
type Config struct {
	// Topology is the GT-ITM-style underlay (Section 6.1).
	Topology topology.TransitStubParams
	// OverlayDegree is the number of random neighbors per node.
	OverlayDegree int
	// Seed drives topology, metrics and loss determinism.
	Seed int64
	// ProcDelay is the per-message sender-side processing cost.
	ProcDelay float64
	// Bucket is the bandwidth series bucket width in seconds.
	Bucket float64
	// MaxEvents bounds each simulation run.
	MaxEvents int
}

// Default returns the paper-scale configuration: 100 nodes, overlay
// degree 4 (Section 6.1).
func Default() Config {
	return Config{
		Topology:      topology.DefaultTransitStub(),
		OverlayDegree: 4,
		Seed:          1,
		ProcDelay:     0.002,
		Bucket:        0.25,
		MaxEvents:     50_000_000,
	}
}

// Small returns a scaled-down configuration (14 nodes) for tests and
// benchmarks.
func Small() Config {
	return Config{
		Topology: topology.TransitStubParams{
			Transits: 2, StubsPerTrans: 2, NodesPerStub: 3,
			TransitLatency: 0.050, StubLatency: 0.010, IntraLatency: 0.002,
		},
		OverlayDegree: 3,
		Seed:          1,
		ProcDelay:     0.002,
		Bucket:        0.25,
		MaxEvents:     5_000_000,
	}
}

// BuildOverlay constructs the experiment overlay for a configuration.
func BuildOverlay(cfg Config) *topology.Overlay {
	u := topology.TransitStub(cfg.Topology)
	return topology.NewOverlay(u, cfg.OverlayDegree, cfg.Seed)
}

// deployment is one simulated NDlog deployment over an overlay.
type deployment struct {
	sim     *simnet.Sim
	overlay *topology.Overlay
	cluster *engine.Cluster
	bw      *metrics.Bandwidth
}

// linkPred returns the link predicate name for a suffix.
func linkPred(sfx string) string { return "link" + sfx }

// deploy builds a simulator + cluster for the program source, wiring
// overlay links and per-metric link facts for every (metric, suffix)
// pair given.
func deploy(cfg Config, o *topology.Overlay, src string, opts engine.Options,
	ccfg engine.ClusterConfig, links map[string]topology.Metric, extraFacts func(p *progFacts)) (*deployment, error) {

	sim := simnet.New(cfg.Seed)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	pf := &progFacts{prog: prog}
	for sfx, m := range links {
		for _, l := range o.Links {
			cost := l.Cost[m]
			pf.addLink(linkPred(sfx), string(l.A), string(l.B), cost)
			pf.addLink(linkPred(sfx), string(l.B), string(l.A), cost)
		}
	}
	if extraFacts != nil {
		extraFacts(pf)
	}
	if ccfg.ProcDelay == 0 {
		ccfg.ProcDelay = cfg.ProcDelay
	}
	cl, err := engine.NewCluster(sim, prog, opts, ccfg)
	if err != nil {
		return nil, err
	}
	for _, n := range o.Nodes {
		cl.AddNode(n)
	}
	for _, l := range o.Links {
		if err := sim.AddLink(l.A, l.B, l.LatencySec, 0); err != nil {
			return nil, err
		}
	}
	bw := metrics.NewBandwidth(cfg.Bucket, len(o.Nodes))
	sim.Observe(func(now float64, from, to simnet.NodeID, bytes int) {
		bw.Record(now, bytes)
	})
	return &deployment{sim: sim, overlay: o, cluster: cl, bw: bw}, nil
}

// oracle computes the best cost per ordered (src,dst) pair for a metric.
func oracle(o *topology.Overlay, m topology.Metric) map[string]float64 {
	out := map[string]float64{}
	for _, s := range o.Nodes {
		dist, _ := o.ShortestPaths(s, m)
		for d, c := range dist {
			if d == s {
				continue
			}
			out[string(s)+","+string(d)] = c
		}
	}
	return out
}

// trackCompletion wires an OnStore observer that marks a (src,dst) pair
// complete the first time its stored shortest path matches the oracle.
func trackCompletion(opts *engine.Options, pred string, want map[string]float64) *metrics.Completion {
	comp := metrics.NewCompletion(len(want))
	prev := opts.OnStore
	opts.OnStore = func(nodeID string, d engine.Delta, now float64) {
		if prev != nil {
			prev(nodeID, d, now)
		}
		if d.Sign < 0 || d.Tuple.Pred != pred {
			return
		}
		key := d.Tuple.Fields[0].Addr() + "," + d.Tuple.Fields[1].Addr()
		best, ok := want[key]
		if !ok {
			return
		}
		cost := d.Tuple.Fields[len(d.Tuple.Fields)-1].Float()
		if math.Abs(cost-best) < 1e-6 {
			comp.Mark(key, now)
		}
	}
	return comp
}

// progFacts accumulates base facts for a parsed program.
type progFacts struct {
	prog *ast.Program
}

func (p *progFacts) addLink(pred, a, b string, cost float64) {
	p.addFact(programs.LinkFact(pred, a, b, cost))
}

func (p *progFacts) addFact(t val.Tuple) {
	p.prog.Facts = append(p.prog.Facts, t)
}

// VerifyAgainstOracle compares a run's shortestPath costs against the
// Dijkstra oracle, returning the number of missing or wrong pairs.
func VerifyAgainstOracle(cl *engine.Cluster, pred string, want map[string]float64) (missing, wrong int) {
	got := map[string]float64{}
	for _, t := range cl.Tuples(pred) {
		key := t.Fields[0].Addr() + "," + t.Fields[1].Addr()
		got[key] = t.Fields[len(t.Fields)-1].Float()
	}
	for k, w := range want {
		g, ok := got[k]
		switch {
		case !ok:
			missing++
		case math.Abs(g-w) > 1e-6:
			wrong++
		}
	}
	return missing, wrong
}

// fmtPct renders a ratio as a percentage string.
func fmtPct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }
