package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ndlog/internal/engine"
	"ndlog/internal/metrics"
	"ndlog/internal/programs"
	"ndlog/internal/topology"
)

// UpdateResult is the Figure 13/14 outcome: incremental maintenance
// under periodic bursts of link cost updates.
type UpdateResult struct {
	Bandwidth []metrics.Point // per-node kBps over the whole horizon
	// InitialPeak is the peak during the from-scratch computation;
	// BurstPeak the highest peak after any update burst. The paper
	// reports bursts peaking at ~32% of the initial peak.
	InitialPeak, BurstPeak float64
	// InitialMB is the cost of the from-scratch computation; BurstAvgMB
	// the average per-burst cost (the paper reports ~26%).
	InitialMB, BurstAvgMB float64
	Bursts                int
	// Missing/Wrong verify the final state against a Dijkstra oracle on
	// the final link costs (both 0 for a correct run).
	Missing, Wrong int
}

// RunUpdates reproduces Figures 13 and 14. The Random metric is used
// (the paper's most demanding case). Every interval (cycled from
// intervals: Figure 13 uses {10}, Figure 14 uses {2, 8}), updateFrac of
// all links get their cost perturbed by up to maxDelta (10% and ±10% in
// the paper). horizon is the virtual-time length of the run after
// initial convergence.
func RunUpdates(cfg Config, intervals []float64, horizon, updateFrac, maxDelta float64) (UpdateResult, error) {
	o := BuildOverlay(cfg)
	res := UpdateResult{}

	// The distance-vector path keying (one stored path per next hop, as
	// in the paper's Figure 1 table) keeps per-node state bounded so
	// update cascades stay proportional to the change, not to history.
	dep, err := deploy(cfg, o, programs.ShortestPathDV(""), engine.Options{AggSel: true},
		engine.ClusterConfig{}, map[string]topology.Metric{"": topology.Random}, nil)
	if err != nil {
		return res, err
	}
	if err := dep.cluster.Seed(); err != nil {
		return res, err
	}
	if !dep.sim.RunToQuiescence(cfg.MaxEvents) {
		return res, fmt.Errorf("initial run did not quiesce")
	}
	res.InitialMB = dep.bw.TotalMB()
	res.InitialPeak = dep.bw.PeakKBps()
	converged := dep.sim.LastDelivery()

	// Schedule bursts. Updates mutate the overlay's link costs in place
	// (the oracle reads the same structures) and are injected at both
	// endpoints as primary-key replacements (update = delete + insert).
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	var burstTimes []float64
	t := converged
	for i := 0; ; i++ {
		t += intervals[i%len(intervals)]
		if t > converged+horizon {
			break
		}
		burstTimes = append(burstTimes, t)
	}
	type burstStat struct{ startMB float64 }
	var stats []burstStat
	for _, bt := range burstTimes {
		dep.sim.ScheduleFunc(bt-dep.sim.Now(), func(now float64) {
			stats = append(stats, burstStat{startMB: dep.bw.TotalMB()})
			applyBurst(dep, o, rng, updateFrac, maxDelta)
		})
	}
	if !dep.sim.RunToQuiescence(cfg.MaxEvents) {
		return res, fmt.Errorf("update run did not quiesce")
	}

	res.Bursts = len(stats)
	res.Bandwidth = dep.bw.PerNodeKBps()
	// Burst peak: the highest bucket after the initial convergence.
	for _, p := range res.Bandwidth {
		if p.T > converged+intervals[0]/2 && p.V > res.BurstPeak {
			res.BurstPeak = p.V
		}
	}
	if len(stats) > 0 {
		res.BurstAvgMB = (dep.bw.TotalMB() - stats[0].startMB) / float64(len(stats))
	}
	res.Missing, res.Wrong = VerifyAgainstOracle(dep.cluster, "shortestPath",
		oracle(o, topology.Random))
	return res, nil
}

// applyBurst perturbs updateFrac of all overlay links by up to ±maxDelta
// (relative), updating both the oracle's view (the overlay) and the
// running cluster.
func applyBurst(dep *deployment, o *topology.Overlay, rng *rand.Rand, updateFrac, maxDelta float64) {
	n := int(float64(len(o.Links)) * updateFrac)
	if n < 1 {
		n = 1
	}
	perm := rng.Perm(len(o.Links))[:n]
	for _, idx := range perm {
		l := o.Links[idx]
		live, ok := o.Link(l.A, l.B)
		if !ok {
			continue
		}
		old := live.Cost[topology.Random]
		delta := (rng.Float64()*2 - 1) * maxDelta * old
		cost := old + delta
		if cost < 0.01 {
			cost = 0.01
		}
		if cost == old {
			// A same-value re-insert would be a duplicate (count++), not
			// an update; nudge so the primary-key replacement fires.
			cost = old * (1 + maxDelta/2)
		}
		live.Cost[topology.Random] = cost
		// Inject as primary-key replacement at both endpoints.
		dep.cluster.Inject(string(l.A), engine.Insert(programs.LinkFact("link", string(l.A), string(l.B), cost)))
		dep.cluster.Inject(string(l.B), engine.Insert(programs.LinkFact("link", string(l.B), string(l.A), cost)))
	}
}

// FormatUpdates renders the Figure 13/14 series and summary.
func FormatUpdates(r UpdateResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n\n", title)
	b.WriteString(metrics.FormatSeries("time", []string{"kBps/node"},
		[][]metrics.Point{r.Bandwidth}))
	fmt.Fprintf(&b, "\nInitial computation: %.3f MB, peak %.2f kBps\n", r.InitialMB, r.InitialPeak)
	burstPeakPct, burstMBPct := 0.0, 0.0
	if r.InitialPeak > 0 {
		burstPeakPct = r.BurstPeak / r.InitialPeak
	}
	if r.InitialMB > 0 {
		burstMBPct = r.BurstAvgMB / r.InitialMB
	}
	fmt.Fprintf(&b, "Bursts: %d; avg cost %.3f MB (%s of from-scratch), peak %.2f kBps (%s of initial peak)\n",
		r.Bursts, r.BurstAvgMB, fmtPct(burstMBPct), r.BurstPeak, fmtPct(burstPeakPct))
	fmt.Fprintf(&b, "Final-state oracle check: missing=%d wrong=%d\n", r.Missing, r.Wrong)
	return b.String()
}
