package topology

import (
	"math"
	"testing"

	"ndlog/internal/simnet"
)

func TestTransitStubShape(t *testing.T) {
	u := TransitStub(DefaultTransitStub())
	if len(u.Nodes) != 100 {
		t.Fatalf("nodes = %d, want 100 (4 transit + 96 stub)", len(u.Nodes))
	}
	// Transit-transit latency.
	if got := u.Latency("t0", "t1"); got != 0.050 {
		t.Errorf("transit latency = %v", got)
	}
	// Transit-stub latency.
	if got := u.Latency("n0-0-0", "t0"); got != 0.010 {
		t.Errorf("stub latency = %v", got)
	}
	// Intra-stub latency.
	if got := u.Latency("n0-0-0", "n0-0-1"); got != 0.002 {
		t.Errorf("intra latency = %v", got)
	}
	// Non-adjacent: different stubs.
	if got := u.Latency("n0-0-0", "n1-0-0"); !math.IsInf(got, 1) {
		t.Errorf("cross-stub direct latency should be inf, got %v", got)
	}
}

func TestPathLatency(t *testing.T) {
	u := TransitStub(DefaultTransitStub())
	// Same stub: direct 2ms.
	if got := u.PathLatency("n0-0-0", "n0-0-1"); got != 0.002 {
		t.Errorf("same-stub path = %v", got)
	}
	// Same transit, different stub: 10 + 10 = 20ms.
	if got := u.PathLatency("n0-0-0", "n0-1-0"); math.Abs(got-0.020) > 1e-9 {
		t.Errorf("same-transit path = %v", got)
	}
	// Different transit: 10 + 50 + 10 = 70ms.
	if got := u.PathLatency("n0-0-0", "n1-0-0"); math.Abs(got-0.070) > 1e-9 {
		t.Errorf("cross-transit path = %v", got)
	}
	// Unknown node.
	if got := u.PathLatency("n0-0-0", "zzz"); !math.IsInf(got, 1) {
		t.Errorf("unknown dest = %v", got)
	}
}

func TestOverlayConstruction(t *testing.T) {
	u := TransitStub(DefaultTransitStub())
	o := NewOverlay(u, 4, 1)
	if len(o.Nodes) != 100 {
		t.Fatalf("overlay nodes = %d", len(o.Nodes))
	}
	if !o.Connected() {
		t.Fatal("overlay must be connected")
	}
	// Every node has at least 4 neighbors (symmetric closure can add more).
	for _, n := range o.Nodes {
		if d := len(o.Neighbors(n)); d < 4 {
			t.Errorf("node %s degree %d < 4", n, d)
		}
	}
	// Links carry all four metrics with positive costs and latency equal
	// to the underlay shortest path.
	for _, l := range o.Links {
		for _, m := range AllMetrics() {
			if l.Cost[m] <= 0 {
				t.Fatalf("link %s-%s metric %s = %v", l.A, l.B, m, l.Cost[m])
			}
		}
		if want := u.PathLatency(l.A, l.B); math.Abs(l.LatencySec-want) > 1e-9 {
			t.Fatalf("link %s-%s latency %v, underlay %v", l.A, l.B, l.LatencySec, want)
		}
		if l.Cost[HopCount] != 1 {
			t.Fatalf("hop cost = %v", l.Cost[HopCount])
		}
	}
	// Adjacency is symmetric.
	for _, l := range o.Links {
		if la, ok := o.Link(l.A, l.B); !ok || la == nil {
			t.Fatal("missing adjacency A->B")
		}
		if lb, ok := o.Link(l.B, l.A); !ok || lb == nil {
			t.Fatal("missing adjacency B->A")
		}
	}
}

func TestOverlayDeterminism(t *testing.T) {
	u := TransitStub(DefaultTransitStub())
	a := NewOverlay(u, 4, 42)
	b := NewOverlay(u, 4, 42)
	if len(a.Links) != len(b.Links) {
		t.Fatalf("overlay not deterministic: %d vs %d links", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		la, lb := a.Links[i], b.Links[i]
		if la.A != lb.A || la.B != lb.B || la.Cost[Random] != lb.Cost[Random] {
			t.Fatalf("link %d differs: %+v vs %+v", i, la, lb)
		}
	}
}

func TestMetricString(t *testing.T) {
	want := map[Metric]string{
		HopCount: "Hop-Count", Latency: "Latency",
		Reliability: "Reliability", Random: "Random",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if Metric(9).String() == "" {
		t.Error("unknown metric should render")
	}
	if len(AllMetrics()) != 4 {
		t.Error("AllMetrics should have 4 entries")
	}
}

func TestLineAndHopDistance(t *testing.T) {
	o := Line(5, 0.01)
	if !o.Connected() {
		t.Fatal("line should be connected")
	}
	if d := o.HopDistance("n0", "n4"); d != 4 {
		t.Errorf("hop distance = %d", d)
	}
	if d := o.HopDistance("n2", "n2"); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	o2 := Line(2, 0.01)
	if d := o2.HopDistance("n0", "n1"); d != 1 {
		t.Errorf("adjacent distance = %d", d)
	}
}

func TestNeighborhoodFunction(t *testing.T) {
	o := Line(7, 0.01) // n0 - n1 - ... - n6
	cases := []struct {
		node simnet.NodeID
		r    int
		want int
	}{
		{"n3", 0, 1},
		{"n3", 1, 3},
		{"n3", 2, 5},
		{"n3", 3, 7},
		{"n3", 10, 7},
		{"n0", 1, 2},
		{"n0", 6, 7},
	}
	for _, c := range cases {
		if got := o.Neighborhood(c.node, c.r); got != c.want {
			t.Errorf("N(%s,%d) = %d, want %d", c.node, c.r, got, c.want)
		}
	}
}

func TestHybridSplit(t *testing.T) {
	// On a line, N grows linearly from interior nodes and any split has
	// equal cost total+2... verify optimality with brute force semantics:
	// rs+rd == dist and cost == N(s,rs)+N(d,rd) minimal.
	o := Line(9, 0.01)
	rs, rd, cost := o.HybridSplit("n0", "n8")
	if rs+rd != 8 {
		t.Errorf("split radii %d+%d != 8", rs, rd)
	}
	best := 1 << 30
	for r := 0; r <= 8; r++ {
		c := o.Neighborhood("n0", r) + o.Neighborhood("n8", 8-r)
		if c < best {
			best = c
		}
	}
	if cost != best {
		t.Errorf("cost = %d, want %d", cost, best)
	}
	// Disconnected pair.
	u := TransitStub(TransitStubParams{Transits: 1, StubsPerTrans: 1, NodesPerStub: 2,
		TransitLatency: 0.05, StubLatency: 0.01, IntraLatency: 0.002})
	o2 := NewOverlay(u, 1, 3)
	_ = o2
	rs, rd, cost = Line(3, 0.01).HybridSplit("n0", "n2")
	if rs < 0 || rd < 0 || cost <= 0 {
		t.Errorf("line split = %d,%d,%d", rs, rd, cost)
	}
}

func TestShortestPathsOracle(t *testing.T) {
	o := Line(5, 0.01)
	dist, prev := o.ShortestPaths("n0", HopCount)
	if dist["n4"] != 4 {
		t.Errorf("dist n4 = %v", dist["n4"])
	}
	if prev["n4"] != "n3" || prev["n1"] != "n0" {
		t.Errorf("prev = %v", prev)
	}
	// Latency metric on the transit-stub overlay agrees with itself under
	// scaling: distances are finite for all nodes (connected).
	u := TransitStub(DefaultTransitStub())
	ov := NewOverlay(u, 4, 5)
	d2, _ := ov.ShortestPaths(ov.Nodes[0], Latency)
	if len(d2) != len(ov.Nodes) {
		t.Errorf("oracle reached %d of %d nodes", len(d2), len(ov.Nodes))
	}
	for n, d := range d2 {
		if d < 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Errorf("dist[%s] = %v", n, d)
		}
	}
}

func TestNeighborhoodMonotone(t *testing.T) {
	// Property: N(x, r) is non-decreasing in r and bounded by node count.
	u := TransitStub(DefaultTransitStub())
	o := NewOverlay(u, 4, 9)
	for _, x := range []simnet.NodeID{o.Nodes[0], o.Nodes[50], o.Nodes[99]} {
		prev := 0
		for r := 0; r <= 10; r++ {
			n := o.Neighborhood(x, r)
			if n < prev {
				t.Fatalf("N(%s,%d)=%d < N(%s,%d)=%d", x, r, n, x, r-1, prev)
			}
			if n > len(o.Nodes) {
				t.Fatalf("N exceeds node count: %d", n)
			}
			prev = n
		}
		if prev != len(o.Nodes) {
			t.Errorf("N(%s,10) = %d, want %d (diameter < 10)", x, prev, len(o.Nodes))
		}
	}
}
