// Package topology generates the network topologies of the paper's
// evaluation (Section 6.1): GT-ITM-style transit-stub underlays and
// random-neighbor overlays, link metrics (hop-count, latency,
// reliability, random), the neighborhood function N(X,r) used by
// cost-based optimization (Section 5.3), and a Dijkstra oracle that
// supplies ground-truth shortest paths for the "% results" figures.
//
// Generation is deterministic in the seed, so experiments and their
// oracles agree across processes. Underlays and Overlays are immutable
// after construction and safe to share between concurrent readers;
// OverlayLink.Cost maps are shared, never copied — treat them as
// read-only.
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ndlog/internal/simnet"
)

// Underlay is the physical network: nodes and weighted edges where the
// weight is one-way latency in seconds.
type Underlay struct {
	Nodes []simnet.NodeID
	// Latency maps directed pairs; the graph is symmetric.
	lat map[simnet.NodeID]map[simnet.NodeID]float64
}

// TransitStubParams configures the GT-ITM-style generator. The defaults
// (via DefaultTransitStub) match Section 6.1: four transit nodes, three
// stubs per transit, eight nodes per stub, 50/10/2 ms latencies.
type TransitStubParams struct {
	Transits       int
	StubsPerTrans  int
	NodesPerStub   int
	TransitLatency float64 // transit <-> transit
	StubLatency    float64 // transit <-> its stub nodes
	IntraLatency   float64 // node <-> node within one stub
}

// DefaultTransitStub returns the paper's topology parameters (100 nodes:
// 4 transit + 4*3*8 stub nodes).
func DefaultTransitStub() TransitStubParams {
	return TransitStubParams{
		Transits:       4,
		StubsPerTrans:  3,
		NodesPerStub:   8,
		TransitLatency: 0.050,
		StubLatency:    0.010,
		IntraLatency:   0.002,
	}
}

// TransitStub builds the underlay: a full mesh of transit nodes, each
// with StubsPerTrans stub networks; stub nodes form a clique wired to
// their transit node.
func TransitStub(p TransitStubParams) *Underlay {
	u := &Underlay{lat: map[simnet.NodeID]map[simnet.NodeID]float64{}}
	var transits []simnet.NodeID
	for t := 0; t < p.Transits; t++ {
		id := simnet.NodeID(fmt.Sprintf("t%d", t))
		u.addNode(id)
		transits = append(transits, id)
	}
	for i := 0; i < len(transits); i++ {
		for j := i + 1; j < len(transits); j++ {
			u.addEdge(transits[i], transits[j], p.TransitLatency)
		}
	}
	for t := 0; t < p.Transits; t++ {
		for s := 0; s < p.StubsPerTrans; s++ {
			var stub []simnet.NodeID
			for n := 0; n < p.NodesPerStub; n++ {
				id := simnet.NodeID(fmt.Sprintf("n%d-%d-%d", t, s, n))
				u.addNode(id)
				stub = append(stub, id)
				u.addEdge(id, transits[t], p.StubLatency)
			}
			for i := 0; i < len(stub); i++ {
				for j := i + 1; j < len(stub); j++ {
					u.addEdge(stub[i], stub[j], p.IntraLatency)
				}
			}
		}
	}
	sort.Slice(u.Nodes, func(i, j int) bool { return u.Nodes[i] < u.Nodes[j] })
	return u
}

func (u *Underlay) addNode(id simnet.NodeID) {
	if _, ok := u.lat[id]; ok {
		return
	}
	u.lat[id] = map[simnet.NodeID]float64{}
	u.Nodes = append(u.Nodes, id)
}

func (u *Underlay) addEdge(a, b simnet.NodeID, latency float64) {
	u.lat[a][b] = latency
	u.lat[b][a] = latency
}

// Latency returns the direct-edge latency, or +Inf if not adjacent.
func (u *Underlay) Latency(a, b simnet.NodeID) float64 {
	if l, ok := u.lat[a][b]; ok {
		return l
	}
	return math.Inf(1)
}

// PathLatency computes the shortest-path latency between two nodes over
// the underlay (Dijkstra).
func (u *Underlay) PathLatency(a, b simnet.NodeID) float64 {
	dist := u.dijkstra(a)
	if d, ok := dist[b]; ok {
		return d
	}
	return math.Inf(1)
}

func (u *Underlay) dijkstra(src simnet.NodeID) map[simnet.NodeID]float64 {
	dist := map[simnet.NodeID]float64{src: 0}
	pq := &nodeHeap{{id: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeDist)
		if it.d > dist[it.id] {
			continue
		}
		for nb, w := range u.lat[it.id] {
			nd := it.d + w
			if cur, ok := dist[nb]; !ok || nd < cur {
				dist[nb] = nd
				heap.Push(pq, nodeDist{id: nb, d: nd})
			}
		}
	}
	return dist
}

type nodeDist struct {
	id simnet.NodeID
	d  float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Metric identifies a link cost metric from the evaluation.
type Metric uint8

// The four metrics benchmarked in Section 6.2.
const (
	HopCount Metric = iota
	Latency
	Reliability
	Random
)

var metricNames = map[Metric]string{
	HopCount: "Hop-Count", Latency: "Latency",
	Reliability: "Reliability", Random: "Random",
}

// String returns the metric's display name as used in the figures.
func (m Metric) String() string {
	if s, ok := metricNames[m]; ok {
		return s
	}
	return fmt.Sprintf("metric(%d)", uint8(m))
}

// AllMetrics lists the four benchmarked metrics in figure order.
func AllMetrics() []Metric { return []Metric{HopCount, Latency, Reliability, Random} }

// OverlayLink is one (bidirectional) overlay edge with its metric costs.
type OverlayLink struct {
	A, B simnet.NodeID
	// LatencySec is the underlay shortest-path latency between A and B,
	// which is also the simulated delivery latency of the overlay edge.
	LatencySec float64
	// Cost per metric. Costs are additive along paths; Reliability is
	// -log(linkReliability) scaled, so minimizing the sum maximizes
	// end-to-end reliability. Random is uniform in [1, 100).
	Cost map[Metric]float64
}

// Overlay is the logical network the NDlog program runs on.
type Overlay struct {
	Nodes []simnet.NodeID
	Links []OverlayLink // one entry per undirected edge
	adj   map[simnet.NodeID]map[simnet.NodeID]*OverlayLink
}

// NewOverlay builds an overlay where every node picks degree random
// neighbors (edges are symmetric; the realized degree is >= degree).
// The construction retries until the overlay is connected so that
// all-pairs experiments have complete answers.
func NewOverlay(u *Underlay, degree int, seed int64) *Overlay {
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; ; attempt++ {
		o := buildOverlay(u, degree, rng)
		if o.Connected() {
			return o
		}
		if attempt > 50 {
			// Extremely unlikely with degree 4 on 100 nodes; fall back to
			// the last attempt rather than looping forever.
			return o
		}
	}
}

func buildOverlay(u *Underlay, degree int, rng *rand.Rand) *Overlay {
	o := &Overlay{
		Nodes: append([]simnet.NodeID(nil), u.Nodes...),
		adj:   map[simnet.NodeID]map[simnet.NodeID]*OverlayLink{},
	}
	for _, n := range o.Nodes {
		o.adj[n] = map[simnet.NodeID]*OverlayLink{}
	}
	// Precompute underlay distances from every node (cheap at 100 nodes).
	dist := map[simnet.NodeID]map[simnet.NodeID]float64{}
	for _, n := range o.Nodes {
		dist[n] = u.dijkstra(n)
	}
	for _, n := range o.Nodes {
		for len(o.adj[n]) < degree {
			nb := o.Nodes[rng.Intn(len(o.Nodes))]
			if nb == n {
				continue
			}
			if _, dup := o.adj[n][nb]; dup {
				continue
			}
			lat := dist[n][nb]
			// Reliability: loss correlated with latency (Section 6.1) —
			// longer links lose more. Convert to an additive cost.
			loss := 0.01 + 2.0*lat
			relCost := -math.Log(1 - loss)
			link := &OverlayLink{
				A: n, B: nb, LatencySec: lat,
				Cost: map[Metric]float64{
					HopCount:    1,
					Latency:     lat * 1000, // milliseconds
					Reliability: relCost * 1000,
					Random:      1 + rng.Float64()*99,
				},
			}
			o.Links = append(o.Links, *link)
			o.adj[n][nb] = link
			o.adj[nb][n] = link
		}
	}
	return o
}

// Neighbors returns a node's overlay neighbors in sorted order.
func (o *Overlay) Neighbors(n simnet.NodeID) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(o.adj[n]))
	for nb := range o.adj[n] {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Link returns the overlay link between two adjacent nodes.
func (o *Overlay) Link(a, b simnet.NodeID) (*OverlayLink, bool) {
	l, ok := o.adj[a][b]
	return l, ok
}

// Connected reports whether the overlay is a single component.
func (o *Overlay) Connected() bool {
	if len(o.Nodes) == 0 {
		return true
	}
	seen := map[simnet.NodeID]bool{o.Nodes[0]: true}
	stack := []simnet.NodeID{o.Nodes[0]}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range o.adj[n] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(o.Nodes)
}

// Neighborhood computes the neighborhood function N(x, r): the number of
// distinct nodes within r overlay hops of x (Section 5.3). N(x, 0) = 1.
func (o *Overlay) Neighborhood(x simnet.NodeID, r int) int {
	seen := map[simnet.NodeID]bool{x: true}
	frontier := []simnet.NodeID{x}
	for hop := 0; hop < r && len(frontier) > 0; hop++ {
		var next []simnet.NodeID
		for _, n := range frontier {
			for nb := range o.adj[n] {
				if !seen[nb] {
					seen[nb] = true
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return len(seen)
}

// HopDistance returns the overlay hop count between two nodes (BFS), or
// -1 if unreachable.
func (o *Overlay) HopDistance(a, b simnet.NodeID) int {
	if a == b {
		return 0
	}
	seen := map[simnet.NodeID]bool{a: true}
	frontier := []simnet.NodeID{a}
	for hop := 1; len(frontier) > 0; hop++ {
		var next []simnet.NodeID
		for _, n := range frontier {
			for nb := range o.adj[n] {
				if nb == b {
					return hop
				}
				if !seen[nb] {
					seen[nb] = true
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return -1
}

// HybridSplit solves the cost-based rewrite optimization of Section 5.3:
// split the search radius dist(s,d) between s and d to minimize
// N(s,rs) + N(d,rd) subject to rs + rd = dist(s,d). It returns the
// optimal radii and the message-cost estimate.
func (o *Overlay) HybridSplit(s, d simnet.NodeID) (rs, rd, cost int) {
	total := o.HopDistance(s, d)
	if total < 0 {
		return -1, -1, -1
	}
	best := math.MaxInt
	for r := 0; r <= total; r++ {
		c := o.Neighborhood(s, r) + o.Neighborhood(d, total-r)
		if c < best {
			best = c
			rs, rd = r, total-r
		}
	}
	return rs, rd, best
}

// ShortestPaths runs Dijkstra over the overlay for one metric from src,
// returning cost and predecessor maps. It is the oracle against which
// the engine's distributed answers are verified.
func (o *Overlay) ShortestPaths(src simnet.NodeID, m Metric) (map[simnet.NodeID]float64, map[simnet.NodeID]simnet.NodeID) {
	dist := map[simnet.NodeID]float64{src: 0}
	prev := map[simnet.NodeID]simnet.NodeID{}
	pq := &nodeHeap{{id: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeDist)
		if it.d > dist[it.id] {
			continue
		}
		// Deterministic neighbor order for stable tie-breaking.
		for _, nb := range o.Neighbors(it.id) {
			l := o.adj[it.id][nb]
			nd := it.d + l.Cost[m]
			if cur, ok := dist[nb]; !ok || nd < cur {
				dist[nb] = nd
				prev[nb] = it.id
				heap.Push(pq, nodeDist{id: nb, d: nd})
			}
		}
	}
	return dist, prev
}

// Line builds a simple path topology n0-n1-...-n(k-1) with uniform
// latency, for tests and examples.
func Line(k int, latency float64) *Overlay {
	o := &Overlay{adj: map[simnet.NodeID]map[simnet.NodeID]*OverlayLink{}}
	for i := 0; i < k; i++ {
		id := simnet.NodeID(fmt.Sprintf("n%d", i))
		o.Nodes = append(o.Nodes, id)
		o.adj[id] = map[simnet.NodeID]*OverlayLink{}
	}
	for i := 0; i+1 < k; i++ {
		a, b := o.Nodes[i], o.Nodes[i+1]
		l := &OverlayLink{A: a, B: b, LatencySec: latency, Cost: map[Metric]float64{
			HopCount: 1, Latency: latency * 1000, Reliability: 1, Random: 1,
		}}
		o.Links = append(o.Links, *l)
		o.adj[a][b] = l
		o.adj[b][a] = l
	}
	return o
}
