package programs

import "fmt"

// LinkState returns a link-state routing protocol in NDlog: every node
// floods its adjacent links to the whole network, assembles the full
// topology database, and runs its own shortest-path computation locally
// — the OSPF division of labor, in contrast to the distributed
// recursion of ShortestPathDV (where each hop contributes one rule
// firing to someone else's route).
//
// The flood (ls1/ls2) is hop-bounded: every update carries a
// decreasing hop budget H, which makes the derivation graph acyclic —
// re-flooded copies never support their own ancestors. That matters
// for deletions: link retractions (failures, cost changes) propagate
// through the paper's count algorithm, which is exact only on acyclic
// derivations; the H-versions collapse into the hop-free lsa view
// (ls3), whose count is the number of surviving H-versions and reaches
// zero exactly when the origin withdrew the link. maxHop must be at
// least the network diameter or distant nodes see a partial database.
//
// The local computation (r1–r4) is the Figure 1 shape — cycle-guarded
// path enumeration, min-cost aggregate, next-hop selection — but joins
// only node-local lsa rows: no rule below the flood crosses a link.
func LinkState(maxHop int) string {
	return fmt.Sprintf(`
materialize(link, infinity, infinity, keys(1,2)).
materialize(lsu, infinity, infinity, keys(1,2,3,5)).
materialize(lsa, infinity, infinity, keys(1,2,3)).
materialize(lpath, infinity, infinity, keys(1,2,3)).
materialize(lsCost, infinity, infinity, keys(1,2)).
materialize(lsRoute, infinity, infinity, keys(1,2,3)).

// Flood: originate adjacent links with a full hop budget, re-flood
// with one hop less until the budget runs out.
ls1 lsu(@N, @N, @D, C, H) :- #link(@N, @D, C), H := %d.
ls2 lsu(@M, @S, @D, C, H2) :- lsu(@N, @S, @D, C, H), #link(@N, @M, _C2),
	H > 0, H2 := H - 1.

// Topology database: the hop-free view of everything that reached us.
ls3 lsa(@N, @S, @D, C) :- lsu(@N, @S, @D, C, _H).

// Local SPF over the database. The path vector doubles as the cycle
// guard; joins run entirely against this node's own lsa rows.
r1 lpath(@N, @D, P, C) :- lsa(@N, @S, @D, C), S == N, P := f_concatPath(S, [D]).
r2 lpath(@N, @D2, P2, C3) :- lpath(@N, @Z, P1, C1), lsa(@N, @S, @D2, C2),
	S == Z, f_member(P1, D2) == false, C3 := C1 + C2, P2 := f_append(P1, D2).
r3 lsCost(@N, @D, min<C>) :- lpath(@N, @D, _P, C).
r4 lsRoute(@N, @D, @F, C) :- lsCost(@N, @D, C), lpath(@N, @D, P, C),
	F := f_nth(P, 1).

query lsRoute(@N, @D, @F, C).
`, maxHop)
}

// DefaultMaxHop comfortably covers the diameters of the harness's
// random connected topologies at the scales the conformance suite runs.
const DefaultMaxHop = 10
