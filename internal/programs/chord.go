package programs

import (
	"fmt"

	"ndlog/internal/val"
)

// ChordConfig sets the soft-state lifetimes (virtual seconds) of the
// Chord program. The defaults assume the harness fires stabilization
// ticks every ~2s and expiry sweeps at least twice per second.
//
// The program splits its predicates into three lifetime classes, and
// the split carries the protocol's correctness (see DESIGN.md §10):
//
//   - Events (lifetime 0): ticks, the stabilization request askSucc.
//     Fired, processed, gone. Nothing downstream of an event is ever
//     retracted through it, so a later change to the tables an event
//     joined (bestSucc moving to a better successor) cannot cascade a
//     deletion into state derived from past rounds. Without this, the
//     ring oscillates: adopting a better successor would retract the
//     very evidence that justified adopting it.
//
//   - Refreshed soft state (succ, predCand, pred, finger, lookup,
//     lookupRes): re-derived every round by event-triggered rules.
//     A duplicate insert refreshes the TTL in place; a dead peer stops
//     producing refreshes and its rows age out. The TTL is the failure
//     detector: SuccTTL bounds how long a dead successor haunts the
//     ring views before the next candidate takes over.
//
//   - Aggregate views (bsDist, idmap, pdDist, cand, and bestSucc /
//     pred through them): maintained incrementally from insertions and
//     expiries of the state class, never refreshed themselves.
//     HorizonTTL just keeps them formally soft (the analyzer's
//     lifetime check: state downstream of soft state must be soft) on
//     a horizon far beyond any run.
type ChordConfig struct {
	SuccTTL    float64 // succ/predCand/pred: staleness bound for dead peers
	ReqTTL     float64 // in-flight lookup state (lookup, hopDist)
	ResTTL     float64 // lookupRes rows (answers; consumed by j2/f2)
	FingerTTL  float64 // finger rows: staleness bound for dead fingers
	HorizonTTL float64 // aggregate views; maintained by deltas, never refreshed
}

// DefaultChordConfig matches a 2s stabilization period and ~2.5s
// fixFingers period.
func DefaultChordConfig() ChordConfig {
	return ChordConfig{
		SuccTTL:    6,
		ReqTTL:     3,
		ResTTL:     4,
		FingerTTL:  6,
		HorizonTTL: 3600,
	}
}

// Chord returns the Chord DHT in NDlog — the paper's flagship witness
// that a real protocol compresses to a few dozen rules (Section 5,
// P2's 47-rule program). This formulation covers ring join via a
// landmark, periodic successor stabilization with notify (the MIT
// Chord paper's stabilize()/notify() pair), a depth-2 successor list
// for fault tolerance, finger tables built from periodic lookups, and
// greedy lookup routing through the closest preceding candidate.
//
// Identifiers are rule-generated: i1 hashes each node's own address
// onto the 2^32 ring with f_id, and every interval decision runs
// through the wraparound builtins (f_ringdist, f_inrange, f_inrangeoo).
// f_ringdist treats "self" as the farthest successor candidate, so a
// lone landmark is its own successor and answers every lookup without
// bootstrap special cases.
//
// The protocol is tick-driven: the harness injects joinTick / stab /
// fingTick events. Lookup-carrying predicates keep a round number Q so
// a harness can correlate an injected lookup with its answer; the
// stabilization state itself needs no rounds — events make each round
// a one-shot re-derivation that refreshes soft state in place.
func Chord(cfg ChordConfig) string {
	return fmt.Sprintf(`
materialize(node, infinity, infinity, keys(1)).
materialize(landmark, infinity, infinity, keys(1,2)).
materialize(conn, infinity, infinity, keys(1,2)).
materialize(fexp, infinity, infinity, keys(1,2)).
materialize(ident, infinity, infinity, keys(1,2)).
materialize(joinTick, 0, infinity, keys(1,2)).
materialize(stab, 0, infinity, keys(1,2)).
materialize(fingTick, 0, infinity, keys(1,2)).
materialize(askSucc, 0, infinity, keys(1,2,3)).
materialize(succ, %[1]g, infinity, keys(1,2,3)).
materialize(predCand, %[1]g, infinity, keys(1,2,3)).
materialize(pred, %[1]g, infinity, keys(1,2,3)).
materialize(lookup, %[2]g, infinity, keys(1,2,3,4)).
materialize(hopDist, %[2]g, infinity, keys(1,2,3)).
materialize(lookupRes, %[3]g, infinity, keys(1,2,3,4,5)).
materialize(finger, %[4]g, infinity, keys(1,2,5)).
materialize(cand, %[5]g, infinity, keys(1,2)).
materialize(bsDist, %[5]g, infinity, keys(1)).
materialize(idmap, %[5]g, infinity, keys(1,2)).
materialize(bestSucc, %[5]g, infinity, keys(1,2,3)).
materialize(pdDist, %[5]g, infinity, keys(1)).

// Every node hashes its own address onto the ring.
i1 ident(@N, I) :- node(@N), I := f_id(N).

// Join: look up our own identifier through the landmark; the answer is
// our live successor.
j1 lookup(@L, K, @N, Q) :- joinTick(@N, Q), landmark(@N, @L), ident(@N, K),
	#conn(@N, @L).
j2 succ(@N, @S, SI) :- lookupRes(@N, K, @S, SI, _Q), ident(@N, K).

// Best successor: the candidate with the smallest clockwise distance.
// f_ringdist(I, I) is the full ring, so a node's own entry never beats
// a real peer — and keeps a lone landmark bootstrapped.
//
// The argmin is recovered through idmap (ring id -> address), itself an
// aggregate, rather than by rejoining succ. That choice is load-bearing:
// refreshes of soft state re-run normal rule strands, but skip
// aggregate strands — so with b1/m1 as the dampers, per-round refresh
// traffic stops here, and bestSucc re-derives only when the minimum
// actually moves.
b1 bsDist(@N, min<D>) :- succ(@N, @_S, SI), ident(@N, I), D := f_ringdist(I, SI).
m1 idmap(@N, SI, max<S>) :- succ(@N, @S, SI).
b2 bestSucc(@N, @S, SI) :- bsDist(@N, D), ident(@N, I), idmap(@N, SI, @S),
	SI == f_ringadd(I, D).

// Stabilize: each round, ask the current successor. It confirms itself
// (s2: the refresh that keeps live successors alive), hands back its
// predecessor (s3: if someone slid between us, we adopt it via b1 —
// this is also what closes the 2-node ring at the landmark), and hands
// back its own successor (s4: a depth-2 successor list, the fallback
// when our successor dies).
//
// askSucc is an event on purpose. If it were stored, a bestSucc
// improvement would retract the ask that discovered it and cascade
// into retracting the discovery itself — restoring the old bestSucc
// and oscillating forever. An ask is an instant: what it derived
// stands until it expires or is refreshed away.
s1 askSucc(@S, @N, Q) :- stab(@N, Q), bestSucc(@N, @S, _SI), #conn(@N, @S).
s2 succ(@N, @S, SI) :- askSucc(@S, @N, _Q), ident(@S, SI), #conn(@S, @N).
s3 succ(@N, @X, XI) :- askSucc(@S, @N, _Q), pred(@S, @X, XI), #conn(@S, @N).
s4 succ(@N, @T, TI) :- askSucc(@S, @N, _Q), bestSucc(@S, @T, TI), #conn(@S, @N).

// Notify: tell the successor we exist; it keeps the closest notifier
// as predecessor (p1/p2, an argmin like b1/b2 but keyed on distance
// TO self).
n1 predCand(@S, @N, NI) :- stab(@N, _Q), bestSucc(@N, @S, _SI), ident(@N, NI),
	#conn(@N, @S).
p1 pdDist(@N, min<D>) :- predCand(@N, @_P, PI), ident(@N, I), D := f_ringdist(PI, I).
p2 pred(@N, @P, PI) :- pdDist(@N, D), predCand(@N, @P, PI), ident(@N, I),
	D == f_ringdist(PI, I).

// Candidate view for routing: successors double as fingers (f0, with
// the successor's own identifier standing in for both a target and a
// round tag), and cand aggregates the live finger rows per peer. As an
// aggregate it is stable across refresh rounds — l2/l3 below see a
// candidate appear once and vanish only when its last supporting row
// expires. Finger rows carry the round of the lookup that built them
// (f2): when that round's answer expires, its cancellation takes out
// only its own round's row, and the overlapping next round keeps the
// cand entry — and every lookup routed through it — alive. Without the
// round column the cancellation would blip the candidate off every few
// seconds and the resulting retraction wave would chase down in-flight
// lookups, including answers already delivered.
f0 finger(@N, SI, @S, SI, SI) :- succ(@N, @S, SI).
c1 cand(@N, @F, max<FI>) :- finger(@N, _T, @F, FI, _Q).

// Lookup routing. A key in (me, bestSucc] resolves to bestSucc (l1).
// Otherwise forward greedily: among known candidates strictly between
// me and the key, pick the farthest one — Chord's closest-preceding-
// finger rule — via the hopDist max (l2/l3).
l1 lookupRes(@R, K, @S, SI, Q) :- lookup(@N, K, @R, Q), ident(@N, I),
	bestSucc(@N, @S, SI), f_inrange(K, I, SI) == true, #conn(@N, @R).
l2 hopDist(@N, K, Q, max<D>) :- lookup(@N, K, @_R, Q), cand(@N, @_F, FI),
	ident(@N, I), bestSucc(@N, @_S, SI), f_inrange(K, I, SI) == false,
	f_inrangeoo(FI, I, K) == true, D := f_ringdist(I, FI).
l3 lookup(@F, K, @R, Q) :- hopDist(@N, K, Q, D), lookup(@N, K, @R, Q),
	cand(@N, @F, FI), ident(@N, I), D == f_ringdist(I, FI), #conn(@N, @F).

// Fix fingers: periodically look up I + 2^k for each configured k; the
// answer becomes the finger for that target, stamped with its round.
f1 lookup(@N, T, @N, Q) :- fingTick(@N, Q), fexp(@N, _K, P), ident(@N, I),
	T := f_ringadd(I, P).
f2 finger(@N, T, @S, SI, Q) :- lookupRes(@N, T, @S, SI, Q).

query lookupRes(@R, K, @S, SI, Q).
`, cfg.SuccTTL, cfg.ReqTTL, cfg.ResTTL, cfg.FingerTTL, cfg.HorizonTTL)
}

// ChordNodeFacts builds the per-node base facts for Chord: the node
// row, its landmark, and one fexp row per finger exponent k (holding
// 2^k, precomputed because NDlog has no exponentiation — the identifier
// arithmetic itself stays in rules via f_ringadd).
func ChordNodeFacts(node, landmark string, fingerExps []int) []val.Tuple {
	out := []val.Tuple{
		val.NewTuple("node", val.NewAddr(node)),
		val.NewTuple("landmark", val.NewAddr(node), val.NewAddr(landmark)),
	}
	for _, k := range fingerExps {
		out = append(out, val.NewTuple("fexp",
			val.NewAddr(node), val.NewInt(int64(k)), val.NewInt(int64(1)<<uint(k))))
	}
	return out
}

// ConnFact declares that node may address peer directly (Chord runs on
// a full mesh: any node may acquire any other as successor or finger).
// Include peer == node: rules that answer or stabilize "to self" (the
// lone landmark, a lookup resolving at its requestor) join on the self
// row and the engine short-circuits the delivery locally.
func ConnFact(node, peer string) val.Tuple {
	return val.NewTuple("conn", val.NewAddr(node), val.NewAddr(peer))
}

// ChordSelfSuccFact seeds the landmark's self-successor, the one tuple
// that exists before any protocol round: the lone node is its own
// successor (at full-ring distance, so any real joiner displaces it).
// id must be the node's ring identifier (funcs.RingID of its address).
// Stabilization rounds refresh it in place from then on.
func ChordSelfSuccFact(node string, id int64) val.Tuple {
	return val.NewTuple("succ",
		val.NewAddr(node), val.NewAddr(node), val.NewInt(id))
}

// Tick builders. Ticks are events: the round number is not a key (the
// tuple is never stored) but stamps the lookups a tick spawns, letting
// harnesses correlate answers with the tick or client request that
// caused them.
func StabTick(node string, round int64) val.Tuple {
	return val.NewTuple("stab", val.NewAddr(node), val.NewInt(round))
}

func JoinTick(node string, round int64) val.Tuple {
	return val.NewTuple("joinTick", val.NewAddr(node), val.NewInt(round))
}

func FingTick(node string, round int64) val.Tuple {
	return val.NewTuple("fingTick", val.NewAddr(node), val.NewInt(round))
}

// LookupFact injects a client lookup for key at node; the answer
// returns to node as lookupRes(node, key, succ, succID, round).
func LookupFact(node string, key, round int64) val.Tuple {
	return val.NewTuple("lookup",
		val.NewAddr(node), val.NewInt(key), val.NewAddr(node), val.NewInt(round))
}
