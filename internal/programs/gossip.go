package programs

import (
	"fmt"

	"ndlog/internal/val"
)

// GossipConfig sets the soft-state lifetimes (virtual seconds) of the
// epidemic failure detector. RumorTTL should cover a few gossip rounds
// (late rumors still count as evidence of life); KnowTTL garbage-
// collects view entries whose counters have stopped rising. Neither TTL
// is the detection timeout: detection reads the counters (see Gossip).
type GossipConfig struct {
	RumorTTL float64 // received heartbeat copies
	KnowTTL  float64 // the liveness view; the detection timeout
}

// DefaultGossipConfig matches a 1s gossip round.
func DefaultGossipConfig() GossipConfig {
	return GossipConfig{RumorTTL: 5, KnowTTL: 9}
}

// Gossip returns an epidemic (anti-entropy push) failure detector in
// three rules. Every node heartbeats a rising counter (hb, injected by
// the harness); rumors carry heartbeat observations between nodes; the
// know view keeps, per observed node, the freshest counter heard (g2's
// max). Each round the harness picks one random partner per node (peer
// facts) and g3 pushes the full liveness view to it.
//
// The monotone counter + max aggregate is what tames the epidemic:
// re-hearing an already-known counter leaves the max unchanged and
// triggers nothing downstream, so per round each node forwards each
// entry at most once — infection spreads in O(log n) rounds without
// refresh storms.
//
// Failure detection is heartbeat staleness: a dead node's counter stops
// rising, so its know entries freeze while every live counter keeps
// climbing, and a reader declares any entry lagging past its threshold
// failed — there is no explicit failure message anywhere in the
// program. The TTLs only bound state: they cannot serve as the
// detector, because g3 forwards know entries and a forwarded stale
// entry re-derives the receiver's row with a fresh lifetime, making
// pure TTL expiry of a well-connected entry unboundedly late. Rows for
// a dead node do age out eventually — a counter that never rises stops
// re-deriving them — reclaiming the memory after detection has long
// since fired.
//
// hb and peer are events (lifetime 0): each injected heartbeat or
// partner choice triggers its rule once against stored state and is
// never stored itself. Storing them would make every expiry re-derive
// a deletion cascade through g1/g3 that chases down rumor rows the
// receiver still needs — the protocol's only deletions are TTL decay.
func Gossip(cfg GossipConfig) string {
	return fmt.Sprintf(`
materialize(conn, infinity, infinity, keys(1,2)).
materialize(peer, 0, infinity, keys(1,2,3)).
materialize(hb, 0, infinity, keys(1,2)).
materialize(rumor, %[1]g, infinity, keys(1,2,3)).
materialize(know, %[2]g, infinity, keys(1,2)).

// Our own heartbeat is a rumor about ourselves.
g1 rumor(@N, @N, C) :- hb(@N, C).

// Liveness view: freshest counter heard per node.
g2 know(@N, @X, max<C>) :- rumor(@N, @X, C).

// Push the view to this round's partner.
g3 rumor(@P, @X, C) :- peer(@N, @P, _Q), know(@N, @X, C), #conn(@N, @P).

query know(@N, @X, C).
`, cfg.RumorTTL, cfg.KnowTTL)
}

// HeartbeatFact injects one heartbeat for node with the given (rising)
// counter.
func HeartbeatFact(node string, counter int64) val.Tuple {
	return val.NewTuple("hb", val.NewAddr(node), val.NewInt(counter))
}

// PeerFact names node's gossip partner for one round.
func PeerFact(node, partner string, round int64) val.Tuple {
	return val.NewTuple("peer",
		val.NewAddr(node), val.NewAddr(partner), val.NewInt(round))
}
