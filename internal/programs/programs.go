// Package programs holds the NDlog programs of the paper: the
// shortest-path query of Figure 1 (with the cycle guard that makes the
// unoptimized query terminate on cyclic networks), per-metric renamed
// variants for multi-query experiments, and the magic-sets/top-down
// source-routing program of Section 5.1.2 (SP1-SD..SP4-SD) extended with
// the answer return path used for query-result caching.
//
// Everything here is a pure text or fact generator: functions return
// fresh source strings and freshly built tuples with no shared state,
// so callers may combine, reparse, and append to the results freely.
package programs

import (
	"fmt"
	"strings"

	"ndlog/internal/val"
)

// ShortestPath returns the Figure 1 program. Predicates are suffixed
// with sfx ("" for the canonical names), so several metric variants can
// run side by side in one engine (Section 6.4).
//
// Table keys: path's primary key is (src, dst, pathVector), so a link
// cost update re-derives the same vector with a new cost and replaces
// the old row (update = delete + insert, Section 4). shortestPath uses
// the whole row as its key: equal-cost ties coexist, which the count
// algorithm requires — a (src,dst)-keyed table would let one tie replace
// another and lose the survivor's derivation count.
func ShortestPath(sfx string) string {
	return shortestPathKeyed(sfx, "keys(1,2,4)")
}

// ShortestPathDV is the distance-vector formulation: the recursion runs
// through the aggregate result (a node advertises only its current
// shortest paths, never raw candidates). State per node is bounded by
// #neighbors × #destinations × #tied-optima, so the cascades triggered
// by link-cost updates stay proportional to the change rather than to
// accumulated history: this is the Figure 13/14 configuration.
//
// path is keyed (src, dst, nextHop, pathVector), not just
// (src, dst, nextHop): a neighbor at a cost tie advertises several
// optima at once, and under a nextHop-only key the later advertisement
// silently replaces the earlier one, so when churn later retracts the
// replacement the survivor's row is already gone — a stable wrong
// fixpoint, with nothing in flight to repair it (the count algorithm
// can only retract exactly what was derived). Keying on the vector
// gives every advertised optimum its own row; replacement still
// collapses same-vector cost updates, the one case where
// last-writer-wins is sound on FIFO links.
func ShortestPathDV(sfx string) string {
	r := func(name string) string { return name + sfx }
	return fmt.Sprintf(`
materialize(%[1]s, infinity, infinity, keys(1,2)).
materialize(%[2]s, infinity, infinity, keys(1,2,3,4)).
materialize(%[3]s, infinity, infinity, keys(1,2)).
materialize(%[4]s, infinity, infinity, keys(1,2,3,4)).

dv1%[5]s %[2]s(@S,@D,@D,P,C) :- #%[1]s(@S,@D,C), P := f_concatPath(S, [D]).
dv2%[5]s %[2]s(@S,@D,@Z,P,C) :- #%[1]s(@S,@Z,C1), %[4]s(@Z,@D,P2,C2),
	f_member(P2, S) == false, C := C1 + C2, P := f_concatPath(S, P2).
dv3%[5]s %[3]s(@S,@D,min<C>) :- %[2]s(@S,@D,@_Z,_P,C).
dv4%[5]s %[4]s(@S,@D,P,C) :- %[3]s(@S,@D,C), %[2]s(@S,@D,@_Z,P,C).

query %[4]s(@S,@D,P,C).
`, r("link"), r("path"), r("spCost"), r("shortestPath"), sfx)
}

func shortestPathKeyed(sfx, pathKeys string) string {
	r := func(name string) string { return name + sfx }
	return fmt.Sprintf(`
materialize(%[1]s, infinity, infinity, keys(1,2)).
materialize(%[2]s, infinity, infinity, %[6]s).
materialize(%[3]s, infinity, infinity, keys(1,2)).
materialize(%[4]s, infinity, infinity, keys(1,2,3,4)).

sp1%[5]s %[2]s(@S,@D,@D,P,C) :- #%[1]s(@S,@D,C), P := f_concatPath(S, [D]).
sp2%[5]s %[2]s(@S,@D,@Z,P,C) :- #%[1]s(@S,@Z,C1), %[2]s(@Z,@D,@_Z2,P2,C2),
	f_member(P2, S) == false, C := C1 + C2, P := f_concatPath(S, P2).
sp3%[5]s %[3]s(@S,@D,min<C>) :- %[2]s(@S,@D,@_Z,_P,C).
sp4%[5]s %[4]s(@S,@D,P,C) :- %[3]s(@S,@D,C), %[2]s(@S,@D,@_Z,P,C).

query %[4]s(@S,@D,P,C).
`, r("link"), r("path"), r("spCost"), r("shortestPath"), sfx, pathKeys)
}

// Combine concatenates programs, keeping only the last query statement.
func Combine(srcs ...string) string {
	var b strings.Builder
	for i, s := range srcs {
		if i < len(srcs)-1 {
			s = stripQuery(s)
		}
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}

func stripQuery(src string) string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "query ") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// MagicShortestPath is the magic-shortest-path query of Section 5.1.2:
// predicate reordering turns SP2 left-recursive (top-down exploration
// from the source), magicSrc seeds the search and magicDst filters the
// answer. pathDst tuples accumulate at each node they reach, keyed by
// (node, src, pathVector).
//
// The answer rules implement the reverse path return the paper describes
// for query-result caching (Section 5.2): once shortestPath is known at
// the destination, the answer hops backwards along the discovered path,
// and every node on the way caches its optimal suffix to the
// destination (subpaths of shortest paths are shortest).
func MagicShortestPath() string {
	return `
materialize(link, infinity, infinity, keys(1,2)).
materialize(magicSrc, infinity, infinity, keys(1)).
materialize(magicDst, infinity, infinity, keys(1)).
materialize(pathDst, infinity, infinity, keys(1,2,4)).
materialize(spCostD, infinity, infinity, keys(1,2)).
materialize(shortestPathD, infinity, infinity, keys(1,2,3,4)).
materialize(answer, infinity, infinity, keys(1,2,3,4,5,6)).
materialize(cache, infinity, infinity, keys(1,2)).

sd1 pathDst(@D,@S,@S,P,C) :- magicSrc(@S), #link(@S,@D,C),
	P := f_concatPath(S, [D]).
sd2 pathDst(@D,@S,@Z,P,C) :- pathDst(@Z,@S,@_Z1,P1,C1), #link(@Z,@D,C2),
	f_member(P1, D) == false, C := C1 + C2, P := f_append(P1, D).
sd3 spCostD(@D,@S,min<C>) :- magicDst(@D), pathDst(@D,@S,@_Z,_P,C).
sd4 shortestPathD(@D,@S,P,C) :- spCostD(@D,@S,C), pathDst(@D,@S,@_Z,P,C).

// Answer return: hop backwards along the path vector toward the source.
// SC accumulates the suffix cost from the current node to the
// destination; every node on the reverse path caches it (subpaths of
// shortest paths are themselves shortest).
an1 answer(@D,@S,@D,P,C,SC) :- shortestPathD(@D,@S,P,C), SC := 0.
an2 answer(@Z,@S,@D,P,C,SC2) :- answer(@N,@S,@D,P,C,SC), #link(@N,@Z,C1),
	Z == f_prevHop(P, N), SC2 := SC + C1.
ca1 cache(@N,@D,SC) :- answer(@N,@_S,@D,_P,_C,SC).

query answer(@S2,@S2,@D,P,C,SC).
`
}

// CachedSourceRoute is the query program used for the magic-sets +
// caching experiment (Figure 11). It refines MagicShortestPath in three
// ways needed for many concurrent/sequential (src,dst) queries on one
// deployment:
//
//   - Each exploration tuple carries its query destination QD, so state
//     from different queries never interferes.
//   - localBest maintains the per-(node, src, query) minimum, giving
//     aggregate selections a handle to prune non-improving exploration
//     at every intermediate node (Bellman-Ford-style convergence).
//   - The hit1 rule answers directly from a cached suffix: exploration
//     reaching a node that already knows its best cost to QD returns
//     prefix + suffix without going further. The engine-level cache
//     prune (a StrandFilter on cs2) suppresses exploration past cache
//     hits, which is what makes caching save bandwidth (Section 5.2).
func CachedSourceRoute() string {
	return `
materialize(link, infinity, infinity, keys(1,2)).
materialize(magicQuery, infinity, infinity, keys(1,2)).
materialize(pathDst, infinity, infinity, keys(1,2,3,4)).
materialize(localBest, infinity, infinity, keys(1,2,3)).
materialize(spCostD, infinity, infinity, keys(1,2)).
materialize(shortestPathD, infinity, infinity, keys(1,2,3,4)).
materialize(answer, infinity, infinity, keys(1,2,3,4,5,6)).
materialize(cache, infinity, infinity, keys(1,2)).

cs1 pathDst(@D,@S,@QD,P,C) :- magicQuery(@S,@QD), #link(@S,@D,C),
	P := f_concatPath(S, [D]).
cs2 pathDst(@D,@S,@QD,P,C) :- pathDst(@Z,@S,@QD,P1,C1), #link(@Z,@D,C2),
	f_member(P1, D) == false, C := C1 + C2, P := f_append(P1, D).
cs3 localBest(@N,@S,@QD,min<C>) :- pathDst(@N,@S,@QD,_P,C).
cs4 spCostD(@D,@S,min<C>) :- pathDst(@D,@S,@D,_P,C).
cs5 shortestPathD(@D,@S,P,C) :- spCostD(@D,@S,C), pathDst(@D,@S,@D,P,C).

an1 answer(@D,@S,@D,P,C,SC) :- shortestPathD(@D,@S,P,C), SC := 0.
an2 answer(@Z,@S,@D,P,C,SC2) :- answer(@N,@S,@D,P,C,SC), #link(@N,@Z,C1),
	Z == f_prevHop(P, N), SC2 := SC + C1.
ca1 cache(@N,@D,min<SC>) :- answer(@N,@_S,@D,_P,_C,SC).
hit1 answer(@N,@S,@QD,P,C2,SC) :- pathDst(@N,@S,@QD,P,C), cache(@N,@QD,SC),
	C2 := C + SC.

query answer(@S2,@S2,@D,P,C,SC).
`
}

// Multicast builds a single-source multicast tree on top of the
// distance-vector routing state — the "application-level multicast"
// motivation of the paper's introduction. Every node that joined a group
// (member facts) picks its shortest-path next hop toward the root as its
// tree parent; parents learn their children (a link-restricted rule:
// a parent is always a neighbor) and count their fan-out. Packets
// forwarded down the tree follow child edges.
//
// Combine this source with ShortestPathDV("") and the same link facts.
func Multicast() string {
	return `
materialize(member, infinity, infinity, keys(1,2)).
materialize(parent, infinity, infinity, keys(1,2)).
materialize(child, infinity, infinity, keys(1,2,3)).

// A member's parent toward the root R is the next hop of its shortest
// path to R.
mc1 parent(@N,@R,@Z) :- member(@N,@R), shortestPath(@N,@R,P,_C),
	Z := f_nth(P, 1).

// Parents learn their children. The parent is by construction a
// neighbor, so the rule is link-restricted: the parent tuple joins the
// link whose far end is the parent.
mc2 child(@Z,@R,@N) :- #link(@N,@Z,_C), parent(@N,@R,@Z).

// Interior nodes of the tree are members too: grafting propagates
// toward the root so forwarding state exists along the whole branch.
mc3 member(@N,@R) :- child(@N,@R,@_C2).

// Fan-out per tree node.
mc4 fanout(@N,@R,count<C>) :- child(@N,@R,@C).

query child(@N,@R,@C).
`
}

// MemberFact declares that node joins the multicast group rooted at
// root.
func MemberFact(node, root string) val.Tuple {
	return val.NewTuple("member", val.NewAddr(node), val.NewAddr(root))
}

// MagicQueryFact seeds one (src, dst) query for CachedSourceRoute.
func MagicQueryFact(src, dst string) val.Tuple {
	return val.NewTuple("magicQuery", val.NewAddr(src), val.NewAddr(dst))
}

// LinkFact builds a link tuple for predicate pred.
func LinkFact(pred, src, dst string, cost float64) val.Tuple {
	return val.NewTuple(pred, val.NewAddr(src), val.NewAddr(dst), val.NewFloat(cost))
}

// Magic seed facts for MagicShortestPath.
func MagicSrcFact(src string) val.Tuple {
	return val.NewTuple("magicSrc", val.NewAddr(src))
}

// MagicDstFact seeds the destination filter.
func MagicDstFact(dst string) val.Tuple {
	return val.NewTuple("magicDst", val.NewAddr(dst))
}
