package programs

import (
	"strings"
	"testing"

	"ndlog/internal/analysis"
	"ndlog/internal/parser"
	"ndlog/internal/planner"
)

// TestAllProgramsParseAndCheck keeps every shipped program text in sync
// with the parser and the Definition-6 checker.
func TestAllProgramsParseAndCheck(t *testing.T) {
	srcs := map[string]string{
		"ShortestPath":         ShortestPath(""),
		"ShortestPath(_lat)":   ShortestPath("_lat"),
		"ShortestPathDV":       ShortestPathDV(""),
		"MagicShortestPath":    MagicShortestPath(),
		"CachedSourceRoute":    CachedSourceRoute(),
		"Multicast+DV":         Combine(ShortestPathDV(""), Multicast()),
		"ShortestPath combine": Combine(ShortestPath("_a"), ShortestPath("_b")),
		"Chord":                Chord(DefaultChordConfig()),
		"LinkState":            LinkState(DefaultMaxHop),
		"Gossip":               Gossip(DefaultGossipConfig()),
	}
	for name, src := range srcs {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		if err := planner.Check(prog); err != nil {
			t.Errorf("%s: check: %v", name, err)
		}
		if prog.Query == nil {
			t.Errorf("%s: no query", name)
		}
		if _, err := planner.Localize(prog); err != nil {
			t.Errorf("%s: localize: %v", name, err)
		}
	}
}

// TestProgramsAnalyzerClean holds every shipped program to the full
// analyzer bar, warnings included: generator output must stay free of
// singleton variables, dead rules, type conflicts, and lifetime
// violations, not just Definition 6 errors.
func TestProgramsAnalyzerClean(t *testing.T) {
	srcs := map[string]string{
		"ShortestPath":      ShortestPath(""),
		"ShortestPathDV":    ShortestPathDV(""),
		"MagicShortestPath": MagicShortestPath(),
		"CachedSourceRoute": CachedSourceRoute(),
		"Multicast+DV":      Combine(ShortestPathDV(""), Multicast()),
		"Chord":             Chord(DefaultChordConfig()),
		"LinkState":         LinkState(DefaultMaxHop),
		"Gossip":            Gossip(DefaultGossipConfig()),
	}
	for name, src := range srcs {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		for _, d := range analysis.Analyze(prog) {
			t.Errorf("%s: %s", name, d.Format("<"+name+">"))
		}
	}
}

func TestSuffixedPredicates(t *testing.T) {
	src := ShortestPath("_rnd")
	for _, want := range []string{"link_rnd", "path_rnd", "spCost_rnd", "shortestPath_rnd", "sp1_rnd"} {
		if !strings.Contains(src, want) {
			t.Errorf("suffixed program missing %q", want)
		}
	}
}

func TestCombineKeepsLastQueryOnly(t *testing.T) {
	src := Combine(ShortestPath("_a"), ShortestPath("_b"))
	if got := strings.Count(src, "query "); got != 1 {
		t.Errorf("combined program has %d query statements", got)
	}
	if !strings.Contains(src, "query shortestPath_b") {
		t.Error("last program's query should survive")
	}
}

func TestFactBuilders(t *testing.T) {
	l := LinkFact("link", "a", "b", 2.5)
	if l.Pred != "link" || l.Fields[0].Addr() != "a" || l.Fields[2].Float() != 2.5 {
		t.Errorf("LinkFact = %v", l)
	}
	if f := MagicSrcFact("s"); f.Key() != "magicSrc(s)" {
		t.Errorf("MagicSrcFact = %v", f)
	}
	if f := MagicDstFact("d"); f.Key() != "magicDst(d)" {
		t.Errorf("MagicDstFact = %v", f)
	}
	if f := MagicQueryFact("s", "d"); f.Key() != "magicQuery(s,d)" {
		t.Errorf("MagicQueryFact = %v", f)
	}
	if f := MemberFact("n", "r"); f.Key() != "member(n,r)" {
		t.Errorf("MemberFact = %v", f)
	}
}

// TestAggSelDetectableInShippedPrograms: the optimizer hooks the shipped
// programs rely on must stay detectable after parsing.
func TestAggSelDetectableInShippedPrograms(t *testing.T) {
	for name, src := range map[string]string{
		"ShortestPath":      ShortestPath(""),
		"ShortestPathDV":    ShortestPathDV(""),
		"CachedSourceRoute": CachedSourceRoute(),
	} {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sels := planner.DetectAggSelections(prog)
		prunable := 0
		for _, s := range sels {
			if s.Prunable() {
				prunable++
			}
		}
		if prunable == 0 {
			t.Errorf("%s: no prunable aggregate selection detected", name)
		}
	}
}
