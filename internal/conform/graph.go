package conform

import (
	"math"
	"sort"

	"ndlog/internal/engine"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
)

// graphRun is the shared topology substrate of the hard-state protocol
// harnesses (link-state, path-vector, multicast, DSR): a cost-weighted
// ring with seeded random chords, plus the harness's own copy of the
// edge set — the input every Dijkstra/BFS oracle reads, independent of
// all protocol tables.
//
// Churn retracts and reasserts link facts; the simnet channel
// underneath an edge stays up across failures, because hard-state
// protocols repair by the count algorithm's retraction waves, which
// must still be deliverable (an adjacency withdrawal, not a cable cut —
// there are no TTLs to age out what an unreachable retraction would
// strand). Loss stays at zero for the same reason: exact counting
// assumes reliable delivery, which is precisely the contrast the
// soft-state protocols (Chord, gossip) exercise.
type graphRun struct {
	Net   *Net
	Names []string

	edges   map[[2]string]int64 // live undirected edges, key sorted
	latency float64
	jitter  float64
}

// newGraphRun wires a cost-weighted ring with extra seeded random
// chords onto net and injects the initial link facts at both endpoints
// of every edge. Costs are drawn from [1, maxCost].
func newGraphRun(net *Net, names []string, chords int, latency, jitter float64, maxCost int64) *graphRun {
	g := &graphRun{
		Net: net, Names: names,
		edges: map[[2]string]int64{}, latency: latency, jitter: jitter,
	}
	cost := func() int64 { return 1 + net.Rng.Int63n(maxCost) }
	for i := range names {
		g.addEdge(names[i], names[(i+1)%len(names)], cost())
	}
	for c := 0; c < chords; {
		i, j := net.Rng.Intn(len(names)), net.Rng.Intn(len(names))
		if i == j {
			continue
		}
		if _, dup := g.edges[edgeKey(names[i], names[j])]; dup {
			continue
		}
		g.addEdge(names[i], names[j], cost())
		c++
	}
	return g
}

func edgeKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func (g *graphRun) addEdge(a, b string, cost int64) {
	g.edges[edgeKey(a, b)] = cost
	if !g.Net.Sim.HasLink(simnet.NodeID(a), simnet.NodeID(b)) {
		if err := g.Net.Sim.AddLink(simnet.NodeID(a), simnet.NodeID(b), g.latency, 0); err != nil {
			panic(err)
		}
		if g.jitter > 0 {
			if err := g.Net.Sim.SetJitter(simnet.NodeID(a), simnet.NodeID(b), g.jitter); err != nil {
				panic(err)
			}
		}
	}
	g.Net.Inject(a, engine.Insert(programs.LinkFact("link", a, b, float64(cost))))
	g.Net.Inject(b, engine.Insert(programs.LinkFact("link", b, a, float64(cost))))
}

// FailEdge withdraws an edge (both directions) at the current time. The
// caller must not disconnect the graph; the oracle checks would report
// the stranded destinations as missing routes either way.
func (g *graphRun) FailEdge(a, b string) {
	cost, ok := g.edges[edgeKey(a, b)]
	if !ok {
		panic("conform: failing unknown edge " + a + "-" + b)
	}
	delete(g.edges, edgeKey(a, b))
	g.Net.Inject(a, engine.Deletion(programs.LinkFact("link", a, b, float64(cost))))
	g.Net.Inject(b, engine.Deletion(programs.LinkFact("link", b, a, float64(cost))))
}

// HealEdge reasserts a previously failed edge with a (possibly new) cost.
func (g *graphRun) HealEdge(a, b string, cost int64) {
	if _, ok := g.edges[edgeKey(a, b)]; ok {
		panic("conform: healing live edge " + a + "-" + b)
	}
	g.addEdge(a, b, cost)
}

// SetCost changes an edge's cost: an exactly paired retract + reassert,
// the update idiom the count algorithm expects for hard state.
func (g *graphRun) SetCost(a, b string, cost int64) {
	old, ok := g.edges[edgeKey(a, b)]
	if !ok {
		panic("conform: recosting unknown edge " + a + "-" + b)
	}
	g.Net.Inject(a, engine.Deletion(programs.LinkFact("link", a, b, float64(old))))
	g.Net.Inject(b, engine.Deletion(programs.LinkFact("link", b, a, float64(old))))
	g.addEdge(a, b, cost)
}

// RandomEdge draws a live edge from the harness rng.
func (g *graphRun) RandomEdge() (string, string) {
	keys := make([][2]string, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	k := keys[g.Net.Rng.Intn(len(keys))]
	return k[0], k[1]
}

// RingEdge reports whether a-b is one of the base ring edges (the ones
// churn must leave alone to keep the graph connected).
func (g *graphRun) RingEdge(a, b string) bool {
	idx := map[string]int{}
	for i, n := range g.Names {
		idx[n] = i
	}
	d := idx[a] - idx[b]
	if d < 0 {
		d = -d
	}
	return d == 1 || d == len(g.Names)-1
}

// Dijkstra is the oracle: single-source shortest-path costs over the
// harness's current edge map, independent of every protocol table.
func (g *graphRun) Dijkstra(src string) map[string]int64 {
	const inf = math.MaxInt64
	dist := map[string]int64{}
	for _, n := range g.Names {
		dist[n] = inf
	}
	dist[src] = 0
	done := map[string]bool{}
	for {
		best, bd := "", int64(inf)
		for _, n := range g.Names {
			if !done[n] && dist[n] < bd {
				best, bd = n, dist[n]
			}
		}
		if best == "" {
			break
		}
		done[best] = true
		for k, c := range g.edges {
			var peer string
			switch best {
			case k[0]:
				peer = k[1]
			case k[1]:
				peer = k[0]
			default:
				continue
			}
			if nd := bd + c; nd < dist[peer] {
				dist[peer] = nd
			}
		}
	}
	for n, d := range dist {
		if d == inf {
			delete(dist, n)
		}
	}
	return dist
}

// diameterHops is the longest hop-count shortest path over the current
// edge set.
func (g *graphRun) diameterHops() int {
	max := 0
	for _, src := range g.Names {
		// BFS by hops, ignoring costs.
		depth := map[string]int{src: 0}
		frontier := []string{src}
		for len(frontier) > 0 {
			var next []string
			for _, n := range frontier {
				for k := range g.edges {
					var peer string
					switch n {
					case k[0]:
						peer = k[1]
					case k[1]:
						peer = k[0]
					default:
						continue
					}
					if _, seen := depth[peer]; !seen {
						depth[peer] = depth[n] + 1
						if depth[peer] > max {
							max = depth[peer]
						}
						next = append(next, peer)
					}
				}
			}
			frontier = next
		}
	}
	return max
}

// RunUntil advances virtual time.
func (g *graphRun) RunUntil(t float64) { g.Net.Sim.Run(t) }
