package conform

import "testing"

// awaitClean advances time in one-second steps until check returns no
// violations, failing at the deadline.
func awaitClean(t *testing.T, g *graphRun, deadline float64, label string, check func() []string) {
	t.Helper()
	for {
		errs := check()
		if len(errs) == 0 {
			return
		}
		if g.Net.Sim.Now() >= deadline {
			for _, e := range errs {
				t.Errorf("%s: %s", label, e)
			}
			t.Fatalf("%s never converged by t=%.1f (%d violations)",
				label, g.Net.Sim.Now(), len(errs))
		}
		g.RunUntil(g.Net.Sim.Now() + 1)
	}
}

// churnEpisodes drives the shared churn pattern over a graphRun:
// alternating cost changes and chord fail/heal pairs (ring edges stay
// up so the graph remains connected), calling settle after each.
func churnEpisodes(g *graphRun, episodes int, maxCost int64, settle func()) {
	var downA, downB string
	for i := 0; i < episodes; i++ {
		switch {
		case downA != "":
			g.HealEdge(downA, downB, 1+g.Net.Rng.Int63n(maxCost))
			downA, downB = "", ""
		case i%2 == 0:
			a, b := g.RandomEdge()
			g.SetCost(a, b, 1+g.Net.Rng.Int63n(maxCost))
		default:
			for {
				a, b := g.RandomEdge()
				if !g.RingEdge(a, b) {
					g.FailEdge(a, b)
					downA, downB = a, b
					break
				}
			}
		}
		g.RunUntil(g.Net.Sim.Now() + 5)
		settle()
	}
}

// TestPathVectorConformance soaks the distance-vector program: every
// node's shortestPath table must match the Dijkstra oracle — cost and
// a live, correctly-summing path vector — after convergence and after
// each churn episode's retraction wave.
func TestPathVectorConformance(t *testing.T) {
	o := DefaultPathVectorOpts(21)
	episodes := 4
	if testing.Short() {
		o.Nodes, o.Chords = 10, 4
		episodes = 2
	}
	r, err := NewPathVectorRun(o)
	if err != nil {
		t.Fatal(err)
	}
	r.RunUntil(5)
	awaitClean(t, r.graphRun, 20, "path-vector", r.CheckPaths)
	t.Logf("initial paths converged by t=%.1f", r.Net.Sim.Now())

	churnEpisodes(r.graphRun, episodes, o.MaxCost, func() {
		awaitClean(t, r.graphRun, r.Net.Sim.Now()+20, "path-vector", r.CheckPaths)
	})
	t.Logf("%d churn episodes re-converged by t=%.1f", episodes, r.Net.Sim.Now())
}

// TestMulticastConformance soaks the multicast tree over distance-
// vector routing: members' parent chains must follow shortest-path
// edges to the root and child state must mirror parent state, across
// churn that moves the shortest paths out from under the tree.
func TestMulticastConformance(t *testing.T) {
	o := DefaultMulticastOpts(33)
	episodes := 4
	if testing.Short() {
		o.Nodes, o.Chords, o.Members = 12, 4, 4
		episodes = 2
	}
	r, err := NewMulticastRun(o)
	if err != nil {
		t.Fatal(err)
	}
	r.RunUntil(5)
	awaitClean(t, r.graphRun, 20, "multicast", r.CheckTree)
	t.Logf("tree of %d members built by t=%.1f", len(r.Members), r.Net.Sim.Now())

	churnEpisodes(r.graphRun, episodes, o.MaxCost, func() {
		awaitClean(t, r.graphRun, r.Net.Sim.Now()+20, "multicast", r.CheckTree)
	})
	t.Logf("%d churn episodes re-converged by t=%.1f", episodes, r.Net.Sim.Now())
}

// TestDSRConformance soaks cached source routing: each episode issues
// a fresh query (the later ones answerable from warmed caches via
// hit1) and re-checks every query issued so far — after churn the old
// answers' support has been retracted and the best answer must match
// the new oracle.
func TestDSRConformance(t *testing.T) {
	o := DefaultDSROpts(55)
	episodes := 3
	if testing.Short() {
		episodes = 2
	}
	r, err := NewDSRRun(o)
	if err != nil {
		t.Fatal(err)
	}
	far := len(r.Names) / 2
	r.Query(r.Names[0], r.Names[far])
	r.RunUntil(5)
	awaitClean(t, r.graphRun, 20, "dsr", r.CheckAnswers)
	t.Logf("first query answered by t=%.1f", r.Net.Sim.Now())

	next := 1
	churnEpisodes(r.graphRun, episodes, o.MaxCost, func() {
		r.Query(r.Names[next], r.Names[(next+far)%len(r.Names)])
		next++
		r.RunUntil(r.Net.Sim.Now() + 5)
		awaitClean(t, r.graphRun, r.Net.Sim.Now()+20, "dsr", r.CheckAnswers)
	})
	t.Logf("%d churn episodes re-converged by t=%.1f", episodes, r.Net.Sim.Now())
}
