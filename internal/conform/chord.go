package conform

import (
	"fmt"
	"sort"

	"ndlog/internal/engine"
	"ndlog/internal/funcs"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

// ChordOpts configures a Chord conformance run.
type ChordOpts struct {
	Seed       int64
	Nodes      int     // initial ring size (including the landmark)
	Reserve    int     // extra pre-registered nodes that join during churn
	Latency    float64 // per-link latency (seconds)
	Jitter     float64 // extra random per-message delay
	Loss       float64 // per-message drop probability
	StabEvery  float64 // stabilization period
	FingStart  float64 // when fixFingers begins (after ring bring-up)
	FingEvery  float64 // fixFingers period
	SweepEvery float64 // soft-state expiry period
	JoinGap    float64 // stagger between successive bring-up joins
	FingerExps []int   // finger exponents k (targets id + 2^k)
	Cfg        programs.ChordConfig
	// Engine overrides the cluster's evaluation options (hooks are
	// layered, see NewNetOpts) — how the optimizer-measurement rows run
	// Chord under restricted aggregate selections.
	Engine engine.Options
}

// DefaultChordOpts is the acceptance-scale configuration: a 100-node
// ring plus reserve joiners for the churn episode.
func DefaultChordOpts(seed int64) ChordOpts {
	return ChordOpts{
		Seed:       seed,
		Nodes:      100,
		Reserve:    8,
		Latency:    0.01,
		Jitter:     0.005,
		Loss:       0,
		StabEvery:  2,
		FingStart:  20,
		FingEvery:  2.5,
		SweepEvery: 0.5,
		JoinGap:    0.15,
		FingerExps: []int{26, 27, 28, 29, 30, 31},
		Cfg:        programs.DefaultChordConfig(),
	}
}

// ChordRun is a deployed Chord instance under harness control. All
// Nodes+Reserve simulator nodes and their full-mesh links exist from
// t=0 (an unjoined node is inert: with no node() fact, no rule fires
// there); joining is injecting the per-node base facts, leaving is
// isolating the node and letting its soft-state footprint expire.
type ChordRun struct {
	Net      *Net
	Opts     ChordOpts
	Names    []string
	Landmark string

	live  map[string]bool
	ids   map[string]int64 // name -> ring identifier, as f_id computes it
	round int64            // rising tick counter shared by all tick kinds
}

// NewChordRun parses, deploys, and wires the drivers; the ring forms
// once the simulator runs. The landmark (Names[0]) is live from t=0 as
// its own successor; the remaining initial nodes join staggered JoinGap
// apart starting at t=0.2.
func NewChordRun(o ChordOpts) (*ChordRun, error) {
	names := nodeNames("c", o.Nodes+o.Reserve)
	net, err := NewNetOpts(o.Seed, programs.Chord(o.Cfg), names, o.Engine, engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		return nil, err
	}
	if err := net.FullMesh(o.Latency, o.Jitter, o.Loss); err != nil {
		return nil, err
	}
	r := &ChordRun{
		Net:      net,
		Opts:     o,
		Names:    names,
		Landmark: names[0],
		live:     map[string]bool{},
		ids:      map[string]int64{},
	}
	seen := map[int64]string{}
	for _, n := range names {
		id := funcs.RingID(val.NewAddr(n))
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("conform: ring id collision %s / %s", prev, n)
		}
		seen[id] = n
		r.ids[n] = id
		// The mesh is the addressing substrate, not a routing table:
		// conn rows (including self) exist for everyone up front.
		for _, p := range names {
			net.Inject(n, engine.Insert(programs.ConnFact(n, p)))
		}
	}

	// Bootstrap the landmark: live, and its own successor.
	for _, f := range programs.ChordNodeFacts(r.Landmark, r.Landmark, o.FingerExps) {
		net.Inject(r.Landmark, engine.Insert(f))
	}
	net.Inject(r.Landmark, engine.Insert(
		programs.ChordSelfSuccFact(r.Landmark, r.ids[r.Landmark])))
	r.live[r.Landmark] = true

	// Staggered bring-up of the rest of the initial ring.
	for i, n := range names[1:o.Nodes] {
		n := n
		net.Sim.ScheduleFunc(0.2+float64(i)*o.JoinGap, func(float64) { r.Join(n) })
	}

	// Drivers. The stabilization driver doubles as the join-retry loop:
	// a live node with no successor yet (fresh joiner, or orphaned by
	// churn/loss) gets a joinTick instead of a stab tick.
	net.Every(0.5, o.StabEvery, func(float64) {
		r.round++
		for _, n := range r.liveNames() {
			if len(r.Net.Tuples(n, "bestSucc")) == 0 {
				net.Inject(n, engine.Insert(programs.JoinTick(n, r.round)))
			} else {
				net.Inject(n, engine.Insert(programs.StabTick(n, r.round)))
			}
		}
	})
	net.Every(o.FingStart, o.FingEvery, func(float64) {
		r.round++
		for _, n := range r.liveNames() {
			net.Inject(n, engine.Insert(programs.FingTick(n, r.round)))
		}
	})
	net.SweepEvery(o.SweepEvery)
	return r, nil
}

// Join makes a registered node live: inject its base facts (node,
// landmark pointer, finger exponents). The next stabilization tick
// issues its join lookup.
func (r *ChordRun) Join(name string) {
	for _, f := range programs.ChordNodeFacts(name, r.Landmark, r.Opts.FingerExps) {
		r.Net.Inject(name, engine.Insert(f))
	}
	r.live[name] = true
}

// Leave fails a node: isolate it in the simulator (messages to and from
// it vanish) and stop ticking it. Its footprint in other nodes' tables
// ages out via soft-state TTLs — there is no leave message, matching
// the protocol's fail-stop model.
func (r *ChordRun) Leave(name string) {
	if name == r.Landmark {
		panic("conform: cannot fail the landmark (join anchor)")
	}
	delete(r.live, name)
	r.Net.Sim.Isolate(simnet.NodeID(name))
}

// Churn schedules a seeded churn episode on [start, start+dur]: joins
// joins from the reserve pool and leaves failures of random live
// non-landmark nodes, interleaved and evenly staggered.
func (r *ChordRun) Churn(start, dur float64, joins, leaves int) {
	if joins > r.Opts.Reserve {
		panic("conform: churn joins exceed reserve pool")
	}
	kinds := make([]bool, 0, joins+leaves) // true = join
	for j, l := joins, leaves; j > 0 || l > 0; {
		if j > 0 {
			kinds = append(kinds, true)
			j--
		}
		if l > 0 {
			kinds = append(kinds, false)
			l--
		}
	}
	gap := dur / float64(len(kinds))
	ji := 0
	for i, isJoin := range kinds {
		at := start + float64(i)*gap
		if isJoin {
			n := r.Names[r.Opts.Nodes+ji]
			ji++
			r.Net.Sim.ScheduleFunc(at, func(float64) { r.Join(n) })
		} else {
			r.Net.Sim.ScheduleFunc(at, func(float64) {
				if v := r.victim(); v != "" {
					r.Leave(v)
				}
			})
		}
	}
}

// victim picks a random live non-landmark node. Adjacent failures in
// quick succession can exhaust a depth-2 successor list, but that is a
// recoverable state here, not a harness bug: the stabilization driver
// turns an empty bestSucc back into a joinTick, so an orphaned node
// rejoins through the landmark.
func (r *ChordRun) victim() string {
	names := r.liveNames()
	if len(names) <= 3 {
		return ""
	}
	for try := 0; try < 20; try++ {
		n := names[r.Net.Rng.Intn(len(names))]
		if n != r.Landmark {
			return n
		}
	}
	return ""
}

// liveNames returns the live set sorted by name (deterministic order
// for tick injection and rng draws).
func (r *ChordRun) liveNames() []string {
	out := make([]string, 0, len(r.live))
	for n := range r.live {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ringOrder returns the live ring ids in ascending order.
func (r *ChordRun) ringOrder() []int64 {
	ids := make([]int64, 0, len(r.live))
	for n := range r.live {
		ids = append(ids, r.ids[n])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TrueSuccessor is the oracle: the live node owning key k — the first
// live identifier clockwise at or after k, wrapping at the top of the
// ring. This is computed from the harness's membership record alone,
// independent of every protocol table.
func (r *ChordRun) TrueSuccessor(k int64) string {
	ids := r.ringOrder()
	if len(ids) == 0 {
		return ""
	}
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= k })
	if i == len(ids) {
		i = 0
	}
	return r.nameOf(ids[i])
}

// TrueSuccessorOf is the ring invariant's right-hand side: the live
// node clockwise-next after name.
func (r *ChordRun) TrueSuccessorOf(name string) string {
	next := (r.ids[name] + 1) % funcs.RingSize
	return r.TrueSuccessor(next)
}

func (r *ChordRun) nameOf(id int64) string {
	for n, i := range r.ids {
		if i == id && r.live[n] {
			return n
		}
	}
	return ""
}

// CheckRing verifies the ring invariant at every live node: exactly one
// bestSucc row, pointing at the oracle's true successor. It returns one
// message per violation.
func (r *ChordRun) CheckRing() []string {
	var errs []string
	for _, n := range r.liveNames() {
		want := r.TrueSuccessorOf(n)
		rows := r.Net.Tuples(n, "bestSucc")
		switch {
		case len(rows) == 0:
			errs = append(errs, fmt.Sprintf("%s: no bestSucc (want %s)", n, want))
		case len(rows) > 1:
			errs = append(errs, fmt.Sprintf("%s: %d bestSucc rows", n, len(rows)))
		default:
			if got := rows[0].Fields[1].Addr(); got != want {
				errs = append(errs, fmt.Sprintf("%s: bestSucc %s, want %s", n, got, want))
			}
		}
	}
	return errs
}

// LookupSample is one injected lookup and where to collect its answer.
type LookupSample struct {
	Node  string
	Key   int64
	Round int64
}

// InjectLookups issues count lookups for random keys at random live
// nodes, at the current virtual time. Answers arrive as lookupRes rows
// at the issuing node within a few hops.
func (r *ChordRun) InjectLookups(count int) []LookupSample {
	names := r.liveNames()
	out := make([]LookupSample, 0, count)
	for i := 0; i < count; i++ {
		r.round++
		s := LookupSample{
			Node:  names[r.Net.Rng.Intn(len(names))],
			Key:   r.Net.Rng.Int63n(funcs.RingSize),
			Round: r.round,
		}
		r.Net.Inject(s.Node, engine.Insert(
			programs.LookupFact(s.Node, s.Key, s.Round)))
		out = append(out, s)
	}
	return out
}

// Reinject reissues a sample under a fresh round number (a retry after
// loss or a stale-finger forward into a dead node) and returns the
// replacement sample.
func (r *ChordRun) Reinject(s LookupSample) LookupSample {
	r.round++
	s.Round = r.round
	r.Net.Inject(s.Node, engine.Insert(
		programs.LookupFact(s.Node, s.Key, s.Round)))
	return s
}

// CheckLookups verifies each sample's answer against the oracle. A
// sample fails if no lookupRes row for its round is present (lost or
// still in flight) or if the resolved successor is not the oracle's.
// Failures come back for the caller to retry or report.
func (r *ChordRun) CheckLookups(samples []LookupSample) (failed []LookupSample, errs []string) {
	for _, s := range samples {
		want := r.TrueSuccessor(s.Key)
		found := false
		for _, row := range r.Net.Tuples(s.Node, "lookupRes") {
			// lookupRes(@R, K, @S, SI, Q)
			if row.Fields[1].Int() != s.Key || row.Fields[4].Int() != s.Round {
				continue
			}
			found = true
			if got := row.Fields[2].Addr(); got != want {
				errs = append(errs, fmt.Sprintf(
					"lookup %d at %s: resolved %s, oracle %s", s.Key, s.Node, got, want))
			}
		}
		if !found {
			failed = append(failed, s)
		}
	}
	return failed, errs
}

// RunUntil advances virtual time.
func (r *ChordRun) RunUntil(t float64) { r.Net.Sim.Run(t) }
