package conform

import (
	"fmt"

	"ndlog/internal/engine"
	"ndlog/internal/programs"
)

// LinkStateOpts configures a link-state conformance run.
type LinkStateOpts struct {
	Seed    int64
	Nodes   int     // ring size
	Chords  int     // extra random shortcut edges
	Latency float64 // per-link latency (seconds)
	Jitter  float64 // extra random per-message delay
	MaxHop  int     // flood hop budget; must cover the diameter
	MaxCost int64   // link costs are drawn from [1, MaxCost]
	// Engine overrides the cluster's evaluation options. The safe
	// aggregate-selection restriction here is AggSelPreds: ["lpath"] —
	// classic shortest-path pruning on the node-local SPF (one advertised
	// representative per (node, dest) group preserves the min; the
	// delete-time re-advertisement fallback covers retractions).
	Engine engine.Options
}

// DefaultLinkStateOpts is a ring-plus-chords topology that stays
// connected when any chord fails, with the ring as fallback.
func DefaultLinkStateOpts(seed int64) LinkStateOpts {
	return LinkStateOpts{
		Seed:    seed,
		Nodes:   14,
		Chords:  7,
		Latency: 0.01,
		Jitter:  0.002,
		MaxHop:  programs.DefaultMaxHop,
		MaxCost: 10,
	}
}

// LinkStateRun deploys the link-state program on the shared
// ring-plus-chords substrate (see graphRun for the churn and
// reliability model) and checks every node's shortest-path tables
// against the Dijkstra oracle.
type LinkStateRun struct {
	*graphRun
	Opts LinkStateOpts
}

// NewLinkStateRun builds the topology, wires the simulator links, and
// injects the initial link facts at both endpoints of every edge.
func NewLinkStateRun(o LinkStateOpts) (*LinkStateRun, error) {
	names := nodeNames("l", o.Nodes)
	net, err := NewNetOpts(o.Seed, programs.LinkState(o.MaxHop), names, o.Engine,
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		return nil, err
	}
	r := &LinkStateRun{
		graphRun: newGraphRun(net, names, o.Chords, o.Latency, o.Jitter, o.MaxCost),
		Opts:     o,
	}
	if d := r.diameterHops(); d > o.MaxHop {
		return nil, fmt.Errorf("conform: diameter %d exceeds flood budget %d", d, o.MaxHop)
	}
	return r, nil
}

// CheckRoutes verifies every node's lsCost and lsRoute tables against
// the oracle: exactly one cost row per reachable destination with the
// true shortest-path cost, and a first hop that is a neighbor lying on
// some shortest path. Returns one message per violation.
func (r *LinkStateRun) CheckRoutes() []string {
	var errs []string
	for _, n := range r.Names {
		want := r.Dijkstra(n)
		costs := map[string]int64{}
		for _, row := range r.Net.Tuples(n, "lsCost") {
			// lsCost(@N, @D, C)
			d := row.Fields[1].Addr()
			if _, dup := costs[d]; dup {
				errs = append(errs, fmt.Sprintf("%s: duplicate lsCost rows for %s", n, d))
			}
			costs[d] = int64(row.Fields[2].Float())
		}
		for d, wc := range want {
			if d == n {
				continue
			}
			gc, ok := costs[d]
			if !ok {
				errs = append(errs, fmt.Sprintf("%s: no lsCost for %s (want %d)", n, d, wc))
				continue
			}
			if gc != wc {
				errs = append(errs, fmt.Sprintf("%s: lsCost %s = %d, oracle %d", n, d, gc, wc))
			}
		}
		for d := range costs {
			if _, ok := want[d]; !ok || d == n {
				errs = append(errs, fmt.Sprintf("%s: lsCost row for unreachable %s", n, d))
			}
		}
		for _, row := range r.Net.Tuples(n, "lsRoute") {
			// lsRoute(@N, @D, @F, C)
			d, f := row.Fields[1].Addr(), row.Fields[2].Addr()
			ec, adj := r.edges[edgeKey(n, f)]
			if !adj {
				errs = append(errs, fmt.Sprintf("%s: lsRoute to %s via non-neighbor %s", n, d, f))
				continue
			}
			fd := r.Dijkstra(f)
			if want[d] == 0 || fd[d]+ec != want[d] {
				errs = append(errs, fmt.Sprintf(
					"%s: lsRoute to %s via %s is off the shortest path", n, d, f))
			}
		}
	}
	return errs
}
