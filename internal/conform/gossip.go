package conform

import (
	"fmt"
	"math"
	"sort"

	"ndlog/internal/engine"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
)

// GossipOpts configures an epidemic failure-detector conformance run.
type GossipOpts struct {
	Seed       int64
	Nodes      int
	Latency    float64
	Jitter     float64
	Loss       float64
	RoundEvery float64 // gossip round period: one heartbeat + Fanout pushes per node
	Fanout     int     // pushes per node per round
	SweepEvery float64 // soft-state expiry period
	Cfg        programs.GossipConfig
}

// DefaultGossipOpts runs the program's 1s round with TTLs sized for
// the harness: KnowTTL must outlast the DetectRounds staleness
// threshold, or rows expire while still counting as fresh and row
// lifetime — not counter lag — becomes the binding constraint. The TTLs
// only garbage-collect entries whose counters stopped rising; detection
// is the staleness check.
func DefaultGossipOpts(seed int64) GossipOpts {
	return GossipOpts{
		Seed:       seed,
		Nodes:      48,
		Latency:    0.01,
		Jitter:     0.005,
		Loss:       0,
		RoundEvery: 1,
		Fanout:     2,
		SweepEvery: 0.5,
		Cfg:        programs.GossipConfig{RumorTTL: 6, KnowTTL: 30},
	}
}

// GossipRun drives the push-epidemic failure detector: every round each
// live node heartbeats and pushes its liveness view to Fanout random
// partners. The oracle is the infection model — a fresh rumor reaches
// everyone in O(log n) rounds with high probability, so coverage is
// checked as counter freshness against a 3*log2(n)-round bound.
// Failure detection is heartbeat staleness, not row expiry: nodes
// forward known entries, and a forwarded stale entry re-derives the
// receiver's know row with a fresh TTL, so a detector that waited for
// TTL decay would wait unboundedly. A dead node's counter freezes while
// the shared round counter climbs; once the lag passes DetectRounds the
// node stands detected everywhere, no retraction required.
type GossipRun struct {
	Net   *Net
	Opts  GossipOpts
	Names []string

	live    map[string]bool
	counter int64
	round   int64
}

// probeFraction is the share of pushes routed uniformly instead of by
// the live view — enough to re-merge a healed partition within a few
// rounds without noticeably slowing in-view dissemination.
const probeFraction = 0.1

// ConvergeRounds is the infection-model bound the coverage checks use.
func (r *GossipRun) ConvergeRounds() int {
	return int(3*math.Log2(float64(len(r.liveNames())))) + 1
}

// DetectRounds is the staleness threshold: a counter lagging by more
// than this many rounds marks its node failed. It must comfortably
// exceed steady-state dissemination lag (about log2 n rounds) or live
// nodes get falsely detected; three times the infection bound is ample.
func (r *GossipRun) DetectRounds() int { return r.ConvergeRounds() + 3 }

// NewGossipRun deploys the program on a full mesh with conn facts
// everywhere (an unjoined node never heartbeats and is never picked as
// a partner, so it stays silent) and starts the round driver. All
// initial nodes are live from t=0.
func NewGossipRun(o GossipOpts) (*GossipRun, error) {
	names := nodeNames("g", o.Nodes)
	net, err := NewNet(o.Seed, programs.Gossip(o.Cfg), names,
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		return nil, err
	}
	if err := net.FullMesh(o.Latency, o.Jitter, o.Loss); err != nil {
		return nil, err
	}
	r := &GossipRun{Net: net, Opts: o, Names: names, live: map[string]bool{}}
	for _, n := range names {
		for _, p := range names {
			if n != p {
				net.Inject(n, engine.Insert(programs.ConnFact(n, p)))
			}
		}
		r.live[n] = true
	}
	net.Every(0.1, o.RoundEvery, func(float64) {
		r.round++
		r.counter++
		for _, n := range r.liveNames() {
			net.Inject(n, engine.Insert(programs.HeartbeatFact(n, r.counter)))
			for k := 0; k < o.Fanout; k++ {
				if p := r.partner(n); p != "" {
					net.Inject(n, engine.Insert(programs.PeerFact(n, p, r.round)))
				}
			}
		}
	})
	net.SweepEvery(o.SweepEvery)
	return r, nil
}

// partner draws n's gossip partner from n's own live view — the know
// entries whose counters are still fresh — the way a membership-list
// gossiper stops picking peers it has detected as failed. Routing
// pushes by the protocol's view matters under partition: picking from
// the global live set would waste half of each side's pushes on
// unreachable partners and starve the freshness chains on its own side.
// Before the view bootstraps (a joiner knows nobody), fall back to a
// uniform draw over the live set so the first infection can land.
//
// A small fraction of pushes probe uniformly over the whole membership
// list instead, stale entries included — the rejoin path. Without it a
// healed partition never re-merges: each side detected the other, so
// view-routed pushes would circulate on their own side forever
// (gossip split-brain). Probes to still-dead members just drop.
func (r *GossipRun) partner(n string) string {
	floor := r.counter - int64(r.DetectRounds())
	var cands []string
	if r.Net.Rng.Float64() >= probeFraction {
		for _, x := range r.Names {
			if x == n {
				continue
			}
			if c, ok := r.knowCounter(n, x); ok && c >= floor {
				cands = append(cands, x)
			}
		}
	}
	if len(cands) > 0 {
		return cands[r.Net.Rng.Intn(len(cands))]
	}
	names := r.liveNames()
	if len(names) < 2 {
		return ""
	}
	for {
		p := names[r.Net.Rng.Intn(len(names))]
		if p != n {
			return p
		}
	}
}

// Join makes a registered node live: it starts heartbeating on the next
// round, and existing members may now push to it.
func (r *GossipRun) Join(name string) { r.live[name] = true }

// Fail silences a node: isolated in the simulator and dropped from the
// round driver. No farewell message — its counter just stops rising.
func (r *GossipRun) Fail(name string) {
	delete(r.live, name)
	r.Net.Sim.Isolate(simnet.NodeID(name))
}

// Partition splits the mesh: members can only reach members, the rest
// only the rest. Heal undoes it.
func (r *GossipRun) Partition(members []string) {
	ids := make([]simnet.NodeID, len(members))
	for i, m := range members {
		ids[i] = simnet.NodeID(m)
	}
	r.Net.Sim.Partition(ids...)
}

// Heal lifts all partitions.
func (r *GossipRun) Heal() { r.Net.Sim.Heal() }

func (r *GossipRun) liveNames() []string {
	out := make([]string, 0, len(r.live))
	for n := range r.live {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// knowCounter returns the freshest heartbeat counter node n has heard
// for x.
func (r *GossipRun) knowCounter(n, x string) (int64, bool) {
	for _, row := range r.Net.Tuples(n, "know") {
		// know(@N, @X, C)
		if row.Fields[1].Addr() == x {
			return row.Fields[2].Int(), true
		}
	}
	return 0, false
}

// CheckFresh verifies the liveness view over the given scope (nil means
// all live nodes): every scoped node has heard a counter for every
// other scoped node that lags the shared round counter by at most
// DetectRounds. Returns one message per violation.
func (r *GossipRun) CheckFresh(scope []string) []string {
	if scope == nil {
		scope = r.liveNames()
	}
	floor := r.counter - int64(r.DetectRounds())
	var errs []string
	for _, n := range scope {
		for _, x := range scope {
			c, ok := r.knowCounter(n, x)
			switch {
			case !ok:
				errs = append(errs, fmt.Sprintf("%s does not know %s", n, x))
			case c < floor:
				errs = append(errs, fmt.Sprintf(
					"%s knows %s only at counter %d (floor %d)", n, x, c, floor))
			}
		}
	}
	return errs
}

// CheckDetected verifies that every scoped node sees each dead (or
// partitioned-away) name as failed: either no know entry at all, or one
// whose counter is past the staleness threshold.
func (r *GossipRun) CheckDetected(scope, dead []string) []string {
	if scope == nil {
		scope = r.liveNames()
	}
	floor := r.counter - int64(r.DetectRounds())
	var errs []string
	for _, n := range scope {
		for _, x := range dead {
			if c, ok := r.knowCounter(n, x); ok && c >= floor {
				errs = append(errs, fmt.Sprintf(
					"%s still sees %s as live (counter %d, floor %d)", n, x, c, floor))
			}
		}
	}
	return errs
}

// RunRounds advances virtual time by whole gossip rounds.
func (r *GossipRun) RunRounds(k int) {
	r.Net.Sim.Run(r.Net.Sim.Now() + float64(k)*r.Opts.RoundEvery)
}

// RunUntil advances virtual time.
func (r *GossipRun) RunUntil(t float64) { r.Net.Sim.Run(t) }
