package conform

import (
	"fmt"

	"ndlog/internal/engine"
	"ndlog/internal/programs"
)

// MagicOpts configures a magic-sets query run: the paper's cached
// source-route program (the Section 5.1.2 rewrite plus the Section 5.2
// caching rules, the Figure 11 workload) deployed on the same
// ring-plus-chords substrate as the link-state harness and driven by
// on-demand (src, dst) route queries instead of an all-pairs
// computation.
type MagicOpts struct {
	Seed    int64
	Nodes   int     // ring size
	Chords  int     // extra random shortcut edges
	Latency float64 // per-link latency (seconds)
	Jitter  float64 // extra random per-message delay
	MaxCost int64   // link costs are drawn from [1, MaxCost]
	// Engine overrides the cluster's evaluation options. The safe
	// aggregate-selection restriction is AggSelPreds: ["pathDst"] — the
	// localBest minimum gives the engine a handle to prune non-improving
	// exploration at every intermediate node, which is cross-link and so
	// saves real messages.
	Engine engine.Options
}

// DefaultMagicOpts matches the link-state topology defaults, so magic
// rows are comparable to the all-pairs link-state rows: same graph,
// query-driven instead of flooded.
func DefaultMagicOpts(seed int64) MagicOpts {
	return MagicOpts{
		Seed:    seed,
		Nodes:   14,
		Chords:  7,
		MaxCost: 10,
		Latency: 0.01,
		Jitter:  0.002,
	}
}

// MagicRun deploys CachedSourceRoute on the graph substrate. Queries
// are injected with Ask and checked with CheckAnswer against the
// Dijkstra oracle.
type MagicRun struct {
	*graphRun
	Opts MagicOpts
}

// NewMagicRun builds the topology and injects the link facts; no
// computation runs until the first Ask seeds a query.
func NewMagicRun(o MagicOpts) (*MagicRun, error) {
	names := nodeNames("m", o.Nodes)
	net, err := NewNetOpts(o.Seed, programs.CachedSourceRoute(), names, o.Engine,
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		return nil, err
	}
	return &MagicRun{
		graphRun: newGraphRun(net, names, o.Chords, o.Latency, o.Jitter, o.MaxCost),
		Opts:     o,
	}, nil
}

// Ask seeds one (src, dst) query at the source; exploration tuples
// carry the query destination, and the answer propagates back to src
// along the discovered path, caching suffix costs on the way.
func (r *MagicRun) Ask(src, dst string) {
	r.Net.Inject(src, engine.Insert(programs.MagicQueryFact(src, dst)))
}

// CheckAnswer verifies the query result held AT THE SOURCE: some
// answer(@S,@S,@D,P,C,SC) row must carry the oracle's shortest-path
// cost, no row may beat it (every answer is a real path), and once the
// optimum has arrived the source's cached cost to dst — a min over the
// answers' suffix costs — must equal it. Cache-hit answers (hit1) may
// legitimately report suboptimal costs, so equality is demanded of the
// best row, not all rows. Returns one message per violation.
func (r *MagicRun) CheckAnswer(src, dst string) []string {
	want, reachable := r.Dijkstra(src)[dst]
	if !reachable {
		return []string{fmt.Sprintf("harness bug: query %s->%s over a disconnected pair", src, dst)}
	}
	var errs []string
	best := int64(-1)
	for _, row := range r.Net.Tuples(src, "answer") {
		// answer(@N, @S, @D, P, C, SC)
		if row.Fields[1].Addr() != src || row.Fields[2].Addr() != dst {
			continue
		}
		c := int64(row.Fields[4].Float())
		if c < want {
			errs = append(errs, fmt.Sprintf("%s->%s: answer cost %d beats the oracle's %d", src, dst, c, want))
		}
		if best < 0 || c < best {
			best = c
		}
	}
	switch {
	case best < 0:
		return append(errs, fmt.Sprintf("%s->%s: no answer at the source", src, dst))
	case best != want:
		return append(errs, fmt.Sprintf("%s->%s: best answer cost %d, oracle %d", src, dst, best, want))
	}
	for _, row := range r.Net.Tuples(src, "cache") {
		// cache(@N, @D, SC)
		if row.Fields[1].Addr() != dst {
			continue
		}
		if sc := int64(row.Fields[2].Float()); sc != want {
			errs = append(errs, fmt.Sprintf("%s->%s: cached cost %d, oracle %d", src, dst, sc, want))
		}
	}
	return errs
}
