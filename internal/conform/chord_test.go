package conform

import (
	"testing"
)

// awaitRing advances virtual time in stabilization-period steps until
// the ring invariant holds at every live node, failing at the deadline.
// Returns true on convergence.
func awaitRing(t *testing.T, r *ChordRun, deadline float64) bool {
	t.Helper()
	for {
		errs := r.CheckRing()
		if len(errs) == 0 {
			return true
		}
		if r.Net.Sim.Now() >= deadline {
			for _, e := range errs {
				t.Errorf("ring invariant: %s", e)
			}
			return false
		}
		r.RunUntil(r.Net.Sim.Now() + r.Opts.StabEvery)
	}
}

// verifyLookups injects count random lookups and checks every answer
// against the oracle, retrying unanswered samples (loss, or a forward
// into a dead node's stale finger) a bounded number of times. A wrong
// answer is a hard failure, never retried.
func verifyLookups(t *testing.T, r *ChordRun, count int) {
	t.Helper()
	samples := r.InjectLookups(count)
	for attempt := 0; len(samples) > 0; attempt++ {
		r.RunUntil(r.Net.Sim.Now() + 2)
		failed, errs := r.CheckLookups(samples)
		for _, e := range errs {
			t.Errorf("lookup conformance: %s", e)
		}
		if attempt >= 5 {
			for _, s := range failed {
				t.Errorf("lookup %d at %s: no answer after %d attempts",
					s.Key, s.Node, attempt+1)
			}
			return
		}
		samples = samples[:0]
		for _, s := range failed {
			samples = append(samples, r.Reinject(s))
		}
	}
}

// TestChordConformance is the acceptance run: a 100-node ring forms
// from a single landmark, satisfies the ring invariant everywhere,
// resolves every sampled lookup to the oracle's true successor, then
// survives a seeded churn episode (8 joins + 6 leaves) and does it all
// again.
func TestChordConformance(t *testing.T) {
	o := DefaultChordOpts(42)
	if testing.Short() {
		o.Nodes, o.Reserve = 25, 4
	}
	r, err := NewChordRun(o)
	if err != nil {
		t.Fatal(err)
	}

	// The ring repairs by a backward walk (ask your best successor for
	// its predecessor), retiring roughly one misplaced arc node per
	// stabilization round — early joiners with long arcs dominate the
	// tail, so bring-up convergence grows with n. 25 nodes settle around
	// t=70; 100 need a few hundred virtual seconds.
	deadline := 400.0
	if testing.Short() {
		deadline = 120
	}
	r.RunUntil(30)
	if !awaitRing(t, r, deadline) {
		t.Fatalf("initial ring never converged (%d live nodes)", len(r.liveNames()))
	}
	t.Logf("ring of %d converged by t=%.1f", len(r.liveNames()), r.Net.Sim.Now())
	verifyLookups(t, r, 30)

	churnStart := r.Net.Sim.Now() + 2
	leaves := 6
	if testing.Short() {
		leaves = 4
	}
	r.Churn(churnStart, 10, r.Opts.Reserve, leaves)
	r.RunUntil(churnStart + 12)

	if !awaitRing(t, r, r.Net.Sim.Now()+60) {
		t.Fatalf("ring never re-converged after churn (%d live)", len(r.liveNames()))
	}
	t.Logf("post-churn ring of %d re-converged by t=%.1f",
		len(r.liveNames()), r.Net.Sim.Now())
	verifyLookups(t, r, 30)
}

// TestChordUnderLoss reruns a smaller ring with 5%% message loss and
// jitter: periodic soft-state refresh makes every exchange retryable,
// so the ring still converges and lookups still conform (with retries
// absorbing lost answers).
func TestChordUnderLoss(t *testing.T) {
	o := DefaultChordOpts(7)
	o.Nodes, o.Reserve = 30, 4
	o.Loss = 0.05
	o.Jitter = 0.01
	r, err := NewChordRun(o)
	if err != nil {
		t.Fatal(err)
	}
	r.RunUntil(25)
	if !awaitRing(t, r, 60) {
		t.Fatalf("lossy ring never converged")
	}
	verifyLookups(t, r, 20)

	start := r.Net.Sim.Now() + 2
	r.Churn(start, 8, 2, 3)
	r.RunUntil(start + 10)
	if !awaitRing(t, r, r.Net.Sim.Now()+40) {
		t.Fatalf("lossy ring never re-converged after churn")
	}
	verifyLookups(t, r, 20)
}
