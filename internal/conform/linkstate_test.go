package conform

import "testing"

// awaitRoutes advances time in one-second steps until every node's
// lsCost/lsRoute tables match the Dijkstra oracle, failing at the
// deadline.
func awaitRoutes(t *testing.T, r *LinkStateRun, deadline float64) {
	t.Helper()
	for {
		errs := r.CheckRoutes()
		if len(errs) == 0 {
			return
		}
		if r.Net.Sim.Now() >= deadline {
			for _, e := range errs {
				t.Errorf("route conformance: %s", e)
			}
			t.Fatalf("routes never converged by t=%.1f (%d violations)",
				r.Net.Sim.Now(), len(errs))
		}
		r.RunUntil(r.Net.Sim.Now() + 1)
	}
}

// TestLinkStateConformance floods a ring-plus-chords topology, checks
// every node's shortest-path tables against the Dijkstra oracle, then
// re-checks after a seeded sequence of cost changes, chord failures,
// and heals — each episode's retraction wave must re-converge to the
// new oracle.
func TestLinkStateConformance(t *testing.T) {
	o := DefaultLinkStateOpts(11)
	if testing.Short() {
		o.Nodes, o.Chords = 10, 4
	}
	r, err := NewLinkStateRun(o)
	if err != nil {
		t.Fatal(err)
	}
	r.RunUntil(5)
	awaitRoutes(t, r, 20)
	t.Logf("initial routes converged by t=%.1f", r.Net.Sim.Now())

	episodes := 6
	if testing.Short() {
		episodes = 3
	}
	var downA, downB string
	for i := 0; i < episodes; i++ {
		switch {
		case downA != "":
			r.HealEdge(downA, downB, 1+r.Net.Rng.Int63n(o.MaxCost))
			downA, downB = "", ""
		case i%2 == 0:
			a, b := r.RandomEdge()
			r.SetCost(a, b, 1+r.Net.Rng.Int63n(o.MaxCost))
		default:
			// Fail a chord; ring edges keep the graph connected.
			for {
				a, b := r.RandomEdge()
				if !r.RingEdge(a, b) {
					r.FailEdge(a, b)
					downA, downB = a, b
					break
				}
			}
		}
		r.RunUntil(r.Net.Sim.Now() + 5)
		awaitRoutes(t, r, r.Net.Sim.Now()+20)
	}
	t.Logf("%d churn episodes re-converged by t=%.1f", episodes, r.Net.Sim.Now())
}
