// Package conform is the protocol conformance harness: it deploys each
// NDlog protocol program on simnet topologies, drives it with periodic
// ticks, seeded churn (join/leave/partition/heal), link loss and
// jitter, and checks the distributed fixpoint against an independent
// Go oracle — the ring invariant for Chord, Dijkstra for the routing
// protocols, an infection-model bound for gossip.
//
// Everything is deterministic under a seed: the simulator's loss and
// jitter draws, the harness's churn and partner choices, and the
// discrete-event schedule itself.
package conform

import (
	"fmt"
	"math/rand"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

// Net is one deployed protocol instance: a simulator, a cluster
// running the program, and the harness's own rng (separate from the
// simulator's, so churn choices don't perturb loss draws).
type Net struct {
	Sim     *simnet.Sim
	Cluster *engine.Cluster
	Rng     *rand.Rand
}

// NewNet parses src and attaches a cluster with the given nodes. No
// links or facts are created; callers wire the topology they need.
//
// Plain PSN, no aggregate-selections pruning: that optimization
// suppresses propagation of tuples that don't improve their group's
// aggregate, which is exactly wrong for protocols whose aggregates
// are views over a candidate set that other rules still join (Chord's
// cand rows, gossip's know entries). Conformance runs measure the
// unoptimized semantics; NewNetOpts lets a caller opt specific
// predicates back in where the pruning is provably safe.
func NewNet(seed int64, src string, nodes []string, cc engine.ClusterConfig) (*Net, error) {
	return NewNetOpts(seed, src, nodes, engine.Options{}, cc)
}

// NewNetOpts is NewNet with caller-supplied engine options — the hook
// the optimizer-measurement rows use to run a protocol under aggregate
// selections (opts.AggSel + opts.AggSelPreds restricted to the preds
// whose pruning the protocol's semantics tolerate). The harness's debug
// taps are layered over any hooks the caller installed.
func NewNetOpts(seed int64, src string, nodes []string, opts engine.Options, cc engine.ClusterConfig) (*Net, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("conform: parse: %w", err)
	}
	sim := simnet.New(seed)
	userDerive, userStore := opts.OnDerive, opts.OnStore
	opts.OnDerive = func(nodeID, rule string, d engine.Delta) {
		if userDerive != nil {
			userDerive(nodeID, rule, d)
		}
		if debugOnDerive != nil {
			debugOnDerive(nodeID, rule, d)
		}
	}
	opts.OnStore = func(nodeID string, d engine.Delta, now float64) {
		if userStore != nil {
			userStore(nodeID, d, now)
		}
		if debugOnStore != nil {
			debugOnStore(nodeID, d, now)
		}
	}
	cl, err := engine.NewCluster(sim, prog, opts, cc)
	if err != nil {
		return nil, fmt.Errorf("conform: cluster: %w", err)
	}
	for _, n := range nodes {
		cl.AddNode(simnet.NodeID(n))
	}
	return &Net{Sim: sim, Cluster: cl, Rng: rand.New(rand.NewSource(seed + 1))}, nil
}

// FullMesh links every node pair with uniform latency, jitter and loss
// — the Chord/gossip substrate, where any node may address any other.
func (n *Net) FullMesh(latency, jitter, loss float64) error {
	ids := n.Sim.Nodes()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if err := n.Sim.AddLink(a, b, latency, loss); err != nil {
				return err
			}
			if jitter > 0 {
				if err := n.Sim.SetJitter(a, b, jitter); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Every schedules fn at start and then every period virtual seconds,
// forever. Drive the run with Sim.Run(until); pending driver events
// past the horizon simply stay queued.
func (n *Net) Every(start, period float64, fn func(now float64)) {
	var tick func(now float64)
	tick = func(now float64) {
		fn(now)
		n.Sim.ScheduleFunc(period, tick)
	}
	n.Sim.ScheduleFunc(start, tick)
}

// SweepEvery runs periodic soft-state expiry across the cluster.
func (n *Net) SweepEvery(period float64) {
	n.Every(period, period, func(float64) { n.Cluster.ExpireAll() })
}

// Inject pushes a delta at the current virtual time, panicking on
// unknown nodes (a harness bug, not a protocol outcome).
func (n *Net) Inject(node string, d engine.Delta) {
	if err := n.Cluster.Inject(node, d); err != nil {
		panic(err)
	}
}

// Tuples is shorthand for one node's stored rows of a predicate.
func (n *Net) Tuples(node, pred string) []val.Tuple {
	return n.Cluster.Node(simnet.NodeID(node)).Tuples(pred)
}

// debugOnDerive, when non-nil, observes every rule firing (test-only).
var debugOnDerive func(nodeID, ruleLabel string, d engine.Delta)

// debugOnStore, when non-nil, observes every table change (test-only).
var debugOnStore func(nodeID string, d engine.Delta, now float64)

// nodeNames generates count names with the given prefix ("n000"...).
func nodeNames(prefix string, count int) []string {
	out := make([]string, count)
	for i := range out {
		out[i] = fmt.Sprintf("%s%03d", prefix, i)
	}
	return out
}
