package conform

import (
	"fmt"

	"ndlog/internal/engine"
	"ndlog/internal/programs"
	"ndlog/internal/val"
)

// Legacy-protocol soaks: the paper's distance-vector, multicast-tree,
// and cached-source-route programs under the same oracle-checked edge
// churn the newer protocols get. All three are hard state, so they
// inherit graphRun's reliability model — churn by paired link-fact
// retraction with the channel left up, zero loss.

// PathVectorOpts configures a distance-vector (path-vector) soak.
type PathVectorOpts struct {
	Seed    int64
	Nodes   int
	Chords  int
	Latency float64
	Jitter  float64
	MaxCost int64
}

// DefaultPathVectorOpts sizes the run so per-node state (#neighbors ×
// #destinations) stays small while paths are several hops long.
//
// Jitter is zero — and must stay zero for every soak built on the DV
// program: path is keyed (src, dst, nextHop) with last-writer-wins
// replacement, which is only sound when each neighbor's advertisements
// arrive in send order. Fixed-latency simnet links are FIFO; jitter
// reorders, and a stale candidate delivered after a fresher one
// replaces it with nothing left in flight to correct it — a stable
// wrong fixpoint, not a convergence delay. Tolerating reordered (and
// lossy) channels is what the soft-state protocols are for.
func DefaultPathVectorOpts(seed int64) PathVectorOpts {
	return PathVectorOpts{
		Seed: seed, Nodes: 16, Chords: 8,
		Latency: 0.01, Jitter: 0, MaxCost: 10,
	}
}

// PathVectorRun deploys ShortestPathDV and checks every node's
// shortestPath table against the Dijkstra oracle: right cost per
// destination, and a path vector that actually walks live edges
// summing to that cost.
type PathVectorRun struct {
	*graphRun
	Opts PathVectorOpts
}

// NewPathVectorRun builds the ring-plus-chords topology and injects
// the initial link facts.
func NewPathVectorRun(o PathVectorOpts) (*PathVectorRun, error) {
	names := nodeNames("p", o.Nodes)
	net, err := NewNet(o.Seed, programs.ShortestPathDV(""), names,
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		return nil, err
	}
	return &PathVectorRun{
		graphRun: newGraphRun(net, names, o.Chords, o.Latency, o.Jitter, o.MaxCost),
		Opts:     o,
	}, nil
}

// checkPathVector validates one path vector row: starts at src, ends at
// dst, walks live edges, and its edge costs sum to cost.
func (g *graphRun) checkPathVector(src, dst string, p []val.Value, cost int64) error {
	if len(p) < 2 {
		return fmt.Errorf("path %v too short", p)
	}
	if p[0].Addr() != src || p[len(p)-1].Addr() != dst {
		return fmt.Errorf("path %v does not run %s..%s", p, src, dst)
	}
	var sum int64
	for i := 0; i+1 < len(p); i++ {
		c, ok := g.edges[edgeKey(p[i].Addr(), p[i+1].Addr())]
		if !ok {
			return fmt.Errorf("path %v uses dead edge %s-%s", p, p[i].Addr(), p[i+1].Addr())
		}
		sum += c
	}
	if sum != cost {
		return fmt.Errorf("path %v sums to %d, row claims %d", p, sum, cost)
	}
	return nil
}

// CheckPaths verifies every node's shortestPath rows against the
// oracle. Equal-cost ties may coexist (the table is keyed on the whole
// row), so every row must carry the oracle cost and a valid vector, and
// every reachable destination must have at least one row.
func (r *PathVectorRun) CheckPaths() []string {
	var errs []string
	for _, n := range r.Names {
		want := r.Dijkstra(n)
		seen := map[string]bool{}
		for _, row := range r.Net.Tuples(n, "shortestPath") {
			// shortestPath(@S, @D, P, C)
			d := row.Fields[1].Addr()
			c := int64(row.Fields[3].Float())
			wc, ok := want[d]
			if !ok || d == n {
				errs = append(errs, fmt.Sprintf("%s: shortestPath row for unreachable %s", n, d))
				continue
			}
			if c != wc {
				errs = append(errs, fmt.Sprintf("%s: shortestPath %s = %d, oracle %d", n, d, c, wc))
			}
			if err := r.checkPathVector(n, d, row.Fields[2].List(), c); err != nil {
				errs = append(errs, fmt.Sprintf("%s -> %s: %v", n, d, err))
			}
			seen[d] = true
		}
		for d, wc := range want {
			if d != n && !seen[d] {
				errs = append(errs, fmt.Sprintf("%s: no shortestPath for %s (want %d)", n, d, wc))
			}
		}
	}
	return errs
}

// MulticastOpts configures a multicast-tree soak.
type MulticastOpts struct {
	Seed    int64
	Nodes   int
	Chords  int
	Members int // group members besides the root
	Latency float64
	Jitter  float64
	MaxCost int64
}

// DefaultMulticastOpts spreads a handful of members over the ring so
// the tree has both leaves and grafted interior nodes. Jitter stays
// zero: the tree rides on the DV program's keyed-replacement tables,
// which need FIFO links (see DefaultPathVectorOpts).
func DefaultMulticastOpts(seed int64) MulticastOpts {
	return MulticastOpts{
		Seed: seed, Nodes: 16, Chords: 6, Members: 6,
		Latency: 0.01, Jitter: 0, MaxCost: 10,
	}
}

// MulticastRun deploys the multicast tree over distance-vector routing
// and checks the tree against the Dijkstra oracle: every member's
// parent chain walks shortest-path edges to the root, and child state
// mirrors parent state exactly.
type MulticastRun struct {
	*graphRun
	Opts    MulticastOpts
	Root    string
	Members []string
}

// NewMulticastRun builds the topology, roots the group at the first
// node, and joins Members seeded-random other nodes.
func NewMulticastRun(o MulticastOpts) (*MulticastRun, error) {
	names := nodeNames("m", o.Nodes)
	net, err := NewNet(o.Seed,
		programs.Combine(programs.ShortestPathDV(""), programs.Multicast()), names,
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		return nil, err
	}
	r := &MulticastRun{
		graphRun: newGraphRun(net, names, o.Chords, o.Latency, o.Jitter, o.MaxCost),
		Opts:     o,
		Root:     names[0],
	}
	chosen := map[string]bool{}
	for len(r.Members) < o.Members {
		c := names[1+net.Rng.Intn(len(names)-1)]
		if !chosen[c] {
			chosen[c] = true
			r.Members = append(r.Members, c)
		}
	}
	for _, m := range r.Members {
		net.Inject(m, engine.Insert(programs.MemberFact(m, r.Root)))
	}
	return r, nil
}

// CheckTree verifies the multicast tree: per non-root node at most one
// parent toward the root, each parent a neighbor on a shortest path to
// the root, every member's parent chain reaching the root without
// cycles, and child rows mirroring parent rows one-for-one.
func (r *MulticastRun) CheckTree() []string {
	var errs []string
	dist := r.Dijkstra(r.Root)
	parent := map[string]string{}
	for _, n := range r.Names {
		if n == r.Root {
			continue
		}
		for _, row := range r.Net.Tuples(n, "parent") {
			// parent(@N, @R, @Z)
			if row.Fields[1].Addr() != r.Root {
				continue
			}
			z := row.Fields[2].Addr()
			if prev, dup := parent[n]; dup {
				errs = append(errs, fmt.Sprintf("%s: two parents %s and %s", n, prev, z))
				continue
			}
			parent[n] = z
			ec, adj := r.edges[edgeKey(n, z)]
			if !adj {
				errs = append(errs, fmt.Sprintf("%s: parent %s is not a neighbor", n, z))
			} else if ec+dist[z] != dist[n] {
				errs = append(errs, fmt.Sprintf(
					"%s: parent %s is off the shortest path to %s", n, z, r.Root))
			}
		}
	}
	for _, m := range r.Members {
		cur, steps := m, 0
		for cur != r.Root {
			next, ok := parent[cur]
			if !ok {
				errs = append(errs, fmt.Sprintf("%s: branch stops at %s (no parent)", m, cur))
				break
			}
			if steps++; steps > len(r.Names) {
				errs = append(errs, fmt.Sprintf("%s: parent chain cycles", m))
				break
			}
			cur = next
		}
	}
	// child(@Z, @R, @N) at the parent must mirror parent(@N, @R, @Z).
	for _, z := range r.Names {
		for _, row := range r.Net.Tuples(z, "child") {
			if row.Fields[1].Addr() != r.Root {
				continue
			}
			n := row.Fields[2].Addr()
			if parent[n] != z {
				errs = append(errs, fmt.Sprintf("%s: stray child row for %s", z, n))
			}
		}
	}
	for n, z := range parent {
		found := false
		for _, row := range r.Net.Tuples(z, "child") {
			if row.Fields[1].Addr() == r.Root && row.Fields[2].Addr() == n {
				found = true
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf("%s: missing child row for %s", z, n))
		}
	}
	return errs
}

// DSROpts configures a cached-source-route soak. The graph is kept
// small: the conformance cluster runs plain PSN without the
// aggregate-selection prune, so exploration enumerates simple paths.
type DSROpts struct {
	Seed    int64
	Nodes   int
	Chords  int
	Latency float64
	Jitter  float64
	MaxCost int64
}

// DefaultDSROpts is a sparse ten-node graph. Jitter stays zero: pathDst
// rows are keyed on the whole path but replaced on cost, so reordered
// delivery of a recost wave can pin a stale cost the same way it can in
// the DV tables (see DefaultPathVectorOpts).
func DefaultDSROpts(seed int64) DSROpts {
	return DSROpts{
		Seed: seed, Nodes: 10, Chords: 3,
		Latency: 0.01, Jitter: 0, MaxCost: 10,
	}
}

// DSRRun deploys CachedSourceRoute and checks each issued query's
// answers at its source: the best answer cost must equal the oracle's
// shortest-path cost on the current graph — after churn too, which
// exercises retraction of answers whose support died, and the hit1
// cache path on every query after the first.
type DSRRun struct {
	*graphRun
	Opts    DSROpts
	queries [][2]string
}

// NewDSRRun builds the topology and injects the initial link facts.
func NewDSRRun(o DSROpts) (*DSRRun, error) {
	names := nodeNames("d", o.Nodes)
	net, err := NewNet(o.Seed, programs.CachedSourceRoute(), names,
		engine.ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		return nil, err
	}
	return &DSRRun{
		graphRun: newGraphRun(net, names, o.Chords, o.Latency, o.Jitter, o.MaxCost),
		Opts:     o,
	}, nil
}

// Query issues one (src, dst) source-route query.
func (r *DSRRun) Query(src, dst string) {
	r.Net.Inject(src, engine.Insert(programs.MagicQueryFact(src, dst)))
	r.queries = append(r.queries, [2]string{src, dst})
}

// CheckAnswers verifies every issued query: the source holds at least
// one answer for it, and the best answer cost equals the oracle.
// Suboptimal answer rows may coexist (the hit1 cache path returns
// prefix + cached suffix for non-optimal prefixes too); an answer
// better than the oracle means a stale row survived retraction.
func (r *DSRRun) CheckAnswers() []string {
	var errs []string
	for _, q := range r.queries {
		s, d := q[0], q[1]
		want, reach := r.Dijkstra(s)[d]
		best, found := int64(0), false
		for _, row := range r.Net.Tuples(s, "answer") {
			// answer(@N, @S, @D, P, C, SC)
			if row.Fields[1].Addr() != s || row.Fields[2].Addr() != d {
				continue
			}
			c := int64(row.Fields[4].Float())
			if !found || c < best {
				best, found = c, true
			}
		}
		switch {
		case !reach:
			errs = append(errs, fmt.Sprintf("query %s->%s: destination unreachable", s, d))
		case !found:
			errs = append(errs, fmt.Sprintf("query %s->%s: no answer (want %d)", s, d, want))
		case best != want:
			errs = append(errs, fmt.Sprintf("query %s->%s: best answer %d, oracle %d", s, d, best, want))
		}
	}
	return errs
}
