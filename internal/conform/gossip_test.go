package conform

import (
	"testing"
)

// awaitFresh runs whole rounds until the freshness check over scope
// holds, failing after maxRounds more rounds.
func awaitFresh(t *testing.T, r *GossipRun, scope []string, maxRounds int) {
	t.Helper()
	for i := 0; ; i++ {
		errs := r.CheckFresh(scope)
		if len(errs) == 0 {
			return
		}
		if i >= maxRounds {
			for _, e := range errs {
				t.Errorf("freshness: %s", e)
			}
			t.Fatalf("freshness incomplete after %d extra rounds (t=%.1f)", i, r.Net.Sim.Now())
		}
		r.RunRounds(1)
	}
}

// TestGossipConformance checks the epidemic failure detector against
// the infection-model oracle: every live node hears a fresh counter for
// every other within the 3*log2(n) round bound, a silenced node's
// counter freezes and is flagged stale once it lags past DetectRounds,
// and a late joiner's counter disseminates within the bound again.
func TestGossipConformance(t *testing.T) {
	o := DefaultGossipOpts(5)
	if testing.Short() {
		o.Nodes = 20
	}
	r, err := NewGossipRun(o)
	if err != nil {
		t.Fatal(err)
	}
	// One node stays out for the late-join episode.
	joiner := r.Names[o.Nodes-1]
	delete(r.live, joiner)

	r.RunRounds(r.ConvergeRounds())
	awaitFresh(t, r, nil, 3)
	t.Logf("coverage of %d by t=%.1f", len(r.liveNames()), r.Net.Sim.Now())

	// Fail two nodes; their counters stop rising, so after DetectRounds
	// more rounds every survivor must see them as stale — while the
	// survivors' own views stay fresh.
	dead := []string{r.Names[1], r.Names[2]}
	for _, d := range dead {
		r.Fail(d)
	}
	r.RunRounds(r.DetectRounds() + 1)
	for _, e := range r.CheckDetected(nil, dead) {
		t.Errorf("detection: %s", e)
	}
	awaitFresh(t, r, nil, 3)

	// Late join: the newcomer is known everywhere — and knows everyone —
	// within the infection bound.
	r.Join(joiner)
	r.RunRounds(r.ConvergeRounds())
	awaitFresh(t, r, nil, 3)
	t.Logf("late join disseminated by t=%.1f", r.Net.Sim.Now())
}

// TestGossipPartition splits the mesh, expects each side to detect the
// other as stale within DetectRounds while staying fresh internally,
// then heals and expects full freshness again within the infection
// bound. Runs with message loss: staleness detection tolerates dropped
// pushes, it just shifts a node's lag by the odd round.
func TestGossipPartition(t *testing.T) {
	o := DefaultGossipOpts(9)
	o.Loss = 0.05
	o.Jitter = 0.01
	if testing.Short() {
		o.Nodes = 20
	}
	r, err := NewGossipRun(o)
	if err != nil {
		t.Fatal(err)
	}
	r.RunRounds(r.ConvergeRounds())
	awaitFresh(t, r, nil, 5)

	names := r.liveNames()
	half := names[:len(names)/2]
	rest := names[len(names)/2:]
	r.Partition(half)
	// Both sides keep heartbeating, but cross-partition pushes die on
	// the cut links: each side's view of the other freezes at the
	// partition-time counters while the shared counter keeps climbing.
	// Inside a side, roughly half of each node's pushes are wasted on
	// unreachable partners, so dissemination runs slower — the retry
	// budget in awaitFresh absorbs that.
	r.RunRounds(r.DetectRounds() + 1)
	for _, e := range r.CheckDetected(half, rest) {
		t.Errorf("partition (A side): %s", e)
	}
	for _, e := range r.CheckDetected(rest, half) {
		t.Errorf("partition (B side): %s", e)
	}
	awaitFresh(t, r, half, 5)
	awaitFresh(t, r, rest, 5)

	r.Heal()
	r.RunRounds(r.ConvergeRounds())
	awaitFresh(t, r, nil, 5)
	t.Logf("healed mesh re-converged by t=%.1f", r.Net.Sim.Now())
}
