package analysis

import (
	"ndlog/internal/ast"
)

// checkLifetime runs the soft/hard lifetime dataflow over the predicate
// dependency graph. The lattice has two points, hard < soft ("soft"
// taints); a predicate's derived contents are soft if any rule deriving
// it reads a soft predicate, transitively. Deriving a declared
// hard-state table (materialize lifetime "infinity") from soft state is
// the PR 5 bug class — when the soft tuple expires, nothing retracts
// the hard derivation, so refreshes inflate derivation counts past
// retractability. Every rule with a hard head and a soft-tainted body
// is an error.
func (c *collector) checkLifetime(prog *ast.Program) {
	life := map[string]float64{}
	for _, m := range prog.Materialized {
		life[m.Name] = m.Lifetime
	}
	isSoft := func(p string) bool { l, ok := life[p]; return ok && l >= 0 }
	isHard := func(p string) bool { l, ok := life[p]; return ok && l < 0 }

	// tainted maps a predicate to the soft-state origin it (transitively)
	// depends on.
	tainted := map[string]string{}
	for p := range life {
		if isSoft(p) {
			tainted[p] = p
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			if _, done := tainted[r.Head.Pred]; done {
				continue
			}
			for _, a := range r.Atoms() {
				if origin, ok := tainted[a.Pred]; ok {
					tainted[r.Head.Pred] = origin
					changed = true
					break
				}
			}
		}
	}

	for _, r := range prog.Rules {
		if !isHard(r.Head.Pred) {
			continue
		}
		for _, a := range r.Atoms() {
			origin, ok := tainted[a.Pred]
			if !ok {
				continue
			}
			if origin == a.Pred {
				c.errorf(r.Pos, CheckLifetime, ruleName(r),
					"hard-state predicate %s derived from soft-state predicate %s (lifetime %gs); state downstream of soft state must be soft",
					r.Head.Pred, a.Pred, life[origin])
			} else {
				c.errorf(r.Pos, CheckLifetime, ruleName(r),
					"hard-state predicate %s derived from %s, which depends on soft-state predicate %s (lifetime %gs); state downstream of soft state must be soft",
					r.Head.Pred, a.Pred, origin, life[origin])
			}
			break // one report per rule
		}
	}
}
