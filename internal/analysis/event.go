package analysis

import (
	"ndlog/internal/ast"
)

// checkEvents validates event-predicate usage (materialize lifetime 0:
// processed, never stored — see ast.TableDecl.IsEvent). Two shapes are
// rejected because the engine gives them silently-empty semantics:
//
//   - A rule joining two event predicates never fires: events are
//     instants, never stored, so no event tuple is present when the
//     other arrives.
//   - An aggregate ranging over an event predicate never updates:
//     aggregates maintain a multiset of stored rows, and events store
//     nothing. An aggregate head that is itself an event is rejected
//     for the symmetric reason — aggregate outputs are replacements
//     (retract old, insert new) and event retractions are dropped.
func (c *collector) checkEvents(prog *ast.Program) {
	event := map[string]bool{}
	for _, m := range prog.Materialized {
		if m.IsEvent() {
			event[m.Name] = true
		}
	}
	if len(event) == 0 {
		return
	}
	for _, r := range prog.Rules {
		var evs []string
		for _, a := range r.Atoms() {
			if event[a.Pred] {
				evs = append(evs, a.Pred)
			}
		}
		if len(evs) > 1 {
			c.errorf(r.Pos, CheckEvent, ruleName(r),
				"rule joins event predicates %s and %s; events are never stored, so two events never co-occur and the rule cannot fire",
				evs[0], evs[1])
		}
		if r.Head.HasAggregate() {
			if len(evs) > 0 {
				c.errorf(r.Pos, CheckEvent, ruleName(r),
					"aggregate ranges over event predicate %s; aggregates maintain stored rows and events store nothing, so the aggregate never updates",
					evs[0])
			}
			if event[r.Head.Pred] {
				c.errorf(r.Pos, CheckEvent, ruleName(r),
					"aggregate head %s is an event predicate; aggregate outputs retract superseded values and event retractions are dropped",
					r.Head.Pred)
			}
		}
	}
}
