package analysis_test

import (
	"errors"
	"strings"
	"testing"

	"ndlog/internal/analysis"
	"ndlog/internal/parser"
	"ndlog/internal/planner"
)

func analyze(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analysis.Analyze(prog)
}

func find(diags []analysis.Diagnostic, check string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Check == check {
			out = append(out, d)
		}
	}
	return out
}

// TestSoftToHardPreviouslyPassedSilently: the PR 5 bug class. The
// historical checker accepted a hard-state table derived from an
// expiring soft-state table; the lifetime pass rejects it.
func TestSoftToHardPreviouslyPassedSilently(t *testing.T) {
	src := `
materialize(heartbeat, 30, infinity, keys(1,2)).
materialize(member, infinity, infinity, keys(1,2)).
m1 member(@S, @N) :- heartbeat(@S, @N).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := planner.Check(prog); err != nil {
		t.Fatalf("historical checker should still accept this program, got %v", err)
	}
	diags := find(analysis.Analyze(prog), analysis.CheckLifetime)
	if len(diags) != 1 {
		t.Fatalf("want 1 lifetime error, got %v", diags)
	}
	d := diags[0]
	if d.Severity != analysis.Error || d.Pos.Line != 4 {
		t.Errorf("lifetime diagnostic = %+v, want error at line 4", d)
	}
	if !strings.Contains(d.Msg, "heartbeat") || !strings.Contains(d.Msg, "member") {
		t.Errorf("message should name both predicates: %q", d.Msg)
	}
}

// TestArityUnsafeHeadVarPreviouslyPassedSilently: an atom whose arity
// conflicts with the predicate's canonical arity binds nothing, so a
// head variable bound only there is unsafe. The historical checker
// counted the vacuous binding and accepted the rule.
func TestArityUnsafeHeadVarPreviouslyPassedSilently(t *testing.T) {
	src := `s2 out(@S, X) :- pong(@S, Y), pong(@S, Y, X).`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := planner.Check(prog); err != nil {
		t.Fatalf("historical checker should still accept this program, got %v", err)
	}
	diags := analysis.Analyze(prog)
	if n := len(find(diags, analysis.CheckArity)); n != 1 {
		t.Errorf("want 1 arity error, got %d", n)
	}
	safety := find(diags, analysis.CheckSafety)
	if len(safety) != 1 || !strings.Contains(safety[0].Msg, "head variable X") {
		t.Errorf("want 1 safety error naming head variable X, got %v", safety)
	}
}

// TestMultipleViolationsAllReported: the analyzer collects every
// finding with its own position instead of failing fast.
func TestMultipleViolationsAllReported(t *testing.T) {
	src := `
materialize(heartbeat, 30, infinity, keys(1,2)).
materialize(member, infinity, infinity, keys(1,2)).
m1 member(@S, @N) :- heartbeat(@S, @N).
m2 route(@S, Y) :- ping(@S, X), ping(@S, X, Y).
m3 stat(@S, count<N>, @N) :- member(@S, @N).
`
	diags := analyze(t, src)
	errs := 0
	lines := map[int]bool{}
	for _, d := range diags {
		if d.Severity == analysis.Error {
			errs++
			lines[d.Pos.Line] = true
			if !d.Pos.IsValid() {
				t.Errorf("diagnostic without position: %+v", d)
			}
		}
	}
	if errs < 3 {
		t.Fatalf("want >=3 errors, got %d: %v", errs, diags)
	}
	for _, want := range []int{4, 5, 6} {
		if !lines[want] {
			t.Errorf("no error reported on line %d; diagnostics: %v", want, diags)
		}
	}
}

// TestNestedAtomArgUnboundVar: variables occurring only inside a body
// atom's argument expression bind nothing and were never checked
// historically.
func TestNestedAtomArgUnboundVar(t *testing.T) {
	diags := analyze(t, `s1 res(@S, C) :- ping(@S, C, C + Y).`)
	safety := find(diags, analysis.CheckSafety)
	if len(safety) != 1 || !strings.Contains(safety[0].Msg, "variable Y") {
		t.Errorf("want safety error for Y, got %v", safety)
	}
}

// TestUnderscoreSilencesLints: the documented suppression convention.
func TestUnderscoreSilencesLints(t *testing.T) {
	diags := analyze(t, `v1 res(@S, C) :- ping(@S, C, _T), _X := C + 1.`)
	if len(diags) != 0 {
		t.Errorf("underscore-prefixed variables should be lint-free, got %v", diags)
	}
}

// TestCleanProgramNoDiagnostics: a well-formed program produces nothing.
func TestCleanProgramNoDiagnostics(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
link(a, b, 1).
p1 path(@S, @D, C) :- #link(@S, @D, C).
p2 path(@S, @D, C) :- #link(@S, @Z, C1), path(@Z, @D, C2), C := C1 + C2.
query path(@S, @D, C).
`
	if diags := analyze(t, src); len(diags) != 0 {
		t.Errorf("clean program should have no diagnostics, got %v", diags)
	}
}

// TestPlannerCheckReportsAllViolations: the compatibility shim joins
// one *CheckError per violation instead of stopping at the first.
func TestPlannerCheckReportsAllViolations(t *testing.T) {
	src := `
b1 res(S, N) :- ping(S, N).
b2 res(@S, X) :- ping(@S, Y), Y > 0.
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	err = planner.Check(prog)
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	for _, want := range []string{"location specifier", "head variable X is unbound"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q:\n%s", want, msg)
		}
	}
	var ce *planner.CheckError
	if !errors.As(err, &ce) {
		t.Errorf("errors.As should surface a *planner.CheckError from %v", err)
	}
}
