package analysis

import (
	"ndlog/internal/ast"
)

// checkReachability detects rules that can never fire and predicates
// that are never seeded nor derived, computing the least fixpoint of
// derivability from the program's seeded EDB set (its ground facts).
//
// Programs with no facts at all are skipped: most generated programs
// (internal/programs, shard manifests) are seeded externally after
// parsing, so an empty EDB says nothing about reachability.
func (c *collector) checkReachability(prog *ast.Program) {
	if len(prog.Facts) == 0 {
		return
	}
	derivable := map[string]bool{}
	for _, f := range prog.Facts {
		derivable[f.Pred] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			if derivable[r.Head.Pred] {
				continue
			}
			ok := true
			for _, a := range r.Atoms() {
				if !derivable[a.Pred] {
					ok = false
					break
				}
			}
			if ok {
				derivable[r.Head.Pred] = true
				changed = true
			}
		}
	}

	// Dead rules: some body predicate can never hold.
	reportedPred := map[string]bool{}
	for _, r := range prog.Rules {
		for _, a := range r.Atoms() {
			if derivable[a.Pred] {
				continue
			}
			c.warnf(r.Pos, CheckDeadRule, ruleName(r),
				"rule can never fire: predicate %s is never seeded or derived", a.Pred)
			if !reportedPred[a.Pred] {
				reportedPred[a.Pred] = true
				c.warnf(a.Pos, CheckUnreachable, ruleName(r),
					"predicate %s is unreachable from the seeded EDB set", a.Pred)
			}
			break // one report per rule
		}
	}

	// Query and watches over predicates that can never hold.
	if q := prog.Query; q != nil && !derivable[q.Pred] {
		c.warnf(q.Pos, CheckUnreachable, "",
			"query predicate %s is never seeded or derived", q.Pred)
	}
	for _, w := range prog.Watches {
		if !derivable[w] {
			c.warnf(ast.Pos{}, CheckUnreachable, "",
				"watched predicate %s is never seeded or derived", w)
		}
	}
}
