// Package analysis is the NDlog semantic analyzer: a multi-diagnostic
// front end that runs every check over a parsed program and reports
// all findings with source positions, instead of failing on the first
// violation the way planner.Check historically did.
//
// Checks fall into three groups (see DESIGN.md §9 for the catalogue):
//
//   - Definition 6 validity (SIGMOD 2006): location specificity,
//     address type safety, stored link relations, link restriction,
//     plus the well-formedness rules the planner has always enforced
//     (bound variables, single head aggregate, fresh assignments).
//   - Whole-program semantic passes: per-predicate arity and column
//     type inference across rules, facts and builtin signatures;
//     safety/range restriction (every variable bound by a positive
//     body literal); lifetime dataflow over the predicate dependency
//     graph (soft-state must never feed hard state — the PR 5 bug
//     class); dead-rule and unreachable-predicate detection from the
//     seeded EDB set.
//   - Lints (warnings): unused assignments, singleton variables, and
//     aggregate argument hygiene.
//
// Analyze never mutates the program. Diagnostics are sorted by source
// position and render as "file:line:col: severity: message [check-id]".
package analysis

import (
	"fmt"
	"sort"

	"ndlog/internal/ast"
)

// Severity classifies a diagnostic. Errors make the program invalid;
// warnings are lints the engine will happily (if unwisely) run.
type Severity uint8

// Severity levels.
const (
	Warning Severity = iota + 1
	Error
)

func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Check identifiers, one per diagnostic class. These are stable API:
// golden test outputs, JSON consumers, and DESIGN.md §9 all key on them.
const (
	CheckLocSpec      = "loc-spec"      // Definition 6 (1): location specificity
	CheckAddrType     = "addr-type"     // Definition 6 (2): address type safety
	CheckLinkHead     = "link-head"     // Definition 6 (3): stored link relations
	CheckLinkRestrict = "link-restrict" // Definition 6 (4): link restriction
	CheckUnbound      = "unbound-var"   // well-formedness: unbound variable
	CheckRebind       = "rebind"        // well-formedness: assignment rebinds
	CheckAggMulti     = "agg-multi"     // well-formedness: >1 aggregate per head
	CheckArity        = "arity"         // predicate arity conflicts
	CheckType         = "type-conflict" // column/variable type conflicts
	CheckBuiltin      = "builtin"       // unknown builtin or wrong argument count
	CheckSafety       = "safety"        // range restriction beyond Definition 6
	CheckLifetime     = "lifetime"      // soft-state feeding hard state
	CheckEvent        = "event"         // event-predicate (lifetime 0) misuse
	CheckAggArg       = "agg-arg"       // aggregate argument hygiene
	CheckDeadRule     = "dead-rule"     // rule can never fire from the seeded EDB
	CheckUnreachable  = "unreachable"   // predicate never seeded nor derived
	CheckUnusedVar    = "unused-var"    // assigned but never used
	CheckSingleton    = "singleton"     // variable occurs exactly once
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      ast.Pos
	Severity Severity
	Check    string // one of the Check* identifiers
	Rule     string // rule label (or head predicate) it concerns, "" if program-level
	Msg      string
}

// Format renders the diagnostic in the canonical
// "file:line:col: severity: message [check-id]" shape.
func (d Diagnostic) Format(file string) string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", file, d.Pos.Line, d.Pos.Col, d.Severity, d.Msg, d.Check)
}

// HasErrors reports whether any diagnostic is an Error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Analyze runs every check over prog and returns all findings sorted
// by source position. The program is not mutated.
func Analyze(prog *ast.Program) []Diagnostic {
	c := &collector{}
	c.definition6(prog)
	sig := c.checkTypes(prog)
	c.checkSafety(prog, sig)
	c.checkLifetime(prog)
	c.checkEvents(prog)
	c.checkReachability(prog)
	c.checkAggArgs(prog)
	c.checkVarLints(prog)
	sortDiags(c.diags)
	return c.diags
}

// Definition6 runs only the Definition 6 validity and well-formedness
// checks — the historical scope of planner.Check — collecting every
// violation. planner.Check is a compatibility shim over this.
func Definition6(prog *ast.Program) []Diagnostic {
	c := &collector{}
	c.definition6(prog)
	sortDiags(c.diags)
	return c.diags
}

// collector accumulates diagnostics across passes.
type collector struct {
	diags []Diagnostic
}

func (c *collector) report(pos ast.Pos, sev Severity, check, rule, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos: pos, Severity: sev, Check: check, Rule: rule,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (c *collector) errorf(pos ast.Pos, check, rule, format string, args ...any) {
	c.report(pos, Error, check, rule, format, args...)
}

func (c *collector) warnf(pos ast.Pos, check, rule, format string, args ...any) {
	c.report(pos, Warning, check, rule, format, args...)
}

func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// ruleName mirrors the planner's historical naming: the rule label, or
// the head predicate when unlabeled.
func ruleName(r *ast.Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return r.Head.Pred
}

// walkVars calls f for every variable occurrence in an expression tree,
// including aggregate-range variables.
func walkVars(e ast.Expr, f func(*ast.Var)) {
	switch x := e.(type) {
	case *ast.Var:
		f(x)
	case *ast.BinOp:
		walkVars(x.L, f)
		walkVars(x.R, f)
	case *ast.Call:
		for _, a := range x.Args {
			walkVars(a, f)
		}
	case *ast.Agg:
		f(&ast.Var{Name: x.Var, Pos: x.Pos})
	}
}
