package analysis

import (
	"ndlog/internal/ast"
)

// checkSafety enforces range restriction beyond the Definition 6
// well-formedness pass: every variable occurrence in a rule must be
// bound by a positive body literal (a top-level argument of a body
// atom whose arity matches the predicate's canonical arity), or by an
// assignment whose inputs are themselves bound.
//
// This closes two holes the historical planner.Check left open:
//
//   - variables nested inside a body atom's argument expression
//     (q(@S, C1+C2)) were never checked at all;
//   - an atom whose arity conflicts with the predicate's canonical
//     arity can never match a tuple, so its "bindings" are vacuous —
//     a head variable bound only there is unsafe, yet passed silently.
//
// Occurrences the Definition 6 pass already reported (selections,
// assignments, and head variables with no binding at all) are not
// re-reported here.
func (c *collector) checkSafety(prog *ast.Program, sigs map[string]*predSig) {
	for _, r := range prog.Rules {
		name := ruleName(r)

		// strict: bound by a positive literal that can actually match.
		// loose: what the Definition 6 pass considered bound.
		strict := map[string]bool{}
		loose := map[string]bool{}
		for _, a := range r.Atoms() {
			matchable := sigs[a.Pred] != nil && sigs[a.Pred].arity == len(a.Args)
			for _, arg := range a.Args {
				if v, ok := arg.(*ast.Var); ok {
					loose[v.Name] = true
					if matchable {
						strict[v.Name] = true
					}
				}
			}
		}
		var asns []*ast.Assign
		for _, t := range r.Body {
			if asn, ok := t.(*ast.Assign); ok {
				asns = append(asns, asn)
				loose[asn.Var] = true
			}
		}
		// Assignments bind once their inputs are strictly bound;
		// iterate so chains resolve regardless of body order.
		for changed := true; changed; {
			changed = false
			for _, asn := range asns {
				if strict[asn.Var] {
					continue
				}
				ok := true
				for vname := range ast.Vars(asn.Expr) {
					if !strict[vname] {
						ok = false
						break
					}
				}
				if ok {
					strict[asn.Var] = true
					changed = true
				}
			}
		}

		reported := map[string]bool{}
		report := func(v *ast.Var, what string) {
			if strict[v.Name] || reported[v.Name] {
				return
			}
			reported[v.Name] = true
			c.errorf(v.Pos, CheckSafety, name,
				"%s %s is not bound by any positive body literal", what, v.Name)
		}

		// Nested occurrences inside body atom arguments: never checked
		// by the Definition 6 pass.
		for _, a := range r.Atoms() {
			for _, arg := range a.Args {
				if _, isVar := arg.(*ast.Var); isVar {
					continue
				}
				walkVars(arg, func(v *ast.Var) { report(v, "variable") })
			}
		}
		// Occurrences the Definition 6 pass checked only against its
		// looser bound set: report when loosely bound but vacuous.
		for _, arg := range r.Head.Args {
			walkVars(arg, func(v *ast.Var) {
				if loose[v.Name] {
					report(v, "head variable")
				}
			})
		}
		for _, t := range r.Body {
			switch x := t.(type) {
			case *ast.Select:
				walkVars(x.Cond, func(v *ast.Var) {
					if loose[v.Name] {
						report(v, "variable")
					}
				})
			case *ast.Assign:
				walkVars(x.Expr, func(v *ast.Var) {
					if loose[v.Name] {
						report(v, "variable")
					}
				})
			}
		}
	}
}
