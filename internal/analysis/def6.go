package analysis

import (
	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// definition6 checks the four NDlog constraints of Definition 6 plus
// the planner's historical well-formedness rules, reporting every
// violation instead of stopping at the first:
//
//  1. Location specificity: every predicate's first attribute is a
//     location specifier (an "@" variable or address constant).
//  2. Address type safety: a variable used as an address type is not
//     used elsewhere in the same rule as a non-address type.
//  3. Stored link relations: link relations never appear in rule heads.
//  4. Link restriction: every non-local rule has exactly one link
//     literal, and all other predicates are located at one of the
//     link's two endpoints.
//
// Well-formedness: head variables bound, selections and assignments
// over bound variables, assignments binding fresh variables, at most
// one aggregate per head.
func (c *collector) definition6(prog *ast.Program) {
	links := linkRelations(prog)
	for _, r := range prog.Rules {
		c.checkRuleDef6(r, links)
	}
	for i, f := range prog.Facts {
		if len(f.Fields) == 0 || f.Fields[0].Kind() != val.KindAddr {
			c.errorf(prog.FactAt(i), CheckLocSpec, "", "fact %s: first field must be an address", f)
		}
	}
	if prog.Query != nil && len(prog.Query.Args) == 0 {
		c.errorf(prog.Query.Pos, CheckLocSpec, "", "query predicate has no location specifier")
	}
}

// linkRelations returns the set of relation names used as link literals
// ("#pred") anywhere in the program.
func linkRelations(p *ast.Program) map[string]bool {
	links := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Atoms() {
			if a.Link {
				links[a.Pred] = true
			}
		}
	}
	return links
}

func (c *collector) checkRuleDef6(r *ast.Rule, links map[string]bool) {
	name := ruleName(r)
	atoms := append([]*ast.Atom{&r.Head}, r.Atoms()...)

	// (1) Location specificity.
	for _, a := range atoms {
		if len(a.Args) == 0 {
			c.errorf(a.Pos, CheckLocSpec, name, "predicate %s has no location specifier", a.Pred)
			continue
		}
		switch arg := a.Args[0].(type) {
		case *ast.Var:
			// Parsed "@X" has Loc=true; a bare variable in the first
			// position is rejected to keep data placement explicit.
			if !arg.Loc {
				c.errorf(arg.Pos, CheckLocSpec, name, "predicate %s: first attribute %s must be a location specifier (@%s)", a.Pred, arg.Name, arg.Name)
			}
		case *ast.Const:
			if arg.Value.Kind() != val.KindAddr {
				c.errorf(arg.Pos, CheckLocSpec, name, "predicate %s: first attribute must be an address, got %s", a.Pred, arg.Value.Kind())
			}
		default:
			c.errorf(ast.ExprPos(a.Args[0]), CheckLocSpec, name, "predicate %s: first attribute must be a variable or address constant", a.Pred)
		}
	}

	// (2) Address type safety: across atom argument positions, a variable
	// is used consistently as address or non-address.
	addrVars := map[string]bool{}
	plainVars := map[string]ast.Pos{}
	for _, a := range atoms {
		for _, arg := range a.Args {
			v, ok := arg.(*ast.Var)
			if !ok {
				continue
			}
			if v.Loc {
				addrVars[v.Name] = true
			} else if _, seen := plainVars[v.Name]; !seen {
				plainVars[v.Name] = v.Pos
			}
		}
	}
	for vname, vpos := range plainVars {
		if addrVars[vname] {
			c.errorf(vpos, CheckAddrType, name, "variable %s used both as address (@%s) and non-address type", vname, vname)
		}
	}

	// (3) Stored link relations.
	if links[r.Head.Pred] && len(r.Body) > 0 {
		c.errorf(r.Head.Pos, CheckLinkHead, name, "link relation %s must not be derived (appears in rule head)", r.Head.Pred)
	}

	// (4) Link restriction.
	if !r.IsLocal() {
		var linkAtoms []*ast.Atom
		for _, a := range r.Atoms() {
			if a.Link {
				linkAtoms = append(linkAtoms, a)
			}
		}
		if len(linkAtoms) != 1 {
			c.errorf(r.Pos, CheckLinkRestrict, name, "non-local rule must have exactly one link literal, found %d", len(linkAtoms))
		} else {
			link := linkAtoms[0]
			if len(link.Args) < 2 {
				c.errorf(link.Pos, CheckLinkRestrict, name, "link literal #%s needs source and destination fields", link.Pred)
			} else {
				src, dst := link.LocVar(), ""
				if v, ok := link.Args[1].(*ast.Var); ok {
					dst = v.Name
				}
				if src == "" || dst == "" {
					c.errorf(link.Pos, CheckLinkRestrict, name, "link literal #%s endpoints must be variables", link.Pred)
				} else {
					for _, a := range atoms {
						if a == link || len(a.Args) == 0 {
							continue
						}
						loc := a.LocVar()
						if loc != src && loc != dst {
							c.errorf(a.Pos, CheckLinkRestrict, name, "predicate %s located at @%s, not at link endpoint @%s or @%s", a.Pred, loc, src, dst)
						}
					}
				}
			}
		}
	}

	// Well-formedness: head variables must be bound by body atoms or
	// assignments.
	bound := map[string]bool{}
	for _, a := range r.Atoms() {
		for _, arg := range a.Args {
			if v, ok := arg.(*ast.Var); ok {
				bound[v.Name] = true
			}
		}
	}
	for _, t := range r.Body {
		asn, ok := t.(*ast.Assign)
		if !ok {
			continue
		}
		if bound[asn.Var] {
			c.errorf(asn.Pos, CheckRebind, name, "assignment rebinds variable %s", asn.Var)
		}
		for vname := range ast.Vars(asn.Expr) {
			if !bound[vname] {
				c.errorf(asn.Pos, CheckUnbound, name, "assignment to %s uses unbound variable %s", asn.Var, vname)
			}
		}
		bound[asn.Var] = true
	}
	for _, t := range r.Body {
		sel, ok := t.(*ast.Select)
		if !ok {
			continue
		}
		for vname := range ast.Vars(sel.Cond) {
			if !bound[vname] {
				c.errorf(sel.Pos, CheckUnbound, name, "selection uses unbound variable %s", vname)
			}
		}
	}
	aggs := 0
	for _, arg := range r.Head.Args {
		switch x := arg.(type) {
		case *ast.Agg:
			aggs++
			if !bound[x.Var] {
				c.errorf(x.Pos, CheckUnbound, name, "aggregate over unbound variable %s", x.Var)
			}
		default:
			for vname := range ast.Vars(arg) {
				if !bound[vname] {
					c.errorf(ast.ExprPos(arg), CheckUnbound, name, "head variable %s is unbound", vname)
				}
			}
		}
	}
	if aggs > 1 {
		c.errorf(r.Head.Pos, CheckAggMulti, name, "at most one aggregate per head, found %d", aggs)
	}
}
