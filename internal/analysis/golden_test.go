package analysis

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ndlog/internal/parser"
)

// corpusDir holds one .ndl per diagnostic class with a golden .want
// file of the expected "file:line:col: severity: message [check-id]"
// output, sorted the way Analyze returns it.
const corpusDir = "../../testdata/analysis"

func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.ndl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".ndl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			label := "testdata/analysis/" + filepath.Base(file)
			var got strings.Builder
			for _, d := range Analyze(prog) {
				got.WriteString(d.Format(label))
				got.WriteByte('\n')
			}
			wantBytes, err := os.ReadFile(strings.TrimSuffix(file, ".ndl") + ".want")
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			if got.String() != string(wantBytes) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got.String(), wantBytes)
			}
		})
	}
}

// TestCorpusCoversEveryCheck pins the corpus to the check catalogue:
// every check identifier must be exercised by at least one golden file.
func TestCorpusCoversEveryCheck(t *testing.T) {
	all := []string{
		CheckLocSpec, CheckAddrType, CheckLinkHead, CheckLinkRestrict,
		CheckUnbound, CheckRebind, CheckAggMulti, CheckArity, CheckType,
		CheckBuiltin, CheckSafety, CheckLifetime, CheckAggArg,
		CheckDeadRule, CheckUnreachable, CheckUnusedVar, CheckSingleton,
		CheckEvent,
	}
	seen := map[string]bool{}
	files, _ := filepath.Glob(filepath.Join(corpusDir, "*.ndl"))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", file, err)
		}
		for _, d := range Analyze(prog) {
			seen[d.Check] = true
		}
	}
	var missing []string
	for _, id := range all {
		if !seen[id] {
			missing = append(missing, id)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("corpus does not exercise checks: %v", missing)
	}
}
