package analysis

import (
	"strings"

	"ndlog/internal/ast"
	"ndlog/internal/funcs"
	"ndlog/internal/val"
)

// Column and variable types are sets of observed value kinds. Int and
// float share the "num" group (the evaluator promotes freely between
// them); every other kind is its own group, and a set spanning two
// groups is a type conflict.
type typeMask uint8

const (
	tAddr typeMask = 1 << iota
	tInt
	tFloat
	tString
	tBool
	tList

	tNum = tInt | tFloat
	tAny = tAddr | tNum | tString | tBool | tList
)

func maskOfKind(k val.Kind) typeMask {
	switch k {
	case val.KindAddr:
		return tAddr
	case val.KindInt:
		return tInt
	case val.KindFloat:
		return tFloat
	case val.KindString:
		return tString
	case val.KindBool:
		return tBool
	case val.KindList:
		return tList
	}
	return 0
}

var maskGroups = []struct {
	bits typeMask
	name string
}{
	{tAddr, "addr"}, {tNum, "num"}, {tString, "string"}, {tBool, "bool"}, {tList, "list"},
}

// conflicting reports whether m spans more than one type group.
func conflicting(m typeMask) bool {
	n := 0
	for _, g := range maskGroups {
		if m&g.bits != 0 {
			n++
		}
	}
	return n > 1
}

func (m typeMask) String() string {
	var parts []string
	for _, g := range maskGroups {
		if m&g.bits != 0 {
			parts = append(parts, g.name)
		}
	}
	if len(parts) == 0 {
		return "unknown"
	}
	return strings.Join(parts, "|")
}

// builtinSig declares the argument and result types of an f_* builtin.
// Arity is checked for every known builtin; unknown f_* names are
// errors (they would fail at evaluation time).
type builtinSig struct {
	params   []typeMask
	ret      typeMask
	variadic bool // f_list takes any number of arguments
}

var builtinSigs = map[string]builtinSig{
	"f_concatPath": {params: []typeMask{tAny, tList}, ret: tList},
	"f_append":     {params: []typeMask{tList, tAny}, ret: tList},
	"f_member":     {params: []typeMask{tList, tAny}, ret: tBool},
	"f_size":       {params: []typeMask{tList}, ret: tInt},
	"f_first":      {params: []typeMask{tList}, ret: tAny},
	"f_last":       {params: []typeMask{tList}, ret: tAny},
	"f_reverse":    {params: []typeMask{tList}, ret: tList},
	"f_list":       {ret: tList, variadic: true},
	"f_min":        {params: []typeMask{tAny, tAny}, ret: tAny},
	"f_max":        {params: []typeMask{tAny, tAny}, ret: tAny},
	"f_abs":        {params: []typeMask{tNum}, ret: tNum},
	"f_prevHop":    {params: []typeMask{tList, tAny}, ret: tAny},
	"f_nth":        {params: []typeMask{tList, tInt}, ret: tAny},
	// Ring-identifier builtins (internal/funcs/ring.go). f_sha1/f_id
	// accept any value — hashing an addr is the common case, but the
	// param stays tAny so the addr requirement is not forced onto
	// variables that legitimately hold derived keys.
	"f_sha1":      {params: []typeMask{tAny}, ret: tInt},
	"f_id":        {params: []typeMask{tAny}, ret: tInt},
	"f_ringadd":   {params: []typeMask{tInt, tInt}, ret: tInt},
	"f_ringdist":  {params: []typeMask{tInt, tInt}, ret: tInt},
	"f_inrange":   {params: []typeMask{tInt, tInt, tInt}, ret: tBool},
	"f_inrangeoo": {params: []typeMask{tInt, tInt, tInt}, ret: tBool},
}

// predSig is the inferred shape of one predicate: its canonical arity
// (fixed by the first use in program order) and per-column type sets.
type predSig struct {
	arity    int
	at       ast.Pos // first use, named in arity-conflict messages
	cols     []typeMask
	reported []bool // conflict already reported for this column
}

// checkTypes infers per-predicate arity and column types across rules,
// facts, the query, and builtin signatures, reporting arity conflicts,
// type conflicts, and builtin misuse. It returns the signature table so
// the safety pass can discount bindings from arity-mismatched atoms.
func (c *collector) checkTypes(prog *ast.Program) map[string]*predSig {
	sigs := map[string]*predSig{}
	sigOf := func(pred string, arity int, pos ast.Pos) *predSig {
		s := sigs[pred]
		if s == nil {
			s = &predSig{arity: arity, at: pos, cols: make([]typeMask, arity), reported: make([]bool, arity)}
			// The first attribute is always a location specifier.
			if arity > 0 {
				s.cols[0] = tAddr
			}
			sigs[pred] = s
		}
		return s
	}

	// Fix canonical arities in program order: rule atoms first (head,
	// then body), then facts, then the query.
	arityConflicts := map[*ast.Atom]bool{}
	for _, r := range prog.Rules {
		name := ruleName(r)
		for _, a := range append([]*ast.Atom{&r.Head}, r.Atoms()...) {
			s := sigOf(a.Pred, len(a.Args), a.Pos)
			if s.arity != len(a.Args) {
				arityConflicts[a] = true
				c.errorf(a.Pos, CheckArity, name,
					"predicate %s used with %d arguments, but has %d (first use at %s)",
					a.Pred, len(a.Args), s.arity, s.at)
			}
		}
	}
	for i, f := range prog.Facts {
		s := sigOf(f.Pred, len(f.Fields), prog.FactAt(i))
		if s.arity != len(f.Fields) {
			c.errorf(prog.FactAt(i), CheckArity, "",
				"fact %s has %d fields, but predicate has %d (first use at %s)",
				f.Pred, len(f.Fields), s.arity, s.at)
			continue
		}
		for j, fv := range f.Fields {
			c.unifyCol(s, f.Pred, j, maskOfKind(fv.Kind()), prog.FactAt(i))
		}
	}
	if q := prog.Query; q != nil {
		if s, ok := sigs[q.Pred]; ok && s.arity != len(q.Args) {
			c.errorf(q.Pos, CheckArity, "",
				"query %s has %d arguments, but predicate has %d (first use at %s)",
				q.Pred, len(q.Args), s.arity, s.at)
		}
	}

	// Declared key positions must fall inside the predicate's arity.
	for _, m := range prog.Materialized {
		s, ok := sigs[m.Name]
		if !ok {
			continue
		}
		for _, k := range m.Keys {
			if k >= s.arity {
				c.errorf(m.Pos, CheckArity, "",
					"materialize(%s): key position %d exceeds the predicate's arity %d",
					m.Name, k+1, s.arity)
			}
		}
	}

	// Iterate rule-local inference to a fixpoint: column types flow
	// through shared variables from rule to rule in both directions. The
	// per-rule environment persists across passes so each conflict is
	// reported exactly once.
	rts := make([]*ruleTypes, len(prog.Rules))
	for i, r := range prog.Rules {
		rts[i] = &ruleTypes{c: c, rule: ruleName(r), vars: map[string]typeMask{}, reported: map[string]bool{}}
	}
	for pass := 0; pass < 8; pass++ {
		changed := false
		for i, r := range prog.Rules {
			if rts[i].infer(r, sigs, arityConflicts) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sigs
}

// unifyCol merges an observation into a predicate column, reporting the
// first conflict per column. An observation that is itself already
// conflicted was reported where the conflict arose, so propagating it
// merges silently instead of cascading.
func (c *collector) unifyCol(s *predSig, pred string, col int, m typeMask, pos ast.Pos) typeMask {
	if col >= len(s.cols) || m == 0 || m == tAny {
		return m
	}
	old := s.cols[col]
	merged := old | m
	if merged != old {
		s.cols[col] = merged
		if conflicting(merged) && !conflicting(m) && !s.reported[col] {
			s.reported[col] = true
			c.errorf(pos, CheckType, "",
				"predicate %s argument %d used as %s here, but as %s elsewhere",
				pred, col+1, m, old)
		}
	}
	return merged
}

// ruleTypes is the per-rule variable typing environment.
type ruleTypes struct {
	c        *collector
	rule     string
	vars     map[string]typeMask
	reported map[string]bool
	changed  bool
}

// observe merges an observation into a variable's type set, reporting
// the first conflict per (rule, variable). Like unifyCol, an already
// conflicted observation merges silently.
func (rt *ruleTypes) observe(v *ast.Var, m typeMask) typeMask {
	if m == 0 || m == tAny {
		return rt.vars[v.Name]
	}
	old := rt.vars[v.Name]
	merged := old | m
	if merged != old {
		rt.vars[v.Name] = merged
		rt.changed = true
		if conflicting(merged) && !conflicting(m) && !rt.reported[v.Name] {
			rt.reported[v.Name] = true
			rt.c.errorf(v.Pos, CheckType, rt.rule,
				"variable %s used as %s here, but as %s elsewhere in the rule",
				v.Name, m, old)
		}
	}
	return merged
}

// infer runs one round of type inference over a rule, flowing types
// between predicate columns, variables, expressions, and builtin
// signatures. It reports whether any type set grew.
func (rt *ruleTypes) infer(r *ast.Rule, sigs map[string]*predSig, arityConflicts map[*ast.Atom]bool) bool {
	c := rt.c
	// Location-specifier variables are addresses by construction.
	seed := func(a *ast.Atom) {
		for _, arg := range a.Args {
			if v, ok := arg.(*ast.Var); ok && v.Loc {
				rt.observe(v, tAddr)
			}
		}
	}
	seed(&r.Head)
	for _, a := range r.Atoms() {
		seed(a)
	}

	// A couple of local rounds lets types flow assignment→atom→head
	// within the rule regardless of body order.
	grewCols := false
	for local := 0; local < 3; local++ {
		rt.changed = false
		for _, a := range append([]*ast.Atom{&r.Head}, r.Atoms()...) {
			s := sigs[a.Pred]
			if s == nil || arityConflicts[a] || s.arity != len(a.Args) {
				continue
			}
			for i, arg := range a.Args {
				before := s.cols[i]
				switch x := arg.(type) {
				case *ast.Var:
					merged := rt.observe(x, s.cols[i])
					c.unifyCol(s, a.Pred, i, merged, x.Pos)
				case *ast.Agg:
					switch x.Func {
					case ast.AggCount:
						c.unifyCol(s, a.Pred, i, tInt, x.Pos)
					case ast.AggSum:
						rt.observe(&ast.Var{Name: x.Var, Pos: x.Pos}, tNum)
						c.unifyCol(s, a.Pred, i, tNum, x.Pos)
					default: // min/max carry the ranged variable's type
						merged := rt.observe(&ast.Var{Name: x.Var, Pos: x.Pos}, s.cols[i])
						c.unifyCol(s, a.Pred, i, merged, x.Pos)
					}
				default:
					m := rt.exprType(arg)
					c.unifyCol(s, a.Pred, i, m, ast.ExprPos(arg))
				}
				if s.cols[i] != before {
					grewCols = true
				}
			}
		}
		for _, t := range r.Body {
			switch x := t.(type) {
			case *ast.Assign:
				m := rt.exprType(x.Expr)
				rt.observe(&ast.Var{Name: x.Var, Pos: x.Pos}, m)
			case *ast.Select:
				rt.exprType(x.Cond)
			}
		}
		if !rt.changed {
			break
		}
		grewCols = grewCols || rt.changed
	}
	return grewCols
}

// exprType computes an expression's type set, pushing constraints into
// the variables it mentions (arithmetic operands are numeric, compared
// operands share a type, builtin parameters follow their signature).
func (rt *ruleTypes) exprType(e ast.Expr) typeMask {
	switch x := e.(type) {
	case *ast.Var:
		return rt.vars[x.Name]
	case *ast.Const:
		return maskOfKind(x.Value.Kind())
	case *ast.BinOp:
		l := rt.exprType(x.L)
		r := rt.exprType(x.R)
		switch x.Op {
		case ast.OpAnd, ast.OpOr:
			rt.constrain(x.L, tBool)
			rt.constrain(x.R, tBool)
			return tBool
		case ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			// Compared operands must share a type: push each side's
			// observed type onto the other.
			rt.constrain(x.L, r)
			rt.constrain(x.R, l)
			return tBool
		default: // arithmetic
			rt.constrain(x.L, tNum)
			rt.constrain(x.R, tNum)
			return tNum
		}
	case *ast.Call:
		sig, known := builtinSigs[x.Name]
		if !known {
			if _, ok := funcs.Lookup(x.Name); !ok {
				if !rt.reported["call:"+x.Name] {
					rt.reported["call:"+x.Name] = true
					rt.c.errorf(x.Pos, CheckBuiltin, rt.rule, "unknown builtin function %s", x.Name)
				}
				return 0
			}
			// Registered via funcs.Register but unknown here: no
			// signature to check against.
			for _, a := range x.Args {
				rt.exprType(a)
			}
			return tAny
		}
		if !sig.variadic && len(x.Args) != len(sig.params) {
			if !rt.reported["call:"+x.Name] {
				rt.reported["call:"+x.Name] = true
				rt.c.errorf(x.Pos, CheckBuiltin, rt.rule,
					"builtin %s takes %d arguments, called with %d", x.Name, len(sig.params), len(x.Args))
			}
			return sig.ret
		}
		for i, a := range x.Args {
			rt.exprType(a)
			if i < len(sig.params) {
				rt.constrain(a, sig.params[i])
			}
		}
		return sig.ret
	case *ast.Agg:
		return rt.vars[x.Var]
	}
	return 0
}

// constrain pushes a required type onto an expression when the
// expression is a plain variable (the only place a requirement can
// narrow anything).
func (rt *ruleTypes) constrain(e ast.Expr, m typeMask) {
	if v, ok := e.(*ast.Var); ok {
		rt.observe(v, m)
	}
}
