package analysis

import (
	"strings"

	"ndlog/internal/ast"
)

// checkAggArgs enforces aggregate argument hygiene beyond the "at most
// one aggregate" rule: aggregates live only in rule heads, never in the
// location-specifier position, and must not range over one of the
// head's own group-by attributes (grouping by a column and aggregating
// it yields the column itself, which always indicates a miswritten
// rule).
func (c *collector) checkAggArgs(prog *ast.Program) {
	for _, r := range prog.Rules {
		name := ruleName(r)
		for _, a := range r.Atoms() {
			for _, arg := range a.Args {
				if g, ok := arg.(*ast.Agg); ok {
					c.errorf(g.Pos, CheckAggArg, name,
						"aggregate %s<%s> not allowed in a rule body", g.Func, g.Var)
				}
			}
		}
		for i, arg := range r.Head.Args {
			g, ok := arg.(*ast.Agg)
			if !ok {
				continue
			}
			if i == 0 {
				c.errorf(g.Pos, CheckAggArg, name,
					"aggregate %s<%s> cannot be the location specifier", g.Func, g.Var)
			}
			for j, other := range r.Head.Args {
				if j == i {
					continue
				}
				if v, ok := other.(*ast.Var); ok && v.Name == g.Var {
					c.errorf(g.Pos, CheckAggArg, name,
						"aggregate %s<%s> ranges over group-by attribute %s", g.Func, g.Var, g.Var)
					break
				}
			}
		}
	}
}

// checkVarLints reports assigned-but-never-used variables and singleton
// variables (a variable occurring exactly once in a rule is usually a
// typo for a join variable). A leading underscore marks a variable as
// intentionally unused and silences both lints.
func (c *collector) checkVarLints(prog *ast.Program) {
	for _, r := range prog.Rules {
		name := ruleName(r)

		type occ struct {
			n     int
			first ast.Pos
		}
		occs := map[string]*occ{}
		note := func(v *ast.Var) {
			o := occs[v.Name]
			if o == nil {
				o = &occ{first: v.Pos}
				occs[v.Name] = o
			}
			o.n++
		}
		for _, arg := range r.Head.Args {
			walkVars(arg, note)
		}
		var asns []*ast.Assign
		for _, t := range r.Body {
			switch x := t.(type) {
			case *ast.Atom:
				for _, arg := range x.Args {
					walkVars(arg, note)
				}
			case *ast.Assign:
				asns = append(asns, x)
				note(&ast.Var{Name: x.Var, Pos: x.Pos})
				walkVars(x.Expr, note)
			case *ast.Select:
				walkVars(x.Cond, note)
			}
		}

		assigned := map[string]bool{}
		for _, asn := range asns {
			assigned[asn.Var] = true
			if strings.HasPrefix(asn.Var, "_") {
				continue
			}
			if o := occs[asn.Var]; o != nil && o.n == 1 {
				c.warnf(asn.Pos, CheckUnusedVar, name,
					"variable %s is assigned but never used", asn.Var)
			}
		}
		for vname, o := range occs {
			if o.n != 1 || assigned[vname] || strings.HasPrefix(vname, "_") {
				continue
			}
			c.warnf(o.first, CheckSingleton, name,
				"variable %s occurs only once in this rule; rename to _%s if intentional", vname, vname)
		}
	}
}
