// Package govet is a small static-analysis framework for the repo's
// own Go invariants, modeled on the golang.org/x/tools/go/analysis API
// (Analyzer / Pass / Diagnostic) but built only on the standard
// library's go/parser and go/ast: the build environment vendors no
// modules, so the x/tools driver is unavailable and the framework
// gates that dependency away rather than importing it.
//
// Analyses are purely syntactic (no type information), which keeps
// them fast and dependency-free; each analyzer documents the
// name-based heuristics it relies on. A finding can be suppressed by
// putting a "//ndvet:ok <reason>" comment on the flagged line or the
// line directly above it — suppressions are deliberate, grep-able
// markers, so the reason is required reading at the call site.
package govet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Package is one parsed (non-test) Go package directory.
type Package struct {
	Name  string // package clause name
	Dir   string
	Files []*ast.File
}

// Analyzer is one named analysis over the full set of loaded packages.
// Run sees every package at once so call graphs can cross package
// boundaries.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries the loaded program and the reporting sink for one
// analyzer invocation.
type Pass struct {
	Fset *token.FileSet
	Pkgs []*Package

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Load parses every non-test .go file in the given directories into
// Packages. Directories with no Go files are skipped silently, so
// callers can pass the result of pattern expansion directly.
func Load(fset *token.FileSet, dirs []string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		pkg := &Package{Dir: dir}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, f)
			pkg.Name = f.Name.Name
		}
		if len(pkg.Files) > 0 {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// ExpandPatterns turns command-line package patterns into directories:
// "dir/..." walks recursively (skipping testdata and hidden
// directories), anything else is taken literally.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(filepath.Clean(root), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if base == "testdata" || (strings.HasPrefix(base, ".") && path != root) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// Run executes every analyzer over the loaded packages and returns the
// surviving findings sorted by position. Findings on a line carrying
// (or directly below) a "//ndvet:ok" comment are suppressed.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{Fset: fset, Pkgs: pkgs, analyzer: a.Name, diags: &diags})
	}
	ok := suppressedLines(fset, pkgs)
	kept := diags[:0]
	for _, d := range diags {
		if ok[lineKey{d.Pos.Filename, d.Pos.Line}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept
}

type lineKey struct {
	file string
	line int
}

// suppressedLines collects every line covered by a "//ndvet:ok"
// comment: the comment's own line and the line below it (so the marker
// can sit above a long statement).
func suppressedLines(fset *token.FileSet, pkgs []*Package) map[lineKey]bool {
	ok := map[lineKey]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//ndvet:ok") {
						continue
					}
					pos := fset.Position(c.Pos())
					ok[lineKey{pos.Filename, pos.Line}] = true
					ok[lineKey{pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
	return ok
}
