package govet

import (
	"go/ast"
	"strings"
)

// AtomicCounter enforces the repo's counter discipline: once a struct
// opts into atomic counters (it has at least one sync/atomic field),
// every counter-named integer field in that struct must be atomic too,
// and flagged fields must not be written with plain assignments or ++.
// Mixed-discipline structs are exactly how the pre-PR 7 stats races
// happened — one goroutine bumping a plain int next to an atomic one.
//
// The analysis is syntactic. A field is a "counter" when its type is a
// plain integer and its name contains a counting word (count, pending,
// sent, recv, dropped, ...). Structs with no atomic fields are never
// flagged: a single-goroutine struct full of plain ints is fine.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "flag plain integer counter fields and writes in structs that also use sync/atomic",
	Run:  runAtomicCounter,
}

var counterWords = []string{
	"count", "counter", "pending", "total", "sent", "recv", "received",
	"drop", "seen", "hit", "miss", "inflight", "undeliv", "fenced", "acked",
}

func isCounterName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range counterWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

var plainIntTypes = map[string]bool{
	"int": true, "int32": true, "int64": true,
	"uint": true, "uint32": true, "uint64": true, "uintptr": true,
}

// isAtomicType reports whether a field type is atomic.X or *atomic.X.
func isAtomicType(t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "atomic"
}

func runAtomicCounter(p *Pass) {
	for _, pkg := range p.Pkgs {
		// flagged maps counter field names declared in mixed-discipline
		// structs of this package, for the write-site scan.
		flagged := map[string]string{} // field name -> struct name
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				hasAtomic := false
				for _, field := range st.Fields.List {
					if isAtomicType(field.Type) {
						hasAtomic = true
						break
					}
				}
				if !hasAtomic {
					return true
				}
				for _, field := range st.Fields.List {
					id, ok := field.Type.(*ast.Ident)
					if !ok || !plainIntTypes[id.Name] {
						continue
					}
					for _, name := range field.Names {
						if !isCounterName(name.Name) {
							continue
						}
						flagged[name.Name] = ts.Name.Name
						p.Reportf(name.Pos(),
							"field %s of %s is a plain %s counter in a struct with atomic fields; use atomic.%s",
							name.Name, ts.Name.Name, id.Name, atomicTypeFor(id.Name))
					}
				}
				return true
			})
		}
		if len(flagged) == 0 {
			continue
		}
		// Write sites: x.field++ / x.field += v / x.field = v on a
		// flagged field name. Name-based, scoped to this package.
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.IncDecStmt:
					if name, ok := selField(x.X, flagged); ok {
						p.Reportf(x.Pos(), "plain %s of counter field %s (struct %s); use atomic Add",
							x.Tok, name, flagged[name])
					}
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if name, ok := selField(lhs, flagged); ok {
							p.Reportf(lhs.Pos(), "plain write to counter field %s (struct %s); use atomic Store/Add",
								name, flagged[name])
						}
					}
				}
				return true
			})
		}
	}
}

// selField matches expr against "anything.field" for a flagged field.
func selField(e ast.Expr, flagged map[string]string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	_, isFlagged := flagged[sel.Sel.Name]
	return sel.Sel.Name, isFlagged
}

func atomicTypeFor(goType string) string {
	switch goType {
	case "int", "int64":
		return "Int64"
	case "int32":
		return "Int32"
	case "uint32":
		return "Uint32"
	default:
		return "Uint64"
	}
}
