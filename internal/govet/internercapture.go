package govet

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// InternerCapture guards the PR 7 invariant that made multi-core
// evaluation sound: code running on parallel worker goroutines must
// never construct (and thereby capture) a non-concurrent
// val.Interner — workers share one val.NewConcurrentInterner, and a
// plain interner reached from a worker is a data race waiting for
// load.
//
// The pass builds a name-based over-approximate call graph across all
// loaded packages: free functions resolve by package, method calls
// resolve to every method with that name anywhere. Roots are the
// functions declared in the engine package's parallel*.go files. Every
// reachable val.NewInterner() call is flagged with one call chain that
// reaches it; intentional nil-guard fallbacks are suppressed with
// //ndvet:ok and a reason.
var InternerCapture = &Analyzer{
	Name: "internercapture",
	Doc:  "flag non-concurrent val.NewInterner construction reachable from engine parallel workers",
	Run:  runInternerCapture,
}

type vetFunc struct {
	pkg  string
	name string
	decl *ast.FuncDecl
	file string // basename of the declaring file
}

func runInternerCapture(p *Pass) {
	pkgNames := map[string]bool{}
	for _, pkg := range p.Pkgs {
		pkgNames[pkg.Name] = true
	}

	// Index declarations. Free functions key as "pkg.Name"; methods
	// additionally key as "method:Name" so x.m(...) calls resolve
	// without type information.
	byKey := map[string][]*vetFunc{}
	var all []*vetFunc
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			file := filepath.Base(p.Fset.Position(f.Pos()).Filename)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := &vetFunc{pkg: pkg.Name, name: fd.Name.Name, decl: fd, file: file}
				all = append(all, fn)
				if fd.Recv != nil {
					byKey["method:"+fd.Name.Name] = append(byKey["method:"+fd.Name.Name], fn)
				} else {
					byKey[pkg.Name+"."+fd.Name.Name] = append(byKey[pkg.Name+"."+fd.Name.Name], fn)
				}
			}
		}
	}

	// callees lists the resolution keys a function's body can call.
	callees := func(fn *vetFunc) []string {
		var out []string
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch callee := call.Fun.(type) {
			case *ast.Ident:
				out = append(out, fn.pkg+"."+callee.Name)
			case *ast.SelectorExpr:
				if id, ok := callee.X.(*ast.Ident); ok && pkgNames[id.Name] {
					out = append(out, id.Name+"."+callee.Sel.Name)
				}
				out = append(out, "method:"+callee.Sel.Name)
			}
			return true
		})
		return out
	}

	// BFS from the parallel worker roots, remembering one predecessor
	// per function so findings can print a witness chain.
	pred := map[*vetFunc]*vetFunc{}
	var queue []*vetFunc
	seen := map[*vetFunc]bool{}
	for _, fn := range all {
		if fn.pkg == "engine" && strings.HasPrefix(fn.file, "parallel") {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, key := range callees(fn) {
			for _, next := range byKey[key] {
				if !seen[next] {
					seen[next] = true
					pred[next] = fn
					queue = append(queue, next)
				}
			}
		}
	}

	chain := func(fn *vetFunc) string {
		parts := []string{fn.pkg + "." + fn.name}
		for cur := pred[fn]; cur != nil && len(parts) < 8; cur = pred[cur] {
			parts = append([]string{cur.pkg + "." + cur.name}, parts...)
		}
		return strings.Join(parts, " -> ")
	}

	for fn := range seen {
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NewInterner" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "val" {
				return true
			}
			p.Reportf(call.Pos(),
				"non-concurrent val.NewInterner() reachable from parallel workers (%s); use val.NewConcurrentInterner",
				chain(fn))
			return true
		})
	}
}
