package govet

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// loadSrc builds a Package from in-memory fixture files.
func loadSrc(t *testing.T, fset *token.FileSet, pkgDir string, files map[string]string) *Package {
	t.Helper()
	pkg := &Package{Dir: pkgDir}
	for name, src := range files {
		f, err := parser.ParseFile(fset, pkgDir+"/"+name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Name = f.Name.Name
	}
	return pkg
}

// TestAtomicCounterCatchesPlantedPlainCounter: a struct mixing atomic
// and plain counters is flagged at the declaration and at every plain
// write site.
func TestAtomicCounterCatchesPlantedPlainCounter(t *testing.T) {
	const fixture = `package stats

import "sync/atomic"

type collector struct {
	sent    atomic.Int64
	dropped int64 // deliberately planted plain counter
	name    string
	limit   int // not counter-named: must not be flagged
}

func (c *collector) note() {
	c.dropped++
	c.dropped += 2
	c.sent.Add(1)
}
`
	fset := token.NewFileSet()
	pkg := loadSrc(t, fset, "stats", map[string]string{"stats.go": fixture})
	diags := Run(fset, []*Package{pkg}, []*Analyzer{AtomicCounter})
	if len(diags) != 3 {
		t.Fatalf("want 3 findings (1 decl + 2 writes), got %d: %v", len(diags), diags)
	}
	wantLines := []int{7, 13, 14}
	for i, d := range diags {
		if d.Pos.Line != wantLines[i] {
			t.Errorf("finding %d at line %d, want %d: %s", i, d.Pos.Line, wantLines[i], d)
		}
		if !strings.Contains(d.Message, "dropped") {
			t.Errorf("finding should name the field: %s", d)
		}
	}
}

// TestAtomicCounterIgnoresPureStructs: with no atomic field the struct
// never opted into the discipline.
func TestAtomicCounterIgnoresPureStructs(t *testing.T) {
	const fixture = `package stats

type tally struct {
	count int
	total int64
}

func (t *tally) bump() { t.count++ }
`
	fset := token.NewFileSet()
	pkg := loadSrc(t, fset, "stats", map[string]string{"stats.go": fixture})
	if diags := Run(fset, []*Package{pkg}, []*Analyzer{AtomicCounter}); len(diags) != 0 {
		t.Errorf("plain struct should not be flagged: %v", diags)
	}
}

// TestAtomicCounterSuppression: //ndvet:ok silences a finding on its
// line or the line below.
func TestAtomicCounterSuppression(t *testing.T) {
	const fixture = `package stats

import "sync/atomic"

type collector struct {
	sent atomic.Int64
	//ndvet:ok snapshot copy, only read after workers stop
	dropped int64
}
`
	fset := token.NewFileSet()
	pkg := loadSrc(t, fset, "stats", map[string]string{"stats.go": fixture})
	if diags := Run(fset, []*Package{pkg}, []*Analyzer{AtomicCounter}); len(diags) != 0 {
		t.Errorf("suppressed finding should not be reported: %v", diags)
	}
}

// TestInternerCaptureFlagsReachableConstruction: a val.NewInterner
// call is flagged when a parallel*.go function in package engine
// reaches it through the call graph — including across packages and
// through method calls — and not flagged otherwise.
func TestInternerCaptureFlagsReachableConstruction(t *testing.T) {
	fset := token.NewFileSet()
	engine := loadSrc(t, fset, "engine", map[string]string{
		"parallel.go": `package engine

func runWorkers() {
	n := &node{}
	n.setup()
}
`,
		"node.go": `package engine

type node struct{}

func (n *node) setup() { helperMake() }

func helperMake() {
	_ = val.NewInterner()
}

func coldPath() {
	_ = val.NewInterner() // unreachable from parallel.go: must not be flagged
}
`,
	})
	diags := Run(fset, []*Package{engine}, []*Analyzer{InternerCapture})
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Pos.Filename, "node.go") || d.Pos.Line != 8 {
		t.Errorf("finding at %s:%d, want node.go:8", d.Pos.Filename, d.Pos.Line)
	}
	for _, via := range []string{"engine.runWorkers", "engine.helperMake"} {
		if !strings.Contains(d.Message, via) {
			t.Errorf("witness chain should mention %s: %s", via, d.Message)
		}
	}
}

// TestExpandPatterns: dir/... walks recursively and skips testdata.
func TestExpandPatterns(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"../../internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, d := range dirs {
		want[d] = true
	}
	for _, need := range []string{"../../internal/govet", "../../internal/engine", "../../internal/analysis"} {
		if !want[strings.TrimPrefix(need, "")] {
			t.Errorf("pattern expansion missing %s (got %v)", need, dirs)
		}
	}
	for d := range want {
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata should be skipped: %s", d)
		}
	}
}

// TestRepoIsVetClean pins the invariant the CI job enforces: the
// repo's own internal packages carry no unsuppressed findings.
func TestRepoIsVetClean(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"../../internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(fset, pkgs, []*Analyzer{AtomicCounter, InternerCapture}) {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
