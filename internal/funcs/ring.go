package funcs

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"ndlog/internal/val"
)

// Ring-identifier builtins for DHT programs (Chord, Section 5 of the
// paper). Identifiers live on a circular space of 2^32 positions; every
// function below reduces its result modulo RingSize so rule-generated
// ids, finger targets, and interval tests all agree on the same ring.

// RingSize is the size of the identifier space, m = 32 bits.
const RingSize = int64(1) << 32

// RingID exposes the f_id hash to Go harnesses (oracles must place
// nodes on the same ring the rules do).
func RingID(v val.Value) int64 { return ringID(v) }

// ringID hashes an arbitrary value onto the ring: SHA-1 of the value's
// canonical byte form, truncated to the top 32 bits. Addresses and
// strings hash their raw text (so an addr and the equal string map to
// the same point); every other kind hashes its literal rendering.
func ringID(v val.Value) int64 {
	var text string
	switch v.Kind() {
	case val.KindAddr:
		text = v.Addr()
	case val.KindString:
		text = v.Str()
	default:
		text = v.String()
	}
	sum := sha1.Sum([]byte(text))
	return int64(binary.BigEndian.Uint32(sum[:4]))
}

// ringArg extracts an int argument and reduces it onto the ring.
func ringArg(fn string, v val.Value) (int64, error) {
	if v.Kind() != val.KindInt {
		return 0, fmt.Errorf("%w: %s wants int id, got %s", ErrType, fn, v.Kind())
	}
	n := v.Int() % RingSize
	if n < 0 {
		n += RingSize
	}
	return n, nil
}

// fSHA1 (alias f_id) maps a value to its ring identifier in [0, 2^32).
func fSHA1(args []val.Value) (val.Value, error) {
	if err := need(args, 1); err != nil {
		return val.Nil, err
	}
	return val.NewInt(ringID(args[0])), nil
}

// fRingAdd adds two ring positions modulo 2^32. Finger-table rules use
// it to compute targets id + 2^k without overflowing the ring.
func fRingAdd(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	a, err := ringArg("f_ringadd", args[0])
	if err != nil {
		return val.Nil, err
	}
	b, err := ringArg("f_ringadd", args[1])
	if err != nil {
		return val.Nil, err
	}
	return val.NewInt((a + b) % RingSize), nil
}

// fRingDist returns the clockwise distance from a to b: the number of
// steps forward from a that reach b, in [1, 2^32]. b == a maps to the
// full ring 2^32, never 0 — "how far to my successor" treats self as
// the farthest candidate, which lets a lone bootstrap node be its own
// successor without a special case while any real peer sorts closer.
func fRingDist(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	a, err := ringArg("f_ringdist", args[0])
	if err != nil {
		return val.Nil, err
	}
	b, err := ringArg("f_ringdist", args[1])
	if err != nil {
		return val.Nil, err
	}
	d := (b - a - 1) % RingSize
	if d < 0 {
		d += RingSize
	}
	return val.NewInt(d + 1), nil
}

// fInRange tests x ∈ (a, b] on the ring with wraparound. a == b denotes
// the full ring (always true): a lone node owns every key.
func fInRange(args []val.Value) (val.Value, error) {
	if err := need(args, 3); err != nil {
		return val.Nil, err
	}
	x, a, b, err := rangeArgs("f_inrange", args)
	if err != nil {
		return val.Nil, err
	}
	if a == b {
		return val.NewBool(true), nil
	}
	// x ∈ (a, b] iff walking clockwise from a reaches x no later than b.
	return val.NewBool(ringGap(a, x) <= ringGap(a, b)), nil
}

// fInRangeOO tests x ∈ (a, b) on the ring, both ends open. a == b
// denotes the full ring minus the endpoint itself: true iff x != a.
// Lookup-forwarding rules use it to pick fingers strictly between the
// current node and the key.
func fInRangeOO(args []val.Value) (val.Value, error) {
	if err := need(args, 3); err != nil {
		return val.Nil, err
	}
	x, a, b, err := rangeArgs("f_inrangeoo", args)
	if err != nil {
		return val.Nil, err
	}
	if a == b {
		return val.NewBool(x != a), nil
	}
	return val.NewBool(ringGap(a, x) < ringGap(a, b)), nil
}

func rangeArgs(fn string, args []val.Value) (x, a, b int64, err error) {
	if x, err = ringArg(fn, args[0]); err != nil {
		return
	}
	if a, err = ringArg(fn, args[1]); err != nil {
		return
	}
	b, err = ringArg(fn, args[2])
	return
}

// ringGap is the clockwise step count from a to x in [1, 2^32] (x == a
// maps to the full ring), the open-interval analogue of f_ringdist.
func ringGap(a, x int64) int64 {
	d := (x - a - 1) % RingSize
	if d < 0 {
		d += RingSize
	}
	return d + 1
}

func init() {
	Register("f_sha1", fSHA1)
	Register("f_id", fSHA1)
	Register("f_ringadd", fRingAdd)
	Register("f_ringdist", fRingDist)
	Register("f_inrange", fInRange)
	Register("f_inrangeoo", fInRangeOO)
}
