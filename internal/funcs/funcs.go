// Package funcs evaluates NDlog expressions and implements the built-in
// function library (the "f_*" functions of the paper, e.g. f_concatPath
// for path-vector construction).
//
// Ownership: a SlotEnv is single-owner scratch state — the engine keeps
// one per node (nodes are single-threaded) and rewinds bindings through
// the slot-index trail rather than copying; values bound into it are
// immutable (val's invariant), so binding never copies and unbinding
// never frees. Compiled expressions (CompileExpr) are immutable after
// compilation and safe to share across nodes running the same program.
package funcs

import (
	"errors"
	"fmt"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// Env binds variable names to values during rule evaluation.
type Env map[string]val.Value

// Clone copies the environment.
func (e Env) Clone() Env {
	ne := make(Env, len(e))
	for k, v := range e {
		ne[k] = v
	}
	return ne
}

// Errors returned by evaluation.
var (
	ErrUnboundVar  = errors.New("funcs: unbound variable")
	ErrType        = errors.New("funcs: type error")
	ErrDivByZero   = errors.New("funcs: division by zero")
	ErrUnknownFunc = errors.New("funcs: unknown function")
	ErrArity       = errors.New("funcs: wrong argument count")
)

// Eval evaluates an expression under the environment. Aggregate
// expressions are head-only and rejected here.
func Eval(e ast.Expr, env Env) (val.Value, error) {
	switch x := e.(type) {
	case *ast.Const:
		return x.Value, nil
	case *ast.Var:
		v, ok := env[x.Name]
		if !ok {
			return val.Nil, fmt.Errorf("%w: %s", ErrUnboundVar, x.Name)
		}
		return v, nil
	case *ast.BinOp:
		return evalBinOp(x, env)
	case *ast.Call:
		return evalCall(x, env)
	case *ast.Agg:
		return val.Nil, fmt.Errorf("%w: aggregate %s in scalar position", ErrType, x)
	}
	return val.Nil, fmt.Errorf("%w: unknown expression %T", ErrType, e)
}

// EvalBool evaluates a selection condition to a boolean.
func EvalBool(e ast.Expr, env Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	if v.Kind() != val.KindBool {
		return false, fmt.Errorf("%w: condition %s is %s, not bool", ErrType, e, v.Kind())
	}
	return v.Bool(), nil
}

func evalBinOp(b *ast.BinOp, env Env) (val.Value, error) {
	l, err := Eval(b.L, env)
	if err != nil {
		return val.Nil, err
	}
	// Short-circuit boolean operators.
	switch b.Op {
	case ast.OpAnd:
		if l.Kind() != val.KindBool {
			return val.Nil, fmt.Errorf("%w: && on %s", ErrType, l.Kind())
		}
		if !l.Bool() {
			return val.NewBool(false), nil
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return val.Nil, err
		}
		if r.Kind() != val.KindBool {
			return val.Nil, fmt.Errorf("%w: && on %s", ErrType, r.Kind())
		}
		return r, nil
	case ast.OpOr:
		if l.Kind() != val.KindBool {
			return val.Nil, fmt.Errorf("%w: || on %s", ErrType, l.Kind())
		}
		if l.Bool() {
			return val.NewBool(true), nil
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return val.Nil, err
		}
		if r.Kind() != val.KindBool {
			return val.Nil, fmt.Errorf("%w: || on %s", ErrType, r.Kind())
		}
		return r, nil
	}
	r, err := Eval(b.R, env)
	if err != nil {
		return val.Nil, err
	}
	if b.Op.IsComparison() {
		return evalComparison(b.Op, l, r)
	}
	return evalArith(b.Op, l, r)
}

func evalComparison(op ast.Op, l, r val.Value) (val.Value, error) {
	// Equality across numeric kinds compares numerically so "C == 0"
	// behaves naturally whether C is an int or float.
	var eq bool
	if l.IsNumeric() && r.IsNumeric() {
		eq = l.Float() == r.Float()
	} else {
		eq = l.Equal(r)
	}
	switch op {
	case ast.OpEq:
		return val.NewBool(eq), nil
	case ast.OpNe:
		return val.NewBool(!eq), nil
	}
	c, err := orderValues(l, r)
	if err != nil {
		return val.Nil, err
	}
	switch op {
	case ast.OpLt:
		return val.NewBool(c < 0), nil
	case ast.OpLe:
		return val.NewBool(c <= 0), nil
	case ast.OpGt:
		return val.NewBool(c > 0), nil
	case ast.OpGe:
		return val.NewBool(c >= 0), nil
	}
	return val.Nil, fmt.Errorf("%w: bad comparison op %v", ErrType, op)
}

// orderValues orders two values the way comparison operators do: mixed
// int/float compares numerically (the internal kind tie-break of
// Value.Compare is ignored on numeric ties), any other kind mix is a
// type error, and same-kind values use their natural Compare order —
// exact for int pairs, so values beyond 2^53 are not collapsed through
// float64.
func orderValues(l, r val.Value) (int, error) {
	if l.Kind() == r.Kind() {
		return l.Compare(r), nil
	}
	if l.IsNumeric() && r.IsNumeric() {
		if l.Float() == r.Float() {
			return 0, nil
		}
		return l.Compare(r), nil
	}
	return 0, fmt.Errorf("%w: ordering %s against %s", ErrType, l.Kind(), r.Kind())
}

func evalArith(op ast.Op, l, r val.Value) (val.Value, error) {
	// String concatenation via "+".
	if op == ast.OpAdd && l.Kind() == val.KindString && r.Kind() == val.KindString {
		return val.NewString(l.Str() + r.Str()), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return val.Nil, fmt.Errorf("%w: %v %s %v", ErrType, l, op, r)
	}
	if l.Kind() == val.KindInt && r.Kind() == val.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case ast.OpAdd:
			return val.NewInt(a + b), nil
		case ast.OpSub:
			return val.NewInt(a - b), nil
		case ast.OpMul:
			return val.NewInt(a * b), nil
		case ast.OpDiv:
			if b == 0 {
				return val.Nil, ErrDivByZero
			}
			return val.NewInt(a / b), nil
		case ast.OpMod:
			if b == 0 {
				return val.Nil, ErrDivByZero
			}
			return val.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case ast.OpAdd:
		return val.NewFloat(a + b), nil
	case ast.OpSub:
		return val.NewFloat(a - b), nil
	case ast.OpMul:
		return val.NewFloat(a * b), nil
	case ast.OpDiv:
		if b == 0 {
			return val.Nil, ErrDivByZero
		}
		return val.NewFloat(a / b), nil
	case ast.OpMod:
		return val.Nil, fmt.Errorf("%w: %% on floats", ErrType)
	}
	return val.Nil, fmt.Errorf("%w: bad arithmetic op %v", ErrType, op)
}

// Builtin is the implementation of an f_* function.
type Builtin func(args []val.Value) (val.Value, error)

// builtins is the registry of NDlog built-in functions.
var builtins = map[string]Builtin{
	"f_concatPath": fConcatPath,
	"f_append":     fAppend,
	"f_member":     fMember,
	"f_size":       fSize,
	"f_first":      fFirst,
	"f_last":       fLast,
	"f_reverse":    fReverse,
	"f_list":       fList,
	"f_min":        fMin2,
	"f_max":        fMax2,
	"f_abs":        fAbs,
	"f_prevHop":    fPrevHop,
	"f_nth":        fNth,
}

// Register adds (or replaces) a builtin. Tools may extend the library.
func Register(name string, fn Builtin) { builtins[name] = fn }

// Lookup resolves a builtin by name.
func Lookup(name string) (Builtin, bool) {
	fn, ok := builtins[name]
	return fn, ok
}

func evalCall(c *ast.Call, env Env) (val.Value, error) {
	fn, ok := builtins[c.Name]
	if !ok {
		return val.Nil, fmt.Errorf("%w: %s", ErrUnknownFunc, c.Name)
	}
	args := make([]val.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := Eval(a, env)
		if err != nil {
			return val.Nil, err
		}
		args[i] = v
	}
	v, err := fn(args)
	if err != nil {
		return val.Nil, fmt.Errorf("%s: %w", c.Name, err)
	}
	return v, nil
}

func need(args []val.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%w: got %d, want %d", ErrArity, len(args), n)
	}
	return nil
}

func needList(v val.Value) ([]val.Value, error) {
	if v.Kind() != val.KindList {
		return nil, fmt.Errorf("%w: want list, got %s", ErrType, v.Kind())
	}
	return v.List(), nil
}

// fConcatPath prepends its first argument to the list in its second
// argument, building path vectors front-to-back:
// f_concatPath(s, [z,d]) = [s,z,d].
func fConcatPath(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	tail, err := needList(args[1])
	if err != nil {
		return val.Nil, err
	}
	out := make([]val.Value, 0, len(tail)+1)
	out = append(out, args[0])
	out = append(out, tail...)
	return val.NewList(out...), nil
}

// fAppend appends its second argument to the list in its first argument.
func fAppend(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	head, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	out := make([]val.Value, 0, len(head)+1)
	out = append(out, head...)
	out = append(out, args[1])
	return val.NewList(out...), nil
}

// fMember reports whether its second argument occurs in the list given as
// first argument. Used for loop avoidance in path-vector protocols.
func fMember(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	l, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	for i := range l {
		if l[i].Equal(args[1]) {
			return val.NewBool(true), nil
		}
	}
	return val.NewBool(false), nil
}

func fSize(args []val.Value) (val.Value, error) {
	if err := need(args, 1); err != nil {
		return val.Nil, err
	}
	l, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	return val.NewInt(int64(len(l))), nil
}

func fFirst(args []val.Value) (val.Value, error) {
	if err := need(args, 1); err != nil {
		return val.Nil, err
	}
	l, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	if len(l) == 0 {
		return val.Nil, errors.New("f_first of empty list")
	}
	return l[0], nil
}

func fLast(args []val.Value) (val.Value, error) {
	if err := need(args, 1); err != nil {
		return val.Nil, err
	}
	l, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	if len(l) == 0 {
		return val.Nil, errors.New("f_last of empty list")
	}
	return l[len(l)-1], nil
}

func fReverse(args []val.Value) (val.Value, error) {
	if err := need(args, 1); err != nil {
		return val.Nil, err
	}
	l, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	out := make([]val.Value, len(l))
	for i := range l {
		out[len(l)-1-i] = l[i]
	}
	return val.NewList(out...), nil
}

func fList(args []val.Value) (val.Value, error) {
	out := make([]val.Value, len(args))
	copy(out, args)
	return val.NewList(out...), nil
}

// fMin2 and fMax2 order their arguments the way comparison operators
// do (orderValues): mixed int/float compares numerically, mixed
// non-numeric kinds raise ErrType instead of silently ordering by the
// internal kind tag. Ties return the first argument.
func fMin2(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	c, err := orderValues(args[0], args[1])
	if err != nil {
		return val.Nil, err
	}
	if c <= 0 {
		return args[0], nil
	}
	return args[1], nil
}

func fMax2(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	c, err := orderValues(args[0], args[1])
	if err != nil {
		return val.Nil, err
	}
	if c >= 0 {
		return args[0], nil
	}
	return args[1], nil
}

// fNth returns the i-th element (0-based) of a list, or Nil when out of
// range. Path-vector programs use f_nth(P, 1) for the next hop.
func fNth(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	l, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	if args[1].Kind() != val.KindInt {
		return val.Nil, fmt.Errorf("%w: f_nth index must be int", ErrType)
	}
	i := args[1].Int()
	if i < 0 || i >= int64(len(l)) {
		return val.Nil, nil
	}
	return l[i], nil
}

// fPrevHop returns the element immediately preceding x in the list, or
// Nil when x is the first element or does not occur. Used by answer
// tuples walking a path vector backwards toward the source.
func fPrevHop(args []val.Value) (val.Value, error) {
	if err := need(args, 2); err != nil {
		return val.Nil, err
	}
	l, err := needList(args[0])
	if err != nil {
		return val.Nil, err
	}
	for i := 1; i < len(l); i++ {
		if l[i].Equal(args[1]) {
			return l[i-1], nil
		}
	}
	return val.Nil, nil
}

func fAbs(args []val.Value) (val.Value, error) {
	if err := need(args, 1); err != nil {
		return val.Nil, err
	}
	switch args[0].Kind() {
	case val.KindInt:
		if n := args[0].Int(); n < 0 {
			return val.NewInt(-n), nil
		}
		return args[0], nil
	case val.KindFloat:
		if f := args[0].Float(); f < 0 {
			return val.NewFloat(-f), nil
		}
		return args[0], nil
	}
	return val.Nil, fmt.Errorf("%w: f_abs on %s", ErrType, args[0].Kind())
}
