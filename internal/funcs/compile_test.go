package funcs

import (
	"errors"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// slotTable builds a slotOf resolver plus a bound SlotEnv from
// name/value pairs, mimicking what the engine compiles per rule.
func slotTable(binds map[string]val.Value) (func(string) (int, bool), *SlotEnv) {
	names := make([]string, 0, len(binds))
	index := map[string]int{}
	for name := range binds {
		index[name] = len(names)
		names = append(names, name)
	}
	env := NewSlotEnv(len(names))
	for name, i := range index {
		env.Bind(i, binds[name])
	}
	return func(name string) (int, bool) { i, ok := index[name]; return i, ok }, env
}

func compiled(t *testing.T, src string, slotOf func(string) (int, bool)) *Compiled {
	t.Helper()
	c, err := CompileExpr(exprOf(t, src), slotOf)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

func TestCompiledEvalMatchesMapEval(t *testing.T) {
	binds := map[string]val.Value{
		"A": val.NewInt(7), "B": val.NewInt(2), "F": val.NewFloat(0.5),
		"S": val.NewString("x"), "T": val.NewBool(true),
		"P": val.NewList(val.NewAddr("a"), val.NewAddr("b")),
	}
	slotOf, env := slotTable(binds)
	mapEnv := Env(binds)
	cases := []string{
		"X := A + B * 2",
		"X := (A + B) * 2",
		"X := A % B",
		"X := A + F",
		"X := f_concatPath(S, P)",
		"X := f_size(P)",
		"X := f_min(A, B)",
		"A < B || B > 4",
		"T && A > B",
		"S == \"x\"",
		"A == 7 && F < 1",
	}
	for _, src := range cases {
		e := exprOf(t, src)
		want, wantErr := Eval(e, mapEnv)
		c, err := CompileExpr(e, slotOf)
		if err != nil {
			t.Errorf("%s: compile: %v", src, err)
			continue
		}
		got, gotErr := c.Eval(env)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%s: err %v vs %v", src, gotErr, wantErr)
			continue
		}
		if wantErr == nil && !got.Equal(want) {
			t.Errorf("%s: compiled %v, map %v", src, got, want)
		}
	}
}

func TestCompiledConstantFolding(t *testing.T) {
	slotOf, _ := slotTable(nil)
	c := compiled(t, "X := 2 + 3 * 4", slotOf)
	if _, ok := c.root.(cConst); !ok {
		t.Errorf("2+3*4 should fold to a constant, got %T", c.root)
	}
	v, err := c.Eval(nil)
	if err != nil || v.Int() != 14 {
		t.Errorf("folded value = %v, %v", v, err)
	}
	// Errors must not fold: 1/0 stays a runtime error.
	c = compiled(t, "X := 1 / 0", slotOf)
	if _, ok := c.root.(cConst); ok {
		t.Error("1/0 must not fold")
	}
	if _, err := c.Eval(NewSlotEnv(0)); !errors.Is(err, ErrDivByZero) {
		t.Errorf("1/0 err = %v", err)
	}
}

func TestCompiledUnboundVariable(t *testing.T) {
	slotOf, env := slotTable(map[string]val.Value{"A": val.NewInt(1)})
	// Variable with a slot but no binding at eval time.
	env.Unbind(0)
	c := compiled(t, "X := A + 1", slotOf)
	if _, err := c.Eval(env); !errors.Is(err, ErrUnboundVar) {
		t.Errorf("unbound slot err = %v", err)
	}
	// Variable with no slot at all fails at compile time.
	if _, err := CompileExpr(exprOf(t, "X := Missing + 1"), slotOf); !errors.Is(err, ErrUnboundVar) {
		t.Errorf("missing slot err = %v", err)
	}
}

func TestCompiledShortCircuit(t *testing.T) {
	slotOf, env := slotTable(map[string]val.Value{
		"F": val.NewBool(false), "T": val.NewBool(true), "U": val.NewInt(0),
	})
	// U is declared but left unbound: the RHS must not be evaluated.
	uSlot, _ := slotOf("U")
	env.Unbind(uSlot)
	ok, err := compiled(t, "F && U > 0", slotOf).EvalBool(env)
	if err != nil || ok {
		t.Errorf("false && ... = %v, %v", ok, err)
	}
	ok, err = compiled(t, "T || U > 0", slotOf).EvalBool(env)
	if err != nil || !ok {
		t.Errorf("true || ... = %v, %v", ok, err)
	}
	if _, err := compiled(t, "T && 1 + 1", slotOf).EvalBool(env); !errors.Is(err, ErrType) {
		t.Errorf("&& int RHS err = %v", err)
	}
}

func TestCompiledEvalBoolNonBool(t *testing.T) {
	slotOf, env := slotTable(nil)
	if _, err := compiled(t, "X := 1 + 1", slotOf).EvalBool(env); !errors.Is(err, ErrType) {
		t.Errorf("EvalBool on int err = %v", err)
	}
}

func TestCompiledAggregateRejected(t *testing.T) {
	slotOf, _ := slotTable(nil)
	if _, err := CompileExpr(&ast.Agg{Func: ast.AggMin, Var: "C"}, slotOf); !errors.Is(err, ErrType) {
		t.Errorf("aggregate compile err = %v", err)
	}
}

func TestCompiledLateBoundBuiltin(t *testing.T) {
	slotOf, env := slotTable(nil)
	// Compile before the builtin exists; Register afterwards.
	c := compiled(t, "X := f_late_bound_test()", slotOf)
	if _, err := c.Eval(env); !errors.Is(err, ErrUnknownFunc) {
		t.Errorf("pre-register err = %v", err)
	}
	Register("f_late_bound_test", func(args []val.Value) (val.Value, error) {
		return val.NewInt(99), nil
	})
	v, err := c.Eval(env)
	if err != nil || v.Int() != 99 {
		t.Errorf("late-bound call = %v, %v", v, err)
	}
}

func TestSlotEnvBasics(t *testing.T) {
	e := NewSlotEnv(130) // cross the 64-bit word boundary
	if e.Len() != 130 {
		t.Fatalf("Len = %d", e.Len())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if e.Bound(i) {
			t.Errorf("slot %d bound before Bind", i)
		}
		e.Bind(i, val.NewInt(int64(i)))
		if !e.Bound(i) {
			t.Errorf("slot %d unbound after Bind", i)
		}
		if v, ok := e.Get(i); !ok || v.Int() != int64(i) {
			t.Errorf("Get(%d) = %v, %v", i, v, ok)
		}
		if v := e.Value(i); v.Int() != int64(i) {
			t.Errorf("Value(%d) = %v", i, v)
		}
	}
	e.Unbind(64)
	if e.Bound(64) {
		t.Error("slot 64 bound after Unbind")
	}
	if !e.Bound(0) || !e.Bound(63) || !e.Bound(129) {
		t.Error("Unbind(64) clobbered other slots")
	}
	e.Reset()
	for _, i := range []int{0, 63, 64, 129} {
		if e.Bound(i) {
			t.Errorf("slot %d bound after Reset", i)
		}
	}
}
