package funcs

import (
	"testing"

	"ndlog/internal/val"
)

func callRing(t *testing.T, name string, args ...val.Value) val.Value {
	t.Helper()
	fn, ok := Lookup(name)
	if !ok {
		t.Fatalf("builtin %s not registered", name)
	}
	v, err := fn(args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestRingID(t *testing.T) {
	a := callRing(t, "f_id", val.NewAddr("n17"))
	b := callRing(t, "f_sha1", val.NewAddr("n17"))
	if !a.Equal(b) {
		t.Fatalf("f_id and f_sha1 disagree: %v vs %v", a, b)
	}
	if a.Kind() != val.KindInt {
		t.Fatalf("f_id kind = %v, want int", a.Kind())
	}
	if id := a.Int(); id < 0 || id >= RingSize {
		t.Fatalf("f_id(n17) = %d, outside [0, 2^32)", id)
	}
	// An addr and the equal string hash to the same point.
	s := callRing(t, "f_id", val.NewString("n17"))
	if !a.Equal(s) {
		t.Fatalf("addr n17 hashes to %v but string \"n17\" to %v", a, s)
	}
	if a.Equal(callRing(t, "f_id", val.NewAddr("n18"))) {
		t.Fatal("distinct addrs collided (astronomically unlikely, so: bug)")
	}
	// Hashing must be stable across calls (it keys ring placement).
	if !a.Equal(callRing(t, "f_id", val.NewAddr("n17"))) {
		t.Fatal("f_id is not deterministic")
	}
}

func TestRingAdd(t *testing.T) {
	sum := callRing(t, "f_ringadd", val.NewInt(RingSize-1), val.NewInt(2))
	if sum.Int() != 1 {
		t.Fatalf("(2^32-1) + 2 = %d on the ring, want 1", sum.Int())
	}
	sum = callRing(t, "f_ringadd", val.NewInt(5), val.NewInt(7))
	if sum.Int() != 12 {
		t.Fatalf("5 + 7 = %d, want 12", sum.Int())
	}
	if _, err := fRingAdd([]val.Value{val.NewInt(1), val.NewString("x")}); err == nil {
		t.Fatal("f_ringadd accepted a string")
	}
}

func TestRingDist(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 1, 1},
		{10, 20, 10},
		{20, 10, RingSize - 10},
		{RingSize - 1, 0, 1},
		{7, 7, RingSize}, // self is the farthest candidate, never distance 0
	}
	for _, c := range cases {
		got := callRing(t, "f_ringdist", val.NewInt(c.a), val.NewInt(c.b)).Int()
		if got != c.want {
			t.Errorf("f_ringdist(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestInRange(t *testing.T) {
	cases := []struct {
		x, a, b int64
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false}, // open at a
		{10, 1, 10, true}, // closed at b
		{11, 1, 10, false},
		{0, RingSize - 5, 3, true}, // wraparound
		{3, RingSize - 5, 3, true},
		{4, RingSize - 5, 3, false},
		{99, 7, 7, true}, // a == b: full ring
		{7, 7, 7, true},
	}
	for _, c := range cases {
		got := callRing(t, "f_inrange", val.NewInt(c.x), val.NewInt(c.a), val.NewInt(c.b)).Bool()
		if got != c.want {
			t.Errorf("f_inrange(%d, %d, %d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestInRangeOO(t *testing.T) {
	cases := []struct {
		x, a, b int64
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false}, // open at b
		{0, RingSize - 5, 3, true},
		{3, RingSize - 5, 3, false},
		{9, 7, 7, true},  // a == b: everything but a
		{7, 7, 7, false}, // ... and a itself is out
	}
	for _, c := range cases {
		got := callRing(t, "f_inrangeoo", val.NewInt(c.x), val.NewInt(c.a), val.NewInt(c.b)).Bool()
		if got != c.want {
			t.Errorf("f_inrangeoo(%d, %d, %d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

// TestRingConsistency pins the relation lookup rules rely on: for any
// key k and successor chain a -> b, k ∈ (a, b] exactly when the
// clockwise gap a->k is no larger than the gap a->b.
func TestRingConsistency(t *testing.T) {
	pts := []int64{0, 1, 1000, RingSize/2 - 1, RingSize / 2, RingSize - 2, RingSize - 1}
	for _, a := range pts {
		for _, b := range pts {
			for _, k := range pts {
				in := callRing(t, "f_inrange", val.NewInt(k), val.NewInt(a), val.NewInt(b)).Bool()
				da := callRing(t, "f_ringdist", val.NewInt(a), val.NewInt(k)).Int()
				db := callRing(t, "f_ringdist", val.NewInt(a), val.NewInt(b)).Int()
				if want := da <= db; in != want {
					t.Fatalf("inrange(%d,%d,%d)=%v but ringdist gives %d vs %d", k, a, b, in, da, db)
				}
			}
		}
	}
}
