package funcs

import (
	"fmt"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// SlotEnv is a slot-addressed unification environment: one value per
// compile-time variable slot plus a bound bitset. The engine numbers
// every variable of a rule at compile time (planner.AssignSlots) and
// evaluates the rule's strands over a SlotEnv, so binding, lookup and
// unbinding on the join hot path are slice/bit operations instead of
// string-map hashing. The map-based Env API remains for tools that
// evaluate ad-hoc expressions.
type SlotEnv struct {
	vals  []val.Value
	bound []uint64
	// args is the builtin-call argument arena: compiled calls push their
	// evaluated arguments here (stack discipline, so nested calls
	// compose) instead of keeping scratch on the shared compiled
	// expression. Compiled programs are shared by every node — and, under
	// parallel drains, by every worker — so the only per-evaluation
	// mutable state lives in the environment, which is per-worker.
	args []val.Value
}

// NewSlotEnv returns an environment with capacity for n slots, all
// unbound.
func NewSlotEnv(n int) *SlotEnv {
	return &SlotEnv{
		vals:  make([]val.Value, n),
		bound: make([]uint64, (n+63)/64),
	}
}

// Len returns the slot capacity.
func (e *SlotEnv) Len() int { return len(e.vals) }

// Reset unbinds every slot. Stale values stay in vals until rebound;
// they are bounded by the rule's slot count and never observable
// through Get.
func (e *SlotEnv) Reset() {
	for i := range e.bound {
		e.bound[i] = 0
	}
}

// Bound reports whether slot i holds a binding.
func (e *SlotEnv) Bound(i int) bool {
	return e.bound[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Get returns the binding of slot i.
func (e *SlotEnv) Get(i int) (val.Value, bool) {
	if !e.Bound(i) {
		return val.Nil, false
	}
	return e.vals[i], true
}

// Value returns slot i's value without a bound check; callers use it
// where bound-ness is structurally guaranteed (e.g. probe plans).
func (e *SlotEnv) Value(i int) val.Value { return e.vals[i] }

// Bind sets slot i. Rebinding a bound slot is the caller's bug; the
// engine's unification checks equality instead of rebinding.
func (e *SlotEnv) Bind(i int, v val.Value) {
	e.vals[i] = v
	e.bound[uint(i)>>6] |= 1 << (uint(i) & 63)
}

// Unbind clears slot i (trail unwinding).
func (e *SlotEnv) Unbind(i int) {
	e.bound[uint(i)>>6] &^= 1 << (uint(i) & 63)
}

// Compiled is an expression lowered against a rule's slot numbering:
// variable references resolved to slot indices, constant subexpressions
// folded, builtins pre-resolved. It evaluates over a SlotEnv with no
// map operations.
type Compiled struct {
	root cexpr
}

// CompileExpr lowers e, resolving variable names through slotOf. It
// fails on aggregate expressions (head-only, handled by the engine) and
// on variables slotOf cannot resolve.
func CompileExpr(e ast.Expr, slotOf func(name string) (int, bool)) (*Compiled, error) {
	root, err := compileExpr(e, slotOf)
	if err != nil {
		return nil, err
	}
	return &Compiled{root: root}, nil
}

// Eval evaluates the compiled expression under env.
func (c *Compiled) Eval(env *SlotEnv) (val.Value, error) {
	return c.root.eval(env)
}

// EvalBool evaluates a compiled selection condition to a boolean.
func (c *Compiled) EvalBool(env *SlotEnv) (bool, error) {
	v, err := c.root.eval(env)
	if err != nil {
		return false, err
	}
	if v.Kind() != val.KindBool {
		return false, fmt.Errorf("%w: condition is %s, not bool", ErrType, v.Kind())
	}
	return v.Bool(), nil
}

// cexpr is one node of a compiled expression tree.
type cexpr interface {
	eval(env *SlotEnv) (val.Value, error)
}

type cConst struct{ v val.Value }

func (c cConst) eval(*SlotEnv) (val.Value, error) { return c.v, nil }

type cSlot struct {
	slot int
	name string // for unbound-variable error messages
}

func (c cSlot) eval(env *SlotEnv) (val.Value, error) {
	if v, ok := env.Get(c.slot); ok {
		return v, nil
	}
	return val.Nil, fmt.Errorf("%w: %s", ErrUnboundVar, c.name)
}

type cBin struct {
	op   ast.Op
	l, r cexpr
}

func (b cBin) eval(env *SlotEnv) (val.Value, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return val.Nil, err
	}
	switch b.op {
	case ast.OpAnd, ast.OpOr:
		if l.Kind() != val.KindBool {
			return val.Nil, fmt.Errorf("%w: %s on %s", ErrType, b.op, l.Kind())
		}
		// Short-circuit, mirroring evalBinOp.
		if l.Bool() != (b.op == ast.OpAnd) {
			return l, nil
		}
		r, err := b.r.eval(env)
		if err != nil {
			return val.Nil, err
		}
		if r.Kind() != val.KindBool {
			return val.Nil, fmt.Errorf("%w: %s on %s", ErrType, b.op, r.Kind())
		}
		return r, nil
	}
	r, err := b.r.eval(env)
	if err != nil {
		return val.Nil, err
	}
	if b.op.IsComparison() {
		return evalComparison(b.op, l, r)
	}
	return evalArith(b.op, l, r)
}

type cCall struct {
	name string
	fn   Builtin // resolved at compile time; nil falls back to Lookup
	args []cexpr
}

func (c *cCall) eval(env *SlotEnv) (val.Value, error) {
	fn := c.fn
	if fn == nil {
		// The name was unknown at compile time: look it up now, in case
		// it was Register-ed since. (A builtin that DID resolve at
		// compile time stays pinned — re-Register after compilation does
		// not retarget already-compiled programs; recompile for that.)
		var ok bool
		if fn, ok = Lookup(c.name); !ok {
			return val.Nil, fmt.Errorf("%w: %s", ErrUnknownFunc, c.name)
		}
	}
	// Arguments are evaluated into the environment's arena with stack
	// discipline: nested calls grow past this call's mark and truncate
	// back before fn sees its slice. Builtins must not retain the args
	// slice (the library's own builtins copy what they keep).
	mark := len(env.args)
	for _, a := range c.args {
		v, err := a.eval(env)
		if err != nil {
			env.args = env.args[:mark]
			return val.Nil, err
		}
		env.args = append(env.args, v)
	}
	v, err := fn(env.args[mark:])
	env.args = env.args[:mark]
	if err != nil {
		return val.Nil, fmt.Errorf("%s: %w", c.name, err)
	}
	return v, nil
}

func compileExpr(e ast.Expr, slotOf func(string) (int, bool)) (cexpr, error) {
	switch x := e.(type) {
	case *ast.Const:
		return cConst{v: x.Value}, nil
	case *ast.Var:
		slot, ok := slotOf(x.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s (no slot)", ErrUnboundVar, x.Name)
		}
		return cSlot{slot: slot, name: x.Name}, nil
	case *ast.BinOp:
		l, err := compileExpr(x.L, slotOf)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, slotOf)
		if err != nil {
			return nil, err
		}
		node := cBin{op: x.Op, l: l, r: r}
		// Constant folding: a binop over two constants evaluates now.
		// Folding is skipped when evaluation errors (e.g. 1/0) so the
		// error still surfaces at run time, as the ast walker would.
		_, lConst := l.(cConst)
		_, rConst := r.(cConst)
		if lConst && rConst {
			if v, err := node.eval(nil); err == nil {
				return cConst{v: v}, nil
			}
		}
		return node, nil
	case *ast.Call:
		fn, _ := Lookup(x.Name)
		args := make([]cexpr, len(x.Args))
		for i, a := range x.Args {
			ca, err := compileExpr(a, slotOf)
			if err != nil {
				return nil, err
			}
			args[i] = ca
		}
		// Calls are never folded: Register may replace a builtin between
		// compilation and evaluation.
		return &cCall{name: x.Name, fn: fn, args: args}, nil
	case *ast.Agg:
		return nil, fmt.Errorf("%w: aggregate %s in scalar position", ErrType, x)
	}
	return nil, fmt.Errorf("%w: unknown expression %T", ErrType, e)
}
