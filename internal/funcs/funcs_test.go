package funcs

import (
	"errors"
	"strings"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/parser"
	"ndlog/internal/val"
)

// exprOf parses a single expression by wrapping it in a rule selection.
func exprOf(t *testing.T, src string) ast.Expr {
	t.Helper()
	r, err := parser.ParseRule("r p(@S) :- q(@S), " + src + ".")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	switch term := r.Body[1].(type) {
	case *ast.Select:
		return term.Cond
	case *ast.Assign:
		return term.Expr
	}
	t.Fatalf("unexpected term type for %q", src)
	return nil
}

func TestEvalArithmetic(t *testing.T) {
	env := Env{"A": val.NewInt(7), "B": val.NewInt(2), "F": val.NewFloat(0.5)}
	cases := []struct {
		src  string
		want val.Value
	}{
		{"X := A + B", val.NewInt(9)},
		{"X := A - B", val.NewInt(5)},
		{"X := A * B", val.NewInt(14)},
		{"X := A / B", val.NewInt(3)},
		{"X := A % B", val.NewInt(1)},
		{"X := A + F", val.NewFloat(7.5)},
		{"X := F * 2", val.NewFloat(1)},
		{"X := A + B * 2", val.NewInt(11)},
		{"X := (A + B) * 2", val.NewInt(18)},
		{"X := -3 + A", val.NewInt(4)},
	}
	for _, c := range cases {
		got, err := Eval(exprOf(t, c.src), env)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalComparison(t *testing.T) {
	env := Env{"A": val.NewInt(3), "B": val.NewInt(5), "F": val.NewFloat(3),
		"S": val.NewString("x"), "T": val.NewBool(true)}
	cases := []struct {
		src  string
		want bool
	}{
		{"A < B", true},
		{"A <= B", true},
		{"B < A", false},
		{"A >= B", false},
		{"B > A", true},
		{"A == 3", true},
		{"A == F", true}, // numeric equality across kinds
		{"A != B", true},
		{"A < F + 1", true},
		{"A <= F", true}, // 3 <= 3.0 numerically
		{"A >= F", true},
		{"S == \"x\"", true},
		{"A < B && B < 10", true},
		{"A > B || B > 4", true},
		{"A > B || B > 9", false},
		{"T && A < B", true},
	}
	for _, c := range cases {
		got, err := EvalBool(exprOf(t, c.src), env)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	env := Env{"A": val.NewInt(1), "S": val.NewString("x"), "L": val.NewList()}
	cases := []struct {
		src string
		err error
	}{
		{"X := Missing + 1", ErrUnboundVar},
		{"X := A / 0", ErrDivByZero},
		{"X := A % 0", ErrDivByZero},
		{"X := S * 2", ErrType},
		{"X := f_nosuch(A)", ErrUnknownFunc},
		{"X := f_size(A)", ErrType},
		{"X := f_size(L, L)", ErrArity},
		{"S < A", ErrType},
		{"A && A > 0", ErrType},
	}
	for _, c := range cases {
		_, err := Eval(exprOf(t, c.src), env)
		if err == nil {
			t.Errorf("%s: expected error", c.src)
			continue
		}
		if !errors.Is(err, c.err) {
			t.Errorf("%s: err = %v, want %v", c.src, err, c.err)
		}
	}
}

func TestEvalBoolNonBool(t *testing.T) {
	if _, err := EvalBool(exprOf(t, "X := 1 + 1"), Env{}); err == nil {
		t.Error("EvalBool on int should fail")
	}
}

func addrList(names ...string) val.Value {
	vs := make([]val.Value, len(names))
	for i, n := range names {
		vs[i] = val.NewAddr(n)
	}
	return val.NewList(vs...)
}

func TestPathFunctions(t *testing.T) {
	env := Env{
		"S": val.NewAddr("a"),
		"P": addrList("b", "d"),
	}
	got, err := Eval(exprOf(t, "X := f_concatPath(S, P)"), env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(addrList("a", "b", "d")) {
		t.Errorf("f_concatPath = %v", got)
	}

	got, err = Eval(exprOf(t, "X := f_append(P, S)"), env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(addrList("b", "d", "a")) {
		t.Errorf("f_append = %v", got)
	}

	for _, c := range []struct {
		src  string
		want bool
	}{
		{"f_member(P, @b) == true", true},
		{"f_member(P, S) == false", true},
	} {
		ok, err := EvalBool(exprOf(t, c.src), env)
		if err != nil || ok != c.want {
			t.Errorf("%s = %v, %v", c.src, ok, err)
		}
	}

	got, _ = Eval(exprOf(t, "X := f_size(P)"), env)
	if got.Int() != 2 {
		t.Errorf("f_size = %v", got)
	}
	got, _ = Eval(exprOf(t, "X := f_first(P)"), env)
	if got.Addr() != "b" {
		t.Errorf("f_first = %v", got)
	}
	got, _ = Eval(exprOf(t, "X := f_last(P)"), env)
	if got.Addr() != "d" {
		t.Errorf("f_last = %v", got)
	}
	got, _ = Eval(exprOf(t, "X := f_reverse(P)"), env)
	if !got.Equal(addrList("d", "b")) {
		t.Errorf("f_reverse = %v", got)
	}
	if _, err := Eval(exprOf(t, "X := f_first(nil)"), env); err == nil {
		t.Error("f_first(nil) should fail")
	}
	if _, err := Eval(exprOf(t, "X := f_last(nil)"), env); err == nil {
		t.Error("f_last(nil) should fail")
	}
}

func TestListLiteralWithVars(t *testing.T) {
	env := Env{"A": val.NewAddr("a"), "B": val.NewAddr("b")}
	got, err := Eval(exprOf(t, "X := [A, B, @c]"), env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(addrList("a", "b", "c")) {
		t.Errorf("list literal = %v", got)
	}
}

func TestMinMaxAbs(t *testing.T) {
	env := Env{"A": val.NewInt(3), "B": val.NewInt(-5)}
	if got, _ := Eval(exprOf(t, "X := f_min(A, B)"), env); got.Int() != -5 {
		t.Errorf("f_min = %v", got)
	}
	if got, _ := Eval(exprOf(t, "X := f_max(A, B)"), env); got.Int() != 3 {
		t.Errorf("f_max = %v", got)
	}
	if got, _ := Eval(exprOf(t, "X := f_abs(B)"), env); got.Int() != 5 {
		t.Errorf("f_abs = %v", got)
	}
	if got, _ := Eval(exprOf(t, "X := f_abs(A)"), env); got.Int() != 3 {
		t.Errorf("f_abs = %v", got)
	}
	envf := Env{"F": val.NewFloat(-1.5)}
	if got, _ := Eval(exprOf(t, "X := f_abs(F)"), envf); got.Float() != 1.5 {
		t.Errorf("f_abs float = %v", got)
	}
	if _, err := Eval(exprOf(t, "X := f_abs(@a)"), Env{}); err == nil {
		t.Error("f_abs on addr should fail")
	}
}

// TestMinMaxMixedKinds pins f_min/f_max's typing: mixed int/float
// compares numerically (like the comparison operators), same-kind
// non-numeric values order naturally, and mixed non-numeric kinds raise
// ErrType instead of silently ordering by the internal kind tag.
func TestMinMaxMixedKinds(t *testing.T) {
	env := Env{
		"I": val.NewInt(5), "F": val.NewFloat(2.5),
		"S": val.NewString("a"), "T": val.NewString("b"),
		"A": val.NewAddr("n1"),
	}
	// Numeric normalization across kinds.
	if got, err := Eval(exprOf(t, "X := f_min(I, F)"), env); err != nil || got.Float() != 2.5 {
		t.Errorf("f_min(5, 2.5) = %v, %v", got, err)
	}
	if got, err := Eval(exprOf(t, "X := f_max(I, F)"), env); err != nil || got.Int() != 5 {
		t.Errorf("f_max(5, 2.5) = %v, %v", got, err)
	}
	// Numeric ties return the first argument with its kind intact.
	envTie := Env{"I": val.NewInt(3), "F": val.NewFloat(3)}
	if got, err := Eval(exprOf(t, "X := f_min(I, F)"), envTie); err != nil || got.Kind() != val.KindInt {
		t.Errorf("f_min(3, 3.0) = %v (%v), %v", got, got.Kind(), err)
	}
	if got, err := Eval(exprOf(t, "X := f_min(F, I)"), envTie); err != nil || got.Kind() != val.KindFloat {
		t.Errorf("f_min(3.0, 3) = %v (%v), %v", got, got.Kind(), err)
	}
	// Same-kind int pairs compare exactly: values beyond 2^53 must not
	// collapse through float64.
	big := int64(1) << 53
	envBig := Env{"P": val.NewInt(big + 1), "Q": val.NewInt(big)}
	if got, err := Eval(exprOf(t, "X := f_min(P, Q)"), envBig); err != nil || got.Int() != big {
		t.Errorf("f_min(2^53+1, 2^53) = %v, %v; want 2^53", got, err)
	}
	if got, err := Eval(exprOf(t, "X := f_max(Q, P)"), envBig); err != nil || got.Int() != big+1 {
		t.Errorf("f_max(2^53, 2^53+1) = %v, %v; want 2^53+1", got, err)
	}
	// Same-kind non-numeric values still order.
	if got, err := Eval(exprOf(t, "X := f_min(S, T)"), env); err != nil || got.Str() != "a" {
		t.Errorf("f_min(\"a\", \"b\") = %v, %v", got, err)
	}
	if got, err := Eval(exprOf(t, "X := f_max(S, T)"), env); err != nil || got.Str() != "b" {
		t.Errorf("f_max(\"a\", \"b\") = %v, %v", got, err)
	}
	// Mixed non-numeric kinds are type errors, matching "<".
	for _, src := range []string{
		"X := f_min(S, I)", "X := f_max(S, I)",
		"X := f_min(A, S)", "X := f_max(I, A)",
	} {
		if _, err := Eval(exprOf(t, src), env); !errors.Is(err, ErrType) {
			t.Errorf("%s: err = %v, want ErrType", src, err)
		}
	}
}

func TestPrevHop(t *testing.T) {
	env := Env{"P": addrList("s", "z", "d")}
	cases := []struct {
		of   string
		want val.Value
	}{
		{"@d", val.NewAddr("z")},
		{"@z", val.NewAddr("s")},
		{"@s", val.Nil},  // first element has no predecessor
		{"@qq", val.Nil}, // absent
	}
	for _, c := range cases {
		got, err := Eval(exprOf(t, "X := f_prevHop(P, "+c.of+")"), env)
		if err != nil {
			t.Errorf("f_prevHop(P,%s): %v", c.of, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("f_prevHop(P,%s) = %v, want %v", c.of, got, c.want)
		}
	}
	if _, err := Eval(exprOf(t, "X := f_prevHop(P)"), env); err == nil {
		t.Error("arity error expected")
	}
}

func TestNth(t *testing.T) {
	env := Env{"P": addrList("s", "z", "d")}
	cases := []struct {
		idx  string
		want val.Value
	}{
		{"0", val.NewAddr("s")},
		{"1", val.NewAddr("z")},
		{"2", val.NewAddr("d")},
		{"3", val.Nil},
		{"-1", val.Nil},
	}
	for _, c := range cases {
		got, err := Eval(exprOf(t, "X := f_nth(P, "+c.idx+")"), env)
		if err != nil {
			t.Errorf("f_nth(P,%s): %v", c.idx, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("f_nth(P,%s) = %v, want %v", c.idx, got, c.want)
		}
	}
	if _, err := Eval(exprOf(t, "X := f_nth(P, @a)"), env); err == nil {
		t.Error("non-int index should fail")
	}
	if _, err := Eval(exprOf(t, "X := f_nth(P)"), env); err == nil {
		t.Error("arity error expected")
	}
}

func TestRegisterAndLookup(t *testing.T) {
	Register("f_custom_test", func(args []val.Value) (val.Value, error) {
		return val.NewInt(42), nil
	})
	fn, ok := Lookup("f_custom_test")
	if !ok {
		t.Fatal("registered builtin not found")
	}
	v, err := fn(nil)
	if err != nil || v.Int() != 42 {
		t.Errorf("custom builtin = %v, %v", v, err)
	}
	if _, ok := Lookup("f_definitely_missing"); ok {
		t.Error("Lookup found a missing function")
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"A": val.NewInt(1)}
	c := e.Clone()
	c["A"] = val.NewInt(2)
	c["B"] = val.NewInt(3)
	if e["A"].Int() != 1 {
		t.Error("clone mutated original")
	}
	if _, ok := e["B"]; ok {
		t.Error("clone shares map")
	}
}

func TestStringConcat(t *testing.T) {
	env := Env{"A": val.NewString("foo"), "B": val.NewString("bar")}
	got, err := Eval(exprOf(t, "X := A + B"), env)
	if err != nil || got.Str() != "foobar" {
		t.Errorf("string + = %v, %v", got, err)
	}
}

func TestShortCircuit(t *testing.T) {
	// RHS has an unbound variable; short-circuit must avoid evaluating it.
	env := Env{"F": val.NewBool(false), "T": val.NewBool(true)}
	ok, err := EvalBool(exprOf(t, "F && Missing > 0"), env)
	if err != nil || ok {
		t.Errorf("false && ... = %v, %v", ok, err)
	}
	ok, err = EvalBool(exprOf(t, "T || Missing > 0"), env)
	if err != nil || !ok {
		t.Errorf("true || ... = %v, %v", ok, err)
	}
	// Non-bool RHS must error when it is evaluated.
	if _, err := EvalBool(exprOf(t, "T && 1 + 1"), env); err == nil {
		t.Error("&& with int RHS should fail")
	}
	if _, err := EvalBool(exprOf(t, "F || 1 + 1"), env); err == nil {
		t.Error("|| with int RHS should fail")
	}
}

func TestErrorMessagesCarryFunctionName(t *testing.T) {
	_, err := Eval(exprOf(t, "X := f_size(@a)"), Env{})
	if err == nil || !strings.Contains(err.Error(), "f_size") {
		t.Errorf("error should name the function: %v", err)
	}
}
