// Package netrun executes an NDlog deployment over real UDP sockets
// (standard library net only). It is the bridge from the simulated
// evaluation environment to an actual networked one: every NDlog node
// gets its own socket and goroutine, derived tuples travel as UDP
// datagrams encoded exactly like the simulator's messages, and
// quiescence is detected by a cluster-wide idle timeout (a real network
// has no global event queue to observe).
//
// The runner binds loopback addresses, so tests exercise genuine socket
// I/O without leaving the machine. Message loss and reordering are
// possible exactly as with real UDP; the engine's PSN evaluation and
// soft-state options behave as they would in deployment.
package netrun

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ndlog/internal/ast"
	"ndlog/internal/engine"
	"ndlog/internal/val"
)

// Runner drives one NDlog program over UDP.
type Runner struct {
	prog  *ast.Program
	opts  engine.Options
	nodes map[string]*netNode
	// book maps NDlog addresses to UDP addresses.
	book map[string]*net.UDPAddr

	activity atomic.Int64 // bumps on every processed datagram
	bytes    atomic.Int64
	messages atomic.Int64

	wg   sync.WaitGroup
	stop chan struct{}
}

type netNode struct {
	id   string
	node *engine.Node
	conn *net.UDPConn
	mu   sync.Mutex // guards node (engine nodes are single-threaded)
}

// New creates a runner for prog with one engine node per id. Each node
// binds an ephemeral UDP port on localhost.
func New(prog *ast.Program, ids []string, opts engine.Options) (*Runner, error) {
	r := &Runner{
		prog:  prog,
		opts:  opts,
		nodes: map[string]*netNode{},
		book:  map[string]*net.UDPAddr{},
		stop:  make(chan struct{}),
	}
	for _, id := range ids {
		n, err := engine.NewNode(id, prog, opts)
		if err != nil {
			r.Close()
			return nil, err
		}
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("netrun: bind %s: %w", id, err)
		}
		r.nodes[id] = &netNode{id: id, node: n, conn: conn}
		r.book[id] = conn.LocalAddr().(*net.UDPAddr)
	}
	return r, nil
}

// Addr returns the UDP address serving an NDlog node.
func (r *Runner) Addr(id string) *net.UDPAddr { return r.book[id] }

// Bytes returns the total UDP payload bytes sent.
func (r *Runner) Bytes() int64 { return r.bytes.Load() }

// Messages returns the number of datagrams sent.
func (r *Runner) Messages() int64 { return r.messages.Load() }

// Start launches the receive loops and seeds every node with its home
// base facts.
func (r *Runner) Start() {
	for _, nn := range r.nodes {
		r.wg.Add(1)
		go r.receiveLoop(nn)
	}
	for _, nn := range r.nodes {
		nn.mu.Lock()
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		for _, f := range engine.HomeFacts(r.prog, nn.id) {
			nn.node.Push(engine.Insert(f))
		}
		outs := nn.node.Drain()
		nn.mu.Unlock()
		r.dispatch(nn, outs)
	}
}

func (r *Runner) receiveLoop(nn *netNode) {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		// A short read deadline lets the loop notice shutdown.
		nn.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := nn.conn.ReadFromUDP(buf)
		select {
		case <-r.stop:
			return
		default:
		}
		if err != nil {
			continue // deadline or transient error; keep serving
		}
		// Decode under the node lock: the interner is node state, and the
		// copy-on-decode invariant (decoded tuples never alias buf) is
		// what lets this loop reuse one read buffer across datagrams.
		nn.mu.Lock()
		deltas, err := engine.DecodeMessageIn(buf[:n], nn.node.Interner())
		if err != nil {
			nn.mu.Unlock()
			continue // corrupt datagram: drop, like any UDP protocol
		}
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		for _, d := range deltas {
			nn.node.Push(d)
		}
		outs := nn.node.Drain()
		nn.mu.Unlock()
		r.activity.Add(1)
		r.dispatch(nn, outs)
	}
}

// Inject delivers a delta to a node from outside (e.g. a link update).
func (r *Runner) Inject(id string, d engine.Delta) error {
	nn, ok := r.nodes[id]
	if !ok {
		return fmt.Errorf("netrun: unknown node %q", id)
	}
	nn.mu.Lock()
	nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
	nn.node.Push(d)
	outs := nn.node.Drain()
	nn.mu.Unlock()
	r.activity.Add(1)
	r.dispatch(nn, outs)
	return nil
}

// dispatchMaxPayload caps a batched datagram's estimated payload so it
// stays well under the 64 KiB UDP limit (and the receive buffer).
const dispatchMaxPayload = 32 << 10

// dispatch batches one drain's outbound deltas per destination — one
// datagram carries every tuple bound for the same peer, mirroring the
// simulator's per-pump batching — chunked so no datagram exceeds
// dispatchMaxPayload.
func (r *Runner) dispatch(nn *netNode, outs []engine.OutDelta) {
	byDst := map[string][]engine.Delta{}
	var order []string
	for _, o := range outs {
		if _, ok := r.book[o.Dst]; !ok {
			continue
		}
		if _, ok := byDst[o.Dst]; !ok {
			order = append(order, o.Dst)
		}
		byDst[o.Dst] = append(byDst[o.Dst], o.Delta)
	}
	for _, dstID := range order {
		dst := r.book[dstID]
		deltas := byDst[dstID]
		for len(deltas) > 0 {
			n, size := 0, 0
			for n < len(deltas) {
				size += 1 + val.EncodedSize(deltas[n].Tuple)
				if n > 0 && size > dispatchMaxPayload {
					break
				}
				n++
			}
			payload := engine.EncodeDeltas(deltas[:n])
			deltas = deltas[n:]
			if _, err := nn.conn.WriteToUDP(payload, dst); err == nil {
				r.bytes.Add(int64(len(payload)))
				r.messages.Add(1)
			}
		}
	}
}

// WaitQuiescent blocks until no node has processed a datagram for idle,
// or until timeout. It reports whether the cluster went idle.
func (r *Runner) WaitQuiescent(idle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	last := r.activity.Load()
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(idle / 4)
		cur := r.activity.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= idle {
			return true
		}
	}
	return false
}

// Tuples gathers a predicate across all nodes (snapshot under each
// node's lock).
func (r *Runner) Tuples(pred string) []string {
	var out []string
	for _, nn := range r.nodes {
		nn.mu.Lock()
		for _, t := range nn.node.Tuples(pred) {
			out = append(out, t.Key())
		}
		nn.mu.Unlock()
	}
	return out
}

// NodeTuples returns one node's tuples for a predicate, as keys.
func (r *Runner) NodeTuples(id, pred string) []string {
	nn, ok := r.nodes[id]
	if !ok {
		return nil
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for _, t := range nn.node.Tuples(pred) {
		out = append(out, t.Key())
	}
	return out
}

// Close shuts down all sockets and waits for the receive loops.
func (r *Runner) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	for _, nn := range r.nodes {
		if nn.conn != nil {
			nn.conn.Close()
		}
	}
	r.wg.Wait()
}
