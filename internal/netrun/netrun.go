// Package netrun executes an NDlog deployment over real UDP sockets
// (standard library net only). It is the bridge from the simulated
// evaluation environment to an actual networked one: every NDlog node
// gets its own socket and goroutine, derived tuples travel as UDP
// datagrams encoded exactly like the simulator's messages, and
// quiescence is detected by a cluster-wide idle timeout (a real network
// has no global event queue to observe).
//
// A Runner hosts a set of *local* nodes, but its address book may map
// further node IDs to sockets owned by other runners — in another
// goroutine or another OS process entirely (see internal/shard for the
// multi-process deployment built on this). Tuples bound for a node the
// book does not know are counted as dropped, exactly like a datagram
// with no route.
//
// Ownership: a Runner owns its engine nodes and their sockets. Engine
// nodes are single-threaded, so every Push/Drain/Tuples access happens
// under the per-node mutex; the receive loops rely on the engine's
// copy-on-decode invariant (decoded tuples never alias the read buffer)
// to reuse one buffer per loop. The address book is guarded separately
// so remote entries can be installed while the loops are live.
//
// The default runner binds loopback addresses, so tests exercise
// genuine socket I/O without leaving the machine. Message loss and
// reordering are possible exactly as with real UDP; the engine's PSN
// evaluation and soft-state options behave as they would in deployment.
package netrun

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndlog/internal/ast"
	"ndlog/internal/engine"
	"ndlog/internal/val"
)

// Runner drives the local slice of an NDlog deployment over UDP.
type Runner struct {
	prog  *ast.Program
	opts  engine.Options
	nodes map[string]*netNode

	// book maps NDlog addresses — local and remote — to UDP addresses.
	// bookMu guards it: remote entries arrive from a control plane while
	// receive loops are dispatching.
	bookMu sync.RWMutex
	book   map[string]*net.UDPAddr

	activity atomic.Int64 // bumps on every processed datagram, injection, or seed
	sentB    atomic.Int64
	sentM    atomic.Int64
	recvB    atomic.Int64
	recvM    atomic.Int64
	dropped  atomic.Int64 // deltas bound for nodes absent from the book

	wg   sync.WaitGroup
	stop chan struct{}
}

// Stats is a snapshot of a runner's traffic counters, exported to the
// shard control plane and the metrics harness.
type Stats struct {
	SentBytes    int64 // UDP payload bytes sent
	SentMessages int64 // datagrams sent
	RecvBytes    int64 // UDP payload bytes received
	RecvMessages int64 // datagrams received
	Dropped      int64 // outbound deltas with no address-book entry
}

type netNode struct {
	id   string
	node *engine.Node
	conn *net.UDPConn
	mu   sync.Mutex // guards node (engine nodes are single-threaded)
}

// New creates a runner hosting every id locally. Each node binds an
// ephemeral UDP port on localhost.
func New(prog *ast.Program, ids []string, opts engine.Options) (*Runner, error) {
	local := make(map[string]string, len(ids))
	for _, id := range ids {
		local[id] = ""
	}
	return NewSharded(prog, local, opts)
}

// NewSharded creates a runner hosting only the nodes in local, mapping
// each to its bind address ("" binds an ephemeral localhost port; a
// "host:port" string pins the socket, for static multi-machine
// manifests). Nodes of the program that live elsewhere are reached
// through remote book entries installed with SetRemote.
func NewSharded(prog *ast.Program, local map[string]string, opts engine.Options) (*Runner, error) {
	r := &Runner{
		prog:  prog,
		opts:  opts,
		nodes: map[string]*netNode{},
		book:  map[string]*net.UDPAddr{},
		stop:  make(chan struct{}),
	}
	for id, bind := range local {
		n, err := engine.NewNode(id, prog, opts)
		if err != nil {
			r.Close()
			return nil, err
		}
		laddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
		if bind != "" {
			laddr, err = net.ResolveUDPAddr("udp", bind)
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("netrun: bind address for %s: %w", id, err)
			}
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("netrun: bind %s: %w", id, err)
		}
		r.nodes[id] = &netNode{id: id, node: n, conn: conn}
		r.book[id] = conn.LocalAddr().(*net.UDPAddr)
	}
	return r, nil
}

// SetRemote installs (or replaces) an address-book entry for a node
// hosted outside this runner. Safe to call while the receive loops are
// live; in-flight dispatches see either the old or the new address.
func (r *Runner) SetRemote(id, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("netrun: remote address for %s: %w", id, err)
	}
	r.bookMu.Lock()
	r.book[id] = ua
	r.bookMu.Unlock()
	return nil
}

// Addr returns the UDP address serving an NDlog node (local or remote),
// or nil if the book has no entry.
func (r *Runner) Addr(id string) *net.UDPAddr {
	r.bookMu.RLock()
	defer r.bookMu.RUnlock()
	return r.book[id]
}

// LocalIDs returns the IDs of the nodes hosted by this runner, sorted.
func (r *Runner) LocalIDs() []string {
	out := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Bytes returns the total UDP payload bytes sent.
func (r *Runner) Bytes() int64 { return r.sentB.Load() }

// Messages returns the number of datagrams sent.
func (r *Runner) Messages() int64 { return r.sentM.Load() }

// Activity returns a counter that bumps every time a node processes a
// datagram or an injection. Control planes compare successive readings
// to detect idleness across processes.
func (r *Runner) Activity() int64 { return r.activity.Load() }

// Stats snapshots the runner's traffic counters.
func (r *Runner) Stats() Stats {
	return Stats{
		SentBytes:    r.sentB.Load(),
		SentMessages: r.sentM.Load(),
		RecvBytes:    r.recvB.Load(),
		RecvMessages: r.recvM.Load(),
		Dropped:      r.dropped.Load(),
	}
}

// Start launches the receive loops and seeds every local node with its
// home base facts.
func (r *Runner) Start() {
	for _, nn := range r.nodes {
		r.wg.Add(1)
		go r.receiveLoop(nn)
	}
	r.Seed()
}

// Seed pushes each local node's home base facts and drains. Calling it
// again re-advertises the facts — the soft-state refresh story, and the
// recovery path a control plane uses when datagrams were lost. Seeding
// counts as activity, so an in-progress recovery holds off quiescence
// detection.
func (r *Runner) Seed() {
	for _, nn := range r.nodes {
		nn.mu.Lock()
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		for _, f := range engine.HomeFacts(r.prog, nn.id) {
			nn.node.Push(engine.Insert(f))
		}
		outs := nn.node.Drain()
		nn.mu.Unlock()
		r.activity.Add(1)
		r.dispatch(nn, outs)
	}
}

func (r *Runner) receiveLoop(nn *netNode) {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		// A short read deadline lets the loop notice shutdown.
		nn.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := nn.conn.ReadFromUDP(buf)
		select {
		case <-r.stop:
			return
		default:
		}
		if err != nil {
			continue // deadline or transient error; keep serving
		}
		// Decode under the node lock: the interner is node state, and the
		// copy-on-decode invariant (decoded tuples never alias buf) is
		// what lets this loop reuse one read buffer across datagrams.
		nn.mu.Lock()
		deltas, err := engine.DecodeMessageIn(buf[:n], nn.node.Interner())
		if err != nil {
			nn.mu.Unlock()
			continue // corrupt datagram: drop, like any UDP protocol
		}
		// Count only decodable datagrams: the receive ledger must mirror
		// the send ledger (which counts engine messages), so a stray or
		// corrupt datagram cannot unbalance cross-process quiescence
		// accounting forever.
		r.recvB.Add(int64(n))
		r.recvM.Add(1)
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		for _, d := range deltas {
			nn.node.Push(d)
		}
		outs := nn.node.Drain()
		nn.mu.Unlock()
		r.activity.Add(1)
		r.dispatch(nn, outs)
	}
}

// Inject delivers a delta to a local node from outside (e.g. a link
// update).
func (r *Runner) Inject(id string, d engine.Delta) error {
	nn, ok := r.nodes[id]
	if !ok {
		return fmt.Errorf("netrun: unknown node %q", id)
	}
	nn.mu.Lock()
	nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
	nn.node.Push(d)
	outs := nn.node.Drain()
	nn.mu.Unlock()
	r.activity.Add(1)
	r.dispatch(nn, outs)
	return nil
}

// dispatchMaxPayload caps a batched datagram's estimated payload so it
// stays well under the 64 KiB UDP limit (and the receive buffer).
const dispatchMaxPayload = 32 << 10

// dispatch batches one drain's outbound deltas per destination — one
// datagram carries every tuple bound for the same peer, mirroring the
// simulator's per-pump batching — chunked so no datagram exceeds
// dispatchMaxPayload. Destinations absent from the book count as
// dropped.
func (r *Runner) dispatch(nn *netNode, outs []engine.OutDelta) {
	byDst := map[string][]engine.Delta{}
	var order []string
	r.bookMu.RLock()
	for _, o := range outs {
		if _, ok := r.book[o.Dst]; !ok {
			r.dropped.Add(1)
			continue
		}
		if _, ok := byDst[o.Dst]; !ok {
			order = append(order, o.Dst)
		}
		byDst[o.Dst] = append(byDst[o.Dst], o.Delta)
	}
	addrs := make([]*net.UDPAddr, len(order))
	for i, dstID := range order {
		addrs[i] = r.book[dstID]
	}
	r.bookMu.RUnlock()
	for i, dstID := range order {
		dst := addrs[i]
		deltas := byDst[dstID]
		for len(deltas) > 0 {
			n, size := 0, 0
			for n < len(deltas) {
				size += 1 + val.EncodedSize(deltas[n].Tuple)
				if n > 0 && size > dispatchMaxPayload {
					break
				}
				n++
			}
			payload := engine.EncodeDeltas(deltas[:n])
			deltas = deltas[n:]
			if _, err := nn.conn.WriteToUDP(payload, dst); err == nil {
				r.sentB.Add(int64(len(payload)))
				r.sentM.Add(1)
			}
		}
	}
}

// WaitQuiescent blocks until no local node has processed a datagram for
// idle, or until timeout. It reports whether the runner went idle. In a
// sharded deployment this only observes the local slice; cross-process
// quiescence is the coordinator's job (internal/shard).
func (r *Runner) WaitQuiescent(idle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	last := r.activity.Load()
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(idle / 4)
		cur := r.activity.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= idle {
			return true
		}
	}
	return false
}

// Tuples gathers a predicate across the local nodes (snapshot under
// each node's lock).
func (r *Runner) Tuples(pred string) []string {
	var out []string
	for _, nn := range r.nodes {
		nn.mu.Lock()
		for _, t := range nn.node.Tuples(pred) {
			out = append(out, t.Key())
		}
		nn.mu.Unlock()
	}
	return out
}

// TupleValues gathers a predicate's tuples across the local nodes as
// values (copies are not taken: callers must treat them as immutable,
// per the engine's aliasing rules).
func (r *Runner) TupleValues(pred string) []val.Tuple {
	var out []val.Tuple
	for _, nn := range r.nodes {
		nn.mu.Lock()
		out = append(out, nn.node.Tuples(pred)...)
		nn.mu.Unlock()
	}
	return out
}

// NodeTuples returns one local node's tuples for a predicate, as keys.
func (r *Runner) NodeTuples(id, pred string) []string {
	nn, ok := r.nodes[id]
	if !ok {
		return nil
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for _, t := range nn.node.Tuples(pred) {
		out = append(out, t.Key())
	}
	return out
}

// Close shuts down all sockets and waits for the receive loops.
func (r *Runner) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	for _, nn := range r.nodes {
		if nn.conn != nil {
			nn.conn.Close()
		}
	}
	r.wg.Wait()
}
