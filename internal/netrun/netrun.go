// Package netrun executes an NDlog deployment over real UDP sockets
// (standard library net only). It is the bridge from the simulated
// evaluation environment to an actual networked one: every NDlog node
// gets its own socket and goroutine, derived tuples travel as UDP
// datagrams encoded exactly like the simulator's messages, and
// quiescence is detected by a cluster-wide idle timeout (a real network
// has no global event queue to observe).
//
// A Runner hosts a set of *local* nodes, but its address book may map
// further node IDs to sockets owned by other runners — in another
// goroutine or another OS process entirely (see internal/shard for the
// multi-process deployment built on this). Tuples bound for a node the
// book does not know are counted as dropped, exactly like a datagram
// with no route. The local set is elastic: AddNode and RemoveNode
// adopt and release nodes on a live socket set, and ExportNode /
// ImportNode move a node's engine state for migration.
//
// Every data datagram carries the runner's membership epoch
// (SetEpoch): a frame from a different epoch is fenced — counted,
// dropped, never applied — which is what makes a live re-partition
// safe against stragglers from the previous configuration.
//
// Ownership: a Runner owns its engine nodes and their sockets. Engine
// nodes are single-threaded, so every Push/Drain/Tuples access happens
// under the per-node mutex; the receive loops rely on the engine's
// copy-on-decode invariant (decoded tuples never alias the read buffer)
// to reuse one buffer per loop. The address book and the node set are
// guarded separately so remote entries and live adoptions can land
// while the loops are running.
//
// The default runner binds loopback addresses, so tests exercise
// genuine socket I/O without leaving the machine. Message loss and
// reordering are possible exactly as with real UDP; the engine's PSN
// evaluation and soft-state options behave as they would in deployment.
package netrun

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndlog/internal/ast"
	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/val"
)

// Config tunes a runner's transport and persistence topology beyond
// the per-node engine options. The zero value reproduces the classic
// layout: one socket and one receive goroutine per node, one WAL per
// node.
type Config struct {
	// BindHost is the host ephemeral node sockets bind when a node's
	// manifest address is "" — loopback by default, a LAN interface for
	// multi-machine runs.
	BindHost string
	// SharedSockets replaces the socket-per-node receive path with a
	// small fixed socket set drained by a demux pool bounded by
	// Options.Workers(): a runner hosting hundreds of nodes runs O(pool)
	// receive goroutines instead of O(nodes), and datagram bursts at one
	// node coalesce into single drains. Nodes cannot pin per-node bind
	// addresses in this mode (the sockets are shared).
	SharedSockets bool
	// GroupCommit folds every co-resident node's WAL into one shared
	// log (durable.Group): a drain that touches N local nodes costs one
	// fsync instead of N. Takes effect when EnableDurability is called.
	GroupCommit bool
}

// Runner drives the local slice of an NDlog deployment over UDP.
type Runner struct {
	prog *ast.Program
	opts engine.Options

	// bindHost is the host ephemeral node sockets bind when a node's
	// manifest address is "" — loopback by default, a LAN interface for
	// multi-machine runs (manifest Host knob).
	bindHost string

	// sharedMode + sharedConns implement Config.SharedSockets: every
	// local node maps (by stable hash) onto one of these runner-owned
	// sockets, drained by demuxLoop workers instead of per-node loops.
	sharedMode  bool
	sharedConns []*net.UDPConn

	// groupCommit selects the shared-log layout when durability is
	// enabled; durGroup is the shard-wide log all local stores share.
	groupCommit bool
	durGroup    *durable.Group

	// durDir/durOpts configure per-node durable stores (EnableDurability);
	// "" means in-memory only.
	durDir  string
	durOpts durable.Options

	// nodesMu guards the local node set and the started flag: nodes can
	// be adopted and released while the receive loops are live.
	nodesMu sync.RWMutex
	nodes   map[string]*netNode
	started bool

	// book maps NDlog addresses — local and remote — to UDP addresses.
	// bookMu guards it: remote entries arrive from a control plane while
	// receive loops are dispatching.
	bookMu sync.RWMutex
	book   map[string]*net.UDPAddr

	// epoch is the membership epoch stamped on every outbound data
	// datagram; inbound frames from any other epoch are fenced.
	epoch atomic.Uint64

	// lossBudget > 0 makes dispatch drop that many outbound datagrams
	// (still counted as sent) — deterministic loss injection for testing
	// the control plane's ledger fallback.
	lossBudget atomic.Int64

	activity atomic.Int64 // bumps on every processed datagram, injection, or seed
	sentB    atomic.Int64
	sentM    atomic.Int64
	recvB    atomic.Int64
	recvM    atomic.Int64
	dropped  atomic.Int64 // deltas bound for nodes absent from the book
	fenced   atomic.Int64 // datagrams dropped for carrying a stale epoch

	// sentTo counts datagrams per destination node ID — the
	// per-destination half of the sent==recv ledger, which lets a
	// control plane attribute loss to the shard that failed to receive.
	sentToMu sync.Mutex
	sentTo   map[string]int64

	wg   sync.WaitGroup
	stop chan struct{}
}

// Stats is a snapshot of a runner's traffic counters, exported to the
// shard control plane and the metrics harness.
type Stats struct {
	SentBytes    int64 // UDP payload bytes sent
	SentMessages int64 // datagrams sent
	RecvBytes    int64 // UDP payload bytes received
	RecvMessages int64 // datagrams received
	Dropped      int64 // outbound deltas with no address-book entry
	Fenced       int64 // inbound datagrams fenced for a stale epoch
}

type netNode struct {
	id   string
	node *engine.Node
	conn *net.UDPConn
	// ownsConn marks a per-node socket, closed when the node drops; in
	// shared-socket mode conn aliases one of the runner's shared sockets
	// (used for sends and the address book) and stays the runner's.
	ownsConn bool
	mu       sync.Mutex // guards node (engine nodes are single-threaded)
	// closed marks a released node: its receive loop exits on the next
	// read error instead of treating the closed socket as transient.
	closed atomic.Bool

	// scratch is the node's reusable decode buffer: receive paths decode
	// each datagram into it (engine.DecodeMessageInto) instead of
	// allocating a fresh batch per message. Guarded by mu; safe to reuse
	// because decoded tuples never alias either the read buffer or this
	// slice once pushed.
	scratch []engine.Delta

	// inMu/busy/backlog coalesce shared-socket bursts: while one demux
	// worker owns the node's drain (busy), frames arriving for the same
	// node queue on backlog, and the owner folds the whole pile into one
	// drain + one commit + one dispatch. inMu is ordered strictly before
	// mu and is never held across engine work.
	inMu    sync.Mutex
	busy    bool
	backlog []inFrame

	// dur is the node's durable store (nil without durability) — a
	// private WAL, or its member view of the shard-wide group log;
	// pending collects the deltas the engine journal tap emits during a
	// drain, committed as one WAL record before the drain's outbound
	// datagrams are dispatched. Both are guarded by mu.
	dur     nodeStore
	pending []engine.Delta
}

// inFrame is one backlogged datagram: its payload (copied out of the
// demux worker's read buffer) and its wire size for the receive ledger.
type inFrame struct {
	payload []byte
	wire    int64
}

// New creates a runner hosting every id locally. Each node binds an
// ephemeral UDP port on localhost.
func New(prog *ast.Program, ids []string, opts engine.Options) (*Runner, error) {
	local := make(map[string]string, len(ids))
	for _, id := range ids {
		local[id] = ""
	}
	return NewSharded(prog, local, opts)
}

// NewSharded creates a runner hosting only the nodes in local, mapping
// each to its bind address ("" binds an ephemeral localhost port; a
// "host:port" string pins the socket, for static multi-machine
// manifests). Nodes of the program that live elsewhere are reached
// through remote book entries installed with SetRemote.
func NewSharded(prog *ast.Program, local map[string]string, opts engine.Options) (*Runner, error) {
	return NewShardedHost(prog, local, "", opts)
}

// NewShardedHost is NewSharded with a default bind host: nodes whose
// manifest address is "" bind an ephemeral port on bindHost instead of
// loopback, so a shard can serve a LAN interface without pinning every
// node's port. "" keeps the loopback default.
func NewShardedHost(prog *ast.Program, local map[string]string, bindHost string, opts engine.Options) (*Runner, error) {
	return NewConfigured(prog, local, Config{BindHost: bindHost}, opts)
}

// NewConfigured is the fully-general constructor: NewSharded plus the
// transport/persistence topology knobs of Config.
func NewConfigured(prog *ast.Program, local map[string]string, cfg Config, opts engine.Options) (*Runner, error) {
	r := &Runner{
		prog:        prog,
		opts:        opts,
		bindHost:    cfg.BindHost,
		sharedMode:  cfg.SharedSockets,
		groupCommit: cfg.GroupCommit,
		nodes:       map[string]*netNode{},
		book:        map[string]*net.UDPAddr{},
		stop:        make(chan struct{}),
	}
	if r.sharedMode {
		if err := r.bindShared(); err != nil {
			r.Close()
			return nil, err
		}
	}
	for id, bind := range local {
		if _, err := r.bindNode(id, bind); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// bindShared opens the runner's shared socket set: one socket for a
// sequential runner, two when the demux pool has real parallelism (so
// readers don't all contend one kernel queue), each with an enlarged
// receive buffer because a burst across hundreds of nodes now funnels
// into these few queues.
func (r *Runner) bindShared() error {
	n := 1
	if r.opts.Workers() > 1 {
		n = 2
	}
	for i := 0; i < n; i++ {
		laddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
		if r.bindHost != "" {
			var err error
			laddr, err = net.ResolveUDPAddr("udp", net.JoinHostPort(r.bindHost, "0"))
			if err != nil {
				return fmt.Errorf("netrun: shared bind host: %w", err)
			}
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return fmt.Errorf("netrun: shared socket: %w", err)
		}
		conn.SetReadBuffer(1 << 20) // best-effort; default is sized per-node
		r.sharedConns = append(r.sharedConns, conn)
	}
	return nil
}

// sharedIndex stably maps a node id onto the shared socket set (FNV-1a).
func sharedIndex(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % uint32(n))
}

// bindNode creates the engine node and socket for one local node and
// installs both. In shared-socket mode no socket is bound: the node is
// assigned one of the runner's shared sockets for sends and its book
// entry. Callers hold no locks (construction) or nodesMu (AddNode).
func (r *Runner) bindNode(id, bind string) (*netNode, error) {
	n, err := engine.NewNode(id, r.prog, r.opts)
	if err != nil {
		return nil, err
	}
	var nn *netNode
	if r.sharedMode {
		if bind != "" {
			return nil, fmt.Errorf("netrun: shared sockets: node %s cannot pin bind address %q", id, bind)
		}
		conn := r.sharedConns[sharedIndex(id, len(r.sharedConns))]
		nn = &netNode{id: id, node: n, conn: conn}
	} else {
		laddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
		if bind == "" && r.bindHost != "" {
			bind = net.JoinHostPort(r.bindHost, "0")
		}
		if bind != "" {
			laddr, err = net.ResolveUDPAddr("udp", bind)
			if err != nil {
				return nil, fmt.Errorf("netrun: bind address for %s: %w", id, err)
			}
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, fmt.Errorf("netrun: bind %s: %w", id, err)
		}
		nn = &netNode{id: id, node: n, conn: conn, ownsConn: true}
	}
	r.nodes[id] = nn
	r.bookMu.Lock()
	r.book[id] = nn.conn.LocalAddr().(*net.UDPAddr)
	r.bookMu.Unlock()
	return nn, nil
}

// AddNode adopts a node into the live runner: it binds a socket, adds
// the node to the local set and the address book, and — if the runner
// has started — launches its receive loop immediately. The node starts
// empty; seed it through ImportNode and/or Seed.
func (r *Runner) AddNode(id, bind string) error {
	r.nodesMu.Lock()
	defer r.nodesMu.Unlock()
	if _, ok := r.nodes[id]; ok {
		return fmt.Errorf("netrun: node %q already hosted", id)
	}
	nn, err := r.bindNode(id, bind)
	if err != nil {
		return err
	}
	if r.durDir != "" {
		// An adopted node starts from the state its bundle will import,
		// not from whatever a stale directory of a past owner holds.
		if _, err := r.attachStore(nn, true); err != nil {
			r.dropNodeLocked(nn)
			return err
		}
	}
	if r.started && !r.sharedMode {
		r.wg.Add(1)
		go r.receiveLoop(nn)
	}
	return nil
}

// RemoveNode releases a node from the live runner: its socket closes
// (the receive loop exits), and the node leaves the local set and the
// address book. Datagrams already bound for the node are dropped by the
// closed socket — the stale-epoch fence covers the ones that chase the
// node to its new home. Export the node's state first (ExportNode) if
// it is migrating.
func (r *Runner) RemoveNode(id string) error {
	r.nodesMu.Lock()
	defer r.nodesMu.Unlock()
	nn, ok := r.nodes[id]
	if !ok {
		return fmt.Errorf("netrun: node %q not hosted", id)
	}
	r.dropNodeLocked(nn)
	return nil
}

// dropNodeLocked removes a node from the live sets and destroys its
// durable store: the node is leaving this runner (released to another
// shard, or a failed adoption), so a local on-disk copy of its state
// must not resurrect on the next restart. Caller holds nodesMu.
func (r *Runner) dropNodeLocked(nn *netNode) {
	nn.closed.Store(true)
	if nn.ownsConn {
		nn.conn.Close()
	}
	delete(r.nodes, nn.id)
	r.bookMu.Lock()
	delete(r.book, nn.id)
	r.bookMu.Unlock()
	nn.mu.Lock()
	if nn.dur != nil {
		nn.node.SetJournal(nil)
		nn.dur.Destroy()
		nn.dur = nil
	}
	nn.mu.Unlock()
}

// ExportNode snapshots a local node's migratable state (engine
// EncodeState payload): base facts with counts plus soft state with
// remaining TTLs. The engine view only — traffic counters stay behind.
func (r *Runner) ExportNode(id string) ([]byte, error) {
	nn, ok := r.node(id)
	if !ok {
		return nil, fmt.Errorf("netrun: node %q not hosted", id)
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
	return engine.EncodeState(nn.node.Export()), nil
}

// ImportNode loads an exported state into a local (freshly adopted)
// node, re-derives the local closure (engine Rederive — the DRed
// sweep), clamps the imported soft state back to its exported
// remaining lifetimes, and dispatches the resulting advertisements to
// the fleet. The blob is either a bare engine state (EncodeState) or a
// durable migration bundle (snapshot + WAL tail, durable.EncodeBundle)
// — the magic byte decides.
func (r *Runner) ImportNode(id string, state []byte) error {
	nn, ok := r.node(id)
	if !ok {
		return fmt.Errorf("netrun: node %q not hosted", id)
	}
	var (
		snap    []byte
		records [][]byte
		err     error
	)
	if durable.IsBundle(state) {
		if snap, records, err = durable.DecodeBundle(state); err != nil {
			return err
		}
	} else {
		snap = state
	}
	var st *engine.NodeState
	if len(snap) > 0 {
		if st, err = engine.DecodeState(snap); err != nil {
			return err
		}
	}
	nn.mu.Lock()
	now := float64(time.Now().UnixNano()) / 1e9
	nn.node.SetNow(now)
	var outs []engine.OutDelta
	if st != nil {
		nn.node.ImportState(st)
		outs = nn.node.Drain()
		// Clamp before replaying the WAL tail: a replayed soft-state
		// refresh then extends lifetimes legitimately, instead of being
		// clamped back to what the snapshot remembered.
		nn.node.ApplyImportedTTLs(st)
	}
	for _, rec := range records {
		recNow, deltas, derr := decodeWALRecord(rec, nn.node.Interner())
		if derr != nil {
			nn.mu.Unlock()
			return derr
		}
		// Replay under the record's virtual clock so soft-state TTLs land
		// where the source node had them, clamped so a skewed source
		// cannot push this node's clock forward.
		if recNow < now {
			nn.node.SetNow(recNow)
		}
		for _, d := range deltas {
			nn.node.Push(d)
		}
		outs = append(outs, nn.node.Drain()...)
	}
	nn.node.SetNow(now)
	nn.node.Rederive()
	outs = append(outs, nn.node.Drain()...)
	r.commitDurable(nn)
	nn.mu.Unlock()
	r.activity.Add(1)
	r.dispatch(nn, outs)
	return nil
}

// RederiveFor rebuilds the derived state flowing into freshly migrated
// nodes: every local node (except the migrated ones, whose own import
// drain covers their outbound) sweeps its stored state and re-sends the
// derivations homed at a migrated node — one datagram batch per
// destination, reconstructing exact derivation counts there. Hard-state
// duplicates do not re-trigger strands, so this sweep is the only way a
// moved node's inbound views (and the localizer's shipped copies) come
// back.
func (r *Runner) RederiveFor(migrated []string) {
	dsts := make(map[string]bool, len(migrated))
	for _, id := range migrated {
		dsts[id] = true
	}
	r.drainDispatch(func(nn *netNode) []engine.OutDelta {
		if dsts[nn.id] {
			return nil
		}
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		outs := nn.node.RederiveFor(dsts)
		if len(outs) > 0 {
			r.activity.Add(1)
		}
		return outs
	})
}

// SetEpoch installs the membership epoch stamped on outbound data
// datagrams; inbound frames from any other epoch are fenced from then
// on. Safe while the loops are live — a re-partition installs the new
// epoch together with the new address book.
func (r *Runner) SetEpoch(e uint64) { r.epoch.Store(e) }

// Epoch returns the current membership epoch.
func (r *Runner) Epoch() uint64 { return r.epoch.Load() }

// InjectLoss makes the runner drop its next n outbound data datagrams
// while still counting them as sent — deterministic loss injection for
// exercising the control plane's unbalanced-ledger fallback.
func (r *Runner) InjectLoss(n int64) { r.lossBudget.Add(n) }

// node looks up a local node under the set lock.
func (r *Runner) node(id string) (*netNode, bool) {
	r.nodesMu.RLock()
	defer r.nodesMu.RUnlock()
	nn, ok := r.nodes[id]
	return nn, ok
}

// localNodes snapshots the local node set.
func (r *Runner) localNodes() []*netNode {
	r.nodesMu.RLock()
	defer r.nodesMu.RUnlock()
	out := make([]*netNode, 0, len(r.nodes))
	for _, nn := range r.nodes {
		out = append(out, nn)
	}
	return out
}

// forEachLocal applies fn to every local node, fanning the walk out
// across a bounded worker pool when Options.Parallelism resolves above
// 1. Nodes are independent here: each has its own mutex, the address
// book has its own lock, every traffic counter is atomic, and UDPConn
// writes are safe concurrently — so fn bodies that lock the node,
// drain, commit the WAL, and dispatch preserve WAL-before-wire per
// node exactly as the sequential walk did.
func (r *Runner) forEachLocal(fn func(*netNode)) {
	nns := r.localNodes()
	workers := r.opts.Workers()
	if workers > len(nns) {
		workers = len(nns)
	}
	if workers <= 1 {
		for _, nn := range nns {
			fn(nn)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(nns) {
					return
				}
				fn(nns[j])
			}
		}()
	}
	wg.Wait()
}

// SetRemote installs (or replaces) an address-book entry for a node
// hosted outside this runner. Safe to call while the receive loops are
// live; in-flight dispatches see either the old or the new address.
func (r *Runner) SetRemote(id, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("netrun: remote address for %s: %w", id, err)
	}
	r.bookMu.Lock()
	r.book[id] = ua
	r.bookMu.Unlock()
	return nil
}

// Addr returns the UDP address serving an NDlog node (local or remote),
// or nil if the book has no entry.
func (r *Runner) Addr(id string) *net.UDPAddr {
	r.bookMu.RLock()
	defer r.bookMu.RUnlock()
	return r.book[id]
}

// LocalIDs returns the IDs of the nodes hosted by this runner, sorted.
func (r *Runner) LocalIDs() []string {
	r.nodesMu.RLock()
	out := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	r.nodesMu.RUnlock()
	sort.Strings(out)
	return out
}

// Bytes returns the total UDP payload bytes sent.
func (r *Runner) Bytes() int64 { return r.sentB.Load() }

// Messages returns the number of datagrams sent.
func (r *Runner) Messages() int64 { return r.sentM.Load() }

// Activity returns a counter that bumps every time a node processes a
// datagram or an injection. Control planes compare successive readings
// to detect idleness across processes.
func (r *Runner) Activity() int64 { return r.activity.Load() }

// Stats snapshots the runner's traffic counters.
func (r *Runner) Stats() Stats {
	return Stats{
		SentBytes:    r.sentB.Load(),
		SentMessages: r.sentM.Load(),
		RecvBytes:    r.recvB.Load(),
		RecvMessages: r.recvM.Load(),
		Dropped:      r.dropped.Load(),
		Fenced:       r.fenced.Load(),
	}
}

// Start launches the receive path — per-node loops, or the bounded
// demux pool in shared-socket mode — and seeds every local node with
// its home base facts.
func (r *Runner) Start() {
	r.nodesMu.Lock()
	r.started = true
	if r.sharedMode {
		// O(pool) receive goroutines regardless of how many nodes this
		// runner hosts; workers beyond the socket count share sockets
		// (the kernel delivers each datagram to exactly one reader).
		workers := r.opts.Workers()
		if workers < len(r.sharedConns) {
			workers = len(r.sharedConns)
		}
		for i := 0; i < workers; i++ {
			conn := r.sharedConns[i%len(r.sharedConns)]
			r.wg.Add(1)
			go r.demuxLoop(conn)
		}
	} else {
		for _, nn := range r.nodes {
			r.wg.Add(1)
			go r.receiveLoop(nn)
		}
	}
	r.nodesMu.Unlock()
	r.Seed()
}

// Seed pushes each local node's home base facts and drains. Calling it
// again re-advertises the facts — the soft-state refresh story, and the
// recovery path a control plane uses when datagrams were lost. Seeding
// counts as activity, so an in-progress recovery holds off quiescence
// detection. The per-node seed drains run on the runner's worker pool
// (Options.Parallelism) — each node still drains under its own lock.
func (r *Runner) Seed() {
	r.drainDispatch(func(nn *netNode) []engine.OutDelta {
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		for _, f := range engine.HomeFacts(r.prog, nn.id) {
			nn.node.Push(engine.Insert(f))
		}
		r.activity.Add(1)
		return nn.node.Drain()
	})
}

// drainDispatch runs drain (called with the node lock held) over every
// local node on the worker pool and dispatches each drain's output.
// Under group commit the walk is phased: every node drains and appends
// its WAL record first, ONE shared-log commit makes the whole sweep
// durable, and only then do any datagrams leave — N nodes cost one
// fsync while WAL-before-wire still holds for every one of them.
// Without a group the classic per-node commit happens inline.
func (r *Runner) drainDispatch(drain func(*netNode) []engine.OutDelta) {
	if r.durGroup == nil {
		r.forEachLocal(func(nn *netNode) {
			nn.mu.Lock()
			outs := drain(nn)
			r.commitDurable(nn)
			nn.mu.Unlock()
			if len(outs) > 0 {
				r.dispatch(nn, outs)
			}
		})
		return
	}
	type drained struct {
		nn   *netNode
		outs []engine.OutDelta
	}
	var mu sync.Mutex
	var all []drained
	r.forEachLocal(func(nn *netNode) {
		nn.mu.Lock()
		outs := drain(nn)
		r.appendDurable(nn)
		nn.mu.Unlock()
		if len(outs) == 0 {
			return
		}
		mu.Lock()
		all = append(all, drained{nn: nn, outs: outs})
		mu.Unlock()
	})
	r.durGroup.Commit()
	for _, d := range all {
		r.dispatch(d.nn, d.outs)
	}
}

// Envelope magics. Every data datagram opens with one; the bytes are
// disjoint from the engine's message kinds and the shard control-plane
// kinds, so a frame delivered to the wrong socket is rejected as
// corrupt rather than misread.
//
//	0x7E epoch(uvarint) payload                          — legacy form
//	0x7D epoch(uvarint) idlen(uvarint) id payload        — addressed form
//
// The addressed form carries its destination node id so a shared socket
// can demultiplex; dispatch always emits it, and both receive paths
// accept both (the per-node path ignores the id — its socket already
// identifies the node).
const (
	envMagic    = 0x7E
	envMagicDst = 0x7D
)

// parseEnvelope splits one inbound frame: epoch, destination id ("" for
// the legacy form), and payload. ok is false for anything that is not a
// data envelope.
func parseEnvelope(b []byte) (epoch uint64, id []byte, payload []byte, ok bool) {
	if len(b) < 2 {
		return 0, nil, nil, false
	}
	magic := b[0]
	b = b[1:]
	e, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, nil, false
	}
	b = b[sz:]
	switch magic {
	case envMagic:
		return e, nil, b, true
	case envMagicDst:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > uint64(len(b)-sz) {
			return 0, nil, nil, false
		}
		return e, b[sz : sz+int(n)], b[sz+int(n):], true
	}
	return 0, nil, nil, false
}

func (r *Runner) receiveLoop(nn *netNode) {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		// A short read deadline lets the loop notice shutdown.
		nn.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := nn.conn.ReadFromUDP(buf)
		select {
		case <-r.stop:
			return
		default:
		}
		if err != nil {
			if nn.closed.Load() {
				return // node released: its socket is gone for good
			}
			continue // deadline or transient error; keep serving
		}
		epoch, _, payload, ok := parseEnvelope(buf[:n])
		if !ok {
			continue // not a data envelope: drop, like any UDP protocol
		}
		if epoch != r.epoch.Load() {
			// Epoch fence: a straggler from another membership view. It
			// arrived, so the sent==recv ledger counts it (nothing is in
			// flight), but its tuples are dropped — the rebalance protocol
			// reseeds on resume, which re-derives anything fenced here.
			r.fenced.Add(1)
			r.recvB.Add(int64(n))
			r.recvM.Add(1)
			continue
		}
		r.processFrames(nn, []inFrame{{payload: payload, wire: int64(n)}})
	}
}

// processFrames decodes a batch of same-node frames and runs ONE drain
// over their combined deltas: one engine round-trip, one WAL commit,
// one dispatch — regardless of how many datagrams the batch coalesced.
// The payloads may alias the caller's read buffer (decode copies).
func (r *Runner) processFrames(nn *netNode, frames []inFrame) {
	// Decode under the node lock: the interner is node state, and the
	// copy-on-decode invariant (decoded tuples never alias the buffer)
	// is what lets receive paths reuse read buffers and this scratch.
	nn.mu.Lock()
	deltas := nn.scratch[:0]
	for _, f := range frames {
		next, err := engine.DecodeMessageInto(f.payload, nn.node.Interner(), deltas)
		if err != nil {
			continue // corrupt datagram: drop, like any UDP protocol
		}
		deltas = next
		// Count only decodable datagrams: the receive ledger must mirror
		// the send ledger (which counts engine messages), so a stray or
		// corrupt datagram cannot unbalance cross-process quiescence
		// accounting forever.
		r.recvB.Add(f.wire)
		r.recvM.Add(1)
	}
	nn.scratch = deltas[:0]
	if len(deltas) == 0 {
		nn.mu.Unlock()
		return
	}
	nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
	for _, d := range deltas {
		nn.node.Push(d)
	}
	outs := nn.node.Drain()
	// WAL before wire: the drain's effects are durable before any
	// derived datagram leaves, so a crash right here cannot have
	// advertised state it will not remember.
	r.commitDurable(nn)
	nn.mu.Unlock()
	r.activity.Add(1)
	r.dispatch(nn, outs)
}

// demuxLoop is one shared-socket receive worker: it reads frames for
// any local node, routes them by the envelope's destination id, and
// coalesces per-node bursts through deliver.
func (r *Runner) demuxLoop(conn *net.UDPConn) {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := conn.ReadFromUDP(buf)
		select {
		case <-r.stop:
			return
		default:
		}
		if err != nil {
			continue // deadline or transient error; sockets live with the runner
		}
		epoch, id, payload, ok := parseEnvelope(buf[:n])
		if !ok || id == nil {
			continue // legacy frames cannot be routed on a shared socket
		}
		if epoch != r.epoch.Load() {
			r.fenced.Add(1)
			r.recvB.Add(int64(n))
			r.recvM.Add(1)
			continue
		}
		nn, ok := r.node(string(id))
		if !ok {
			continue // not hosted here (stale route): dropped like lost UDP
		}
		r.deliver(nn, payload, int64(n))
	}
}

// deliver hands one frame to its node, coalescing concurrent arrivals:
// the first worker to reach an idle node becomes its drain owner and
// processes in place; frames landing while it works pile onto the
// backlog, and the owner folds each pile into a single batched drain
// before releasing the node. A k-datagram burst costs ~1 drain, 1
// commit, and 1 dispatch instead of k.
func (r *Runner) deliver(nn *netNode, payload []byte, wire int64) {
	nn.inMu.Lock()
	if nn.busy {
		// The owner's read buffer isn't ours to retain: copy the payload.
		nn.backlog = append(nn.backlog, inFrame{payload: append([]byte(nil), payload...), wire: wire})
		nn.inMu.Unlock()
		return
	}
	nn.busy = true
	nn.inMu.Unlock()
	r.processFrames(nn, []inFrame{{payload: payload, wire: wire}})
	for {
		nn.inMu.Lock()
		if len(nn.backlog) == 0 {
			nn.busy = false
			nn.inMu.Unlock()
			return
		}
		batch := nn.backlog
		nn.backlog = nil
		nn.inMu.Unlock()
		r.processFrames(nn, batch)
	}
}

// Inject delivers a delta to a local node from outside (e.g. a link
// update).
func (r *Runner) Inject(id string, d engine.Delta) error {
	nn, ok := r.node(id)
	if !ok {
		return fmt.Errorf("netrun: unknown node %q", id)
	}
	nn.mu.Lock()
	nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
	nn.node.Push(d)
	outs := nn.node.Drain()
	r.commitDurable(nn)
	nn.mu.Unlock()
	r.activity.Add(1)
	r.dispatch(nn, outs)
	return nil
}

// dispatchMaxPayload caps a batched datagram's estimated payload so it
// stays well under the 64 KiB UDP limit (and the receive buffer).
const dispatchMaxPayload = 32 << 10

// dispatch batches one drain's outbound deltas per destination — one
// datagram carries every tuple bound for the same peer, mirroring the
// simulator's per-pump batching — chunked so no datagram exceeds
// dispatchMaxPayload. Destinations absent from the book count as
// dropped.
func (r *Runner) dispatch(nn *netNode, outs []engine.OutDelta) {
	byDst := map[string][]engine.Delta{}
	var order []string
	r.bookMu.RLock()
	for _, o := range outs {
		if _, ok := r.book[o.Dst]; !ok {
			r.dropped.Add(1)
			continue
		}
		if _, ok := byDst[o.Dst]; !ok {
			order = append(order, o.Dst)
		}
		byDst[o.Dst] = append(byDst[o.Dst], o.Delta)
	}
	addrs := make([]*net.UDPAddr, len(order))
	for i, dstID := range order {
		addrs[i] = r.book[dstID]
	}
	r.bookMu.RUnlock()
	epoch := r.epoch.Load()
	for i, dstID := range order {
		dst := addrs[i]
		deltas := byDst[dstID]
		for len(deltas) > 0 {
			n, size := 0, 0
			for n < len(deltas) {
				size += 1 + val.EncodedSize(deltas[n].Tuple)
				if n > 0 && size > dispatchMaxPayload {
					break
				}
				n++
			}
			// Envelope: epoch tag and destination id first, engine payload
			// appended in place (no second copy of the payload). The
			// addressed form lets shared-socket receivers demultiplex;
			// per-node receivers accept it too.
			frame := binary.AppendUvarint([]byte{envMagicDst}, epoch)
			frame = binary.AppendUvarint(frame, uint64(len(dstID)))
			frame = append(frame, dstID...)
			frame = engine.AppendDeltas(frame, deltas[:n])
			deltas = deltas[n:]
			if r.lossBudget.Load() > 0 && r.lossBudget.Add(-1) >= 0 {
				// Injected loss: the datagram is counted as sent (the
				// ledger must see it) but never hits the wire.
				r.countSent(dstID, int64(len(frame)))
				continue
			}
			if _, err := nn.conn.WriteToUDP(frame, dst); err == nil {
				r.countSent(dstID, int64(len(frame)))
			}
		}
	}
}

// countSent records one outbound datagram in the ledger, including the
// per-destination tally.
func (r *Runner) countSent(dstID string, bytes int64) {
	r.sentB.Add(bytes)
	r.sentM.Add(1)
	r.sentToMu.Lock()
	if r.sentTo == nil {
		r.sentTo = map[string]int64{}
	}
	r.sentTo[dstID]++
	r.sentToMu.Unlock()
}

// SentTo snapshots the per-destination datagram counts. Keys are NDlog
// node IDs; the control plane folds them onto owning shards to find
// which shard's receive ledger is short after loss.
func (r *Runner) SentTo() map[string]int64 {
	r.sentToMu.Lock()
	defer r.sentToMu.Unlock()
	out := make(map[string]int64, len(r.sentTo))
	for id, n := range r.sentTo {
		out[id] = n
	}
	return out
}

// WaitQuiescent blocks until no local node has processed a datagram for
// idle, or until timeout. It reports whether the runner went idle. In a
// sharded deployment this only observes the local slice; cross-process
// quiescence is the coordinator's job (internal/shard).
func (r *Runner) WaitQuiescent(idle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	last := r.activity.Load()
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(idle / 4)
		cur := r.activity.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= idle {
			return true
		}
	}
	return false
}

// Tuples gathers a predicate across the local nodes (snapshot under
// each node's lock).
func (r *Runner) Tuples(pred string) []string {
	var out []string
	for _, nn := range r.localNodes() {
		nn.mu.Lock()
		for _, t := range nn.node.Tuples(pred) {
			out = append(out, t.Key())
		}
		nn.mu.Unlock()
	}
	return out
}

// TupleValues gathers a predicate's tuples across the local nodes as
// values (copies are not taken: callers must treat them as immutable,
// per the engine's aliasing rules).
func (r *Runner) TupleValues(pred string) []val.Tuple {
	var out []val.Tuple
	for _, nn := range r.localNodes() {
		nn.mu.Lock()
		out = append(out, nn.node.Tuples(pred)...)
		nn.mu.Unlock()
	}
	return out
}

// NodeTuples returns one local node's tuples for a predicate, as keys.
func (r *Runner) NodeTuples(id, pred string) []string {
	nn, ok := r.node(id)
	if !ok {
		return nil
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for _, t := range nn.node.Tuples(pred) {
		out = append(out, t.Key())
	}
	return out
}

// Close shuts down all sockets, waits for the receive loops, and
// flushes the durable stores (a clean shutdown loses nothing even
// under the lazier sync policies).
func (r *Runner) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	for _, nn := range r.localNodes() {
		if nn.ownsConn && nn.conn != nil {
			nn.conn.Close()
		}
	}
	for _, c := range r.sharedConns {
		c.Close()
	}
	r.wg.Wait()
	for _, nn := range r.localNodes() {
		nn.mu.Lock()
		if nn.dur != nil {
			r.commitDurable(nn)
			nn.dur.Close()
			nn.dur = nil
		}
		nn.mu.Unlock()
	}
	if r.durGroup != nil {
		r.durGroup.Close()
		r.durGroup = nil
	}
}
