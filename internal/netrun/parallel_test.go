package netrun

import (
	"sync"
	"testing"
	"time"

	"ndlog/internal/ast"
	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
)

// mustProg parses the shortest-path program with the Figure 2 links as
// base facts.
func mustProg(t *testing.T) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	return prog
}

// TestParallelSeed runs the Figure 2 deployment with the parallelism
// knob wide open: Seed drains every local node on a worker pool
// instead of walking them sequentially. The fixpoint must be the same.
func TestParallelSeed(t *testing.T) {
	prog := mustProg(t)
	r, err := New(prog, []string{"a", "b", "c", "d", "e"},
		engine.Options{AggSel: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("cluster did not go idle")
	}
	want := map[string]bool{
		"shortestPath(a,b,[a,c,b],2)":     true,
		"shortestPath(a,c,[a,c],1)":       true,
		"shortestPath(e,d,[e,a,c,b,d],4)": true,
	}
	check := func() int {
		got := map[string]bool{}
		for _, k := range r.Tuples("shortestPath") {
			got[k] = true
		}
		missing := 0
		for k := range want {
			if !got[k] {
				missing++
			}
		}
		return missing
	}
	for attempt := 0; attempt < 3 && check() > 0; attempt++ {
		r.Seed() // datagram loss: refresh and retry
		r.WaitQuiescent(300*time.Millisecond, 10*time.Second)
	}
	if n := check(); n > 0 {
		t.Fatalf("%d known routes missing: %v", n, r.Tuples("shortestPath"))
	}
}

// TestStatsHammer hammers the runner's observable counters — Stats,
// SentTo, Activity, Bytes, Messages, LocalIDs, Tuples — from many
// goroutines while parallel seeds, injections, and a migration-style
// rederivation sweep generate traffic. Run under -race this proves the
// recv/dropped/fenced counters and the per-destination sent ledger are
// safe to read at any moment, which is what the shard control plane
// does from its own goroutines.
func TestStatsHammer(t *testing.T) {
	prog := mustProg(t)
	r, err := New(prog, []string{"a", "b", "c", "d", "e"},
		engine.Options{AggSel: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Stats()
				if s.SentMessages < 0 || s.RecvMessages < 0 {
					t.Error("negative counter snapshot")
					return
				}
				var total int64
				for _, n := range r.SentTo() {
					total += n
				}
				if total > s.SentMessages {
					t.Errorf("per-destination tallies (%d) exceed total sent (%d)",
						total, s.SentMessages)
					return
				}
				_ = r.Activity()
				_ = r.Bytes()
				_ = r.Messages()
				_ = r.LocalIDs()
				_ = r.Tuples("shortestPath")
			}
		}()
	}
	// Writers: re-seed (parallel walk), inject link updates, and sweep
	// rederivations while the readers spin.
	for i := 0; i < 3; i++ {
		r.Seed()
		r.Inject("a", engine.Insert(programs.LinkFact("link", "a", "b", float64(2+i))))
		r.RederiveFor([]string{"d"})
	}
	r.WaitQuiescent(200*time.Millisecond, 10*time.Second)
	close(stop)
	wg.Wait()

	s := r.Stats()
	if s.SentMessages == 0 || s.RecvMessages == 0 {
		t.Errorf("expected traffic, got %+v", s)
	}
	var total int64
	for _, n := range r.SentTo() {
		total += n
	}
	if total != s.SentMessages {
		t.Errorf("quiescent ledger mismatch: per-destination %d, total %d",
			total, s.SentMessages)
	}
}
