package netrun

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
)

func buildConfigured(t *testing.T, cfg Config, opts engine.Options) *Runner {
	t.Helper()
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	local := map[string]string{}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		local[id] = ""
	}
	r, err := NewConfigured(prog, local, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSharedSocketShortestPath runs the Figure 2 fixpoint over the
// shared-socket receive path: a fixed socket set drained by the demux
// pool must reach the same answers the per-node loops do.
func TestSharedSocketShortestPath(t *testing.T) {
	r := buildConfigured(t, Config{SharedSockets: true}, engine.Options{AggSel: true, PSNBatch: 64})
	defer r.Close()
	r.Start()
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("cluster did not go idle")
	}
	want := map[string]bool{
		"shortestPath(a,b,[a,c,b],2)":     true,
		"shortestPath(a,c,[a,c],1)":       true,
		"shortestPath(e,d,[e,a,c,b,d],4)": true,
	}
	check := func() int {
		missing := 0
		got := map[string]bool{}
		for _, k := range r.Tuples("shortestPath") {
			got[k] = true
		}
		for k := range want {
			if !got[k] {
				missing++
			}
		}
		return missing
	}
	missing := check()
	for attempt := 0; missing > 0 && attempt < 3; attempt++ {
		r.Seed() // datagram loss: refresh and re-check
		r.WaitQuiescent(300*time.Millisecond, 10*time.Second)
		missing = check()
	}
	if missing > 0 {
		t.Fatalf("missing %d known answers; have %v", missing, r.Tuples("shortestPath"))
	}
	if r.Messages() == 0 {
		t.Error("no UDP traffic recorded")
	}
}

// TestSharedSocketGoroutineBound hosts 100 nodes on one shared-socket
// runner and asserts the receive path runs O(pool) goroutines, not
// O(nodes) — the scaling property the mode exists for.
func TestSharedSocketGoroutineBound(t *testing.T) {
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	local := map[string]string{}
	for i := 0; i < 100; i++ {
		local[fmt.Sprintf("n%03d", i)] = ""
	}
	before := runtime.NumGoroutine()
	r, err := NewConfigured(prog, local, Config{SharedSockets: true},
		engine.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	r.WaitQuiescent(200*time.Millisecond, 5*time.Second)
	// Let transient seed-pool workers exit before counting.
	time.Sleep(100 * time.Millisecond)
	after := runtime.NumGoroutine()
	if grew := after - before; grew > 12 {
		t.Errorf("100-node shared-socket runner grew goroutines by %d; want O(pool)", grew)
	}
}

// TestGroupCommitFsyncPerDrain asserts the headline durability
// collapse: a drain sweeping every local node costs exactly ONE fsync
// under group commit, versus one per touched node with private stores.
func TestGroupCommitFsyncPerDrain(t *testing.T) {
	for _, tc := range []struct {
		name  string
		group bool
		want  uint64 // fsyncs one full-shard drain may cost
	}{
		{"group", true, 1},
		{"per-node", false, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := buildConfigured(t, Config{GroupCommit: tc.group}, engine.Options{})
			defer r.Close()
			if _, err := r.EnableDurability(t.TempDir(), durable.Options{Sync: durable.SyncCommit}); err != nil {
				t.Fatal(err)
			}
			// Seed without Start: one deterministic drain across all five
			// nodes (every Figure 2 node owns link facts), no receive
			// traffic to blur the count.
			base := r.DurableSyncs()
			r.Seed()
			if got := r.DurableSyncs() - base; got != tc.want {
				t.Errorf("full-shard drain cost %d fsyncs, want %d", got, tc.want)
			}
			if tc.group {
				base = r.DurableCommits()
				r.Seed()
				if got := r.DurableCommits() - base; got != 1 {
					t.Errorf("full-shard drain cost %d group commits, want 1", got)
				}
			}
		})
	}
}
