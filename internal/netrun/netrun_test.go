package netrun

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
)

var figure2 = []struct {
	a, b string
	cost float64
}{
	{"a", "b", 5}, {"a", "c", 1}, {"c", "b", 1}, {"b", "d", 1}, {"e", "a", 1},
}

func buildRunner(t *testing.T) *Runner {
	t.Helper()
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	r, err := New(prog, []string{"a", "b", "c", "d", "e"}, engine.Options{AggSel: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestUDPShortestPath runs the paper's shortest-path query over real UDP
// sockets on localhost and checks the known answers of the Figure 2
// network. UDP can drop datagrams under load, so the test retries by
// re-seeding (the soft-state refresh story) before giving up.
func TestUDPShortestPath(t *testing.T) {
	r := buildRunner(t)
	defer r.Close()
	r.Start()
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("cluster did not go idle")
	}

	want := map[string]bool{
		"shortestPath(a,b,[a,c,b],2)":     true,
		"shortestPath(a,c,[a,c],1)":       true,
		"shortestPath(e,d,[e,a,c,b,d],4)": true,
	}
	check := func() int {
		missing := 0
		got := map[string]bool{}
		for _, k := range r.Tuples("shortestPath") {
			got[k] = true
		}
		for k := range want {
			if !got[k] {
				missing++
			}
		}
		return missing
	}
	missing := check()
	for attempt := 0; missing > 0 && attempt < 3; attempt++ {
		// Datagram loss: re-inject the base facts (refresh) and re-check.
		for _, l := range figure2 {
			r.Inject(l.a, engine.Insert(programs.LinkFact("link", l.a, l.b, l.cost)))
			r.Inject(l.b, engine.Insert(programs.LinkFact("link", l.b, l.a, l.cost)))
		}
		r.WaitQuiescent(300*time.Millisecond, 10*time.Second)
		missing = check()
	}
	if missing > 0 {
		t.Fatalf("missing %d known answers; have %v", missing, r.Tuples("shortestPath"))
	}
	if r.Messages() == 0 || r.Bytes() == 0 {
		t.Error("no UDP traffic recorded")
	}
	// Results live at their home nodes.
	if got := r.NodeTuples("e", "shortestPath"); len(got) == 0 {
		t.Error("node e has no local results")
	}
	if got := r.NodeTuples("zzz", "shortestPath"); got != nil {
		t.Error("unknown node should return nil")
	}
}

// TestUDPLinkUpdate injects a link cost update into the live UDP cluster
// and watches the routes recompute.
func TestUDPLinkUpdate(t *testing.T) {
	r := buildRunner(t)
	defer r.Close()
	r.Start()
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("cluster did not go idle")
	}
	// link(a,b): 5 -> 1; a's best route to b becomes the direct link.
	r.Inject("a", engine.Insert(programs.LinkFact("link", "a", "b", 1)))
	r.Inject("b", engine.Insert(programs.LinkFact("link", "b", "a", 1)))
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("update did not settle")
	}
	found := false
	for attempt := 0; attempt < 3 && !found; attempt++ {
		for _, k := range r.NodeTuples("a", "shortestPath") {
			if k == "shortestPath(a,b,[a,b],1)" {
				found = true
			}
		}
		if !found {
			r.Inject("a", engine.Insert(programs.LinkFact("link", "a", "b", 1)))
			r.WaitQuiescent(300*time.Millisecond, 10*time.Second)
		}
	}
	if !found {
		t.Fatalf("updated route missing: %v", r.NodeTuples("a", "shortestPath"))
	}
}

// TestShardedRunners splits the Figure 2 deployment across two runners
// in one process — the netrun half of the multi-process story
// (internal/shard adds the control plane and real process boundaries).
// Each runner hosts a subset of the nodes and reaches the rest through
// remote address-book entries.
func TestShardedRunners(t *testing.T) {
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	opts := engine.Options{AggSel: true}
	r1, err := NewSharded(prog, map[string]string{"a": "", "b": "", "c": ""}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := NewSharded(prog, map[string]string{"d": "", "e": ""}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r1.LocalIDs(); len(got) != 3 || got[0] != "a" {
		t.Fatalf("LocalIDs = %v", got)
	}
	// Cross-wire the books.
	for _, id := range r2.LocalIDs() {
		if err := r1.SetRemote(id, r2.Addr(id).String()); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range r1.LocalIDs() {
		if err := r2.SetRemote(id, r1.Addr(id).String()); err != nil {
			t.Fatal(err)
		}
	}
	r1.Start()
	r2.Start()
	idle := func() bool {
		// Both runners must be idle simultaneously (a message in flight
		// between them re-arms the other side).
		return r1.WaitQuiescent(300*time.Millisecond, 15*time.Second) &&
			r2.WaitQuiescent(300*time.Millisecond, 15*time.Second)
	}
	if !idle() {
		t.Fatal("sharded runners did not go idle")
	}
	want := "shortestPath(e,d,[e,a,c,b,d],4)"
	found := func() bool {
		for _, k := range r2.NodeTuples("e", "shortestPath") {
			if k == want {
				return true
			}
		}
		return false
	}
	for attempt := 0; attempt < 3 && !found(); attempt++ {
		r1.Seed() // datagram loss: refresh and retry
		r2.Seed()
		idle()
	}
	if !found() {
		t.Fatalf("cross-runner route missing: %v", r2.NodeTuples("e", "shortestPath"))
	}
	s1, s2 := r1.Stats(), r2.Stats()
	if s1.SentMessages == 0 || s2.SentMessages == 0 {
		t.Error("expected traffic from both runners")
	}
	if s1.Dropped != 0 || s2.Dropped != 0 {
		t.Errorf("dropped deltas: %d, %d", s1.Dropped, s2.Dropped)
	}
	if len(r1.TupleValues("shortestPath")) == 0 {
		t.Error("TupleValues empty on runner 1")
	}
}

// TestDroppedAccounting checks that deltas bound for a node absent from
// the address book are counted, not silently discarded.
func TestDroppedAccounting(t *testing.T) {
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	// Host only node a: everything it derives for b/c/e has no route.
	r, err := NewSharded(prog, map[string]string{"a": ""}, engine.Options{AggSel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	r.WaitQuiescent(200*time.Millisecond, 5*time.Second)
	if r.Stats().Dropped == 0 {
		t.Error("expected dropped deltas for unrouted destinations")
	}
}

// TestEpochFencing proves the stale-epoch fence: a data datagram
// carrying an old membership epoch is counted (sent==recv ledger stays
// balanced) but its tuples are never applied; a current-epoch datagram
// with the same payload is.
func TestEpochFencing(t *testing.T) {
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSharded(prog, map[string]string{"a": ""}, engine.Options{AggSel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetEpoch(2) // post-cutover view
	r.Start()

	src, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	payload := engine.EncodeDeltas([]engine.Delta{
		engine.Insert(programs.LinkFact("link", "a", "zz", 9)),
	})
	send := func(epoch uint64) {
		frame := binary.AppendUvarint([]byte{envMagic}, epoch)
		frame = append(frame, payload...)
		if _, err := src.WriteToUDP(frame, r.Addr("a")); err != nil {
			t.Fatal(err)
		}
	}

	// Stale epoch: fenced, counted, never applied.
	send(1)
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Fenced == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	s := r.Stats()
	if s.Fenced != 1 {
		t.Fatalf("fenced = %d, want 1", s.Fenced)
	}
	if s.RecvMessages != 1 {
		t.Fatalf("fenced datagram not counted in the ledger: recv = %d", s.RecvMessages)
	}
	for _, k := range r.NodeTuples("a", "link") {
		if k == "link(a,zz,9)" {
			t.Fatal("stale-epoch tuple was applied")
		}
	}

	// Current epoch: the same payload lands.
	send(2)
	found := false
	for time.Now().Before(deadline) && !found {
		for _, k := range r.NodeTuples("a", "link") {
			if k == "link(a,zz,9)" {
				found = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !found {
		t.Fatalf("current-epoch tuple missing: %v", r.NodeTuples("a", "link"))
	}
	if got := r.Stats().Fenced; got != 1 {
		t.Fatalf("fenced = %d after current-epoch send, want 1", got)
	}
}

// TestAddRemoveNode exercises live adoption and release: a node joins a
// running socket set, serves, exports its state, and leaves.
func TestAddRemoveNode(t *testing.T) {
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	r, err := NewSharded(prog, map[string]string{"a": ""}, engine.Options{AggSel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()

	if err := r.AddNode("a", ""); err == nil {
		t.Error("duplicate AddNode accepted")
	}
	if err := r.AddNode("b", ""); err != nil {
		t.Fatal(err)
	}
	if got := r.LocalIDs(); len(got) != 2 || got[1] != "b" {
		t.Fatalf("LocalIDs = %v", got)
	}
	if r.Addr("b") == nil {
		t.Fatal("adopted node has no address")
	}
	r.Seed() // b's home facts seed through the normal path
	r.WaitQuiescent(200*time.Millisecond, 5*time.Second)
	if got := r.NodeTuples("b", "link"); len(got) == 0 {
		t.Fatalf("adopted node has no link facts: %v", got)
	}

	// Export, remove, re-adopt elsewhere-style: import restores state.
	blob, err := r.ExportNode("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExportNode("b"); err == nil {
		t.Error("export of a removed node succeeded")
	}
	if err := r.RemoveNode("b"); err == nil {
		t.Error("double remove succeeded")
	}
	if got := r.LocalIDs(); len(got) != 1 {
		t.Fatalf("LocalIDs after remove = %v", got)
	}

	if err := r.AddNode("b", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.ImportNode("b", blob); err != nil {
		t.Fatal(err)
	}
	if got := r.NodeTuples("b", "link"); len(got) == 0 {
		t.Fatalf("imported node has no link facts: %v", got)
	}
	if err := r.ImportNode("zz", blob); err == nil {
		t.Error("import into unknown node succeeded")
	}
	if err := r.ImportNode("b", []byte{1, 2, 3}); err == nil {
		t.Error("corrupt import succeeded")
	}
}

func TestInjectUnknownNode(t *testing.T) {
	r := buildRunner(t)
	defer r.Close()
	if err := r.Inject("nope", engine.Insert(programs.LinkFact("link", "x", "y", 1))); err == nil {
		t.Error("expected error for unknown node")
	}
	if r.Addr("a") == nil {
		t.Error("node a should have a bound address")
	}
}
