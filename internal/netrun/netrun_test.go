package netrun

import (
	"testing"
	"time"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
)

var figure2 = []struct {
	a, b string
	cost float64
}{
	{"a", "b", 5}, {"a", "c", 1}, {"c", "b", 1}, {"b", "d", 1}, {"e", "a", 1},
}

func buildRunner(t *testing.T) *Runner {
	t.Helper()
	prog, err := parser.Parse(programs.ShortestPath(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	r, err := New(prog, []string{"a", "b", "c", "d", "e"}, engine.Options{AggSel: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestUDPShortestPath runs the paper's shortest-path query over real UDP
// sockets on localhost and checks the known answers of the Figure 2
// network. UDP can drop datagrams under load, so the test retries by
// re-seeding (the soft-state refresh story) before giving up.
func TestUDPShortestPath(t *testing.T) {
	r := buildRunner(t)
	defer r.Close()
	r.Start()
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("cluster did not go idle")
	}

	want := map[string]bool{
		"shortestPath(a,b,[a,c,b],2)":     true,
		"shortestPath(a,c,[a,c],1)":       true,
		"shortestPath(e,d,[e,a,c,b,d],4)": true,
	}
	check := func() int {
		missing := 0
		got := map[string]bool{}
		for _, k := range r.Tuples("shortestPath") {
			got[k] = true
		}
		for k := range want {
			if !got[k] {
				missing++
			}
		}
		return missing
	}
	missing := check()
	for attempt := 0; missing > 0 && attempt < 3; attempt++ {
		// Datagram loss: re-inject the base facts (refresh) and re-check.
		for _, l := range figure2 {
			r.Inject(l.a, engine.Insert(programs.LinkFact("link", l.a, l.b, l.cost)))
			r.Inject(l.b, engine.Insert(programs.LinkFact("link", l.b, l.a, l.cost)))
		}
		r.WaitQuiescent(300*time.Millisecond, 10*time.Second)
		missing = check()
	}
	if missing > 0 {
		t.Fatalf("missing %d known answers; have %v", missing, r.Tuples("shortestPath"))
	}
	if r.Messages() == 0 || r.Bytes() == 0 {
		t.Error("no UDP traffic recorded")
	}
	// Results live at their home nodes.
	if got := r.NodeTuples("e", "shortestPath"); len(got) == 0 {
		t.Error("node e has no local results")
	}
	if got := r.NodeTuples("zzz", "shortestPath"); got != nil {
		t.Error("unknown node should return nil")
	}
}

// TestUDPLinkUpdate injects a link cost update into the live UDP cluster
// and watches the routes recompute.
func TestUDPLinkUpdate(t *testing.T) {
	r := buildRunner(t)
	defer r.Close()
	r.Start()
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("cluster did not go idle")
	}
	// link(a,b): 5 -> 1; a's best route to b becomes the direct link.
	r.Inject("a", engine.Insert(programs.LinkFact("link", "a", "b", 1)))
	r.Inject("b", engine.Insert(programs.LinkFact("link", "b", "a", 1)))
	if !r.WaitQuiescent(300*time.Millisecond, 15*time.Second) {
		t.Fatal("update did not settle")
	}
	found := false
	for attempt := 0; attempt < 3 && !found; attempt++ {
		for _, k := range r.NodeTuples("a", "shortestPath") {
			if k == "shortestPath(a,b,[a,b],1)" {
				found = true
			}
		}
		if !found {
			r.Inject("a", engine.Insert(programs.LinkFact("link", "a", "b", 1)))
			r.WaitQuiescent(300*time.Millisecond, 10*time.Second)
		}
	}
	if !found {
		t.Fatalf("updated route missing: %v", r.NodeTuples("a", "shortestPath"))
	}
}

func TestInjectUnknownNode(t *testing.T) {
	r := buildRunner(t)
	defer r.Close()
	if err := r.Inject("nope", engine.Insert(programs.LinkFact("link", "x", "y", 1))); err == nil {
		t.Error("expected error for unknown node")
	}
	if r.Addr("a") == nil {
		t.Error("node a should have a bound address")
	}
}
