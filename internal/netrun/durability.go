package netrun

// Durability: each local node owns a durable.Store (WAL + snapshots)
// under <dir>/<nodeID>. The engine's journal tap collects every
// processed recoverable delta during a drain; commitDurable frames the
// batch as one WAL record — stamped with the node's virtual clock —
// and group-commits it BEFORE the drain's outbound datagrams are
// dispatched, so a kill -9 can never have advertised state it will not
// remember. When the WAL outgrows Options.SnapshotBytes the node's
// exported state replaces it as a fresh snapshot generation.
//
// Recovery (EnableDurability, before Start): per node, import the
// snapshot, clamp its soft-state TTLs, replay the WAL tail record by
// record under each record's own clock, then Rederive to close the
// local derivations. Outbound deltas produced during recovery are
// discarded — the shard-level respawn protocol rebuilds cross-node
// state with explicit rederivation sweeps once the fleet knows the
// node is back. The journal tap installs only after replay, so
// recovery does not re-journal itself; a fresh snapshot then folds the
// replayed tail into a compact generation.

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/val"
)

// EnableDurability attaches a durable store to every local node,
// recovering whatever a previous incarnation persisted under dir. It
// must be called after construction and before Start (the node set is
// quiet). Returns the number of nodes that recovered non-empty state.
// Nodes adopted later (AddNode) get stores automatically.
func (r *Runner) EnableDurability(dir string, opts durable.Options) (int, error) {
	if dir == "" {
		return 0, fmt.Errorf("netrun: empty durability dir")
	}
	r.nodesMu.Lock()
	defer r.nodesMu.Unlock()
	if r.started {
		return 0, fmt.Errorf("netrun: EnableDurability after Start")
	}
	if r.durDir != "" {
		return 0, fmt.Errorf("netrun: durability already enabled")
	}
	r.durDir, r.durOpts = dir, opts
	recovered := 0
	for _, id := range sortedNodeIDs(r.nodes) {
		nn := r.nodes[id]
		warm, err := r.attachStore(nn, false)
		if err != nil {
			return recovered, fmt.Errorf("netrun: durability for %s: %w", id, err)
		}
		if warm {
			recovered++
		}
	}
	return recovered, nil
}

func sortedNodeIDs(nodes map[string]*netNode) []string {
	out := make([]string, 0, len(nodes))
	for id := range nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// attachStore opens the node's store, replays recovered state into the
// engine (unless discard is set — adopted nodes get their state from a
// migration bundle instead), takes a fresh post-recovery snapshot, and
// installs the journal tap. Reports whether recovery found state.
func (r *Runner) attachStore(nn *netNode, discard bool) (bool, error) {
	store, rec, err := durable.Open(filepath.Join(r.durDir, nn.id), r.durOpts)
	if err != nil {
		return false, err
	}
	warm := !rec.Empty()
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if warm && !discard {
		if err := replayRecovered(nn.node, rec); err != nil {
			store.Close()
			return false, err
		}
	}
	// Fold the recovered (or deliberately empty) state into a compact
	// snapshot generation before journaling resumes.
	nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
	if err := store.Snapshot(engine.EncodeState(nn.node.Export())); err != nil {
		store.Close()
		return false, err
	}
	nn.dur = store
	nn.node.SetJournal(func(d engine.Delta) {
		nn.pending = append(nn.pending, d)
	})
	return warm && !discard, nil
}

// replayRecovered rebuilds a node from its snapshot and WAL tail.
// Caller holds nn.mu; the journal tap is not yet installed.
func replayRecovered(n *engine.Node, rec durable.Recovered) error {
	now := float64(time.Now().UnixNano()) / 1e9
	if len(rec.Snapshot) > 0 {
		st, err := engine.DecodeState(rec.Snapshot)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		n.SetNow(now)
		n.ImportState(st)
		n.Drain() // discard: the fleet is re-synced by the respawn sweeps
		n.ApplyImportedTTLs(st)
	}
	for i, b := range rec.Records {
		recNow, deltas, err := decodeWALRecord(b, n.Interner())
		if err != nil {
			return fmt.Errorf("wal record %d: %w", i, err)
		}
		if recNow < now {
			n.SetNow(recNow)
		}
		for _, d := range deltas {
			n.Push(d)
		}
		n.Drain()
	}
	n.SetNow(now)
	n.Rederive()
	n.Drain()
	return nil
}

// commitDurable folds the deltas journaled during one drain into a
// single WAL record and commits it; once the WAL outgrows its
// threshold the node's state is snapshotted instead, truncating the
// log. Caller holds nn.mu. No-op without durability. Persistence
// errors are deliberately non-fatal to the data path (the node keeps
// serving; the next commit retries), matching UDP's own stance that
// the ledger, not per-operation success, is the consistency check.
func (r *Runner) commitDurable(nn *netNode) {
	if nn.dur == nil {
		return
	}
	if len(nn.pending) > 0 {
		rec := encodeWALRecord(nn.node.Now(), nn.pending)
		nn.pending = nn.pending[:0]
		if err := nn.dur.Append(rec); err != nil {
			return
		}
	}
	nn.dur.Commit()
	if nn.dur.ShouldSnapshot() {
		nn.dur.Snapshot(engine.EncodeState(nn.node.Export()))
	}
}

// ExportBundle packages a node's durable snapshot + WAL tail for
// migration (Rebalance ships this instead of a fresh export, so the
// pause does not pay a full state re-encode of a large node). Without
// durability it falls back to a bare state export.
func (r *Runner) ExportBundle(id string) ([]byte, error) {
	nn, ok := r.node(id)
	if !ok {
		return nil, fmt.Errorf("netrun: node %q not hosted", id)
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if nn.dur == nil {
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		return engine.EncodeState(nn.node.Export()), nil
	}
	r.commitDurable(nn)
	return nn.dur.Bundle()
}

// walRecord := now(float64 bits, 8B LE) deltas(engine delta message)
//
// The virtual clock rides in every record so replay can re-install
// soft-state TTLs relative to when the deltas were processed, not when
// the recovery runs.
func encodeWALRecord(now float64, deltas []engine.Delta) []byte {
	rec := make([]byte, 8)
	binary.LittleEndian.PutUint64(rec, math.Float64bits(now))
	return engine.AppendDeltas(rec, deltas)
}

func decodeWALRecord(b []byte, in *val.Interner) (float64, []engine.Delta, error) {
	if len(b) < 9 {
		return 0, nil, fmt.Errorf("netrun: short WAL record")
	}
	now := math.Float64frombits(binary.LittleEndian.Uint64(b))
	if math.IsNaN(now) {
		return 0, nil, fmt.Errorf("netrun: corrupt WAL record clock")
	}
	deltas, err := engine.DecodeDeltasIn(b[8:], in)
	if err != nil {
		return 0, nil, fmt.Errorf("netrun: corrupt WAL record: %w", err)
	}
	return now, deltas, nil
}
