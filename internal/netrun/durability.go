package netrun

// Durability: each local node owns a durable.Store (WAL + snapshots)
// under <dir>/<nodeID>. The engine's journal tap collects every
// processed recoverable delta during a drain; commitDurable frames the
// batch as one WAL record — stamped with the node's virtual clock —
// and group-commits it BEFORE the drain's outbound datagrams are
// dispatched, so a kill -9 can never have advertised state it will not
// remember. When the WAL outgrows Options.SnapshotBytes the node's
// exported state replaces it as a fresh snapshot generation.
//
// Recovery (EnableDurability, before Start): per node, import the
// snapshot, clamp its soft-state TTLs, replay the WAL tail record by
// record under each record's own clock, then Rederive to close the
// local derivations. Outbound deltas produced during recovery are
// discarded — the shard-level respawn protocol rebuilds cross-node
// state with explicit rederivation sweeps once the fleet knows the
// node is back. The journal tap installs only after replay, so
// recovery does not re-journal itself; a fresh snapshot then folds the
// replayed tail into a compact generation.

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/val"
)

// nodeStore is the persistence surface a netNode drains into — either
// a private durable.Store, or its member view of the shard-wide group
// log (durable.GroupStore) when the runner was configured with
// Config.GroupCommit. The runner is agnostic: append, commit, snapshot
// and migrate work identically; only where the fsyncs land differs.
type nodeStore interface {
	Append(payload []byte) error
	Commit() error
	WALBytes() int64
	ShouldSnapshot() bool
	Snapshot(state []byte) error
	Bundle() ([]byte, error)
	Close() error
	Destroy() error
	Commits() uint64
	Syncs() uint64
}

var (
	_ nodeStore = (*durable.Store)(nil)
	_ nodeStore = (*durable.GroupStore)(nil)
)

// EnableDurability attaches a durable store to every local node,
// recovering whatever a previous incarnation persisted under dir. It
// must be called after construction and before Start (the node set is
// quiet). Returns the number of nodes that recovered non-empty state.
// Nodes adopted later (AddNode) get stores automatically.
//
// With Config.GroupCommit the nodes share one shard-wide log
// (durable.Group) under dir instead of one WAL per node, so a drain
// sweeping the whole local set costs a single fsync.
func (r *Runner) EnableDurability(dir string, opts durable.Options) (int, error) {
	if dir == "" {
		return 0, fmt.Errorf("netrun: empty durability dir")
	}
	r.nodesMu.Lock()
	defer r.nodesMu.Unlock()
	if r.started {
		return 0, fmt.Errorf("netrun: EnableDurability after Start")
	}
	if r.durDir != "" {
		return 0, fmt.Errorf("netrun: durability already enabled")
	}
	r.durDir, r.durOpts = dir, opts
	recovered := 0
	for _, id := range sortedNodeIDs(r.nodes) {
		nn := r.nodes[id]
		warm, err := r.attachStore(nn, false)
		if err != nil {
			return recovered, fmt.Errorf("netrun: durability for %s: %w", id, err)
		}
		if warm {
			recovered++
		}
	}
	return recovered, nil
}

func sortedNodeIDs(nodes map[string]*netNode) []string {
	out := make([]string, 0, len(nodes))
	for id := range nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// attachStore opens the node's store — private, or a member view of
// the shard's group log — replays recovered state into the engine
// (unless discard is set — adopted nodes get their state from a
// migration bundle instead), takes a fresh post-recovery snapshot, and
// installs the journal tap. Reports whether recovery found state.
func (r *Runner) attachStore(nn *netNode, discard bool) (bool, error) {
	var (
		store nodeStore
		rec   durable.Recovered
		err   error
	)
	if r.groupCommit {
		if r.durGroup == nil {
			r.durGroup, err = durable.OpenGroup(r.durDir, r.durOpts)
			if err != nil {
				return false, err
			}
		}
		store, rec, err = r.durGroup.Attach(nn.id)
	} else {
		store, rec, err = durable.Open(filepath.Join(r.durDir, nn.id), r.durOpts)
	}
	if err != nil {
		return false, err
	}
	warm := !rec.Empty()
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if warm && !discard {
		if err := replayRecovered(nn.node, rec); err != nil {
			store.Close()
			return false, err
		}
	}
	// Fold the recovered (or deliberately empty) state into a compact
	// snapshot generation before journaling resumes.
	nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
	if err := store.Snapshot(engine.EncodeState(nn.node.Export())); err != nil {
		store.Close()
		return false, err
	}
	nn.dur = store
	nn.node.SetJournal(func(d engine.Delta) {
		nn.pending = append(nn.pending, d)
	})
	return warm && !discard, nil
}

// replayRecovered rebuilds a node from its snapshot and WAL tail.
// Caller holds nn.mu; the journal tap is not yet installed.
func replayRecovered(n *engine.Node, rec durable.Recovered) error {
	now := float64(time.Now().UnixNano()) / 1e9
	if len(rec.Snapshot) > 0 {
		st, err := engine.DecodeState(rec.Snapshot)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		n.SetNow(now)
		n.ImportState(st)
		n.Drain() // discard: the fleet is re-synced by the respawn sweeps
		n.ApplyImportedTTLs(st)
	}
	for i, b := range rec.Records {
		recNow, deltas, err := decodeWALRecord(b, n.Interner())
		if err != nil {
			return fmt.Errorf("wal record %d: %w", i, err)
		}
		if recNow < now {
			n.SetNow(recNow)
		}
		for _, d := range deltas {
			n.Push(d)
		}
		n.Drain()
	}
	n.SetNow(now)
	n.Rederive()
	n.Drain()
	return nil
}

// appendDurable folds the deltas journaled during one drain into a
// single WAL record and appends it (no commit) — the half of the
// persistence step drainDispatch runs per node before issuing the
// shard-wide group commit. The snapshot check also lives here: both
// store kinds subsume still-uncommitted records in the snapshot they
// take, so rolling before the commit is safe. Caller holds nn.mu.
func (r *Runner) appendDurable(nn *netNode) {
	if nn.dur == nil {
		return
	}
	if len(nn.pending) > 0 {
		rec := encodeWALRecord(nn.node.Now(), nn.pending)
		nn.pending = nn.pending[:0]
		if err := nn.dur.Append(rec); err != nil {
			return
		}
	}
	if nn.dur.ShouldSnapshot() {
		nn.dur.Snapshot(engine.EncodeState(nn.node.Export()))
	}
}

// commitDurable is appendDurable plus the commit: one WAL record for
// the drain, made durable per the sync policy. Caller holds nn.mu.
// No-op without durability. Persistence errors are deliberately
// non-fatal to the data path (the node keeps serving; the next commit
// retries), matching UDP's own stance that the ledger, not
// per-operation success, is the consistency check. Under group commit
// the Commit lands on the shared log, where concurrent committers
// collapse onto one leader's fsync.
func (r *Runner) commitDurable(nn *netNode) {
	if nn.dur == nil {
		return
	}
	r.appendDurable(nn)
	nn.dur.Commit()
}

// DurableCommits returns the total WAL commit batches this runner's
// persistence layer wrote: the shared log's counter under group
// commit, the sum across per-node stores otherwise. Zero without
// durability.
func (r *Runner) DurableCommits() uint64 {
	if r.durGroup != nil {
		return r.durGroup.Commits()
	}
	var total uint64
	for _, nn := range r.localNodes() {
		nn.mu.Lock()
		if nn.dur != nil {
			total += nn.dur.Commits()
		}
		nn.mu.Unlock()
	}
	return total
}

// DurableSyncs returns the total fsyncs the persistence layer issued —
// the figure group commit collapses from one per node per drain to one
// per shard per drain.
func (r *Runner) DurableSyncs() uint64 {
	if r.durGroup != nil {
		return r.durGroup.Syncs()
	}
	var total uint64
	for _, nn := range r.localNodes() {
		nn.mu.Lock()
		if nn.dur != nil {
			total += nn.dur.Syncs()
		}
		nn.mu.Unlock()
	}
	return total
}

// ExportBundle packages a node's durable snapshot + WAL tail for
// migration (Rebalance ships this instead of a fresh export, so the
// pause does not pay a full state re-encode of a large node). Without
// durability it falls back to a bare state export.
func (r *Runner) ExportBundle(id string) ([]byte, error) {
	nn, ok := r.node(id)
	if !ok {
		return nil, fmt.Errorf("netrun: node %q not hosted", id)
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if nn.dur == nil {
		nn.node.SetNow(float64(time.Now().UnixNano()) / 1e9)
		return engine.EncodeState(nn.node.Export()), nil
	}
	r.commitDurable(nn)
	return nn.dur.Bundle()
}

// walRecord := now(float64 bits, 8B LE) deltas(engine delta message)
//
// The virtual clock rides in every record so replay can re-install
// soft-state TTLs relative to when the deltas were processed, not when
// the recovery runs.
func encodeWALRecord(now float64, deltas []engine.Delta) []byte {
	rec := make([]byte, 8)
	binary.LittleEndian.PutUint64(rec, math.Float64bits(now))
	return engine.AppendDeltas(rec, deltas)
}

func decodeWALRecord(b []byte, in *val.Interner) (float64, []engine.Delta, error) {
	if len(b) < 9 {
		return 0, nil, fmt.Errorf("netrun: short WAL record")
	}
	now := math.Float64frombits(binary.LittleEndian.Uint64(b))
	if math.IsNaN(now) {
		return 0, nil, fmt.Errorf("netrun: corrupt WAL record clock")
	}
	deltas, err := engine.DecodeDeltasIn(b[8:], in)
	if err != nil {
		return 0, nil, fmt.Errorf("netrun: corrupt WAL record: %w", err)
	}
	return now, deltas, nil
}
