package netrun

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/val"
)

const reachSrc = `
materialize(edge, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2)).
r1 reach(@S,@D) :- #edge(@S,@D).
r2 reach(@S,@D) :- #edge(@S,@Z), reach(@Z,@D).
`

func edge(a, b string) val.Tuple {
	return val.NewTuple("edge", val.NewAddr(a), val.NewAddr(b))
}

func waitIdle(t *testing.T, r *Runner) {
	t.Helper()
	if !r.WaitQuiescent(200*time.Millisecond, 15*time.Second) {
		t.Fatal("runner did not go idle")
	}
}

func sorted(ks []string) []string {
	out := append([]string(nil), ks...)
	sort.Strings(out)
	return out
}

// TestDurableRecovery: a runner's state survives its process — a second
// runner opening the same data directory recovers base facts with exact
// derivation counts from the WAL, and the migration-style rederivation
// sweeps rebuild the cross-node derived state to the same fixpoint.
func TestDurableRecovery(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r1, err := New(prog, []string{"a", "b"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r1.EnableDurability(dir, durable.Options{}); err != nil || n != 0 {
		t.Fatalf("fresh enable: recovered=%d err=%v", n, err)
	}
	r1.Start()
	// Inject'ed facts are not program facts, so a later Seed cannot mask
	// a recovery failure. edge(a,b) twice: count 2 must survive.
	r1.Inject("a", engine.Insert(edge("a", "b")))
	r1.Inject("a", engine.Insert(edge("a", "b")))
	r1.Inject("b", engine.Insert(edge("b", "a")))
	waitIdle(t, r1)
	wantReach := sorted(r1.Tuples("reach"))
	wantEdge := sorted(r1.Tuples("edge"))
	if len(wantReach) == 0 {
		t.Fatal("no derived state before crash")
	}
	// Abandon r1 without Close: with the default SyncCommit policy every
	// drain was fsynced before its datagrams left, so the directory is
	// exactly what a kill -9 would leave behind.
	defer r1.Close()

	r2, err := New(prog, []string{"a", "b"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	n, err := r2.EnableDurability(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d warm nodes, want 2", n)
	}
	if got := sorted(r2.Tuples("edge")); !reflect.DeepEqual(got, wantEdge) {
		t.Fatalf("recovered edges %v, want %v", got, wantEdge)
	}
	// The respawn protocol's per-destination sweeps rebuild the derived
	// state that crossed node boundaries.
	r2.Start()
	r2.RederiveFor([]string{"a"})
	r2.RederiveFor([]string{"b"})
	waitIdle(t, r2)
	if got := sorted(r2.Tuples("reach")); !reflect.DeepEqual(got, wantReach) {
		t.Fatalf("recovered fixpoint %v, want %v", got, wantReach)
	}

	// Count fidelity: edge(a,b) was inserted twice; one delete leaves it.
	r2.Inject("a", engine.Deletion(edge("a", "b")))
	waitIdle(t, r2)
	if got := r2.NodeTuples("a", "edge"); len(got) != 1 {
		t.Fatalf("count-2 edge vanished after one delete: %v", got)
	}
	r2.Inject("a", engine.Deletion(edge("a", "b")))
	waitIdle(t, r2)
	if got := r2.NodeTuples("a", "edge"); len(got) != 0 {
		t.Fatalf("edge survived both deletes: %v", got)
	}
}

// TestDurableSnapshotCadence: a tiny snapshot threshold forces the WAL
// to roll into snapshots mid-run, and recovery from a snapshot (counts
// ride in the exported state) is as exact as WAL replay.
func TestDurableSnapshotCadence(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r1, err := New(prog, []string{"a"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.EnableDurability(dir, durable.Options{SnapshotBytes: 1}); err != nil {
		t.Fatal(err)
	}
	r1.Start()
	r1.Inject("a", engine.Insert(edge("a", "a")))
	r1.Inject("a", engine.Insert(edge("a", "a")))
	waitIdle(t, r1)
	defer r1.Close()

	r2, err := New(prog, []string{"a"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if n, err := r2.EnableDurability(dir, durable.Options{}); err != nil || n != 1 {
		t.Fatalf("recovered=%d err=%v", n, err)
	}
	if got := r2.NodeTuples("a", "edge"); len(got) != 1 {
		t.Fatalf("edge not recovered from snapshot: %v", got)
	}
	r2.Inject("a", engine.Deletion(edge("a", "a")))
	if got := r2.NodeTuples("a", "edge"); len(got) != 1 {
		t.Fatal("derivation count lost across snapshot recovery")
	}
	r2.Inject("a", engine.Deletion(edge("a", "a")))
	if got := r2.NodeTuples("a", "edge"); len(got) != 0 {
		t.Fatal("edge survived both deletes")
	}
}

// TestExportBundleMigration: a durable node migrates by shipping its
// snapshot + WAL tail; the adopting runner rebuilds the same state —
// counts included — and the bundle lands in the adopter's own store.
func TestExportBundleMigration(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := New(prog, []string{"a"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	if _, err := r1.EnableDurability(t.TempDir(), durable.Options{}); err != nil {
		t.Fatal(err)
	}
	r1.Start()
	r1.Inject("a", engine.Insert(edge("a", "a")))
	r1.Inject("a", engine.Insert(edge("a", "a")))
	waitIdle(t, r1)
	bundle, err := r1.ExportBundle("a")
	if err != nil {
		t.Fatal(err)
	}
	if !durable.IsBundle(bundle) {
		t.Fatal("durable runner exported a bare state blob")
	}

	dir2 := t.TempDir()
	r2, err := NewSharded(prog, map[string]string{}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.EnableDurability(dir2, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	r2.Start()
	if err := r2.AddNode("a", ""); err != nil {
		t.Fatal(err)
	}
	if err := r2.ImportNode("a", bundle); err != nil {
		t.Fatal(err)
	}
	if got := r2.NodeTuples("a", "reach"); len(got) != 1 {
		t.Fatalf("imported node did not rederive: %v", got)
	}
	r2.Inject("a", engine.Deletion(edge("a", "a")))
	if got := r2.NodeTuples("a", "edge"); len(got) != 1 {
		t.Fatal("bundle lost the derivation count")
	}

	// The import itself was journaled: a restart of the adopter recovers
	// the migrated state from the adopter's own store.
	r3, err := New(prog, []string{"a"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if n, err := r3.EnableDurability(dir2, durable.Options{}); err != nil || n != 1 {
		t.Fatalf("adopter restart: recovered=%d err=%v", n, err)
	}
	if got := r3.NodeTuples("a", "edge"); len(got) != 1 {
		t.Fatalf("adopter restart lost migrated state: %v", got)
	}

	// A non-durable runner falls back to a bare state export, which
	// ImportNode also accepts.
	r4, err := New(prog, []string{"a"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r4.Close()
	r4.Start()
	r4.Inject("a", engine.Insert(edge("a", "a")))
	bare, err := r4.ExportBundle("a")
	if err != nil {
		t.Fatal(err)
	}
	if durable.IsBundle(bare) {
		t.Fatal("non-durable runner exported a bundle")
	}
	if err := r2.ImportNode("a", bare); err != nil {
		t.Fatalf("bare state import: %v", err)
	}
}

// TestBindHost: the manifest Host knob binds ephemeral node sockets on
// an explicit interface, and a bad host fails construction.
func TestBindHost(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewShardedHost(prog, map[string]string{"a": ""}, "127.0.0.1", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	addr := r.Addr("a")
	if addr == nil || addr.IP.String() != "127.0.0.1" || addr.Port == 0 {
		t.Fatalf("bind host not honored: %v", addr)
	}
	r.Start()
	r.Inject("a", engine.Insert(edge("a", "a")))
	waitIdle(t, r)
	if got := r.NodeTuples("a", "reach"); len(got) != 1 {
		t.Fatalf("node on explicit host not serving: %v", got)
	}

	if _, err := NewShardedHost(prog, map[string]string{"a": ""}, "no.such.host.invalid", engine.Options{}); err == nil {
		t.Fatal("invalid bind host accepted")
	}
}

// TestSentToLedger: per-destination sent counts line up with the
// aggregate ledger, so a control plane can attribute loss.
func TestSentToLedger(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(prog, []string{"a", "b"}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	r.Inject("a", engine.Insert(edge("a", "b")))
	r.Inject("b", engine.Insert(edge("b", "a")))
	waitIdle(t, r)
	per := r.SentTo()
	total := int64(0)
	for _, n := range per {
		total += n
	}
	if total == 0 {
		t.Fatal("no per-destination accounting")
	}
	if got := r.Stats().SentMessages; got != total {
		t.Fatalf("sentTo sums to %d, ledger says %d", total, got)
	}
}
