// Package ast defines the abstract syntax of NDlog (Network Datalog)
// programs as introduced in "Declarative Networking: Language, Execution
// and Optimization" (SIGMOD 2006), Section 2.
//
// An NDlog program is a Datalog program whose predicates carry a location
// specifier ("@" attribute) as their first field and whose non-local rules
// are link-restricted: they contain exactly one link literal ("#link")
// and every other predicate is located at one of the link's endpoints.
//
// Ownership: a Program belongs to its builder (parser or test) until it
// is handed to planner rewrites or engine compilation; appending Facts
// before that point is the supported way to add workloads. Planner
// rewrites never mutate in place — they Clone and return new Programs
// (sharing unmodified Rule pointers) — and the engine holds Rule
// pointers for the lifetime of its nodes, so no Rule may be mutated
// after compilation.
package ast

import (
	"fmt"
	"strings"

	"ndlog/internal/val"
)

// Pos is a 1-based line/column source position. The zero Pos means
// "unknown" — nodes built programmatically (planner rewrites, tests)
// carry it, and diagnostics render it as 0:0.
type Pos struct {
	Line, Col int
}

// IsValid reports whether p names a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed NDlog program: table declarations, rules, watches,
// base facts, and an optional query.
type Program struct {
	Materialized []*TableDecl
	Rules        []*Rule
	Facts        []val.Tuple
	FactPos      []Pos // source position per fact; may be shorter than Facts
	Query        *Atom
	Watches      []string // predicates whose derivations should be traced
}

// FactAt returns the source position of fact i, or the zero Pos for
// facts appended programmatically after parsing.
func (p *Program) FactAt(i int) Pos {
	if i < len(p.FactPos) {
		return p.FactPos[i]
	}
	return Pos{}
}

// TableDecl declares a materialized (stored) relation, following P2's
// "materialize(name, lifetime, size, keys(...))" convention. Lifetime is
// a soft-state TTL in virtual seconds; a negative lifetime means
// "infinity" (hard state). Lifetime zero declares an event predicate:
// tuples are processed as they arrive — each firing runs the rules the
// predicate triggers — but are never stored, never refreshed, and never
// retracted, matching P2's non-materialized event streams. Event
// predicates give protocols an instant that cannot be un-derived: a
// periodic tick or a request message fires once and is gone, so later
// changes to the tables it was joined against do not cascade deletions
// through it.
type TableDecl struct {
	Name     string
	Lifetime float64 // seconds; <0 means infinite, 0 means event
	MaxSize  int     // 0 means unbounded
	Keys     []int   // 0-based primary-key positions; empty means all fields
	Pos      Pos
}

// IsEvent reports whether the declaration is an event predicate
// (lifetime zero: processed, never stored).
func (d *TableDecl) IsEvent() bool { return d.Lifetime == 0 }

// Rule is "Head :- Body." with an optional label (e.g. "SP2"). Delete
// rules (prefixed "delete" in some NDlog dialects) are not modelled; the
// engine instead propagates deletions through ordinary rules via the
// count algorithm.
type Rule struct {
	Label string
	Head  Atom
	Body  []Term
	Pos   Pos
}

// Term is one element of a rule body: a predicate Atom, an Assign
// ("X := expr"), or a Select (a boolean condition such as "C < 10").
type Term interface {
	fmt.Stringer
	term()
}

// Atom is a predicate applied to argument expressions. If Link is true
// the atom was written "#pred(...)" and names the link relation that
// link-restricts the rule.
type Atom struct {
	Pred string
	Args []Expr
	Link bool
	Pos  Pos
}

func (*Atom) term() {}

// LocArg returns the location-specifier argument (first argument) or nil
// if the atom has no arguments.
func (a *Atom) LocArg() Expr {
	if len(a.Args) == 0 {
		return nil
	}
	return a.Args[0]
}

// LocVar returns the location-specifier variable name, or "" if the first
// argument is not a simple variable.
func (a *Atom) LocVar() string {
	if v, ok := a.LocArg().(*Var); ok {
		return v.Name
	}
	return ""
}

// HasAggregate reports whether any argument is an aggregate expression.
func (a *Atom) HasAggregate() bool {
	for _, e := range a.Args {
		if _, ok := e.(*Agg); ok {
			return true
		}
	}
	return false
}

// AggregateIndex returns the position of the (single) aggregate argument,
// or -1 if none.
func (a *Atom) AggregateIndex() int {
	for i, e := range a.Args {
		if _, ok := e.(*Agg); ok {
			return i
		}
	}
	return -1
}

func (a *Atom) String() string {
	var b strings.Builder
	if a.Link {
		b.WriteByte('#')
	}
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, e := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if i == 0 {
			// Location specifier: print with the "@" convention when it is
			// a variable or address constant.
			switch v := e.(type) {
			case *Var:
				b.WriteByte('@')
				b.WriteString(v.Name)
				continue
			case *Const:
				if v.Value.Kind() == val.KindAddr {
					b.WriteByte('@')
					b.WriteString(v.Value.Addr())
					continue
				}
			}
		}
		b.WriteString(e.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Assign binds a fresh variable to the value of an expression:
// "Var := Expr".
type Assign struct {
	Var  string
	Expr Expr
	Pos  Pos
}

func (*Assign) term() {}

func (a *Assign) String() string { return a.Var + " := " + a.Expr.String() }

// Select is a boolean filter condition over bound variables.
type Select struct {
	Cond Expr
	Pos  Pos
}

func (*Select) term() {}

func (s *Select) String() string { return s.Cond.String() }

// Expr is an NDlog expression: variables, constants, binary operations,
// function calls, and aggregate specifications (head-only).
type Expr interface {
	fmt.Stringer
	expr()
}

// Var references a variable. Loc marks variables written with the "@"
// prefix (address type).
type Var struct {
	Name string
	Loc  bool
	Pos  Pos
}

func (*Var) expr() {}

func (v *Var) String() string {
	if v.Loc {
		return "@" + v.Name
	}
	return v.Name
}

// Const is a literal value.
type Const struct {
	Value val.Value
	Pos   Pos
}

func (*Const) expr() {}

func (c *Const) String() string { return c.Value.String() }

// BinOp applies an arithmetic or comparison operator.
type BinOp struct {
	Op   Op
	L, R Expr
	Pos  Pos // position of the operator
}

func (*BinOp) expr() {}

func (b *BinOp) String() string {
	return fmt.Sprintf("%s %s %s", b.L, b.Op, b.R)
}

// Op enumerates binary operators.
type Op uint8

// Binary operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsComparison reports whether o yields a boolean.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr:
		return true
	}
	return false
}

// Call invokes a built-in function ("f_concatPath", "f_member", ...).
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*Call) expr() {}

func (c *Call) String() string {
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Agg is an aggregate head argument such as "min<C>".
type Agg struct {
	Func AggFunc
	Var  string
	Pos  Pos
}

func (*Agg) expr() {}

func (a *Agg) String() string { return fmt.Sprintf("%s<%s>", a.Func, a.Var) }

// AggFunc enumerates supported aggregate functions.
type AggFunc uint8

// Aggregate functions. Min, max and count are the monotonic aggregates
// the paper computes incrementally (Section 3.3.2, Section 4).
const (
	AggMin AggFunc = iota
	AggMax
	AggCount
	AggSum
)

var aggNames = map[AggFunc]string{
	AggMin: "min", AggMax: "max", AggCount: "count", AggSum: "sum",
}

func (f AggFunc) String() string {
	if s, ok := aggNames[f]; ok {
		return s
	}
	return fmt.Sprintf("agg(%d)", uint8(f))
}

// AggFuncByName resolves an aggregate name; ok is false if unknown.
func AggFuncByName(name string) (AggFunc, bool) {
	for f, s := range aggNames {
		if s == name {
			return f, true
		}
	}
	return 0, false
}

func (r *Rule) String() string {
	var b strings.Builder
	if r.Label != "" {
		b.WriteString(r.Label)
		b.WriteByte(' ')
	}
	b.WriteString(r.Head.String())
	b.WriteString(" :- ")
	for i, t := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Atoms returns the predicate atoms of the rule body, in order.
func (r *Rule) Atoms() []*Atom {
	var out []*Atom
	for _, t := range r.Body {
		if a, ok := t.(*Atom); ok {
			out = append(out, a)
		}
	}
	return out
}

// LinkAtom returns the rule's link literal, or nil if there is none.
func (r *Rule) LinkAtom() *Atom {
	for _, a := range r.Atoms() {
		if a.Link {
			return a
		}
	}
	return nil
}

// IsLocal reports whether every atom in the rule (head included) has the
// same location-specifier variable (Definition 3).
func (r *Rule) IsLocal() bool {
	loc := r.Head.LocVar()
	if loc == "" {
		if c, ok := r.Head.LocArg().(*Const); !ok || c.Value.Kind() != val.KindAddr {
			return false
		}
	}
	for _, a := range r.Atoms() {
		if a.LocVar() != loc {
			return false
		}
	}
	return true
}

// ExprPos returns the source position of an expression node.
func ExprPos(e Expr) Pos {
	switch x := e.(type) {
	case *Var:
		return x.Pos
	case *Const:
		return x.Pos
	case *BinOp:
		return x.Pos
	case *Call:
		return x.Pos
	case *Agg:
		return x.Pos
	}
	return Pos{}
}

// TermPos returns the source position of a body term.
func TermPos(t Term) Pos {
	switch x := t.(type) {
	case *Atom:
		return x.Pos
	case *Assign:
		return x.Pos
	case *Select:
		return x.Pos
	}
	return Pos{}
}

// Vars returns the set of variable names appearing in an expression tree.
func Vars(e Expr) map[string]bool {
	out := map[string]bool{}
	collectVars(e, out)
	return out
}

func collectVars(e Expr, out map[string]bool) {
	switch x := e.(type) {
	case *Var:
		out[x.Name] = true
	case *BinOp:
		collectVars(x.L, out)
		collectVars(x.R, out)
	case *Call:
		for _, a := range x.Args {
			collectVars(a, out)
		}
	case *Agg:
		out[x.Var] = true
	}
}

// Clone returns a deep copy of the rule. Rewrites in the planner mutate
// copies rather than the parsed program.
func (r *Rule) Clone() *Rule {
	nr := &Rule{Label: r.Label, Head: *cloneAtom(&r.Head), Pos: r.Pos}
	for _, t := range r.Body {
		nr.Body = append(nr.Body, cloneTerm(t))
	}
	return nr
}

func cloneTerm(t Term) Term {
	switch x := t.(type) {
	case *Atom:
		return cloneAtom(x)
	case *Assign:
		return &Assign{Var: x.Var, Expr: cloneExpr(x.Expr), Pos: x.Pos}
	case *Select:
		return &Select{Cond: cloneExpr(x.Cond), Pos: x.Pos}
	}
	panic(fmt.Sprintf("ast: unknown term %T", t))
}

func cloneAtom(a *Atom) *Atom {
	na := &Atom{Pred: a.Pred, Link: a.Link, Args: make([]Expr, len(a.Args)), Pos: a.Pos}
	for i, e := range a.Args {
		na.Args[i] = cloneExpr(e)
	}
	return na
}

func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Var:
		return &Var{Name: x.Name, Loc: x.Loc, Pos: x.Pos}
	case *Const:
		return &Const{Value: x.Value, Pos: x.Pos}
	case *BinOp:
		return &BinOp{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R), Pos: x.Pos}
	case *Call:
		nc := &Call{Name: x.Name, Args: make([]Expr, len(x.Args)), Pos: x.Pos}
		for i, a := range x.Args {
			nc.Args[i] = cloneExpr(a)
		}
		return nc
	case *Agg:
		return &Agg{Func: x.Func, Var: x.Var, Pos: x.Pos}
	}
	panic(fmt.Sprintf("ast: unknown expr %T", e))
}

// String renders the whole program in parseable NDlog syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, m := range p.Materialized {
		fmt.Fprintf(&b, "materialize(%s, %s, %s, keys(", m.Name, lifetimeStr(m.Lifetime), sizeStr(m.MaxSize))
		for i, k := range m.Keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", k+1)
		}
		b.WriteString(")).\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	if p.Query != nil {
		b.WriteString("query ")
		b.WriteString(p.Query.String())
		b.WriteString(".\n")
	}
	return b.String()
}

func lifetimeStr(l float64) string {
	if l < 0 {
		return "infinity"
	}
	return fmt.Sprintf("%g", l)
}

func sizeStr(s int) string {
	if s <= 0 {
		return "infinity"
	}
	return fmt.Sprintf("%d", s)
}

// RuleByLabel returns the rule with the given label, or nil.
func (p *Program) RuleByLabel(label string) *Rule {
	for _, r := range p.Rules {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// Decl returns the table declaration for name, or nil.
func (p *Program) Decl(name string) *TableDecl {
	for _, m := range p.Materialized {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	np := &Program{Watches: append([]string(nil), p.Watches...)}
	for _, m := range p.Materialized {
		mm := *m
		mm.Keys = append([]int(nil), m.Keys...)
		np.Materialized = append(np.Materialized, &mm)
	}
	for _, r := range p.Rules {
		np.Rules = append(np.Rules, r.Clone())
	}
	np.Facts = append(np.Facts, p.Facts...)
	np.FactPos = append(np.FactPos, p.FactPos...)
	if p.Query != nil {
		np.Query = cloneAtom(p.Query)
	}
	return np
}
