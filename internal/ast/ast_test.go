package ast

import (
	"strings"
	"testing"

	"ndlog/internal/val"
)

func v(name string) *Var   { return &Var{Name: name} }
func c(x val.Value) *Const { return &Const{Value: x} }
func atom(pred string, args ...Expr) Atom {
	return Atom{Pred: pred, Args: args}
}

func TestAtomString(t *testing.T) {
	a := atom("path", v("S"), v("D"), c(val.NewInt(3)))
	if got := a.String(); got != "path(@S,D,3)" {
		t.Errorf("String = %q", got)
	}
	a.Link = true
	if got := a.String(); got != "#path(@S,D,3)" {
		t.Errorf("link String = %q", got)
	}
	b := atom("p", c(val.NewAddr("n1")))
	if got := b.String(); got != "p(@n1)" {
		t.Errorf("addr-const loc String = %q", got)
	}
	empty := Atom{Pred: "e"}
	if empty.LocArg() != nil {
		t.Error("LocArg of empty atom should be nil")
	}
	if empty.LocVar() != "" {
		t.Error("LocVar of empty atom should be empty")
	}
}

func TestRuleHelpers(t *testing.T) {
	link := &Atom{Pred: "link", Link: true, Args: []Expr{v("S"), v("D"), v("C")}}
	pathAtom := &Atom{Pred: "path", Args: []Expr{v("S"), v("D")}}
	r := &Rule{
		Label: "R",
		Head:  atom("p", v("S"), v("C")),
		Body: []Term{
			link,
			pathAtom,
			&Assign{Var: "X", Expr: &BinOp{Op: OpAdd, L: v("C"), R: c(val.NewInt(1))}},
			&Select{Cond: &BinOp{Op: OpLt, L: v("X"), R: c(val.NewInt(9))}},
		},
	}
	if got := len(r.Atoms()); got != 2 {
		t.Errorf("Atoms = %d", got)
	}
	if la := r.LinkAtom(); la != link {
		t.Errorf("LinkAtom = %v", la)
	}
	if !r.IsLocal() {
		t.Error("all atoms at @S: should be local")
	}
	pathAtom.Args[0] = v("D")
	if r.IsLocal() {
		t.Error("atoms at different locations: should be non-local")
	}
	want := "R p(@S,C) :- #link(@S,D,C), path(@D,D), X := C + 1, X < 9."
	if got := r.String(); got != want {
		t.Errorf("Rule.String:\n got %q\nwant %q", got, want)
	}
}

func TestIsLocalConstHead(t *testing.T) {
	// Head located at a constant address with matching body is not "local"
	// in the variable sense unless body matches; we require addr const.
	r := &Rule{
		Head: atom("p", c(val.NewAddr("a"))),
		Body: []Term{&Atom{Pred: "q", Args: []Expr{c(val.NewAddr("a"))}}},
	}
	// Head loc var is "" and body loc var is "" — treated as local since
	// both are address constants.
	if !r.IsLocal() {
		t.Error("const-addr-located rule should be local")
	}
	r2 := &Rule{
		Head: atom("p", c(val.NewInt(1))),
		Body: []Term{&Atom{Pred: "q", Args: []Expr{c(val.NewInt(1))}}},
	}
	if r2.IsLocal() {
		t.Error("non-address head loc must not be local")
	}
}

func TestVars(t *testing.T) {
	e := &BinOp{
		Op: OpAdd,
		L:  &Call{Name: "f_size", Args: []Expr{v("P")}},
		R:  &BinOp{Op: OpMul, L: v("A"), R: c(val.NewInt(2))},
	}
	got := Vars(e)
	for _, name := range []string{"P", "A"} {
		if !got[name] {
			t.Errorf("Vars missing %s: %v", name, got)
		}
	}
	if len(got) != 2 {
		t.Errorf("Vars = %v", got)
	}
	ag := Vars(&Agg{Func: AggMin, Var: "C"})
	if !ag["C"] {
		t.Error("Vars should include aggregate variable")
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "+" || OpEq.String() != "==" {
		t.Error("op names wrong")
	}
	if !strings.HasPrefix(Op(200).String(), "op(") {
		t.Error("unknown op should render numerically")
	}
	if !OpEq.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
}

func TestAggFuncByName(t *testing.T) {
	for _, name := range []string{"min", "max", "count", "sum"} {
		f, ok := AggFuncByName(name)
		if !ok || f.String() != name {
			t.Errorf("AggFuncByName(%q) = %v, %v", name, f, ok)
		}
	}
	if _, ok := AggFuncByName("avg"); ok {
		t.Error("avg should be unknown")
	}
	if !strings.HasPrefix(AggFunc(99).String(), "agg(") {
		t.Error("unknown agg should render numerically")
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{
		Materialized: []*TableDecl{
			{Name: "link", Lifetime: -1, Keys: []int{0, 1}},
			{Name: "cache", Lifetime: 60, MaxSize: 100, Keys: []int{0}},
		},
		Rules: []*Rule{{
			Head: atom("p", v("S")),
			Body: []Term{&Atom{Pred: "q", Args: []Expr{v("S")}}},
		}},
		Facts: []val.Tuple{val.NewTuple("link", val.NewAddr("a"), val.NewAddr("b"))},
		Query: &Atom{Pred: "p", Args: []Expr{v("S")}},
	}
	s := p.String()
	for _, want := range []string{
		"materialize(link, infinity, infinity, keys(1,2)).",
		"materialize(cache, 60, 100, keys(1)).",
		"p(@S) :- q(@S).",
		"link(a,b).",
		"query p(@S).",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Program.String missing %q:\n%s", want, s)
		}
	}
}

func TestProgramLookupsAndClone(t *testing.T) {
	p := &Program{
		Materialized: []*TableDecl{{Name: "link", Keys: []int{0}}},
		Rules: []*Rule{{Label: "R1",
			Head: atom("p", v("S")),
			Body: []Term{&Atom{Pred: "q", Args: []Expr{v("S")}}},
		}},
		Watches: []string{"p"},
	}
	if p.Decl("link") == nil || p.Decl("missing") != nil {
		t.Error("Decl lookup wrong")
	}
	if p.RuleByLabel("R1") == nil || p.RuleByLabel("R9") != nil {
		t.Error("RuleByLabel lookup wrong")
	}
	cl := p.Clone()
	cl.Rules[0].Head.Pred = "zz"
	cl.Materialized[0].Keys[0] = 5
	if p.Rules[0].Head.Pred != "p" || p.Materialized[0].Keys[0] != 0 {
		t.Error("Clone shares structure")
	}
}
