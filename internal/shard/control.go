package shard

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ndlog/internal/val"
)

// Control-plane wire format. Frames ride the same varint/TLV encoding
// as data tuples (internal/val): strings are length-prefixed, integers
// are uvarints, and gathered tuples are encoded with val.AppendTuple —
// so the control plane needs no codec of its own and benefits from the
// same fuzzed decoders. One frame per datagram:
//
//	frame  := kind(byte) body
//	hello  := shard(uvarint) nbook(uvarint) {node(string) addr(string)}*
//	book   := nbook(uvarint) {node(string) addr(string)}*
//	ready  := shard(uvarint)
//	start  := ε
//	idle   := shard(uvarint) seq(uvarint) activity(uvarint) stats
//	query  := req(uvarint) pred(string)
//	tuples := shard(uvarint) req(uvarint) chunk(uvarint) nchunks(uvarint)
//	          count(uvarint) tuple*
//	seed   := ε
//	stop   := ε
//	bye    := shard(uvarint) stats
//	pong   := ε
//	stats  := sentB sentM recvB recvM dropped (uvarints)
//
// Kind bytes start at 0x81, disjoint from the engine's data-message
// kinds (1, 2) — a control frame mis-delivered to a data socket is
// rejected as corrupt, and vice versa. Every frame is idempotent:
// both sides resend until acknowledged by the protocol's next phase,
// which is all the reliability loopback/LAN UDP needs.
type frameKind byte

const (
	kindHello  frameKind = 0x81 // worker → coord: shard's node address book
	kindBook   frameKind = 0x82 // coord → worker: merged global book
	kindReady  frameKind = 0x83 // worker → coord: book installed
	kindStart  frameKind = 0x84 // coord → worker: seed home facts, go
	kindIdle   frameKind = 0x85 // worker → coord: periodic activity report
	kindQuery  frameKind = 0x86 // coord → worker: gather a predicate
	kindTuples frameKind = 0x87 // worker → coord: one chunk of results
	kindSeed   frameKind = 0x88 // coord → worker: re-push home facts
	kindStop   frameKind = 0x89 // coord → worker: shut down
	kindBye    frameKind = 0x8A // worker → coord: final stats, exiting
	kindPong   frameKind = 0x8B // coord → worker: idle-report ack (liveness)
)

// maxGatherChunks bounds the per-shard chunk count a tuples frame may
// announce (decoder rejects more; see decodeFrame).
const maxGatherChunks = 1 << 16

// netStats is the traffic counter block shared by idle and bye frames.
type netStats struct {
	SentBytes    int64
	SentMessages int64
	RecvBytes    int64
	RecvMessages int64
	Dropped      int64
}

// frame is one decoded control message; unused fields are zero.
type frame struct {
	kind frameKind
	// shard identifies the sender (worker → coord frames).
	shard int
	// book carries node → "host:port" entries (hello, book).
	book map[string]string
	// seq, activity: idle report ordering and the runner's activity
	// counter.
	seq      uint64
	activity int64
	stats    netStats
	// req, pred: query correlation id and predicate.
	req  uint64
	pred string
	// chunk/nchunks/tuples: one gather response chunk.
	chunk   int
	nchunks int
	tuples  []val.Tuple
}

func appendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

func appendBook(dst []byte, book map[string]string) []byte {
	dst = appendUvarint(dst, uint64(len(book)))
	// Deterministic order keeps frames byte-stable for tests.
	keys := make([]string, 0, len(book))
	for k := range book {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = val.AppendString(dst, k)
		dst = val.AppendString(dst, book[k])
	}
	return dst
}

func appendStats(dst []byte, s netStats) []byte {
	dst = appendUvarint(dst, uint64(s.SentBytes))
	dst = appendUvarint(dst, uint64(s.SentMessages))
	dst = appendUvarint(dst, uint64(s.RecvBytes))
	dst = appendUvarint(dst, uint64(s.RecvMessages))
	return appendUvarint(dst, uint64(s.Dropped))
}

// encodeFrame marshals f. The zero-body kinds encode as a single byte.
func encodeFrame(f frame) []byte {
	buf := []byte{byte(f.kind)}
	switch f.kind {
	case kindHello:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendBook(buf, f.book)
	case kindBook:
		buf = appendBook(buf, f.book)
	case kindReady:
		buf = appendUvarint(buf, uint64(f.shard))
	case kindStart, kindStop, kindSeed, kindPong:
	case kindIdle:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.seq)
		buf = appendUvarint(buf, uint64(f.activity))
		buf = appendStats(buf, f.stats)
	case kindQuery:
		buf = appendUvarint(buf, f.req)
		buf = val.AppendString(buf, f.pred)
	case kindTuples:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.req)
		buf = appendUvarint(buf, uint64(f.chunk))
		buf = appendUvarint(buf, uint64(f.nchunks))
		buf = appendUvarint(buf, uint64(len(f.tuples)))
		for _, t := range f.tuples {
			buf = val.AppendTuple(buf, t)
		}
	case kindBye:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendStats(buf, f.stats)
	}
	return buf
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("shard: corrupt control frame (uvarint)")
		return 0
	}
	d.b = d.b[n:]
	return x
}

func (d *decoder) string() string {
	if d.err != nil {
		return ""
	}
	s, n, err := val.DecodeString(d.b)
	if err != nil {
		d.err = fmt.Errorf("shard: corrupt control frame: %w", err)
		return ""
	}
	d.b = d.b[n:]
	return s
}

func (d *decoder) book() map[string]string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Each entry is at least two bytes; cap preallocation by payload.
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("shard: corrupt control frame (book size)")
		return nil
	}
	book := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := d.string()
		v := d.string()
		if d.err != nil {
			return nil
		}
		book[k] = v
	}
	return book
}

func (d *decoder) stats() netStats {
	return netStats{
		SentBytes:    int64(d.uvarint()),
		SentMessages: int64(d.uvarint()),
		RecvBytes:    int64(d.uvarint()),
		RecvMessages: int64(d.uvarint()),
		Dropped:      int64(d.uvarint()),
	}
}

// decodeFrame unmarshals one control frame. Decoded strings and tuples
// never alias b (val's copy-on-decode invariant), so callers may reuse
// the receive buffer.
func decodeFrame(b []byte) (frame, error) {
	if len(b) == 0 {
		return frame{}, fmt.Errorf("shard: empty control frame")
	}
	f := frame{kind: frameKind(b[0])}
	d := &decoder{b: b[1:]}
	switch f.kind {
	case kindHello:
		f.shard = int(d.uvarint())
		f.book = d.book()
	case kindBook:
		f.book = d.book()
	case kindReady:
		f.shard = int(d.uvarint())
	case kindStart, kindStop, kindSeed, kindPong:
	case kindIdle:
		f.shard = int(d.uvarint())
		f.seq = d.uvarint()
		f.activity = int64(d.uvarint())
		f.stats = d.stats()
	case kindQuery:
		f.req = d.uvarint()
		f.pred = d.string()
	case kindTuples:
		f.shard = int(d.uvarint())
		f.req = d.uvarint()
		f.chunk = int(d.uvarint())
		f.nchunks = int(d.uvarint())
		// Bound the chunk geometry before anything allocates from it: a
		// corrupt or hostile datagram must not drive make() or a slice
		// index (maxGatherChunks × tupleChunkSz ≈ 2 GiB of results, far
		// beyond any real gather).
		if d.err == nil && (f.nchunks < 1 || f.nchunks > maxGatherChunks ||
			f.chunk < 0 || f.chunk >= f.nchunks) {
			d.err = fmt.Errorf("shard: corrupt control frame (chunk %d of %d)", f.chunk, f.nchunks)
		}
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)) {
			d.err = fmt.Errorf("shard: corrupt control frame (tuple count)")
		}
		for i := uint64(0); d.err == nil && i < n; i++ {
			t, m, err := val.DecodeTuple(d.b)
			if err != nil {
				d.err = fmt.Errorf("shard: corrupt control frame: %w", err)
				break
			}
			d.b = d.b[m:]
			f.tuples = append(f.tuples, t)
		}
	case kindBye:
		f.shard = int(d.uvarint())
		f.stats = d.stats()
	default:
		return frame{}, fmt.Errorf("shard: unknown control frame kind 0x%x", b[0])
	}
	if d.err != nil {
		return frame{}, d.err
	}
	return f, nil
}
