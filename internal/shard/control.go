package shard

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ndlog/internal/val"
)

// Control-plane wire format. Frames ride the same varint/TLV encoding
// as data tuples (internal/val): strings are length-prefixed, integers
// are uvarints, and gathered tuples are encoded with val.AppendTuple —
// so the control plane needs no codec of its own and benefits from the
// same fuzzed decoders. One frame per datagram:
//
//	frame   := kind(byte) body
//	hello   := shard(uvarint) nbook(uvarint) {node(string) addr(string)}*
//	book    := epoch(uvarint) nbook(uvarint) {node(string) addr(string)}*
//	ready   := shard(uvarint) epoch(uvarint)
//	start   := ε
//	idle    := shard(uvarint) epoch(uvarint) seq(uvarint)
//	           activity(uvarint) stats
//	           nsent(uvarint) {node(string) count(uvarint)}*
//	query   := req(uvarint) pred(string)
//	tuples  := shard(uvarint) req(uvarint) chunk(uvarint) nchunks(uvarint)
//	           count(uvarint) tuple*
//	seed    := ε
//	stop    := ε
//	bye     := shard(uvarint) stats
//	pong    := ε
//	release := req(uvarint) epoch(uvarint) node(string)
//	state   := shard(uvarint) req(uvarint) chunk(uvarint) nchunks(uvarint)
//	           blob(string)
//	adopt   := req(uvarint) epoch(uvarint) node(string) chunk(uvarint)
//	           nchunks(uvarint) blob(string)
//	adopted := shard(uvarint) req(uvarint) node(string) addr(string)
//	resume  := epoch(uvarint) nnodes(uvarint) {node(string)}*
//	resumed := shard(uvarint) epoch(uvarint)
//	rederive  := req(uvarint) epoch(uvarint) nnodes(uvarint) {node(string)}*
//	rederived := shard(uvarint) req(uvarint)
//	stats   := sentB sentM recvB recvM dropped fenced (uvarints)
//
// Kind bytes start at 0x81, disjoint from the engine's data-message
// kinds (1, 2) and the netrun data envelope (0x7E) — a control frame
// mis-delivered to a data socket is rejected as corrupt, and vice
// versa. Every frame is idempotent: both sides resend until
// acknowledged by the protocol's next phase, which is all the
// reliability loopback/LAN UDP needs.
//
// Epochs version the membership view: the coordinator bumps the epoch
// on every rebalance, workers echo it in ready/idle/resumed frames, and
// the data plane fences datagrams from other epochs (internal/netrun).
type frameKind byte

const (
	kindHello  frameKind = 0x81 // worker → coord: shard's node address book
	kindBook   frameKind = 0x82 // coord → worker: merged global book, epoch-stamped
	kindReady  frameKind = 0x83 // worker → coord: book of that epoch installed
	kindStart  frameKind = 0x84 // coord → worker: seed home facts, go
	kindIdle   frameKind = 0x85 // worker → coord: periodic activity report
	kindQuery  frameKind = 0x86 // coord → worker: gather a predicate
	kindTuples frameKind = 0x87 // worker → coord: one chunk of results
	kindSeed   frameKind = 0x88 // coord → worker: re-push home facts
	kindStop   frameKind = 0x89 // coord → worker: shut down
	kindBye    frameKind = 0x8A // worker → coord: final stats, exiting
	kindPong   frameKind = 0x8B // coord → worker: idle-report ack (liveness)

	// Rebalance frames (epoch cutover; see coord.go Rebalance).
	kindRelease frameKind = 0x8C // coord → worker: export + drop a migrating node
	kindState   frameKind = 0x8D // worker → coord: one chunk of exported state
	kindAdopt   frameKind = 0x8E // coord → worker: host this node, one state chunk
	kindAdopted frameKind = 0x8F // worker → coord: node bound, here is its address
	kindResume  frameKind = 0x90 // coord → worker: cutover done, import + reseed
	kindResumed frameKind = 0x91 // worker → coord: resumed in the new epoch

	// Recovery frames (crash respawn and loss-adaptive reseed; see
	// coord.go Respawn and RecoverLoss).
	kindRederive  frameKind = 0x92 // coord → worker: re-send derivations toward these nodes
	kindRederived frameKind = 0x93 // worker → coord: rederivation sweep done
)

// maxGatherChunks bounds the per-shard chunk count a tuples frame may
// announce (decoder rejects more; see decodeFrame).
const maxGatherChunks = 1 << 16

// netStats is the traffic counter block shared by idle and bye frames.
// It mirrors netrun.Stats field-for-field so the two convert directly.
type netStats struct {
	SentBytes    int64
	SentMessages int64
	RecvBytes    int64
	RecvMessages int64
	Dropped      int64
	Fenced       int64
}

// frame is one decoded control message; unused fields are zero.
type frame struct {
	kind frameKind
	// shard identifies the sender (worker → coord frames).
	shard int
	// epoch is the membership view a frame belongs to (book, ready,
	// idle, release, adopt, resume, resumed).
	epoch uint64
	// book carries node → "host:port" entries (hello, book).
	book map[string]string
	// seq, activity: idle report ordering and the runner's activity
	// counter.
	seq      uint64
	activity int64
	stats    netStats
	// sentTo is the runner's per-destination datagram tally (idle) —
	// the attribution half of the sent==recv ledger.
	sentTo map[string]int64
	// req, pred: query correlation id and predicate (query); req also
	// correlates release/state and adopt/adopted exchanges.
	req  uint64
	pred string
	// node names the migrating node (release, adopt, adopted); nodes
	// lists every node moved by a cutover (resume) or targeted by a
	// rederivation sweep (rederive).
	node  string
	nodes []string
	// addr is the migrated node's new data address (adopted).
	addr string
	// chunk/nchunks/tuples: one gather response chunk; chunk/nchunks
	// also frame the blob chunks of state and adopt.
	chunk   int
	nchunks int
	tuples  []val.Tuple
	// blob is one chunk of an exported node state (state, adopt).
	blob []byte
}

func appendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

func appendBook(dst []byte, book map[string]string) []byte {
	dst = appendUvarint(dst, uint64(len(book)))
	// Deterministic order keeps frames byte-stable for tests.
	keys := make([]string, 0, len(book))
	for k := range book {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = val.AppendString(dst, k)
		dst = val.AppendString(dst, book[k])
	}
	return dst
}

func appendStats(dst []byte, s netStats) []byte {
	dst = appendUvarint(dst, uint64(s.SentBytes))
	dst = appendUvarint(dst, uint64(s.SentMessages))
	dst = appendUvarint(dst, uint64(s.RecvBytes))
	dst = appendUvarint(dst, uint64(s.RecvMessages))
	dst = appendUvarint(dst, uint64(s.Dropped))
	return appendUvarint(dst, uint64(s.Fenced))
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendSentTo(dst []byte, sentTo map[string]int64) []byte {
	dst = appendUvarint(dst, uint64(len(sentTo)))
	keys := make([]string, 0, len(sentTo))
	for k := range sentTo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = val.AppendString(dst, k)
		dst = appendUvarint(dst, uint64(sentTo[k]))
	}
	return dst
}

// encodeFrame marshals f. The zero-body kinds encode as a single byte.
func encodeFrame(f frame) []byte {
	buf := []byte{byte(f.kind)}
	switch f.kind {
	case kindHello:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendBook(buf, f.book)
	case kindBook:
		buf = appendUvarint(buf, f.epoch)
		buf = appendBook(buf, f.book)
	case kindReady:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.epoch)
	case kindStart, kindStop, kindSeed, kindPong:
	case kindIdle:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.epoch)
		buf = appendUvarint(buf, f.seq)
		buf = appendUvarint(buf, uint64(f.activity))
		buf = appendStats(buf, f.stats)
		buf = appendSentTo(buf, f.sentTo)
	case kindQuery:
		buf = appendUvarint(buf, f.req)
		buf = val.AppendString(buf, f.pred)
	case kindTuples:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.req)
		buf = appendUvarint(buf, uint64(f.chunk))
		buf = appendUvarint(buf, uint64(f.nchunks))
		buf = appendUvarint(buf, uint64(len(f.tuples)))
		for _, t := range f.tuples {
			buf = val.AppendTuple(buf, t)
		}
	case kindBye:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendStats(buf, f.stats)
	case kindRelease:
		buf = appendUvarint(buf, f.req)
		buf = appendUvarint(buf, f.epoch)
		buf = val.AppendString(buf, f.node)
	case kindState:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.req)
		buf = appendUvarint(buf, uint64(f.chunk))
		buf = appendUvarint(buf, uint64(f.nchunks))
		buf = appendBytes(buf, f.blob)
	case kindAdopt:
		buf = appendUvarint(buf, f.req)
		buf = appendUvarint(buf, f.epoch)
		buf = val.AppendString(buf, f.node)
		buf = appendUvarint(buf, uint64(f.chunk))
		buf = appendUvarint(buf, uint64(f.nchunks))
		buf = appendBytes(buf, f.blob)
	case kindAdopted:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.req)
		buf = val.AppendString(buf, f.node)
		buf = val.AppendString(buf, f.addr)
	case kindResume:
		buf = appendUvarint(buf, f.epoch)
		buf = appendUvarint(buf, uint64(len(f.nodes)))
		for _, n := range f.nodes {
			buf = val.AppendString(buf, n)
		}
	case kindResumed:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.epoch)
	case kindRederive:
		buf = appendUvarint(buf, f.req)
		buf = appendUvarint(buf, f.epoch)
		buf = appendUvarint(buf, uint64(len(f.nodes)))
		for _, n := range f.nodes {
			buf = val.AppendString(buf, n)
		}
	case kindRederived:
		buf = appendUvarint(buf, uint64(f.shard))
		buf = appendUvarint(buf, f.req)
	}
	return buf
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("shard: corrupt control frame (uvarint)")
		return 0
	}
	d.b = d.b[n:]
	return x
}

func (d *decoder) string() string {
	if d.err != nil {
		return ""
	}
	s, n, err := val.DecodeString(d.b)
	if err != nil {
		d.err = fmt.Errorf("shard: corrupt control frame: %w", err)
		return ""
	}
	d.b = d.b[n:]
	return s
}

func (d *decoder) book() map[string]string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Each entry is at least two bytes; cap preallocation by payload.
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("shard: corrupt control frame (book size)")
		return nil
	}
	book := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := d.string()
		v := d.string()
		if d.err != nil {
			return nil
		}
		book[k] = v
	}
	return book
}

func (d *decoder) stats() netStats {
	return netStats{
		SentBytes:    int64(d.uvarint()),
		SentMessages: int64(d.uvarint()),
		RecvBytes:    int64(d.uvarint()),
		RecvMessages: int64(d.uvarint()),
		Dropped:      int64(d.uvarint()),
		Fenced:       int64(d.uvarint()),
	}
}

// sentTo decodes the per-destination tally block; nil when empty, so
// frames without tallies round-trip to their zero field.
func (d *decoder) sentTo() map[string]int64 {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	// Each entry is at least two bytes; cap preallocation by payload.
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("shard: corrupt control frame (sentTo size)")
		return nil
	}
	out := make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		k := d.string()
		v := d.uvarint()
		if d.err != nil {
			return nil
		}
		out[k] = int64(v)
	}
	return out
}

// bytes decodes a length-prefixed blob; the result never aliases the
// receive buffer (copy-on-decode, like every decoded string and tuple).
func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("shard: corrupt control frame (blob size)")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[:n])
	d.b = d.b[n:]
	return out
}

// decodeFrame unmarshals one control frame. Decoded strings and tuples
// never alias b (val's copy-on-decode invariant), so callers may reuse
// the receive buffer.
func decodeFrame(b []byte) (frame, error) {
	if len(b) == 0 {
		return frame{}, fmt.Errorf("shard: empty control frame")
	}
	f := frame{kind: frameKind(b[0])}
	d := &decoder{b: b[1:]}
	switch f.kind {
	case kindHello:
		f.shard = int(d.uvarint())
		f.book = d.book()
	case kindBook:
		f.epoch = d.uvarint()
		f.book = d.book()
	case kindReady:
		f.shard = int(d.uvarint())
		f.epoch = d.uvarint()
	case kindStart, kindStop, kindSeed, kindPong:
	case kindIdle:
		f.shard = int(d.uvarint())
		f.epoch = d.uvarint()
		f.seq = d.uvarint()
		f.activity = int64(d.uvarint())
		f.stats = d.stats()
		f.sentTo = d.sentTo()
	case kindQuery:
		f.req = d.uvarint()
		f.pred = d.string()
	case kindTuples:
		f.shard = int(d.uvarint())
		f.req = d.uvarint()
		f.chunk = int(d.uvarint())
		f.nchunks = int(d.uvarint())
		// Bound the chunk geometry before anything allocates from it: a
		// corrupt or hostile datagram must not drive make() or a slice
		// index (maxGatherChunks × tupleChunkSz ≈ 2 GiB of results, far
		// beyond any real gather).
		if d.err == nil && (f.nchunks < 1 || f.nchunks > maxGatherChunks ||
			f.chunk < 0 || f.chunk >= f.nchunks) {
			d.err = fmt.Errorf("shard: corrupt control frame (chunk %d of %d)", f.chunk, f.nchunks)
		}
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)) {
			d.err = fmt.Errorf("shard: corrupt control frame (tuple count)")
		}
		for i := uint64(0); d.err == nil && i < n; i++ {
			t, m, err := val.DecodeTuple(d.b)
			if err != nil {
				d.err = fmt.Errorf("shard: corrupt control frame: %w", err)
				break
			}
			d.b = d.b[m:]
			f.tuples = append(f.tuples, t)
		}
	case kindBye:
		f.shard = int(d.uvarint())
		f.stats = d.stats()
	case kindRelease:
		f.req = d.uvarint()
		f.epoch = d.uvarint()
		f.node = d.string()
	case kindState:
		f.shard = int(d.uvarint())
		f.req = d.uvarint()
		f.chunk = int(d.uvarint())
		f.nchunks = int(d.uvarint())
		if d.err == nil && (f.nchunks < 1 || f.nchunks > maxGatherChunks ||
			f.chunk < 0 || f.chunk >= f.nchunks) {
			d.err = fmt.Errorf("shard: corrupt control frame (chunk %d of %d)", f.chunk, f.nchunks)
		}
		f.blob = d.bytes()
	case kindAdopt:
		f.req = d.uvarint()
		f.epoch = d.uvarint()
		f.node = d.string()
		f.chunk = int(d.uvarint())
		f.nchunks = int(d.uvarint())
		if d.err == nil && (f.nchunks < 1 || f.nchunks > maxGatherChunks ||
			f.chunk < 0 || f.chunk >= f.nchunks) {
			d.err = fmt.Errorf("shard: corrupt control frame (chunk %d of %d)", f.chunk, f.nchunks)
		}
		f.blob = d.bytes()
	case kindAdopted:
		f.shard = int(d.uvarint())
		f.req = d.uvarint()
		f.node = d.string()
		f.addr = d.string()
	case kindResume:
		f.epoch = d.uvarint()
		nn := d.uvarint()
		if d.err == nil && nn > uint64(len(d.b)) {
			d.err = fmt.Errorf("shard: corrupt control frame (node count)")
		}
		for i := uint64(0); d.err == nil && i < nn; i++ {
			f.nodes = append(f.nodes, d.string())
		}
	case kindResumed:
		f.shard = int(d.uvarint())
		f.epoch = d.uvarint()
	case kindRederive:
		f.req = d.uvarint()
		f.epoch = d.uvarint()
		nn := d.uvarint()
		if d.err == nil && nn > uint64(len(d.b)) {
			d.err = fmt.Errorf("shard: corrupt control frame (node count)")
		}
		for i := uint64(0); d.err == nil && i < nn; i++ {
			f.nodes = append(f.nodes, d.string())
		}
	case kindRederived:
		f.shard = int(d.uvarint())
		f.req = d.uvarint()
	default:
		return frame{}, fmt.Errorf("shard: unknown control frame kind 0x%x", b[0])
	}
	if d.err != nil {
		return frame{}, d.err
	}
	return f, nil
}
