// Package shard deploys one NDlog program as N cooperating OS
// processes. It is the production-scale layer above internal/netrun:
// a Manifest partitions the program's node population into shards,
// each shard process (cmd/ndnode, or ndlog re-exec'd as a worker)
// hosts its nodes' UDP sockets through a netrun.Runner, and a
// Coordinator — reachable over a loopback/LAN UDP control socket —
// assembles the global address book, detects cross-process quiescence,
// gathers tuples and per-shard metrics, re-partitions the live fleet
// (Rebalance: epoch-versioned books, node state migration, stale-epoch
// fencing), and tears the deployment down.
//
// Control-plane frames ride the same varint/TLV wire encoding as data
// tuples (internal/val); see control.go for the frame grammar and
// DESIGN.md §4 for the handshake and quiescence protocol, and §5 for
// the epoch/fencing/migration protocol (Coordinator.Rebalance).
//
// Ownership: the Coordinator and Worker each own their control socket
// and goroutines; tuples crossing the control plane are decoded copies
// (never aliasing receive buffers), so gathered results stay valid
// after the deployment is closed. The Manifest is read-only after
// Validate.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"ndlog/internal/ast"
	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/parser"
)

// Options is the engine configuration carried by a manifest, as text so
// manifests stay editable by operators. Every shard must run the same
// options — the evaluation semantics are program-wide.
type Options struct {
	// Mode is the evaluation mode: "psn" (default), "bsn", or "sn".
	Mode string `json:"mode,omitempty"`
	// AggSel enables aggregate selections (Section 5.1.1).
	AggSel bool `json:"aggsel,omitempty"`
	// AggSelPreds restricts pruning to the listed source predicates.
	AggSelPreds []string `json:"aggsel_preds,omitempty"`
	// AggSelPeriod enables periodic aggregate selections (seconds).
	AggSelPeriod float64 `json:"aggsel_period,omitempty"`
	// ArenaIntern switches nodes to per-drain arena interning.
	ArenaIntern bool `json:"arena,omitempty"`
	// LossFirst > 0 makes each worker drop its first N outbound data
	// datagrams while still counting them as sent — deterministic fault
	// injection for exercising the coordinator's unbalanced-ledger
	// quiescence fallback and the reseed recovery path. Testing only.
	LossFirst int `json:"loss_first,omitempty"`
	// DataDir, when set, makes every worker persist its nodes' state
	// (WAL + snapshots, internal/durable): shard i keeps one store per
	// node under <DataDir>/shard-<i>, and a respawned worker recovers
	// warm from there instead of needing a coordinator reseed. Empty
	// disables durability. Relative paths resolve against each worker's
	// cwd, so spawned deployments should use absolute paths.
	DataDir string `json:"data_dir,omitempty"`
	// Fsync selects the WAL sync policy: "commit" (default — fsync
	// before any derived datagram leaves, so a crash cannot have
	// advertised state it will not remember), "interval" (periodic
	// background sync), or "none" (OS page cache only).
	Fsync string `json:"fsync,omitempty"`
	// SnapshotBytes rolls a node's WAL into a fresh snapshot once the
	// log outgrows this many bytes. 0 means the durable package default;
	// negative disables snapshotting (the WAL grows unbounded).
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// Parallelism bounds each worker's evaluation pool: how many of its
	// local nodes seed and rederive concurrently (receive loops are
	// already one goroutine per node). 0 means GOMAXPROCS, 1 forces
	// sequential walks; negative values are rejected at validation.
	Parallelism int `json:"parallelism,omitempty"`
	// PSNBatch makes every node's PSN drains batch-at-a-time: deltas
	// are stored eagerly and their trigger strands flushed every this
	// many actions (engine Options.PSNBatch). 0 or 1 keep the reference
	// tuple-at-a-time pipeline; the fixpoints are byte-identical either
	// way. Negative values are rejected at validation.
	PSNBatch int `json:"psn_batch,omitempty"`
	// SharedSockets routes each worker's nodes through a small shared
	// socket set drained by a bounded demux pool instead of one socket
	// and goroutine per node (netrun Config.SharedSockets). Requires
	// every node bind address in the manifest to stay ephemeral ("").
	SharedSockets bool `json:"shared_sockets,omitempty"`
	// GroupCommit folds each worker's per-node WALs into one shard-wide
	// log, collapsing a drain's fsyncs from one per node to one per
	// shard (netrun Config.GroupCommit). Only meaningful with DataDir.
	GroupCommit bool `json:"group_commit,omitempty"`
}

// Durable converts the manifest's durability stanza to the durable
// package's options. An empty returned dir means durability is off.
func (o Options) Durable() (string, durable.Options, error) {
	d := durable.Options{SnapshotBytes: o.SnapshotBytes}
	switch o.Fsync {
	case "", "commit":
		d.Sync = durable.SyncCommit
	case "interval":
		d.Sync = durable.SyncInterval
	case "none":
		d.Sync = durable.SyncNone
	default:
		return "", durable.Options{}, fmt.Errorf("unknown fsync policy %q (want commit, interval, or none)", o.Fsync)
	}
	return o.DataDir, d, nil
}

// Engine converts the manifest options to engine options.
func (o Options) Engine() (engine.Options, error) {
	mode, err := engine.ParseMode(o.Mode)
	if err != nil {
		return engine.Options{}, err
	}
	return engine.Options{
		Mode:         mode,
		AggSel:       o.AggSel,
		AggSelPreds:  o.AggSelPreds,
		AggSelPeriod: o.AggSelPeriod,
		ArenaIntern:  o.ArenaIntern,
		Parallelism:  o.Parallelism,
		PSNBatch:     o.PSNBatch,
	}, nil
}

// ShardSpec assigns a slice of the node population to one shard.
type ShardSpec struct {
	// ID is the shard's identity, unique within the manifest.
	ID int `json:"id"`
	// Nodes maps each hosted NDlog node ID to its UDP bind address.
	// "" binds an ephemeral port (on Host, or loopback), resolved at
	// startup through the coordinator handshake; a "host:port" string
	// pins the socket for static multi-machine deployments, where peers
	// can be reached without a handshake at all.
	Nodes map[string]string `json:"nodes"`
	// Host is the bind host for the shard's ephemeral node sockets (the
	// "" entries in Nodes): loopback when empty, a LAN interface address
	// when the shard must be reachable from other machines without
	// pinning every node's port.
	Host string `json:"host,omitempty"`
}

// NodeIDs returns the shard's node IDs, sorted.
func (s *ShardSpec) NodeIDs() []string {
	out := make([]string, 0, len(s.Nodes))
	for id := range s.Nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Manifest describes one sharded deployment: the program, the engine
// options, and the shard → node → address book.
type Manifest struct {
	// Program is a path to the NDlog source file. Used when Source is
	// empty; relative paths resolve against the worker's cwd, so
	// spawned deployments prefer Source.
	Program string `json:"program,omitempty"`
	// Source is the NDlog program source, inline. Inline source makes a
	// manifest self-contained: every shard of a spawned deployment
	// parses the identical text.
	Source string `json:"source,omitempty"`
	// Options is the engine configuration, shared by all shards.
	Options Options `json:"options"`
	// Shards is the partition. Every node ID appears in exactly one
	// shard.
	Shards []ShardSpec `json:"shards"`
}

// Load reads and validates a manifest from a JSON file.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	return &m, nil
}

// Save writes the manifest as indented JSON.
func (m *Manifest) Save(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Validate checks manifest invariants: at least one shard, unique shard
// IDs, no node hosted twice, a program present.
func (m *Manifest) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("no shards")
	}
	if m.Source == "" && m.Program == "" {
		return fmt.Errorf("neither source nor program set")
	}
	if _, _, err := m.Options.Durable(); err != nil {
		return err
	}
	if m.Options.Parallelism < 0 {
		return fmt.Errorf("negative parallelism %d", m.Options.Parallelism)
	}
	if m.Options.PSNBatch < 0 {
		return fmt.Errorf("negative psn_batch %d", m.Options.PSNBatch)
	}
	ids := map[int]bool{}
	owner := map[string]int{}
	for _, s := range m.Shards {
		if ids[s.ID] {
			return fmt.Errorf("duplicate shard id %d", s.ID)
		}
		ids[s.ID] = true
		if len(s.Nodes) == 0 {
			return fmt.Errorf("shard %d hosts no nodes", s.ID)
		}
		for n := range s.Nodes {
			if prev, ok := owner[n]; ok {
				return fmt.Errorf("node %q in shards %d and %d", n, prev, s.ID)
			}
			if m.Options.SharedSockets && s.Nodes[n] != "" {
				return fmt.Errorf("shared_sockets forbids pinned bind address %q for node %q", s.Nodes[n], n)
			}
			owner[n] = s.ID
		}
	}
	return nil
}

// Shard returns the spec with the given ID, or nil.
func (m *Manifest) Shard(id int) *ShardSpec {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return &m.Shards[i]
		}
	}
	return nil
}

// NodeCount returns the total number of nodes across all shards.
func (m *Manifest) NodeCount() int {
	n := 0
	for i := range m.Shards {
		n += len(m.Shards[i].Nodes)
	}
	return n
}

// ParseProgram parses the manifest's program: Source if set, otherwise
// the Program file.
func (m *Manifest) ParseProgram() (*ast.Program, error) {
	src := m.Source
	if src == "" {
		b, err := os.ReadFile(m.Program)
		if err != nil {
			return nil, err
		}
		src = string(b)
	}
	return parser.Parse(src)
}

// Partition splits a node population into n shards, round-robin over
// the sorted IDs — deterministic, so every process that computes the
// partition from the same population agrees, and balanced to within
// one node. All bind addresses are left ephemeral ("").
func Partition(ids []string, n int) []ShardSpec {
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	specs := make([]ShardSpec, n)
	for i := range specs {
		specs[i] = ShardSpec{ID: i, Nodes: map[string]string{}}
	}
	for i, id := range sorted {
		specs[i%n].Nodes[id] = ""
	}
	return specs
}
