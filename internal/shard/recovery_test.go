package shard

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

// gatherKeys collects the deployment's shortestPath keys, sorted.
func gatherKeys(t *testing.T, coord *Coordinator) []string {
	t.Helper()
	tuples, err := coord.Tuples("shortestPath", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(tuples))
	for _, tu := range tuples {
		keys = append(keys, tu.Key())
	}
	sort.Strings(keys)
	return keys
}

// TestCrashRecovery is the durability acceptance test: a worker process
// is kill -9'd mid-deployment and respawned warm from its WAL +
// snapshot directory; the fleet must detect the death, fence the dead
// sockets under a new epoch, rebuild the cross-node derived state with
// targeted rederivation sweeps, and reach the fixpoint byte-identical
// to the centralized evaluator — with no coordinator reseed anywhere.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash e2e skipped in -short mode")
	}
	src := figure2Source()
	want := centralGroundTruth(t, src)

	dataDir := filepath.Join(t.TempDir(), "data")
	m := &Manifest{
		Source:  src,
		Options: Options{AggSel: true, DataDir: dataDir},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 3),
	}
	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(manifestPath); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	build := func(shardID int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
		cmd.Stderr = os.Stderr
		return cmd
	}
	if err := coord.Spawn(build); err != nil {
		t.Fatal(err)
	}
	if err := coord.WaitReady(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Converge once so the WALs hold real state before the crash.
	var got []string
	for attempt := 0; attempt < 4; attempt++ {
		if !coord.WaitQuiescent(400*time.Millisecond, 30*time.Second) {
			t.Fatal("deployment did not quiesce before crash")
		}
		got = gatherKeys(t, coord)
		if equalStrings(got, want) {
			break
		}
		if _, err := coord.RecoverLoss(400*time.Millisecond, 30*time.Second); err != nil {
			t.Fatalf("pre-crash loss recovery: %v", err)
		}
	}
	if !equalStrings(got, want) {
		t.Fatalf("no pre-crash fixpoint:\n got %v\nwant %v", got, want)
	}

	// kill -9 one worker: no bye, no flush beyond what WAL-before-wire
	// already guaranteed, sockets drop mid-epoch.
	victim := coord.Owner("c")
	if err := syscall.Kill(coord.cmds[victim].Process.Pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	// Liveness detection: the victim's idle reports stop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		dead := coord.DeadWorkers(400 * time.Millisecond)
		if len(dead) == 1 && dead[0] == victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %d not detected dead (got %v)", victim, dead)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Respawn warm from <dataDir>/shard-<victim>: snapshot + WAL replay,
	// epoch cutover, rederivation sweeps, ledger rebaseline.
	if err := coord.Respawn(victim, build, 400*time.Millisecond, 60*time.Second); err != nil {
		t.Fatalf("respawn: %v", err)
	}
	if got := coord.Epoch(); got != 2 {
		t.Errorf("epoch after respawn = %d, want 2", got)
	}

	// The fleet must reach the central fixpoint again without a reseed —
	// the recovery path, not a fleet-wide restart, is under test.
	for attempt := 0; attempt < 4; attempt++ {
		if !coord.WaitQuiescent(400*time.Millisecond, 30*time.Second) {
			t.Fatal("deployment did not quiesce after respawn")
		}
		got = gatherKeys(t, coord)
		if equalStrings(got, want) {
			break
		}
		if _, err := coord.RecoverLoss(400*time.Millisecond, 30*time.Second); err != nil {
			t.Fatalf("post-crash loss recovery: %v", err)
		}
	}
	if !equalStrings(got, want) {
		t.Errorf("fixpoint mismatch after crash recovery:\n got %v\nwant %v", got, want)
	}

	// Ledger-consistent rejoin: with the crash window's loss folded into
	// the slack, sent==recv accounting balances again.
	if !coord.LedgerBalanced() {
		t.Error("ledger not rebaselined after respawn")
	}

	if err := coord.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestLossAdaptiveRecovery covers the loss-adaptive recovery path with
// goroutine workers: injected datagram loss leaves specific shards'
// receive ledgers short, RecoverLoss identifies exactly those shards
// from the per-destination sent tallies, recovers them with a targeted
// seed + rederivation sweep (no fleet-wide reseed), and folds the
// measured deficit into the ledger slack — after which, unlike the
// Reseed path, the ledger balances again.
func TestLossAdaptiveRecovery(t *testing.T) {
	src := strings.ReplaceAll(figure2Source(), ", infinity, infinity,", ", 3600, infinity,")
	if src == figure2Source() {
		t.Fatal("soft-state rewrite did not apply")
	}
	want := centralGroundTruth(t, src)

	m := &Manifest{
		Source:  src,
		Options: Options{AggSel: true, LossFirst: 3},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 2),
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	done := make(chan error, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		go func() {
			done <- RunWorker(WorkerConfig{Manifest: m, ShardID: id, Coord: coord.ControlAddr()})
		}()
	}
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !coord.WaitQuiescent(300*time.Millisecond, 30*time.Second) {
		t.Fatal("quiescence not reached despite the loss fallback")
	}
	if coord.LedgerBalanced() {
		t.Fatal("ledger balanced despite injected loss")
	}

	// First recovery must attribute the injected loss to real victims.
	short, err := coord.RecoverLoss(300*time.Millisecond, 30*time.Second)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(short) == 0 {
		t.Fatal("no short shards found despite injected loss")
	}
	t.Logf("loss attributed to shards %v", short)

	var got []string
	for attempt := 0; attempt < 6; attempt++ {
		if !coord.WaitQuiescent(300*time.Millisecond, 20*time.Second) {
			t.Fatal("re-quiescence failed after recovery")
		}
		got = gatherKeys(t, coord)
		if equalStrings(got, want) {
			break
		}
		if _, err := coord.RecoverLoss(300*time.Millisecond, 30*time.Second); err != nil {
			t.Fatalf("recover: %v", err)
		}
	}
	if !equalStrings(got, want) {
		t.Errorf("targeted recovery did not reach the fixpoint:\n got %v\nwant %v", got, want)
	}
	// The rebaseline is the contrast with the Reseed path: the measured
	// deficit folded into the slack, so the ledger balances again.
	if !coord.LedgerBalanced() {
		t.Error("ledger still unbalanced after loss-adaptive recovery")
	}
	// A stable fleet with its loss accounted for has nothing to recover.
	if again, err := coord.RecoverLoss(300*time.Millisecond, 20*time.Second); err != nil || len(again) != 0 {
		t.Errorf("idempotence: second recovery = %v, %v", again, err)
	}

	if err := coord.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for range m.Shards {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit after stop")
		}
	}
}

// TestDurableRebalanceInProcess drives a live migration on a durable
// deployment: the moved node's state ships as a snapshot+WAL bundle,
// both shards' persisted node sets follow the move (so a crashed worker
// respawns with post-migration ownership), and the fixpoint still
// matches the centralized ground truth.
func TestDurableRebalanceInProcess(t *testing.T) {
	src := figure2Source()
	want := centralGroundTruth(t, src)
	dataDir := filepath.Join(t.TempDir(), "data")
	m := &Manifest{
		Source:  src,
		Options: Options{AggSel: true, DataDir: dataDir},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 2),
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	done := make(chan error, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		go func() {
			done <- RunWorker(WorkerConfig{Manifest: m, ShardID: id, Coord: coord.ControlAddr()})
		}()
	}
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	from := coord.Owner("a")
	to := 1 - from
	rep, err := coord.Rebalance([]Migration{{Node: "a", To: to}}, 300*time.Millisecond, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("durable migration a: shard %d -> %d, pause %v, %d state bytes",
		from, to, rep.Pause, rep.StateBytes)
	if rep.StateBytes <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}

	var got []string
	for attempt := 0; attempt < 4; attempt++ {
		if !coord.WaitQuiescent(300*time.Millisecond, 20*time.Second) {
			t.Fatal("deployment did not quiesce after migration")
		}
		got = gatherKeys(t, coord)
		if equalStrings(got, want) {
			break
		}
		if _, err := coord.RecoverLoss(300*time.Millisecond, 30*time.Second); err != nil {
			t.Fatalf("recover: %v", err)
		}
	}
	if !equalStrings(got, want) {
		t.Errorf("fixpoint mismatch after durable migration:\n got %v\nwant %v", got, want)
	}

	// The persisted node sets follow the move: a respawn of either shard
	// would recover post-migration ownership.
	fromNodes, err := loadNodeSet(filepath.Join(dataDir, "shard-"+string(rune('0'+from))))
	if err != nil {
		t.Fatal(err)
	}
	toNodes, err := loadNodeSet(filepath.Join(dataDir, "shard-"+string(rune('0'+to))))
	if err != nil {
		t.Fatal(err)
	}
	if _, still := fromNodes["a"]; still {
		t.Errorf("shard %d still persists node a: %v", from, fromNodes)
	}
	if _, moved := toNodes["a"]; !moved {
		t.Errorf("shard %d does not persist node a: %v", to, toNodes)
	}

	if err := coord.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for range m.Shards {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit after stop")
		}
	}
}
