package shard

import (
	"fmt"
	"net"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"ndlog/internal/netrun"
	"ndlog/internal/val"
)

// Coordinator drives one sharded deployment from a single UDP control
// socket: it assembles the global address book from worker hellos,
// releases the start barrier, watches idle reports for cross-process
// quiescence, gathers predicates, re-partitions the live fleet
// (Rebalance), and tears the deployment down. It never touches
// data-plane traffic — tuples travel shard-to-shard directly.
type Coordinator struct {
	m    *Manifest
	conn *net.UDPConn

	mu     sync.Mutex
	shards map[int]*shardState
	reqSeq uint64
	// epoch is the current membership view; it starts at 1 (the
	// manifest's partition) and bumps on every rebalance.
	epoch uint64
	// owner maps every node to the shard currently hosting it;
	// overrides maps migrated nodes to their post-migration data
	// addresses (they shadow the stale hello-book entries).
	owner     map[string]int
	overrides map[string]string
	// xfer collects the state chunks of the release in flight.
	// adoptReq/adoptAddr track the single in-flight adoption
	// (rebalances are single-flight and adoptions within one are
	// serialized), so stray or duplicate acks cannot accumulate state.
	xfer      *xferState
	adoptReq  uint64
	adoptAddr *string
	// gather is the in-flight query, nil between queries. gatherMu
	// serializes Tuples callers: gathers are single-flight.
	gatherMu sync.Mutex
	gather   *gatherState
	// rebalMu serializes Rebalance callers (single-flight, like gathers);
	// Respawn and RecoverLoss share it — all three reconfigure the fleet.
	rebalMu sync.Mutex
	// ledgerSlack is the sent−recv imbalance accepted as permanent:
	// datagrams provably lost to a crash or injected loss, folded into
	// the baseline by Respawn/RecoverLoss so the quiescence ledger
	// balances again afterwards.
	ledgerSlack int64
	// recovered tracks, per shard, the receive deficit RecoverLoss has
	// already compensated, so repeated calls do not re-recover (and
	// re-count) the same historical loss.
	recovered map[int]int64

	cmds map[int]*exec.Cmd // spawned worker processes, by shard ID

	wg   sync.WaitGroup
	stop chan struct{}
}

// shardState is the coordinator's view of one worker process.
type shardState struct {
	id   int
	addr *net.UDPAddr // worker control address (from its last frame)
	book map[string]string

	ready   bool
	started bool
	// readyEpoch / resumedEpoch are the latest epochs the worker has
	// acknowledged installing (ready) and resuming into (resumed).
	readyEpoch   uint64
	resumedEpoch uint64

	// Latest idle report.
	seq        uint64
	epoch      uint64 // membership view the report was sent under
	activity   int64
	stats      netStats
	sentTo     map[string]int64
	lastReport time.Time
	// lastChange is when activity last moved (coordinator clock).
	lastChange time.Time

	// base and baseSentTo fold in the counters a crashed incarnation
	// last reported: its replacement restarts at zero, but the ledger's
	// history must survive the respawn or sent==recv could never
	// balance again.
	base       netStats
	baseSentTo map[string]int64

	// rederivedReq is the newest rederivation request this worker has
	// acknowledged completing.
	rederivedReq uint64

	bye      bool
	byeStats netStats
}

// totalStats is the shard's cumulative traffic view: the live report
// (or the final bye stats) plus whatever earlier incarnations reported
// before crashing.
func (s *shardState) totalStats() netStats {
	ns := s.stats
	if s.bye {
		ns = s.byeStats
	}
	return netStats{
		SentBytes:    s.base.SentBytes + ns.SentBytes,
		SentMessages: s.base.SentMessages + ns.SentMessages,
		RecvBytes:    s.base.RecvBytes + ns.RecvBytes,
		RecvMessages: s.base.RecvMessages + ns.RecvMessages,
		Dropped:      s.base.Dropped + ns.Dropped,
		Fenced:       s.base.Fenced + ns.Fenced,
	}
}

// totalSentTo merges the live per-destination tallies with the folded
// pre-respawn base.
func (s *shardState) totalSentTo() map[string]int64 {
	out := make(map[string]int64, len(s.sentTo)+len(s.baseSentTo))
	for id, n := range s.baseSentTo {
		out[id] += n
	}
	for id, n := range s.sentTo {
		out[id] += n
	}
	return out
}

// xferState collects one release's chunked state transfer.
type xferState struct {
	req    uint64
	chunks [][]byte
}

func (x *xferState) complete() bool {
	if x.chunks == nil {
		return false
	}
	for _, ch := range x.chunks {
		if ch == nil {
			return false
		}
	}
	return true
}

// gatherState tracks one in-flight gather. Every (re)query of a shard
// carries a fresh request id and wipes that shard's partial chunks, so
// a merged result is always assembled from whole per-shard snapshots —
// never a mix of chunks from different retries.
type gatherState struct {
	cur    map[int]uint64        // shard → its current request id (≥1)
	chunks map[int][][]val.Tuple // shard → chunk index → tuples
}

// NewCoordinator binds the control socket and starts the receive loop.
// Workers are expected to dial ControlAddr; spawn them with Spawn or
// any other process manager.
func NewCoordinator(m *Manifest) (*Coordinator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Wildcard bind so workers on other machines can reach the control
	// plane (ControlAddr still names loopback for same-host spawns).
	conn, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		return nil, fmt.Errorf("shard: bind coordinator socket: %w", err)
	}
	c := &Coordinator{
		m:         m,
		conn:      conn,
		shards:    map[int]*shardState{},
		epoch:     1,
		owner:     map[string]int{},
		overrides: map[string]string{},
		recovered: map[int]int64{},
		stop:      make(chan struct{}),
	}
	for i := range m.Shards {
		c.shards[m.Shards[i].ID] = &shardState{id: m.Shards[i].ID}
		for node := range m.Shards[i].Nodes {
			c.owner[node] = m.Shards[i].ID
		}
	}
	c.wg.Add(1)
	go c.serve()
	return c, nil
}

// ControlAddr returns the coordinator's UDP control address as
// reachable from this host (the wildcard bind is reported as loopback).
// Workers on other machines must instead be given an address routable
// from there — the coordinator listens on all interfaces.
func (c *Coordinator) ControlAddr() string {
	a := c.conn.LocalAddr().(*net.UDPAddr)
	if a.IP == nil || a.IP.IsUnspecified() {
		return net.JoinHostPort("127.0.0.1", strconv.Itoa(a.Port))
	}
	return a.String()
}

// Spawn launches one worker process per shard with the command builder
// (typically a re-exec of the current binary carrying WorkerEnv). The
// spawned processes are waited on by Shutdown. If any start fails, the
// workers already started are killed and reaped — each reap bounded by
// killGrace, so a worker stuck before exec cannot hang the error path.
func (c *Coordinator) Spawn(build func(shardID int) *exec.Cmd) error {
	c.cmds = map[int]*exec.Cmd{}
	for i := range c.m.Shards {
		id := c.m.Shards[i].ID
		cmd := build(id)
		if err := cmd.Start(); err != nil {
			for _, started := range c.cmds {
				killWait(started, killGrace)
			}
			c.cmds = nil
			return fmt.Errorf("shard: spawn shard %d: %w", id, err)
		}
		c.cmds[id] = cmd
	}
	return nil
}

// serve is the receive loop: it applies every incoming control frame
// to the coordinator's state and issues the protocol's idempotent
// replies (book for hello, start for ready-once-all-ready).
func (c *Coordinator) serve() {
	defer c.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		c.conn.SetReadDeadline(time.Now().Add(controlRead))
		n, from, err := c.conn.ReadFromUDP(buf)
		select {
		case <-c.stop:
			return
		default:
		}
		if err != nil {
			continue
		}
		f, err := decodeFrame(buf[:n])
		if err != nil {
			continue
		}
		c.apply(f, from)
	}
}

func (c *Coordinator) apply(f frame, from *net.UDPAddr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.shards[f.shard]
	if st == nil { // unknown shard id: ignore
		return
	}
	st.addr = from
	switch f.kind {
	case kindHello:
		st.book = f.book
		// Reply with the merged book once every shard has said hello;
		// the worker retries its hello until then.
		if book := c.mergedBookLocked(); book != nil {
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindBook, epoch: c.epoch, book: book}), from)
		}
	case kindReady:
		st.ready = true
		if f.epoch > st.readyEpoch {
			st.readyEpoch = f.epoch
		}
		if st.started {
			// Late ready retry (our start datagram was lost): re-ack the
			// retrier alone, the barrier has already released.
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindStart}), from)
		} else if c.allReadyLocked() {
			for _, s := range c.shards {
				s.started = true
				c.conn.WriteToUDP(encodeFrame(frame{kind: kindStart}), s.addr)
			}
		}
	case kindIdle:
		if f.seq <= st.seq { // reordered report
			return
		}
		if f.activity != st.activity || st.lastChange.IsZero() {
			st.lastChange = time.Now()
		}
		st.seq, st.epoch, st.activity, st.stats = f.seq, f.epoch, f.activity, f.stats
		st.sentTo = f.sentTo
		st.lastReport = time.Now()
		// Ack: the worker uses pongs to notice a dead coordinator.
		c.conn.WriteToUDP(encodeFrame(frame{kind: kindPong}), from)
	case kindState:
		x := c.xfer
		if x == nil || f.req == 0 || x.req != f.req {
			return // no release in flight, or a superseded retry's chunk
		}
		if x.chunks == nil {
			x.chunks = make([][]byte, f.nchunks)
		}
		if f.chunk < len(x.chunks) && x.chunks[f.chunk] == nil {
			ch := f.blob
			if ch == nil {
				ch = []byte{}
			}
			x.chunks[f.chunk] = ch
		}
	case kindAdopted:
		if f.req != 0 && f.req == c.adoptReq && c.adoptAddr == nil {
			addr := f.addr
			c.adoptAddr = &addr
		}
	case kindResumed:
		if f.epoch > st.resumedEpoch {
			st.resumedEpoch = f.epoch
		}
	case kindRederived:
		if f.req > st.rederivedReq {
			st.rederivedReq = f.req
		}
	case kindTuples:
		g := c.gather
		if g == nil || f.req == 0 || g.cur[f.shard] != f.req {
			return // no gather in flight, or a superseded retry's chunk
		}
		if g.chunks[f.shard] == nil {
			g.chunks[f.shard] = make([][]val.Tuple, f.nchunks)
		}
		if f.chunk < len(g.chunks[f.shard]) && g.chunks[f.shard][f.chunk] == nil {
			ts := f.tuples
			if ts == nil {
				ts = []val.Tuple{}
			}
			g.chunks[f.shard][f.chunk] = ts
		}
	case kindBye:
		st.bye = true
		st.byeStats = f.stats
	}
}

// mergedBookLocked merges every shard's hello book (nil if a hello is
// still missing), with migration overrides shadowing the original
// entries of nodes that have since moved.
func (c *Coordinator) mergedBookLocked() map[string]string {
	book := map[string]string{}
	for _, s := range c.shards {
		if s.book == nil {
			return nil
		}
		for k, v := range s.book {
			book[k] = v
		}
	}
	for k, v := range c.overrides {
		book[k] = v
	}
	return book
}

func (c *Coordinator) allReadyLocked() bool {
	for _, s := range c.shards {
		if !s.ready {
			return false
		}
	}
	return true
}

// WaitReady blocks until every shard has completed the handshake and
// the start barrier has been released.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		started := true
		for _, s := range c.shards {
			started = started && s.started
		}
		c.mu.Unlock()
		if started {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.mu.Lock()
	missing := 0
	for _, s := range c.shards {
		if !s.started {
			missing++
		}
	}
	c.mu.Unlock()
	return fmt.Errorf("shard: %d of %d shards not ready after %v", missing, len(c.shards), timeout)
}

// WaitQuiescent blocks until the whole deployment has been idle for
// the given window, or until timeout; it reports which. The cluster is
// idle when every shard's activity counter has been stable for the
// window AND the cluster-wide datagram ledger balances (total sent ==
// total received), which proves no message is in flight between
// processes. If the ledger never balances (a datagram was genuinely
// lost), stability alone is accepted after three windows — the
// soft-state recovery story (Reseed) covers the loss.
func (c *Coordinator) WaitQuiescent(idle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		time.Sleep(idle / 4)
		c.mu.Lock()
		stable, balanced := c.idleForLocked(idle), c.ledgerBalancedLocked()
		lossFallback := c.idleForLocked(3 * idle)
		c.mu.Unlock()
		if stable && balanced {
			return true
		}
		if lossFallback {
			return true
		}
	}
	return false
}

// idleForLocked reports whether every shard has reported, recently,
// from the current epoch, and with an activity counter unchanged for
// the window. Reports from an older epoch are a stale view — the
// worker has not installed the latest cutover yet — and block idleness.
func (c *Coordinator) idleForLocked(window time.Duration) bool {
	now := time.Now()
	for _, s := range c.shards {
		if s.epoch != c.epoch {
			return false
		}
		if s.lastChange.IsZero() || now.Sub(s.lastChange) < window {
			return false
		}
		if now.Sub(s.lastReport) > window+time.Second {
			return false // stale view: worker reports stopped arriving
		}
	}
	return true
}

// ledgerBalancedLocked reports whether cluster-wide data-plane sends
// equal receives (nothing in flight, nothing lost) — up to the slack
// Respawn/RecoverLoss folded in for datagrams proven permanently lost.
func (c *Coordinator) ledgerBalancedLocked() bool {
	return c.ledgerImbalanceLocked() == c.ledgerSlack
}

// ledgerImbalanceLocked is cluster-wide sends minus receives, with each
// shard's pre-respawn base counters folded in.
func (c *Coordinator) ledgerImbalanceLocked() int64 {
	var sent, recv int64
	for _, s := range c.shards {
		ns := s.totalStats()
		sent += ns.SentMessages
		recv += ns.RecvMessages
	}
	return sent - recv
}

// LedgerBalanced reports whether cluster-wide data-plane sends
// currently equal receives. After WaitQuiescent returns true, a false
// ledger means quiescence was accepted through the loss fallback —
// callers wanting a complete fixpoint should Reseed and wait again.
func (c *Coordinator) LedgerBalanced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledgerBalancedLocked()
}

// Reseed asks every worker to re-push its home base facts — the
// soft-state refresh used to recover from lost datagrams.
func (c *Coordinator) Reseed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		if s.addr != nil {
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindSeed}), s.addr)
		}
	}
}

// DeadWorkers reports the shards presumed crashed: started workers
// whose periodic idle reports (one per idlePeriod) have stopped for the
// silence window. On loopback/LAN a multi-hundred-millisecond silence
// means the process is gone, not slow.
func (c *Coordinator) DeadWorkers(silence time.Duration) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var out []int
	for id, s := range c.shards {
		if !s.started || s.bye || s.lastReport.IsZero() {
			continue
		}
		if now.Sub(s.lastReport) > silence {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Respawn replaces a crashed worker process and drives its warm rejoin:
//
//  1. reap — the old process (if spawned here) is killed and waited on,
//     and the counters it last reported fold into the shard's base, so
//     the cluster ledger keeps its history across the restart;
//  2. re-exec — build spawns the replacement, which recovers its node
//     set and per-node state from the shard's durable data directory
//     (manifest DataDir: snapshot + WAL replay), binds fresh sockets,
//     and re-enters the handshake (its ready is re-acked with an
//     immediate start — the barrier released long ago);
//  3. cutover — a new epoch's book routes the respawned nodes' fresh
//     addresses fleet-wide and fences stragglers aimed at the dead
//     sockets;
//  4. rederive — every shard re-sends the derivations homed at the
//     respawned nodes (the cross-node derived state a WAL cannot
//     carry), and the respawned shard sweeps its own derivations back
//     outward: WAL-before-wire means a crash cannot have advertised
//     state it will not remember, but it can remember state it never
//     got to advertise;
//  5. rebaseline — once the fleet settles, the remaining sent−recv
//     imbalance is exactly the crash window's permanent datagram loss
//     and folds into the ledger slack, so WaitQuiescent balances again
//     with no coordinator reseed.
//
// Pass a nil build when the replacement process is managed externally;
// start it only after calling Respawn, which waits for its hello.
// Single-flight with Rebalance and RecoverLoss.
func (c *Coordinator) Respawn(shardID int, build func(shardID int) *exec.Cmd, idle, timeout time.Duration) error {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	deadline := time.Now().Add(timeout)

	c.mu.Lock()
	st := c.shards[shardID]
	if st == nil {
		c.mu.Unlock()
		return fmt.Errorf("shard: respawn: unknown shard %d", shardID)
	}
	old := c.cmds[shardID]
	delete(c.cmds, shardID)

	// Fold the dead incarnation's last report into the base (its
	// replacement restarts every counter at zero) and reset the
	// handshake view so the fresh hello is distinguishable. started
	// stays true: the replacement's ready re-acks with an immediate
	// start.
	st.base = st.totalStats()
	st.baseSentTo = st.totalSentTo()
	st.stats, st.sentTo = netStats{}, nil
	st.seq = 0
	st.book = nil
	st.bye = false
	st.lastReport, st.lastChange = time.Time{}, time.Time{}
	c.mu.Unlock()

	if old != nil {
		killWait(old, killGrace) // reap; a SIGKILL at a corpse is a no-op
	}
	if build != nil {
		cmd := build(shardID)
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("shard: respawn shard %d: %w", shardID, err)
		}
		c.mu.Lock()
		if c.cmds == nil {
			c.cmds = map[int]*exec.Cmd{}
		}
		c.cmds[shardID] = cmd
		c.mu.Unlock()
	}

	// Wait for the replacement's hello: the shard's book reappears,
	// carrying its recovered nodes at their fresh socket addresses.
	for {
		c.mu.Lock()
		book := st.book
		c.mu.Unlock()
		if book != nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: respawn: no hello from shard %d within %v", shardID, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cutover: a fresh epoch whose merged book routes the respawned
	// nodes to their new sockets. The hello entries land as overrides —
	// they must shadow both other shards' stale hello books and any
	// stale migration overrides for nodes this shard hosts.
	c.mu.Lock()
	c.epoch++
	epoch := c.epoch
	var nodes []string
	for id, addr := range st.book {
		c.overrides[id] = addr
		nodes = append(nodes, id)
	}
	sort.Strings(nodes)
	book := c.mergedBookLocked()
	c.mu.Unlock()
	if book == nil {
		return fmt.Errorf("shard: respawn: address book incomplete")
	}
	err := c.broadcastUntil(frame{kind: kindBook, epoch: epoch, book: book}, deadline,
		func(s *shardState) bool { return s.readyEpoch >= epoch })
	if err != nil {
		return fmt.Errorf("shard: respawn: book cutover: %w", err)
	}

	// Rederivation sweeps, both directions.
	if err := c.rederiveToward(nodes, deadline); err != nil {
		return fmt.Errorf("shard: respawn: %w", err)
	}
	c.mu.Lock()
	var others []string
	for node, owner := range c.owner {
		if owner != shardID {
			others = append(others, node)
		}
	}
	sort.Strings(others)
	c.mu.Unlock()
	if len(others) > 0 {
		if err := c.rederiveShard(shardID, others, deadline); err != nil {
			return fmt.Errorf("shard: respawn: %w", err)
		}
	}

	// Rebaseline: with the fleet stable again, what is still unbalanced
	// is the crash window's permanent loss.
	if !c.waitStable(idle, deadline) {
		return fmt.Errorf("shard: respawn: fleet did not settle within %v", timeout)
	}
	c.mu.Lock()
	c.rebaselineLocked()
	c.mu.Unlock()
	return nil
}

// RecoverLoss recovers from datagram loss adaptively: instead of a
// fleet-wide reseed, the per-destination sent tallies carried by idle
// reports are folded onto owning shards and compared with each shard's
// receive counter — the shards that come up short are exactly the ones
// that missed datagrams. Each short shard gets a targeted seed (its
// home facts re-advertise — the soft-state refresh, shard-local) and
// the fleet re-sends the derivations homed at its nodes, rebuilding
// the inbound state the lost datagrams carried. The deficit then folds
// into the ledger slack, so WaitQuiescent balances again.
//
// Call it after WaitQuiescent returns: the measurement needs a stable
// fleet, or an in-flight burst would read as loss. Attribution follows
// current ownership, so the first call after a rebalance may also
// re-cover tallies that simply moved shards — harmless, the recovery
// actions are idempotent in tuple-set terms. Returns the IDs of the
// shards recovered (empty when the imbalance is already accounted
// for). Single-flight with Rebalance and Respawn.
func (c *Coordinator) RecoverLoss(idle, timeout time.Duration) ([]int, error) {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	deadline := time.Now().Add(timeout)
	if !c.waitStable(idle, deadline) {
		return nil, fmt.Errorf("shard: recover: fleet not stable within %v", timeout)
	}

	c.mu.Lock()
	expected, recv := c.expectedRecvLocked()
	var short []int
	var nodes []string
	seedAddrs := map[int]*net.UDPAddr{}
	for id, s := range c.shards {
		if expected[id]-recv[id] <= c.recovered[id] {
			continue
		}
		short = append(short, id)
		seedAddrs[id] = s.addr
		for node, owner := range c.owner {
			if owner == id {
				nodes = append(nodes, node)
			}
		}
	}
	sort.Ints(short)
	sort.Strings(nodes)
	c.mu.Unlock()
	if len(short) == 0 {
		return nil, nil
	}

	for _, id := range short {
		if a := seedAddrs[id]; a != nil {
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindSeed}), a)
		}
	}
	if err := c.rederiveToward(nodes, deadline); err != nil {
		return short, err
	}

	// Accept what is still unbalanced after recovery as permanent loss.
	if !c.waitStable(idle, deadline) {
		return short, fmt.Errorf("shard: recover: fleet did not settle within %v", timeout)
	}
	c.mu.Lock()
	c.rebaselineLocked()
	c.mu.Unlock()
	return short, nil
}

// rederiveToward asks every shard to re-send the derivations homed at
// the listed nodes, retrying until all acknowledge the sweep.
func (c *Coordinator) rederiveToward(nodes []string, deadline time.Time) error {
	c.mu.Lock()
	c.reqSeq++
	req := c.reqSeq
	epoch := c.epoch
	c.mu.Unlock()
	err := c.broadcastUntil(frame{kind: kindRederive, req: req, epoch: epoch, nodes: nodes}, deadline,
		func(s *shardState) bool { return s.rederivedReq >= req })
	if err != nil {
		return fmt.Errorf("rederive toward %d nodes: %w", len(nodes), err)
	}
	return nil
}

// rederiveShard asks one shard to re-send the derivations homed at the
// listed nodes, retrying until it acknowledges.
func (c *Coordinator) rederiveShard(shardID int, nodes []string, deadline time.Time) error {
	c.mu.Lock()
	c.reqSeq++
	req := c.reqSeq
	epoch := c.epoch
	c.mu.Unlock()
	payload := encodeFrame(frame{kind: kindRederive, req: req, epoch: epoch, nodes: nodes})
	retry := newBackoff()
	for time.Now().Before(deadline) {
		c.mu.Lock()
		st := c.shards[shardID]
		done := st.rederivedReq >= req
		addr := st.addr
		c.mu.Unlock()
		if done {
			return nil
		}
		if retry.ready() && addr != nil {
			c.conn.WriteToUDP(payload, addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("rederive on shard %d timed out", shardID)
}

// waitStable blocks until every shard has been idle for the window
// (activity stable, reporting from the current epoch). The ledger is
// deliberately not consulted: callers use this exactly when it cannot
// yet balance.
func (c *Coordinator) waitStable(window time.Duration, deadline time.Time) bool {
	for time.Now().Before(deadline) {
		c.mu.Lock()
		ok := c.idleForLocked(window)
		c.mu.Unlock()
		if ok {
			return true
		}
		time.Sleep(window / 4)
	}
	return false
}

// rebaselineLocked accepts the present imbalance as permanent: the
// global ledger slack and each shard's recovered-deficit watermark
// snapshot to the current counters. Callers ensure the fleet is stable
// (nothing in flight) first.
func (c *Coordinator) rebaselineLocked() {
	c.ledgerSlack = c.ledgerImbalanceLocked()
	expected, recv := c.expectedRecvLocked()
	for id := range c.shards {
		c.recovered[id] = 0
		if d := expected[id] - recv[id]; d > 0 {
			c.recovered[id] = d
		}
	}
}

// expectedRecvLocked folds every shard's per-destination sent tallies
// onto the owning shards: expected[x] counts the datagrams the fleet
// addressed to shard x's nodes, recv[x] the datagrams x actually
// received — the attribution half of the sent==recv ledger.
func (c *Coordinator) expectedRecvLocked() (expected, recv map[int]int64) {
	expected = map[int]int64{}
	recv = map[int]int64{}
	for id, s := range c.shards {
		recv[id] = s.totalStats().RecvMessages
		for node, n := range s.totalSentTo() {
			if owner, ok := c.owner[node]; ok {
				expected[owner] += n
			}
		}
	}
	return expected, recv
}

// Migration names one node move of a rebalance plan.
type Migration struct {
	// Node is the NDlog node to move.
	Node string
	// To is the destination shard ID.
	To int
}

// RebalanceReport describes a completed rebalance.
type RebalanceReport struct {
	// Epoch is the membership epoch installed by the cutover.
	Epoch uint64
	// Moved lists the migrations performed.
	Moved []Migration
	// QuiesceWait is how long the fleet took to go quiet before the
	// cutover could start.
	QuiesceWait time.Duration
	// Pause is the quiesce→resume wall time: the window during which
	// the deployment made no progress (state transfer + book install +
	// resume barrier).
	Pause time.Duration
	// StateBytes is the total exported state moved between shards.
	StateBytes int
}

// Epoch returns the current membership epoch (1 = the manifest's
// initial partition).
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Owner returns the shard currently hosting a node (-1 if unknown).
func (c *Coordinator) Owner(node string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.owner[node]; ok {
		return id
	}
	return -1
}

// Rebalance migrates nodes between live shards under a new membership
// epoch:
//
//  1. quiesce — wait for the fleet to go idle (the activity-counter +
//     datagram-ledger detector), so no tuple is in flight when state
//     moves;
//  2. release — each migrating node's worker exports the node's base
//     and soft state (engine Export) and drops it from its socket set;
//  3. adopt — the destination worker binds a fresh socket for the node
//     and holds the state;
//  4. cutover — every worker installs the new epoch's book and fences
//     the old epoch's datagrams;
//  5. resume — workers import the held state (re-deriving the local
//     closure via the DRed sweep) and run the neighbor-side
//     rederivation sweep (RederiveFor), which rebuilds the derived
//     state flowing into the moved nodes.
//
// Every step is an idempotent datagram exchange retried until
// acknowledged, against the shared timeout. Rebalances are
// single-flight; concurrent callers serialize. On success the report
// carries the pause (quiesce→resume) wall time.
//
// If a destination cannot adopt a released node (bind failure, dead
// worker), the coordinator re-adopts the node back onto its source
// shard from the state it already holds, then completes the cutover
// for wherever the nodes actually landed before returning the error —
// a failed rebalance leaves the fleet whole, never short a node.
func (c *Coordinator) Rebalance(migs []Migration, idle, timeout time.Duration) (*RebalanceReport, error) {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	if len(migs) == 0 {
		return nil, fmt.Errorf("shard: rebalance: empty plan")
	}

	// Validate the plan against current ownership.
	c.mu.Lock()
	from := map[string]int{}
	for _, m := range migs {
		src, ok := c.owner[m.Node]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("shard: rebalance: unknown node %q", m.Node)
		}
		if c.shards[m.To] == nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("shard: rebalance: unknown destination shard %d", m.To)
		}
		if src == m.To {
			c.mu.Unlock()
			return nil, fmt.Errorf("shard: rebalance: node %q already on shard %d", m.Node, m.To)
		}
		if _, dup := from[m.Node]; dup {
			c.mu.Unlock()
			return nil, fmt.Errorf("shard: rebalance: node %q moved twice in one plan", m.Node)
		}
		from[m.Node] = src
		if c.shards[src].addr == nil || c.shards[m.To].addr == nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("shard: rebalance: shard %d or %d has not joined yet", src, m.To)
		}
	}
	c.mu.Unlock()

	deadline := time.Now().Add(timeout)
	t0 := time.Now()
	if !c.WaitQuiescent(idle, timeout) {
		return nil, fmt.Errorf("shard: rebalance: fleet did not quiesce within %v", timeout)
	}
	tQuiesce := time.Now()

	// Release each migrating node and collect its exported state.
	states := map[string][]byte{}
	stateBytes := 0
	for _, m := range migs {
		blob, err := c.releaseNode(m.Node, from[m.Node], deadline)
		if err != nil {
			return nil, err
		}
		states[m.Node] = blob
		stateBytes += len(blob)
	}

	// Hand each node to its destination worker (socket binds now; the
	// state import waits for resume, when the new epoch is installed
	// fleet-wide). A node whose destination fails is re-adopted onto
	// its source shard from the state the coordinator holds — the
	// cutover below then installs wherever each node actually landed,
	// so even a failed rebalance leaves the fleet whole.
	newAddrs := map[string]string{}
	placed := map[string]int{}
	var adoptErr error
	for _, m := range migs {
		addr, err := c.adoptNode(m.Node, m.To, states[m.Node], deadline)
		if err == nil {
			newAddrs[m.Node], placed[m.Node] = addr, m.To
			continue
		}
		if adoptErr == nil {
			adoptErr = err
		}
		restoreBy := time.Now().Add(10 * time.Second)
		if deadline.After(restoreBy) {
			restoreBy = deadline
		}
		addr, rerr := c.adoptNode(m.Node, from[m.Node], states[m.Node], restoreBy)
		if rerr != nil {
			return nil, fmt.Errorf("shard: rebalance: node %q LOST (adopt: %v; restore to shard %d: %v)",
				m.Node, err, from[m.Node], rerr)
		}
		newAddrs[m.Node], placed[m.Node] = addr, from[m.Node]
	}
	// A recovery must finish the cutover even if the caller's deadline
	// lapsed during the failed adoption, or restored nodes stay dark.
	if adoptErr != nil {
		if min := time.Now().Add(10 * time.Second); deadline.Before(min) {
			deadline = min
		}
	}

	// Cutover: new epoch, new book, every worker must acknowledge
	// before anything resumes (a worker running the old epoch would
	// fence the resumed traffic).
	c.mu.Lock()
	c.epoch++
	epoch := c.epoch
	for node, addr := range newAddrs {
		c.overrides[node] = addr
	}
	for node, shardID := range placed {
		c.owner[node] = shardID
	}
	book := c.mergedBookLocked()
	c.mu.Unlock()
	if book == nil {
		return nil, fmt.Errorf("shard: rebalance: address book incomplete")
	}
	err := c.broadcastUntil(frame{kind: kindBook, epoch: epoch, book: book}, deadline,
		func(s *shardState) bool { return s.readyEpoch >= epoch })
	if err != nil {
		return nil, fmt.Errorf("shard: rebalance: book cutover: %w", err)
	}

	// Resume: import held state, rederive the moved nodes' inbound
	// views, go.
	moved := make([]string, 0, len(migs))
	for _, m := range migs {
		moved = append(moved, m.Node)
	}
	err = c.broadcastUntil(frame{kind: kindResume, epoch: epoch, nodes: moved}, deadline,
		func(s *shardState) bool { return s.resumedEpoch >= epoch })
	if err != nil {
		return nil, fmt.Errorf("shard: rebalance: resume: %w", err)
	}
	if adoptErr != nil {
		// The fleet is whole again (failed nodes restored to their
		// sources under the new epoch), but the requested placement was
		// not achieved.
		return nil, fmt.Errorf("shard: rebalance: %w (failed nodes restored to their source shards)", adoptErr)
	}
	return &RebalanceReport{
		Epoch:       epoch,
		Moved:       append([]Migration(nil), migs...),
		QuiesceWait: tQuiesce.Sub(t0),
		Pause:       time.Since(tQuiesce),
		StateBytes:  stateBytes,
	}, nil
}

// Retry pacing for the coordinator's idempotent datagram exchanges.
// The first resend comes fast (the common case is one lost datagram on
// loopback/LAN); the interval then doubles to a cap so a dead or
// wedged worker is probed, not hammered, for the rest of its deadline.
const (
	retryStart = 50 * time.Millisecond
	retryCap   = 800 * time.Millisecond
	// xferWorkerTimeout bounds any single worker's release/adopt
	// exchange: one unresponsive worker fails its transfer in bounded
	// time instead of consuming the whole rebalance deadline.
	xferWorkerTimeout = 10 * time.Second
)

// backoff paces a resend loop: ready reports whether to send now, and
// each send schedules the next one twice as far out, up to the cap.
type backoff struct {
	wait time.Duration
	next time.Time
}

func newBackoff() *backoff { return &backoff{wait: retryStart} }

func (b *backoff) ready() bool {
	if time.Now().Before(b.next) {
		return false
	}
	b.next = time.Now().Add(b.wait)
	if b.wait *= 2; b.wait > retryCap {
		b.wait = retryCap
	}
	return true
}

// releaseNode asks a shard to export and drop a node, retrying the
// idempotent release (with capped exponential backoff, against the
// per-worker transfer deadline) until the chunked state transfer
// completes.
func (c *Coordinator) releaseNode(node string, fromShard int, deadline time.Time) ([]byte, error) {
	c.mu.Lock()
	c.reqSeq++
	req := c.reqSeq
	x := &xferState{req: req}
	c.xfer = x
	addr := c.shards[fromShard].addr
	epoch := c.epoch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.xfer = nil
		c.mu.Unlock()
	}()

	if wd := time.Now().Add(xferWorkerTimeout); wd.Before(deadline) {
		deadline = wd
	}
	retry := newBackoff()
	for time.Now().Before(deadline) {
		if retry.ready() {
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindRelease, req: req, epoch: epoch, node: node}), addr)
		}
		c.mu.Lock()
		done := x.complete()
		c.mu.Unlock()
		if done {
			var blob []byte
			for _, ch := range x.chunks {
				blob = append(blob, ch...)
			}
			return blob, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("shard: release of %q from shard %d timed out", node, fromShard)
}

// adoptNode streams a node's state to its destination shard, retrying
// with capped exponential backoff — against the per-worker transfer
// deadline — until the worker acknowledges with the node's new data
// address.
func (c *Coordinator) adoptNode(node string, toShard int, blob []byte, deadline time.Time) (string, error) {
	c.mu.Lock()
	c.reqSeq++
	req := c.reqSeq
	c.adoptReq, c.adoptAddr = req, nil
	addr := c.shards[toShard].addr
	epoch := c.epoch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.adoptReq, c.adoptAddr = 0, nil
		c.mu.Unlock()
	}()

	if wd := time.Now().Add(xferWorkerTimeout); wd.Before(deadline) {
		deadline = wd
	}
	chunks := blobChunks(blob)
	retry := newBackoff()
	for time.Now().Before(deadline) {
		if retry.ready() {
			for i, ch := range chunks {
				c.conn.WriteToUDP(encodeFrame(frame{kind: kindAdopt, req: req, epoch: epoch,
					node: node, chunk: i, nchunks: len(chunks), blob: ch}), addr)
			}
		}
		c.mu.Lock()
		got := c.adoptAddr
		c.mu.Unlock()
		if got != nil {
			if *got == "" {
				return "", fmt.Errorf("shard: shard %d failed to bind adopted node %q", toShard, node)
			}
			return *got, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "", fmt.Errorf("shard: adoption of %q by shard %d timed out", node, toShard)
}

// broadcastUntil re-sends a frame (capped exponential backoff) to every
// shard not yet satisfying done, until all do or the deadline lapses.
func (c *Coordinator) broadcastUntil(f frame, deadline time.Time, done func(*shardState) bool) error {
	payload := encodeFrame(f)
	retry := newBackoff()
	for time.Now().Before(deadline) {
		send := retry.ready()
		c.mu.Lock()
		all := true
		for _, s := range c.shards {
			if done(s) {
				continue
			}
			all = false
			if send && s.addr != nil {
				c.conn.WriteToUDP(payload, s.addr)
			}
		}
		c.mu.Unlock()
		if all {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("shard: broadcast 0x%x not acknowledged by every shard", byte(f.kind))
}

// Tuples gathers a predicate snapshot from every shard and returns the
// merged result sorted. Each (re)query of a shard carries a fresh
// request id and discards that shard's partial chunks, so the merge
// always combines whole per-shard snapshots — a retry can only observe
// states the cluster actually passed through, never a splice of two
// responses. Gathers are single-flight; concurrent callers serialize.
func (c *Coordinator) Tuples(pred string, timeout time.Duration) ([]val.Tuple, error) {
	c.gatherMu.Lock()
	defer c.gatherMu.Unlock()
	c.mu.Lock()
	g := &gatherState{cur: map[int]uint64{}, chunks: map[int][][]val.Tuple{}}
	c.gather = g
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.gather = nil
		c.mu.Unlock()
	}()

	deadline := time.Now().Add(timeout)
	retry := newBackoff()
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if retry.ready() {
			// (Re)query incomplete shards under a fresh request id each,
			// wiping their partial state: a lost chunk costs one retry of
			// that shard's whole snapshot.
			for id, s := range c.shards {
				if s.addr == nil || c.completeLocked(g, id) {
					continue
				}
				c.reqSeq++
				g.cur[id] = c.reqSeq
				delete(g.chunks, id)
				c.conn.WriteToUDP(encodeFrame(frame{kind: kindQuery, req: c.reqSeq, pred: pred}), s.addr)
			}
		}
		done := true
		for id := range c.shards {
			done = done && c.completeLocked(g, id)
		}
		if done {
			var out []val.Tuple
			for _, chunks := range g.chunks {
				for _, ch := range chunks {
					out = append(out, ch...)
				}
			}
			c.mu.Unlock()
			sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
			return out, nil
		}
		c.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("shard: gather %q timed out after %v", pred, timeout)
}

func (c *Coordinator) completeLocked(g *gatherState, shardID int) bool {
	chunks, ok := g.chunks[shardID]
	if !ok {
		return false
	}
	for _, ch := range chunks {
		if ch == nil {
			return false
		}
	}
	return true
}

// ShardStats returns the latest per-shard traffic stats (final bye
// stats once a shard has said goodbye), keyed by shard ID.
func (c *Coordinator) ShardStats() map[int]Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[int]Stats{}
	for id, s := range c.shards {
		out[id] = Stats(s.totalStats())
	}
	return out
}

// Stats is a shard's data-plane traffic snapshot as reported over the
// control plane — the runner's own counters, so the one definition
// serves both layers (netStats stays internal as the wire block).
type Stats = netrun.Stats

// TotalStats sums ShardStats across the deployment.
func (c *Coordinator) TotalStats() Stats {
	var t Stats
	for _, s := range c.ShardStats() {
		t.SentBytes += s.SentBytes
		t.SentMessages += s.SentMessages
		t.RecvBytes += s.RecvBytes
		t.RecvMessages += s.RecvMessages
		t.Dropped += s.Dropped
	}
	return t
}

// Shutdown stops the fleet: stop frames are re-sent until every shard
// answers bye (or the overall timeout lapses), spawned processes are
// waited on within the same deadline, and the control socket is
// closed. A worker whose lone bye datagram was lost but whose process
// exited cleanly still counts as acknowledged — bye is the one
// protocol step the sender cannot retry. It returns an error if a
// shard neither said bye nor exited cleanly, or a process had to be
// killed.
func (c *Coordinator) Shutdown(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		allBye := true
		for _, s := range c.shards {
			if s.bye {
				continue
			}
			allBye = false
			if s.addr != nil {
				c.conn.WriteToUDP(encodeFrame(frame{kind: kindStop}), s.addr)
			}
		}
		c.mu.Unlock()
		if allBye {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Reap the spawned processes against the shared deadline.
	exitedClean := map[int]bool{}
	var firstErr error
	for id, cmd := range c.cmds {
		err := waitDeadline(cmd, deadline)
		exitedClean[id] = err == nil
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.cmds = nil
	c.mu.Lock()
	for _, s := range c.shards {
		if !s.bye && !exitedClean[s.id] && firstErr == nil {
			firstErr = fmt.Errorf("shard: shard %d never acknowledged stop", s.id)
		}
	}
	c.mu.Unlock()
	c.Close()
	return firstErr
}

// killGrace bounds the wait for a killed worker to be reaped. SIGKILL
// terminates even a SIGSTOPped process, but cmd.Wait can still block on
// inherited descriptors (a grandchild holding the worker's stderr), so
// no reap is allowed to wait forever.
const killGrace = 5 * time.Second

// waitDeadline waits for a spawned worker to exit, killing it if it
// overstays the deadline. Every path out of here is bounded: the
// post-kill reap gets killGrace, after which the zombie is abandoned to
// the reaper goroutine and reported.
func waitDeadline(cmd *exec.Cmd, deadline time.Time) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	wait := time.Until(deadline)
	if wait < 0 {
		wait = 0
	}
	select {
	case err := <-done:
		return err
	case <-time.After(wait):
		if err := reap(cmd, done, killGrace); err != nil {
			return err
		}
		return fmt.Errorf("shard: worker pid %d killed at shutdown deadline", cmd.Process.Pid)
	}
}

// killWait kills a worker and reaps it within the grace period.
func killWait(cmd *exec.Cmd, grace time.Duration) {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	reap(cmd, done, grace)
}

// reap sends SIGKILL and waits up to grace for the exit status. A
// worker that cannot be reaped even then (wedged descriptors) is
// reported rather than waited on forever.
func reap(cmd *exec.Cmd, done <-chan error, grace time.Duration) error {
	cmd.Process.Kill()
	select {
	case <-done:
		return nil
	case <-time.After(grace):
		return fmt.Errorf("shard: worker pid %d not reapable %v after kill", cmd.Process.Pid, grace)
	}
}

// Close releases the control socket and stops the receive loop. Safe
// after Shutdown; use directly only when no processes were spawned.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.conn.Close()
	c.wg.Wait()
}
