package shard

import (
	"fmt"
	"net"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"ndlog/internal/netrun"
	"ndlog/internal/val"
)

// Coordinator drives one sharded deployment from a single UDP control
// socket: it assembles the global address book from worker hellos,
// releases the start barrier, watches idle reports for cross-process
// quiescence, gathers predicates, and tears the fleet down. It never
// touches data-plane traffic — tuples travel shard-to-shard directly.
type Coordinator struct {
	m    *Manifest
	conn *net.UDPConn

	mu     sync.Mutex
	shards map[int]*shardState
	reqSeq uint64
	// gather is the in-flight query, nil between queries. gatherMu
	// serializes Tuples callers: gathers are single-flight.
	gatherMu sync.Mutex
	gather   *gatherState

	cmds map[int]*exec.Cmd // spawned worker processes, by shard ID

	wg   sync.WaitGroup
	stop chan struct{}
}

// shardState is the coordinator's view of one worker process.
type shardState struct {
	id   int
	addr *net.UDPAddr // worker control address (from its last frame)
	book map[string]string

	ready   bool
	started bool

	// Latest idle report.
	seq        uint64
	activity   int64
	stats      netStats
	lastReport time.Time
	// lastChange is when activity last moved (coordinator clock).
	lastChange time.Time

	bye      bool
	byeStats netStats
}

// gatherState tracks one in-flight gather. Every (re)query of a shard
// carries a fresh request id and wipes that shard's partial chunks, so
// a merged result is always assembled from whole per-shard snapshots —
// never a mix of chunks from different retries.
type gatherState struct {
	cur    map[int]uint64        // shard → its current request id (≥1)
	chunks map[int][][]val.Tuple // shard → chunk index → tuples
}

// NewCoordinator binds the control socket and starts the receive loop.
// Workers are expected to dial ControlAddr; spawn them with Spawn or
// any other process manager.
func NewCoordinator(m *Manifest) (*Coordinator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Wildcard bind so workers on other machines can reach the control
	// plane (ControlAddr still names loopback for same-host spawns).
	conn, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		return nil, fmt.Errorf("shard: bind coordinator socket: %w", err)
	}
	c := &Coordinator{
		m:      m,
		conn:   conn,
		shards: map[int]*shardState{},
		stop:   make(chan struct{}),
	}
	for i := range m.Shards {
		c.shards[m.Shards[i].ID] = &shardState{id: m.Shards[i].ID}
	}
	c.wg.Add(1)
	go c.serve()
	return c, nil
}

// ControlAddr returns the coordinator's UDP control address as
// reachable from this host (the wildcard bind is reported as loopback).
// Workers on other machines must instead be given an address routable
// from there — the coordinator listens on all interfaces.
func (c *Coordinator) ControlAddr() string {
	a := c.conn.LocalAddr().(*net.UDPAddr)
	if a.IP == nil || a.IP.IsUnspecified() {
		return net.JoinHostPort("127.0.0.1", strconv.Itoa(a.Port))
	}
	return a.String()
}

// Spawn launches one worker process per shard with the command builder
// (typically a re-exec of the current binary carrying WorkerEnv). The
// spawned processes are waited on by Shutdown. If any start fails, the
// workers already started are killed and reaped before returning, so a
// partial spawn leaks nothing.
func (c *Coordinator) Spawn(build func(shardID int) *exec.Cmd) error {
	c.cmds = map[int]*exec.Cmd{}
	for i := range c.m.Shards {
		id := c.m.Shards[i].ID
		cmd := build(id)
		if err := cmd.Start(); err != nil {
			for _, started := range c.cmds {
				started.Process.Kill()
				started.Wait()
			}
			c.cmds = nil
			return fmt.Errorf("shard: spawn shard %d: %w", id, err)
		}
		c.cmds[id] = cmd
	}
	return nil
}

// serve is the receive loop: it applies every incoming control frame
// to the coordinator's state and issues the protocol's idempotent
// replies (book for hello, start for ready-once-all-ready).
func (c *Coordinator) serve() {
	defer c.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		c.conn.SetReadDeadline(time.Now().Add(controlRead))
		n, from, err := c.conn.ReadFromUDP(buf)
		select {
		case <-c.stop:
			return
		default:
		}
		if err != nil {
			continue
		}
		f, err := decodeFrame(buf[:n])
		if err != nil {
			continue
		}
		c.apply(f, from)
	}
}

func (c *Coordinator) apply(f frame, from *net.UDPAddr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.shards[f.shard]
	if st == nil { // unknown shard id: ignore
		return
	}
	st.addr = from
	switch f.kind {
	case kindHello:
		st.book = f.book
		// Reply with the merged book once every shard has said hello;
		// the worker retries its hello until then.
		if book := c.mergedBookLocked(); book != nil {
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindBook, book: book}), from)
		}
	case kindReady:
		st.ready = true
		if st.started {
			// Late ready retry (our start datagram was lost): re-ack the
			// retrier alone, the barrier has already released.
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindStart}), from)
		} else if c.allReadyLocked() {
			for _, s := range c.shards {
				s.started = true
				c.conn.WriteToUDP(encodeFrame(frame{kind: kindStart}), s.addr)
			}
		}
	case kindIdle:
		if f.seq <= st.seq { // reordered report
			return
		}
		if f.activity != st.activity || st.lastChange.IsZero() {
			st.lastChange = time.Now()
		}
		st.seq, st.activity, st.stats = f.seq, f.activity, f.stats
		st.lastReport = time.Now()
		// Ack: the worker uses pongs to notice a dead coordinator.
		c.conn.WriteToUDP(encodeFrame(frame{kind: kindPong}), from)
	case kindTuples:
		g := c.gather
		if g == nil || f.req == 0 || g.cur[f.shard] != f.req {
			return // no gather in flight, or a superseded retry's chunk
		}
		if g.chunks[f.shard] == nil {
			g.chunks[f.shard] = make([][]val.Tuple, f.nchunks)
		}
		if f.chunk < len(g.chunks[f.shard]) && g.chunks[f.shard][f.chunk] == nil {
			ts := f.tuples
			if ts == nil {
				ts = []val.Tuple{}
			}
			g.chunks[f.shard][f.chunk] = ts
		}
	case kindBye:
		st.bye = true
		st.byeStats = f.stats
	}
}

// mergedBookLocked merges every shard's hello book, or nil if a hello
// is still missing.
func (c *Coordinator) mergedBookLocked() map[string]string {
	book := map[string]string{}
	for _, s := range c.shards {
		if s.book == nil {
			return nil
		}
		for k, v := range s.book {
			book[k] = v
		}
	}
	return book
}

func (c *Coordinator) allReadyLocked() bool {
	for _, s := range c.shards {
		if !s.ready {
			return false
		}
	}
	return true
}

// WaitReady blocks until every shard has completed the handshake and
// the start barrier has been released.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		started := true
		for _, s := range c.shards {
			started = started && s.started
		}
		c.mu.Unlock()
		if started {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.mu.Lock()
	missing := 0
	for _, s := range c.shards {
		if !s.started {
			missing++
		}
	}
	c.mu.Unlock()
	return fmt.Errorf("shard: %d of %d shards not ready after %v", missing, len(c.shards), timeout)
}

// WaitQuiescent blocks until the whole deployment has been idle for
// the given window, or until timeout; it reports which. The cluster is
// idle when every shard's activity counter has been stable for the
// window AND the cluster-wide datagram ledger balances (total sent ==
// total received), which proves no message is in flight between
// processes. If the ledger never balances (a datagram was genuinely
// lost), stability alone is accepted after three windows — the
// soft-state recovery story (Reseed) covers the loss.
func (c *Coordinator) WaitQuiescent(idle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		time.Sleep(idle / 4)
		c.mu.Lock()
		stable, balanced := c.idleForLocked(idle), c.ledgerBalancedLocked()
		lossFallback := c.idleForLocked(3 * idle)
		c.mu.Unlock()
		if stable && balanced {
			return true
		}
		if lossFallback {
			return true
		}
	}
	return false
}

// idleForLocked reports whether every shard has reported, recently,
// and with an activity counter unchanged for the window.
func (c *Coordinator) idleForLocked(window time.Duration) bool {
	now := time.Now()
	for _, s := range c.shards {
		if s.lastChange.IsZero() || now.Sub(s.lastChange) < window {
			return false
		}
		if now.Sub(s.lastReport) > window+time.Second {
			return false // stale view: worker reports stopped arriving
		}
	}
	return true
}

// ledgerBalancedLocked reports whether cluster-wide data-plane sends
// equal receives (nothing in flight, nothing lost).
func (c *Coordinator) ledgerBalancedLocked() bool {
	var sent, recv int64
	for _, s := range c.shards {
		sent += s.stats.SentMessages
		recv += s.stats.RecvMessages
	}
	return sent == recv
}

// LedgerBalanced reports whether cluster-wide data-plane sends
// currently equal receives. After WaitQuiescent returns true, a false
// ledger means quiescence was accepted through the loss fallback —
// callers wanting a complete fixpoint should Reseed and wait again.
func (c *Coordinator) LedgerBalanced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledgerBalancedLocked()
}

// Reseed asks every worker to re-push its home base facts — the
// soft-state refresh used to recover from lost datagrams.
func (c *Coordinator) Reseed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		if s.addr != nil {
			c.conn.WriteToUDP(encodeFrame(frame{kind: kindSeed}), s.addr)
		}
	}
}

// Tuples gathers a predicate snapshot from every shard and returns the
// merged result sorted. Each (re)query of a shard carries a fresh
// request id and discards that shard's partial chunks, so the merge
// always combines whole per-shard snapshots — a retry can only observe
// states the cluster actually passed through, never a splice of two
// responses. Gathers are single-flight; concurrent callers serialize.
func (c *Coordinator) Tuples(pred string, timeout time.Duration) ([]val.Tuple, error) {
	c.gatherMu.Lock()
	defer c.gatherMu.Unlock()
	c.mu.Lock()
	g := &gatherState{cur: map[int]uint64{}, chunks: map[int][][]val.Tuple{}}
	c.gather = g
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.gather = nil
		c.mu.Unlock()
	}()

	deadline := time.Now().Add(timeout)
	lastSend := time.Time{}
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if time.Since(lastSend) >= 200*time.Millisecond {
			// (Re)query incomplete shards under a fresh request id each,
			// wiping their partial state: a lost chunk costs one retry of
			// that shard's whole snapshot.
			for id, s := range c.shards {
				if s.addr == nil || c.completeLocked(g, id) {
					continue
				}
				c.reqSeq++
				g.cur[id] = c.reqSeq
				delete(g.chunks, id)
				c.conn.WriteToUDP(encodeFrame(frame{kind: kindQuery, req: c.reqSeq, pred: pred}), s.addr)
			}
			lastSend = time.Now()
		}
		done := true
		for id := range c.shards {
			done = done && c.completeLocked(g, id)
		}
		if done {
			var out []val.Tuple
			for _, chunks := range g.chunks {
				for _, ch := range chunks {
					out = append(out, ch...)
				}
			}
			c.mu.Unlock()
			sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
			return out, nil
		}
		c.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("shard: gather %q timed out after %v", pred, timeout)
}

func (c *Coordinator) completeLocked(g *gatherState, shardID int) bool {
	chunks, ok := g.chunks[shardID]
	if !ok {
		return false
	}
	for _, ch := range chunks {
		if ch == nil {
			return false
		}
	}
	return true
}

// ShardStats returns the latest per-shard traffic stats (final bye
// stats once a shard has said goodbye), keyed by shard ID.
func (c *Coordinator) ShardStats() map[int]Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[int]Stats{}
	for id, s := range c.shards {
		ns := s.stats
		if s.bye {
			ns = s.byeStats
		}
		out[id] = Stats(ns)
	}
	return out
}

// Stats is a shard's data-plane traffic snapshot as reported over the
// control plane — the runner's own counters, so the one definition
// serves both layers (netStats stays internal as the wire block).
type Stats = netrun.Stats

// TotalStats sums ShardStats across the deployment.
func (c *Coordinator) TotalStats() Stats {
	var t Stats
	for _, s := range c.ShardStats() {
		t.SentBytes += s.SentBytes
		t.SentMessages += s.SentMessages
		t.RecvBytes += s.RecvBytes
		t.RecvMessages += s.RecvMessages
		t.Dropped += s.Dropped
	}
	return t
}

// Shutdown stops the fleet: stop frames are re-sent until every shard
// answers bye (or the overall timeout lapses), spawned processes are
// waited on within the same deadline, and the control socket is
// closed. A worker whose lone bye datagram was lost but whose process
// exited cleanly still counts as acknowledged — bye is the one
// protocol step the sender cannot retry. It returns an error if a
// shard neither said bye nor exited cleanly, or a process had to be
// killed.
func (c *Coordinator) Shutdown(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		allBye := true
		for _, s := range c.shards {
			if s.bye {
				continue
			}
			allBye = false
			if s.addr != nil {
				c.conn.WriteToUDP(encodeFrame(frame{kind: kindStop}), s.addr)
			}
		}
		c.mu.Unlock()
		if allBye {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Reap the spawned processes against the shared deadline.
	exitedClean := map[int]bool{}
	var firstErr error
	for id, cmd := range c.cmds {
		err := waitDeadline(cmd, deadline)
		exitedClean[id] = err == nil
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.cmds = nil
	c.mu.Lock()
	for _, s := range c.shards {
		if !s.bye && !exitedClean[s.id] && firstErr == nil {
			firstErr = fmt.Errorf("shard: shard %d never acknowledged stop", s.id)
		}
	}
	c.mu.Unlock()
	c.Close()
	return firstErr
}

// waitDeadline waits for a spawned worker to exit, killing it if it
// overstays the deadline.
func waitDeadline(cmd *exec.Cmd, deadline time.Time) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	wait := time.Until(deadline)
	if wait < 0 {
		wait = 0
	}
	select {
	case err := <-done:
		return err
	case <-time.After(wait):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("shard: worker pid %d killed at shutdown deadline", cmd.Process.Pid)
	}
}

// Close releases the control socket and stops the receive loop. Safe
// after Shutdown; use directly only when no processes were spawned.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.conn.Close()
	c.wg.Wait()
}
