package shard

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"testing"
	"time"

	"ndlog/internal/engine"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
)

// TestMain doubles as the worker entry point: a child process spawned
// with the shard worker environment runs its shard instead of the test
// suite. This is how the e2e test gets ≥3 real OS processes from one
// binary.
func TestMain(m *testing.M) {
	if handled, err := MaybeRunWorker(); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var figure2 = []struct {
	a, b string
	cost float64
}{
	{"a", "b", 5}, {"a", "c", 1}, {"c", "b", 1}, {"b", "d", 1}, {"e", "a", 1},
}

// figure2Program returns the paper's shortest-path program with the
// Figure 2 network as base facts, as source text (for manifests) and
// parsed (for ground truth).
func figure2Source() string {
	src := programs.ShortestPath("")
	for _, l := range figure2 {
		src += fmt.Sprintf("link(%s, %s, %v).\nlink(%s, %s, %v).\n", l.a, l.b, l.cost, l.b, l.a, l.cost)
	}
	return src
}

// centralGroundTruth evaluates the program single-site and returns the
// sorted shortestPath keys — the fixpoint every deployment must match.
func centralGroundTruth(t *testing.T, src string) []string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := engine.NewCentral(prog, engine.Options{AggSel: true})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadFacts()
	var keys []string
	for _, tu := range c.Tuples("shortestPath") {
		keys = append(keys, tu.Key())
	}
	sort.Strings(keys)
	return keys
}

// TestMultiProcess is the deployment-scale acceptance test: the
// Figure 2 network partitioned into 3 shards, each a real OS process
// with its own UDP sockets, must converge to the same shortest-path
// fixpoint as the centralized evaluator, then shut down cleanly.
func TestMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	src := figure2Source()
	want := centralGroundTruth(t, src)
	if len(want) == 0 {
		t.Fatal("central ground truth is empty")
	}

	m := &Manifest{
		Source:  src,
		Options: Options{AggSel: true},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 3),
	}
	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(manifestPath); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Spawn one real OS process per shard: re-exec of this test binary,
	// diverted to the worker loop by TestMain.
	err = coord.Spawn(func(shardID int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
		cmd.Stderr = os.Stderr
		return cmd
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.WaitReady(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	gather := func() []string {
		tuples, err := coord.Tuples("shortestPath", 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(tuples))
		for _, tu := range tuples {
			keys = append(keys, tu.Key())
		}
		sort.Strings(keys)
		return keys
	}

	var got []string
	for attempt := 0; attempt < 4; attempt++ {
		if !coord.WaitQuiescent(400*time.Millisecond, 30*time.Second) {
			t.Fatal("sharded deployment did not quiesce")
		}
		got = gather()
		if equalStrings(got, want) {
			break
		}
		// Datagram loss: re-seed home facts (soft-state refresh) and retry.
		coord.Reseed()
	}
	if !equalStrings(got, want) {
		t.Errorf("fixpoint mismatch:\n got %v\nwant %v", got, want)
	}

	// Real cross-process traffic must have flowed.
	stats := coord.TotalStats()
	if stats.SentMessages == 0 || stats.SentBytes == 0 {
		t.Errorf("no data-plane traffic recorded: %+v", stats)
	}
	if stats.Dropped != 0 {
		t.Errorf("%d deltas dropped (address book incomplete?)", stats.Dropped)
	}

	// Clean teardown: every worker acknowledges stop and its process
	// exits with status 0 (Shutdown errors otherwise).
	if err := coord.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestMultiProcessMigration is the elastic-deployment acceptance test:
// a 3-process deployment migrates a node between shards mid-convergence
// under a new epoch, and the final fixpoint is byte-identical to the
// centralized evaluator's.
func TestMultiProcessMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process migration e2e skipped in -short mode")
	}
	src := figure2Source()
	want := centralGroundTruth(t, src)

	m := &Manifest{
		Source:  src,
		Options: Options{AggSel: true},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 3),
	}
	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(manifestPath); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	err = coord.Spawn(func(shardID int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
		cmd.Stderr = os.Stderr
		return cmd
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.WaitReady(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Mid-convergence: migrate node "c" to another shard while the
	// fleet is still deriving. Rebalance itself waits for a quiet
	// moment, moves the state, fences the old epoch, and resumes.
	from := coord.Owner("c")
	to := (from + 1) % len(m.Shards)
	rep, err := coord.Rebalance([]Migration{{Node: "c", To: to}}, 300*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("migration c: shard %d -> %d, epoch %d, quiesce-wait %v, pause %v, %d state bytes",
		from, to, rep.Epoch, rep.QuiesceWait, rep.Pause, rep.StateBytes)
	if rep.Epoch != 2 || coord.Owner("c") != to {
		t.Fatalf("cutover bookkeeping: epoch=%d owner=%d", rep.Epoch, coord.Owner("c"))
	}
	if rep.Pause <= 0 {
		t.Fatalf("pause not measured: %+v", rep)
	}

	gather := func() []string {
		tuples, err := coord.Tuples("shortestPath", 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(tuples))
		for _, tu := range tuples {
			keys = append(keys, tu.Key())
		}
		sort.Strings(keys)
		return keys
	}
	var got []string
	for attempt := 0; attempt < 4; attempt++ {
		if !coord.WaitQuiescent(400*time.Millisecond, 30*time.Second) {
			t.Fatal("deployment did not quiesce after migration")
		}
		got = gather()
		if equalStrings(got, want) {
			break
		}
		coord.Reseed() // datagram loss: soft-state refresh and retry
	}
	if !equalStrings(got, want) {
		t.Errorf("fixpoint mismatch after migration:\n got %v\nwant %v", got, want)
	}

	if err := coord.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownHungWorker: a SIGSTOPped worker can neither acknowledge
// stop nor exit, so Shutdown must escalate to SIGKILL and return within
// its deadline (plus the bounded reap grace) with an error — never hang.
func TestShutdownHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("process-spawning test skipped in -short mode")
	}
	m := &Manifest{
		Source:  figure2Source(),
		Options: Options{AggSel: true},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 1),
	}
	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(manifestPath); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	err = coord.Spawn(func(shardID int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
		cmd.Stderr = os.Stderr
		return cmd
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.WaitReady(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Freeze the worker: it stops reporting, acking, and exiting.
	pid := coord.cmds[0].Process.Pid
	if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	shutdownErr := coord.Shutdown(2 * time.Second)
	elapsed := time.Since(start)
	if shutdownErr == nil {
		t.Error("Shutdown returned nil for a frozen worker; want a kill error")
	}
	// Deadline + bounded reap grace + scheduling slack: never the
	// unbounded wait this test exists to forbid.
	if limit := 2*time.Second + killGrace + 3*time.Second; elapsed > limit {
		t.Errorf("Shutdown took %v, want < %v", elapsed, limit)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
