package shard

import (
	"sort"
	"testing"
	"time"
)

// TestWorkerProtocolInProcess exercises the full control-plane protocol
// — hello/book/ready/start, idle reports, gather, reseed, stop/bye —
// with workers running as goroutines instead of processes. It is the
// fast (go test -short) coverage of the same code paths TestMultiProcess
// exercises across process boundaries.
func TestWorkerProtocolInProcess(t *testing.T) {
	m := &Manifest{
		Source:  figure2Source(),
		Options: Options{AggSel: true},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 2),
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	done := make(chan error, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		go func() {
			done <- RunWorker(WorkerConfig{Manifest: m, ShardID: id, Coord: coord.ControlAddr()})
		}()
	}
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !coord.WaitQuiescent(300*time.Millisecond, 20*time.Second) {
		t.Fatal("deployment did not quiesce")
	}

	tuples, err := coord.Tuples("shortestPath", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tu := range tuples {
		got[tu.Key()] = true
	}
	// Spot-check the Figure 2 known answers (full fixpoint equality is
	// TestMultiProcess's job; UDP loss is recovered there via Reseed).
	for _, k := range []string{
		"shortestPath(a,c,[a,c],1)",
		"shortestPath(a,b,[a,c,b],2)",
	} {
		if !got[k] {
			coord.Reseed()
			coord.WaitQuiescent(300*time.Millisecond, 10*time.Second)
			tuples, err = coord.Tuples("shortestPath", 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			got = map[string]bool{}
			for _, tu := range tuples {
				got[tu.Key()] = true
			}
			break
		}
	}
	for _, k := range []string{
		"shortestPath(a,c,[a,c],1)",
		"shortestPath(a,b,[a,c,b],2)",
	} {
		if !got[k] {
			keys := make([]string, 0, len(got))
			for k := range got {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t.Errorf("missing %s; have %v", k, keys)
		}
	}

	// Per-shard stats flowed over the control plane.
	stats := coord.ShardStats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d shards", len(stats))
	}
	if total := coord.TotalStats(); total.SentMessages == 0 {
		t.Error("no traffic in stats")
	}

	if err := coord.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for range m.Shards {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit after stop")
		}
	}
}

// TestWorkerCoordinatorDeath: a worker whose coordinator vanishes must
// exit with an error instead of serving (and leaking) forever.
func TestWorkerCoordinatorDeath(t *testing.T) {
	m := &Manifest{
		Source:  figure2Source(),
		Options: Options{AggSel: true},
		Shards:  []ShardSpec{{ID: 0, Nodes: map[string]string{"a": "", "b": "", "c": "", "d": "", "e": ""}}},
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerConfig{
			Manifest: m, ShardID: 0, Coord: coord.ControlAddr(),
			CoordTimeout: 500 * time.Millisecond,
		})
	}()
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	coord.Close() // coordinator dies without sending stop
	select {
	case err := <-done:
		if err == nil {
			t.Error("worker exited nil after coordinator death; want liveness error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker kept serving after coordinator death")
	}
}

// TestWorkerErrors covers worker misconfiguration paths.
func TestWorkerErrors(t *testing.T) {
	m := &Manifest{
		Source: figure2Source(),
		Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}},
	}
	if err := RunWorker(WorkerConfig{Manifest: m, ShardID: 9}); err == nil {
		t.Error("unknown shard id accepted")
	}
	bad := &Manifest{
		Source:  "sp1 path(@S) :- ???",
		Shards:  []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}},
		Options: Options{},
	}
	if err := RunWorker(WorkerConfig{Manifest: bad, ShardID: 0, Coord: "127.0.0.1:1"}); err == nil {
		t.Error("unparsable program accepted")
	}
	modeBad := &Manifest{
		Source:  figure2Source(),
		Shards:  []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}},
		Options: Options{Mode: "nope"},
	}
	if err := RunWorker(WorkerConfig{Manifest: modeBad, ShardID: 0, Coord: "127.0.0.1:1"}); err == nil {
		t.Error("bad mode accepted")
	}
	// Static mode (no coordinator) must reject ephemeral peer addresses:
	// there is no handshake to resolve them.
	unpinned := &Manifest{
		Source: figure2Source(),
		Shards: []ShardSpec{
			{ID: 0, Nodes: map[string]string{"a": "127.0.0.1:7101"}},
			{ID: 1, Nodes: map[string]string{"b": ""}},
		},
	}
	if err := RunWorker(WorkerConfig{Manifest: unpinned, ShardID: 0}); err == nil {
		t.Error("static mode accepted an unpinned peer address")
	}
}
