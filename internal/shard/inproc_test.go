package shard

import (
	"sort"
	"strings"
	"testing"
	"time"
)

// TestWorkerProtocolInProcess exercises the full control-plane protocol
// — hello/book/ready/start, idle reports, gather, reseed, stop/bye —
// with workers running as goroutines instead of processes. It is the
// fast (go test -short) coverage of the same code paths TestMultiProcess
// exercises across process boundaries.
func TestWorkerProtocolInProcess(t *testing.T) {
	m := &Manifest{
		Source:  figure2Source(),
		Options: Options{AggSel: true},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 2),
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	done := make(chan error, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		go func() {
			done <- RunWorker(WorkerConfig{Manifest: m, ShardID: id, Coord: coord.ControlAddr()})
		}()
	}
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !coord.WaitQuiescent(300*time.Millisecond, 20*time.Second) {
		t.Fatal("deployment did not quiesce")
	}

	tuples, err := coord.Tuples("shortestPath", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tu := range tuples {
		got[tu.Key()] = true
	}
	// Spot-check the Figure 2 known answers (full fixpoint equality is
	// TestMultiProcess's job; UDP loss is recovered there via Reseed).
	for _, k := range []string{
		"shortestPath(a,c,[a,c],1)",
		"shortestPath(a,b,[a,c,b],2)",
	} {
		if !got[k] {
			coord.Reseed()
			coord.WaitQuiescent(300*time.Millisecond, 10*time.Second)
			tuples, err = coord.Tuples("shortestPath", 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			got = map[string]bool{}
			for _, tu := range tuples {
				got[tu.Key()] = true
			}
			break
		}
	}
	for _, k := range []string{
		"shortestPath(a,c,[a,c],1)",
		"shortestPath(a,b,[a,c,b],2)",
	} {
		if !got[k] {
			keys := make([]string, 0, len(got))
			for k := range got {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t.Errorf("missing %s; have %v", k, keys)
		}
	}

	// Per-shard stats flowed over the control plane.
	stats := coord.ShardStats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d shards", len(stats))
	}
	if total := coord.TotalStats(); total.SentMessages == 0 {
		t.Error("no traffic in stats")
	}

	if err := coord.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for range m.Shards {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit after stop")
		}
	}
}

// TestRebalanceInProcess drives a live migration with goroutine
// workers: a node moves between shards mid-convergence under a new
// epoch, the fixpoint still matches the centralized ground truth, and
// a second rebalance moves it back.
func TestRebalanceInProcess(t *testing.T) {
	src := figure2Source()
	want := centralGroundTruth(t, src)
	m := &Manifest{
		Source:  src,
		Options: Options{AggSel: true},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 2),
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	done := make(chan error, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		go func() {
			done <- RunWorker(WorkerConfig{Manifest: m, ShardID: id, Coord: coord.ControlAddr()})
		}()
	}
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := coord.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}

	// Bad plans are rejected before anything quiesces.
	if _, err := coord.Rebalance(nil, 100*time.Millisecond, time.Second); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := coord.Rebalance([]Migration{{Node: "zz", To: 1}}, 100*time.Millisecond, time.Second); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := coord.Rebalance([]Migration{{Node: "a", To: 9}}, 100*time.Millisecond, time.Second); err == nil {
		t.Error("unknown destination shard accepted")
	}
	if _, err := coord.Rebalance([]Migration{{Node: "a", To: coord.Owner("a")}}, 100*time.Millisecond, time.Second); err == nil {
		t.Error("no-op migration accepted")
	}
	if _, err := coord.Rebalance([]Migration{
		{Node: "a", To: 1 - coord.Owner("a")}, {Node: "a", To: coord.Owner("a")},
	}, 100*time.Millisecond, time.Second); err == nil {
		t.Error("double move of one node accepted")
	}

	// Mid-convergence migration: move "a" to the other shard.
	from := coord.Owner("a")
	to := 1 - from
	rep, err := coord.Rebalance([]Migration{{Node: "a", To: to}}, 300*time.Millisecond, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Errorf("epoch after rebalance = %d, want 2", rep.Epoch)
	}
	if coord.Owner("a") != to {
		t.Errorf("owner of a = %d, want %d", coord.Owner("a"), to)
	}
	if rep.Pause <= 0 || rep.StateBytes <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}

	// The deployment must still converge to the central fixpoint.
	gather := func() []string {
		tuples, err := coord.Tuples("shortestPath", 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(tuples))
		for _, tu := range tuples {
			keys = append(keys, tu.Key())
		}
		sort.Strings(keys)
		return keys
	}
	var got []string
	for attempt := 0; attempt < 4; attempt++ {
		if !coord.WaitQuiescent(300*time.Millisecond, 20*time.Second) {
			t.Fatal("deployment did not quiesce after migration")
		}
		got = gather()
		if equalStrings(got, want) {
			break
		}
		coord.Reseed() // datagram loss: soft-state refresh and retry
	}
	if !equalStrings(got, want) {
		t.Errorf("fixpoint mismatch after migration:\n got %v\nwant %v", got, want)
	}

	// Move it back: epochs keep advancing, ownership follows.
	rep2, err := coord.Rebalance([]Migration{{Node: "a", To: from}}, 300*time.Millisecond, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch != 3 || coord.Owner("a") != from {
		t.Errorf("second rebalance: epoch=%d owner=%d", rep2.Epoch, coord.Owner("a"))
	}
	for attempt := 0; attempt < 4; attempt++ {
		if !coord.WaitQuiescent(300*time.Millisecond, 20*time.Second) {
			t.Fatal("deployment did not quiesce after second migration")
		}
		got = gather()
		if equalStrings(got, want) {
			break
		}
		coord.Reseed()
	}
	if !equalStrings(got, want) {
		t.Errorf("fixpoint mismatch after return migration:\n got %v\nwant %v", got, want)
	}

	if err := coord.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for range m.Shards {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit after stop")
		}
	}
}

// TestLossFallbackQuiescence covers the unbalanced-ledger branch of
// WaitQuiescent: with datagrams provably lost (each worker drops its
// first outbound sends, still counted as sent), sent≠recv forever, so
// quiescence can only be declared through the extended-stability
// fallback — and the reseed recovery (soft-state refresh) must still
// reach the centralized fixpoint. The program's tables are all soft
// state: refresh is the paper's loss-recovery story, only soft-state
// duplicates re-trigger strands, and tables downstream of soft state
// must themselves be soft (refresh replaces counting, Section 4.2) or
// refreshes would inflate their derivation counts past retractability.
func TestLossFallbackQuiescence(t *testing.T) {
	src := strings.ReplaceAll(figure2Source(), ", infinity, infinity,", ", 3600, infinity,")
	if src == figure2Source() {
		t.Fatal("soft-state rewrite did not apply")
	}
	want := centralGroundTruth(t, src)

	m := &Manifest{
		Source:  src,
		Options: Options{AggSel: true, LossFirst: 3},
		Shards:  Partition([]string{"a", "b", "c", "d", "e"}, 2),
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	done := make(chan error, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		go func() {
			done <- RunWorker(WorkerConfig{Manifest: m, ShardID: id, Coord: coord.ControlAddr()})
		}()
	}
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The ledger can never balance (≥6 datagrams were eaten), so a true
	// return here proves the stability fallback fired.
	if !coord.WaitQuiescent(300*time.Millisecond, 30*time.Second) {
		t.Fatal("quiescence not reached despite the loss fallback")
	}
	if coord.LedgerBalanced() {
		t.Fatal("ledger balanced despite injected loss — fallback branch untested")
	}

	gather := func() []string {
		tuples, err := coord.Tuples("shortestPath", 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(tuples))
		for _, tu := range tuples {
			keys = append(keys, tu.Key())
		}
		sort.Strings(keys)
		return keys
	}
	var got []string
	for attempt := 0; attempt < 6; attempt++ {
		got = gather()
		if equalStrings(got, want) {
			break
		}
		// The recovery path under test: soft-state reseed after loss.
		coord.Reseed()
		if !coord.WaitQuiescent(300*time.Millisecond, 20*time.Second) {
			t.Fatal("re-quiescence failed after reseed")
		}
	}
	if !equalStrings(got, want) {
		t.Errorf("reseed did not recover the fixpoint:\n got %v\nwant %v", got, want)
	}
	if coord.LedgerBalanced() {
		t.Error("ledger unexpectedly balanced after recovery (loss accounting is cumulative)")
	}

	if err := coord.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for range m.Shards {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit after stop")
		}
	}
}

// TestWorkerCoordinatorDeath: a worker whose coordinator vanishes must
// exit with an error instead of serving (and leaking) forever.
func TestWorkerCoordinatorDeath(t *testing.T) {
	m := &Manifest{
		Source:  figure2Source(),
		Options: Options{AggSel: true},
		Shards:  []ShardSpec{{ID: 0, Nodes: map[string]string{"a": "", "b": "", "c": "", "d": "", "e": ""}}},
	}
	coord, err := NewCoordinator(m)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerConfig{
			Manifest: m, ShardID: 0, Coord: coord.ControlAddr(),
			CoordTimeout: 500 * time.Millisecond,
		})
	}()
	if err := coord.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	coord.Close() // coordinator dies without sending stop
	select {
	case err := <-done:
		if err == nil {
			t.Error("worker exited nil after coordinator death; want liveness error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker kept serving after coordinator death")
	}
}

// TestWorkerErrors covers worker misconfiguration paths.
func TestWorkerErrors(t *testing.T) {
	m := &Manifest{
		Source: figure2Source(),
		Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}},
	}
	if err := RunWorker(WorkerConfig{Manifest: m, ShardID: 9}); err == nil {
		t.Error("unknown shard id accepted")
	}
	bad := &Manifest{
		Source:  "sp1 path(@S) :- ???",
		Shards:  []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}},
		Options: Options{},
	}
	if err := RunWorker(WorkerConfig{Manifest: bad, ShardID: 0, Coord: "127.0.0.1:1"}); err == nil {
		t.Error("unparsable program accepted")
	}
	modeBad := &Manifest{
		Source:  figure2Source(),
		Shards:  []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}},
		Options: Options{Mode: "nope"},
	}
	if err := RunWorker(WorkerConfig{Manifest: modeBad, ShardID: 0, Coord: "127.0.0.1:1"}); err == nil {
		t.Error("bad mode accepted")
	}
	// Static mode (no coordinator) must reject ephemeral peer addresses:
	// there is no handshake to resolve them.
	unpinned := &Manifest{
		Source: figure2Source(),
		Shards: []ShardSpec{
			{ID: 0, Nodes: map[string]string{"a": "127.0.0.1:7101"}},
			{ID: 1, Nodes: map[string]string{"b": ""}},
		},
	}
	if err := RunWorker(WorkerConfig{Manifest: unpinned, ShardID: 0}); err == nil {
		t.Error("static mode accepted an unpinned peer address")
	}
}
