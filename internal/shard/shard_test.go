package shard

import (
	"path/filepath"
	"reflect"
	"testing"

	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/val"
)

func TestPartitionDeterministicAndBalanced(t *testing.T) {
	ids := []string{"e", "c", "a", "d", "b"}
	a := Partition(ids, 3)
	b := Partition([]string{"a", "b", "c", "d", "e"}, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition not deterministic: %v vs %v", a, b)
	}
	counts := map[string]int{}
	for _, s := range a {
		if len(s.Nodes) < 1 || len(s.Nodes) > 2 {
			t.Errorf("shard %d unbalanced: %d nodes", s.ID, len(s.Nodes))
		}
		for n := range s.Nodes {
			counts[n]++
		}
	}
	for _, id := range ids {
		if counts[id] != 1 {
			t.Errorf("node %s assigned %d times", id, counts[id])
		}
	}
	// More shards than nodes collapses to one node per shard.
	if got := Partition([]string{"x", "y"}, 5); len(got) != 2 {
		t.Errorf("oversharded partition: %d shards", len(got))
	}
	// Zero shards clamps to one.
	if got := Partition([]string{"x", "y"}, 0); len(got) != 1 {
		t.Errorf("zero-shard partition: %d shards", len(got))
	}
}

func TestManifestRoundTripAndValidate(t *testing.T) {
	m := &Manifest{
		Source: "sp path(...) :- link(...).",
		Options: Options{Mode: "bsn", AggSel: true, AggSelPeriod: 0.5,
			DataDir: "/var/lib/ndlog", Fsync: "interval", SnapshotBytes: 1 << 20,
			Parallelism: 4},
		Shards: []ShardSpec{
			{ID: 0, Nodes: map[string]string{"a": "", "b": "127.0.0.1:7001"}, Host: "127.0.0.1"},
			{ID: 1, Nodes: map[string]string{"c": ""}},
		},
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
	}
	if got.NodeCount() != 3 {
		t.Errorf("NodeCount = %d", got.NodeCount())
	}
	if got.Shard(1) == nil || got.Shard(7) != nil {
		t.Error("Shard lookup broken")
	}
	opts, err := got.Options.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Mode != engine.BSN || !opts.AggSel || opts.AggSelPeriod != 0.5 {
		t.Errorf("engine options: %+v", opts)
	}
	if opts.Parallelism != 4 || opts.Workers() != 4 {
		t.Errorf("parallelism not threaded through: %+v", opts)
	}

	bad := []*Manifest{
		{Source: "x"}, // no shards
		{Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}}},                                                          // no program
		{Source: "x", Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}, {ID: 0, Nodes: map[string]string{"b": ""}}}}, // dup id
		{Source: "x", Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}, {ID: 1, Nodes: map[string]string{"a": ""}}}}, // dup node
		{Source: "x", Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{}}}},                                                    // empty shard
		{Source: "x", Options: Options{Parallelism: -2},
			Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}}}, // negative parallelism
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad manifest %d validated", i)
		}
	}
	if _, err := (Options{Mode: "warp"}).Engine(); err == nil {
		t.Error("bad mode accepted")
	}

	// Durability stanza: policy names map to durable sync modes, and an
	// unknown policy is rejected at Validate time, not at worker startup.
	dir, dopts, err := got.Options.Durable()
	if err != nil || dir != "/var/lib/ndlog" || dopts.Sync != durable.SyncInterval || dopts.SnapshotBytes != 1<<20 {
		t.Errorf("durable options: dir=%q opts=%+v err=%v", dir, dopts, err)
	}
	if _, d, err := (Options{}).Durable(); err != nil || d.Sync != durable.SyncCommit {
		t.Errorf("default durable options: %+v err=%v", d, err)
	}
	badFsync := &Manifest{Source: "x", Options: Options{Fsync: "eventually"},
		Shards: []ShardSpec{{ID: 0, Nodes: map[string]string{"a": ""}}}}
	if err := badFsync.Validate(); err == nil {
		t.Error("bad fsync policy validated")
	}
}

func TestControlFrameRoundTrip(t *testing.T) {
	tup := val.NewTuple("shortestPath",
		val.NewAddr("a"), val.NewAddr("b"),
		val.NewList(val.NewAddr("a"), val.NewAddr("b")), val.NewFloat(1.5))
	frames := []frame{
		{kind: kindHello, shard: 2, book: map[string]string{"a": "127.0.0.1:1", "b": "127.0.0.1:2"}},
		{kind: kindBook, epoch: 3, book: map[string]string{"a": "127.0.0.1:1"}},
		{kind: kindReady, shard: 1, epoch: 3},
		{kind: kindStart},
		{kind: kindIdle, shard: 3, epoch: 2, seq: 9, activity: 42,
			stats: netStats{SentBytes: 1, SentMessages: 2, RecvBytes: 3, RecvMessages: 4, Dropped: 5, Fenced: 6}},
		{kind: kindQuery, req: 7, pred: "shortestPath"},
		{kind: kindTuples, shard: 1, req: 7, chunk: 0, nchunks: 2, tuples: []val.Tuple{tup}},
		{kind: kindTuples, shard: 1, req: 7, chunk: 1, nchunks: 2}, // empty chunk
		{kind: kindSeed},
		{kind: kindPong},
		{kind: kindStop},
		{kind: kindBye, shard: 2, stats: netStats{SentMessages: 10, RecvMessages: 10}},
		{kind: kindRelease, req: 11, epoch: 2, node: "c"},
		{kind: kindState, shard: 1, req: 11, chunk: 0, nchunks: 2, blob: []byte{0x4E, 1, 2, 3}},
		{kind: kindState, shard: 1, req: 11, chunk: 1, nchunks: 2, blob: []byte{}}, // empty chunk
		{kind: kindAdopt, req: 12, epoch: 3, node: "c", chunk: 0, nchunks: 1, blob: []byte{9, 9}},
		{kind: kindAdopted, shard: 2, req: 12, node: "c", addr: "127.0.0.1:9"},
		{kind: kindResume, epoch: 3, nodes: []string{"c", "d"}},
		{kind: kindResumed, shard: 2, epoch: 3},
		{kind: kindIdle, shard: 1, epoch: 4, seq: 3, activity: 8,
			stats:  netStats{SentMessages: 7, RecvMessages: 7},
			sentTo: map[string]int64{"a": 3, "b": 4}},
		{kind: kindRederive, req: 13, epoch: 3, nodes: []string{"b", "c"}},
		{kind: kindRederive, req: 14, epoch: 3}, // no nodes: a no-op sweep
		{kind: kindRederived, shard: 1, req: 13},
	}
	for _, f := range frames {
		b := encodeFrame(f)
		got, err := decodeFrame(b)
		if err != nil {
			t.Fatalf("%#x: %v", f.kind, err)
		}
		if got.kind != f.kind || got.shard != f.shard || got.epoch != f.epoch ||
			got.seq != f.seq ||
			got.activity != f.activity || got.stats != f.stats ||
			got.req != f.req || got.pred != f.pred ||
			got.node != f.node || got.addr != f.addr ||
			got.chunk != f.chunk || got.nchunks != f.nchunks {
			t.Errorf("%#x: round trip mismatch: %+v vs %+v", f.kind, got, f)
		}
		if !reflect.DeepEqual(got.book, f.book) {
			t.Errorf("%#x: book mismatch", f.kind)
		}
		if !reflect.DeepEqual(got.nodes, f.nodes) {
			t.Errorf("%#x: nodes mismatch: %v vs %v", f.kind, got.nodes, f.nodes)
		}
		if !reflect.DeepEqual(got.sentTo, f.sentTo) {
			t.Errorf("%#x: sentTo mismatch: %v vs %v", f.kind, got.sentTo, f.sentTo)
		}
		if len(got.blob) != len(f.blob) || (len(f.blob) > 0 && !reflect.DeepEqual(got.blob, f.blob)) {
			t.Errorf("%#x: blob mismatch: %v vs %v", f.kind, got.blob, f.blob)
		}
		if len(got.tuples) != len(f.tuples) {
			t.Fatalf("%#x: tuple count %d vs %d", f.kind, len(got.tuples), len(f.tuples))
		}
		for i := range f.tuples {
			if !got.tuples[i].Equal(f.tuples[i]) {
				t.Errorf("%#x: tuple %d mismatch: %v vs %v", f.kind, i, got.tuples[i], f.tuples[i])
			}
		}
	}
}

func TestControlFrameCorrupt(t *testing.T) {
	good := encodeFrame(frame{kind: kindHello, shard: 1, book: map[string]string{"a": "127.0.0.1:1"}})
	for cut := 0; cut < len(good); cut++ {
		// No proper prefix of a hello frame is itself a valid frame.
		if _, err := decodeFrame(good[:cut]); err == nil {
			t.Errorf("truncated frame at %d decoded", cut)
		}
	}
	// Same for an idle frame carrying the per-destination tally block.
	idle := encodeFrame(frame{kind: kindIdle, shard: 1, seq: 2, activity: 3,
		sentTo: map[string]int64{"a": 1, "b": 2}})
	for cut := 0; cut < len(idle); cut++ {
		if _, err := decodeFrame(idle[:cut]); err == nil {
			t.Errorf("truncated idle frame at %d decoded", cut)
		}
	}
	// And a rederive frame whose node list is cut short.
	red := encodeFrame(frame{kind: kindRederive, req: 1, epoch: 1, nodes: []string{"long-node-name"}})
	for cut := 0; cut < len(red); cut++ {
		if _, err := decodeFrame(red[:cut]); err == nil {
			t.Errorf("truncated rederive frame at %d decoded", cut)
		}
	}
	if _, err := decodeFrame([]byte{0x7f}); err == nil {
		t.Error("unknown kind decoded")
	}
	if _, err := decodeFrame(nil); err == nil {
		t.Error("empty frame decoded")
	}
	// A tuples frame whose count field exceeds the payload must fail
	// on truncation, not allocate.
	bad := encodeFrame(frame{kind: kindTuples, shard: 1, req: 1, chunk: 0, nchunks: 1})
	bad[len(bad)-1] = 0xff // count = huge (varint continuation...) -> corrupt
	if _, err := decodeFrame(bad); err == nil {
		t.Error("corrupt tuple count decoded")
	}
}
