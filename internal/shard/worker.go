package shard

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"ndlog/internal/netrun"
	"ndlog/internal/val"
)

// Protocol timing. The control plane is chatty-but-tiny: reports are
// one datagram each, so a short period costs nothing and keeps the
// coordinator's view fresh.
const (
	helloRetry   = 100 * time.Millisecond // hello resend until book arrives
	readyRetry   = 100 * time.Millisecond // ready resend until start arrives
	idlePeriod   = 50 * time.Millisecond  // activity report period
	controlRead  = 50 * time.Millisecond  // control socket read deadline
	tupleChunkSz = 32 << 10               // gather response chunk cap (bytes)
)

// WorkerConfig configures one shard process.
type WorkerConfig struct {
	// Manifest is the deployment description (shared by every shard).
	Manifest *Manifest
	// ShardID selects this process's slice of the manifest.
	ShardID int
	// Coord is the coordinator's control address ("host:port"). Empty
	// means no coordinator: the worker installs the manifest's static
	// book, seeds immediately, and runs until the process is killed —
	// the fully static multi-machine deployment mode.
	Coord string
	// CoordTimeout bounds coordinator silence: the handshake phases
	// must complete within it, and once serving, some coordinator
	// frame (pongs ack every idle report, so silence means death) must
	// arrive within it or the worker exits with an error instead of
	// running orphaned forever. ≤0 means the 60s default.
	CoordTimeout time.Duration
	// Logf, when non-nil, receives progress lines (flag-gated by cmds).
	Logf func(format string, args ...any)
}

func (c *WorkerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// RunWorker hosts one shard: it binds the shard's node sockets, joins
// the coordinator handshake (hello → book → ready → start), seeds its
// home facts, reports activity until told to stop, and answers gather
// queries. It blocks until the stop frame arrives (or forever in
// static mode) and returns after a clean teardown.
func RunWorker(cfg WorkerConfig) error {
	m := cfg.Manifest
	if err := m.Validate(); err != nil {
		return err
	}
	spec := m.Shard(cfg.ShardID)
	if spec == nil {
		return fmt.Errorf("shard: no shard %d in manifest", cfg.ShardID)
	}
	prog, err := m.ParseProgram()
	if err != nil {
		return err
	}
	opts, err := m.Options.Engine()
	if err != nil {
		return err
	}
	dataDir, durOpts, err := m.Options.Durable()
	if err != nil {
		return err
	}
	shardDir := ""
	// A copy: adopt/release mutate the worker's node set, and the
	// manifest is shared (read-only after Validate).
	nodes := make(map[string]string, len(spec.Nodes))
	for id, addr := range spec.Nodes {
		nodes[id] = addr
	}
	if dataDir != "" {
		shardDir = filepath.Join(dataDir, fmt.Sprintf("shard-%d", spec.ID))
		saved, err := loadNodeSet(shardDir)
		if err != nil {
			return err
		}
		if saved != nil {
			// A previous incarnation ran here: its persisted node set —
			// not the manifest's partition, stale after any rebalance —
			// names the durable stores to recover.
			nodes = saved
		}
	}
	r, err := netrun.NewConfigured(prog, nodes, netrun.Config{
		BindHost:      spec.Host,
		SharedSockets: m.Options.SharedSockets,
		GroupCommit:   m.Options.GroupCommit,
	}, opts)
	if err != nil {
		return err
	}
	defer r.Close()
	if shardDir != "" {
		warm, err := r.EnableDurability(shardDir, durOpts)
		if err != nil {
			return err
		}
		if err := saveNodeSet(shardDir, nodes); err != nil {
			return err
		}
		if warm > 0 {
			cfg.logf("shard %d: recovered %d warm nodes from %s", spec.ID, warm, shardDir)
		}
	}
	if m.Options.LossFirst > 0 {
		r.InjectLoss(int64(m.Options.LossFirst))
	}

	// Install the static book entries of every other shard up front;
	// ephemeral ("") entries are learned from the coordinator.
	for i := range m.Shards {
		other := &m.Shards[i]
		if other.ID == spec.ID {
			continue
		}
		for id, addr := range other.Nodes {
			if addr == "" {
				continue
			}
			if err := r.SetRemote(id, addr); err != nil {
				return err
			}
		}
	}

	if cfg.Coord == "" {
		// Static mode: no control plane, so there is no handshake to
		// resolve ephemeral addresses — every off-shard node must be
		// pinned or the book would silently drop its tuples.
		for i := range m.Shards {
			if m.Shards[i].ID == spec.ID {
				continue
			}
			for id, addr := range m.Shards[i].Nodes {
				if addr == "" {
					return fmt.Errorf("shard: static mode (no -coord) needs a pinned address for node %q (shard %d)", id, m.Shards[i].ID)
				}
			}
		}
		cfg.logf("shard %d: static mode, %d nodes", spec.ID, len(spec.Nodes))
		r.Start()
		select {}
	}

	if cfg.CoordTimeout <= 0 {
		cfg.CoordTimeout = 60 * time.Second
	}
	coordAddr, err := net.ResolveUDPAddr("udp", cfg.Coord)
	if err != nil {
		return fmt.Errorf("shard: coordinator address: %w", err)
	}
	// Wildcard bind: the coordinator may be on another machine, and the
	// reply path is learned from this socket's observed source address.
	ctl, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		return fmt.Errorf("shard: bind control socket: %w", err)
	}
	defer ctl.Close()

	w := &worker{
		cfg: cfg, spec: spec, runner: r, ctl: ctl, coord: coordAddr,
		shardDir:     shardDir,
		nodes:        nodes,
		releaseCache: map[uint64][]byte{},
		lastExport:   map[string][]byte{},
		adoptBuf:     map[uint64][][]byte{},
		adoptDone:    map[uint64]string{},
		stash:        map[string][]byte{},
		rederived:    map[uint64]bool{},
	}
	return w.run()
}

// loadNodeSet reads the node set a previous incarnation of this shard
// persisted next to its durable stores; nil when none exists yet.
func loadNodeSet(dir string) (map[string]string, error) {
	b, err := os.ReadFile(filepath.Join(dir, "nodes.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var nodes map[string]string
	if err := json.Unmarshal(b, &nodes); err != nil {
		return nil, fmt.Errorf("shard: corrupt node set %s: %w", filepath.Join(dir, "nodes.json"), err)
	}
	return nodes, nil
}

// saveNodeSet atomically persists the shard's current node → bind-addr
// map, so a respawn after a rebalance rebinds the nodes this shard
// actually hosts.
func saveNodeSet(dir string, nodes map[string]string) error {
	b, err := json.MarshalIndent(nodes, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "nodes.json.tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "nodes.json"))
}

// worker is the control-plane state of one shard process.
type worker struct {
	cfg    WorkerConfig
	spec   *ShardSpec
	runner *netrun.Runner
	ctl    *net.UDPConn
	coord  *net.UDPAddr

	seq   uint64 // idle report sequence
	epoch uint64 // membership epoch of the installed book

	// shardDir is the shard's durable data directory ("" without
	// durability); nodes is the current node → bind-addr set, persisted
	// there as nodes.json on every adopt/release so a respawn rebinds
	// what this shard actually hosts.
	shardDir string
	nodes    map[string]string

	// Rebalance state. releaseCache holds exported node states by
	// release request id, so a retried release (our state frames were
	// lost) resends the same snapshot instead of re-exporting a node
	// that is already gone; lastExport keeps the newest snapshot per
	// node, serving a re-released node after a failed rebalance retries
	// under a fresh request id. adoptBuf assembles chunked adopt
	// transfers; adoptDone remembers completed adoptions for re-acks;
	// stash holds adopted state until the resume frame says the new
	// epoch is fully installed fleet-wide. The request-keyed maps are
	// pruned at every epoch cutover (a new book proves the exchange
	// that filled them has completed), so rebalance bookkeeping does
	// not grow with deployment lifetime.
	releaseCache map[uint64][]byte
	lastExport   map[string][]byte
	adoptBuf     map[uint64][][]byte
	adoptDone    map[uint64]string
	stash        map[string][]byte
	// rederived remembers completed rederivation sweeps by request id,
	// so a retried rederive re-acks instead of re-inflating counts.
	// Pruned at epoch cutover like the other request-keyed maps.
	rederived map[uint64]bool
}

func (w *worker) send(f frame) {
	w.ctl.WriteToUDP(encodeFrame(f), w.coord)
}

// read waits up to the control read deadline for one frame; ok is
// false on timeout or a corrupt datagram.
func (w *worker) read(buf []byte) (frame, bool) {
	w.ctl.SetReadDeadline(time.Now().Add(controlRead))
	n, _, err := w.ctl.ReadFromUDP(buf)
	if err != nil {
		return frame{}, false
	}
	f, err := decodeFrame(buf[:n])
	if err != nil {
		return frame{}, false
	}
	return f, true
}

// localBook maps this worker's hosted nodes to their data addresses —
// from the runner, not the manifest: after a rebalance or a durable
// respawn the hosted set is the persisted one, and every respawn binds
// fresh ephemeral ports.
func (w *worker) localBook() map[string]string {
	book := map[string]string{}
	for _, id := range w.runner.LocalIDs() {
		book[id] = w.runner.Addr(id).String()
	}
	return book
}

// saveNodes persists the current node set; a failure is logged, not
// fatal — the data path keeps serving, and the stale file costs at
// worst a failed recovery that the coordinator handles like any dead
// worker.
func (w *worker) saveNodes() {
	if w.shardDir == "" {
		return
	}
	if err := saveNodeSet(w.shardDir, w.nodes); err != nil {
		w.cfg.logf("shard %d: persist node set: %v", w.spec.ID, err)
	}
}

func (w *worker) run() error {
	buf := make([]byte, 64<<10)

	// Phase 1: hello until the merged book arrives. The coordinator
	// replies to each hello, so loss on either leg just retries. The
	// phase deadline covers sibling shards that never start: the book
	// is only sent once every shard has said hello.
	w.cfg.logf("shard %d: hello → %s", w.spec.ID, w.coord)
	gotBook := false
	lastHello := time.Time{}
	phaseDeadline := time.Now().Add(w.cfg.CoordTimeout)
	for !gotBook {
		if time.Now().After(phaseDeadline) {
			return fmt.Errorf("shard %d: no address book from coordinator %s within %v",
				w.spec.ID, w.coord, w.cfg.CoordTimeout)
		}
		if time.Since(lastHello) >= helloRetry {
			w.send(frame{kind: kindHello, shard: w.spec.ID, book: w.localBook()})
			lastHello = time.Now()
		}
		if f, ok := w.read(buf); ok {
			switch f.kind {
			case kindBook:
				if err := w.installBook(f); err != nil {
					return err
				}
				gotBook = true
			case kindStop: // deployment aborted before assembly completed
				w.send(frame{kind: kindBye, shard: w.spec.ID, stats: netStats(w.runner.Stats())})
				return nil
			}
		}
	}

	// Phase 2: ready until start. A re-sent book (coordinator missed
	// our ready) is re-acked the same way.
	started := false
	lastReady := time.Time{}
	phaseDeadline = time.Now().Add(w.cfg.CoordTimeout)
	for !started {
		if time.Now().After(phaseDeadline) {
			return fmt.Errorf("shard %d: no start from coordinator %s within %v",
				w.spec.ID, w.coord, w.cfg.CoordTimeout)
		}
		if time.Since(lastReady) >= readyRetry {
			w.send(frame{kind: kindReady, shard: w.spec.ID, epoch: w.epoch})
			lastReady = time.Now()
		}
		if f, ok := w.read(buf); ok {
			switch f.kind {
			case kindStart:
				started = true
			case kindStop: // aborted deployment
				w.send(frame{kind: kindBye, shard: w.spec.ID, stats: netStats(w.runner.Stats())})
				return nil
			}
		}
	}
	w.cfg.logf("shard %d: started, %d nodes", w.spec.ID, len(w.spec.Nodes))
	w.runner.Start()

	// Phase 3: serve. Periodic idle reports carry the activity counter
	// and traffic stats (the coordinator pongs each one, so frames flow
	// both ways continuously); queries are answered with chunked tuple
	// frames; seed re-pushes home facts (datagram-loss recovery); the
	// rebalance frames (book/release/adopt/resume) re-partition the live
	// deployment; stop acknowledges with final stats and tears down. A
	// coordinator silent for the whole timeout is dead: exit rather than
	// run orphaned.
	lastIdle := time.Time{}
	lastCoord := time.Now()
	for {
		if time.Since(lastCoord) > w.cfg.CoordTimeout {
			return fmt.Errorf("shard %d: coordinator %s unreachable for %v",
				w.spec.ID, w.coord, w.cfg.CoordTimeout)
		}
		if time.Since(lastIdle) >= idlePeriod {
			w.sendIdle()
			lastIdle = time.Now()
		}
		f, ok := w.read(buf)
		if !ok {
			continue
		}
		lastCoord = time.Now()
		switch f.kind {
		case kindQuery:
			w.answerQuery(f.req, f.pred)
		case kindSeed:
			w.runner.Seed()
			w.sendIdle()
		case kindBook:
			// Epoch cutover: install the new view, fence the old one, and
			// acknowledge. A duplicate book for the installed epoch is
			// just re-acked.
			if f.epoch >= w.epoch {
				if err := w.installBook(f); err != nil {
					return err
				}
			}
			w.send(frame{kind: kindReady, shard: w.spec.ID, epoch: w.epoch})
		case kindRelease:
			w.handleRelease(f)
		case kindAdopt:
			if err := w.handleAdopt(f); err != nil {
				return err
			}
		case kindResume:
			// Only resume into the epoch we actually installed; a stale or
			// early resume is dropped and the coordinator retries.
			if f.epoch != w.epoch {
				break
			}
			for id, blob := range w.stash {
				w.cfg.logf("shard %d: importing state for adopted node %s (%d bytes)",
					w.spec.ID, id, len(blob))
				if err := w.runner.ImportNode(id, blob); err != nil {
					return fmt.Errorf("shard %d: import %s: %w", w.spec.ID, id, err)
				}
				delete(w.stash, id)
			}
			// Neighbor-side rederivation: re-send the derivations homed at
			// the moved nodes (hard-state duplicates do not re-trigger
			// strands, so their inbound views only come back via this
			// sweep). Idempotent per resume retry only in tuple-set terms —
			// counts inflate on retries, like any reseed.
			w.runner.RederiveFor(f.nodes)
			w.send(frame{kind: kindResumed, shard: w.spec.ID, epoch: w.epoch})
		case kindRederive:
			// Crash/loss recovery: re-send the derivations homed at the
			// listed nodes. Epoch-fenced (the coordinator issues these
			// after a cutover) and deduplicated by request id — a retry
			// whose ack was lost re-acks without re-inflating counts.
			if f.epoch != w.epoch {
				break
			}
			if !w.rederived[f.req] {
				w.rederived[f.req] = true
				w.runner.RederiveFor(f.nodes)
				// A fleet-wide sweep skips sources that are themselves
				// targets, which silences exactly the co-resident sweeps a
				// crashed shard needs (all its nodes are targets at once).
				// Sweep locally hosted targets one by one so siblings
				// rebuild each other's inbound views.
				local := map[string]bool{}
				for _, id := range w.runner.LocalIDs() {
					local[id] = true
				}
				for _, n := range f.nodes {
					if local[n] {
						w.runner.RederiveFor([]string{n})
					}
				}
			}
			w.send(frame{kind: kindRederived, shard: w.spec.ID, req: f.req})
		case kindStop:
			s := w.runner.Stats()
			w.send(frame{kind: kindBye, shard: w.spec.ID, stats: netStats(s)})
			w.cfg.logf("shard %d: stopping (sent %d msgs, recv %d msgs)",
				w.spec.ID, s.SentMessages, s.RecvMessages)
			return nil
		}
	}
}

// installBook installs a membership view: every off-runner entry lands
// in the runner's address book, then the runner switches to the view's
// epoch — data sent from here on carries it, data from other epochs is
// fenced.
func (w *worker) installBook(f frame) error {
	local := map[string]bool{}
	for _, id := range w.runner.LocalIDs() {
		local[id] = true
	}
	for id, addr := range f.book {
		if local[id] {
			continue
		}
		if err := w.runner.SetRemote(id, addr); err != nil {
			return err
		}
	}
	if f.epoch > w.epoch {
		// A new epoch proves the rebalance exchange that filled the
		// request-keyed caches has completed: no retry for an old
		// request can arrive anymore, so drop them.
		w.releaseCache = map[uint64][]byte{}
		w.adoptBuf = map[uint64][][]byte{}
		w.adoptDone = map[uint64]string{}
		w.rederived = map[uint64]bool{}
	}
	w.runner.SetEpoch(f.epoch)
	w.epoch = f.epoch
	return nil
}

// handleRelease exports a migrating node's state, drops the node from
// the runner, and streams the snapshot back in chunks. The export is
// cached by request id (a retry resends the same snapshot even though
// the node is already gone) and by node (a failed rebalance retried
// under a fresh request id still gets the snapshot). A release for a
// node this worker never held is ignored — the coordinator's release
// loop times out and reports it; one bad release must not kill a
// worker hosting other nodes. Releases are epoch-fenced: a delayed
// duplicate from a previous rebalance must not remove a node that has
// since been re-adopted here.
func (w *worker) handleRelease(f frame) {
	if f.epoch != w.epoch {
		return // straggler from another membership view
	}
	blob, ok := w.releaseCache[f.req]
	if !ok {
		// ExportBundle ships the durable snapshot + WAL tail when the
		// node has a store (no full state re-encode on the pause path)
		// and falls back to a bare state export without one; ImportNode
		// on the adopting side accepts either.
		if exported, err := w.runner.ExportBundle(f.node); err == nil {
			if err := w.runner.RemoveNode(f.node); err != nil {
				w.cfg.logf("shard %d: release %s: %v", w.spec.ID, f.node, err)
				return
			}
			blob = exported
			w.lastExport[f.node] = exported
			delete(w.nodes, f.node)
			w.saveNodes()
			w.cfg.logf("shard %d: released node %s (%d bytes of state)", w.spec.ID, f.node, len(blob))
		} else if prev, held := w.lastExport[f.node]; held {
			blob = prev // already released; serve the retained snapshot
		} else {
			w.cfg.logf("shard %d: ignoring release of unknown node %s", w.spec.ID, f.node)
			return
		}
		w.releaseCache[f.req] = blob
	}
	chunks := blobChunks(blob)
	for i, ch := range chunks {
		w.send(frame{kind: kindState, shard: w.spec.ID, req: f.req,
			chunk: i, nchunks: len(chunks), blob: ch})
	}
}

// handleAdopt assembles a chunked adopt transfer; once complete, the
// node is bound to a fresh local socket and its state stashed until the
// resume frame (import waits for the new epoch to be installed
// fleet-wide, so re-advertisements are not fenced). Duplicate chunks
// after completion just re-ack. Adopts are epoch-fenced like releases:
// a delayed duplicate from a previous rebalance must not re-bind a
// node that has since moved elsewhere.
func (w *worker) handleAdopt(f frame) error {
	if f.epoch != w.epoch {
		return nil // straggler from another membership view
	}
	if node, done := w.adoptDone[f.req]; done {
		w.sendAdopted(f.req, node)
		return nil
	}
	chunks := w.adoptBuf[f.req]
	if chunks == nil {
		chunks = make([][]byte, f.nchunks)
		w.adoptBuf[f.req] = chunks
	}
	if f.chunk < len(chunks) && chunks[f.chunk] == nil {
		ch := f.blob
		if ch == nil {
			ch = []byte{}
		}
		chunks[f.chunk] = ch
	}
	for _, ch := range chunks {
		if ch == nil {
			return nil // still assembling
		}
	}
	var blob []byte
	for _, ch := range chunks {
		blob = append(blob, ch...)
	}
	delete(w.adoptBuf, f.req)
	if err := w.runner.AddNode(f.node, ""); err == nil {
		w.stash[f.node] = blob
		// The node is back (or new) here: any snapshot retained from a
		// past release of it is superseded.
		delete(w.lastExport, f.node)
		w.nodes[f.node] = ""
		w.saveNodes()
		w.cfg.logf("shard %d: adopted node %s (%d bytes of state)", w.spec.ID, f.node, len(blob))
	}
	// AddNode error means the node is already hosted (a duplicate adopt
	// completed twice): re-ack with the existing binding either way.
	w.adoptDone[f.req] = f.node
	w.sendAdopted(f.req, f.node)
	return nil
}

func (w *worker) sendAdopted(req uint64, node string) {
	addr := ""
	if a := w.runner.Addr(node); a != nil {
		addr = a.String()
	}
	w.send(frame{kind: kindAdopted, shard: w.spec.ID, req: req, node: node, addr: addr})
}

// blobChunks splits an exported state into control-datagram-sized
// chunks; always at least one (possibly empty) chunk.
func blobChunks(blob []byte) [][]byte {
	var chunks [][]byte
	for len(blob) > tupleChunkSz {
		chunks = append(chunks, blob[:tupleChunkSz])
		blob = blob[tupleChunkSz:]
	}
	return append(chunks, blob)
}

func (w *worker) sendIdle() {
	w.seq++
	w.send(frame{
		kind:     kindIdle,
		shard:    w.spec.ID,
		epoch:    w.epoch,
		seq:      w.seq,
		activity: w.runner.Activity(),
		stats:    netStats(w.runner.Stats()),
		sentTo:   w.runner.SentTo(),
	})
}

// answerQuery streams a predicate snapshot back in chunks small enough
// for one datagram each. Chunk counts are recomputed per query, so a
// re-sent query (coordinator missed a chunk) re-sends a fresh snapshot.
func (w *worker) answerQuery(req uint64, pred string) {
	tuples := w.runner.TupleValues(pred)
	var chunks [][]val.Tuple
	cur, size := []val.Tuple(nil), 0
	for _, t := range tuples {
		sz := val.EncodedSize(t)
		if len(cur) > 0 && size+sz > tupleChunkSz {
			chunks = append(chunks, cur)
			cur, size = nil, 0
		}
		cur = append(cur, t)
		size += sz
	}
	chunks = append(chunks, cur) // always ≥1 chunk, possibly empty
	for i, ch := range chunks {
		w.send(frame{
			kind: kindTuples, shard: w.spec.ID, req: req,
			chunk: i, nchunks: len(chunks), tuples: ch,
		})
	}
}

// Environment variable names for the re-exec worker entry: a process
// started with these set runs a shard instead of its normal main. Env
// (not flags) keeps worker plumbing out of user-facing flag sets and
// works identically for cmd/ndlog and test binaries.
const (
	EnvManifest = "NDLOG_SHARD_MANIFEST"
	EnvShardID  = "NDLOG_SHARD_ID"
	EnvCoord    = "NDLOG_SHARD_COORD"
	EnvVerbose  = "NDLOG_SHARD_VERBOSE"
)

// WorkerEnv builds the environment entries that turn a re-exec of this
// binary into the given shard's worker process.
func WorkerEnv(manifestPath string, shardID int, coordAddr string) []string {
	return []string{
		EnvManifest + "=" + manifestPath,
		EnvShardID + "=" + strconv.Itoa(shardID),
		EnvCoord + "=" + coordAddr,
	}
}

// MaybeRunWorker checks the process environment for a shard-worker
// assignment; if present it runs the worker to completion and reports
// handled=true (the caller should exit with err's status). Binaries
// that can serve as shard hosts call this first thing in main — and
// test binaries in TestMain — so a coordinator can spawn them.
func MaybeRunWorker() (handled bool, err error) {
	path := os.Getenv(EnvManifest)
	if path == "" {
		return false, nil
	}
	id, err := strconv.Atoi(os.Getenv(EnvShardID))
	if err != nil {
		return true, fmt.Errorf("shard: bad %s: %w", EnvShardID, err)
	}
	m, err := Load(path)
	if err != nil {
		return true, err
	}
	cfg := WorkerConfig{Manifest: m, ShardID: id, Coord: os.Getenv(EnvCoord)}
	if os.Getenv(EnvVerbose) != "" {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ndnode: "+format+"\n", args...)
		}
	}
	return true, RunWorker(cfg)
}
