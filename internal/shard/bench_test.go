package shard

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"ndlog/internal/engine"
	"ndlog/internal/experiments"
	"ndlog/internal/netrun"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/topology"
)

// fig7Workload builds the Figure 7 workload as deployable source text:
// the shortest-path program under the latency metric on the scaled-down
// transit-stub overlay (14 nodes) used by the root Fig 7 benchmarks.
// Returns the program source (facts inline, so a manifest carries the
// whole workload) and the node population.
func fig7Workload() (string, []string) {
	o := experiments.BuildOverlay(experiments.Small())
	src := programs.ShortestPath("")
	for _, l := range o.Links {
		c := strconv.FormatFloat(l.Cost[topology.Latency], 'f', -1, 64)
		src += fmt.Sprintf("link(%s, %s, %s).\n", l.A, l.B, c)
		src += fmt.Sprintf("link(%s, %s, %s).\n", l.B, l.A, c)
	}
	ids := make([]string, len(o.Nodes))
	for i, n := range o.Nodes {
		ids[i] = string(n)
	}
	return src, ids
}

// BenchmarkNetrunFig7 converges the Fig 7 workload in a single process:
// every node its own UDP socket, one OS process — the PR 3 baseline
// netrun deployment. Compare with BenchmarkSharded3Fig7 (BENCH_PR4).
func BenchmarkNetrunFig7(b *testing.B) {
	src, ids := fig7Workload()
	wantResults := len(ids) * (len(ids) - 1)
	for i := 0; i < b.N; i++ {
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		r, err := netrun.New(prog, ids, engine.Options{AggSel: true})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		r.Start()
		if !r.WaitQuiescent(300*time.Millisecond, 60*time.Second) {
			b.Fatal("netrun did not quiesce")
		}
		got := len(r.Tuples("shortestPath"))
		for attempt := 0; attempt < 5 && got < wantResults; attempt++ {
			r.Seed() // datagram loss: refresh
			r.WaitQuiescent(300*time.Millisecond, 30*time.Second)
			got = len(r.Tuples("shortestPath"))
		}
		wall := time.Since(start).Seconds()
		if got < wantResults {
			b.Fatalf("converged to %d of %d results", got, wantResults)
		}
		s := r.Stats()
		r.Close()
		if i == b.N-1 {
			b.ReportMetric(wall, "s/converge")
			b.ReportMetric(float64(s.SentBytes)/1e6, "MB/run")
			b.ReportMetric(float64(s.SentMessages), "msgs/run")
		}
	}
}

// BenchmarkMigration3Fig7 converges the Fig 7 workload as three real
// OS processes, then migrates one node to another shard mid-run and
// re-converges — the PR 5 elasticity cost probe. Reported metrics:
// rebalance pause (quiesce→resume wall time, the window the deployment
// makes no progress), and the post-migration re-convergence wall time.
// Compare s/converge against BenchmarkSharded3Fig7 (no migration).
func BenchmarkMigration3Fig7(b *testing.B) {
	benchMigration3Fig7(b, false)
}

// BenchmarkDurableMigration3Fig7 is the same probe with durability on:
// every worker journals to a WAL (fsync-on-commit) and the moved node
// ships as a snapshot+WAL bundle. The pause delta against the
// non-durable benchmark is the cost of crash-survivability.
func BenchmarkDurableMigration3Fig7(b *testing.B) {
	benchMigration3Fig7(b, true)
}

func benchMigration3Fig7(b *testing.B, durable bool) {
	src, ids := fig7Workload()
	wantResults := len(ids) * (len(ids) - 1)
	for i := 0; i < b.N; i++ {
		opts := Options{AggSel: true}
		if durable {
			opts.DataDir = filepath.Join(b.TempDir(), "data")
		}
		m := &Manifest{
			Source:  src,
			Options: opts,
			Shards:  Partition(ids, 3),
		}
		manifestPath := filepath.Join(b.TempDir(), "manifest.json")
		if err := m.Save(manifestPath); err != nil {
			b.Fatal(err)
		}
		coord, err := NewCoordinator(m)
		if err != nil {
			b.Fatal(err)
		}
		err = coord.Spawn(func(shardID int) *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
			cmd.Stderr = os.Stderr
			return cmd
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := coord.WaitReady(20 * time.Second); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		// Migrate the first node to the next shard over, mid-convergence.
		node := ids[0]
		to := (coord.Owner(node) + 1) % 3
		rep, err := coord.Rebalance([]Migration{{Node: node, To: to}},
			300*time.Millisecond, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		resumed := time.Now()
		if !coord.WaitQuiescent(300*time.Millisecond, 60*time.Second) {
			b.Fatal("post-migration deployment did not quiesce")
		}
		got, err := coord.Tuples("shortestPath", 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		for attempt := 0; attempt < 5 && len(got) < wantResults; attempt++ {
			coord.Reseed()
			coord.WaitQuiescent(300*time.Millisecond, 30*time.Second)
			got, err = coord.Tuples("shortestPath", 10*time.Second)
			if err != nil {
				b.Fatal(err)
			}
		}
		wall := time.Since(start).Seconds()
		reconverge := time.Since(resumed).Seconds()
		if len(got) < wantResults {
			b.Fatalf("converged to %d of %d results", len(got), wantResults)
		}
		if err := coord.Shutdown(15 * time.Second); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(wall, "s/converge")
			b.ReportMetric(rep.Pause.Seconds(), "s/pause")
			b.ReportMetric(reconverge, "s/reconverge")
			b.ReportMetric(float64(rep.StateBytes), "state-B")
		}
	}
}

// BenchmarkSharded3Fig7 converges the same workload as three real OS
// processes (re-execs of the test binary) coordinated over the control
// plane — the BENCH_PR4 sharded configuration.
func BenchmarkSharded3Fig7(b *testing.B) {
	src, ids := fig7Workload()
	wantResults := len(ids) * (len(ids) - 1)
	for i := 0; i < b.N; i++ {
		m := &Manifest{
			Source:  src,
			Options: Options{AggSel: true},
			Shards:  Partition(ids, 3),
		}
		manifestPath := filepath.Join(b.TempDir(), "manifest.json")
		if err := m.Save(manifestPath); err != nil {
			b.Fatal(err)
		}
		coord, err := NewCoordinator(m)
		if err != nil {
			b.Fatal(err)
		}
		err = coord.Spawn(func(shardID int) *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
			cmd.Stderr = os.Stderr
			return cmd
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := coord.WaitReady(20 * time.Second); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if !coord.WaitQuiescent(300*time.Millisecond, 60*time.Second) {
			b.Fatal("sharded deployment did not quiesce")
		}
		got, err := coord.Tuples("shortestPath", 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		for attempt := 0; attempt < 5 && len(got) < wantResults; attempt++ {
			coord.Reseed()
			coord.WaitQuiescent(300*time.Millisecond, 30*time.Second)
			got, err = coord.Tuples("shortestPath", 10*time.Second)
			if err != nil {
				b.Fatal(err)
			}
		}
		wall := time.Since(start).Seconds()
		if len(got) < wantResults {
			b.Fatalf("converged to %d of %d results", len(got), wantResults)
		}
		s := coord.TotalStats()
		if err := coord.Shutdown(15 * time.Second); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(wall, "s/converge")
			b.ReportMetric(float64(s.SentBytes)/1e6, "MB/run")
			b.ReportMetric(float64(s.SentMessages), "msgs/run")
		}
	}
}
