package shard

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"ndlog/internal/durable"
	"ndlog/internal/engine"
	"ndlog/internal/experiments"
	"ndlog/internal/netrun"
	"ndlog/internal/parser"
	"ndlog/internal/programs"
	"ndlog/internal/topology"
)

// fig7Workload builds the Figure 7 workload as deployable source text:
// the shortest-path program under the latency metric on the scaled-down
// transit-stub overlay (14 nodes) used by the root Fig 7 benchmarks.
// Returns the program source (facts inline, so a manifest carries the
// whole workload) and the node population.
func fig7Workload() (string, []string) {
	o := experiments.BuildOverlay(experiments.Small())
	src := programs.ShortestPath("")
	for _, l := range o.Links {
		c := strconv.FormatFloat(l.Cost[topology.Latency], 'f', -1, 64)
		src += fmt.Sprintf("link(%s, %s, %s).\n", l.A, l.B, c)
		src += fmt.Sprintf("link(%s, %s, %s).\n", l.B, l.A, c)
	}
	ids := make([]string, len(o.Nodes))
	for i, n := range o.Nodes {
		ids[i] = string(n)
	}
	return src, ids
}

// BenchmarkNetrunFig7 converges the Fig 7 workload in a single process:
// every node its own UDP socket, one OS process — the PR 3 baseline
// netrun deployment. Compare with BenchmarkSharded3Fig7 (BENCH_PR4) and
// the batched-pipeline variants below (BENCH_PR10).
func BenchmarkNetrunFig7(b *testing.B) {
	benchNetrunFig7(b, 1, false, true, "", 300*time.Millisecond)
}

// BenchmarkNetrunFig7Batched is the tentpole configuration sweep:
// batch-at-a-time PSN drains over the shared-socket receive path, at
// the BENCH_PR10 batch sizes. batch=1 isolates the shared-socket +
// pooled-receive effect; 64 and 256 add the batched evaluate→journal
// pipeline. Fixpoints are byte-identical to the baseline's at every
// setting.
func BenchmarkNetrunFig7Batched(b *testing.B) {
	for _, batch := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchNetrunFig7(b, batch, true, true, "", 300*time.Millisecond)
		})
	}
}

// BenchmarkNetrunFig7NoPrune is the drain-bound variant: aggregate
// selections off, so every node's queue carries the full unpruned path
// exploration (~17k datagrams vs ~350 pruned) and PSN drains actually
// reach the batch size. This is the workload where batch-at-a-time
// earns its keep — the pruned convergence runs above are dominated by
// fixed setup and quiescence-poll latency, with drains too shallow to
// fill a batch. The idle window shrinks to 100 ms: this workload's
// traffic is continuous (no sub-millisecond gaps until the true
// fixpoint), and the shorter quiescence tail keeps the fixed
// detection cost from washing out the per-tuple delta being measured.
func BenchmarkNetrunFig7NoPrune(b *testing.B) {
	for _, batch := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchNetrunFig7(b, batch, true, false, "", 100*time.Millisecond)
		})
	}
}

// BenchmarkNetrunFig7Durable runs the same convergence with a WAL
// under every node (fsync-on-commit). The first row is the PR 9-era
// head configuration — tuple-at-a-time PSN, one socket + goroutine per
// node, one private WAL per node; the middle row turns on batching and
// shared sockets but keeps private WALs; the last is the full PR 10
// pipeline with shard-wide group commit. fsyncs/run is the collapsed
// figure; commits/run approximates drains, so fsyncs÷commits is the
// fsyncs-per-drain ratio the group log drives to 1. The head→pipeline
// delta is the BENCH_PR10 headline: the durable deployment is where
// the batched pipeline pays on a single-core runner, because every
// drain's journal work collapses onto one commit point.
func BenchmarkNetrunFig7Durable(b *testing.B) {
	b.Run("batch=1+per-node", func(b *testing.B) { benchNetrunFig7(b, 1, false, true, "pernode", 300*time.Millisecond) })
	b.Run("batch=64+per-node", func(b *testing.B) { benchNetrunFig7(b, 64, true, true, "pernode", 300*time.Millisecond) })
	b.Run("batch=64+group", func(b *testing.B) { benchNetrunFig7(b, 64, true, true, "group", 300*time.Millisecond) })
}

func benchNetrunFig7(b *testing.B, psnBatch int, shared, aggSel bool, durableMode string, idle time.Duration) {
	src, ids := fig7Workload()
	wantResults := len(ids) * (len(ids) - 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		r, err := netrun.NewConfigured(prog, localMap(ids),
			netrun.Config{SharedSockets: shared, GroupCommit: durableMode == "group"},
			engine.Options{AggSel: aggSel, PSNBatch: psnBatch})
		if err != nil {
			b.Fatal(err)
		}
		if durableMode != "" {
			dir := filepath.Join(b.TempDir(), "data")
			if _, err := r.EnableDurability(dir, durable.Options{Sync: durable.SyncCommit}); err != nil {
				b.Fatal(err)
			}
		}
		start := time.Now()
		r.Start()
		if !r.WaitQuiescent(idle, 60*time.Second) {
			b.Fatal("netrun did not quiesce")
		}
		got := len(r.Tuples("shortestPath"))
		for attempt := 0; attempt < 5 && got < wantResults; attempt++ {
			r.Seed() // datagram loss: refresh
			r.WaitQuiescent(idle, 30*time.Second)
			got = len(r.Tuples("shortestPath"))
		}
		wall := time.Since(start).Seconds()
		if got < wantResults {
			b.Fatalf("converged to %d of %d results", got, wantResults)
		}
		s := r.Stats()
		syncs, commits := r.DurableSyncs(), r.DurableCommits()
		r.Close()
		if i == b.N-1 {
			b.ReportMetric(wall, "s/converge")
			b.ReportMetric(float64(s.SentBytes)/1e6, "MB/run")
			b.ReportMetric(float64(s.SentMessages), "msgs/run")
			if durableMode != "" {
				b.ReportMetric(float64(syncs), "fsyncs/run")
				b.ReportMetric(float64(commits), "commits/run")
			}
		}
	}
}

func localMap(ids []string) map[string]string {
	local := make(map[string]string, len(ids))
	for _, id := range ids {
		local[id] = ""
	}
	return local
}

// BenchmarkMigration3Fig7 converges the Fig 7 workload as three real
// OS processes, then migrates one node to another shard mid-run and
// re-converges — the PR 5 elasticity cost probe. Reported metrics:
// rebalance pause (quiesce→resume wall time, the window the deployment
// makes no progress), and the post-migration re-convergence wall time.
// Compare s/converge against BenchmarkSharded3Fig7 (no migration).
func BenchmarkMigration3Fig7(b *testing.B) {
	benchMigration3Fig7(b, false)
}

// BenchmarkDurableMigration3Fig7 is the same probe with durability on:
// every worker journals to a WAL (fsync-on-commit) and the moved node
// ships as a snapshot+WAL bundle. The pause delta against the
// non-durable benchmark is the cost of crash-survivability.
func BenchmarkDurableMigration3Fig7(b *testing.B) {
	benchMigration3Fig7(b, true)
}

func benchMigration3Fig7(b *testing.B, durable bool) {
	src, ids := fig7Workload()
	wantResults := len(ids) * (len(ids) - 1)
	for i := 0; i < b.N; i++ {
		opts := Options{AggSel: true}
		if durable {
			opts.DataDir = filepath.Join(b.TempDir(), "data")
		}
		m := &Manifest{
			Source:  src,
			Options: opts,
			Shards:  Partition(ids, 3),
		}
		manifestPath := filepath.Join(b.TempDir(), "manifest.json")
		if err := m.Save(manifestPath); err != nil {
			b.Fatal(err)
		}
		coord, err := NewCoordinator(m)
		if err != nil {
			b.Fatal(err)
		}
		err = coord.Spawn(func(shardID int) *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
			cmd.Stderr = os.Stderr
			return cmd
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := coord.WaitReady(20 * time.Second); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		// Migrate the first node to the next shard over, mid-convergence.
		node := ids[0]
		to := (coord.Owner(node) + 1) % 3
		rep, err := coord.Rebalance([]Migration{{Node: node, To: to}},
			300*time.Millisecond, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		resumed := time.Now()
		if !coord.WaitQuiescent(300*time.Millisecond, 60*time.Second) {
			b.Fatal("post-migration deployment did not quiesce")
		}
		got, err := coord.Tuples("shortestPath", 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		for attempt := 0; attempt < 5 && len(got) < wantResults; attempt++ {
			coord.Reseed()
			coord.WaitQuiescent(300*time.Millisecond, 30*time.Second)
			got, err = coord.Tuples("shortestPath", 10*time.Second)
			if err != nil {
				b.Fatal(err)
			}
		}
		wall := time.Since(start).Seconds()
		reconverge := time.Since(resumed).Seconds()
		if len(got) < wantResults {
			b.Fatalf("converged to %d of %d results", len(got), wantResults)
		}
		if err := coord.Shutdown(15 * time.Second); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(wall, "s/converge")
			b.ReportMetric(rep.Pause.Seconds(), "s/pause")
			b.ReportMetric(reconverge, "s/reconverge")
			b.ReportMetric(float64(rep.StateBytes), "state-B")
		}
	}
}

// BenchmarkSharded3Fig7 converges the same workload as three real OS
// processes (re-execs of the test binary) coordinated over the control
// plane — the BENCH_PR4 sharded configuration.
func BenchmarkSharded3Fig7(b *testing.B) {
	src, ids := fig7Workload()
	wantResults := len(ids) * (len(ids) - 1)
	for i := 0; i < b.N; i++ {
		m := &Manifest{
			Source:  src,
			Options: Options{AggSel: true},
			Shards:  Partition(ids, 3),
		}
		manifestPath := filepath.Join(b.TempDir(), "manifest.json")
		if err := m.Save(manifestPath); err != nil {
			b.Fatal(err)
		}
		coord, err := NewCoordinator(m)
		if err != nil {
			b.Fatal(err)
		}
		err = coord.Spawn(func(shardID int) *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), WorkerEnv(manifestPath, shardID, coord.ControlAddr())...)
			cmd.Stderr = os.Stderr
			return cmd
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := coord.WaitReady(20 * time.Second); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if !coord.WaitQuiescent(300*time.Millisecond, 60*time.Second) {
			b.Fatal("sharded deployment did not quiesce")
		}
		got, err := coord.Tuples("shortestPath", 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		for attempt := 0; attempt < 5 && len(got) < wantResults; attempt++ {
			coord.Reseed()
			coord.WaitQuiescent(300*time.Millisecond, 30*time.Second)
			got, err = coord.Tuples("shortestPath", 10*time.Second)
			if err != nil {
				b.Fatal(err)
			}
		}
		wall := time.Since(start).Seconds()
		if len(got) < wantResults {
			b.Fatalf("converged to %d of %d results", len(got), wantResults)
		}
		s := coord.TotalStats()
		if err := coord.Shutdown(15 * time.Second); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(wall, "s/converge")
			b.ReportMetric(float64(s.SentBytes)/1e6, "MB/run")
			b.ReportMetric(float64(s.SentMessages), "msgs/run")
		}
	}
}
