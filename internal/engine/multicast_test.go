package engine

import (
	"strings"
	"testing"

	"ndlog/internal/programs"
	"ndlog/internal/simnet"
)

// multicastCluster deploys routing + multicast over the Figure 2 network
// with the given members joined to root "d".
func multicastCluster(t *testing.T, members []string) (*simnet.Sim, *Cluster) {
	t.Helper()
	src := programs.Combine(programs.ShortestPathDV(""), programs.Multicast())
	prog := mustParse(t, src)
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	for _, m := range members {
		prog.Facts = append(prog.Facts, programs.MemberFact(m, "d"))
	}
	sim := simnet.New(1)
	cl, err := NewCluster(sim, prog, Options{AggSel: true}, ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []simnet.NodeID{"a", "b", "c", "d", "e"} {
		cl.AddNode(id)
	}
	for _, l := range figure2 {
		if err := sim.AddLink(simnet.NodeID(l.a), simnet.NodeID(l.b), 0.010, 0); err != nil {
			t.Fatal(err)
		}
	}
	return sim, cl
}

func childSet(cl *Cluster) map[string]bool {
	out := map[string]bool{}
	for _, c := range cl.Tuples("child") {
		// child(parent, root, child)
		out[c.Fields[0].Addr()+"<-"+c.Fields[2].Addr()] = true
	}
	return out
}

// TestMulticastTree builds the tree for members {e, c} rooted at d on
// the Figure 2 network. Shortest paths: e-a-c-b-d and c-b-d, so the
// expected tree edges (parent <- child) are a<-e, c<-a, b<-c, d<-b,
// with interior nodes grafted as members.
func TestMulticastTree(t *testing.T) {
	_, cl := multicastCluster(t, []string{"e", "c"})
	runCluster(t, cl)
	got := childSet(cl)
	want := []string{"a<-e", "c<-a", "b<-c", "d<-b"}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing tree edge %s; have %v", w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("tree edges = %v, want exactly %v", got, want)
	}
	// Grafting: interior nodes a, b became members.
	members := map[string]bool{}
	for _, m := range cl.Tuples("member") {
		members[m.Fields[0].Addr()] = true
	}
	for _, n := range []string{"a", "b", "c", "e"} {
		if !members[n] {
			t.Errorf("node %s should be a (grafted) member", n)
		}
	}
	// Fan-out counts.
	for _, f := range cl.Tuples("fanout") {
		if f.Fields[0].Addr() == "b" && f.Fields[2].Int() != 1 {
			t.Errorf("fanout(b) = %v", f)
		}
	}
}

// TestMulticastRepair fails the link on the tree path and verifies the
// tree reroutes: with link(c,b) gone, c's route to d goes via a-b... no:
// c-a(1), a-b(5)... c's best becomes c-a-b-d? cost 1+5+1=7 vs c-b-d was
// 2. The tree must follow the new routing.
func TestMulticastRepair(t *testing.T) {
	sim, cl := multicastCluster(t, []string{"c"})
	if err := cl.Seed(); err != nil {
		t.Fatal(err)
	}
	if !sim.RunToQuiescence(5_000_000) {
		t.Fatal("initial run did not quiesce")
	}
	if !childSet(cl)["b<-c"] {
		t.Fatalf("initial tree wrong: %v", childSet(cl))
	}
	// Fail link c-b.
	sim.ScheduleFunc(1, func(now float64) {
		cl.Inject("c", Deletion(programs.LinkFact("link", "c", "b", 1)))
		cl.Inject("b", Deletion(programs.LinkFact("link", "b", "c", 1)))
	})
	if !sim.RunToQuiescence(5_000_000) {
		t.Fatal("repair did not quiesce")
	}
	got := childSet(cl)
	// New shortest path c->d: c-a-b-d (1+5+1=7). Tree edges: a<-c, b<-a, d<-b.
	for _, w := range []string{"a<-c", "b<-a", "d<-b"} {
		if !got[w] {
			t.Errorf("post-repair tree missing %s; have %v", w, got)
		}
	}
	if got["b<-c"] {
		t.Errorf("stale tree edge b<-c survived: %v", got)
	}
}

// TestMulticastProgramParses keeps the program text in sync with the
// parser and checker.
func TestMulticastProgramParses(t *testing.T) {
	src := programs.Combine(programs.ShortestPathDV(""), programs.Multicast())
	prog := mustParse(t, src)
	if prog.Query == nil || prog.Query.Pred != "child" {
		t.Errorf("query = %v", prog.Query)
	}
	if !strings.Contains(src, "mc1") {
		t.Error("multicast rules missing")
	}
}
