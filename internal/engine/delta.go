// Package engine evaluates NDlog programs. It implements the execution
// model of the paper: rule strands compiled from localized rules,
// semi-naïve (SN), buffered semi-naïve (BSN) and pipelined semi-naïve
// (PSN) evaluation, incremental view maintenance under insertions,
// deletions and updates via the count algorithm, incremental aggregates,
// and the optimizations of Section 5 (aggregate selections, periodic
// aggregate selections, query-result caching hooks, opportunistic
// message sharing).
//
// Ownership: a Node is single-threaded — drivers (Cluster, netrun, the
// shard worker) must serialize SetNow/Push/Drain/Tuples per node, and
// the node's interner is part of that state (decode through it only
// under the same discipline). Tuples are immutable; a decoded tuple
// never aliases the wire buffer it came from (copy-on-decode), and
// OutDeltas returned by Drain are owned by the caller. Encoded message
// payloads are freshly allocated per message and may be retained by
// transports.
package engine

import (
	"encoding/binary"
	"fmt"

	"ndlog/internal/val"
)

// Delta is a signed tuple: +1 for insertion, -1 for deletion. Updates are
// modelled as a deletion followed by an insertion (Section 4).
type Delta struct {
	Sign  int8
	Tuple val.Tuple
}

// Insert builds a +tuple delta.
func Insert(t val.Tuple) Delta { return Delta{Sign: +1, Tuple: t} }

// Deletion builds a -tuple delta.
func Deletion(t val.Tuple) Delta { return Delta{Sign: -1, Tuple: t} }

func (d Delta) String() string {
	sign := "+"
	if d.Sign < 0 {
		sign = "-"
	}
	return sign + d.Tuple.String()
}

// msgKind tags the wire format of a message payload.
type msgKind byte

const (
	msgDeltas msgKind = 1 // plain batch of deltas
	msgShared msgKind = 2 // share-combined batch (see share.go)
)

// EncodeDeltas marshals a batch of deltas into a message payload.
func EncodeDeltas(ds []Delta) []byte { return AppendDeltas(nil, ds) }

// AppendDeltas appends the encoded delta batch to dst and returns the
// extended buffer — transports that frame the payload (netrun's epoch
// envelope) build prefix and message in one buffer instead of copying
// the whole payload into place. The buffer is grown at most once,
// presized for the common case (short tuples), so the append chain
// doesn't reallocate several times per message.
func AppendDeltas(dst []byte, ds []Delta) []byte {
	size := 11
	for _, d := range ds {
		size += 12 + len(d.Tuple.Pred) + 12*len(d.Tuple.Fields)
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	buf := append(dst, byte(msgDeltas))
	buf = binary.AppendUvarint(buf, uint64(len(ds)))
	for _, d := range ds {
		if d.Sign >= 0 {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = val.AppendTuple(buf, d.Tuple)
	}
	return buf
}

// DecodeDeltas unmarshals a plain delta batch (caller checks the kind).
func DecodeDeltas(b []byte) ([]Delta, error) { return DecodeDeltasIn(b, nil) }

// DecodeDeltasIn is DecodeDeltas resolving every decoded tuple through
// the receiving node's interner (nil skips interning). Decoded tuples
// never alias b, so callers may reuse the read buffer.
func DecodeDeltasIn(b []byte, in *val.Interner) ([]Delta, error) {
	return DecodeDeltasInto(b, in, nil)
}

// DecodeDeltasInto is DecodeDeltasIn appending into dst, so a receive
// loop can reuse one decode scratch slice across datagrams instead of
// allocating a fresh batch per message. dst's existing elements are
// preserved; pass dst[:0] to reuse its backing array. The decoded
// tuples still never alias b (copy-on-decode), so reusing both the
// read buffer and the scratch is safe once the deltas are consumed.
func DecodeDeltasInto(b []byte, in *val.Interner, dst []Delta) ([]Delta, error) {
	if len(b) == 0 || msgKind(b[0]) != msgDeltas {
		return nil, fmt.Errorf("engine: not a delta message")
	}
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("engine: corrupt delta count")
	}
	b = b[sz:]
	// Cap preallocation by the remaining payload: every encoded delta is
	// at least one sign byte plus a tuple, so a corrupt header demanding
	// a huge count fails on truncation below instead of allocating first.
	out := dst
	if want := len(dst) + int(min(n, uint64(len(b)))); cap(out) < want {
		out = make([]Delta, len(dst), want)
		copy(out, dst)
	}
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("engine: truncated delta batch")
		}
		sign := int8(1)
		if b[0] == 0 {
			sign = -1
		}
		b = b[1:]
		t, m, err := val.DecodeTupleIn(b, in)
		if err != nil {
			return nil, fmt.Errorf("engine: bad tuple in delta batch: %w", err)
		}
		b = b[m:]
		out = append(out, Delta{Sign: sign, Tuple: t})
	}
	return out, nil
}
