package engine

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ndlog/internal/val"
)

// FuzzDecodeDeltas drives the plain-batch wire decoder with arbitrary
// bytes: it must never panic or over-allocate, and every payload it
// accepts must survive an encode/decode round trip unchanged.
func FuzzDecodeDeltas(f *testing.F) {
	seed := [][]Delta{
		nil,
		{Insert(val.NewTuple("p", val.NewAddr("a"), val.NewInt(1)))},
		{
			Insert(val.NewTuple("path", val.NewAddr("a"), val.NewAddr("d"),
				val.NewList(val.NewAddr("a"), val.NewAddr("b")), val.NewFloat(2.5))),
			Deletion(val.NewTuple("q", val.NewAddr("b"), val.NewString("x"), val.NewBool(true))),
			Insert(val.NewTuple("nilly", val.NewAddr("c"), val.Nil)),
		},
	}
	for _, ds := range seed {
		f.Add(EncodeDeltas(ds))
	}
	// Corrupt variants: huge count, truncated tuple, wrong kind byte.
	huge := []byte{byte(msgDeltas)}
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge)
	enc := EncodeDeltas(seed[2])
	f.Add(enc[:len(enc)/2])
	f.Add([]byte{0xFF, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, b []byte) {
		ds, err := DecodeDeltas(b)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		// Accepted payloads must re-encode canonically: encode(decode(x))
		// is a fixpoint. (Value equality would be too strict here — NaN
		// floats decode fine but are not Equal to themselves.)
		re := EncodeDeltas(ds)
		ds2, err := DecodeDeltas(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(ds2) != len(ds) {
			t.Fatalf("round trip %d deltas, want %d", len(ds2), len(ds))
		}
		for i := range ds {
			if ds2[i].Sign != ds[i].Sign {
				t.Fatalf("delta %d sign: %v != %v", i, ds2[i], ds[i])
			}
		}
		if re2 := EncodeDeltas(ds2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical:\n  %x\n  %x", re, re2)
		}
	})
}

// TestDecodeDeltasHugeCountHeader pins the preallocation cap: a header
// declaring 2^40 deltas over a 3-byte payload must fail on truncation,
// not allocate gigabytes first.
func TestDecodeDeltasHugeCountHeader(t *testing.T) {
	msg := []byte{byte(msgDeltas)}
	msg = binary.AppendUvarint(msg, 1<<40)
	if _, err := DecodeDeltas(msg); err == nil {
		t.Error("huge-count header should fail")
	}
	// Same for the shared-message group count.
	shared := []byte{byte(msgShared)}
	shared = binary.AppendUvarint(shared, 1<<40)
	if _, err := DecodeShared(shared); err == nil {
		t.Error("huge-group header should fail")
	}
}
