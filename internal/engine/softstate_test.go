package engine

import (
	"testing"

	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

// TestSoftStateExpiry exercises the soft-state storage model of
// Section 4.2: derived tuples with a TTL die unless re-derived, and
// their deletions propagate.
func TestSoftStateExpiry(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(hop, 5, infinity, keys(1,2)).
r1 hop(@S,@D) :- link(@S,@D,C).
r2 twoHop(@S,@D) :- hop(@S,@D).
`
	c := central(t, src, Options{})
	c.Insert(programs.LinkFact("link", "a", "b", 1))
	if len(c.Tuples("hop")) != 1 || len(c.Tuples("twoHop")) != 1 {
		t.Fatalf("initial state wrong: hop=%v twoHop=%v", c.Tuples("hop"), c.Tuples("twoHop"))
	}
	// Advance the virtual clock past the TTL and expire.
	c.Node().SetNow(10)
	c.Node().ExpireSoftState()
	c.Fixpoint()
	if len(c.Tuples("hop")) != 0 {
		t.Errorf("hop should have expired: %v", c.Tuples("hop"))
	}
	if len(c.Tuples("twoHop")) != 0 {
		t.Errorf("expiry must propagate to twoHop: %v", c.Tuples("twoHop"))
	}
	// link is hard state: a duplicate insert bumps the derivation count
	// and re-derives nothing.
	c.Node().Push(Insert(programs.LinkFact("link", "a", "b", 1)))
	c.Fixpoint()
	if len(c.Tuples("hop")) != 0 {
		t.Fatalf("duplicate hard-state insert must not re-derive: %v", c.Tuples("hop"))
	}
	// The duplicate above took link's count to 2: two deletions are
	// needed to retract it (count algorithm), after which a fresh insert
	// re-derives the soft state.
	c.Delete(programs.LinkFact("link", "a", "b", 1))
	c.Delete(programs.LinkFact("link", "a", "b", 1))
	c.Insert(programs.LinkFact("link", "a", "b", 1))
	if len(c.Tuples("hop")) != 1 || len(c.Tuples("twoHop")) != 1 {
		t.Errorf("refresh did not re-derive: hop=%v twoHop=%v", c.Tuples("hop"), c.Tuples("twoHop"))
	}
}

// TestSoftStateExpiryPendingRefresh pins the expiry-vs-drain race: a
// TTL that lapses while a rederivation of the same tuple is already
// queued (BSN buffering, timer between pumps) must be treated as a
// refresh in flight. Expiring anyway would emit a retraction wave that
// the queued insertion immediately re-derives — transiently deleting
// downstream soft/derived state (a double-delete) and churning the
// canonical interned rows.
func TestSoftStateExpiryPendingRefresh(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(hop, 5, infinity, keys(1,2)).
materialize(twoHop, 20, infinity, keys(1,2)).
r1 hop(@S,@D) :- link(@S,@D,C).
r2 twoHop(@S,@D) :- hop(@S,@D).
`
	var deletes []string
	c := central(t, src, Options{OnStore: func(nodeID string, d Delta, now float64) {
		if d.Sign < 0 {
			deletes = append(deletes, d.Tuple.Key())
		}
	}})
	c.Node().SetNow(0)
	c.Insert(programs.LinkFact("link", "a", "b", 1))
	if len(c.Tuples("hop")) != 1 || len(c.Tuples("twoHop")) != 1 {
		t.Fatalf("setup: hop=%v twoHop=%v", c.Tuples("hop"), c.Tuples("twoHop"))
	}
	// A rederivation of hop is in flight (queued, not yet drained) when
	// the TTL lapses and the expiry sweep runs.
	hop := c.Tuples("hop")[0]
	c.Node().Push(Insert(hop))
	c.Node().SetNow(10)
	c.Node().ExpireSoftState()
	c.Fixpoint()
	if len(c.Tuples("hop")) != 1 {
		t.Errorf("hop must survive expiry with a refresh in flight: %v", c.Tuples("hop"))
	}
	if len(c.Tuples("twoHop")) != 1 {
		t.Errorf("twoHop must survive: %v", c.Tuples("twoHop"))
	}
	if len(deletes) != 0 {
		t.Errorf("no retraction may be emitted for a refreshed tuple, got %v", deletes)
	}
	// The queued insert refreshed the TTL at t=10: alive at t=14, dead
	// once it lapses with no refresh pending.
	c.Node().SetNow(14)
	c.Node().ExpireSoftState()
	c.Fixpoint()
	if len(c.Tuples("hop")) != 1 {
		t.Error("refreshed hop should survive t=14")
	}
	c.Node().SetNow(16)
	c.Node().ExpireSoftState()
	c.Fixpoint()
	if len(c.Tuples("hop")) != 0 || len(c.Tuples("twoHop")) != 0 {
		t.Errorf("hop must expire at t=16: hop=%v twoHop=%v", c.Tuples("hop"), c.Tuples("twoHop"))
	}
}

// TestSoftStateRefreshKeepsAlive verifies that periodic re-derivation
// refreshes the TTL (re-insertion semantics).
func TestSoftStateRefreshKeepsAlive(t *testing.T) {
	src := `
materialize(beacon, 5, infinity, keys(1,2)).
`
	c := central(t, src, Options{})
	b := val.NewTuple("beacon", val.NewAddr("a"), val.NewInt(1))
	c.Node().SetNow(0)
	c.Insert(b)
	c.Node().SetNow(4)
	c.Insert(b) // refresh at t=4: now expires at t=9
	c.Node().SetNow(8)
	c.Node().ExpireSoftState()
	c.Fixpoint()
	if len(c.Tuples("beacon")) != 1 {
		t.Fatal("refreshed beacon should survive t=8")
	}
	c.Node().SetNow(10)
	c.Node().ExpireSoftState()
	c.Fixpoint()
	if len(c.Tuples("beacon")) != 0 {
		t.Fatal("beacon should die at t=10")
	}
}

// TestClusterSoftStateSweep drives cluster-wide expiry through the
// simulator clock.
func TestClusterSoftStateSweep(t *testing.T) {
	sim := simnet.New(1)
	prog := mustParse(t, `
materialize(link, infinity, infinity, keys(1,2)).
materialize(flood, 2, infinity, keys(1,2)).
f1 flood(@D,@S) :- #link(@S,@D,C).
`)
	prog.Facts = append(prog.Facts,
		programs.LinkFact("link", "a", "b", 1),
		programs.LinkFact("link", "b", "a", 1))
	cl, err := NewCluster(sim, prog, Options{}, ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl.AddNode("a")
	cl.AddNode("b")
	sim.AddLink("a", "b", 0.01, 0)
	if ok, err := cl.Run(100000); err != nil || !ok {
		t.Fatalf("run: %v %v", ok, err)
	}
	if len(cl.Tuples("flood")) != 2 {
		t.Fatalf("flood = %v", cl.Tuples("flood"))
	}
	sim.ScheduleFunc(10, func(now float64) { cl.ExpireAll() })
	sim.RunToQuiescence(100000)
	if len(cl.Tuples("flood")) != 0 {
		t.Errorf("flood should expire cluster-wide: %v", cl.Tuples("flood"))
	}
}

// TestLossySoftStateEventualConsistency is the Section 4.2 story: on
// lossy links, one-shot hard-state propagation can lose tuples forever,
// but soft state with periodic re-insertion (a routing protocol's
// "hello" refresh) eventually delivers everything: each refresh of a
// soft-state base tuple re-advertises it, refreshing downstream soft
// state or filling holes left by lost messages.
func TestLossySoftStateEventualConsistency(t *testing.T) {
	sim := simnet.New(99)
	prog := mustParse(t, `
materialize(link, 100, infinity, keys(1,2)).
materialize(view, 100, infinity, keys(1,2)).
v1 view(@D,@S) :- #link(@S,@D,C).
`)
	cl, err := NewCluster(sim, prog, Options{}, ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []simnet.NodeID{"a", "b", "c"} {
		cl.AddNode(id)
	}
	sim.AddLink("a", "b", 0.01, 0.7)
	sim.AddLink("b", "c", 0.01, 0.7)

	refresh := func() {
		for _, l := range [][2]string{{"a", "b"}, {"b", "a"}, {"b", "c"}, {"c", "b"}} {
			cl.Inject(l[0], Insert(programs.LinkFact("link", l[0], l[1], 1)))
		}
	}
	var rounds int
	var loop func(now float64)
	loop = func(now float64) {
		refresh()
		rounds++
		if len(cl.Tuples("view")) < 4 && rounds < 200 {
			sim.ScheduleFunc(1, loop)
		}
	}
	sim.ScheduleFunc(0.001, loop)
	if !sim.RunToQuiescence(10_000_000) {
		t.Fatal("did not quiesce")
	}
	if got := len(cl.Tuples("view")); got != 4 {
		t.Fatalf("view incomplete after %d refresh rounds: %d/4", rounds, got)
	}
	if sim.Dropped() == 0 {
		t.Error("expected losses on a 70% lossy link")
	}
	if rounds < 2 {
		t.Errorf("expected several refresh rounds under loss, got %d", rounds)
	}
}
