package engine

import (
	"fmt"

	"ndlog/internal/ast"
	"ndlog/internal/funcs"
	"ndlog/internal/planner"
	"ndlog/internal/table"
	"ndlog/internal/val"
)

// strand is one compiled rule strand (Figure 3/5 of the paper): a rule
// together with the body atom that acts as its delta input. A rule with
// n body atoms compiles into n strands; the strand whose trigger matches
// an incoming delta joins it against the stored state of the remaining
// atoms.
type strand struct {
	rule    *ast.Rule
	atoms   []*ast.Atom // body atoms in body order
	trigger int         // index into atoms of the delta input
	// code is the rule-level compiled form (slot numbering, lowered
	// body-atom arguments, tail and head), shared by the rule's strands.
	code *ruleCode
	// isAgg marks aggregate-head rules, which are evaluated through the
	// incremental GroupAgg machinery instead of join output.
	isAgg  bool
	aggIdx int // head aggregate argument position (isAgg only)
	// probes[i] is the precomputed index-probe plan for atom i: which
	// columns are bound when the join reaches that atom, and where each
	// bound value comes from (a constant or an environment slot).
	// Bound-ness is structural — it depends only on the trigger position
	// and earlier atoms — so it is computed once at compile time instead
	// of per delta. Empty for the trigger and for atoms with no bound
	// columns (those fall back to a scan).
	probes [][]probeArg
	// probeCols[i] is the column list of probes[i], in probe order; it is
	// the column set the per-node secondary index for atom i is built on.
	probeCols [][]int
}

// ruleCode is the compiled, slot-addressed form of one localized rule.
// Every variable is numbered at compile time (planner.AssignSlots); the
// evaluation path then works entirely in slot indices — no string-keyed
// environment maps survive on the join or head-instantiation path.
type ruleCode struct {
	nslots int
	// headPredHash is the head predicate's cached hash state: the fixed
	// prefix of every instantiated head's intern key, folded once at
	// compile time instead of per derivation.
	headPredHash val.Hash64
	// args[i] are the lowered arguments of body atom i: each a constant
	// or an environment slot. Shared by every strand of the rule (arg
	// lowering does not depend on the trigger position).
	args [][]slotArg
	// tail holds assignments and selections in body order, with
	// expressions compiled against the slot numbering.
	tail []tailOp
	// head describes each head argument: a direct slot copy (variables
	// and the aggregate position) or a compiled expression.
	head []headArg
}

// argKind discriminates lowered body-atom arguments.
type argKind uint8

const (
	argSlot  argKind = iota // variable: env slot index
	argConst                // literal constant
	argBad                  // computed argument (planner rejects; never unifies)
)

// slotArg is one lowered body-atom argument.
type slotArg struct {
	kind     argKind
	slot     int32
	constVal val.Value
}

// tailOp is one compiled tail term: an assignment binding a slot, or a
// selection (assignSlot < 0) filtering the join.
type tailOp struct {
	assignSlot int32
	expr       *funcs.Compiled
}

// headArg is one compiled head argument. slot >= 0 copies the slot's
// binding directly (plain variables and the aggregate variable); expr
// evaluates otherwise. aggVar names the aggregate position for error
// reporting.
type headArg struct {
	slot   int32
	aggVar string
	expr   *funcs.Compiled
}

// probeArg is one bound column of an index probe: the value is either a
// literal constant or read from an environment slot.
type probeArg struct {
	col      int
	slot     int32 // >= 0: read env slot; < 0: constVal
	constVal val.Value
}

// compileRule lowers a localized rule to its slot-addressed form.
func compileRule(r *ast.Rule, atoms []*ast.Atom) (*ruleCode, error) {
	sm := planner.AssignSlots(r)
	code := &ruleCode{nslots: sm.Len(), headPredHash: val.HashPredicate(r.Head.Pred)}

	code.args = make([][]slotArg, len(atoms))
	for i, a := range atoms {
		args := make([]slotArg, len(a.Args))
		for j, arg := range a.Args {
			switch x := arg.(type) {
			case *ast.Var:
				slot, ok := sm.Slot(x.Name)
				if !ok {
					return nil, fmt.Errorf("engine: rule %s: variable %s has no slot", r.Label, x.Name)
				}
				args[j] = slotArg{kind: argSlot, slot: int32(slot)}
			case *ast.Const:
				args[j] = slotArg{kind: argConst, constVal: x.Value}
			default:
				// Computed arguments are not allowed in body atoms (the
				// planner's checks exclude them); be safe anyway.
				args[j] = slotArg{kind: argBad}
			}
		}
		code.args[i] = args
	}

	for _, t := range r.Body {
		switch x := t.(type) {
		case *ast.Assign:
			slot, ok := sm.Slot(x.Var)
			if !ok {
				return nil, fmt.Errorf("engine: rule %s: assignment target %s has no slot", r.Label, x.Var)
			}
			ce, err := funcs.CompileExpr(x.Expr, sm.Slot)
			if err != nil {
				return nil, fmt.Errorf("engine: rule %s: %w", r.Label, err)
			}
			code.tail = append(code.tail, tailOp{assignSlot: int32(slot), expr: ce})
		case *ast.Select:
			ce, err := funcs.CompileExpr(x.Cond, sm.Slot)
			if err != nil {
				return nil, fmt.Errorf("engine: rule %s: %w", r.Label, err)
			}
			code.tail = append(code.tail, tailOp{assignSlot: -1, expr: ce})
		}
	}

	code.head = make([]headArg, len(r.Head.Args))
	for i, arg := range r.Head.Args {
		switch x := arg.(type) {
		case *ast.Agg:
			slot, ok := sm.Slot(x.Var)
			if !ok {
				return nil, fmt.Errorf("engine: rule %s: aggregate variable %s has no slot", r.Label, x.Var)
			}
			code.head[i] = headArg{slot: int32(slot), aggVar: x.Var}
		case *ast.Var:
			slot, ok := sm.Slot(x.Name)
			if !ok {
				return nil, fmt.Errorf("engine: rule %s: head variable %s has no slot", r.Label, x.Name)
			}
			code.head[i] = headArg{slot: int32(slot)}
		default:
			ce, err := funcs.CompileExpr(arg, sm.Slot)
			if err != nil {
				return nil, fmt.Errorf("engine: rule %s head: %w", r.Label, err)
			}
			code.head[i] = headArg{slot: -1, expr: ce}
		}
	}
	return code, nil
}

// computeProbes fills in the strand's probe plans. A column of atom i is
// bound iff its argument is a constant or a variable (slot) that already
// appears in the trigger atom or an earlier non-trigger atom.
func (s *strand) computeProbes() {
	bound := make([]bool, s.code.nslots)
	for _, arg := range s.code.args[s.trigger] {
		if arg.kind == argSlot {
			bound[arg.slot] = true
		}
	}
	s.probes = make([][]probeArg, len(s.atoms))
	s.probeCols = make([][]int, len(s.atoms))
	for i := range s.atoms {
		if i == s.trigger {
			continue
		}
		var probe []probeArg
		var cols []int
		for col, arg := range s.code.args[i] {
			switch arg.kind {
			case argSlot:
				if bound[arg.slot] {
					probe = append(probe, probeArg{col: col, slot: arg.slot})
					cols = append(cols, col)
				}
			case argConst:
				probe = append(probe, probeArg{col: col, slot: -1, constVal: arg.constVal})
				cols = append(cols, col)
			}
		}
		s.probes[i] = probe
		s.probeCols[i] = cols
		for _, arg := range s.code.args[i] {
			if arg.kind == argSlot {
				bound[arg.slot] = true
			}
		}
	}
}

// program is a compiled NDlog program, shared (immutable) by all nodes.
type program struct {
	source  *ast.Program         // localized program
	strands map[string][]*strand // trigger pred -> strands
	aggSels []planner.AggSelection
	decls   map[string]*ast.TableDecl
	// aggSelByPred indexes prunable aggregate selections by source pred.
	aggSelByPred map[string][]planner.AggSelection
	// maxSlots is the largest slot count of any rule; nodes size their
	// reusable slot environment to it once.
	maxSlots int
	// derived marks every predicate that appears as a rule head: its
	// hard-state contents are views, rebuildable from base facts, and so
	// are excluded from migration exports (Node.Export).
	derived map[string]bool
	// events marks lifetime-zero predicates (ast.TableDecl.IsEvent):
	// their deltas run trigger strands but are never stored, and their
	// deletions are dropped. A strand joining an event as a non-trigger
	// atom probes the event's table, which stays empty forever, so such
	// strands — including deletion strands — produce nothing, which is
	// exactly the P2 semantics: events never co-occur with anything and
	// cannot be retracted.
	events map[string]bool
}

// compile checks, localizes and compiles prog into strands.
func compile(prog *ast.Program) (*program, error) {
	if err := planner.Check(prog); err != nil {
		return nil, err
	}
	local, err := planner.Localize(prog)
	if err != nil {
		return nil, err
	}
	p := &program{
		source:       local,
		strands:      map[string][]*strand{},
		decls:        map[string]*ast.TableDecl{},
		aggSelByPred: map[string][]planner.AggSelection{},
		derived:      map[string]bool{},
		events:       map[string]bool{},
	}
	for _, d := range local.Materialized {
		p.decls[d.Name] = d
		if d.IsEvent() {
			p.events[d.Name] = true
		}
	}
	p.aggSels = planner.DetectAggSelections(local)
	for _, s := range p.aggSels {
		if s.Prunable() {
			p.aggSelByPred[s.SrcPred] = append(p.aggSelByPred[s.SrcPred], s)
		}
	}
	for _, r := range local.Rules {
		if _, _, err := planner.EvalSite(r); err != nil {
			return nil, err
		}
		// Event hygiene (the analyzer reports the same shapes with
		// positions; this guards direct engine users): a rule joining
		// two events can never fire, and aggregates cannot range over
		// or produce events — both would get silently-empty semantics.
		nEvents := 0
		for _, a := range r.Atoms() {
			if p.events[a.Pred] {
				nEvents++
			}
		}
		if nEvents > 1 {
			return nil, fmt.Errorf("rule %s: joins %d event predicates; events never co-occur", r.Label, nEvents)
		}
		if r.Head.HasAggregate() && (nEvents > 0 || p.events[r.Head.Pred]) {
			return nil, fmt.Errorf("rule %s: aggregate over or into an event predicate", r.Label)
		}
		p.derived[r.Head.Pred] = true
		atoms := r.Atoms()
		code, err := compileRule(r, atoms)
		if err != nil {
			return nil, err
		}
		if code.nslots > p.maxSlots {
			p.maxSlots = code.nslots
		}
		aggIdx := r.Head.AggregateIndex()
		for i := range atoms {
			st := &strand{
				rule:    r,
				atoms:   atoms,
				trigger: i,
				code:    code,
				isAgg:   aggIdx >= 0,
				aggIdx:  aggIdx,
			}
			st.computeProbes()
			p.strands[atoms[i].Pred] = append(p.strands[atoms[i].Pred], st)
		}
	}
	return p, nil
}

// unifySlots binds lowered atom arguments against tuple fields. It
// returns false on mismatch (constant disagreement, inconsistent
// repeated variable, or arity mismatch). Used for the trigger atom,
// whose bindings need no trail: run resets the environment per delta.
func unifySlots(args []slotArg, t val.Tuple, env *funcs.SlotEnv) bool {
	if len(args) != len(t.Fields) {
		return false
	}
	for i, a := range args {
		switch a.kind {
		case argSlot:
			if bound, ok := env.Get(int(a.slot)); ok {
				if !bound.Equal(t.Fields[i]) {
					return false
				}
				continue
			}
			env.Bind(int(a.slot), t.Fields[i])
		case argConst:
			if !a.constVal.Equal(t.Fields[i]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// bind sets a slot, recording it on the trail so the depth-first join
// can undo the binding instead of cloning the environment per candidate.
// Unification never rebinds a bound slot (it checks equality instead)
// and the planner rejects assignments that rebind, so the trail is a
// plain list of slots to unbind.
func (ctx *joinCtx) bind(slot int32, v val.Value) {
	ctx.env.Bind(int(slot), v)
	ctx.tr = append(ctx.tr, slot)
}

// unwind rolls the environment back to trail position mark.
func (ctx *joinCtx) unwind(mark int) {
	for i := len(ctx.tr) - 1; i >= mark; i-- {
		ctx.env.Unbind(int(ctx.tr[i]))
	}
	ctx.tr = ctx.tr[:mark]
}

// unifyTr is unifySlots with trail recording: new slot bindings go
// through ctx.bind so the caller can unwind them. On failure the caller
// must unwind to its own mark (partial bindings may have been made).
func (ctx *joinCtx) unifyTr(args []slotArg, t val.Tuple) bool {
	if len(args) != len(t.Fields) {
		return false
	}
	for i, a := range args {
		switch a.kind {
		case argSlot:
			if bound, ok := ctx.env.Get(int(a.slot)); ok {
				if !bound.Equal(t.Fields[i]) {
					return false
				}
				continue
			}
			ctx.bind(a.slot, t.Fields[i])
		case argConst:
			if !a.constVal.Equal(t.Fields[i]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// derived is one strand output: a head tuple destined for a location.
type derived struct {
	tuple val.Tuple
	loc   string
}

// joinCtx carries the per-delta join parameters plus reusable evaluation
// state (slot environment, binding trail, index handles), so steady-state
// joins allocate nothing per candidate. The two stamp bounds implement
// the book-keeping that prevents repeated inferences:
//
//   - PSN (Algorithm 3): every stored tuple carries a distinct logical
//     timestamp; a +delta with stamp s joins entries with stamp < s at
//     atoms before the trigger and stamp <= s at atoms after it
//     (ltBefore = leAfter = s). Theorem 2's argument — only the
//     maximum-timestamp input generates a derivation — then guarantees
//     uniqueness, including for a tuple joining itself in self-join
//     rules (counted once, at the post-trigger position).
//   - SN (Algorithm 1): tuples of iteration i share stamp i; atoms before
//     the trigger read strictly older iterations (Stamp < i) and atoms
//     after it read up to the current one (Stamp <= i), matching the
//     Δ-rule form p1^old,...,Δpk^old,pk+1,...,pn of Section 3.1.
//   - Deletions: no bounds (both maxed); every live derivation that used
//     the retracted tuple must be cancelled.
type joinCtx struct {
	cat *table.Catalog
	// ltBefore bounds atoms at positions < trigger: Stamp < ltBefore.
	ltBefore int64
	// leAfter bounds atoms at positions > trigger: Stamp <= leAfter.
	leAfter int64
	// deleted is the tuple being retracted (deletions only). For
	// counting correctness in self-joins, atoms after the trigger with
	// the same predicate also match the deleted tuple itself.
	deleted     *val.Tuple
	deletedPred string
	// res resolves a strand's per-atom table and index handles at this
	// node (strands are shared across nodes; tables are not). nil falls
	// back to Catalog.Get / EnsureIndex per probe.
	res map[*strand]*strandRes
	// cur is the resolution for the strand currently running.
	cur *strandRes
	// env and tr are the reusable slot environment and its undo trail
	// (slot indices to unbind); run resets them per delta.
	env *funcs.SlotEnv
	tr  []int32
	// in, when non-nil, resolves instantiated head tuples to their
	// canonical interned copy; headBuf is the reusable instantiation
	// buffer that makes repeated derivations allocation-free (the
	// interner copies it only for tuples never seen before).
	in      *val.Interner
	headBuf []val.Value
}

// strandRes is one node's resolved handles for one strand: the table
// and (where the probe plan has bound columns) the secondary index of
// each body atom.
type strandRes struct {
	tbl []*table.Table
	idx []*table.Index
}

// noLimit disables a stamp bound.
const noLimit = int64(1)<<62 - 1

// run evaluates the strand for one delta tuple, invoking emit for every
// derived head tuple. The delta's sign is handled by the caller: the
// same join produces insertions for +deltas and deletions for -deltas.
func (s *strand) run(ctx *joinCtx, delta val.Tuple, emit func(derived)) error {
	if ctx.env == nil || ctx.env.Len() < s.code.nslots {
		ctx.env = funcs.NewSlotEnv(s.code.nslots)
	}
	ctx.env.Reset()
	ctx.tr = ctx.tr[:0]
	ctx.cur = nil
	if ctx.res != nil {
		ctx.cur = ctx.res[s]
	}
	if !unifySlots(s.code.args[s.trigger], delta, ctx.env) {
		return nil
	}
	return s.joinFrom(ctx, 0, emit)
}

// joinFrom joins the remaining atoms (skipping the trigger) depth-first
// in body order, then evaluates assignments/selections and the head.
func (s *strand) joinFrom(ctx *joinCtx, idx int, emit func(derived)) error {
	if idx == len(s.atoms) {
		return s.finish(ctx, emit)
	}
	if idx == s.trigger {
		return s.joinFrom(ctx, idx+1, emit)
	}
	args := s.code.args[idx]
	var tbl *table.Table
	if ctx.cur != nil {
		tbl = ctx.cur.tbl[idx]
	} else {
		tbl = ctx.cat.Get(s.atoms[idx].Pred)
	}

	tryEntry := func(t val.Tuple, stamp int64) error {
		if idx < s.trigger {
			if stamp >= ctx.ltBefore {
				return nil
			}
		} else if stamp > ctx.leAfter {
			return nil
		}
		mark := len(ctx.tr)
		if !ctx.unifyTr(args, t) {
			ctx.unwind(mark)
			return nil
		}
		err := s.joinFrom(ctx, idx+1, emit)
		ctx.unwind(mark)
		return err
	}

	if probe := s.probes[idx]; len(probe) > 0 {
		// Hash the bound columns and walk the matching index bucket. A
		// hash collision admits a non-matching entry, but unifyTr checks
		// every bound column again, so collisions are filtered here.
		h := val.NewHash()
		for _, p := range probe {
			if p.slot >= 0 {
				h = h.AddValue(ctx.env.Value(int(p.slot)))
			} else {
				h = h.AddValue(p.constVal)
			}
		}
		var ix *table.Index
		if ctx.cur != nil && ctx.cur.idx[idx] != nil {
			ix = ctx.cur.idx[idx]
		} else {
			ix = tbl.EnsureIndex(s.probeCols[idx])
		}
		for _, e := range ix.Bucket(h.Sum()) {
			if err := tryEntry(e.Tuple, int64(e.Stamp)); err != nil {
				return err
			}
		}
	} else {
		var scanErr error
		tbl.Scan(func(e *table.Entry) bool {
			if err := tryEntry(e.Tuple, int64(e.Stamp)); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}

	// Deletion self-join correction: the retracted tuple still counts as
	// a join partner for later occurrences of its own predicate.
	if ctx.deleted != nil && s.atoms[idx].Pred == ctx.deletedPred && idx > s.trigger {
		if err := tryEntry(*ctx.deleted, -1); err != nil {
			return err
		}
	}
	return nil
}

// finish evaluates the tail (assignments, selections) and instantiates
// the head. Aggregate rules stop before head instantiation; the caller
// routes them through GroupAgg. Assignment bindings go on the trail so
// sibling join candidates see a clean environment.
func (s *strand) finish(ctx *joinCtx, emit func(derived)) error {
	mark := len(ctx.tr)
	defer ctx.unwind(mark)
	for _, op := range s.code.tail {
		if op.assignSlot >= 0 {
			v, err := op.expr.Eval(ctx.env)
			if err != nil {
				return fmt.Errorf("rule %s: %w", s.rule.Label, err)
			}
			ctx.bind(op.assignSlot, v)
		} else {
			ok, err := op.expr.EvalBool(ctx.env)
			if err != nil {
				return fmt.Errorf("rule %s: %w", s.rule.Label, err)
			}
			if !ok {
				return nil
			}
		}
	}
	head, err := s.instantiateHead(ctx)
	if err != nil {
		return err
	}
	emit(derived{tuple: head, loc: head.Loc()})
	return nil
}

// instantiateHead builds the head tuple from the slot environment,
// resolved through the context's interner: the fields are evaluated into
// the reusable headBuf and only tuples never derived before copy out of
// it, so re-derivations (semi-naïve rounds, soft-state refreshes, count
// cancellations) allocate nothing here. For aggregate rules, the
// aggregate position receives the raw aggregated variable's value; the
// caller replaces it with the group aggregate.
func (s *strand) instantiateHead(ctx *joinCtx) (val.Tuple, error) {
	n := len(s.code.head)
	if cap(ctx.headBuf) < n {
		ctx.headBuf = make([]val.Value, n)
	}
	fields := ctx.headBuf[:n]
	for i, ha := range s.code.head {
		if ha.slot >= 0 {
			v, ok := ctx.env.Get(int(ha.slot))
			if !ok {
				if ha.aggVar != "" {
					return val.Tuple{}, fmt.Errorf("rule %s: aggregate variable %s unbound", s.rule.Label, ha.aggVar)
				}
				// Unreachable after planner.Check (head variables are
				// bound by the body); keep the guard for safety.
				return val.Tuple{}, fmt.Errorf("rule %s head: %w", s.rule.Label, funcs.ErrUnboundVar)
			}
			fields[i] = v
			continue
		}
		v, err := ha.expr.Eval(ctx.env)
		if err != nil {
			return val.Tuple{}, fmt.Errorf("rule %s head: %w", s.rule.Label, err)
		}
		fields[i] = v
	}
	if ctx.in != nil && val.InternWorthy(fields) {
		// Resolve, not intern: most instantiated heads are explored once
		// (then pruned or replaced); only tuples that enter a table are
		// added to the pool (storeInsert), and re-derivations of those
		// resolve to the canonical copy here without allocating. Small
		// flat heads skip the probe — copying beats hashing for them.
		return ctx.in.ResolveH(s.code.headPredHash, s.rule.Head.Pred, fields), nil
	}
	return val.NewTuple(s.rule.Head.Pred, append([]val.Value(nil), fields...)...), nil
}
