package engine

import (
	"fmt"

	"ndlog/internal/ast"
	"ndlog/internal/funcs"
	"ndlog/internal/planner"
	"ndlog/internal/table"
	"ndlog/internal/val"
)

// strand is one compiled rule strand (Figure 3/5 of the paper): a rule
// together with the body atom that acts as its delta input. A rule with
// n body atoms compiles into n strands; the strand whose trigger matches
// an incoming delta joins it against the stored state of the remaining
// atoms.
type strand struct {
	rule    *ast.Rule
	atoms   []*ast.Atom // body atoms in body order
	trigger int         // index into atoms of the delta input
	// tail holds assignments and selections in body order.
	tail []ast.Term
	// isAgg marks aggregate-head rules, which are evaluated through the
	// incremental GroupAgg machinery instead of join output.
	isAgg  bool
	aggIdx int // head aggregate argument position (isAgg only)
}

// program is a compiled NDlog program, shared (immutable) by all nodes.
type program struct {
	source  *ast.Program         // localized program
	strands map[string][]*strand // trigger pred -> strands
	aggSels []planner.AggSelection
	decls   map[string]*ast.TableDecl
	// aggSelByPred indexes prunable aggregate selections by source pred.
	aggSelByPred map[string][]planner.AggSelection
}

// compile checks, localizes and compiles prog into strands.
func compile(prog *ast.Program) (*program, error) {
	if err := planner.Check(prog); err != nil {
		return nil, err
	}
	local, err := planner.Localize(prog)
	if err != nil {
		return nil, err
	}
	p := &program{
		source:       local,
		strands:      map[string][]*strand{},
		decls:        map[string]*ast.TableDecl{},
		aggSelByPred: map[string][]planner.AggSelection{},
	}
	for _, d := range local.Materialized {
		p.decls[d.Name] = d
	}
	p.aggSels = planner.DetectAggSelections(local)
	for _, s := range p.aggSels {
		if s.Prunable() {
			p.aggSelByPred[s.SrcPred] = append(p.aggSelByPred[s.SrcPred], s)
		}
	}
	for _, r := range local.Rules {
		if _, _, err := planner.EvalSite(r); err != nil {
			return nil, err
		}
		atoms := r.Atoms()
		var tail []ast.Term
		for _, t := range r.Body {
			switch t.(type) {
			case *ast.Assign, *ast.Select:
				tail = append(tail, t)
			}
		}
		aggIdx := r.Head.AggregateIndex()
		for i := range atoms {
			st := &strand{
				rule:    r,
				atoms:   atoms,
				trigger: i,
				tail:    tail,
				isAgg:   aggIdx >= 0,
				aggIdx:  aggIdx,
			}
			p.strands[atoms[i].Pred] = append(p.strands[atoms[i].Pred], st)
		}
	}
	return p, nil
}

// unify binds atom arguments against tuple fields, extending env. It
// returns false on mismatch (constant disagreement, inconsistent repeated
// variable, or arity mismatch).
func unify(a *ast.Atom, t val.Tuple, env funcs.Env) bool {
	if len(a.Args) != len(t.Fields) {
		return false
	}
	for i, arg := range a.Args {
		switch x := arg.(type) {
		case *ast.Var:
			if bound, ok := env[x.Name]; ok {
				if !bound.Equal(t.Fields[i]) {
					return false
				}
				continue
			}
			env[x.Name] = t.Fields[i]
		case *ast.Const:
			if !x.Value.Equal(t.Fields[i]) {
				return false
			}
		default:
			// Computed arguments are not allowed in body atoms (the
			// planner's checks exclude them); be safe anyway.
			return false
		}
	}
	return true
}

// derived is one strand output: a head tuple destined for a location.
type derived struct {
	tuple val.Tuple
	loc   string
}

// joinCtx carries the per-delta join parameters. The two stamp bounds
// implement the book-keeping that prevents repeated inferences:
//
//   - PSN (Algorithm 3): every stored tuple carries a distinct logical
//     timestamp; a +delta with stamp s joins entries with stamp < s at
//     atoms before the trigger and stamp <= s at atoms after it
//     (ltBefore = leAfter = s). Theorem 2's argument — only the
//     maximum-timestamp input generates a derivation — then guarantees
//     uniqueness, including for a tuple joining itself in self-join
//     rules (counted once, at the post-trigger position).
//   - SN (Algorithm 1): tuples of iteration i share stamp i; atoms before
//     the trigger read strictly older iterations (Stamp < i) and atoms
//     after it read up to the current one (Stamp <= i), matching the
//     Δ-rule form p1^old,...,Δpk^old,pk+1,...,pn of Section 3.1.
//   - Deletions: no bounds (both maxed); every live derivation that used
//     the retracted tuple must be cancelled.
type joinCtx struct {
	cat *table.Catalog
	// ltBefore bounds atoms at positions < trigger: Stamp < ltBefore.
	ltBefore int64
	// leAfter bounds atoms at positions > trigger: Stamp <= leAfter.
	leAfter int64
	// deleted is the tuple being retracted (deletions only). For
	// counting correctness in self-joins, atoms after the trigger with
	// the same predicate also match the deleted tuple itself.
	deleted     *val.Tuple
	deletedPred string
}

// noLimit disables a stamp bound.
const noLimit = int64(1)<<62 - 1

// run evaluates the strand for one delta tuple, invoking emit for every
// derived head tuple. The delta's sign is handled by the caller: the
// same join produces insertions for +deltas and deletions for -deltas.
func (s *strand) run(ctx *joinCtx, delta val.Tuple, emit func(derived)) error {
	env := funcs.Env{}
	if !unify(s.atoms[s.trigger], delta, env) {
		return nil
	}
	return s.joinFrom(ctx, 0, env, emit)
}

// joinFrom joins the remaining atoms (skipping the trigger) depth-first
// in body order, then evaluates assignments/selections and the head.
func (s *strand) joinFrom(ctx *joinCtx, idx int, env funcs.Env, emit func(derived)) error {
	if idx == len(s.atoms) {
		return s.finish(ctx, env, emit)
	}
	if idx == s.trigger {
		return s.joinFrom(ctx, idx+1, env, emit)
	}
	a := s.atoms[idx]
	tbl := ctx.cat.Get(a.Pred)

	// Choose bound columns for an index probe.
	var cols []int
	var keyParts []string
	for i, arg := range a.Args {
		switch x := arg.(type) {
		case *ast.Var:
			if v, ok := env[x.Name]; ok {
				cols = append(cols, i)
				keyParts = append(keyParts, v.String())
			}
		case *ast.Const:
			cols = append(cols, i)
			keyParts = append(keyParts, x.Value.String())
		}
	}

	tryEntry := func(t val.Tuple, stamp int64) error {
		if idx < s.trigger {
			if stamp >= ctx.ltBefore {
				return nil
			}
		} else if stamp > ctx.leAfter {
			return nil
		}
		child := env.Clone()
		if !unify(a, t, child) {
			return nil
		}
		return s.joinFrom(ctx, idx+1, child, emit)
	}

	if len(cols) > 0 {
		sig := tbl.EnsureIndex(cols)
		key := joinKey(keyParts)
		for _, e := range tbl.Match(sig, key) {
			if err := tryEntry(e.Tuple, int64(e.Stamp)); err != nil {
				return err
			}
		}
	} else {
		var scanErr error
		tbl.Scan(func(e *table.Entry) bool {
			if err := tryEntry(e.Tuple, int64(e.Stamp)); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}

	// Deletion self-join correction: the retracted tuple still counts as
	// a join partner for later occurrences of its own predicate.
	if ctx.deleted != nil && a.Pred == ctx.deletedPred && idx > s.trigger {
		if err := tryEntry(*ctx.deleted, -1); err != nil {
			return err
		}
	}
	return nil
}

func joinKey(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// finish evaluates the tail (assignments, selections) and instantiates
// the head. Aggregate rules stop before head instantiation; the caller
// routes them through GroupAgg.
func (s *strand) finish(ctx *joinCtx, env funcs.Env, emit func(derived)) error {
	for _, t := range s.tail {
		switch x := t.(type) {
		case *ast.Assign:
			v, err := funcs.Eval(x.Expr, env)
			if err != nil {
				return fmt.Errorf("rule %s: %w", s.rule.Label, err)
			}
			env[x.Var] = v
		case *ast.Select:
			ok, err := funcs.EvalBool(x.Cond, env)
			if err != nil {
				return fmt.Errorf("rule %s: %w", s.rule.Label, err)
			}
			if !ok {
				return nil
			}
		}
	}
	head, err := s.instantiateHead(env)
	if err != nil {
		return err
	}
	emit(derived{tuple: head, loc: head.Loc()})
	return nil
}

// instantiateHead builds the head tuple from the environment. For
// aggregate rules, the aggregate position receives the raw aggregated
// variable's value; the caller replaces it with the group aggregate.
func (s *strand) instantiateHead(env funcs.Env) (val.Tuple, error) {
	fields := make([]val.Value, len(s.rule.Head.Args))
	for i, arg := range s.rule.Head.Args {
		if agg, ok := arg.(*ast.Agg); ok {
			v, found := env[agg.Var]
			if !found {
				return val.Tuple{}, fmt.Errorf("rule %s: aggregate variable %s unbound", s.rule.Label, agg.Var)
			}
			fields[i] = v
			continue
		}
		v, err := funcs.Eval(arg, env)
		if err != nil {
			return val.Tuple{}, fmt.Errorf("rule %s head: %w", s.rule.Label, err)
		}
		fields[i] = v
	}
	return val.NewTuple(s.rule.Head.Pred, fields...), nil
}
