package engine

import (
	"fmt"

	"ndlog/internal/ast"
	"ndlog/internal/funcs"
	"ndlog/internal/planner"
	"ndlog/internal/table"
	"ndlog/internal/val"
)

// strand is one compiled rule strand (Figure 3/5 of the paper): a rule
// together with the body atom that acts as its delta input. A rule with
// n body atoms compiles into n strands; the strand whose trigger matches
// an incoming delta joins it against the stored state of the remaining
// atoms.
type strand struct {
	rule    *ast.Rule
	atoms   []*ast.Atom // body atoms in body order
	trigger int         // index into atoms of the delta input
	// tail holds assignments and selections in body order.
	tail []ast.Term
	// isAgg marks aggregate-head rules, which are evaluated through the
	// incremental GroupAgg machinery instead of join output.
	isAgg  bool
	aggIdx int // head aggregate argument position (isAgg only)
	// probes[i] is the precomputed index-probe plan for atom i: which
	// columns are bound when the join reaches that atom, and where each
	// bound value comes from (a constant or an environment variable).
	// Bound-ness is structural — it depends only on the trigger position
	// and earlier atoms — so it is computed once at compile time instead
	// of per delta. Empty for the trigger and for atoms with no bound
	// columns (those fall back to a scan).
	probes [][]probeArg
	// probeCols[i] is the column list of probes[i], in probe order; it is
	// the column set the per-node secondary index for atom i is built on.
	probeCols [][]int
}

// probeArg is one bound column of an index probe: the value is either a
// literal constant or looked up in the environment by name.
type probeArg struct {
	col      int
	varName  string    // non-empty: read env[varName]
	constVal val.Value // used when varName is ""
}

// computeProbes fills in the strand's probe plans. A column of atom i is
// bound iff its argument is a constant or a variable that already
// appears in the trigger atom or an earlier non-trigger atom.
func (s *strand) computeProbes() {
	bound := map[string]bool{}
	for _, arg := range s.atoms[s.trigger].Args {
		if v, ok := arg.(*ast.Var); ok {
			bound[v.Name] = true
		}
	}
	s.probes = make([][]probeArg, len(s.atoms))
	s.probeCols = make([][]int, len(s.atoms))
	for i, a := range s.atoms {
		if i == s.trigger {
			continue
		}
		var probe []probeArg
		var cols []int
		for col, arg := range a.Args {
			switch x := arg.(type) {
			case *ast.Var:
				if bound[x.Name] {
					probe = append(probe, probeArg{col: col, varName: x.Name})
					cols = append(cols, col)
				}
			case *ast.Const:
				probe = append(probe, probeArg{col: col, constVal: x.Value})
				cols = append(cols, col)
			}
		}
		s.probes[i] = probe
		s.probeCols[i] = cols
		for _, arg := range a.Args {
			if v, ok := arg.(*ast.Var); ok {
				bound[v.Name] = true
			}
		}
	}
}

// program is a compiled NDlog program, shared (immutable) by all nodes.
type program struct {
	source  *ast.Program         // localized program
	strands map[string][]*strand // trigger pred -> strands
	aggSels []planner.AggSelection
	decls   map[string]*ast.TableDecl
	// aggSelByPred indexes prunable aggregate selections by source pred.
	aggSelByPred map[string][]planner.AggSelection
}

// compile checks, localizes and compiles prog into strands.
func compile(prog *ast.Program) (*program, error) {
	if err := planner.Check(prog); err != nil {
		return nil, err
	}
	local, err := planner.Localize(prog)
	if err != nil {
		return nil, err
	}
	p := &program{
		source:       local,
		strands:      map[string][]*strand{},
		decls:        map[string]*ast.TableDecl{},
		aggSelByPred: map[string][]planner.AggSelection{},
	}
	for _, d := range local.Materialized {
		p.decls[d.Name] = d
	}
	p.aggSels = planner.DetectAggSelections(local)
	for _, s := range p.aggSels {
		if s.Prunable() {
			p.aggSelByPred[s.SrcPred] = append(p.aggSelByPred[s.SrcPred], s)
		}
	}
	for _, r := range local.Rules {
		if _, _, err := planner.EvalSite(r); err != nil {
			return nil, err
		}
		atoms := r.Atoms()
		var tail []ast.Term
		for _, t := range r.Body {
			switch t.(type) {
			case *ast.Assign, *ast.Select:
				tail = append(tail, t)
			}
		}
		aggIdx := r.Head.AggregateIndex()
		for i := range atoms {
			st := &strand{
				rule:    r,
				atoms:   atoms,
				trigger: i,
				tail:    tail,
				isAgg:   aggIdx >= 0,
				aggIdx:  aggIdx,
			}
			st.computeProbes()
			p.strands[atoms[i].Pred] = append(p.strands[atoms[i].Pred], st)
		}
	}
	return p, nil
}

// unify binds atom arguments against tuple fields, extending env. It
// returns false on mismatch (constant disagreement, inconsistent repeated
// variable, or arity mismatch).
func unify(a *ast.Atom, t val.Tuple, env funcs.Env) bool {
	if len(a.Args) != len(t.Fields) {
		return false
	}
	for i, arg := range a.Args {
		switch x := arg.(type) {
		case *ast.Var:
			if bound, ok := env[x.Name]; ok {
				if !bound.Equal(t.Fields[i]) {
					return false
				}
				continue
			}
			env[x.Name] = t.Fields[i]
		case *ast.Const:
			if !x.Value.Equal(t.Fields[i]) {
				return false
			}
		default:
			// Computed arguments are not allowed in body atoms (the
			// planner's checks exclude them); be safe anyway.
			return false
		}
	}
	return true
}

// binding records one environment mutation so the depth-first join can
// undo it instead of cloning the whole environment per candidate.
type binding struct {
	name string
	old  val.Value
	had  bool
}

// bind sets env[name] = v, recording the previous state on the trail.
func (ctx *joinCtx) bind(name string, v val.Value) {
	old, had := ctx.env[name]
	ctx.tr = append(ctx.tr, binding{name: name, old: old, had: had})
	ctx.env[name] = v
}

// unwind rolls the environment back to trail position mark.
func (ctx *joinCtx) unwind(mark int) {
	for i := len(ctx.tr) - 1; i >= mark; i-- {
		b := ctx.tr[i]
		if b.had {
			ctx.env[b.name] = b.old
		} else {
			delete(ctx.env, b.name)
		}
	}
	ctx.tr = ctx.tr[:mark]
}

// unifyTr is unify with trail recording: new variable bindings go
// through ctx.bind so the caller can unwind them. On failure the caller
// must unwind to its own mark (partial bindings may have been made).
func (ctx *joinCtx) unifyTr(a *ast.Atom, t val.Tuple) bool {
	if len(a.Args) != len(t.Fields) {
		return false
	}
	for i, arg := range a.Args {
		switch x := arg.(type) {
		case *ast.Var:
			if bound, ok := ctx.env[x.Name]; ok {
				if !bound.Equal(t.Fields[i]) {
					return false
				}
				continue
			}
			ctx.bind(x.Name, t.Fields[i])
		case *ast.Const:
			if !x.Value.Equal(t.Fields[i]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// derived is one strand output: a head tuple destined for a location.
type derived struct {
	tuple val.Tuple
	loc   string
}

// joinCtx carries the per-delta join parameters plus reusable evaluation
// state (environment, binding trail, index handles), so steady-state
// joins allocate nothing per candidate. The two stamp bounds implement
// the book-keeping that prevents repeated inferences:
//
//   - PSN (Algorithm 3): every stored tuple carries a distinct logical
//     timestamp; a +delta with stamp s joins entries with stamp < s at
//     atoms before the trigger and stamp <= s at atoms after it
//     (ltBefore = leAfter = s). Theorem 2's argument — only the
//     maximum-timestamp input generates a derivation — then guarantees
//     uniqueness, including for a tuple joining itself in self-join
//     rules (counted once, at the post-trigger position).
//   - SN (Algorithm 1): tuples of iteration i share stamp i; atoms before
//     the trigger read strictly older iterations (Stamp < i) and atoms
//     after it read up to the current one (Stamp <= i), matching the
//     Δ-rule form p1^old,...,Δpk^old,pk+1,...,pn of Section 3.1.
//   - Deletions: no bounds (both maxed); every live derivation that used
//     the retracted tuple must be cancelled.
type joinCtx struct {
	cat *table.Catalog
	// ltBefore bounds atoms at positions < trigger: Stamp < ltBefore.
	ltBefore int64
	// leAfter bounds atoms at positions > trigger: Stamp <= leAfter.
	leAfter int64
	// deleted is the tuple being retracted (deletions only). For
	// counting correctness in self-joins, atoms after the trigger with
	// the same predicate also match the deleted tuple itself.
	deleted     *val.Tuple
	deletedPred string
	// res resolves a strand's per-atom table and index handles at this
	// node (strands are shared across nodes; tables are not). nil falls
	// back to Catalog.Get / EnsureIndex per probe.
	res map[*strand]*strandRes
	// cur is the resolution for the strand currently running.
	cur *strandRes
	// env and tr are the reusable unification environment and its undo
	// trail; run resets them per delta.
	env funcs.Env
	tr  []binding
}

// strandRes is one node's resolved handles for one strand: the table
// and (where the probe plan has bound columns) the secondary index of
// each body atom.
type strandRes struct {
	tbl []*table.Table
	idx []*table.Index
}

// noLimit disables a stamp bound.
const noLimit = int64(1)<<62 - 1

// run evaluates the strand for one delta tuple, invoking emit for every
// derived head tuple. The delta's sign is handled by the caller: the
// same join produces insertions for +deltas and deletions for -deltas.
func (s *strand) run(ctx *joinCtx, delta val.Tuple, emit func(derived)) error {
	if ctx.env == nil {
		ctx.env = funcs.Env{}
	}
	clear(ctx.env)
	ctx.tr = ctx.tr[:0]
	ctx.cur = nil
	if ctx.res != nil {
		ctx.cur = ctx.res[s]
	}
	if !unify(s.atoms[s.trigger], delta, ctx.env) {
		return nil
	}
	return s.joinFrom(ctx, 0, emit)
}

// joinFrom joins the remaining atoms (skipping the trigger) depth-first
// in body order, then evaluates assignments/selections and the head.
func (s *strand) joinFrom(ctx *joinCtx, idx int, emit func(derived)) error {
	if idx == len(s.atoms) {
		return s.finish(ctx, emit)
	}
	if idx == s.trigger {
		return s.joinFrom(ctx, idx+1, emit)
	}
	a := s.atoms[idx]
	var tbl *table.Table
	if ctx.cur != nil {
		tbl = ctx.cur.tbl[idx]
	} else {
		tbl = ctx.cat.Get(a.Pred)
	}

	tryEntry := func(t val.Tuple, stamp int64) error {
		if idx < s.trigger {
			if stamp >= ctx.ltBefore {
				return nil
			}
		} else if stamp > ctx.leAfter {
			return nil
		}
		mark := len(ctx.tr)
		if !ctx.unifyTr(a, t) {
			ctx.unwind(mark)
			return nil
		}
		err := s.joinFrom(ctx, idx+1, emit)
		ctx.unwind(mark)
		return err
	}

	if probe := s.probes[idx]; len(probe) > 0 {
		// Hash the bound columns and walk the matching index bucket. A
		// hash collision admits a non-matching entry, but unifyTr checks
		// every bound column again, so collisions are filtered here.
		h := val.NewHash()
		for _, p := range probe {
			if p.varName != "" {
				h = h.AddValue(ctx.env[p.varName])
			} else {
				h = h.AddValue(p.constVal)
			}
		}
		var ix *table.Index
		if ctx.cur != nil && ctx.cur.idx[idx] != nil {
			ix = ctx.cur.idx[idx]
		} else {
			ix = tbl.EnsureIndex(s.probeCols[idx])
		}
		for _, e := range ix.Bucket(h.Sum()) {
			if err := tryEntry(e.Tuple, int64(e.Stamp)); err != nil {
				return err
			}
		}
	} else {
		var scanErr error
		tbl.Scan(func(e *table.Entry) bool {
			if err := tryEntry(e.Tuple, int64(e.Stamp)); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}

	// Deletion self-join correction: the retracted tuple still counts as
	// a join partner for later occurrences of its own predicate.
	if ctx.deleted != nil && a.Pred == ctx.deletedPred && idx > s.trigger {
		if err := tryEntry(*ctx.deleted, -1); err != nil {
			return err
		}
	}
	return nil
}

// finish evaluates the tail (assignments, selections) and instantiates
// the head. Aggregate rules stop before head instantiation; the caller
// routes them through GroupAgg. Assignment bindings go on the trail so
// sibling join candidates see a clean environment.
func (s *strand) finish(ctx *joinCtx, emit func(derived)) error {
	mark := len(ctx.tr)
	defer ctx.unwind(mark)
	for _, t := range s.tail {
		switch x := t.(type) {
		case *ast.Assign:
			v, err := funcs.Eval(x.Expr, ctx.env)
			if err != nil {
				return fmt.Errorf("rule %s: %w", s.rule.Label, err)
			}
			ctx.bind(x.Var, v)
		case *ast.Select:
			ok, err := funcs.EvalBool(x.Cond, ctx.env)
			if err != nil {
				return fmt.Errorf("rule %s: %w", s.rule.Label, err)
			}
			if !ok {
				return nil
			}
		}
	}
	head, err := s.instantiateHead(ctx.env)
	if err != nil {
		return err
	}
	emit(derived{tuple: head, loc: head.Loc()})
	return nil
}

// instantiateHead builds the head tuple from the environment. For
// aggregate rules, the aggregate position receives the raw aggregated
// variable's value; the caller replaces it with the group aggregate.
func (s *strand) instantiateHead(env funcs.Env) (val.Tuple, error) {
	fields := make([]val.Value, len(s.rule.Head.Args))
	for i, arg := range s.rule.Head.Args {
		if agg, ok := arg.(*ast.Agg); ok {
			v, found := env[agg.Var]
			if !found {
				return val.Tuple{}, fmt.Errorf("rule %s: aggregate variable %s unbound", s.rule.Label, agg.Var)
			}
			fields[i] = v
			continue
		}
		v, err := funcs.Eval(arg, env)
		if err != nil {
			return val.Tuple{}, fmt.Errorf("rule %s head: %w", s.rule.Label, err)
		}
		fields[i] = v
	}
	return val.NewTuple(s.rule.Head.Pred, fields...), nil
}
