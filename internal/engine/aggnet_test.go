package engine

import (
	"testing"

	"ndlog/internal/val"
)

// aggNetSrc: the gate atom lets one trigger delta join many item rows
// inside a single aggregate strand run.
const aggNetSrc = `
materialize(gate, infinity, infinity, keys(1)).
materialize(item, infinity, infinity, keys(1,2)).
materialize(best, infinity, infinity, keys(1)).

b1 best(@N, max<C>) :- gate(@N), item(@N, _K, C).

query best(@N, C).
`

// TestAggregateNetsIntermediateSteps: when one delta walks a group's
// max up through several join results, only the net transition may be
// emitted. Intermediate delete+insert pairs would re-trigger every
// downstream strand once per step — in recursive programs that chatter
// compounds per hop and has melted whole nodes (see runAggStrands).
func TestAggregateNetsIntermediateSteps(t *testing.T) {
	var emitted []Delta
	c := central(t, aggNetSrc, Options{
		OnDerive: func(_, rule string, d Delta) {
			if rule == "b1" {
				emitted = append(emitted, d)
			}
		},
	})
	item := func(k string, cost int64) val.Tuple {
		return val.NewTuple("item", val.NewAddr("n"), val.NewString(k), val.NewInt(cost))
	}
	// Items first: without the gate the aggregate's join is empty, so
	// nothing is emitted while they accumulate.
	c.Insert(item("a", 3))
	c.Insert(item("b", 9))
	c.Insert(item("c", 5))
	if len(emitted) != 0 {
		t.Fatalf("emissions before gate: %v", emitted)
	}

	// The gate joins all three items in one strand run. The max walks
	// 3 -> 9 internally; exactly one +best(9) may come out.
	c.Insert(val.NewTuple("gate", val.NewAddr("n")))
	if len(emitted) != 1 || emitted[0].Sign != +1 || emitted[0].Tuple.Fields[1].Int() != 9 {
		t.Fatalf("gate insert emitted %v, want single +best(n,9)", emitted)
	}
	if rows := c.Tuples("best"); len(rows) != 1 || rows[0].Fields[1].Int() != 9 {
		t.Fatalf("best = %v, want (n,9)", rows)
	}

	// Deleting the gate walks the max back down through the Removes;
	// the net emission is the single retraction of the stored value.
	emitted = nil
	c.Delete(val.NewTuple("gate", val.NewAddr("n")))
	if len(emitted) != 1 || emitted[0].Sign != -1 || emitted[0].Tuple.Fields[1].Int() != 9 {
		t.Fatalf("gate delete emitted %v, want single -best(n,9)", emitted)
	}
	if rows := c.Tuples("best"); len(rows) != 0 {
		t.Fatalf("best rows survived gate deletion: %v", rows)
	}

	// Incremental single-row path still works: re-gate, then a better
	// item replaces the stored max with one delete+insert pair.
	c.Insert(val.NewTuple("gate", val.NewAddr("n")))
	emitted = nil
	c.Insert(item("d", 12))
	if len(emitted) != 2 || emitted[0].Sign != -1 || emitted[0].Tuple.Fields[1].Int() != 9 ||
		emitted[1].Sign != +1 || emitted[1].Tuple.Fields[1].Int() != 12 {
		t.Fatalf("improvement emitted %v, want -best(9) +best(12)", emitted)
	}
}
