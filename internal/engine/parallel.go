package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// Parallel runs one NDlog program across many nodes inside a single
// process, draining independent nodes concurrently on a bounded worker
// pool (Options.Parallelism, default GOMAXPROCS). It is the real-
// concurrency counterpart of the simnet Cluster: no virtual time, no
// modeled link delays — nodes exchange deltas through in-process
// queues and the run converges as fast as the hardware allows. Use it
// for run-to-fixpoint workloads (convergence benchmarks, equivalence
// tests, the CLI's -parallel mode); latency-modeled experiments and
// soft-state timer scenarios stay on the Cluster, whose virtual time
// is single-threaded by construction.
//
// Ownership model. Each node is owned by exactly one worker at a time:
// a node is either idle, or scheduled on the ready queue, and the
// worker that dequeues it is its sole owner until it goes idle again.
// Inbound deltas land in a per-node inbox (mutex-guarded MPSC);
// delivering to an idle node schedules it, delivering to a scheduled
// or running node just grows the inbox, which the owner re-checks
// before idling — so no delivery is ever lost and no node runs on two
// workers. Workers therefore need no locks around Push/Drain, and all
// single-threaded engine invariants hold per node.
//
// Tuples cross nodes by reference (no wire encode/decode): canonical
// objects are immutable, and every node shares one concurrent sharded
// interner (val.NewConcurrentInterner), so a tuple derived at one node
// and stored at another still collapses onto a single canonical copy
// and equality stays a pointer compare fleet-wide.
//
// Quiescence is exact: a pending counter tracks scheduled-or-running
// nodes, every delivery happens from a counted worker (or from seeding
// before the wait), and the last worker to idle its node observes the
// counter hit zero — at that instant every inbox is empty and every
// queue drained, which is the distributed fixpoint.
type Parallel struct {
	prog    *program
	opts    Options
	workers int
	// in is the process-wide concurrent interner every node shares.
	in    *val.Interner
	nodes map[string]*pnode
	order []string

	ready   chan *pnode
	pending atomic.Int64
	quiet   chan struct{}

	undeliverable atomic.Int64
	ran           bool
}

// pnode pairs a node with its inbox and scheduling state.
type pnode struct {
	n  *Node
	mu sync.Mutex
	// inbox holds delivered-but-not-yet-pushed deltas (MPSC: any worker
	// appends under mu; only the owner drains it).
	inbox []Delta
	// state is pnIdle or pnScheduled, CAS-guarded: the idle→scheduled
	// transition is what enqueues the node, exactly once.
	state atomic.Int32
}

const (
	pnIdle int32 = iota
	pnScheduled
)

// NewParallel compiles prog for in-process parallel evaluation. Nodes
// must be added with AddNode before Run. SN is treated as BSN, as in
// the distributed cluster (no global iteration barrier across nodes).
func NewParallel(prog *ast.Program, opts Options) (*Parallel, error) {
	p, err := compile(prog)
	if err != nil {
		return nil, err
	}
	if opts.Mode == SN {
		opts.Mode = BSN
	}
	return &Parallel{
		prog:    p,
		opts:    opts,
		workers: opts.parallelism(),
		in:      val.NewConcurrentInterner(),
		nodes:   map[string]*pnode{},
		quiet:   make(chan struct{}, 1),
	}, nil
}

// AddNode registers a node runtime. All nodes share the executor's
// concurrent interner; each node's evaluation itself stays sequential
// (one worker owns it at a time), so per-node hooks and arena mode
// work unchanged.
func (p *Parallel) AddNode(id string) *Node {
	n := newNodeCfg(id, p.prog, p.opts, nodeCfg{shared: p.in})
	pn := &pnode{n: n}
	p.nodes[id] = pn
	p.order = append(p.order, id)
	return n
}

// Node returns the runtime for a node ID, or nil.
func (p *Parallel) Node(id string) *Node {
	if pn := p.nodes[id]; pn != nil {
		return pn.n
	}
	return nil
}

// Nodes returns all node IDs in sorted order.
func (p *Parallel) Nodes() []string {
	out := append([]string(nil), p.order...)
	sort.Strings(out)
	return out
}

// Workers returns the resolved worker-pool size.
func (p *Parallel) Workers() int { return p.workers }

// Undeliverable counts deltas routed to destinations with no node.
func (p *Parallel) Undeliverable() int { return int(p.undeliverable.Load()) }

// Inject queues a delta at a node before Run (seeding beyond the
// program's base facts, e.g. randomized workloads).
func (p *Parallel) Inject(nodeID string, d Delta) error {
	if p.ran {
		return fmt.Errorf("engine: parallel executor already ran")
	}
	pn, ok := p.nodes[nodeID]
	if !ok {
		return fmt.Errorf("engine: inject into unknown node %q", nodeID)
	}
	pn.inbox = append(pn.inbox, d)
	return nil
}

// Run seeds the program's base facts at their home nodes and drives
// the fleet to quiescence. One-shot: a Parallel executor runs once.
func (p *Parallel) Run() error {
	if p.ran {
		return fmt.Errorf("engine: parallel executor already ran")
	}
	p.ran = true
	for _, f := range p.prog.source.Facts {
		pn, ok := p.nodes[f.Loc()]
		if !ok {
			return fmt.Errorf("engine: fact %v homed at unknown node %q", f, f.Loc())
		}
		pn.inbox = append(pn.inbox, Insert(f))
	}
	// The ready queue holds each node at most once (the idle→scheduled
	// CAS), so a buffer of len(nodes) means senders never block.
	p.ready = make(chan *pnode, len(p.nodes)+1)
	seeded := 0
	for _, id := range p.order {
		pn := p.nodes[id]
		if len(pn.inbox) > 0 && pn.state.CompareAndSwap(pnIdle, pnScheduled) {
			p.pending.Add(1)
			p.ready <- pn
			seeded++
		}
	}
	if seeded == 0 {
		return nil // nothing to do
	}

	var wg sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pn := range p.ready {
				p.work(pn)
			}
		}()
	}
	<-p.quiet
	close(p.ready)
	wg.Wait()
	return nil
}

// work owns pn until it goes idle: push the inbox, drain to a local
// fixpoint, route the outbound deltas, and re-check the inbox under
// the lock before idling so a delivery racing the drain is never lost.
func (p *Parallel) work(pn *pnode) {
	for {
		pn.mu.Lock()
		batch := pn.inbox
		pn.inbox = nil
		pn.mu.Unlock()
		for _, d := range batch {
			pn.n.Push(d)
		}
		p.dispatch(pn.n.Drain())
		pn.mu.Lock()
		if len(pn.inbox) > 0 {
			// New deltas arrived during the drain; keep ownership and
			// loop (equivalent to re-scheduling, minus the queue trip).
			pn.mu.Unlock()
			continue
		}
		pn.state.Store(pnIdle)
		pn.mu.Unlock()
		if p.pending.Add(-1) == 0 {
			// Counter at zero with every node idle: fixpoint. Every
			// delivery is made by a worker whose node is still counted,
			// so the counter cannot tick zero with a delivery in flight.
			p.quiet <- struct{}{}
		}
		return
	}
}

// dispatch routes one drain's outbound deltas. Drain output is sorted
// by destination, so each destination is one contiguous run delivered
// under a single inbox lock.
func (p *Parallel) dispatch(outs []OutDelta) {
	for i := 0; i < len(outs); {
		j := i
		for j < len(outs) && outs[j].Dst == outs[i].Dst {
			j++
		}
		pn, ok := p.nodes[outs[i].Dst]
		if !ok {
			p.undeliverable.Add(int64(j - i))
			i = j
			continue
		}
		pn.mu.Lock()
		for k := i; k < j; k++ {
			pn.inbox = append(pn.inbox, outs[k].Delta)
		}
		pn.mu.Unlock()
		if pn.state.CompareAndSwap(pnIdle, pnScheduled) {
			p.pending.Add(1)
			p.ready <- pn
		}
		i = j
	}
}

// Tuples gathers a predicate's tuples across all nodes, sorted. Call
// after Run returns.
func (p *Parallel) Tuples(pred string) []val.Tuple {
	var out []val.Tuple
	for _, id := range p.Nodes() {
		out = append(out, p.nodes[id].n.Tuples(pred)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// QueryResults returns the program's query predicate tuples fleet-wide.
func (p *Parallel) QueryResults() []val.Tuple {
	if p.prog.source.Query == nil {
		return nil
	}
	return p.Tuples(p.prog.source.Query.Pred)
}
