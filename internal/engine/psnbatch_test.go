package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ndlog/internal/programs"
	"ndlog/internal/val"
)

// psnGrid is the PSNBatch × Parallelism grid every batched-PSN
// equivalence trial runs over; (1, 1) is the tuple-at-a-time reference.
var psnGrid = []struct{ batch, par int }{
	{1, 1}, {16, 1}, {256, 1}, {16, 4}, {256, 4},
}

// TestPSNBatchEquivalenceRandomized asserts that batched PSN drains
// (Options.PSNBatch) reach byte-identical fixpoints to tuple-at-a-time
// evaluation on a randomized aggregate workload — after the initial
// convergence and after count-algorithm deletions of base links, which
// force the batch-flush barrier on every retraction.
func TestPSNBatchEquivalenceRandomized(t *testing.T) {
	const (
		nNodes = 10
		nEdges = 15
		trials = 3
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		ids := make([]string, nNodes)
		for i := range ids {
			ids[i] = fmt.Sprintf("n%02d", i)
		}
		type link struct {
			a, b string
			cost float64
		}
		seen := map[[2]string]bool{}
		var links []link
		for len(links) < nEdges {
			a, b := ids[rng.Intn(nNodes)], ids[rng.Intn(nNodes)]
			if a == b || seen[[2]string{a, b}] {
				continue
			}
			seen[[2]string{a, b}] = true
			links = append(links, link{a: a, b: b, cost: float64(1 + rng.Intn(9))})
		}
		victim := links[rng.Intn(len(links))]

		run := func(batch, par int, aggsel bool) ([]byte, []byte) {
			prog := mustParse(t, programs.ShortestPath(""))
			for _, l := range links {
				prog.Facts = append(prog.Facts,
					programs.LinkFact("link", l.a, l.b, l.cost),
					programs.LinkFact("link", l.b, l.a, l.cost))
			}
			c, err := NewCentral(prog, Options{PSNBatch: batch, Parallelism: par, AggSel: aggsel})
			if err != nil {
				t.Fatal(err)
			}
			c.LoadFacts()
			full := encodeFixpoint(c.QueryResults())
			// Count-algorithm retraction of one base link (both directions):
			// in a batched drain every deletion flushes the pending batch
			// and takes the reference path.
			c.Delete(programs.LinkFact("link", victim.a, victim.b, victim.cost))
			c.Delete(programs.LinkFact("link", victim.b, victim.a, victim.cost))
			return full, encodeFixpoint(c.QueryResults())
		}

		for _, aggsel := range []bool{false, true} {
			wantFull, wantDel := run(1, 1, aggsel)
			for _, g := range psnGrid[1:] {
				gotFull, gotDel := run(g.batch, g.par, aggsel)
				if !bytes.Equal(gotFull, wantFull) {
					t.Fatalf("trial %d: batch=%d par=%d aggsel=%v fixpoint differs from tuple-at-a-time",
						trial, g.batch, g.par, aggsel)
				}
				if !bytes.Equal(gotDel, wantDel) {
					t.Fatalf("trial %d: batch=%d par=%d aggsel=%v post-deletion fixpoint differs",
						trial, g.batch, g.par, aggsel)
				}
			}
		}
	}
}

// TestPSNBatchDRedEquivalence covers the recursive non-aggregate side:
// batched PSN must match tuple-at-a-time both at the transitive-closure
// fixpoint and after a DRed deletion's over-delete/re-derive sweep.
func TestPSNBatchDRedEquivalence(t *testing.T) {
	const nNodes = 16
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		var edges [][2]string
		seen := map[[2]string]bool{}
		for len(edges) < 48 {
			a := fmt.Sprintf("v%d", rng.Intn(nNodes))
			b := fmt.Sprintf("v%d", rng.Intn(nNodes))
			if a == b || seen[[2]string{a, b}] {
				continue
			}
			seen[[2]string{a, b}] = true
			edges = append(edges, [2]string{a, b})
		}
		run := func(batch, par int) ([]byte, []byte) {
			c, err := NewCentral(mustParse(t, tcSrc), Options{PSNBatch: batch, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range edges {
				c.node.Push(Insert(edge(e[0], e[1])))
			}
			c.Fixpoint()
			full := encodeFixpoint(c.Tuples("reach"))
			if err := c.DeleteDRed(edge(edges[0][0], edges[0][1])); err != nil {
				t.Fatal(err)
			}
			return full, encodeFixpoint(c.Tuples("reach"))
		}
		wantFull, wantDel := run(1, 1)
		for _, g := range psnGrid[1:] {
			gotFull, gotDel := run(g.batch, g.par)
			if !bytes.Equal(gotFull, wantFull) {
				t.Fatalf("trial %d: batch=%d par=%d fixpoint differs from tuple-at-a-time", trial, g.batch, g.par)
			}
			if !bytes.Equal(gotDel, wantDel) {
				t.Fatalf("trial %d: batch=%d par=%d post-DRed fixpoint differs", trial, g.batch, g.par)
			}
		}
	}
}

// TestPSNBatchEvictionBarrier pins the displacement barrier: a bounded
// table's evictions and a keyed table's replacements must behave
// identically under batching (the probe flushes and falls back to the
// reference path).
func TestPSNBatchEvictionBarrier(t *testing.T) {
	src := `
materialize(latest, infinity, infinity, keys(1)).
materialize(seenAt, infinity, 3, keys(1,2)).
r1 latest(@N, X) :- obs(@N, X).
r2 seenAt(@N, X) :- obs(@N, X).
`
	run := func(batch int) ([]byte, []byte) {
		c, err := NewCentral(mustParse(t, src), Options{PSNBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			c.node.Push(Insert(val.NewTuple("obs", val.NewAddr("n"), val.NewInt(int64(i)))))
		}
		c.Fixpoint()
		return encodeFixpoint(c.Tuples("latest")), encodeFixpoint(c.Tuples("seenAt"))
	}
	wantL, wantS := run(1)
	for _, batch := range []int{4, 256} {
		gotL, gotS := run(batch)
		if !bytes.Equal(gotL, wantL) {
			t.Fatalf("batch=%d: keyed replacement state differs", batch)
		}
		if !bytes.Equal(gotS, wantS) {
			t.Fatalf("batch=%d: bounded-table eviction state differs", batch)
		}
	}
}
