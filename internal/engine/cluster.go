package engine

import (
	"fmt"
	"sort"

	"ndlog/internal/ast"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

// ClusterConfig tunes the distributed deployment.
type ClusterConfig struct {
	// ProcDelay is the per-message processing cost at the sender. Sends
	// from one node are serialized ProcDelay apart (a node's CPU/NIC
	// handles one tuple at a time), which is what spreads traffic over
	// virtual time the way the paper's testbed deployment does.
	ProcDelay float64
	// BSNDelay batches message arrivals: with Mode == BSN, a node
	// processes its buffered deltas BSNDelay seconds after the first
	// arrival instead of immediately.
	BSNDelay float64
	// Share enables opportunistic message sharing; outbound deltas are
	// buffered Share.Delay seconds and combined per destination.
	Share *ShareConfig
	// Batch, when > 0 and Share is nil, buffers outbound deltas for
	// Batch seconds and sends one plain message per destination per
	// flush. This is the fair no-sharing baseline for Figure 12.
	Batch float64
}

// Cluster runs one NDlog program across the nodes of a simulated
// network. Every registered simulator node gets its own runtime; base
// facts are routed to their location specifiers; derived tuples travel
// as messages.
type Cluster struct {
	sim   *simnet.Sim
	prog  *program
	opts  Options
	cfg   ClusterConfig
	nodes map[string]*Node

	// timer arming state, per node
	aggselArmed map[string]bool
	shareArmed  map[string]bool
	bsnArmed    map[string]bool
	// shareBuf buffers outbound deltas per node -> dst between flush
	// timers; the inner maps and their slices are reused across flushes
	// (cleared, not reallocated). sharePending counts buffered deltas
	// per node, since empty-but-retained slices no longer mean "idle".
	shareBuf     map[string]map[string][]Delta
	sharePending map[string]int
	// sendFree is the virtual time each node's sender becomes free;
	// outbound messages depart serialized ProcDelay apart.
	sendFree map[string]float64

	// outBuf/outOrder are sendBatched's reusable per-pump-round scratch:
	// the simulator is single-threaded, so one set serves every node.
	// Slices are emptied (and their delta elements cleared, releasing
	// the tuple references) after each round instead of reallocated.
	outBuf   map[string][]Delta
	outOrder []string
	// dstScratch is flushShare's reusable sorted-destination scratch.
	dstScratch []string

	undeliverable int
}

// NewCluster compiles prog and attaches a runtime to every node already
// registered in sim... nodes must be added to the cluster (AddNode), not
// the simulator directly, so the cluster can install its handlers.
func NewCluster(sim *simnet.Sim, prog *ast.Program, opts Options, cfg ClusterConfig) (*Cluster, error) {
	p, err := compile(prog)
	if err != nil {
		return nil, err
	}
	if opts.Mode == SN {
		// Distributed execution cannot run global SN iterations (that
		// would need the barrier synchronization the paper rejects);
		// treat it as BSN, the local-iteration relaxation.
		opts.Mode = BSN
	}
	return &Cluster{
		sim:          sim,
		prog:         p,
		opts:         opts,
		cfg:          cfg,
		nodes:        map[string]*Node{},
		aggselArmed:  map[string]bool{},
		shareArmed:   map[string]bool{},
		bsnArmed:     map[string]bool{},
		shareBuf:     map[string]map[string][]Delta{},
		sharePending: map[string]int{},
		sendFree:     map[string]float64{},
		outBuf:       map[string][]Delta{},
	}, nil
}

// AddNode registers a node with both the simulator and the cluster.
func (c *Cluster) AddNode(id simnet.NodeID) *Node {
	n := newNode(string(id), c.prog, c.opts)
	c.nodes[string(id)] = n
	c.sim.AddNode(id, &clusterHandler{c: c, n: n})
	return n
}

// Node returns the runtime for a node ID.
func (c *Cluster) Node(id simnet.NodeID) *Node { return c.nodes[string(id)] }

// Nodes returns all node IDs in sorted order.
func (c *Cluster) Nodes() []string {
	out := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Undeliverable counts derived tuples whose destination had no direct
// link from the deriving node (a violation of link-restriction; zero for
// well-formed programs).
func (c *Cluster) Undeliverable() int { return c.undeliverable }

// Seed inserts the program's base facts at their home nodes. Call before
// running the simulator.
func (c *Cluster) Seed() error {
	for _, f := range c.prog.source.Facts {
		if err := c.Inject(f.Loc(), Insert(f)); err != nil {
			return err
		}
	}
	return nil
}

// Inject pushes a delta into a node's queue and pumps it, as if it had
// arrived at the current virtual time. Use from simnet.ScheduleFunc for
// mid-run updates.
func (c *Cluster) Inject(nodeID string, d Delta) error {
	n, ok := c.nodes[nodeID]
	if !ok {
		return fmt.Errorf("engine: inject into unknown node %q", nodeID)
	}
	n.SetNow(c.sim.Now())
	n.Push(d)
	c.pump(n)
	return nil
}

// Run seeds the program facts and drives the simulator to quiescence.
// It returns false if maxEvents elapsed first.
func (c *Cluster) Run(maxEvents int) (bool, error) {
	if err := c.Seed(); err != nil {
		return false, err
	}
	return c.sim.RunToQuiescence(maxEvents), nil
}

// Tuples gathers a predicate's tuples across all nodes, sorted.
func (c *Cluster) Tuples(pred string) []val.Tuple {
	var out []val.Tuple
	for _, id := range c.Nodes() {
		out = append(out, c.nodes[id].Tuples(pred)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// QueryResults returns the program's query predicate tuples cluster-wide.
func (c *Cluster) QueryResults() []val.Tuple {
	if c.prog.source.Query == nil {
		return nil
	}
	return c.Tuples(c.prog.source.Query.Pred)
}

// clusterHandler adapts a Node to the simulator's Handler interface.
type clusterHandler struct {
	c *Cluster
	n *Node
}

func (h *clusterHandler) HandleMessage(now float64, from simnet.NodeID, payload []byte) {
	h.n.SetNow(now)
	// Decode against the receiving node's interner: a tuple this node has
	// seen (stored, derived, or previously received) decodes to its
	// canonical copy without allocating.
	deltas, err := DecodeMessageIn(payload, h.n.Interner())
	if err != nil {
		panic(fmt.Sprintf("engine: node %s: %v", h.n.id, err))
	}
	for _, d := range deltas {
		h.n.Push(d)
	}
	if h.c.opts.Mode == BSN && h.c.cfg.BSNDelay > 0 {
		// Buffer: process after the batching delay.
		if !h.c.bsnArmed[h.n.id] {
			h.c.bsnArmed[h.n.id] = true
			h.c.sim.ScheduleTimer(simnet.NodeID(h.n.id), h.c.cfg.BSNDelay, "bsn")
		}
		return
	}
	h.c.pump(h.n)
}

func (h *clusterHandler) HandleTimer(now float64, key string) {
	h.n.SetNow(now)
	switch key {
	case "bsn":
		h.c.bsnArmed[h.n.id] = false
		h.c.pump(h.n)
	case "aggsel":
		h.c.aggselArmed[h.n.id] = false
		h.n.FlushPending()
		h.c.pump(h.n)
	case "share":
		h.c.shareArmed[h.n.id] = false
		h.c.flushShare(h.n)
	case "expire":
		h.n.ExpireSoftState()
		h.c.pump(h.n)
	}
}

// pump drains a node and routes its outbound deltas, then re-arms any
// timers the node still needs. In the unbuffered configuration the
// deltas of one pump round are batched per destination — one message
// carries every tuple bound for the same neighbor — so the per-message
// header and simulator event cost amortize (ROADMAP "batched wire
// encoding"); delivery order per destination is unchanged.
func (c *Cluster) pump(n *Node) {
	outs := n.Drain()
	if len(outs) > 0 {
		if c.cfg.Share != nil || c.cfg.Batch > 0 {
			for _, o := range outs {
				c.bufferOut(n, o)
			}
		} else {
			c.sendBatched(n, outs)
		}
	}
	if n.PendingGroups() > 0 && !c.aggselArmed[n.id] && c.opts.AggSelPeriod > 0 {
		c.aggselArmed[n.id] = true
		c.sim.ScheduleTimer(simnet.NodeID(n.id), c.opts.AggSelPeriod, "aggsel")
	}
}

// sendBatched groups one pump round's outbound deltas by destination
// (first-appearance order, for determinism) and sends one plain message
// per destination. The grouping map and order slice are the cluster's
// reusable scratch: encode copies every tuple into the payload, so the
// buffers are emptied — not reallocated — after the round, and the
// delta elements cleared so the scratch pins no tuples between rounds.
func (c *Cluster) sendBatched(n *Node, outs []OutDelta) {
	byDst := c.outBuf
	order := c.outOrder[:0]
	for _, o := range outs {
		ds := byDst[o.Dst]
		if len(ds) == 0 {
			order = append(order, o.Dst)
		}
		byDst[o.Dst] = append(ds, o.Delta)
	}
	for _, dst := range order {
		ds := byDst[dst]
		c.sendNow(n, dst, EncodeDeltas(ds))
		clear(ds)
		byDst[dst] = ds[:0]
	}
	c.outOrder = order[:0]
}

// bufferOut holds a delta in the share/batch buffer until the flush
// timer fires.
func (c *Cluster) bufferOut(n *Node, o OutDelta) {
	buf := c.shareBuf[n.id]
	if buf == nil {
		buf = map[string][]Delta{}
		c.shareBuf[n.id] = buf
	}
	buf[o.Dst] = append(buf[o.Dst], o.Delta)
	c.sharePending[n.id]++
	if !c.shareArmed[n.id] {
		c.shareArmed[n.id] = true
		delay := c.cfg.Batch
		if c.cfg.Share != nil {
			delay = c.cfg.Share.Delay
		}
		c.sim.ScheduleTimer(simnet.NodeID(n.id), delay, "share")
	}
}

func (c *Cluster) flushShare(n *Node) {
	if c.sharePending[n.id] == 0 {
		return
	}
	c.sharePending[n.id] = 0
	buf := c.shareBuf[n.id]
	dsts := c.dstScratch[:0]
	for d, ds := range buf {
		if len(ds) > 0 {
			dsts = append(dsts, d)
		}
	}
	sort.Strings(dsts)
	for _, dst := range dsts {
		deltas := buf[dst]
		var payload []byte
		if c.cfg.Share != nil {
			payload = EncodeShared(c.cfg.Share, deltas)
		} else {
			payload = EncodeDeltas(deltas)
		}
		c.sendNow(n, dst, payload)
		// Keep the per-destination slice for the next flush; drop its
		// tuple references now.
		clear(deltas)
		buf[dst] = deltas[:0]
	}
	c.dstScratch = dsts[:0]
}

func (c *Cluster) sendNow(n *Node, dst string, payload []byte) {
	now := c.sim.Now()
	depart := now + c.cfg.ProcDelay
	if free := c.sendFree[n.id]; free > depart {
		depart = free
	}
	c.sendFree[n.id] = depart + c.cfg.ProcDelay
	err := c.sim.Send(simnet.NodeID(n.id), simnet.NodeID(dst), payload, depart-now)
	if err != nil {
		c.undeliverable++
	}
}

// ExpireAll triggers soft-state expiry on every node at the current
// virtual time (drive from simnet.ScheduleFunc for periodic sweeps).
func (c *Cluster) ExpireAll() {
	for _, id := range c.Nodes() {
		n := c.nodes[id]
		n.SetNow(c.sim.Now())
		n.ExpireSoftState()
		c.pump(n)
	}
}
