package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/parser"
	"ndlog/internal/val"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func central(t *testing.T, src string, opts Options) *Central {
	t.Helper()
	c, err := NewCentral(mustParse(t, src), opts)
	if err != nil {
		t.Fatalf("NewCentral: %v", err)
	}
	c.LoadFacts()
	return c
}

const tcSrc = `
materialize(edge, infinity, infinity, keys(1,2)).
r1 reach(@S,@D) :- #edge(@S,@D).
r2 reach(@S,@D) :- #edge(@S,@Z), reach(@Z,@D).
query reach(@S,@D).
`

func edge(s, d string) val.Tuple {
	return val.NewTuple("edge", val.NewAddr(s), val.NewAddr(d))
}

func reach(s, d string) val.Tuple {
	return val.NewTuple("reach", val.NewAddr(s), val.NewAddr(d))
}

// tcOracle computes transitive closure by brute force.
func tcOracle(edges [][2]string) map[string]bool {
	adj := map[string]map[string]bool{}
	nodes := map[string]bool{}
	for _, e := range edges {
		if adj[e[0]] == nil {
			adj[e[0]] = map[string]bool{}
		}
		adj[e[0]][e[1]] = true
		nodes[e[0]] = true
		nodes[e[1]] = true
	}
	out := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for s := range nodes {
			for z := range adj[s] {
				if !out[s+","+z] {
					out[s+","+z] = true
					changed = true
				}
				for d := range nodes {
					if out[z+","+d] && !out[s+","+d] {
						out[s+","+d] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

func reachSet(c *Central) map[string]bool {
	out := map[string]bool{}
	for _, t := range c.Tuples("reach") {
		out[t.Fields[0].Addr()+","+t.Fields[1].Addr()] = true
	}
	return out
}

func sameSet(t *testing.T, got, want map[string]bool, label string) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing %s", label, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: spurious %s", label, k)
		}
	}
}

func TestCentralTransitiveClosure(t *testing.T) {
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"b", "e"}, {"e", "c"}}
	for _, mode := range []Mode{PSN, SN, BSN} {
		c := central(t, tcSrc, Options{Mode: mode})
		for _, e := range edges {
			c.Insert(edge(e[0], e[1]))
		}
		sameSet(t, reachSet(c), tcOracle(edges), mode.String())
	}
}

func TestTheorem1SNEqualsPSNRandomGraphs(t *testing.T) {
	// Theorem 1: FPS(p) = FPP(p) — SN and PSN compute the same fixpoint.
	// Random graphs, random insertion orders.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(6)
		var edges [][2]string
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.3 {
					edges = append(edges, [2]string{node(i), node(j)})
				}
			}
		}
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

		results := map[Mode]map[string]bool{}
		for _, mode := range []Mode{PSN, SN} {
			c := central(t, tcSrc, Options{Mode: mode})
			// Insert in batches to exercise iteration batching in SN.
			for i := 0; i < len(edges); {
				batch := 1 + rng.Intn(3)
				for j := 0; j < batch && i < len(edges); j++ {
					c.node.Push(Insert(edge(edges[i][0], edges[i][1])))
					i++
				}
				c.Fixpoint()
			}
			results[mode] = reachSet(c)
		}
		oracle := tcOracle(edges)
		sameSet(t, results[PSN], oracle, fmt.Sprintf("trial %d psn", trial))
		sameSet(t, results[SN], oracle, fmt.Sprintf("trial %d sn", trial))
	}
}

func TestTheorem2DerivationCounts(t *testing.T) {
	// Theorem 2: no repeated inferences. On a diamond, reach(a,d) has
	// exactly two derivations (via b and via c); the count algorithm's
	// per-tuple count exposes any duplicate inference.
	c := central(t, tcSrc, Options{})
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		c.Insert(edge(e[0], e[1]))
	}
	counts := map[string]int{
		"reach(a,b)": 1, "reach(a,c)": 1, "reach(b,d)": 1, "reach(c,d)": 1,
		"reach(a,d)": 2,
	}
	tbl := c.node.cat.Get("reach")
	for key, want := range counts {
		found := false
		for _, tp := range c.Tuples("reach") {
			if tp.Key() == key {
				found = true
				if got := tbl.Count(tp); got != want {
					t.Errorf("%s count = %d, want %d", key, got, want)
				}
			}
		}
		if !found {
			t.Errorf("missing %s", key)
		}
	}
}

func TestDeletionCountAlgorithm(t *testing.T) {
	// Deleting one diamond edge leaves reach(a,d) alive (count 2 -> 1);
	// deleting the second removes it.
	c := central(t, tcSrc, Options{})
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		c.Insert(edge(e[0], e[1]))
	}
	c.Delete(edge("b", "d"))
	got := reachSet(c)
	if !got["a,d"] {
		t.Fatal("reach(a,d) should survive deletion of one support")
	}
	if got["b,d"] {
		t.Fatal("reach(b,d) should be deleted")
	}
	c.Delete(edge("c", "d"))
	got = reachSet(c)
	if got["a,d"] || got["c,d"] {
		t.Fatalf("reach to d should be gone: %v", got)
	}
	// Everything else survives.
	if !got["a,b"] || !got["a,c"] {
		t.Fatalf("unrelated facts lost: %v", got)
	}
}

func TestTheorem3EventualConsistencyRandomUpdates(t *testing.T) {
	// Theorem 3: after a burst of inserts/deletes/updates quiesces, the
	// state equals a from-scratch run on the final base facts.
	//
	// The count algorithm the paper adopts (Section 4, citing Gupta et
	// al.) is exact only when derivations are acyclic. The paper's
	// programs ensure this with path vectors (a tuple can never support
	// itself because the vector strictly grows); for plain transitive
	// closure the equivalent restriction is an acyclic edge set, so this
	// test generates random DAGs (edges i -> j only for i < j).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(5)
		c := central(t, tcSrc, Options{})
		live := map[[2]string]bool{}
		for step := 0; step < 40; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i >= j {
				continue
			}
			e := [2]string{node(i), node(j)}
			if live[e] && rng.Float64() < 0.4 {
				c.Delete(edge(e[0], e[1]))
				delete(live, e)
			} else if !live[e] {
				c.Insert(edge(e[0], e[1]))
				live[e] = true
			}
		}
		// From-scratch run on the surviving edges.
		fresh := central(t, tcSrc, Options{})
		for e := range live {
			fresh.Insert(edge(e[0], e[1]))
		}
		sameSet(t, reachSet(c), reachSet(fresh), fmt.Sprintf("trial %d", trial))
	}
}

func node(i int) string { return string(rune('a' + i)) }

func TestSelfJoinDeletionCounting(t *testing.T) {
	// Non-linear local rule with a self-join: deleting a base tuple must
	// cancel derivations that used it in either or both positions.
	src := `
materialize(n, infinity, infinity, keys(1,2)).
r1 pair(@A, X, Y) :- n(@A, X), n(@A, Y).
`
	c := central(t, src, Options{})
	nt := func(x int64) val.Tuple {
		return val.NewTuple("n", val.NewAddr("a"), val.NewInt(x))
	}
	c.Insert(nt(1))
	c.Insert(nt(2))
	if got := len(c.Tuples("pair")); got != 4 {
		t.Fatalf("pairs = %d, want 4", got)
	}
	c.Delete(nt(1))
	// Surviving pairs: (2,2) only.
	pairs := c.Tuples("pair")
	if len(pairs) != 1 || pairs[0].Fields[1].Int() != 2 || pairs[0].Fields[2].Int() != 2 {
		t.Fatalf("pairs after delete = %v", pairs)
	}
	c.Delete(nt(2))
	if got := len(c.Tuples("pair")); got != 0 {
		t.Fatalf("pairs after full delete = %d", got)
	}
}

func TestSelfJoinEventualConsistencyProperty(t *testing.T) {
	src := `
materialize(n, infinity, infinity, keys(1,2)).
r1 pair(@A, X, Y) :- n(@A, X), n(@A, Y).
r2 sum3(@A, Z) :- n(@A, X), n(@A, Y), Z := X + Y, Z < 7.
`
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		c := central(t, src, Options{})
		live := map[int64]bool{}
		for step := 0; step < 30; step++ {
			x := int64(rng.Intn(5))
			tup := val.NewTuple("n", val.NewAddr("a"), val.NewInt(x))
			if live[x] {
				c.Delete(tup)
				delete(live, x)
			} else {
				c.Insert(tup)
				live[x] = true
			}
		}
		fresh := central(t, src, Options{})
		for x := range live {
			fresh.Insert(val.NewTuple("n", val.NewAddr("a"), val.NewInt(x)))
		}
		for _, pred := range []string{"pair", "sum3"} {
			got, want := c.Tuples(pred), fresh.Tuples(pred)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s has %d tuples, fresh %d", trial, pred, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d: %s[%d] = %v, fresh %v", trial, pred, i, got[i], want[i])
				}
			}
		}
	}
}

func TestUpdateIsDeleteThenInsert(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
r1 cost(@S, @D, C) :- link(@S, @D, C).
`
	c := central(t, src, Options{})
	l1 := val.NewTuple("link", val.NewAddr("a"), val.NewAddr("b"), val.NewInt(5))
	l2 := val.NewTuple("link", val.NewAddr("a"), val.NewAddr("b"), val.NewInt(2))
	c.Insert(l1)
	if got := c.Tuples("cost"); len(got) != 1 || got[0].Fields[2].Int() != 5 {
		t.Fatalf("cost = %v", got)
	}
	c.Update(l1, l2)
	got := c.Tuples("cost")
	if len(got) != 1 || got[0].Fields[2].Int() != 2 {
		t.Fatalf("cost after update = %v", got)
	}
	// Primary-key replacement without explicit delete does the same.
	l3 := val.NewTuple("link", val.NewAddr("a"), val.NewAddr("b"), val.NewInt(9))
	c.Insert(l3)
	got = c.Tuples("cost")
	if len(got) != 1 || got[0].Fields[2].Int() != 9 {
		t.Fatalf("cost after PK replace = %v", got)
	}
}
