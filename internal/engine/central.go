package engine

import (
	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// Central evaluates an NDlog program at a single site, ignoring data
// placement: every derived tuple loops back locally. It supports all
// three evaluation modes and is the reference evaluator the distributed
// cluster is validated against (Theorems 1 and 3).
type Central struct {
	node *Node
	prog *program
}

// NewCentral compiles prog for single-site evaluation. The central node
// keeps one interner shared by every predicate and every evaluation
// round: all derived, decoded, and stored tuples of the whole run
// resolve to single canonical copies.
//
// With Options.Parallelism resolving above 1 (the default tracks
// GOMAXPROCS), the node evaluates semi-naïve rounds and rederivation
// sweeps on an intra-node worker pool — rule strands over the round's
// accepted inserts run concurrently against a sharded concurrent
// interner, with a barrier between rounds and derivations merged in
// insert order, so the fixpoint is identical to a sequential run's.
// PSN drains fan out the same way when Options.PSNBatch batches enough
// deltas per flush (tuple-at-a-time otherwise); per-derivation hooks
// (StrandFilter, OnDerive) or ArenaIntern force sequential evaluation.
func NewCentral(prog *ast.Program, opts Options) (*Central, error) {
	p, err := compile(prog)
	if err != nil {
		return nil, err
	}
	var cfg nodeCfg
	if w := opts.parallelism(); w > 1 && !opts.ArenaIntern {
		cfg = nodeCfg{shared: val.NewConcurrentInterner(), innerPar: w}
	}
	n := newNodeCfg("central", p, opts, cfg)
	n.central = true
	return &Central{node: n, prog: p}, nil
}

// NewNode compiles prog and returns a standalone runtime for one network
// node. The caller owns the message loop: feed arriving deltas with
// Push, call Drain for the outbound deltas, and route them to their
// destinations (see internal/netrun for a UDP-based driver). The
// program's base facts are NOT loaded automatically; push the ones
// homed at this node.
func NewNode(id string, prog *ast.Program, opts Options) (*Node, error) {
	p, err := compile(prog)
	if err != nil {
		return nil, err
	}
	return newNode(id, p, opts), nil
}

// HomeFacts returns the subset of a program's base facts whose location
// specifier is id.
func HomeFacts(prog *ast.Program, id string) []val.Tuple {
	var out []val.Tuple
	for _, f := range prog.Facts {
		if len(f.Fields) > 0 && f.Fields[0].Kind() == val.KindAddr && f.Loc() == id {
			out = append(out, f)
		}
	}
	return out
}

// Node exposes the underlying runtime for inspection.
func (c *Central) Node() *Node { return c.node }

// LoadFacts inserts the program's base facts and runs to fixpoint.
func (c *Central) LoadFacts() {
	for _, f := range c.prog.source.Facts {
		c.node.Push(Insert(f))
	}
	c.Fixpoint()
}

// Insert adds a base tuple and runs to fixpoint.
func (c *Central) Insert(t val.Tuple) {
	c.node.Push(Insert(t))
	c.Fixpoint()
}

// Delete retracts a base tuple (count algorithm) and runs to fixpoint.
func (c *Central) Delete(t val.Tuple) {
	c.node.Push(Deletion(t))
	c.Fixpoint()
}

// Update replaces a base tuple: deletion followed by insertion
// (Section 4).
func (c *Central) Update(old, new val.Tuple) {
	c.node.Push(Deletion(old))
	c.node.Push(Insert(new))
	c.Fixpoint()
}

// Fixpoint drains the queue completely. Derived tuples destined for
// "remote" locations cannot occur in central mode.
func (c *Central) Fixpoint() {
	out := c.node.Drain()
	if len(out) != 0 {
		panic("engine: central evaluation produced remote deltas")
	}
}

// Tuples returns the current contents of a predicate, sorted.
func (c *Central) Tuples(pred string) []val.Tuple { return c.node.Tuples(pred) }

// QueryResults returns the tuples of the program's query predicate, or
// nil if the program has no query.
func (c *Central) QueryResults() []val.Tuple {
	if c.prog.source.Query == nil {
		return nil
	}
	return c.Tuples(c.prog.source.Query.Pred)
}
