package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ndlog/internal/val"
)

// TestDRedCyclicGraph is the case the count algorithm cannot handle: a
// cycle makes reach tuples support each other, so count-based deletion
// strands them. DRed must retract them.
func TestDRedCyclicGraph(t *testing.T) {
	c := central(t, tcSrc, Options{})
	// a -> b -> c -> a plus c -> d.
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"c", "d"}} {
		c.Insert(edge(e[0], e[1]))
	}
	if !reachSet(c)["a,a"] || !reachSet(c)["a,d"] {
		t.Fatalf("setup wrong: %v", reachSet(c))
	}
	// Break the cycle: delete b -> c.
	if err := c.DeleteDRed(edge("b", "c")); err != nil {
		t.Fatal(err)
	}
	got := reachSet(c)
	want := tcOracle([][2]string{{"a", "b"}, {"c", "a"}, {"c", "d"}})
	sameSet(t, got, want, "after DRed")
	// Specifically: the cycle-supported tuples must be gone.
	for _, dead := range []string{"a,a", "b,b", "c,c", "a,d", "b,d", "a,c"} {
		if got[dead] {
			t.Errorf("cyclically-supported reach(%s) survived", dead)
		}
	}
	// And the alternative-derivation survivors must remain: c->a->b.
	if !got["c,b"] {
		t.Error("reach(c,b) should survive via c->a->b")
	}
}

// TestDRedRandomCyclicGraphs: random digraphs (cycles allowed), random
// deletion orders; after each DRed deletion the state must equal a
// from-scratch computation — the property that motivated DRed.
func TestDRedRandomCyclicGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(4)
		var edges [][2]string
		seen := map[[2]string]bool{}
		for k := 0; k < n*n/2+2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			e := [2]string{node(i), node(j)}
			if i == j || seen[e] {
				continue
			}
			seen[e] = true
			edges = append(edges, e)
		}
		c := central(t, tcSrc, Options{})
		for _, e := range edges {
			c.Insert(edge(e[0], e[1]))
		}
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for len(edges) > 0 {
			victim := edges[0]
			edges = edges[1:]
			if err := c.DeleteDRed(edge(victim[0], victim[1])); err != nil {
				t.Fatal(err)
			}
			sameSet(t, reachSet(c), tcOracle(edges),
				fmt.Sprintf("trial %d after deleting %v", trial, victim))
		}
		if got := len(c.Tuples("reach")); got != 0 {
			t.Errorf("trial %d: %d reach tuples after deleting every edge", trial, got)
		}
	}
}

// TestDRedDeleteAbsent: deleting a tuple that is not stored is a no-op.
func TestDRedDeleteAbsent(t *testing.T) {
	c := central(t, tcSrc, Options{})
	c.Insert(edge("a", "b"))
	if err := c.DeleteDRed(edge("x", "y")); err != nil {
		t.Fatal(err)
	}
	if !reachSet(c)["a,b"] {
		t.Error("unrelated state disturbed")
	}
}

// TestDRedRejectsAggregates: aggregate programs must be maintained with
// counts (their derivations are acyclic by construction).
func TestDRedRejectsAggregates(t *testing.T) {
	c := central(t, `
r1 best(@S, min<C>) :- q(@S, C).
`, Options{})
	c.Insert(val.NewTuple("q", val.NewAddr("a"), val.NewInt(1)))
	if err := c.DeleteDRed(val.NewTuple("q", val.NewAddr("a"), val.NewInt(1))); err == nil {
		t.Error("expected error for aggregate program")
	}
}

// TestDRedSelfJoin: over-deletion through a non-linear rule (self-join)
// must both cancel and re-derive correctly.
func TestDRedSelfJoin(t *testing.T) {
	src := `
materialize(n, infinity, infinity, keys(1,2)).
r1 pair(@A, X, Y) :- n(@A, X), n(@A, Y).
`
	c := central(t, src, Options{})
	nt := func(x int64) val.Tuple {
		return val.NewTuple("n", val.NewAddr("a"), val.NewInt(x))
	}
	c.Insert(nt(1))
	c.Insert(nt(2))
	c.Insert(nt(3))
	if got := len(c.Tuples("pair")); got != 9 {
		t.Fatalf("pairs = %d", got)
	}
	if err := c.DeleteDRed(nt(2)); err != nil {
		t.Fatal(err)
	}
	pairs := c.Tuples("pair")
	if len(pairs) != 4 {
		t.Fatalf("pairs after DRed = %v", pairs)
	}
	for _, p := range pairs {
		if p.Fields[1].Int() == 2 || p.Fields[2].Int() == 2 {
			t.Errorf("pair involving deleted value survived: %v", p)
		}
	}
}
