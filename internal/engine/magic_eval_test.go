package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/planner"
	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

// TestMagicSetsPreservesAnswers runs the planner's generic magic-sets
// rewrite through the engine: for random graphs and random bound
// sources, the rewritten program must produce exactly the original
// program's answers for the bound query, while deriving no more tuples
// than the original (the point of the optimization).
func TestMagicSetsPreservesAnswers(t *testing.T) {
	const src = `
materialize(edge, infinity, infinity, keys(1,2)).
r1 reach(@S,@D) :- #edge(@S,@D).
r2 reach(@S,@D) :- #edge(@S,@Z), reach(@Z,@D).
`
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(4)
		var facts []val.Tuple
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.25 {
					facts = append(facts, val.NewTuple("edge",
						val.NewAddr(node(i)), val.NewAddr(node(j))))
				}
			}
		}
		srcNode := node(rng.Intn(n))

		// Full program.
		full := mustParse(t, src)
		full.Facts = facts
		cFull, err := NewCentral(full, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cFull.LoadFacts()
		want := map[string]bool{}
		for _, r := range cFull.Tuples("reach") {
			if r.Fields[0].Addr() == srcNode {
				want[r.Key()] = true
			}
		}

		// Magic-rewritten program bound to srcNode.
		base := mustParse(t, src)
		base.Facts = facts
		query := &ast.Atom{Pred: "reach", Args: []ast.Expr{
			&ast.Const{Value: val.NewAddr(srcNode)},
			&ast.Var{Name: "D"},
		}}
		magic, err := planner.MagicSets(base, query)
		if err != nil {
			t.Fatal(err)
		}
		cMagic, err := NewCentral(magic, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cMagic.LoadFacts()

		got := map[string]bool{}
		for _, r := range cMagic.Tuples("reach") {
			if r.Fields[0].Addr() == srcNode {
				got[r.Key()] = true
			}
		}
		for k := range want {
			if !got[k] {
				t.Errorf("trial %d: magic program missing %s", trial, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("trial %d: magic program spurious %s", trial, k)
			}
		}
		// The rewrite must not derive MORE reach tuples than the full
		// program (it restricts computation to the relevant portion).
		if len(cMagic.Tuples("reach")) > len(cFull.Tuples("reach")) {
			t.Errorf("trial %d: magic derived %d reach tuples, full program %d",
				trial, len(cMagic.Tuples("reach")), len(cFull.Tuples("reach")))
		}
	}
}

// TestClusterMatchesCentralRandomGraphs is the distributed counterpart
// of Theorem 1/4 at system level: for random connected graphs, the
// cluster's shortest-path fixpoint equals the centralized evaluator's.
func TestClusterMatchesCentralRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		links := randomLinkSet(rng, 5)
		// Central run.
		c := central(t, spProgramForCluster(), Options{AggSel: true})
		insertLinks(c, links)

		// Distributed run over the same graph.
		sim, cl := clusterOverLinks(t, links, Options{AggSel: true})
		runCluster(t, cl)
		_ = sim

		a, b := spCosts(c.QueryResults()), spCosts(cl.QueryResults())
		checkCosts(t, b, a, fmt.Sprintf("trial %d cluster-vs-central", trial))
	}
}

func spProgramForCluster() string { return programs.ShortestPath("") }

// clusterOverLinks deploys the shortest-path program over an arbitrary
// bidirectional link set.
func clusterOverLinks(t *testing.T, links []struct {
	a, b string
	cost float64
}, opts Options) (*simnet.Sim, *Cluster) {
	t.Helper()
	sim := simnet.New(1)
	prog := mustParse(t, spProgramForCluster())
	nodes := map[string]bool{}
	for _, l := range links {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
		nodes[l.a] = true
		nodes[l.b] = true
	}
	cl, err := NewCluster(sim, prog, opts, ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cl.AddNode(simnet.NodeID(id))
	}
	for _, l := range links {
		if !sim.HasLink(simnet.NodeID(l.a), simnet.NodeID(l.b)) {
			if err := sim.AddLink(simnet.NodeID(l.a), simnet.NodeID(l.b), 0.010, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sim, cl
}
