package engine

import (
	"testing"

	"ndlog/internal/funcs"
	"ndlog/internal/val"
)

// compileOne compiles a one-rule program and returns the strand
// triggered by pred.
func compileOne(t *testing.T, src, pred string) (*program, *strand) {
	t.Helper()
	p, err := compile(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	sts := p.strands[pred]
	if len(sts) == 0 {
		t.Fatalf("no strand triggered by %s", pred)
	}
	return p, sts[0]
}

const slotTestProg = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
sp2 path(@S,D,C) :- #link(@S,@Z,C1), path(@Z,D,C2), C := C1 + C2, C < 100.
`

// TestUnifySlots exercises the slot-based trigger unification: fresh
// bindings, constant mismatch, repeated-variable consistency, arity.
func TestUnifySlots(t *testing.T) {
	_, st := compileOne(t, `
materialize(q, infinity, infinity, keys(1)).
r1 p(@A,B) :- q(@A,B,B).
`, "q")
	args := st.code.args[st.trigger]
	env := funcs.NewSlotEnv(st.code.nslots)

	if !unifySlots(args, val.NewTuple("q", val.NewAddr("a"), val.NewInt(1), val.NewInt(1)), env) {
		t.Error("consistent repeated variable should unify")
	}
	env.Reset()
	if unifySlots(args, val.NewTuple("q", val.NewAddr("a"), val.NewInt(1), val.NewInt(2)), env) {
		t.Error("inconsistent repeated variable should fail")
	}
	env.Reset()
	if unifySlots(args, val.NewTuple("q", val.NewAddr("a"), val.NewInt(1)), env) {
		t.Error("arity mismatch should fail")
	}
}

// TestJoinTrailUnwinds verifies that trail unwinding isolates join
// candidates: bindings from one candidate never leak into the next.
func TestJoinTrailUnwinds(t *testing.T) {
	c := central(t, slotTestProg, Options{})
	link := func(a, b string, cost int64) val.Tuple {
		return val.NewTuple("link", val.NewAddr(a), val.NewAddr(b), val.NewInt(cost))
	}
	base := func(a, b string, cost int64) val.Tuple {
		return val.NewTuple("path", val.NewAddr(a), val.NewAddr(b), val.NewInt(cost))
	}
	// Two stored path partners for the same link trigger: the join must
	// try both candidates with clean environments.
	c.Insert(base("b", "c", 1))
	c.Insert(base("b", "d", 2))
	c.Insert(link("a", "b", 10))

	got := c.Tuples("path")
	want := []val.Tuple{
		base("a", "c", 11),
		base("a", "d", 12),
		base("b", "c", 1),
		base("b", "d", 2),
	}
	if len(got) != len(want) {
		t.Fatalf("path tuples = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("path[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSelectionPrunesViaCompiledTail checks compiled selections filter
// derivations (C < 100 above) without poisoning sibling candidates.
func TestSelectionPrunesViaCompiledTail(t *testing.T) {
	c := central(t, slotTestProg, Options{})
	link := func(a, b string, cost int64) val.Tuple {
		return val.NewTuple("link", val.NewAddr(a), val.NewAddr(b), val.NewInt(cost))
	}
	base := func(a, b string, cost int64) val.Tuple {
		return val.NewTuple("path", val.NewAddr(a), val.NewAddr(b), val.NewInt(cost))
	}
	c.Insert(base("b", "c", 95)) // 10+95 = 105: pruned by C < 100
	c.Insert(base("b", "d", 5))  // 10+5 = 15: derived
	c.Insert(link("a", "b", 10))

	for _, p := range c.Tuples("path") {
		if p.Fields[2].Int() >= 100 {
			t.Errorf("selection failed to prune %v", p)
		}
	}
	found := false
	for _, p := range c.Tuples("path") {
		if p.Equal(base("a", "d", 15)) {
			found = true
		}
	}
	if !found {
		t.Error("expected derivation path(a,d,15) missing")
	}
}

// TestStrandCodeShape pins the compiled form: head fast paths, probe
// plans carrying slots, and rule-level code sharing across strands.
// Localization may rewrite the source rule, so the join rule is found
// by its shape (two body atoms, assignment + selection tail).
func TestStrandCodeShape(t *testing.T) {
	p, err := compile(mustParse(t, slotTestProg))
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[*ruleCode][]*strand{}
	for _, sts := range p.strands {
		for _, st := range sts {
			byRule[st.code] = append(byRule[st.code], st)
		}
	}
	var join *strand
	for _, sts := range byRule {
		if len(sts[0].atoms) == 2 && len(sts[0].code.tail) == 2 {
			join = sts[0]
		}
		// Every strand of a rule shares one ruleCode, one per body atom.
		if len(sts) != len(sts[0].atoms) {
			t.Errorf("rule %s: %d strands for %d atoms", sts[0].rule.Label, len(sts), len(sts[0].atoms))
		}
	}
	if join == nil {
		t.Fatal("no compiled rule with two atoms and a two-op tail")
	}
	code := join.code
	// Head: every argument of the join rule is a plain variable — all
	// direct slot copies, no compiled expressions.
	for i, ha := range code.head {
		if ha.slot < 0 {
			t.Errorf("head arg %d should be a direct slot copy", i)
		}
	}
	// Tail: the assignment (slot >= 0) precedes the selection (slot < 0).
	if code.tail[0].assignSlot < 0 || code.tail[1].assignSlot >= 0 {
		t.Errorf("tail shape = %+v", code.tail)
	}
	// The non-trigger atom has a probe plan with every bound value
	// sourced from a slot or a constant.
	other := 1 - join.trigger
	if len(join.probes[other]) == 0 {
		t.Errorf("atom %d should have a probe plan", other)
	}
	for _, pa := range join.probes[other] {
		if pa.slot < 0 && pa.constVal.IsNil() {
			t.Errorf("probe arg %+v has neither slot nor constant", pa)
		}
	}
	if p.maxSlots < code.nslots {
		t.Errorf("program maxSlots %d < rule nslots %d", p.maxSlots, code.nslots)
	}
}
