package engine

import (
	"testing"

	"ndlog/internal/parser"
	"ndlog/internal/val"
)

const reachSrc = `
materialize(edge, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2)).
r1 reach(@S,@D) :- #edge(@S,@D).
r2 reach(@S,@D) :- #edge(@S,@Z), reach(@Z,@D).
`

func edgeAt(a, b string) val.Tuple {
	return val.NewTuple("edge", val.NewAddr(a), val.NewAddr(b))
}

// TestExportImportRebuildsFixpoint: a migrated node ships only base
// facts; the importer re-derives the views and reaches the identical
// fixpoint.
func TestExportImportRebuildsFixpoint(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "c"}} {
		src.Insert(edgeAt(e[0], e[1]))
	}
	want := src.Tuples("reach")
	if len(want) == 0 {
		t.Fatal("no derived tuples at source")
	}

	st := src.Node().Export()
	for _, et := range st.Tuples {
		if et.Tuple.Pred == "reach" {
			t.Fatalf("derived hard state exported: %v", et.Tuple)
		}
		if et.Remaining >= 0 {
			t.Fatalf("hard state exported with a lifetime: %+v", et)
		}
	}
	if len(st.Tuples) != 4 {
		t.Fatalf("exported %d tuples, want 4 base edges", len(st.Tuples))
	}

	// Wire round trip must be exact (export is sorted, so byte-stable).
	dec, err := DecodeState(EncodeState(st))
	if err != nil {
		t.Fatal(err)
	}
	if dec.NodeID != st.NodeID || len(dec.Tuples) != len(st.Tuples) {
		t.Fatalf("round trip mismatch: %+v vs %+v", dec, st)
	}
	for i := range st.Tuples {
		if !dec.Tuples[i].Tuple.Equal(st.Tuples[i].Tuple) ||
			dec.Tuples[i].Count != st.Tuples[i].Count ||
			dec.Tuples[i].Remaining != st.Tuples[i].Remaining {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, dec.Tuples[i], st.Tuples[i])
		}
	}

	dst, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := dst.Node().ImportState(dec); n != 4 {
		t.Fatalf("imported %d tuples, want 4", n)
	}
	dst.Fixpoint()
	got := dst.Tuples("reach")
	if len(got) != len(want) {
		t.Fatalf("rebuilt %d reach tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("fixpoint mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestImportPreservesCounts: hard-state derivation counts survive a
// migration, so the count algorithm keeps working at the destination.
func TestImportPreservesCounts(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src.Insert(edgeAt("a", "b"))
	src.Insert(edgeAt("a", "b")) // count 2

	dst, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst.Node().ImportState(src.Node().Export())
	dst.Fixpoint()

	dst.Delete(edgeAt("a", "b"))
	if len(dst.Tuples("edge")) != 1 {
		t.Fatal("edge vanished after one delete of a count-2 tuple")
	}
	dst.Delete(edgeAt("a", "b"))
	if len(dst.Tuples("edge")) != 0 {
		t.Fatal("edge survived both deletes")
	}
}

// TestExportSoftStateLifetimes: soft-state tuples carry their remaining
// TTLs; lifetimes that lapse in transit are dropped by the importer.
func TestExportSoftStateLifetimes(t *testing.T) {
	src := `
materialize(ping, 30, infinity, keys(1,2)).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node()
	n.SetNow(100)
	c.Insert(val.NewTuple("ping", val.NewAddr("a"), val.NewAddr("b")))
	n.SetNow(110)
	st := n.Export()
	if len(st.Tuples) != 1 {
		t.Fatalf("exported %d tuples, want 1", len(st.Tuples))
	}
	if got := st.Tuples[0].Remaining; got != 20 {
		t.Fatalf("remaining = %v, want 20", got)
	}

	// Lapsed in transit: remaining clamps to 0 and the importer drops it.
	n.SetNow(1000)
	lapsed := n.Export()
	if got := lapsed.Tuples[0].Remaining; got != 0 {
		t.Fatalf("lapsed remaining = %v, want 0", got)
	}
	dst, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := dst.Node().ImportState(lapsed); n != 0 {
		t.Fatalf("imported %d lapsed tuples, want 0", n)
	}

	// A live import re-enters as a refresh, then clamps back to the
	// exported remaining lifetime — migration cannot extend soft state.
	dn := dst.Node()
	dn.SetNow(500)
	if n := dn.ImportState(st); n != 1 {
		t.Fatalf("imported %d live tuples, want 1", n)
	}
	dst.Fixpoint()
	dn.ApplyImportedTTLs(st)
	e, ok := dn.Catalog().Get("ping").Get(st.Tuples[0].Tuple)
	if !ok {
		t.Fatal("imported tuple not stored")
	}
	if e.Expires != 520 { // now(500) + remaining(20), not now + ttl(30)
		t.Fatalf("imported expiry = %v, want 520", e.Expires)
	}
}

// TestRederiveClosesLocalState: Rederive rebuilds locally-derivable
// heads the import drain never saw (the DRed phase-2 sweep reused).
func TestRederiveClosesLocalState(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode("a", prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Plant base facts directly in the tables, bypassing the strands —
	// the shape of a node whose derivations were lost.
	for i, e := range [][2]string{{"a", "b"}, {"b", "c"}} {
		n.Catalog().Get("edge").Insert(edgeAt(e[0], e[1]), uint64(i+1), 0)
	}
	if got := len(n.Tuples("reach")); got != 0 {
		t.Fatalf("reach populated before rederive: %d", got)
	}
	if got := n.Rederive(); got == 0 {
		t.Fatal("rederive found nothing")
	}
	n.Drain()
	// reach(a,b), reach(b,c) live at @S: r2's reach(a,c) is derived at
	// node b in the localized program, so node a closes over 2 heads.
	if got := len(n.Tuples("reach")); got == 0 {
		t.Fatal("rederive + drain left reach empty")
	}
	// A second sweep is a fixpoint check: nothing new.
	if got := n.Rederive(); got != 0 {
		t.Fatalf("second rederive enqueued %d heads, want 0", got)
	}
}

// TestRederiveFor: a neighbor's sweep re-sends exactly the derivations
// homed at the migrated nodes — nothing for other destinations, and
// nothing when the node itself migrated.
func TestRederiveFor(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode("a", prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a holds edges a->b and a->c; r1's heads reach(@a,..) are local,
	// but the localized r2 ships a's edge knowledge toward b and c.
	n.Push(Insert(edgeAt("a", "b")))
	n.Push(Insert(edgeAt("a", "c")))
	n.Drain()

	outs := n.RederiveFor(map[string]bool{"b": true})
	if len(outs) == 0 {
		t.Fatal("no rederived deltas for migrated neighbor b")
	}
	for _, o := range outs {
		if o.Dst != "b" {
			t.Fatalf("delta routed to %q, want only b: %v", o.Dst, o.Delta)
		}
		if o.Delta.Sign <= 0 {
			t.Fatalf("rederivation emitted a deletion: %v", o.Delta)
		}
	}
	if got := n.RederiveFor(map[string]bool{"a": true}); got != nil {
		t.Fatalf("self-sweep emitted %d deltas, want none", len(got))
	}
	if got := n.RederiveFor(nil); got != nil {
		t.Fatalf("empty dst set emitted %d deltas", len(got))
	}
}

// TestDecodeStateCorrupt: no truncation of a valid payload decodes.
func TestDecodeStateCorrupt(t *testing.T) {
	st := &NodeState{NodeID: "a", Tuples: []ExportedTuple{
		{Tuple: edgeAt("a", "b"), Count: 2, Remaining: -1},
		{Tuple: edgeAt("b", "c"), Count: 1, Remaining: 1.5},
	}}
	good := EncodeState(st)
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeState(good[:cut]); err == nil {
			t.Errorf("truncated state at %d decoded", cut)
		}
	}
	if _, err := DecodeState([]byte{0x01, 0x02}); err == nil {
		t.Error("non-state payload decoded")
	}
	// A count beyond the replay bound is rejected at decode time: the
	// import loop must not be drivable to a wedge by a hostile blob.
	huge := EncodeState(&NodeState{NodeID: "a", Tuples: []ExportedTuple{
		{Tuple: edgeAt("a", "b"), Count: maxImportCount + 1, Remaining: -1},
	}})
	if _, err := DecodeState(huge); err == nil {
		t.Error("unbounded replay count decoded")
	}
}
