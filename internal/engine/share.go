package engine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ndlog/internal/val"
)

// ShareConfig enables opportunistic message sharing (Section 5.2):
// outbound tuples are buffered for Delay seconds; tuples bound for the
// same destination that are identical modulo a few "varying" columns
// (typically the metric attribute) are combined into one message that
// encodes the shared columns once.
type ShareConfig struct {
	// Delay is the outbound buffering window in virtual seconds (the
	// paper uses 300 ms).
	Delay float64
	// Group maps a predicate to its share group; predicates in the same
	// group may combine (e.g. the per-metric path predicates path_lat,
	// path_rel, path_rnd).
	Group map[string]string
	// VaryCols lists, per predicate, the columns allowed to differ within
	// a combined message (e.g. the cost column).
	VaryCols map[string][]int
}

// shareKey identifies one share partition: either a shareable group
// (share-group name plus the non-varying column values, which deltas
// must agree on to combine) or a solo partition holding one distinct
// unshareable tuple. Partitions live in a hash-keyed map with collision
// chains resolved by equal, mirroring the storage layer's hash-first
// keying.
type shareKey struct {
	solo bool
	base val.Tuple   // solo only: the tuple itself
	name string      // share group name
	vals []val.Value // non-varying column values, in column order
}

func (k shareKey) hash() uint64 {
	if k.solo {
		return k.base.Hash() ^ 0x736f6c6f // flip bits so solo keys cannot shadow group keys
	}
	h := val.NewHash().AddString(k.name)
	for _, v := range k.vals {
		h = h.AddValue(v)
	}
	return h.Sum()
}

func (k shareKey) equal(o shareKey) bool {
	if k.solo != o.solo {
		return false
	}
	if k.solo {
		return k.base.Equal(o.base)
	}
	return k.name == o.name && val.ValuesEqual(k.vals, o.vals)
}

// keyFor computes the share partition key for a delta.
func (sc *ShareConfig) keyFor(d Delta) shareKey {
	group, ok := sc.Group[d.Tuple.Pred]
	if !ok {
		return shareKey{solo: true, base: d.Tuple}
	}
	vary := sc.VaryCols[d.Tuple.Pred]
	isVary := func(i int) bool {
		for _, c := range vary {
			if c == i {
				return true
			}
		}
		return false
	}
	k := shareKey{name: group}
	for i, f := range d.Tuple.Fields {
		if isVary(i) {
			continue
		}
		k.vals = append(k.vals, f)
	}
	return k
}

// EncodeShared marshals a batch of deltas with cross-tuple field
// sharing. Deltas are partitioned by share key; each partition encodes
// its first tuple completely and the rest as (sign, pred, varying
// column values).
func EncodeShared(sc *ShareConfig, ds []Delta) []byte {
	type group struct {
		key    shareKey
		deltas []Delta
	}
	byKey := map[uint64][]*group{}
	var order []*group
	for _, d := range ds {
		key := sc.keyFor(d)
		h := key.hash()
		var g *group
		for _, cand := range byKey[h] {
			if cand.key.equal(key) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{key: key}
			byKey[h] = append(byKey[h], g)
			order = append(order, g)
		}
		g.deltas = append(g.deltas, d)
	}

	size := 11
	for _, d := range ds {
		size += 24 + len(d.Tuple.Pred) + 12*len(d.Tuple.Fields)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(msgShared))
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	for _, g := range order {
		base := g.deltas[0]
		buf = appendSign(buf, base.Sign)
		buf = val.AppendTuple(buf, base.Tuple)
		extras := g.deltas[1:]
		buf = binary.AppendUvarint(buf, uint64(len(extras)))
		for _, e := range extras {
			buf = appendSign(buf, e.Sign)
			buf = appendShareString(buf, e.Tuple.Pred)
			vary := sc.VaryCols[e.Tuple.Pred]
			cols := append([]int(nil), vary...)
			sort.Ints(cols)
			buf = binary.AppendUvarint(buf, uint64(len(cols)))
			for _, c := range cols {
				buf = binary.AppendUvarint(buf, uint64(c))
				if c < len(e.Tuple.Fields) {
					buf = val.AppendValue(buf, e.Tuple.Fields[c])
				} else {
					buf = val.AppendValue(buf, val.Nil)
				}
			}
		}
	}
	return buf
}

func appendSign(buf []byte, sign int8) []byte {
	if sign >= 0 {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendShareString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readShareString decodes a predicate name; the result is copied (or
// interned), never a view of b.
func readShareString(b []byte, in *val.Interner) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", 0, fmt.Errorf("engine: corrupt shared string")
	}
	if in != nil {
		return in.InternString(string(b[n : n+int(l)])), n + int(l), nil
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

// DecodeShared expands a share-combined message back into its deltas.
func DecodeShared(b []byte) ([]Delta, error) { return DecodeSharedIn(b, nil) }

// DecodeSharedIn is DecodeShared resolving every expanded tuple through
// the receiving node's interner (nil skips interning).
func DecodeSharedIn(b []byte, in *val.Interner) ([]Delta, error) {
	if len(b) == 0 || msgKind(b[0]) != msgShared {
		return nil, fmt.Errorf("engine: not a shared message")
	}
	b = b[1:]
	ngroups, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("engine: corrupt shared header")
	}
	b = b[n:]
	// Preallocate for the declared group count, capped by the remaining
	// payload (each group takes at least one byte) so a corrupt header
	// cannot demand a huge allocation before truncation checks run.
	out := make([]Delta, 0, min(ngroups, uint64(len(b))))
	for gi := uint64(0); gi < ngroups; gi++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("engine: truncated shared group")
		}
		sign := int8(1)
		if b[0] == 0 {
			sign = -1
		}
		b = b[1:]
		base, m, err := val.DecodeTupleIn(b, in)
		if err != nil {
			return nil, err
		}
		b = b[m:]
		out = append(out, Delta{Sign: sign, Tuple: base})
		nextra, m2 := binary.Uvarint(b)
		if m2 <= 0 {
			return nil, fmt.Errorf("engine: corrupt extra count")
		}
		b = b[m2:]
		for ei := uint64(0); ei < nextra; ei++ {
			if len(b) == 0 {
				return nil, fmt.Errorf("engine: truncated extra")
			}
			esign := int8(1)
			if b[0] == 0 {
				esign = -1
			}
			b = b[1:]
			pred, m3, err := readShareString(b, in)
			if err != nil {
				return nil, err
			}
			b = b[m3:]
			ncols, m4 := binary.Uvarint(b)
			if m4 <= 0 {
				return nil, fmt.Errorf("engine: corrupt vary count")
			}
			b = b[m4:]
			fields := make([]val.Value, len(base.Fields))
			copy(fields, base.Fields)
			for ci := uint64(0); ci < ncols; ci++ {
				col, m5 := binary.Uvarint(b)
				if m5 <= 0 {
					return nil, fmt.Errorf("engine: corrupt vary column")
				}
				b = b[m5:]
				v, m6, err := val.DecodeValueIn(b, in)
				if err != nil {
					return nil, err
				}
				b = b[m6:]
				if int(col) < len(fields) {
					fields[col] = v
				}
			}
			t := val.NewTuple(pred, fields...)
			if in != nil && val.InternWorthy(fields) {
				t = in.ResolveTuple(t)
			}
			out = append(out, Delta{Sign: esign, Tuple: t})
		}
	}
	return out, nil
}

// DecodeMessage dispatches on the message kind byte.
func DecodeMessage(b []byte) ([]Delta, error) { return DecodeMessageIn(b, nil) }

// DecodeMessageIn is DecodeMessage resolving decoded tuples through the
// receiving node's interner (nil skips interning).
func DecodeMessageIn(b []byte, in *val.Interner) ([]Delta, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("engine: empty message")
	}
	switch msgKind(b[0]) {
	case msgDeltas:
		return DecodeDeltasIn(b, in)
	case msgShared:
		return DecodeSharedIn(b, in)
	}
	return nil, fmt.Errorf("engine: unknown message kind %d", b[0])
}

// DecodeMessageInto is DecodeMessageIn appending into a caller-owned
// scratch slice (see DecodeDeltasInto). Share-combined batches expand
// to a variable number of deltas, so those still allocate their own
// batch and are appended; the plain-delta hot path decodes in place.
func DecodeMessageInto(b []byte, in *val.Interner, dst []Delta) ([]Delta, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("engine: empty message")
	}
	switch msgKind(b[0]) {
	case msgDeltas:
		return DecodeDeltasInto(b, in, dst)
	case msgShared:
		ds, err := DecodeSharedIn(b, in)
		if err != nil {
			return nil, err
		}
		return append(dst, ds...), nil
	}
	return nil, fmt.Errorf("engine: unknown message kind %d", b[0])
}
