package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ndlog/internal/ast"
	"ndlog/internal/funcs"
	"ndlog/internal/planner"
	"ndlog/internal/table"
	"ndlog/internal/val"
)

// Mode selects the evaluation strategy (Section 3).
type Mode uint8

// Evaluation modes.
const (
	// PSN is pipelined semi-naïve evaluation (Algorithm 3): each tuple is
	// processed as it arrives, with logical timestamps preventing
	// repeated inferences. This is the distributed default.
	PSN Mode = iota
	// SN is classic semi-naïve evaluation (Algorithm 1): iterations over
	// delta buffers. Centralized only; used to validate Theorem 1
	// (FPS = FPP).
	SN
	// BSN is buffered semi-naïve: tuples arriving during an iteration are
	// buffered and handled in a later local iteration. Operationally the
	// centralized BSN coincides with SN over arbitrary batches.
	BSN
)

func (m Mode) String() string {
	switch m {
	case PSN:
		return "psn"
	case SN:
		return "sn"
	case BSN:
		return "bsn"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode parses a mode name as spelled by Mode.String ("psn", "sn",
// "bsn"; "" means PSN, the distributed default). It is the plumbing for
// command-line flags and deployment manifests (internal/shard), which
// carry the mode as text.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "psn":
		return PSN, nil
	case "sn":
		return SN, nil
	case "bsn":
		return BSN, nil
	}
	return PSN, fmt.Errorf("engine: unknown evaluation mode %q", s)
}

// Options configures a node (and, via Cluster, the whole deployment).
type Options struct {
	// Mode selects SN/BSN/PSN evaluation. Distributed clusters use PSN
	// or BSN.
	Mode Mode
	// AggSel enables the aggregate-selections optimization
	// (Section 5.1.1): tuples that do not improve their group aggregate
	// do not trigger propagation strands.
	AggSel bool
	// AggSelPreds restricts pruning to the listed source predicates.
	// Empty means every prunable aggregate selection applies. Use this
	// when a program has monotonic aggregates whose inputs must still
	// propagate (e.g. the answer-return walk feeding the cache minimum).
	AggSelPreds []string
	// AggSelPeriod > 0 enables *periodic* aggregate selections: instead
	// of advertising every improvement immediately, groups are flushed
	// every AggSelPeriod seconds of virtual time.
	AggSelPeriod float64
	// StrandFilter, when non-nil, is consulted before a trigger strand
	// runs; returning false skips the strand. Used for query-result
	// caching (Section 5.2), where a cache hit suppresses further
	// exploration.
	StrandFilter func(n *Node, ruleLabel string, d Delta) bool
	// OnStore observes every accepted store/retract at a node, for the
	// experiment harness ("% results over time").
	OnStore func(nodeID string, d Delta, now float64)
	// OnDerive observes every derived head tuple before routing, with
	// the label of the deriving rule. Used by watch(...) tracing.
	OnDerive func(nodeID, ruleLabel string, d Delta)
	// ArenaIntern switches the node's tuple pool to a per-drain arena:
	// wire decode, head instantiation, and second-touch store pooling
	// all go through an interner that is dropped wholesale after every
	// Drain. Repeats within one pump unify; nothing is retained across
	// drains, so long-running forwarding workloads hold no pool state at
	// all between pumps. Off by default: the persistent interner is
	// bounded anyway, and cross-drain sharing is worth more on most
	// workloads.
	ArenaIntern bool
	// PSNBatch batches pipelined drains: up to PSNBatch deliverable
	// deltas are stored per step — stamps assigned in arrival order,
	// exactly as tuple-at-a-time would — before their trigger strands
	// run, in the same order. Because PSN joins are bounded by each
	// delta's own stamp, later-batched stores are invisible to earlier
	// deltas' joins, so the fixpoint (and every intermediate queue) is
	// byte-identical to tuple-at-a-time evaluation; deletions and
	// displacing inserts (key replacement, eviction) flush the batch
	// first and take the reference path. Batches large enough fan their
	// strands out over the Parallelism pool when one is configured.
	// 0 or 1 means tuple-at-a-time — the reference semantics. Only PSN
	// mode consults this knob.
	PSNBatch int
	// Parallelism bounds the evaluator's worker pool: the number of
	// nodes the in-process Parallel executor drains concurrently, and
	// the number of workers Central uses inside a semi-naïve round
	// (per-insert rule strands run concurrently, with a barrier between
	// rounds) and inside DRed/rederivation sweeps. 0 means GOMAXPROCS;
	// 1 forces fully sequential evaluation. Per-node ownership is
	// preserved at every setting: a node is owned by exactly one worker
	// at a time, so Push/Drain need no locks of their own. The simnet
	// Cluster ignores this knob — virtual time is single-threaded by
	// construction.
	Parallelism int
}

// Workers resolves the Parallelism option to the worker-pool size it
// implies: 0 defaults to GOMAXPROCS, anything below 1 clamps to 1.
// Exported for drivers (netrun, shard) that bound their own per-node
// fan-out by the same knob.
func (o Options) Workers() int { return o.parallelism() }

// psnBatch resolves the PSNBatch option: anything below 2 means
// tuple-at-a-time.
func (o Options) psnBatch() int {
	if o.PSNBatch < 2 {
		return 1
	}
	return o.PSNBatch
}

// parallelism resolves the Parallelism option: 0 defaults to
// GOMAXPROCS, anything below 1 clamps to 1.
func (o Options) parallelism() int {
	p := o.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Node is one NDlog runtime instance: the tables, aggregate state, and
// delta queue of a single network node.
type Node struct {
	id   string
	prog *program
	opts Options
	cat  *table.Catalog
	// central loops every derived tuple back to this node regardless of
	// its location specifier (single-site evaluation).
	central bool

	stamp uint64
	now   float64
	iter  uint64 // SN iteration counter

	queue []Delta
	out   []OutDelta

	aggs map[*ast.Rule]*aggState
	// sels maps a source predicate to the aggregate-selection controls
	// that prune it.
	sels map[string][]*selControl

	// res holds the per-strand table and secondary-index handles for
	// this node, resolved once at construction so the join path never
	// re-derives a table from a name or an index from a signature.
	res map[*strand]*strandRes
	// jc is the reusable join context (environment, binding trail); the
	// engine is single-threaded per node, so one context serves every
	// strand run.
	jc joinCtx
	// aggKeyScratch backs aggKeyVals between aggregate emits;
	// aggHeadScratch backs aggHead instantiation.
	aggKeyScratch  []val.Value
	aggHeadScratch []val.Value

	// journal, when set, observes every processed delta whose predicate
	// is part of the node's recoverable state (see SetJournal); journaled
	// caches that predicate test.
	journal   func(d Delta)
	journaled map[string]bool

	// in is the node's persistent tuple interner: rows that repeat
	// resolve to one canonical copy, making equality a pointer compare
	// downstream. arena, when ArenaIntern is set, replaces it as the
	// tuple pool for decode, heads, and store pooling; Drain resets it
	// (aggregate group keys still intern into in — they are long-lived
	// regardless). Under the Parallel executor, in is a concurrent
	// sharded interner shared by every node of the process.
	in    *val.Interner
	arena *val.Interner

	// par, when non-nil, enables intra-node parallel evaluation: the
	// normal (non-aggregate) strands of a semi-naïve round's accepted
	// inserts — or a batched PSN flush's deferred actions — run on a
	// worker pool with per-worker join contexts, their derivations
	// merged back in job order so the result is identical to the
	// sequential walk; rederivation sweeps chunk the same way. Set
	// only when the node's interner is concurrent (head resolution is
	// the shared hot path) and no per-derivation hooks are installed.
	par *nodePar

	// psnActs is the reusable deferred-action buffer of batched PSN
	// drains (Options.PSNBatch > 1): stores happen eagerly in arrival
	// order, their trigger strands run when the batch flushes.
	psnActs []psnAction
}

// psnActKind tags one deferred post-store step of a batched PSN drain.
type psnActKind uint8

const (
	// actInsert: a newly stored tuple awaiting aggregate maintenance,
	// the advertisement decision, and its trigger strands.
	actInsert psnActKind = iota
	// actRefresh: a soft-state duplicate awaiting its re-advertisement.
	actRefresh
	// actEvent: an event tuple (never stored) awaiting its strands.
	actEvent
)

// psnAction is one deferred post-store step: the tuple plus the stamp
// it was assigned at store time, which bounds its joins exactly as
// tuple-at-a-time processing would.
type psnAction struct {
	kind  psnActKind
	t     val.Tuple
	stamp uint64
}

// nodeCfg carries the construction knobs newNode's callers thread in:
// a process-shared concurrent interner, and the intra-node worker count.
type nodeCfg struct {
	// shared, when non-nil, becomes the node's interner instead of a
	// private one. Sharing requires a concurrent interner (see
	// val.NewConcurrentInterner).
	shared *val.Interner
	// innerPar > 1 enables parallel semi-naïve rounds and rederivation
	// sweeps inside this node, with that many workers.
	innerPar int
}

// nodePar is the intra-node worker-pool state: one join context per
// worker (environment, trail, head buffer — everything a strand run
// mutates), sharing the node's catalog, resolved handles, and
// concurrent interner.
type nodePar struct {
	workers int
	ctxs    []joinCtx
	jobs    []parJob // reusable per-round job buffer
	// segs, qTail, outTail are the batched-PSN flush's merge scratch:
	// per-action aggregate-delta segments and the snapshots of the
	// queue/out tails they index, reused across flushes.
	segs    []psnSeg
	qTail   []Delta
	outTail []OutDelta
}

// psnSeg records, for one flushed PSN action, the segment of
// aggregate-derived deltas its sequential pre-pass appended to the
// node's queue/out (relative to the flush base), plus the index of the
// parallel job that runs its trigger strands (-1 when suppressed). The
// merge interleaves segment and job output per action, reproducing the
// sequential flush byte for byte.
type psnSeg struct {
	q0, q1 int
	o0, o1 int
	job    int
}

// parJob is one unit of a parallel round: the trigger tuple plus the
// job-local derivation buffers the worker fills. Buffers are merged
// into the node's queue/out in job order after the round's barrier, so
// the queue a parallel round produces is a deterministic function of
// the job list, independent of worker scheduling. lt/le are the job's
// join stamp bounds: SN rounds share one iteration bound, batched PSN
// flushes carry each delta's own stamp.
type parJob struct {
	t      val.Tuple
	lt, le int64
	queue  []Delta
	out    []OutDelta
	err    error
}

// OutDelta is a derived delta bound for another node, returned by
// Node.Drain for the driver (simulated cluster or real transport) to
// deliver.
type OutDelta struct {
	Dst   string
	Delta Delta
}

// aggState is the incremental state of one aggregate rule.
type aggState struct {
	st  *strand
	agg *table.GroupAgg
}

// selControl binds a prunable aggregate selection to its aggregate state
// and the index used to find group members for re-advertisement.
type selControl struct {
	sel   planner.AggSelection
	state *aggState
	idx   *table.Index
	// pending holds the groups awaiting a periodic flush, keyed by the
	// hash of their group-column values with collision chains of the
	// values themselves.
	pending map[uint64][][]val.Value
}

// addPending marks a group (the projection of t onto the selection's
// group columns) for the next periodic flush.
func (c *selControl) addPending(t val.Tuple) {
	key := projectVals(t, c.sel.GroupCols)
	h := val.HashValues(key)
	for _, k := range c.pending[h] {
		if val.ValuesEqual(k, key) {
			return
		}
	}
	c.pending[h] = append(c.pending[h], key)
}

// projectVals copies the fields of t at cols (out-of-range columns are
// skipped; planner checks keep them from occurring).
func projectVals(t val.Tuple, cols []int) []val.Value {
	out := make([]val.Value, 0, len(cols))
	for _, c := range cols {
		if c >= 0 && c < len(t.Fields) {
			out = append(out, t.Fields[c])
		}
	}
	return out
}

// newNode builds a node for a compiled program.
func newNode(id string, prog *program, opts Options) *Node {
	return newNodeCfg(id, prog, opts, nodeCfg{})
}

// newNodeCfg is newNode with the executor-level construction knobs.
func newNodeCfg(id string, prog *program, opts Options, cfg nodeCfg) *Node {
	n := &Node{
		id:   id,
		prog: prog,
		opts: opts,
		cat:  table.NewCatalog(),
		aggs: map[*ast.Rule]*aggState{},
		sels: map[string][]*selControl{},
		in:   cfg.shared,
	}
	if n.in == nil {
		// Single-node fallback: Parallel always passes its shared
		// concurrent interner via cfg.shared, so this branch only runs
		// for standalone nodes owned by one goroutine.
		n.in = val.NewInterner() //ndvet:ok nil-guard for non-parallel construction
	}
	if opts.ArenaIntern {
		// The arena is per-node scratch drained under the node's own
		// lock; it is never shared across workers.
		n.arena = val.NewInterner() //ndvet:ok per-node scratch, drained under node lock
	}
	for name, d := range prog.decls {
		n.cat.Declare(name, d.Keys, d.Lifetime, d.MaxSize)
	}
	// Resolve every strand's per-atom table and index handles against
	// this node's tables up front: the join path then probes by hash
	// directly, with no per-probe name resolution or signature lookup.
	n.res = map[*strand]*strandRes{}
	for _, sts := range prog.strands {
		for _, st := range sts {
			if _, ok := n.res[st]; !ok {
				r := &strandRes{
					tbl: make([]*table.Table, len(st.atoms)),
					idx: make([]*table.Index, len(st.atoms)),
				}
				for i, a := range st.atoms {
					r.tbl[i] = n.cat.Get(a.Pred)
					if i != st.trigger && len(st.probeCols[i]) > 0 {
						r.idx[i] = r.tbl[i].EnsureIndex(st.probeCols[i])
					}
				}
				n.res[st] = r
			}
			if !st.isAgg {
				continue
			}
			if _, ok := n.aggs[st.rule]; ok {
				continue
			}
			agg := st.rule.Head.Args[st.aggIdx].(*ast.Agg)
			n.aggs[st.rule] = &aggState{
				st:  st,
				agg: table.NewGroupAgg(agg.Func).SetInterner(n.in),
			}
		}
	}
	n.jc.cat = n.cat
	n.jc.res = n.res
	// Derived heads are transient until stored: resolve them through the
	// arena when one is configured, the persistent pool otherwise.
	n.jc.in = n.transientIn()
	// One slot environment sized for the widest rule serves every strand
	// run at this node (the engine is single-threaded per node).
	n.jc.env = funcs.NewSlotEnv(prog.maxSlots)
	if opts.AggSel {
		allowed := map[string]bool{}
		for _, p := range opts.AggSelPreds {
			allowed[p] = true
		}
		for _, sel := range prog.aggSels {
			if !sel.Prunable() {
				continue
			}
			if len(allowed) > 0 && !allowed[sel.SrcPred] {
				continue
			}
			state := n.aggStateFor(sel)
			if state == nil {
				continue
			}
			ctrl := &selControl{
				sel:     sel,
				state:   state,
				idx:     n.cat.Get(sel.SrcPred).EnsureIndex(sel.GroupCols),
				pending: map[uint64][][]val.Value{},
			}
			n.sels[sel.SrcPred] = append(n.sels[sel.SrcPred], ctrl)
		}
	}
	if cfg.innerPar > 1 && n.in.Concurrent() && !opts.ArenaIntern {
		// Per-derivation hooks observe evaluation order and run user
		// code; a node with hooks stays sequential. The arena interner
		// is single-owner, so arena mode stays sequential too.
		if opts.StrandFilter == nil && opts.OnDerive == nil {
			p := &nodePar{workers: cfg.innerPar, ctxs: make([]joinCtx, cfg.innerPar)}
			for i := range p.ctxs {
				p.ctxs[i] = joinCtx{cat: n.cat, res: n.res, in: n.in,
					env: funcs.NewSlotEnv(prog.maxSlots)}
			}
			n.par = p
		}
	}
	return n
}

func (n *Node) aggStateFor(sel planner.AggSelection) *aggState {
	for rule, st := range n.aggs {
		if rule.Head.Pred == sel.AggPred && st.st.atoms[0].Pred == sel.SrcPred {
			return st
		}
	}
	return nil
}

// ID returns the node's network identifier.
func (n *Node) ID() string { return n.id }

// Catalog exposes the node's tables (read-mostly; external mutation is
// reserved for tests and cache hooks).
func (n *Node) Catalog() *table.Catalog { return n.cat }

// transientIn is the interner transient tuples (wire decode, head
// instantiation) resolve through: the per-drain arena when configured,
// else the persistent pool.
func (n *Node) transientIn() *val.Interner {
	if n.arena != nil {
		return n.arena
	}
	return n.in
}

// Interner returns the interner that wire decoders feeding this node
// should resolve incoming tuples through (see DecodeMessageIn). Drivers
// must call it under the same single-threading discipline as Push/Drain.
func (n *Node) Interner() *val.Interner { return n.transientIn() }

// SetNow advances the node's virtual clock (driver responsibility).
func (n *Node) SetNow(now float64) { n.now = now }

// Now returns the node's virtual clock.
func (n *Node) Now() float64 { return n.now }

// Push enqueues a delta for processing.
func (n *Node) Push(d Delta) { n.queue = append(n.queue, d) }

// SetJournal installs fn as the node's durability tap: every delta the
// evaluator processes on a recoverable predicate — soft state of any
// origin, or hard state no rule derives (the same notion of "cannot be
// rebuilt" as Export) — is handed to fn before it takes effect, in
// processing order. Duplicates are included: hard-state counts and
// soft-state refreshes are both replay-significant. Derived hard state
// is excluded; recovery rebuilds it with Rederive. The driver installs
// the tap only after recovery replay has finished, so replayed deltas
// are not re-journaled. nil uninstalls.
func (n *Node) SetJournal(fn func(d Delta)) {
	n.journal = fn
	if fn == nil || n.journaled != nil {
		return
	}
	n.journaled = map[string]bool{}
	for _, name := range n.cat.Names() {
		n.journaled[name] = n.cat.Get(name).TTL() >= 0 || !n.prog.derived[name]
	}
}

// journalDelta feeds a delta about to be processed to the journal tap.
func (n *Node) journalDelta(d Delta) {
	if n.journal != nil && n.journaled[d.Tuple.Pred] {
		n.journal(d)
	}
}

// QueueLen returns the number of pending deltas.
func (n *Node) QueueLen() int { return len(n.queue) }

// Drain processes the queue to a local fixpoint and returns the deltas
// destined for other nodes. PSN processes tuple-at-a-time (or in
// stamp-preserving batches when Options.PSNBatch is set); SN/BSN run
// batched local iterations.
func (n *Node) Drain() []OutDelta {
	switch n.opts.Mode {
	case SN, BSN:
		n.drainSN()
	default:
		if b := n.opts.psnBatch(); b > 1 {
			n.drainPSNBatched(b)
		} else {
			n.drainPSN()
		}
	}
	out := n.out
	n.out = nil
	// Stable-sort by destination: one drain's outbound batch becomes a
	// deterministic function of the derivations alone (per-destination
	// relative order preserved), so parallel executions that merge
	// job-ordered derivation buffers produce byte-identical batches and
	// drivers can group contiguous runs per destination without a map.
	if len(out) > 1 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Dst < out[j].Dst })
	}
	if n.arena != nil {
		// Per-drain arena mode: the pool from this drain is no longer
		// needed once the queue is empty — stored rows own their tuples,
		// outbound deltas are owned by out. Dropping the arena is always
		// safe (it is a cache, not an owner).
		n.arena.Reset()
	}
	return out
}

func (n *Node) drainPSN() {
	for len(n.queue) > 0 {
		d := n.queue[0]
		n.queue = n.queue[1:]
		n.process(d)
	}
}

// drainPSNBatched is drainPSN with batch-at-a-time store/trigger
// pipelining (Options.PSNBatch): deliverable deltas are stored eagerly
// as they are popped — journal taps fire and stamps are assigned in
// arrival order, exactly as tuple-at-a-time — while the post-store work
// (aggregate maintenance, advertisement, trigger strands) is deferred
// into psnActs and flushed, still in arrival order, once the batch
// fills. PSN's stamp bounds make the deferral invisible: a delta's
// joins see only entries with stamps up to its own, so later-batched
// stores cannot leak into earlier deltas' derivations, and the queue
// the flush produces is byte-identical to the reference walk's.
//
// Deltas whose processing must observe fully advertised state — every
// deletion, and inserts that displace rows (primary-key replacement or
// eviction, probed with table.InsertBarrier before storing) — flush the
// pending batch and then take the exact tuple-at-a-time path.
func (n *Node) drainPSNBatched(batch int) {
	// The outer loop re-enters after a trailing flush: the flush's
	// trigger strands refill the queue with derived deltas, which the
	// next pass consumes — the drain is done only when the queue is
	// empty AND no actions are pending.
	for len(n.queue) > 0 {
		n.drainPSNBatchedPass(batch)
		n.flushPSN()
	}
}

// drainPSNBatchedPass consumes the current queue, storing eagerly and
// deferring trigger work into psnActs (flushing every `batch` actions).
func (n *Node) drainPSNBatchedPass(batch int) {
	for len(n.queue) > 0 {
		d := n.queue[0]
		n.queue = n.queue[1:]
		n.journalDelta(d)
		switch {
		case n.prog.events[d.Tuple.Pred]:
			// Events are never stored: deletions are dropped (see
			// process), insertions defer their strands with a fresh stamp.
			if d.Sign > 0 {
				n.stamp++
				n.psnActs = append(n.psnActs, psnAction{kind: actEvent, t: d.Tuple, stamp: n.stamp})
			}
		case d.Sign > 0:
			if n.cat.Get(d.Tuple.Pred).InsertBarrier(d.Tuple) {
				n.flushPSN()
				n.processInsert(d.Tuple)
				continue
			}
			n.stamp++
			stamp := n.stamp
			if t, ok, refresh := n.storeInsertD(d.Tuple, stamp); ok {
				n.psnActs = append(n.psnActs, psnAction{kind: actInsert, t: t, stamp: stamp})
			} else if refresh {
				n.psnActs = append(n.psnActs, psnAction{kind: actRefresh, t: d.Tuple, stamp: stamp})
			}
		default:
			n.flushPSN()
			n.processDelete(d.Tuple)
			continue
		}
		if len(n.psnActs) >= batch {
			n.flushPSN()
		}
	}
	n.flushPSN()
}

// flushPSN runs the deferred post-store actions of a batched PSN drain
// in arrival order. With a worker pool configured and more than one
// action pending, the trigger strands fan out (flushPSNPar); the
// sequential walk below is the reference the parallel merge reproduces
// exactly.
func (n *Node) flushPSN() {
	acts := n.psnActs
	if len(acts) == 0 {
		return
	}
	if n.par != nil && len(acts) > 1 {
		n.flushPSNPar(acts)
		n.psnActs = acts[:0]
		return
	}
	for _, a := range acts {
		switch a.kind {
		case actInsert:
			n.afterInsert(a.t, a.stamp, int64(a.stamp), int64(a.stamp))
		case actRefresh:
			n.refreshAdvertise(a.t, a.stamp)
		case actEvent:
			n.eventStrands(a.t, a.stamp)
		}
	}
	n.psnActs = acts[:0]
}

// flushPSNPar is flushPSN on the intra-node worker pool. The mutating
// half of every action — store observation, aggregate maintenance,
// advertisement decisions — runs sequentially in arrival order, each
// action's aggregate-derived deltas recorded as a queue/out segment;
// the trigger strands then run concurrently into job-local buffers with
// each job bounded by its delta's own stamp. The merge interleaves
// segments and job outputs per action, so the resulting queue and out
// are byte-identical to the sequential flush (and therefore to
// tuple-at-a-time evaluation).
func (n *Node) flushPSNPar(acts []psnAction) {
	p := n.par
	jobs := p.jobs[:0]
	segs := p.segs[:0]
	baseQ, baseOut := len(n.queue), len(n.out)
	for _, a := range acts {
		q0, o0 := len(n.queue), len(n.out)
		job := -1
		bound := int64(a.stamp)
		switch a.kind {
		case actInsert:
			if n.afterInsertPre(a.t, bound, bound) {
				n.markAdv(a.t)
				job = len(jobs)
				jobs = append(jobs, parJob{t: a.t, lt: bound, le: bound})
			}
		case actRefresh:
			n.markAdv(a.t)
			job = len(jobs)
			jobs = append(jobs, parJob{t: a.t, lt: bound, le: bound})
		case actEvent:
			if n.opts.OnStore != nil {
				n.opts.OnStore(n.id, Insert(a.t), n.now)
			}
			job = len(jobs)
			jobs = append(jobs, parJob{t: a.t, lt: bound, le: bound})
		}
		segs = append(segs, psnSeg{q0: q0 - baseQ, q1: len(n.queue) - baseQ,
			o0: o0 - baseOut, o1: len(n.out) - baseOut, job: job})
	}
	p.jobs, p.segs = jobs, segs
	if len(jobs) == 0 {
		return // only aggregate deltas: already appended in order
	}
	if len(jobs) == 1 {
		jb := &jobs[0]
		ctx := &p.ctxs[0]
		ctx.ltBefore, ctx.leAfter = jb.lt, jb.le
		ctx.deleted, ctx.deletedPred = nil, ""
		n.runJob(ctx, jb)
	} else {
		workers := min(p.workers, len(jobs))
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(ctx *joinCtx) {
				defer wg.Done()
				ctx.deleted, ctx.deletedPred = nil, ""
				for {
					j := int(next.Add(1)) - 1
					if j >= len(jobs) {
						return
					}
					ctx.ltBefore, ctx.leAfter = jobs[j].lt, jobs[j].le
					n.runJob(ctx, &jobs[j])
				}
			}(&p.ctxs[i])
		}
		wg.Wait()
	}
	// Splice merge: pull the pre-pass's aggregate tails off queue/out,
	// then rebuild them with each action's segment followed by its job's
	// derivations — the exact order the sequential flush produces.
	p.qTail = append(p.qTail[:0], n.queue[baseQ:]...)
	p.outTail = append(p.outTail[:0], n.out[baseOut:]...)
	n.queue = n.queue[:baseQ]
	n.out = n.out[:baseOut]
	for _, s := range segs {
		n.queue = append(n.queue, p.qTail[s.q0:s.q1]...)
		n.out = append(n.out, p.outTail[s.o0:s.o1]...)
		if s.job < 0 {
			continue
		}
		jb := &p.jobs[s.job]
		if jb.err != nil {
			panic(fmt.Sprintf("engine: %v", jb.err))
		}
		n.queue = append(n.queue, jb.queue...)
		n.out = append(n.out, jb.out...)
	}
}

// eventStrands runs an event tuple's trigger strands under its assigned
// stamp — the shared tail of processEvent and a deferred actEvent.
func (n *Node) eventStrands(t val.Tuple, stamp uint64) {
	if n.opts.OnStore != nil {
		n.opts.OnStore(n.id, Insert(t), n.now)
	}
	n.runNormalStrands(+1, t, int64(stamp), int64(stamp), nil)
}

// drainSN implements Algorithm 1: repeatedly flush the delta buffer,
// insert the whole batch with one iteration stamp, then execute all rule
// strands over the batch.
func (n *Node) drainSN() {
	for len(n.queue) > 0 {
		n.iter++
		batch := n.queue
		n.queue = nil

		var inserts []val.Tuple
		for _, d := range batch {
			n.journalDelta(d)
			if d.Sign > 0 {
				if t, ok := n.storeInsert(d.Tuple, n.iter); ok {
					inserts = append(inserts, t)
				}
			} else {
				n.processDelete(d.Tuple)
			}
		}
		bound := int64(n.iter)
		if n.par != nil && len(inserts) > 1 {
			n.roundPar(inserts, bound)
			continue
		}
		for _, t := range inserts {
			n.afterInsert(t, n.iter, bound, bound)
		}
	}
}

// roundPar runs one semi-naïve round's post-insert work on the
// intra-node worker pool. The mutating half stays sequential —
// aggregate maintenance, advertisement decisions, Adv marking all
// touch shared per-node state — then the advertised inserts' normal
// strands (pure reads over tables frozen for the round) run
// concurrently into job-local buffers. The round barrier (wg.Wait) and
// the job-order merge make the resulting queue identical to the
// sequential walk's up to the interleaving of derivations between
// inserts, which the next round consumes as an unordered batch.
func (n *Node) roundPar(inserts []val.Tuple, bound int64) {
	jobs := n.par.jobs[:0]
	for _, t := range inserts {
		if n.afterInsertPre(t, bound, bound) {
			n.markAdv(t)
			jobs = append(jobs, parJob{t: t, lt: bound, le: bound})
		}
	}
	n.par.jobs = jobs
	if len(jobs) == 0 {
		return
	}
	workers := min(n.par.workers, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(ctx *joinCtx) {
			defer wg.Done()
			ctx.deleted, ctx.deletedPred = nil, ""
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				ctx.ltBefore, ctx.leAfter = jobs[j].lt, jobs[j].le
				n.runJob(ctx, &jobs[j])
			}
		}(&n.par.ctxs[i])
	}
	wg.Wait()
	for i := range jobs {
		jb := &jobs[i]
		if jb.err != nil {
			panic(fmt.Sprintf("engine: %v", jb.err))
		}
		n.queue = append(n.queue, jb.queue...)
		n.out = append(n.out, jb.out...)
	}
}

// runJob executes the non-aggregate trigger strands of one parallel
// job into the job's buffers — the parallel counterpart of
// runNormalStrands for insertions, hookless by the par gate.
func (n *Node) runJob(ctx *joinCtx, jb *parJob) {
	for _, st := range n.prog.strands[jb.t.Pred] {
		if st.isAgg {
			continue
		}
		err := st.run(ctx, jb.t, func(dr derived) {
			d := Delta{Sign: +1, Tuple: dr.tuple}
			if n.central || dr.loc == n.id {
				jb.queue = append(jb.queue, d)
			} else {
				jb.out = append(jb.out, OutDelta{Dst: dr.loc, Delta: d})
			}
		})
		if err != nil {
			jb.err = fmt.Errorf("rule %s: %v", st.rule.Label, err)
			return
		}
	}
}

func (n *Node) process(d Delta) {
	n.journalDelta(d)
	if n.prog.events[d.Tuple.Pred] {
		// Event predicate: fire-and-forget. Insertions run the trigger
		// strands against current stored state and leave nothing behind;
		// deletions are meaningless for an instant that already happened
		// and are dropped. Because nothing is stored, later retractions
		// of the tables an event was joined with find no event tuple to
		// re-join, so no deletion cascade ever flows through an event —
		// the property that makes tick- and request-driven rule chains
		// stable under churn.
		if d.Sign > 0 {
			n.processEvent(d.Tuple)
		}
		return
	}
	if d.Sign > 0 {
		n.processInsert(d.Tuple)
	} else {
		n.processDelete(d.Tuple)
	}
}

// processEvent runs an event tuple's trigger strands without storing
// it. The fresh stamp lets its joins see every previously stored tuple,
// like any insertion; there is no aggregate maintenance (the analyzer
// rejects aggregates over events) and no advertisement state.
func (n *Node) processEvent(t val.Tuple) {
	n.stamp++
	n.eventStrands(t, n.stamp)
}

// storeInsert applies the table effects of an insertion: duplicate
// counting, primary-key replacement (update = delete + insert), and
// eviction. It returns false when the tuple is a duplicate; a
// soft-state duplicate's re-advertisement runs inline.
func (n *Node) storeInsert(t val.Tuple, stamp uint64) (val.Tuple, bool) {
	stored, ok, refresh := n.storeInsertD(t, stamp)
	if refresh {
		n.refreshAdvertise(t, stamp)
	}
	return stored, ok
}

// storeInsertD is storeInsert with the soft-state duplicate refresh
// deferred to the caller (refresh=true): batched PSN drains run it when
// the batch flushes, preserving arrival order.
func (n *Node) storeInsertD(t val.Tuple, stamp uint64) (val.Tuple, bool, bool) {
	tbl := n.cat.Get(t.Pred)
	res := tbl.Insert(t, stamp, n.now)
	// Pool intern-worthy rows on their second touch: a duplicate insert
	// proves the tuple repeats, and the stored copy (res.Dup) becomes
	// the canonical one that wire decode and head instantiation resolve
	// later re-arrivals and re-derivations onto. Rows inserted once and
	// never touched again — the bulk of a convergence run — never pay
	// pool bookkeeping, which keeps the pool small and hit-dense; the
	// Pooled flag makes the probe itself once-per-row. In arena mode the
	// pool is the per-drain arena (the resolve side reads the same
	// arena), so Pooled — which would outlive the arena's reset — is not
	// used to short-circuit.
	if res.Status == table.StatusDuplicate && val.InternWorthy(res.Dup.Tuple.Fields) {
		if n.arena != nil {
			res.Dup.Tuple = n.arena.InternH(tbl.NameHash(), res.Dup.Tuple)
		} else if ep := n.in.Epoch(); !res.Dup.Pooled || ep-res.Dup.PooledEpoch >= 2 {
			// Not pooled yet, or pooled long enough ago that two
			// generation flips may have evicted the canonical: (re)intern
			// so hot rows stay resolvable on long-running nodes.
			res.Dup.Tuple = n.in.InternH(tbl.NameHash(), res.Dup.Tuple)
			res.Dup.Pooled, res.Dup.PooledEpoch = true, ep
		}
	}
	switch res.Status {
	case table.StatusReplaced:
		// The displaced row's advertisement state rides along in the
		// result, so no pre-insert lookup is needed.
		n.afterDelete(res.Replaced, res.ReplacedAdv, res.ReplacedStamp)
		return t, true, false
	case table.StatusDuplicate:
		// Soft-state refresh semantics (Section 4.2): re-inserting a
		// soft-state tuple re-advertises it so downstream soft state is
		// refreshed in turn. Hard-state duplicates only bump the count.
		return val.Tuple{}, false, tbl.TTL() >= 0
	case table.StatusNew:
		for _, ev := range res.Evicted {
			if !ev.Equal(t) {
				n.afterDelete(ev, true, stamp)
			}
		}
		return t, true, false
	}
	return val.Tuple{}, false, false
}

func (n *Node) processInsert(t val.Tuple) {
	n.stamp++
	stamp := n.stamp
	if _, ok := n.storeInsert(t, stamp); !ok {
		return
	}
	// PSN bounds: pre-trigger atoms see strictly older tuples, post-trigger
	// atoms see up to and including this stamp — so a tuple joining itself
	// (self-join rules) derives each pair exactly once (Theorem 2).
	n.afterInsert(t, stamp, int64(stamp), int64(stamp))
}

// afterInsert runs aggregate maintenance and (unless suppressed by
// aggregate selections) the trigger strands for a newly stored tuple.
// ltBefore/leAfter are the join stamp bounds (see joinCtx).
func (n *Node) afterInsert(t val.Tuple, stamp uint64, ltBefore, leAfter int64) {
	_ = stamp
	if !n.afterInsertPre(t, ltBefore, leAfter) {
		return
	}
	n.markAdv(t)
	n.runNormalStrands(+1, t, ltBefore, leAfter, nil)
}

// afterInsertPre is the sequential half of post-insert processing:
// store observation, aggregate maintenance, and the aggregate-selection
// advertisement decision. It reports whether the tuple's normal trigger
// strands should run (and be marked advertised).
func (n *Node) afterInsertPre(t val.Tuple, ltBefore, leAfter int64) bool {
	if n.opts.OnStore != nil {
		n.opts.OnStore(n.id, Insert(t), n.now)
	}
	improving, contributed := n.runAggStrands(+1, t, ltBefore, leAfter)

	ctrls := n.sels[t.Pred]
	advertise := true
	if len(ctrls) > 0 && contributed {
		if n.opts.AggSelPeriod > 0 {
			// Periodic mode: defer everything to the flush timer.
			for _, c := range ctrls {
				c.addPending(t)
			}
			advertise = false
		} else {
			advertise = improving
		}
	}
	return advertise
}

// refreshAdvertise re-runs the trigger strands of a refreshed
// soft-state tuple. Downstream tables should themselves be soft state
// (refresh replaces counting there); this is the trade-off the paper
// names for the soft-state model — recomputation instead of precise
// incremental deltas.
func (n *Node) refreshAdvertise(t val.Tuple, stamp uint64) {
	n.markAdv(t)
	n.runNormalStrands(+1, t, int64(stamp), int64(stamp), nil)
}

func (n *Node) markAdv(t val.Tuple) {
	if e, ok := n.cat.Get(t.Pred).Get(t); ok && e.Tuple.Equal(t) {
		e.Adv = true
	}
}

func (n *Node) processDelete(t val.Tuple) {
	snap, gone, existed := n.cat.Get(t.Pred).DeleteE(t)
	if !existed {
		return // deletion of an unknown tuple: no-op
	}
	if !gone {
		return // derivation count still positive
	}
	n.afterDelete(t, snap.Adv, snap.Stamp)
}

// afterDelete propagates the retraction of a tuple that has left its
// table: aggregate removal (with fallback re-advertisement under
// aggregate selections) and count-algorithm deletion strands.
func (n *Node) afterDelete(t val.Tuple, wasAdv bool, stamp uint64) {
	if n.opts.OnStore != nil {
		n.opts.OnStore(n.id, Deletion(t), n.now)
	}
	n.runAggStrands(-1, t, noLimit, noLimit)

	// Count-algorithm cancellation: run the deletion through every
	// strand with unrestricted joins. This cancels both the derivations
	// this tuple triggered and those where it joined later triggers as a
	// partner. For tuples whose trigger strands were suppressed by
	// aggregate selections, some emitted retractions correspond to
	// derivations that never fired — those arrive at tuples that were
	// never stored and are exact no-ops, because the head tuples of
	// aggregate-selected programs (path vectors) functionally determine
	// their derivation. wasAdv is not consulted here; it only guards
	// double re-advertisement.
	_ = wasAdv
	n.runNormalStrands(-1, t, noLimit, noLimit, &t)

	// Aggregate-selection fallback: the group's best may now be a stored
	// tuple that was never advertised.
	for _, c := range n.sels[t.Pred] {
		if n.opts.AggSelPeriod > 0 {
			c.addPending(t)
			continue
		}
		n.readvertiseBest(c, projectVals(t, c.sel.GroupCols))
	}
}

// readvertiseBest advertises the stored group-best tuple if none is
// advertised yet. Only one representative per group runs its trigger
// strands — matching immediate mode, where ties beyond the first
// improvement are suppressed.
func (n *Node) readvertiseBest(c *selControl, groupKey []val.Value) {
	best, ok := c.state.agg.Current(groupKey)
	if !ok {
		return
	}
	entries := c.idx.Match(groupKey)
	// Sort for determinism (Match order is map-derived).
	sorted := append([]*table.Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Stamp < sorted[j].Stamp })
	for _, e := range sorted {
		if e.Adv && e.Tuple.Fields[c.sel.ValueCol].Equal(best) {
			return // a best-valued tuple is already advertised
		}
	}
	for _, e := range sorted {
		if e.Adv || !e.Tuple.Fields[c.sel.ValueCol].Equal(best) {
			continue
		}
		e.Adv = true
		// Original stamp bounds: later-arriving partners already joined
		// this tuple when they were deltas, so replaying with the old
		// bounds derives each pair exactly once.
		n.runNormalStrands(+1, e.Tuple, int64(e.Stamp), int64(e.Stamp), nil)
		return
	}
}

// FlushPending advertises the current best of every pending group
// (periodic aggregate selections). The driver calls it on a timer.
// Groups flush in sorted hash order (hashing is deterministic, so runs
// are reproducible).
func (n *Node) FlushPending() {
	for _, ctrls := range n.sels {
		for _, c := range ctrls {
			hashes := make([]uint64, 0, len(c.pending))
			for h := range c.pending {
				hashes = append(hashes, h)
			}
			sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
			pending := c.pending
			c.pending = map[uint64][][]val.Value{}
			for _, h := range hashes {
				for _, key := range pending[h] {
					n.readvertiseBest(c, key)
				}
			}
		}
	}
}

// PendingGroups reports how many groups await a periodic flush.
func (n *Node) PendingGroups() int {
	total := 0
	for _, ctrls := range n.sels {
		for _, c := range ctrls {
			for _, chain := range c.pending {
				total += len(chain)
			}
		}
	}
	return total
}

// runAggStrands routes a delta through the aggregate rules it feeds and
// enqueues the resulting aggregate output changes locally. Join stamp
// bounds mirror the normal strands so that multi-atom aggregate rules
// (e.g. SP3-SD joining magicDst with pathDst) count each contribution
// exactly once. It reports whether the delta improved (became the
// current value of) at least one aggregate group, and whether it
// contributed to any aggregate at all — a tuple feeding no group gives
// aggregate selections nothing to prune on and must stay advertised.
func (n *Node) runAggStrands(sign int8, t val.Tuple, ltBefore, leAfter int64) (improving, contributed bool) {
	strands := n.prog.strands[t.Pred]
	hasAgg := false
	for _, st := range strands {
		if st.isAgg {
			hasAgg = true
			break
		}
	}
	if !hasAgg {
		return false, false
	}
	ctx := n.resetCtx(ltBefore, leAfter, nil)
	if sign < 0 {
		ctx = n.resetCtx(noLimit, noLimit, &t)
	}
	for _, st := range strands {
		if !st.isAgg {
			continue
		}
		state := n.aggs[st.rule]
		// Net the group changes across this trigger's whole join before
		// emitting. One delta can touch a group several times (a max
		// walking up through the join results, one Add at a time); if
		// every intermediate value were routed as its own delete+insert
		// pair, each pair would fire the downstream strands — and in a
		// recursive program (Chord's lookup forwarding) re-trigger the
		// same chatter at the next hop, with a fan-out per hop equal to
		// the number of intermediate steps. That cascade is supercritical
		// on lossy or churning runs and melts a node inside one drain.
		// Only the first old -> last new transition per group is real.
		var pend []aggNetChange
		err := st.run(ctx, t, func(d derived) {
			contributed = true
			fields := d.tuple.Fields
			n.aggKeyScratch = aggKeyVals(fields, st.aggIdx, n.aggKeyScratch[:0])
			groupKey := n.aggKeyScratch
			value := fields[st.aggIdx]
			var ch table.Change
			if sign > 0 {
				ch = state.agg.Add(groupKey, value)
			} else {
				ch = state.agg.Remove(groupKey, value)
			}
			// The group's post-change aggregate is ch.New; the delta
			// "improves" its group when it became that value.
			if sign > 0 && ch.HasNew && ch.New.Equal(value) {
				improving = improving || ch.Changed()
			}
			if !ch.Changed() {
				return
			}
			for i := range pend {
				if sameVals(pend[i].group, groupKey) {
					pend[i].hasNew, pend[i].newV = ch.HasNew, ch.New
					return
				}
			}
			pend = append(pend, aggNetChange{
				group:  append([]val.Value(nil), groupKey...),
				fields: append([]val.Value(nil), fields...),
				pred:   d.tuple.Pred,
				loc:    d.loc,
				hadOld: ch.HadOld, oldV: ch.Old,
				hasNew: ch.HasNew, newV: ch.New,
			})
		})
		if err != nil {
			panic(fmt.Sprintf("engine: aggregate rule %s: %v", st.rule.Label, err))
		}
		for _, p := range pend {
			if p.hadOld && p.hasNew && p.oldV.Equal(p.newV) {
				continue // round trip: the group ended where it started
			}
			if p.hadOld {
				n.route(derived{tuple: n.aggHead(st, p.pred, p.fields, p.oldV), loc: p.loc}, -1, st.rule.Label)
			}
			if p.hasNew {
				n.route(derived{tuple: n.aggHead(st, p.pred, p.fields, p.newV), loc: p.loc}, +1, st.rule.Label)
			}
		}
	}
	return improving, contributed
}

// aggNetChange accumulates one aggregate group's net transition while a
// single trigger delta runs through an aggregate strand: the value
// before the first change and the value after the last one.
type aggNetChange struct {
	group  []val.Value
	fields []val.Value
	pred   string
	loc    string
	hadOld bool
	oldV   val.Value
	hasNew bool
	newV   val.Value
}

func sameVals(a, b []val.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// aggKeyVals extracts the group key of an aggregate head into dst:
// every field except the aggregate position, in order. The sequence
// hashes exactly like the source tuple's projection onto the
// selection's group columns (val.HashValues), which readvertiseBest
// relies on. GroupAgg copies the key when it retains it, so callers may
// pass reusable scratch.
func aggKeyVals(fields []val.Value, aggIdx int, dst []val.Value) []val.Value {
	for i, f := range fields {
		if i == aggIdx {
			continue
		}
		dst = append(dst, f)
	}
	return dst
}

// aggHead rebuilds an aggregate head tuple with the aggregate value
// substituted at aggIdx, resolved through the interner: the substitution
// runs in reusable scratch and only never-seen aggregate outputs copy
// out of it.
func (n *Node) aggHead(st *strand, pred string, fields []val.Value, aggVal val.Value) val.Tuple {
	buf := append(n.aggHeadScratch[:0], fields...)
	buf[st.aggIdx] = aggVal
	n.aggHeadScratch = buf[:0]
	if !val.InternWorthy(buf) {
		return val.NewTuple(pred, append([]val.Value(nil), buf...)...)
	}
	// Resolve, not intern: superseded aggregate outputs are one-shot
	// (each improvement obsoletes the last); stored ones are pooled by
	// storeInsert and resolve canonically on the next rebuild.
	return n.transientIn().ResolveH(st.code.headPredHash, pred, buf)
}

// resetCtx prepares the node's reusable join context for one delta.
func (n *Node) resetCtx(ltBefore, leAfter int64, deleted *val.Tuple) *joinCtx {
	n.jc.ltBefore = ltBefore
	n.jc.leAfter = leAfter
	n.jc.deleted = deleted
	n.jc.deletedPred = ""
	if deleted != nil {
		n.jc.deletedPred = deleted.Pred
	}
	return &n.jc
}

// runNormalStrands executes the non-aggregate trigger strands for a
// delta. deleted is non-nil for retractions (self-join correction).
func (n *Node) runNormalStrands(sign int8, t val.Tuple, ltBefore, leAfter int64, deleted *val.Tuple) {
	ctx := n.resetCtx(ltBefore, leAfter, nil)
	if sign < 0 {
		ctx = n.resetCtx(noLimit, noLimit, deleted)
	}
	d := Delta{Sign: sign, Tuple: t}
	for _, st := range n.prog.strands[t.Pred] {
		if st.isAgg {
			continue
		}
		if n.opts.StrandFilter != nil && !n.opts.StrandFilter(n, st.rule.Label, d) {
			continue
		}
		err := st.run(ctx, t, func(dr derived) {
			n.route(dr, sign, st.rule.Label)
		})
		if err != nil {
			panic(fmt.Sprintf("engine: rule %s: %v", st.rule.Label, err))
		}
	}
}

// route dispatches a derived delta to its location: locally enqueued or
// handed to the driver for network transmission.
func (n *Node) route(d derived, sign int8, ruleLabel string) {
	delta := Delta{Sign: sign, Tuple: d.tuple}
	if n.opts.OnDerive != nil {
		n.opts.OnDerive(n.id, ruleLabel, delta)
	}
	if n.central || d.loc == n.id {
		n.queue = append(n.queue, delta)
		return
	}
	n.out = append(n.out, OutDelta{Dst: d.loc, Delta: delta})
}

// ExpireSoftState removes TTL-lapsed tuples and propagates their
// deletions (soft-state semantics, Section 4.2).
//
// A TTL can lapse while a refresh or rederivation of the same tuple is
// already sitting in the delta queue (BSN buffers arrivals between
// pumps; drivers fire expiry timers between drains). Expiring such a
// tuple anyway would emit a retraction wave that the queued insertion
// immediately re-derives — and because soft-state duplicates refresh
// instead of counting, the interleaved +insert / -delete can cancel a
// freshly re-derived downstream row outright (a double-delete) and
// churn the canonical interned rows. The sweep therefore treats a
// pending insertion as the refresh it is about to become: the entry
// survives, and the queued delta renews its TTL when the queue drains.
func (n *Node) ExpireSoftState() {
	// Index the queued insertions of soft-state predicates once per sweep.
	var pending tupleSet
	for _, d := range n.queue {
		if d.Sign > 0 && n.cat.Get(d.Tuple.Pred).TTL() >= 0 {
			if pending == nil {
				pending = tupleSet{}
			}
			pending.add(d.Tuple)
		}
	}
	for _, name := range n.cat.Names() {
		tbl := n.cat.Get(name)
		if tbl.TTL() < 0 {
			continue
		}
		// Capture Adv flags before expiry removes entries.
		type dead struct {
			t      val.Tuple
			wasAdv bool
			stamp  uint64
		}
		var deads []dead
		tbl.Scan(func(e *table.Entry) bool {
			if e.Expires >= 0 && e.Expires <= n.now && !pending.has(e.Tuple) {
				deads = append(deads, dead{t: e.Tuple, wasAdv: e.Adv, stamp: e.Stamp})
			}
			return true
		})
		// Remove exactly the captured entries (not a blanket
		// ExpireBefore): entries spared by a pending refresh must survive
		// with their row and index state intact.
		for _, d := range deads {
			tbl.DeleteByKey(d.t)
		}
		for _, d := range deads {
			n.afterDelete(d.t, d.wasAdv, d.stamp)
		}
	}
}

// Tuples returns the live tuples of a predicate at this node, sorted.
func (n *Node) Tuples(pred string) []val.Tuple {
	return n.cat.Get(pred).Tuples()
}
