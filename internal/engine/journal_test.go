package engine

import (
	"testing"

	"ndlog/internal/parser"
)

// TestJournalTapSelectsRecoverableState: the journal sees every
// processed delta on base hard state (duplicates included — counts are
// replay-significant) and on soft state, but never derived hard state,
// which recovery rebuilds by rederivation.
func TestJournalTapSelectsRecoverableState(t *testing.T) {
	src := reachSrc + `
materialize(beacon, 30, infinity, keys(1,2)).
b1 beacon(@S,@D) :- #edge(@S,@D).
`
	for _, mode := range []Mode{PSN, BSN} {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCentral(prog, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		var got []Delta
		c.Node().SetJournal(func(d Delta) { got = append(got, d) })
		c.Insert(edgeAt("a", "b"))
		c.Insert(edgeAt("b", "c"))
		c.Insert(edgeAt("a", "b")) // duplicate: bumps the count, must journal
		c.Delete(edgeAt("b", "c"))

		counts := map[string]int{}
		for _, d := range got {
			counts[d.Tuple.Pred]++
			if d.Tuple.Pred == "reach" {
				t.Fatalf("%v: derived hard state journaled: %v", mode, d)
			}
		}
		if counts["edge"] != 4 {
			t.Errorf("%v: journaled %d edge deltas, want 4 (3 inserts + 1 delete)", mode, counts["edge"])
		}
		// beacon is rule-derived but soft: replay cannot rebuild lapsed
		// TTLs by rederivation alone, so its deltas are journaled too.
		if counts["beacon"] == 0 {
			t.Errorf("%v: derived soft state not journaled", mode)
		}
		n := len(got)
		c.Node().SetJournal(nil)
		c.Insert(edgeAt("c", "d"))
		if len(got) != n {
			t.Errorf("%v: journal fired after uninstall", mode)
		}
	}
}

// TestJournalReplayRebuildsFixpoint: replaying the journal into a fresh
// node and rederiving reproduces the original fixpoint — the invariant
// WAL recovery rests on.
func TestJournalReplayRebuildsFixpoint(t *testing.T) {
	prog, err := parser.Parse(reachSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var journal []Delta
	c.Node().SetJournal(func(d Delta) { journal = append(journal, d) })
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "c"}} {
		c.Insert(edgeAt(e[0], e[1]))
	}
	c.Delete(edgeAt("a", "c"))

	r, err := NewCentral(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range journal {
		r.Node().Push(d)
	}
	r.Fixpoint()
	r.Node().Rederive()
	r.Fixpoint()
	for _, pred := range []string{"edge", "reach"} {
		want := c.Tuples(pred)
		got := r.Tuples(pred)
		if len(got) != len(want) {
			t.Fatalf("%s: replay rebuilt %d tuples, want %d", pred, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s[%d]: %v vs %v", pred, i, got[i], want[i])
			}
		}
	}
}
