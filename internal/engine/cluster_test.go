package engine

import (
	"fmt"
	"testing"

	"ndlog/internal/programs"
	"ndlog/internal/simnet"
	"ndlog/internal/val"
)

// figure2Cluster builds the Section 2.2 network as a distributed
// deployment: one engine node per network node, link facts at both
// endpoints, simulator links with 10ms latency.
func figure2Cluster(t *testing.T, opts Options, cfg ClusterConfig) (*simnet.Sim, *Cluster) {
	t.Helper()
	sim := simnet.New(1)
	prog := mustParse(t, programs.ShortestPath(""))
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	cl, err := NewCluster(sim, prog, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []simnet.NodeID{"a", "b", "c", "d", "e"} {
		cl.AddNode(id)
	}
	for _, l := range figure2 {
		if err := sim.AddLink(simnet.NodeID(l.a), simnet.NodeID(l.b), 0.010, 0); err != nil {
			t.Fatal(err)
		}
	}
	return sim, cl
}

func runCluster(t *testing.T, cl *Cluster) {
	t.Helper()
	ok, err := cl.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cluster did not quiesce")
	}
}

func TestClusterShortestPathFigure2(t *testing.T) {
	for _, aggsel := range []bool{false, true} {
		for _, mode := range []Mode{PSN, BSN} {
			sim, cl := figure2Cluster(t, Options{Mode: mode, AggSel: aggsel},
				ClusterConfig{ProcDelay: 0.001, BSNDelay: 0.005})
			runCluster(t, cl)
			label := fmt.Sprintf("mode=%v aggsel=%v", mode, aggsel)
			checkCosts(t, spCosts(cl.QueryResults()), floyd(figure2), label)
			if cl.Undeliverable() != 0 {
				t.Errorf("%s: %d undeliverable messages", label, cl.Undeliverable())
			}
			if sim.Messages() == 0 {
				t.Errorf("%s: no messages exchanged", label)
			}
			// Results must live at their location specifiers.
			for _, id := range cl.Nodes() {
				for _, tp := range cl.Node(simnet.NodeID(id)).Tuples("shortestPath") {
					if tp.Loc() != id {
						t.Errorf("%s: tuple %v stored at %s", label, tp, id)
					}
				}
			}
		}
	}
}

func TestClusterAggSelReducesTraffic(t *testing.T) {
	run := func(aggsel bool) int64 {
		sim, cl := figure2Cluster(t, Options{AggSel: aggsel}, ClusterConfig{})
		ok, err := cl.Run(5_000_000)
		if err != nil || !ok {
			t.Fatalf("run: ok=%v err=%v", ok, err)
		}
		return sim.Bytes()
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("aggsel bytes = %d, without = %d; expected reduction", with, without)
	}
}

func TestClusterPeriodicAggSel(t *testing.T) {
	sim, cl := figure2Cluster(t,
		Options{AggSel: true, AggSelPeriod: 0.050},
		ClusterConfig{ProcDelay: 0.001})
	runCluster(t, cl)
	checkCosts(t, spCosts(cl.QueryResults()), floyd(figure2), "periodic")
	_ = sim
}

func TestClusterMatchesCentral(t *testing.T) {
	// Theorem 4's practical reading: the distributed PSN fixpoint equals
	// the centralized one.
	c := central(t, programs.ShortestPath(""), Options{})
	insertLinks(c, figure2)
	_, cl := figure2Cluster(t, Options{}, ClusterConfig{})
	runCluster(t, cl)

	want := c.QueryResults()
	got := cl.QueryResults()
	if len(got) != len(want) {
		t.Fatalf("cluster %d results, central %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("result %d: cluster %v, central %v", i, got[i], want[i])
		}
	}
}

func TestClusterLinkUpdateMidRun(t *testing.T) {
	// Figure 13's mechanism: inject a link cost update after convergence;
	// incremental maintenance must land on the from-scratch answer.
	sim, cl := figure2Cluster(t, Options{AggSel: true}, ClusterConfig{ProcDelay: 0.001})
	if err := cl.Seed(); err != nil {
		t.Fatal(err)
	}
	sim.ScheduleFunc(10, func(now float64) {
		// link(a,b): 5 -> 1, both directions, at both endpoints.
		cl.Inject("a", Insert(programs.LinkFact("link", "a", "b", 1)))
		cl.Inject("b", Insert(programs.LinkFact("link", "b", "a", 1)))
	})
	if !sim.RunToQuiescence(5_000_000) {
		t.Fatal("did not quiesce")
	}
	updated := append([]struct {
		a, b string
		cost float64
	}(nil), figure2...)
	updated[0].cost = 1
	checkCosts(t, spCosts(cl.QueryResults()), floyd(updated), "after update")
}

func TestClusterLinkDeleteMidRun(t *testing.T) {
	sim, cl := figure2Cluster(t, Options{AggSel: true}, ClusterConfig{ProcDelay: 0.001})
	if err := cl.Seed(); err != nil {
		t.Fatal(err)
	}
	sim.ScheduleFunc(10, func(now float64) {
		cl.Inject("b", Deletion(programs.LinkFact("link", "b", "d", 1)))
		cl.Inject("d", Deletion(programs.LinkFact("link", "d", "b", 1)))
	})
	if !sim.RunToQuiescence(5_000_000) {
		t.Fatal("did not quiesce")
	}
	var remaining []struct {
		a, b string
		cost float64
	}
	for _, l := range figure2 {
		if !(l.a == "b" && l.b == "d") {
			remaining = append(remaining, l)
		}
	}
	checkCosts(t, spCosts(cl.QueryResults()), floyd(remaining), "after delete")
}

func TestClusterMagicProgram(t *testing.T) {
	// The top-down magic program, distributed: query e -> d with
	// caching along the reverse path.
	sim := simnet.New(3)
	prog := mustParse(t, programs.MagicShortestPath())
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	prog.Facts = append(prog.Facts, programs.MagicSrcFact("e"), programs.MagicDstFact("d"))
	cl, err := NewCluster(sim, prog, Options{AggSel: true}, ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []simnet.NodeID{"a", "b", "c", "d", "e"} {
		cl.AddNode(id)
	}
	for _, l := range figure2 {
		sim.AddLink(simnet.NodeID(l.a), simnet.NodeID(l.b), 0.010, 0)
	}
	runCluster(t, cl)

	// The answer must arrive at source e with cost 4.
	var found bool
	for _, a := range cl.Node("e").Tuples("answer") {
		if a.Fields[0].Addr() == "e" && a.Fields[2].Addr() == "d" && a.Fields[4].Float() == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("no answer at e: %v", cl.Node("e").Tuples("answer"))
	}
	// Cache populated along the reverse shortest path e-a-c-b-d.
	for _, nc := range []struct {
		node string
		cost float64
	}{{"a", 3}, {"c", 2}, {"b", 1}} {
		ok := false
		for _, tp := range cl.Node(simnet.NodeID(nc.node)).Tuples("cache") {
			if tp.Fields[1].Addr() == "d" && tp.Fields[2].Float() == nc.cost {
				ok = true
			}
		}
		if !ok {
			t.Errorf("node %s missing cache(d)=%v: %v", nc.node, nc.cost,
				cl.Node(simnet.NodeID(nc.node)).Tuples("cache"))
		}
	}
}

func TestShareEncodeDecodeRoundTrip(t *testing.T) {
	sc := &ShareConfig{
		Delay: 0.3,
		Group: map[string]string{"path_lat": "path", "path_rel": "path"},
		VaryCols: map[string][]int{
			"path_lat": {4},
			"path_rel": {4},
		},
	}
	pv := val.NewList(val.NewAddr("a"), val.NewAddr("b"), val.NewAddr("d"))
	mk := func(pred string, cost float64) val.Tuple {
		return val.NewTuple(pred,
			val.NewAddr("a"), val.NewAddr("d"), val.NewAddr("b"), pv, val.NewFloat(cost))
	}
	ds := []Delta{
		Insert(mk("path_lat", 6)),
		Insert(mk("path_rel", 2.5)),
		Deletion(mk("path_lat", 9)),
		Insert(val.NewTuple("other", val.NewAddr("a"), val.NewInt(1))),
	}
	enc := EncodeShared(sc, ds)
	got, err := DecodeShared(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("decoded %d deltas, want %d", len(got), len(ds))
	}
	want := map[string]int8{}
	for _, d := range ds {
		want[d.Tuple.Key()] = d.Sign
	}
	for _, d := range got {
		sign, ok := want[d.Tuple.Key()]
		if !ok || sign != d.Sign {
			t.Errorf("unexpected decoded delta %v", d)
		}
	}
	// Sharing must beat plain encoding for combinable tuples.
	plain := EncodeDeltas(ds)
	if len(enc) >= len(plain) {
		t.Errorf("shared %d bytes >= plain %d bytes", len(enc), len(plain))
	}
	// Round-trip through DecodeMessage as well.
	if _, err := DecodeMessage(enc); err != nil {
		t.Errorf("DecodeMessage(shared): %v", err)
	}
	if _, err := DecodeMessage(plain); err != nil {
		t.Errorf("DecodeMessage(plain): %v", err)
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("DecodeMessage(nil) should fail")
	}
	if _, err := DecodeMessage([]byte{9}); err == nil {
		t.Error("DecodeMessage(unknown kind) should fail")
	}
}

func TestDeltaEncodeDecode(t *testing.T) {
	ds := []Delta{
		Insert(val.NewTuple("p", val.NewAddr("a"), val.NewInt(1))),
		Deletion(val.NewTuple("q", val.NewAddr("b"), val.NewFloat(2.5))),
	}
	enc := EncodeDeltas(ds)
	got, err := DecodeDeltas(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if got[i].Sign != ds[i].Sign || !got[i].Tuple.Equal(ds[i].Tuple) {
			t.Errorf("delta %d: %v != %v", i, got[i], ds[i])
		}
	}
	if ds[0].String() != "+p(a,1)" || ds[1].String() != "-q(b,2.5)" {
		t.Errorf("String() = %q, %q", ds[0], ds[1])
	}
	for _, bad := range [][]byte{nil, {1}, {1, 1, 1}, {2}} {
		if _, err := DecodeDeltas(bad); err == nil {
			t.Errorf("DecodeDeltas(%v) should fail", bad)
		}
	}
}

func TestClusterSharingReducesBytes(t *testing.T) {
	// Two metric variants of the shortest-path program running together;
	// sharing combines their coinciding path advertisements.
	build := func(cfg ClusterConfig) (*simnet.Sim, *Cluster) {
		sim := simnet.New(1)
		src := programs.Combine(programs.ShortestPath("_lat"), programs.ShortestPath("_rel"))
		prog := mustParse(t, src)
		for _, l := range figure2 {
			for _, sfx := range []string{"_lat", "_rel"} {
				prog.Facts = append(prog.Facts,
					programs.LinkFact("link"+sfx, l.a, l.b, l.cost),
					programs.LinkFact("link"+sfx, l.b, l.a, l.cost))
			}
		}
		cl, err := NewCluster(sim, prog, Options{AggSel: true}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []simnet.NodeID{"a", "b", "c", "d", "e"} {
			cl.AddNode(id)
		}
		for _, l := range figure2 {
			sim.AddLink(simnet.NodeID(l.a), simnet.NodeID(l.b), 0.010, 0)
		}
		return sim, cl
	}
	share := &ShareConfig{
		Delay: 0.050,
		Group: map[string]string{"path_lat": "path", "path_rel": "path"},
		VaryCols: map[string][]int{
			"path_lat": {4},
			"path_rel": {4},
		},
	}
	simShare, clShare := build(ClusterConfig{Share: share})
	runCluster(t, clShare)
	simPlain, clPlain := build(ClusterConfig{Batch: 0.050})
	runCluster(t, clPlain)

	// Same answers either way.
	for _, sfx := range []string{"_lat", "_rel"} {
		a := spCosts(clShare.Tuples("shortestPath" + sfx))
		b := spCosts(clPlain.Tuples("shortestPath" + sfx))
		checkCosts(t, a, b, "share vs plain"+sfx)
		checkCosts(t, a, floyd(figure2), "share vs oracle"+sfx)
	}
	if simShare.Bytes() >= simPlain.Bytes() {
		t.Errorf("share bytes = %d >= batch-only bytes = %d", simShare.Bytes(), simPlain.Bytes())
	}
}
