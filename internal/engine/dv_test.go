package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ndlog/internal/programs"
	"ndlog/internal/simnet"
)

// TestDVCentralMatchesOracle checks the distance-vector formulation on
// the Figure 2 network and random graphs. The DV program requires
// aggregate selections (a node advertises only its current best), which
// is how the paper's deployment runs it.
func TestDVCentralMatchesOracle(t *testing.T) {
	c := central(t, programs.ShortestPathDV(""), Options{AggSel: true})
	insertLinks(c, figure2)
	checkCosts(t, spCosts(c.QueryResults()), floyd(figure2), "figure2")

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		links := randomLinkSet(rng, 4+rng.Intn(3))
		c := central(t, programs.ShortestPathDV(""), Options{AggSel: true})
		insertLinks(c, links)
		checkCosts(t, spCosts(c.QueryResults()), floyd(links), fmt.Sprintf("trial %d", trial))
	}
}

// TestDVDynamicsProperty: random link insert/delete/update interleavings
// must leave the DV program's fixpoint equal to from-scratch.
func TestDVDynamicsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		c := central(t, programs.ShortestPathDV(""), Options{AggSel: true})
		n := 5
		type lk struct{ a, b string }
		live := map[lk]float64{}
		for step := 0; step < 30; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i >= j {
				continue
			}
			a, b := node(i), node(j)
			cost, alive := live[lk{a, b}]
			switch {
			case !alive:
				nc := float64(1 + rng.Intn(9))
				c.node.Push(Insert(programs.LinkFact("link", a, b, nc)))
				c.node.Push(Insert(programs.LinkFact("link", b, a, nc)))
				live[lk{a, b}] = nc
			case rng.Float64() < 0.4:
				c.node.Push(Deletion(programs.LinkFact("link", a, b, cost)))
				c.node.Push(Deletion(programs.LinkFact("link", b, a, cost)))
				delete(live, lk{a, b})
			default:
				// Update: must change the value — re-inserting the
				// identical tuple is a duplicate (count++), not an update.
				nc := float64(1 + rng.Intn(9))
				if nc == cost {
					nc++
				}
				c.node.Push(Insert(programs.LinkFact("link", a, b, nc)))
				c.node.Push(Insert(programs.LinkFact("link", b, a, nc)))
				live[lk{a, b}] = nc
			}
			c.Fixpoint()
		}
		var links []struct {
			a, b string
			cost float64
		}
		for l, cost := range live {
			links = append(links, struct {
				a, b string
				cost float64
			}{l.a, l.b, cost})
		}
		checkCosts(t, spCosts(c.QueryResults()), floyd(links), fmt.Sprintf("trial %d", trial))
	}
}

// TestDVClusterMatchesOracle runs the DV program distributed over the
// Figure 2 network.
func TestDVClusterMatchesOracle(t *testing.T) {
	sim := simnet.New(1)
	prog := mustParse(t, programs.ShortestPathDV(""))
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	cl, err := NewCluster(sim, prog, Options{AggSel: true}, ClusterConfig{ProcDelay: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []simnet.NodeID{"a", "b", "c", "d", "e"} {
		cl.AddNode(id)
	}
	for _, l := range figure2 {
		if err := sim.AddLink(simnet.NodeID(l.a), simnet.NodeID(l.b), 0.010, 0); err != nil {
			t.Fatal(err)
		}
	}
	runCluster(t, cl)
	checkCosts(t, spCosts(cl.QueryResults()), floyd(figure2), "dv cluster")
	if sim.Messages() == 0 {
		t.Error("no messages")
	}
	// Bounded state: every node's path table holds at most one entry per
	// (dst, nextHop) pair.
	for _, id := range cl.Nodes() {
		n := cl.Node(simnet.NodeID(id))
		paths := n.Tuples("path")
		seen := map[string]bool{}
		for _, p := range paths {
			key := p.KeyOn([]int{0, 1, 2})
			if seen[key] {
				t.Errorf("node %s stores duplicate (src,dst,nextHop) path %v", id, p)
			}
			seen[key] = true
		}
	}
}
