package engine

import (
	"fmt"

	"ndlog/internal/val"
)

// tupleSet is a set of tuples keyed by Tuple.Hash with collision chains
// resolved by Tuple.Equal — the engine-side counterpart of the storage
// layer's hash-first keying (no string keys).
type tupleSet map[uint64][]val.Tuple

func (s tupleSet) has(t val.Tuple) bool {
	for _, u := range s[t.Hash()] {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// add inserts t, reporting whether it was newly added.
func (s tupleSet) add(t val.Tuple) bool {
	h := t.Hash()
	for _, u := range s[h] {
		if u.Equal(t) {
			return false
		}
	}
	s[h] = append(s[h], t)
	return true
}

func (s tupleSet) remove(t val.Tuple) {
	h := t.Hash()
	chain := s[h]
	for i, u := range chain {
		if u.Equal(t) {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(s, h)
	} else {
		s[h] = chain
	}
}

func (s tupleSet) len() int {
	n := 0
	for _, chain := range s {
		n += len(chain)
	}
	return n
}

// each visits every tuple; the set must not be mutated during the walk.
func (s tupleSet) each(fn func(val.Tuple)) {
	for _, chain := range s {
		for _, t := range chain {
			fn(t)
		}
	}
}

// DeleteDRed retracts a base tuple using the delete-and-rederive (DRed)
// strategy of Gupta, Mumick and Subrahmanian. The count algorithm the
// paper adopts (Section 4) is exact only for acyclic derivations — the
// situation its path-vector programs guarantee. For programs with
// genuinely cyclic derivations (e.g. plain transitive closure on cyclic
// graphs), counts can become self-supporting and deletions stall; DRed
// handles those:
//
//	phase 1 (over-delete): remove the base tuple and, transitively,
//	every tuple with a derivation that used a removed tuple — ignoring
//	alternative derivations;
//	phase 2 (re-derive): re-insert every over-deleted tuple that is
//	still derivable from the surviving state, and propagate those
//	insertions to a fixpoint.
//
// DRed treats derived tables as sets (re-derived tuples get count 1),
// so a program should be maintained either with DRed or with counts,
// not a mixture. Aggregate rules are not supported (the paper's
// aggregate programs are exactly the acyclic ones where counts work).
// DRed is a centralized extension; the paper's distributed setting
// never needs it.
func (c *Central) DeleteDRed(t val.Tuple) error {
	n := c.node
	if len(n.aggs) > 0 {
		return fmt.Errorf("engine: DRed does not support aggregate rules")
	}

	// Phase 1: over-delete. Every tuple reached through any derivation
	// chain from t is removed, whatever its count said.
	overdeleted := tupleSet{}
	removed := tupleSet{}
	queue := []val.Tuple{t}
	// One context (and its slot environment) serves the whole walk; only
	// the deleted-tuple fields change per queue item. Heads resolve
	// through the node's persistent interner, so the over-delete queue
	// and the rederivation sets compare canonical tuples by pointer.
	ctx := &joinCtx{cat: n.cat, ltBefore: noLimit, leAfter: noLimit, res: n.res, in: n.in}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if removed.has(u) {
			continue
		}
		tbl := n.cat.Get(u.Pred)
		e, ok := tbl.Get(u)
		if !ok || !e.Tuple.Equal(u) {
			continue
		}
		tbl.DeleteByKey(u)
		removed.add(u)
		if !u.Equal(t) {
			overdeleted.add(u)
		}
		ctx.deleted, ctx.deletedPred = &u, u.Pred
		for _, st := range n.prog.strands[u.Pred] {
			if st.isAgg {
				continue
			}
			err := st.run(ctx, u, func(d derived) {
				queue = append(queue, d.tuple)
			})
			if err != nil {
				return fmt.Errorf("engine: dred over-delete: %w", err)
			}
		}
	}

	// Phase 2: re-derive. Repeatedly scan every rule against the
	// surviving state; an over-deleted head that is derivable again goes
	// back in (through the normal insertion path, so its consequences
	// re-derive too). The over-deleted set shrinks monotonically.
	for {
		rederived := c.rederiveOnce(overdeleted)
		if len(rederived) == 0 {
			return nil
		}
		for _, h := range rederived {
			overdeleted.remove(h)
			n.Push(Insert(h))
		}
		c.Fixpoint()
		// Insertions may have re-derived further over-deleted tuples via
		// the normal strands; drop any that are now present.
		var present []val.Tuple
		overdeleted.each(func(h val.Tuple) {
			if n.cat.Get(h.Pred).Contains(h) {
				present = append(present, h)
			}
		})
		for _, h := range present {
			overdeleted.remove(h)
		}
	}
}

// rederiveOnce evaluates every rule once over the current state
// (Node.sweepDerivable — the sweep is shared with migration imports)
// and returns the over-deleted head tuples it can rebuild.
func (c *Central) rederiveOnce(overdeleted tupleSet) []val.Tuple {
	var out []val.Tuple
	found := tupleSet{}
	c.node.sweepDerivable(func(d derived) {
		if overdeleted.has(d.tuple) && found.add(d.tuple) {
			out = append(out, d.tuple)
		}
	})
	return out
}
