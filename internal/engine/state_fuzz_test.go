package engine

import (
	"bytes"
	"testing"

	"ndlog/internal/val"
)

// FuzzDecodeState drives the node-state decoder (migration snapshots,
// durable WAL recovery) with arbitrary bytes: it must never panic or
// over-allocate, and every payload it accepts must re-encode
// canonically — a corrupt snapshot either fails decode outright or
// yields a well-formed state, never a partially-applied hybrid.
func FuzzDecodeState(f *testing.F) {
	seed := []*NodeState{
		{NodeID: "a"},
		{NodeID: "b", Tuples: []ExportedTuple{
			{Tuple: val.NewTuple("link", val.NewAddr("b"), val.NewAddr("c"), val.NewFloat(1)), Count: 2, Remaining: -1},
			{Tuple: val.NewTuple("path", val.NewAddr("b"), val.NewAddr("c"),
				val.NewList(val.NewAddr("b"), val.NewAddr("c")), val.NewFloat(1)), Count: 1, Remaining: 12.5},
		}},
	}
	for _, st := range seed {
		f.Add(EncodeState(st))
	}
	enc := EncodeState(seed[1])
	f.Add(enc[:len(enc)/2])
	f.Add([]byte{stateMagic, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := DecodeState(b)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		for _, et := range st.Tuples {
			if et.Count > maxImportCount {
				t.Fatalf("decoded count %d above replay bound", et.Count)
			}
		}
		re := EncodeState(st)
		st2, err := DecodeState(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re2 := EncodeState(st2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical:\n  %x\n  %x", re, re2)
		}
	})
}
