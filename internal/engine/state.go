package engine

// Node state export/import for live migration. A node moving between
// shard processes (internal/shard Rebalance) ships only the state that
// cannot be rebuilt at the destination: base (EDB) hard-state tuples
// with their derivation counts, and soft-state tuples with their
// remaining lifetimes. Derived hard state is a view — the importer
// re-derives it from the imported facts (Rederive, the same
// full-evaluation sweep DRed's phase 2 uses) and from the fleet-wide
// reseed that follows a migration, instead of trusting shipped view
// contents whose supporting facts live on other nodes.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ndlog/internal/table"
	"ndlog/internal/val"
)

// ExportedTuple is one migratable tuple of a node's state.
type ExportedTuple struct {
	Tuple val.Tuple
	// Count is the derivation count (hard state). Soft state exports 1:
	// refresh semantics replace counting there (Section 4.2).
	Count int
	// Remaining is the tuple's remaining soft-state lifetime in seconds
	// at export time; < 0 marks hard state. The importer drops tuples
	// whose lifetime lapsed in transit and re-inserts the rest as a
	// refresh (full TTL), exactly as a soft-state re-advertisement would.
	Remaining float64
}

// NodeState is the migratable state of one node.
type NodeState struct {
	NodeID string
	Tuples []ExportedTuple
}

// Export snapshots the node's migratable state: base hard-state tuples
// (predicates no rule derives) with derivation counts, plus every
// soft-state tuple with its remaining TTL against the node's current
// virtual clock. Tuples are sorted, so equal states encode byte-equal.
// Drivers must call it under the node's single-threading discipline.
//
// Constraint: base facts seeded into a predicate that also appears as
// a rule head are indistinguishable from derived rows and are NOT
// exported — such programs are not migration-safe. The paper's
// programs keep EDB and IDB predicates disjoint, which is what this
// relies on.
func (n *Node) Export() *NodeState {
	st := &NodeState{NodeID: n.id}
	for _, name := range n.cat.Names() {
		tbl := n.cat.Get(name)
		soft := tbl.TTL() >= 0
		if !soft && n.prog.derived[name] {
			continue // derived hard state: rederived at the destination
		}
		tbl.Scan(func(e *table.Entry) bool {
			et := ExportedTuple{Tuple: e.Tuple, Count: e.Count, Remaining: -1}
			if soft {
				et.Count = 1
				et.Remaining = e.Expires - n.now
				if et.Remaining < 0 {
					et.Remaining = 0
				}
			}
			st.Tuples = append(st.Tuples, et)
			return true
		})
	}
	sort.Slice(st.Tuples, func(i, j int) bool {
		return st.Tuples[i].Tuple.Compare(st.Tuples[j].Tuple) < 0
	})
	return st
}

// ImportState queues an exported state for insertion at this node and
// reports how many tuples were accepted. Hard-state counts are replayed
// as repeated insertions (duplicates bump the count, per the count
// algorithm); soft-state tuples already lapsed at export (Remaining ==
// 0) are dropped, the rest re-enter as a refresh. The caller runs
// Drain (and typically Rederive) afterwards, then ApplyImportedTTLs to
// clamp the refreshed lifetimes back to what the tuples had left.
func (n *Node) ImportState(st *NodeState) int {
	imported := 0
	for _, et := range st.Tuples {
		if et.Remaining == 0 {
			continue // soft state that expired in transit
		}
		count := et.Count
		if count < 1 {
			count = 1
		}
		for i := 0; i < count; i++ {
			n.Push(Insert(et.Tuple))
		}
		imported++
	}
	return imported
}

// ApplyImportedTTLs clamps each imported soft-state tuple's expiry to
// the remaining lifetime it carried at export: the import path inserts
// through the normal refresh machinery (full TTL), and this pass —
// run after the import's Drain, under the same single-threading
// discipline — pulls each expiry back so migration cannot extend soft
// state's life. Transit time is not subtracted (no cross-process clock
// to measure it with); it is bounded by the rebalance pause.
func (n *Node) ApplyImportedTTLs(st *NodeState) {
	for _, et := range st.Tuples {
		if et.Remaining <= 0 {
			// Hard state, or a lifetime already lapsed at export:
			// ImportState skipped the latter, and if the tuple re-entered
			// through the import's own rederivation it owns a legitimate
			// fresh TTL that must not be clamped to instant expiry.
			continue
		}
		tbl := n.cat.Get(et.Tuple.Pred)
		e, ok := tbl.Get(et.Tuple)
		if !ok || !e.Tuple.Equal(et.Tuple) {
			continue
		}
		if exp := n.now + et.Remaining; e.Expires < 0 || exp < e.Expires {
			e.Expires = exp
		}
	}
}

// sweepDerivable evaluates every non-aggregate rule once over the
// node's stored state — the full-evaluation sweep of DRed's
// re-derivation phase — invoking fn for each derivable head (with its
// location). Evaluation errors skip the binding, as the insert path
// would. fn must not mutate the node's tables; queueing deltas is fine.
func (n *Node) sweepDerivable(fn func(d derived)) {
	if n.par != nil {
		n.sweepDerivablePar(fn)
		return
	}
	ctx := &joinCtx{cat: n.cat, ltBefore: noLimit, leAfter: noLimit, res: n.res, in: n.in}
	for _, sts := range n.prog.strands {
		for _, st := range sts {
			if st.isAgg || st.trigger != 0 {
				continue // one full evaluation per rule: trigger atom 0
			}
			trigger := n.cat.Get(st.atoms[0].Pred)
			for _, tu := range trigger.Tuples() {
				_ = st.run(ctx, tu, fn)
			}
		}
	}
}

// sweepChunk bounds the trigger tuples of one parallel sweep job: big
// enough to amortize job claiming, small enough to balance skewed
// trigger tables across the pool.
const sweepChunk = 128

// sweepDerivablePar is sweepDerivable on the intra-node worker pool:
// jobs are (strand, trigger-tuple chunk) pairs in deterministic order
// (sorted trigger predicates), workers evaluate them into job-local
// derivation buffers over per-worker contexts, and fn — whose contract
// allows arbitrary single-threaded mutation — runs over the merged
// buffers in job order after the barrier.
func (n *Node) sweepDerivablePar(fn func(d derived)) {
	type sweepJob struct {
		st  *strand
		tus []val.Tuple
		out []derived
	}
	preds := make([]string, 0, len(n.prog.strands))
	for pred := range n.prog.strands {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	var jobs []sweepJob
	for _, pred := range preds {
		for _, st := range n.prog.strands[pred] {
			if st.isAgg || st.trigger != 0 {
				continue // one full evaluation per rule: trigger atom 0
			}
			tus := n.cat.Get(st.atoms[0].Pred).Tuples()
			for len(tus) > 0 {
				c := min(sweepChunk, len(tus))
				jobs = append(jobs, sweepJob{st: st, tus: tus[:c]})
				tus = tus[c:]
			}
		}
	}
	if len(jobs) == 0 {
		return
	}
	workers := min(n.par.workers, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(ctx *joinCtx) {
			defer wg.Done()
			ctx.ltBefore, ctx.leAfter = noLimit, noLimit
			ctx.deleted, ctx.deletedPred = nil, ""
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				jb := &jobs[j]
				for _, tu := range jb.tus {
					_ = jb.st.run(ctx, tu, func(d derived) {
						jb.out = append(jb.out, d)
					})
				}
			}
		}(&n.par.ctxs[i])
	}
	wg.Wait()
	for i := range jobs {
		for _, d := range jobs[i].out {
			fn(d)
		}
	}
}

// Rederive runs one DRed-style rederivation sweep over the node's
// stored state and enqueues every locally-homed derivable head the node
// does not already store. It is the post-import closure check of a
// migration: anything the imported facts support locally but the
// import's own drain did not reach is re-derived here. Remote heads are
// not re-routed (the import drain already advertised them). Returns the
// number of heads enqueued; the caller drains.
func (n *Node) Rederive() int {
	count := 0
	seen := tupleSet{}
	n.sweepDerivable(func(d derived) {
		if !n.central && d.loc != n.id {
			return
		}
		if n.cat.Get(d.tuple.Pred).Contains(d.tuple) {
			return
		}
		if seen.add(d.tuple) {
			n.Push(Insert(d.tuple))
			count++
		}
	})
	return count
}

// RederiveFor sweeps the node's stored state (the same DRed-style
// full-rule evaluation as Rederive) and returns every derivable head
// homed at one of the dst nodes — one OutDelta per live derivation, so
// a freshly migrated destination reconstructs exact derivation counts.
// This is the neighbor-side half of a migration: a moved node's
// incoming derived state (including the localizer's shipped copies)
// lives in its neighbors' join state, and hard-state duplicates do not
// re-trigger strands, so only an explicit sweep can rebuild it.
// Aggregate heads are not swept; the paper's programs home aggregates
// where their inputs live, so they rebuild incrementally from the
// swept inputs.
func (n *Node) RederiveFor(dsts map[string]bool) []OutDelta {
	if len(dsts) == 0 || dsts[n.id] {
		return nil
	}
	var out []OutDelta
	n.sweepDerivable(func(d derived) {
		if !dsts[d.loc] || d.loc == n.id {
			return
		}
		out = append(out, OutDelta{Dst: d.loc, Delta: Insert(d.tuple)})
	})
	return out
}

// stateMagic tags an encoded NodeState payload, disjoint from the data
// message kinds (msgDeltas, msgShared) so a state blob mis-fed to a
// data decoder is rejected as corrupt, and vice versa.
const stateMagic = 0x4E

// maxImportCount bounds a single exported tuple's derivation count on
// decode (see DecodeState): far beyond any real count, far below a
// replay loop that could wedge a worker.
const maxImportCount = 1 << 20

// EncodeState marshals st on the val wire encoding:
//
//	state := magic(0x4E) node(string) n(uvarint) entry*
//	entry := flags(byte; bit0 = soft) count(uvarint)
//	         [remaining(uvarint: float64 bits) if soft] tuple
func EncodeState(st *NodeState) []byte {
	buf := []byte{stateMagic}
	buf = val.AppendString(buf, st.NodeID)
	buf = binary.AppendUvarint(buf, uint64(len(st.Tuples)))
	for _, et := range st.Tuples {
		flags := byte(0)
		if et.Remaining >= 0 {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(et.Count))
		if et.Remaining >= 0 {
			buf = binary.AppendUvarint(buf, math.Float64bits(et.Remaining))
		}
		buf = val.AppendTuple(buf, et.Tuple)
	}
	return buf
}

// DecodeState unmarshals an encoded NodeState. Decoded tuples never
// alias b (val's copy-on-decode invariant). Preallocation is capped by
// the remaining payload, so a corrupt header cannot drive a huge make.
func DecodeState(b []byte) (*NodeState, error) {
	if len(b) == 0 || b[0] != stateMagic {
		return nil, fmt.Errorf("engine: not a node-state payload")
	}
	b = b[1:]
	id, sz, err := val.DecodeString(b)
	if err != nil {
		return nil, fmt.Errorf("engine: corrupt node-state id: %w", err)
	}
	b = b[sz:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("engine: corrupt node-state count")
	}
	b = b[sz:]
	st := &NodeState{NodeID: id, Tuples: make([]ExportedTuple, 0, min(n, uint64(len(b))))}
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("engine: truncated node-state payload")
		}
		flags := b[0]
		b = b[1:]
		count, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, fmt.Errorf("engine: corrupt node-state entry count")
		}
		// ImportState replays the count as repeated insertions; an
		// unauthenticated or corrupt blob must not be able to demand an
		// unbounded replay loop.
		if count > maxImportCount {
			return nil, fmt.Errorf("engine: node-state count %d exceeds limit", count)
		}
		b = b[sz:]
		et := ExportedTuple{Count: int(count), Remaining: -1}
		if flags&1 != 0 {
			bits, sz := binary.Uvarint(b)
			if sz <= 0 {
				return nil, fmt.Errorf("engine: corrupt node-state lifetime")
			}
			b = b[sz:]
			et.Remaining = math.Float64frombits(bits)
			if !(et.Remaining >= 0) { // also rejects NaN
				return nil, fmt.Errorf("engine: negative node-state lifetime")
			}
		}
		t, m, err := val.DecodeTuple(b)
		if err != nil {
			return nil, fmt.Errorf("engine: bad tuple in node state: %w", err)
		}
		b = b[m:]
		et.Tuple = t
		st.Tuples = append(st.Tuples, et)
	}
	return st, nil
}
