package engine

import (
	"testing"

	"ndlog/internal/val"
)

func pathTuple(cost float64) val.Tuple {
	return val.NewTuple("path", val.NewAddr("a"), val.NewAddr("b"),
		val.NewList(val.NewAddr("a"), val.NewAddr("b")), val.NewFloat(cost))
}

// TestNodeDecodeCanonical verifies the tentpole wiring end to end: a
// tuple a node has stored (and seen repeat) decodes from the wire to
// the single canonical copy — the same object on every arrival — so
// tuple equality downstream is a pointer compare.
func TestNodeDecodeCanonical(t *testing.T) {
	c := central(t, "materialize(path, infinity, infinity, keys(1,2)).\n", Options{})
	p := pathTuple(1)
	c.Insert(p) // first touch: stored
	c.Insert(p) // second touch: pooled (second-touch interning)

	enc := EncodeDeltas([]Delta{Insert(p)})
	in := c.Node().Interner()
	d1, err := DecodeDeltasIn(enc, in)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDeltasIn(enc, in)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := d1[0].Tuple, d2[0].Tuple
	if !t1.Equal(p) || !t2.Equal(p) {
		t.Fatalf("decode mismatch: %v %v", t1, t2)
	}
	if &t1.Fields[0] != &t2.Fields[0] {
		t.Error("repeat decode of a pooled tuple must return the canonical copy")
	}
	// The canonical copy is the stored row itself.
	e, ok := c.Node().Catalog().Get("path").Get(p)
	if !ok {
		t.Fatal("path row missing")
	}
	if &e.Tuple.Fields[0] != &t1.Fields[0] {
		t.Error("decoded tuple must share storage with the stored row")
	}
}

// TestArenaInternMode verifies the per-drain arena: transient tuples
// resolve through an interner that is dropped after every drain, so the
// arena never accumulates state while evaluation stays correct.
func TestArenaInternMode(t *testing.T) {
	c := central(t, "materialize(path, infinity, infinity, keys(1,2)).\n", Options{ArenaIntern: true})
	for i := 0; i < 3; i++ {
		c.Insert(pathTuple(1))
	}
	if got := c.Node().Catalog().Get("path").Count(pathTuple(1)); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if n := c.Node().Interner().Len(); n != 0 {
		t.Errorf("arena must be empty after a drain, holds %d entries", n)
	}
}

// TestStoreInsertSecondTouchPools pins the pooling policy: a row enters
// the pool on its second touch (first duplicate insert), not before.
func TestStoreInsertSecondTouchPools(t *testing.T) {
	c := central(t, "materialize(path, infinity, infinity, keys(1,2)).\n", Options{})
	p := pathTuple(1)
	c.Insert(p)
	e, ok := c.Node().Catalog().Get("path").Get(p)
	if !ok {
		t.Fatal("path row missing")
	}
	if e.Pooled {
		t.Error("single-touch row must not be pooled")
	}
	c.Insert(p) // second touch
	if !e.Pooled {
		t.Error("duplicate insert must pool the stored row")
	}
	// A primary-key replacement reuses the entry for a different tuple:
	// the pooled state must not stick, and the new value must pool on
	// its own second touch.
	p2 := pathTuple(2) // same keys (1,2), different cost: replaces
	c.Insert(p2)
	e2, ok := c.Node().Catalog().Get("path").Get(p2)
	if !ok {
		t.Fatal("replaced row missing")
	}
	if e2.Pooled {
		t.Error("replacement must clear the entry's pooled state")
	}
	c.Insert(p2)
	if !e2.Pooled {
		t.Error("replacement value must pool on its second touch")
	}

	// Small flat tuples stay off the pool entirely.
	c2 := central(t, "materialize(link, infinity, infinity, keys(1,2)).\n", Options{})
	l := val.NewTuple("link", val.NewAddr("a"), val.NewAddr("b"), val.NewInt(1))
	c2.Insert(l)
	c2.Insert(l)
	if e2, ok := c2.Node().Catalog().Get("link").Get(l); !ok || e2.Pooled {
		t.Errorf("flat tuple must not be pooled (ok=%v)", ok)
	}
}
