package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ndlog/internal/programs"
	"ndlog/internal/val"
)

// encodeFixpoint serializes a sorted tuple set to bytes, so equivalence
// tests can assert byte-identical fixpoints across parallelism levels.
func encodeFixpoint(ts []val.Tuple) []byte {
	var buf []byte
	for _, t := range ts {
		buf = val.AppendTuple(buf, t)
	}
	return buf
}

// figure2Parallel builds the Section 2.2 network on the in-process
// parallel executor.
func figure2Parallel(t *testing.T, opts Options) *Parallel {
	t.Helper()
	prog := mustParse(t, programs.ShortestPath(""))
	for _, l := range figure2 {
		prog.Facts = append(prog.Facts,
			programs.LinkFact("link", l.a, l.b, l.cost),
			programs.LinkFact("link", l.b, l.a, l.cost))
	}
	p, err := NewParallel(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		p.AddNode(id)
	}
	return p
}

func TestParallelShortestPathFigure2(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		for _, aggsel := range []bool{false, true} {
			p := figure2Parallel(t, Options{AggSel: aggsel, Parallelism: par})
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("parallelism=%d aggsel=%v", par, aggsel)
			checkCosts(t, spCosts(p.QueryResults()), floyd(figure2), label)
			if p.Undeliverable() != 0 {
				t.Errorf("%s: %d undeliverable deltas", label, p.Undeliverable())
			}
			// Results live at their location specifiers: per-node
			// ownership survived the concurrent run.
			for _, id := range p.Nodes() {
				for _, tp := range p.Node(id).Tuples("shortestPath") {
					if tp.Loc() != id {
						t.Errorf("%s: tuple %v stored at %s", label, tp, id)
					}
				}
			}
		}
	}
}

// TestParallelEquivalenceRandomized is the parallel-vs-sequential
// equivalence test: the same randomized program and seed must reach a
// byte-identical fixpoint at Parallelism 1, 2, and 8, and match the
// centralized reference evaluator.
func TestParallelEquivalenceRandomized(t *testing.T) {
	// Sparse on purpose: path-vector programs enumerate simple paths,
	// which explodes on dense random graphs.
	const (
		nNodes = 10
		nEdges = 15
		trials = 3
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		ids := make([]string, nNodes)
		for i := range ids {
			ids[i] = fmt.Sprintf("n%02d", i)
		}
		type link struct {
			a, b string
			cost float64
		}
		seen := map[[2]string]bool{}
		var links []link
		for len(links) < nEdges {
			a, b := ids[rng.Intn(nNodes)], ids[rng.Intn(nNodes)]
			if a == b || seen[[2]string{a, b}] {
				continue
			}
			seen[[2]string{a, b}] = true
			links = append(links, link{a: a, b: b, cost: float64(1 + rng.Intn(9))})
		}
		build := func() []val.Tuple {
			var facts []val.Tuple
			for _, l := range links {
				facts = append(facts,
					programs.LinkFact("link", l.a, l.b, l.cost),
					programs.LinkFact("link", l.b, l.a, l.cost))
			}
			return facts
		}

		// Centralized reference.
		progC := mustParse(t, programs.ShortestPath(""))
		progC.Facts = append(progC.Facts, build()...)
		c, err := NewCentral(progC, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c.LoadFacts()
		want := encodeFixpoint(c.QueryResults())

		for _, par := range []int{1, 2, 8} {
			prog := mustParse(t, programs.ShortestPath(""))
			prog.Facts = append(prog.Facts, build()...)
			p, err := NewParallel(prog, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				p.AddNode(id)
			}
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
			got := encodeFixpoint(p.QueryResults())
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d: parallelism=%d fixpoint differs from central (%d vs %d bytes)",
					trial, par, len(got), len(want))
			}
		}
	}
}

// TestParallelInject covers pre-run seeding beyond program facts and
// the unknown-destination accounting.
func TestParallelInject(t *testing.T) {
	prog := mustParse(t, tcSrc)
	p, err := NewParallel(prog, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"x", "y"} {
		p.AddNode(id)
	}
	if err := p.Inject("x", Insert(edge("x", "y"))); err != nil {
		t.Fatal(err)
	}
	// y -> ghost: the derived reach(ghost, ...) localizer copy has no
	// node to land on and must be counted, not lost silently.
	if err := p.Inject("y", Insert(edge("y", "ghost"))); err != nil {
		t.Fatal(err)
	}
	if err := p.Inject("ghost", Insert(edge("g", "h"))); err == nil {
		t.Fatal("inject into unknown node must error")
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err == nil {
		t.Fatal("second Run must error (one-shot)")
	}
	want := []val.Tuple{reach("x", "ghost"), reach("x", "y"), reach("y", "ghost")}
	got := p.Tuples("reach")
	if len(got) != len(want) {
		t.Fatalf("reach = %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("reach = %v, want %v", got, want)
		}
	}
}

// TestCentralInnerParallelEquivalence drives Central's intra-node
// worker pool (parallel semi-naïve rounds) and asserts the fixpoint is
// byte-identical to the sequential evaluator on a randomized graph —
// including after DRed deletions, which exercise the parallel
// rederivation sweep.
func TestCentralInnerParallelEquivalence(t *testing.T) {
	const nNodes = 16
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		var edges [][2]string
		seen := map[[2]string]bool{}
		for len(edges) < 48 {
			a := fmt.Sprintf("v%d", rng.Intn(nNodes))
			b := fmt.Sprintf("v%d", rng.Intn(nNodes))
			if a == b || seen[[2]string{a, b}] {
				continue
			}
			seen[[2]string{a, b}] = true
			edges = append(edges, [2]string{a, b})
		}
		run := func(par int) ([]byte, []byte) {
			c, err := NewCentral(mustParse(t, tcSrc), Options{Mode: SN, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range edges {
				c.node.Push(Insert(edge(e[0], e[1])))
			}
			c.Fixpoint()
			full := encodeFixpoint(c.Tuples("reach"))
			// Delete a base edge with DRed: phase 2's rederivation sweep
			// runs on the worker pool when par > 1.
			if err := c.DeleteDRed(edge(edges[0][0], edges[0][1])); err != nil {
				t.Fatal(err)
			}
			return full, encodeFixpoint(c.Tuples("reach"))
		}
		seqFull, seqDel := run(1)
		for _, par := range []int{2, 8} {
			parFull, parDel := run(par)
			if !bytes.Equal(seqFull, parFull) {
				t.Fatalf("trial %d: parallelism=%d SN fixpoint differs from sequential", trial, par)
			}
			if !bytes.Equal(seqDel, parDel) {
				t.Fatalf("trial %d: parallelism=%d post-DRed fixpoint differs from sequential", trial, par)
			}
		}
	}
}
