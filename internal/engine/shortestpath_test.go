package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ndlog/internal/programs"
	"ndlog/internal/val"
)

// figure2 is the example network of Section 2.2 (Figure 2), with
// bidirectional links.
var figure2 = []struct {
	a, b string
	cost float64
}{
	{"a", "b", 5},
	{"a", "c", 1},
	{"c", "b", 1},
	{"b", "d", 1},
	{"e", "a", 1},
}

func insertLinks(c *Central, links []struct {
	a, b string
	cost float64
}) {
	for _, l := range links {
		c.node.Push(Insert(programs.LinkFact("link", l.a, l.b, l.cost)))
		c.node.Push(Insert(programs.LinkFact("link", l.b, l.a, l.cost)))
	}
	c.Fixpoint()
}

// floyd computes all-pairs shortest costs for bidirectional links.
func floyd(links []struct {
	a, b string
	cost float64
}) map[string]float64 {
	nodes := map[string]bool{}
	dist := map[string]float64{}
	key := func(a, b string) string { return a + "," + b }
	for _, l := range links {
		nodes[l.a] = true
		nodes[l.b] = true
		if d, ok := dist[key(l.a, l.b)]; !ok || l.cost < d {
			dist[key(l.a, l.b)] = l.cost
			dist[key(l.b, l.a)] = l.cost
		}
	}
	var ns []string
	for n := range nodes {
		ns = append(ns, n)
	}
	for _, k := range ns {
		for _, i := range ns {
			for _, j := range ns {
				dik, ok1 := dist[key(i, k)]
				dkj, ok2 := dist[key(k, j)]
				if !ok1 || !ok2 || i == j {
					continue
				}
				if d, ok := dist[key(i, j)]; !ok || dik+dkj < d {
					dist[key(i, j)] = dik + dkj
				}
			}
		}
	}
	return dist
}

// spCosts extracts (src,dst) -> cost from shortestPath tuples.
func spCosts(tuples []val.Tuple) map[string]float64 {
	out := map[string]float64{}
	for _, t := range tuples {
		out[t.Fields[0].Addr()+","+t.Fields[1].Addr()] = t.Fields[3].Float()
	}
	return out
}

func checkCosts(t *testing.T, got, want map[string]float64, label string) {
	t.Helper()
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing shortest path %s", label, k)
			continue
		}
		if math.Abs(g-w) > 1e-9 {
			t.Errorf("%s: cost(%s) = %v, want %v", label, k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: spurious shortest path %s", label, k)
		}
	}
}

func TestShortestPathCentralFigure2(t *testing.T) {
	for _, aggsel := range []bool{false, true} {
		c := central(t, programs.ShortestPath(""), Options{AggSel: aggsel})
		insertLinks(c, figure2)
		got := spCosts(c.QueryResults())
		checkCosts(t, got, floyd(figure2), fmt.Sprintf("aggsel=%v", aggsel))
		// Section 2.2's walk-through: node a's shortest path to b costs 2
		// via c, with vector [a,c,b].
		for _, tp := range c.QueryResults() {
			if tp.Fields[0].Addr() == "a" && tp.Fields[1].Addr() == "b" {
				wantP := val.NewList(val.NewAddr("a"), val.NewAddr("c"), val.NewAddr("b"))
				if !tp.Fields[2].Equal(wantP) {
					t.Errorf("path a->b = %v, want %v", tp.Fields[2], wantP)
				}
			}
		}
	}
}

func randomLinkSet(rng *rand.Rand, n int) []struct {
	a, b string
	cost float64
} {
	var links []struct {
		a, b string
		cost float64
	}
	seen := map[string]bool{}
	add := func(i, j int) {
		a, b := node(i), node(j)
		if a > b {
			a, b = b, a
		}
		if a == b || seen[a+b] {
			return
		}
		seen[a+b] = true
		links = append(links, struct {
			a, b string
			cost float64
		}{a, b, float64(1 + rng.Intn(9))})
	}
	// Random connected graph: spanning chain plus extras (no parallel
	// edges: the link table's (src,dst) primary key would replace them,
	// while the Floyd oracle would take the minimum).
	for i := 1; i < n; i++ {
		add(i-1, i)
	}
	for k := 0; k < n; k++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return links
}

func TestShortestPathCentralRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		links := randomLinkSet(rng, 4+rng.Intn(3))
		for _, aggsel := range []bool{false, true} {
			c := central(t, programs.ShortestPath(""), Options{AggSel: aggsel})
			insertLinks(c, links)
			checkCosts(t, spCosts(c.QueryResults()), floyd(links),
				fmt.Sprintf("trial %d aggsel=%v", trial, aggsel))
		}
	}
}

func TestShortestPathLinkUpdateDynamics(t *testing.T) {
	// Section 4's scenario: update a link cost mid-stream; the eventual
	// state must match a from-scratch computation on the final network.
	for _, aggsel := range []bool{false, true} {
		c := central(t, programs.ShortestPath(""), Options{AggSel: aggsel})
		insertLinks(c, figure2)

		// Update link(a,b) from 5 to 1 (the Figure 6 example): both
		// directions, as updates (delete + insert).
		c.Update(programs.LinkFact("link", "a", "b", 5), programs.LinkFact("link", "a", "b", 1))
		c.Update(programs.LinkFact("link", "b", "a", 5), programs.LinkFact("link", "b", "a", 1))

		updated := append([]struct {
			a, b string
			cost float64
		}(nil), figure2...)
		updated[0].cost = 1
		checkCosts(t, spCosts(c.QueryResults()), floyd(updated),
			fmt.Sprintf("update aggsel=%v", aggsel))

		// Delete link(b,d): d becomes reachable only via b-d... gone
		// entirely (b-d is d's only link).
		c.Delete(programs.LinkFact("link", "b", "d", 1))
		c.Delete(programs.LinkFact("link", "d", "b", 1))
		var noD []struct {
			a, b string
			cost float64
		}
		for _, l := range updated {
			if l.a != "d" && l.b != "d" {
				noD = append(noD, l)
			}
		}
		checkCosts(t, spCosts(c.QueryResults()), floyd(noD),
			fmt.Sprintf("delete aggsel=%v", aggsel))
	}
}

func TestShortestPathRandomDynamicsProperty(t *testing.T) {
	// Random interleavings of link inserts/deletes/updates; after each
	// quiescent point, results must equal from-scratch (Theorem 3 in the
	// shortest-path setting).
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		for _, aggsel := range []bool{false, true} {
			c := central(t, programs.ShortestPath(""), Options{AggSel: aggsel})
			n := 5
			type lk struct {
				a, b string
			}
			live := map[lk]float64{}
			apply := func(a, b string, cost float64, insert bool) {
				if insert {
					c.node.Push(Insert(programs.LinkFact("link", a, b, cost)))
					c.node.Push(Insert(programs.LinkFact("link", b, a, cost)))
					live[lk{a, b}] = cost
				} else {
					c.node.Push(Deletion(programs.LinkFact("link", a, b, cost)))
					c.node.Push(Deletion(programs.LinkFact("link", b, a, cost)))
					delete(live, lk{a, b})
				}
				c.Fixpoint()
			}
			for step := 0; step < 25; step++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i >= j {
					continue
				}
				a, b := node(i), node(j)
				cost, alive := live[lk{a, b}]
				switch {
				case !alive:
					apply(a, b, float64(1+rng.Intn(9)), true)
				case rng.Float64() < 0.5:
					apply(a, b, cost, false)
				default:
					// Update: PK replacement via direct re-insert. The new
					// cost must differ — re-inserting the identical tuple
					// is a duplicate (count++), not an update.
					nc := float64(1 + rng.Intn(9))
					if nc == cost {
						nc++
					}
					apply(a, b, nc, true)
				}
			}
			var links []struct {
				a, b string
				cost float64
			}
			for l, cost := range live {
				links = append(links, struct {
					a, b string
					cost float64
				}{l.a, l.b, cost})
			}
			checkCosts(t, spCosts(c.QueryResults()), floyd(links),
				fmt.Sprintf("trial %d aggsel=%v", trial, aggsel))
		}
	}
}

func TestAggSelReducesDerivations(t *testing.T) {
	// The optimization must reduce the number of path derivations on a
	// cyclic network (Section 5.1.1's motivation).
	count := func(aggsel bool) int {
		derivations := 0
		opts := Options{AggSel: aggsel, OnDerive: func(node, rule string, d Delta) {
			if d.Tuple.Pred == "path" && d.Sign > 0 {
				derivations++
			}
		}}
		c := central(t, programs.ShortestPath(""), opts)
		insertLinks(c, figure2)
		return derivations
	}
	with, without := count(true), count(false)
	if with >= without {
		t.Errorf("aggsel derivations = %d, without = %d; expected reduction", with, without)
	}
}

func TestMagicShortestPathCentral(t *testing.T) {
	c := central(t, programs.MagicShortestPath(), Options{AggSel: true})
	c.Insert(programs.MagicSrcFact("e"))
	c.Insert(programs.MagicDstFact("d"))
	insertLinks(c, figure2)

	// Shortest e -> d: e-a(1), a-c(1), c-b(1), b-d(1) = 4.
	answers := c.Tuples("answer")
	var found bool
	for _, a := range answers {
		if a.Fields[0].Addr() == "e" && a.Fields[1].Addr() == "e" && a.Fields[2].Addr() == "d" {
			found = true
			if got := a.Fields[4].Float(); got != 4 {
				t.Errorf("answer cost = %v, want 4", got)
			}
			if got := a.Fields[5].Float(); got != 4 {
				t.Errorf("suffix cost at source = %v, want 4", got)
			}
		}
	}
	if !found {
		t.Fatalf("no answer at source e: %v", answers)
	}
	// Cache entries along the reverse path: a and c hold their suffix
	// costs to d.
	wantCache := map[string]float64{"a,d": 3, "c,d": 2, "b,d": 1, "d,d": 0, "e,d": 4}
	for _, tp := range c.Tuples("cache") {
		k := tp.Fields[0].Addr() + "," + tp.Fields[1].Addr()
		if w, ok := wantCache[k]; ok {
			if tp.Fields[2].Float() != w {
				t.Errorf("cache[%s] = %v, want %v", k, tp.Fields[2], w)
			}
			delete(wantCache, k)
		}
	}
	for k := range wantCache {
		t.Errorf("missing cache entry %s", k)
	}
}
