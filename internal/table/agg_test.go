package table

import (
	"math/rand"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// gkey builds a single-value group key from a string, standing in for
// the projected group columns the engine passes.
func gkey(s string) []val.Value { return []val.Value{val.NewString(s)} }

func TestGroupAggMinBasic(t *testing.T) {
	g := NewGroupAgg(ast.AggMin)
	ch := g.Add(gkey("k"), val.NewInt(5))
	if ch.HadOld || !ch.HasNew || ch.New.Int() != 5 || !ch.Changed() {
		t.Fatalf("first add change = %+v", ch)
	}
	ch = g.Add(gkey("k"), val.NewInt(7))
	if ch.Changed() {
		t.Errorf("min unchanged by larger value: %+v", ch)
	}
	ch = g.Add(gkey("k"), val.NewInt(2))
	if !ch.Changed() || ch.New.Int() != 2 || ch.Old.Int() != 5 {
		t.Errorf("min should drop to 2: %+v", ch)
	}
	// Removing a non-extreme value leaves the min alone.
	ch = g.Remove(gkey("k"), val.NewInt(7))
	if ch.Changed() {
		t.Errorf("removing non-min changed: %+v", ch)
	}
	// Removing the min rescans.
	ch = g.Remove(gkey("k"), val.NewInt(2))
	if !ch.Changed() || ch.New.Int() != 5 {
		t.Errorf("removing min: %+v", ch)
	}
	// Removing the last value empties the group.
	ch = g.Remove(gkey("k"), val.NewInt(5))
	if ch.HasNew || !ch.HadOld || !ch.Changed() {
		t.Errorf("removing last: %+v", ch)
	}
	if g.Groups() != 0 {
		t.Errorf("groups = %d", g.Groups())
	}
	if _, ok := g.Current(gkey("k")); ok {
		t.Error("Current on empty group should fail")
	}
}

func TestGroupAggMinDuplicates(t *testing.T) {
	g := NewGroupAgg(ast.AggMin)
	g.Add(gkey("k"), val.NewInt(3))
	g.Add(gkey("k"), val.NewInt(3))
	// One of two copies removed: min survives.
	ch := g.Remove(gkey("k"), val.NewInt(3))
	if ch.Changed() {
		t.Errorf("multiset remove changed min: %+v", ch)
	}
	v, ok := g.Current(gkey("k"))
	if !ok || v.Int() != 3 {
		t.Errorf("Current = %v, %v", v, ok)
	}
}

func TestGroupAggMax(t *testing.T) {
	g := NewGroupAgg(ast.AggMax)
	g.Add(gkey("k"), val.NewInt(1))
	g.Add(gkey("k"), val.NewInt(9))
	g.Add(gkey("k"), val.NewInt(4))
	if v, _ := g.Current(gkey("k")); v.Int() != 9 {
		t.Errorf("max = %v", v)
	}
	g.Remove(gkey("k"), val.NewInt(9))
	if v, _ := g.Current(gkey("k")); v.Int() != 4 {
		t.Errorf("max after remove = %v", v)
	}
}

func TestGroupAggCount(t *testing.T) {
	g := NewGroupAgg(ast.AggCount)
	g.Add(gkey("k"), val.NewAddr("a"))
	g.Add(gkey("k"), val.NewAddr("b"))
	g.Add(gkey("k"), val.NewAddr("a"))
	if v, _ := g.Current(gkey("k")); v.Int() != 3 {
		t.Errorf("count = %v", v)
	}
	g.Remove(gkey("k"), val.NewAddr("a"))
	if v, _ := g.Current(gkey("k")); v.Int() != 2 {
		t.Errorf("count after remove = %v", v)
	}
}

func TestGroupAggSum(t *testing.T) {
	g := NewGroupAgg(ast.AggSum)
	g.Add(gkey("k"), val.NewInt(3))
	g.Add(gkey("k"), val.NewInt(4))
	if v, _ := g.Current(gkey("k")); v.Int() != 7 {
		t.Errorf("int sum = %v", v)
	}
	g.Remove(gkey("k"), val.NewInt(3))
	if v, _ := g.Current(gkey("k")); v.Int() != 4 {
		t.Errorf("int sum after remove = %v", v)
	}
	// Mixing in a float switches the sum to float.
	g.Add(gkey("k"), val.NewFloat(0.5))
	if v, _ := g.Current(gkey("k")); v.Float() != 4.5 {
		t.Errorf("float sum = %v", v)
	}
}

func TestGroupAggSeparateGroups(t *testing.T) {
	g := NewGroupAgg(ast.AggMin)
	g.Add(gkey("x"), val.NewInt(1))
	g.Add(gkey("y"), val.NewInt(2))
	if g.Groups() != 2 {
		t.Errorf("groups = %d", g.Groups())
	}
	vx, _ := g.Current(gkey("x"))
	vy, _ := g.Current(gkey("y"))
	if vx.Int() != 1 || vy.Int() != 2 {
		t.Errorf("groups cross-talk: x=%v y=%v", vx, vy)
	}
}

func TestGroupAggRemoveAbsent(t *testing.T) {
	g := NewGroupAgg(ast.AggMin)
	ch := g.Remove(gkey("nope"), val.NewInt(1))
	if ch.Changed() || ch.HadOld || ch.HasNew {
		t.Errorf("remove from missing group: %+v", ch)
	}
	g.Add(gkey("k"), val.NewInt(5))
	ch = g.Remove(gkey("k"), val.NewInt(99)) // value not in group
	if ch.Changed() {
		t.Errorf("remove of absent value changed: %+v", ch)
	}
}

// TestGroupAggMatchesRecompute is a property test: a random interleaving
// of adds and removes must always leave the incremental aggregate equal
// to recomputing from the surviving multiset.
func TestGroupAggMatchesRecompute(t *testing.T) {
	for _, fn := range []ast.AggFunc{ast.AggMin, ast.AggMax, ast.AggCount, ast.AggSum} {
		r := rand.New(rand.NewSource(int64(fn) + 99))
		g := NewGroupAgg(fn)
		live := map[int64]int{} // value -> multiplicity
		for step := 0; step < 5000; step++ {
			v := int64(r.Intn(40))
			if r.Intn(3) > 0 || len(live) == 0 {
				g.Add(gkey("k"), val.NewInt(v))
				live[v]++
			} else {
				// Remove a random live value (or occasionally an absent one).
				if r.Intn(10) == 0 {
					g.Remove(gkey("k"), val.NewInt(1000)) // absent
				} else {
					for lv := range live {
						g.Remove(gkey("k"), val.NewInt(lv))
						live[lv]--
						if live[lv] == 0 {
							delete(live, lv)
						}
						break
					}
				}
			}
			checkAgainstRecompute(t, fn, g, live)
		}
	}
}

func checkAgainstRecompute(t *testing.T, fn ast.AggFunc, g *GroupAgg, live map[int64]int) {
	t.Helper()
	got, ok := g.Current(gkey("k"))
	if len(live) == 0 {
		if ok {
			t.Fatalf("%v: aggregate %v on empty multiset", fn, got)
		}
		return
	}
	if !ok {
		t.Fatalf("%v: no aggregate for non-empty multiset", fn)
	}
	var want int64
	first := true
	var n, sum int64
	for v, c := range live {
		n += int64(c)
		sum += v * int64(c)
		if first {
			want = v
			first = false
			continue
		}
		if (fn == ast.AggMin && v < want) || (fn == ast.AggMax && v > want) {
			want = v
		}
	}
	switch fn {
	case ast.AggCount:
		want = n
	case ast.AggSum:
		want = sum
	}
	if got.Int() != want {
		t.Fatalf("%v: incremental %d != recomputed %d (multiset %v)", fn, got.Int(), want, live)
	}
}
