package table

import (
	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// GroupAgg maintains incremental aggregates (min, max, count, sum) per
// group, supporting both insertions and deletions as required for
// materialized-view maintenance under the bursty update model (paper
// Section 4, citing Ramakrishnan et al. [27]).
//
// Groups are keyed by the hash of their key values (val.HashValues),
// with collision chains resolved by structural equality — no value is
// formatted into a string on this path. For min/max, each group keeps a
// multiset of contributing values; a deletion of the current extreme
// triggers a rescan of the group (the O(n)-space / cheap-recompute
// strategy the paper cites).
type GroupAgg struct {
	fn     ast.AggFunc
	groups map[uint64][]*aggGroup
	n      int // live (non-empty) group count
	// empties counts retained empty groups: a group whose last value is
	// removed keeps its shell so churny workloads (delete + re-derive
	// cycles) don't reallocate the key copy and multiset map every round.
	// A sweep reclaims them if they ever dominate.
	empties int
	// in, when set, resolves retained group keys to their canonical
	// interned slice: a group keyed by a projection of an interned tuple
	// shares that tuple's field storage instead of copying it, and
	// key-equality checks hit the shared-storage fast path.
	in *val.Interner
}

type aggGroup struct {
	// key holds the group's canonical key values, for collision
	// resolution within a hash bucket.
	key []val.Value
	// values is the multiset of contributing values, keyed by value hash
	// with chains resolved by Value.Equal.
	values map[uint64][]*aggVal
	n      int     // total multiplicity (for count)
	sum    float64 // running sum (for sum)
	sumInt int64
	allInt bool
	cur    val.Value // current aggregate output
	valid  bool
}

type aggVal struct {
	v     val.Value
	count int
}

// NewGroupAgg creates an incremental aggregate for fn.
func NewGroupAgg(fn ast.AggFunc) *GroupAgg {
	return &GroupAgg{fn: fn, groups: map[uint64][]*aggGroup{}}
}

// SetInterner makes the aggregate resolve retained group keys through
// in (callers may still pass scratch keys; interning replaces the
// private copy). Returns g for construction chaining.
func (g *GroupAgg) SetInterner(in *val.Interner) *GroupAgg {
	g.in = in
	return g
}

// Change describes how a group's aggregate moved after an Add or Remove.
type Change struct {
	// HadOld is true if the group had an aggregate value before.
	HadOld bool
	Old    val.Value
	// HasNew is true if the group still has an aggregate value after.
	HasNew bool
	New    val.Value
}

// Changed reports whether the visible aggregate value changed.
func (c Change) Changed() bool {
	if c.HadOld != c.HasNew {
		return true
	}
	if !c.HadOld {
		return false
	}
	return !c.Old.Equal(c.New)
}

func (g *GroupAgg) lookup(h uint64, key []val.Value) *aggGroup {
	for _, gr := range g.groups[h] {
		if val.ValuesEqual(gr.key, key) {
			return gr
		}
	}
	return nil
}

func (g *GroupAgg) group(h uint64, key []val.Value) *aggGroup {
	if gr := g.lookup(h, key); gr != nil {
		if gr.n == 0 {
			g.empties--
			g.n++
		}
		return gr
	}
	var kcp []val.Value
	if g.in != nil {
		kcp = g.in.InternValues(key)
	} else {
		kcp = append([]val.Value(nil), key...)
	}
	gr := &aggGroup{
		key:    kcp,
		values: map[uint64][]*aggVal{},
		allInt: true,
	}
	g.groups[h] = append(g.groups[h], gr)
	g.n++
	return gr
}

// drop empties a group but keeps its shell for reuse; a sweep reclaims
// shells when they outnumber the live groups.
func (g *GroupAgg) drop(h uint64, gr *aggGroup) {
	gr.valid = false
	gr.sum, gr.sumInt, gr.allInt = 0, 0, true
	gr.cur = val.Nil
	g.n--
	g.empties++
	if g.empties > 64 && g.empties > g.n {
		g.sweep()
	}
}

// sweep discards all retained empty group shells.
func (g *GroupAgg) sweep() {
	for h, chain := range g.groups {
		live := chain[:0]
		for _, gr := range chain {
			if gr.n > 0 {
				live = append(live, gr)
			}
		}
		if len(live) == 0 {
			delete(g.groups, h)
		} else {
			g.groups[h] = live
		}
	}
	g.empties = 0
}

func (gr *aggGroup) valFor(v val.Value) *aggVal {
	for _, av := range gr.values[v.Hash()] {
		if av.v.Equal(v) {
			return av
		}
	}
	return nil
}

// Add inserts one occurrence of v into the group keyed by key. The key
// slice is copied on first use, so callers may reuse scratch storage.
func (g *GroupAgg) Add(key []val.Value, v val.Value) Change {
	gr := g.group(val.HashValues(key), key)
	ch := Change{HadOld: gr.valid, Old: gr.cur}
	if av := gr.valFor(v); av != nil {
		av.count++
	} else {
		h := v.Hash()
		gr.values[h] = append(gr.values[h], &aggVal{v: v, count: 1})
	}
	gr.n++
	if v.Kind() == val.KindInt {
		gr.sumInt += v.Int()
	} else {
		gr.allInt = false
	}
	if v.IsNumeric() {
		gr.sum += v.Float()
	}
	g.recomputeCheap(gr, v)
	ch.HasNew, ch.New = gr.valid, gr.cur
	return ch
}

// Remove deletes one occurrence of v from the group. Removing a value
// that is not present is a no-op reporting no change.
func (g *GroupAgg) Remove(key []val.Value, v val.Value) Change {
	h := val.HashValues(key)
	gr := g.lookup(h, key)
	if gr == nil {
		return Change{}
	}
	av := gr.valFor(v)
	if av == nil {
		return Change{HadOld: gr.valid, Old: gr.cur, HasNew: gr.valid, New: gr.cur}
	}
	ch := Change{HadOld: gr.valid, Old: gr.cur}
	av.count--
	if av.count == 0 {
		vh := v.Hash()
		chain := gr.values[vh]
		for i := range chain {
			if chain[i] == av {
				chain[i] = chain[len(chain)-1]
				chain = chain[:len(chain)-1]
				break
			}
		}
		if len(chain) == 0 {
			delete(gr.values, vh)
		} else {
			gr.values[vh] = chain
		}
	}
	gr.n--
	if v.Kind() == val.KindInt {
		gr.sumInt -= v.Int()
	}
	if v.IsNumeric() {
		gr.sum -= v.Float()
	}
	if gr.n == 0 {
		g.drop(h, gr)
		return Change{HadOld: ch.HadOld, Old: ch.Old}
	}
	g.recompute(gr)
	ch.HasNew, ch.New = gr.valid, gr.cur
	return ch
}

// Current returns the group's aggregate value, if it has one.
func (g *GroupAgg) Current(key []val.Value) (val.Value, bool) {
	gr := g.lookup(val.HashValues(key), key)
	if gr == nil || !gr.valid {
		return val.Nil, false
	}
	return gr.cur, true
}

// Groups returns the number of live groups.
func (g *GroupAgg) Groups() int { return g.n }

// recomputeCheap updates the aggregate after inserting v without a full
// scan: min/max only move toward v, count/sum are running totals.
func (g *GroupAgg) recomputeCheap(gr *aggGroup, v val.Value) {
	switch g.fn {
	case ast.AggMin:
		if !gr.valid || v.Compare(gr.cur) < 0 {
			gr.cur = v
		}
	case ast.AggMax:
		if !gr.valid || v.Compare(gr.cur) > 0 {
			gr.cur = v
		}
	case ast.AggCount:
		gr.cur = val.NewInt(int64(gr.n))
	case ast.AggSum:
		gr.cur = gr.sumValue()
	}
	gr.valid = true
}

// recompute rebuilds the aggregate after a deletion. Count and sum stay
// incremental; min/max rescan the group's multiset only when needed.
func (g *GroupAgg) recompute(gr *aggGroup) {
	switch g.fn {
	case ast.AggCount:
		gr.cur = val.NewInt(int64(gr.n))
		gr.valid = true
		return
	case ast.AggSum:
		gr.cur = gr.sumValue()
		gr.valid = true
		return
	}
	// min/max: if the removed value was not the current extreme, nothing
	// changed; Remove callers cannot tell us that cheaply, so check
	// whether the current extreme is still present before rescanning.
	if gr.valid {
		if av := gr.valFor(gr.cur); av != nil && av.count > 0 {
			return
		}
	}
	first := true
	for _, chain := range gr.values {
		for _, av := range chain {
			if first {
				gr.cur = av.v
				first = false
				continue
			}
			c := av.v.Compare(gr.cur)
			if (g.fn == ast.AggMin && c < 0) || (g.fn == ast.AggMax && c > 0) {
				gr.cur = av.v
			}
		}
	}
	gr.valid = !first
}

func (gr *aggGroup) sumValue() val.Value {
	if gr.allInt {
		return val.NewInt(gr.sumInt)
	}
	return val.NewFloat(gr.sum)
}
