package table

import (
	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// GroupAgg maintains incremental aggregates (min, max, count, sum) per
// group, supporting both insertions and deletions as required for
// materialized-view maintenance under the bursty update model (paper
// Section 4, citing Ramakrishnan et al. [27]).
//
// For min/max, each group keeps a multiset of contributing values; a
// deletion of the current extreme triggers a rescan of the group (the
// O(n)-space / cheap-recompute strategy the paper cites).
type GroupAgg struct {
	fn     ast.AggFunc
	groups map[string]*aggGroup
}

type aggGroup struct {
	// values maps a value's canonical key to its value and multiplicity.
	values map[string]*aggVal
	n      int     // total multiplicity (for count)
	sum    float64 // running sum (for sum)
	sumInt int64
	allInt bool
	cur    val.Value // current aggregate output
	valid  bool
}

type aggVal struct {
	v     val.Value
	count int
}

// NewGroupAgg creates an incremental aggregate for fn.
func NewGroupAgg(fn ast.AggFunc) *GroupAgg {
	return &GroupAgg{fn: fn, groups: map[string]*aggGroup{}}
}

// Change describes how a group's aggregate moved after an Add or Remove.
type Change struct {
	// HadOld is true if the group had an aggregate value before.
	HadOld bool
	Old    val.Value
	// HasNew is true if the group still has an aggregate value after.
	HasNew bool
	New    val.Value
}

// Changed reports whether the visible aggregate value changed.
func (c Change) Changed() bool {
	if c.HadOld != c.HasNew {
		return true
	}
	if !c.HadOld {
		return false
	}
	return !c.Old.Equal(c.New)
}

func (g *GroupAgg) group(key string) *aggGroup {
	gr, ok := g.groups[key]
	if !ok {
		gr = &aggGroup{values: map[string]*aggVal{}, allInt: true}
		g.groups[key] = gr
	}
	return gr
}

// Add inserts one occurrence of v into the group.
func (g *GroupAgg) Add(key string, v val.Value) Change {
	gr := g.group(key)
	ch := Change{HadOld: gr.valid, Old: gr.cur}
	k := v.String()
	if av, ok := gr.values[k]; ok {
		av.count++
	} else {
		gr.values[k] = &aggVal{v: v, count: 1}
	}
	gr.n++
	if v.Kind() == val.KindInt {
		gr.sumInt += v.Int()
	} else {
		gr.allInt = false
	}
	if v.IsNumeric() {
		gr.sum += v.Float()
	}
	g.recomputeCheap(gr, v, true)
	ch.HasNew, ch.New = gr.valid, gr.cur
	return ch
}

// Remove deletes one occurrence of v from the group. Removing a value
// that is not present is a no-op reporting no change.
func (g *GroupAgg) Remove(key string, v val.Value) Change {
	gr, ok := g.groups[key]
	if !ok {
		return Change{}
	}
	k := v.String()
	av, ok := gr.values[k]
	if !ok {
		return Change{HadOld: gr.valid, Old: gr.cur, HasNew: gr.valid, New: gr.cur}
	}
	ch := Change{HadOld: gr.valid, Old: gr.cur}
	av.count--
	if av.count == 0 {
		delete(gr.values, k)
	}
	gr.n--
	if v.Kind() == val.KindInt {
		gr.sumInt -= v.Int()
	}
	if v.IsNumeric() {
		gr.sum -= v.Float()
	}
	if gr.n == 0 {
		delete(g.groups, key)
		return Change{HadOld: ch.HadOld, Old: ch.Old}
	}
	g.recompute(gr)
	ch.HasNew, ch.New = gr.valid, gr.cur
	return ch
}

// Current returns the group's aggregate value, if it has one.
func (g *GroupAgg) Current(key string) (val.Value, bool) {
	gr, ok := g.groups[key]
	if !ok || !gr.valid {
		return val.Nil, false
	}
	return gr.cur, true
}

// Groups returns the number of live groups.
func (g *GroupAgg) Groups() int { return len(g.groups) }

// recomputeCheap updates the aggregate after inserting v without a full
// scan: min/max only move toward v, count/sum are running totals.
func (g *GroupAgg) recomputeCheap(gr *aggGroup, v val.Value, _ bool) {
	switch g.fn {
	case ast.AggMin:
		if !gr.valid || v.Compare(gr.cur) < 0 {
			gr.cur = v
		}
	case ast.AggMax:
		if !gr.valid || v.Compare(gr.cur) > 0 {
			gr.cur = v
		}
	case ast.AggCount:
		gr.cur = val.NewInt(int64(gr.n))
	case ast.AggSum:
		gr.cur = gr.sumValue()
	}
	gr.valid = true
}

// recompute rebuilds the aggregate after a deletion. Count and sum stay
// incremental; min/max rescan the group's multiset only when needed.
func (g *GroupAgg) recompute(gr *aggGroup) {
	switch g.fn {
	case ast.AggCount:
		gr.cur = val.NewInt(int64(gr.n))
		gr.valid = true
		return
	case ast.AggSum:
		gr.cur = gr.sumValue()
		gr.valid = true
		return
	}
	// min/max: if the removed value was not the current extreme, nothing
	// changed; Remove callers cannot tell us that cheaply, so check
	// whether the current extreme is still present before rescanning.
	if gr.valid {
		if av, ok := gr.values[gr.cur.String()]; ok && av.count > 0 {
			return
		}
	}
	first := true
	for _, av := range gr.values {
		if first {
			gr.cur = av.v
			first = false
			continue
		}
		c := av.v.Compare(gr.cur)
		if (g.fn == ast.AggMin && c < 0) || (g.fn == ast.AggMax && c > 0) {
			gr.cur = av.v
		}
	}
	gr.valid = !first
}

func (gr *aggGroup) sumValue() val.Value {
	if gr.allInt {
		return val.NewInt(gr.sumInt)
	}
	return val.NewFloat(gr.sum)
}
