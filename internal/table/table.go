// Package table implements the storage layer of the NDlog engine:
// materialized relations with primary keys, secondary join indexes,
// per-tuple derivation counts (the count algorithm of Gupta et al. used
// in Section 4 of the paper), logical timestamps for pipelined
// semi-naïve evaluation, and soft-state TTL expiry.
package table

import (
	"fmt"
	"sort"
	"strings"

	"ndlog/internal/val"
)

// Entry is a stored tuple plus engine bookkeeping.
type Entry struct {
	Tuple val.Tuple
	// Count is the number of outstanding derivations of this exact tuple
	// (the count algorithm). The tuple is removed when Count reaches 0.
	Count int
	// Stamp is the logical timestamp assigned at arrival; PSN joins match
	// a delta tuple only against entries with Stamp <= the delta's stamp,
	// which replaces the Δp/p-old bookkeeping of classic semi-naïve.
	Stamp uint64
	// Expires is the virtual time at which this entry dies (soft state);
	// negative means never (hard state).
	Expires float64
	// Adv records whether the engine has run this tuple's trigger strands
	// (its "advertisement"). The aggregate-selection optimization defers
	// or suppresses trigger strands for tuples that do not improve their
	// group aggregate; Adv prevents double advertisement.
	Adv bool
}

// Status describes the effect of an Insert.
type Status uint8

// Insert outcomes.
const (
	// StatusNew: no tuple with this primary key existed; the tuple was added.
	StatusNew Status = iota
	// StatusDuplicate: the identical tuple existed; its count was bumped.
	StatusDuplicate
	// StatusReplaced: a different tuple with the same primary key existed
	// and was replaced (P2 key-update semantics: delete old, insert new).
	StatusReplaced
)

func (s Status) String() string {
	switch s {
	case StatusNew:
		return "new"
	case StatusDuplicate:
		return "duplicate"
	case StatusReplaced:
		return "replaced"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Table is one materialized relation at one node.
type Table struct {
	name    string
	keys    []int // primary-key columns; empty means the whole row
	ttl     float64
	maxSize int

	rows    map[string]*Entry
	order   []string // insertion order of primary keys, for FIFO eviction
	indexes map[string]*index
}

type index struct {
	cols []int
	m    map[string][]*Entry
}

// New creates a table. keys lists primary-key columns (0-based); empty
// means the full row is the key. ttl < 0 means hard state. maxSize <= 0
// means unbounded.
func New(name string, keys []int, ttl float64, maxSize int) *Table {
	return &Table{
		name:    name,
		keys:    append([]int(nil), keys...),
		ttl:     ttl,
		maxSize: maxSize,
		rows:    map[string]*Entry{},
		indexes: map[string]*index{},
	}
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// Keys returns the primary-key columns (nil = whole row).
func (t *Table) Keys() []int { return t.keys }

// TTL returns the soft-state lifetime (<0 = hard state).
func (t *Table) TTL() float64 { return t.ttl }

// Len returns the number of live rows.
func (t *Table) Len() int { return len(t.rows) }

func (t *Table) pk(tp val.Tuple) string {
	if len(t.keys) == 0 {
		return tp.Key()
	}
	return tp.KeyOn(t.keys)
}

// InsertResult reports what an Insert did, including any displaced tuples
// the caller must propagate as deletions.
type InsertResult struct {
	Status   Status
	Replaced val.Tuple // valid when Status == StatusReplaced
	Evicted  []val.Tuple
}

// Insert adds tp with the given logical stamp at virtual time now.
// Duplicate tuples bump the derivation count. A tuple with an existing
// primary key but different fields replaces the old row; the displaced
// tuple is returned so the engine can propagate its deletion.
func (t *Table) Insert(tp val.Tuple, stamp uint64, now float64) InsertResult {
	key := t.pk(tp)
	expires := -1.0
	if t.ttl >= 0 {
		expires = now + t.ttl
	}
	if e, ok := t.rows[key]; ok {
		if e.Tuple.Equal(tp) {
			// Hard state counts derivations; soft state instead treats a
			// duplicate insert as a refresh (the paper's soft-state
			// model: facts are re-inserted with a new TTL, Section 4.2).
			if t.ttl < 0 {
				e.Count++
			}
			e.Expires = expires // re-insertion refreshes the TTL
			return InsertResult{Status: StatusDuplicate}
		}
		old := e.Tuple
		t.removeFromIndexes(e)
		e.Tuple = tp
		e.Count = 1
		e.Stamp = stamp
		e.Expires = expires
		t.addToIndexes(e)
		return InsertResult{Status: StatusReplaced, Replaced: old}
	}
	e := &Entry{Tuple: tp, Count: 1, Stamp: stamp, Expires: expires}
	t.rows[key] = e
	t.order = append(t.order, key)
	t.addToIndexes(e)
	res := InsertResult{Status: StatusNew}
	if t.maxSize > 0 {
		res.Evicted = t.evictOverflow()
	}
	return res
}

// evictOverflow drops the oldest rows until the table fits maxSize.
func (t *Table) evictOverflow() []val.Tuple {
	var evicted []val.Tuple
	for len(t.rows) > t.maxSize && len(t.order) > 0 {
		key := t.order[0]
		t.order = t.order[1:]
		e, ok := t.rows[key]
		if !ok {
			continue // stale order entry from an earlier delete
		}
		delete(t.rows, key)
		t.removeFromIndexes(e)
		evicted = append(evicted, e.Tuple)
	}
	return evicted
}

// Delete decrements the derivation count of tp. It returns (gone,
// existed): existed is false if the exact tuple is not present; gone is
// true when the count reached zero and the row was removed.
func (t *Table) Delete(tp val.Tuple) (gone, existed bool) {
	key := t.pk(tp)
	e, ok := t.rows[key]
	if !ok || !e.Tuple.Equal(tp) {
		return false, false
	}
	e.Count--
	if e.Count > 0 {
		return false, true
	}
	delete(t.rows, key)
	t.removeFromIndexes(e)
	return true, true
}

// DeleteByKey removes the row whose primary key matches tp regardless of
// its non-key fields and derivation count, returning the removed tuple.
// Used for base-table updates where the new value displaces the old.
func (t *Table) DeleteByKey(tp val.Tuple) (val.Tuple, bool) {
	key := t.pk(tp)
	e, ok := t.rows[key]
	if !ok {
		return val.Tuple{}, false
	}
	delete(t.rows, key)
	t.removeFromIndexes(e)
	return e.Tuple, true
}

// Contains reports whether the exact tuple is stored.
func (t *Table) Contains(tp val.Tuple) bool {
	e, ok := t.rows[t.pk(tp)]
	return ok && e.Tuple.Equal(tp)
}

// Get returns the entry with tp's primary key, if any.
func (t *Table) Get(tp val.Tuple) (*Entry, bool) {
	e, ok := t.rows[t.pk(tp)]
	return e, ok
}

// Count returns the derivation count of the exact tuple (0 if absent).
func (t *Table) Count(tp val.Tuple) int {
	e, ok := t.rows[t.pk(tp)]
	if !ok || !e.Tuple.Equal(tp) {
		return 0
	}
	return e.Count
}

// Scan visits every live entry; return false from fn to stop early.
func (t *Table) Scan(fn func(*Entry) bool) {
	for _, e := range t.rows {
		if !fn(e) {
			return
		}
	}
}

// Tuples returns all live tuples in deterministic (sorted-key) order.
func (t *Table) Tuples() []val.Tuple {
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]val.Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.rows[k].Tuple)
	}
	return out
}

func indexSig(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// EnsureIndex builds (or reuses) a secondary index over cols and returns
// its signature for Match lookups.
func (t *Table) EnsureIndex(cols []int) string {
	sig := indexSig(cols)
	if _, ok := t.indexes[sig]; ok {
		return sig
	}
	idx := &index{cols: append([]int(nil), cols...), m: map[string][]*Entry{}}
	for _, e := range t.rows {
		k := e.Tuple.KeyOn(idx.cols)
		idx.m[k] = append(idx.m[k], e)
	}
	t.indexes[sig] = idx
	return sig
}

// Match returns the entries whose cols project to key. The index must
// have been created with EnsureIndex.
func (t *Table) Match(sig string, key string) []*Entry {
	idx, ok := t.indexes[sig]
	if !ok {
		panic(fmt.Sprintf("table %s: Match on missing index %q", t.name, sig))
	}
	return idx.m[key]
}

func (t *Table) addToIndexes(e *Entry) {
	for _, idx := range t.indexes {
		k := e.Tuple.KeyOn(idx.cols)
		idx.m[k] = append(idx.m[k], e)
	}
}

func (t *Table) removeFromIndexes(e *Entry) {
	for _, idx := range t.indexes {
		k := e.Tuple.KeyOn(idx.cols)
		list := idx.m[k]
		for i := range list {
			if list[i] == e {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(idx.m, k)
		} else {
			idx.m[k] = list
		}
	}
}

// ExpireBefore removes and returns all soft-state tuples whose TTL has
// lapsed at virtual time now.
func (t *Table) ExpireBefore(now float64) []val.Tuple {
	if t.ttl < 0 {
		return nil
	}
	var expired []val.Tuple
	for k, e := range t.rows {
		if e.Expires >= 0 && e.Expires <= now {
			expired = append(expired, e.Tuple)
			delete(t.rows, k)
			t.removeFromIndexes(e)
		}
	}
	return expired
}

// Catalog is the set of tables at one node.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// Declare creates the table if absent and returns it. Redeclaring an
// existing name returns the existing table unchanged.
func (c *Catalog) Declare(name string, keys []int, ttl float64, maxSize int) *Table {
	if t, ok := c.tables[name]; ok {
		return t
	}
	t := New(name, keys, ttl, maxSize)
	c.tables[name] = t
	return t
}

// Get returns the table for name, creating a default (whole-row key,
// hard-state) table on first use. NDlog predicates without a materialize
// declaration behave this way in P2.
func (c *Catalog) Get(name string) *Table {
	if t, ok := c.tables[name]; ok {
		return t
	}
	return c.Declare(name, nil, -1, 0)
}

// Has reports whether a table exists without creating it.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[name]
	return ok
}

// Names returns the declared table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExpireBefore expires soft state across all tables, returning the dead
// tuples per table.
func (c *Catalog) ExpireBefore(now float64) []val.Tuple {
	var out []val.Tuple
	for _, n := range c.Names() {
		out = append(out, c.tables[n].ExpireBefore(now)...)
	}
	return out
}
