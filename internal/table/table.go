// Package table implements the storage layer of the NDlog engine:
// materialized relations with primary keys, secondary join indexes,
// per-tuple derivation counts (the count algorithm of Gupta et al. used
// in Section 4 of the paper), logical timestamps for pipelined
// semi-naïve evaluation, and soft-state TTL expiry.
//
// Rows and indexes are keyed by 64-bit hashes of the key columns
// (val.Tuple.HashOn), with short collision buckets resolved by
// structural equality. Nothing on the insert/lookup/delete path formats
// a value into a string; val.Tuple.Key and KeyOn exist only for display
// and deterministic test output.
//
// Ownership: tables are single-owner (one engine node each, no internal
// locking). A stored Entry and its Tuple belong to the table; callers
// may hold the Tuple (tuples are immutable) but must treat Entry fields
// other than the advertisement/pooling flags as read-only — indexes
// alias the same Entry pointers, so replacing an Entry's Tuple wholesale
// is reserved for the interning hooks that preserve structural equality.
package table

import (
	"fmt"
	"sort"
	"strings"

	"ndlog/internal/val"
)

// Entry is a stored tuple plus engine bookkeeping.
type Entry struct {
	Tuple val.Tuple
	// Count is the number of outstanding derivations of this exact tuple
	// (the count algorithm). The tuple is removed when Count reaches 0.
	Count int
	// Stamp is the logical timestamp assigned at arrival; PSN joins match
	// a delta tuple only against entries with Stamp <= the delta's stamp,
	// which replaces the Δp/p-old bookkeeping of classic semi-naïve.
	Stamp uint64
	// Expires is the virtual time at which this entry dies (soft state);
	// negative means never (hard state).
	Expires float64
	// Adv records whether the engine has run this tuple's trigger strands
	// (its "advertisement"). The aggregate-selection optimization defers
	// or suppresses trigger strands for tuples that do not improve their
	// group aggregate; Adv prevents double advertisement.
	Adv bool
	// Pooled records that the engine has interned this row (second-touch
	// pooling): further duplicate inserts skip the pool probe entirely.
	// PooledEpoch is the interner epoch at pooling time; once the pool
	// has flipped twice since, the canonical may have been evicted and
	// the engine re-interns on the next duplicate.
	Pooled      bool
	PooledEpoch int

	// pkHash is the primary-key hash the entry is stored under; cached so
	// deletes and index maintenance never rehash the tuple.
	pkHash uint64
	// dead marks an entry removed from rows that may still sit in the
	// FIFO eviction list awaiting compaction.
	dead bool
}

// Status describes the effect of an Insert.
type Status uint8

// Insert outcomes.
const (
	// StatusNew: no tuple with this primary key existed; the tuple was added.
	StatusNew Status = iota
	// StatusDuplicate: the identical tuple existed; its count was bumped.
	StatusDuplicate
	// StatusReplaced: a different tuple with the same primary key existed
	// and was replaced (P2 key-update semantics: delete old, insert new).
	StatusReplaced
)

func (s Status) String() string {
	switch s {
	case StatusNew:
		return "new"
	case StatusDuplicate:
		return "duplicate"
	case StatusReplaced:
		return "replaced"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Table is one materialized relation at one node.
type Table struct {
	name     string
	nameHash val.Hash64 // cached HashPredicate(name), for intern keys
	keys     []int      // primary-key columns; empty means the whole row
	ttl      float64
	maxSize  int

	rows map[uint64][]*Entry // pk hash -> collision bucket
	n    int                 // live row count

	// FIFO eviction list, maintained only for bounded tables
	// (maxSize > 0). head indexes the oldest candidate; dead counts
	// entries removed from rows but not yet compacted out of order.
	// compactOrder keeps both the consumed prefix and the dead remainder
	// bounded so deleted keys can no longer pin the backing array.
	order []*Entry
	head  int
	dead  int

	indexes map[string]*Index
	idxList []*Index
}

// Index is a secondary index over a fixed column set, keyed by the hash
// of the projected fields. Buckets may contain hash collisions; Match
// filters them with structural equality, Bucket leaves verification to
// the caller (the join path re-checks every field via unification).
type Index struct {
	cols []int
	m    map[uint64][]*Entry
}

// Cols returns the indexed columns. Callers must not mutate the slice.
func (ix *Index) Cols() []int { return ix.cols }

// Bucket returns the raw collision bucket for hash h. Entries whose
// projection merely collides with the probe are included; callers must
// verify matches (e.g. by unifying every bound column).
func (ix *Index) Bucket(h uint64) []*Entry { return ix.m[h] }

// Match returns the entries whose projection onto the index columns
// equals vals. In the common collision-free case it returns the bucket
// without copying.
func (ix *Index) Match(vals []val.Value) []*Entry {
	bucket := ix.m[val.HashValues(vals)]
	for i, e := range bucket {
		if !ix.matches(e, vals) {
			// Rare collision: build a filtered copy.
			out := append([]*Entry(nil), bucket[:i]...)
			for _, e2 := range bucket[i+1:] {
				if ix.matches(e2, vals) {
					out = append(out, e2)
				}
			}
			return out
		}
	}
	return bucket
}

func (ix *Index) matches(e *Entry, vals []val.Value) bool {
	if len(vals) != len(ix.cols) {
		return false
	}
	fs := e.Tuple.Fields
	for i, c := range ix.cols {
		if c < 0 || c >= len(fs) || !fs[c].Equal(vals[i]) {
			return false
		}
	}
	return true
}

func (ix *Index) key(e *Entry) uint64 { return e.Tuple.HashOn(ix.cols) }

func (ix *Index) add(e *Entry) {
	k := ix.key(e)
	ix.m[k] = append(ix.m[k], e)
}

func (ix *Index) remove(e *Entry) {
	k := ix.key(e)
	list := ix.m[k]
	for i := range list {
		if list[i] == e {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(ix.m, k)
	} else {
		ix.m[k] = list
	}
}

// New creates a table. keys lists primary-key columns (0-based); empty
// means the full row is the key. ttl < 0 means hard state. maxSize <= 0
// means unbounded.
func New(name string, keys []int, ttl float64, maxSize int) *Table {
	return &Table{
		name:     name,
		nameHash: val.HashPredicate(name),
		keys:     append([]int(nil), keys...),
		ttl:      ttl,
		maxSize:  maxSize,
		rows:     map[uint64][]*Entry{},
		indexes:  map[string]*Index{},
	}
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// NameHash returns the cached hash state of the relation name — the
// fixed prefix of this table's tuples' intern keys (val.HashPredicate).
func (t *Table) NameHash() val.Hash64 { return t.nameHash }

// Keys returns the primary-key columns (nil = whole row).
func (t *Table) Keys() []int { return t.keys }

// TTL returns the soft-state lifetime (<0 = hard state).
func (t *Table) TTL() float64 { return t.ttl }

// Len returns the number of live rows.
func (t *Table) Len() int { return t.n }

func (t *Table) pkHash(tp val.Tuple) uint64 {
	if len(t.keys) == 0 {
		return tp.Hash()
	}
	return tp.HashOn(t.keys)
}

// pkEqual reports whether two tuples share a primary key.
func (t *Table) pkEqual(a, b val.Tuple) bool {
	if len(t.keys) == 0 {
		return a.Equal(b)
	}
	for _, c := range t.keys {
		aOOB := c < 0 || c >= len(a.Fields)
		bOOB := c < 0 || c >= len(b.Fields)
		if aOOB || bOOB {
			if aOOB != bOOB {
				return false
			}
			continue
		}
		if !a.Fields[c].Equal(b.Fields[c]) {
			return false
		}
	}
	return true
}

// find returns the entry whose primary key matches tp under hash h.
func (t *Table) find(h uint64, tp val.Tuple) *Entry {
	for _, e := range t.rows[h] {
		if t.pkEqual(e.Tuple, tp) {
			return e
		}
	}
	return nil
}

// removeRow unlinks e from the row map and indexes. popped reports that
// the caller already consumed e from the FIFO order window; otherwise e
// keeps a dead marker there until compaction.
func (t *Table) removeRow(e *Entry, popped bool) {
	bucket := t.rows[e.pkHash]
	for i := range bucket {
		if bucket[i] == e {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(t.rows, e.pkHash)
	} else {
		t.rows[e.pkHash] = bucket
	}
	t.n--
	t.removeFromIndexes(e)
	if t.maxSize > 0 {
		e.dead = true
		if !popped {
			t.dead++
			t.compactOrder()
		}
	}
}

// compactOrder bounds the eviction list: once the consumed prefix plus
// dead entries dominate, rewrite the live suffix into a fresh slice so
// the old backing array (and the tuples it pins) can be collected.
func (t *Table) compactOrder() {
	waste := t.head + t.dead
	if waste <= 32 || waste*2 <= len(t.order) {
		return
	}
	live := make([]*Entry, 0, len(t.order)-t.head-t.dead)
	for _, e := range t.order[t.head:] {
		if !e.dead {
			live = append(live, e)
		}
	}
	t.order = live
	t.head = 0
	t.dead = 0
}

// InsertResult reports what an Insert did, including any displaced tuples
// the caller must propagate as deletions.
type InsertResult struct {
	Status   Status
	Replaced val.Tuple // valid when Status == StatusReplaced
	// Dup is the stored row when Status == StatusDuplicate: its tuple is
	// the canonical copy of the one the caller tried to insert. The
	// engine pools it on this second touch (tuples that repeat are the
	// ones worth interning; single-touch rows never pay pool
	// bookkeeping) and marks it Pooled so later duplicates skip the
	// probe.
	Dup *Entry
	// ReplacedAdv and ReplacedStamp snapshot the displaced entry's
	// advertisement flag and timestamp, so the engine can propagate the
	// deletion without a second lookup.
	ReplacedAdv   bool
	ReplacedStamp uint64
	Evicted       []val.Tuple
}

// InsertBarrier reports whether inserting tp now would displace stored
// rows — a primary-key replacement or a size eviction. Displacements
// propagate deletions with unrestricted join bounds, so batched drains
// must flush deferred trigger work before such an insert. Unkeyed,
// unbounded tables (the common case) never barrier, and the probe costs
// nothing there.
func (t *Table) InsertBarrier(tp val.Tuple) bool {
	if len(t.keys) == 0 && t.maxSize <= 0 {
		return false
	}
	if e := t.find(t.pkHash(tp), tp); e != nil {
		// Same primary key: an identical tuple is a count/refresh
		// duplicate (no displacement); a different one replaces the row.
		return !e.Tuple.Equal(tp)
	}
	return t.maxSize > 0 && t.n+1 > t.maxSize
}

// Insert adds tp with the given logical stamp at virtual time now.
// Duplicate tuples bump the derivation count. A tuple with an existing
// primary key but different fields replaces the old row; the displaced
// tuple is returned so the engine can propagate its deletion.
func (t *Table) Insert(tp val.Tuple, stamp uint64, now float64) InsertResult {
	h := t.pkHash(tp)
	expires := -1.0
	if t.ttl >= 0 {
		expires = now + t.ttl
	}
	if e := t.find(h, tp); e != nil {
		if e.Tuple.Equal(tp) {
			// Hard state counts derivations; soft state instead treats a
			// duplicate insert as a refresh (the paper's soft-state
			// model: facts are re-inserted with a new TTL, Section 4.2).
			if t.ttl < 0 {
				e.Count++
			}
			e.Expires = expires // re-insertion refreshes the TTL
			return InsertResult{Status: StatusDuplicate, Dup: e}
		}
		old := e.Tuple
		oldAdv, oldStamp := e.Adv, e.Stamp
		t.removeFromIndexes(e)
		e.Tuple = tp
		e.Count = 1
		e.Stamp = stamp
		e.Expires = expires
		// The entry now holds a different tuple: the displaced value's
		// pooled state must not stick to it, or the new value would never
		// be interned on its second touch.
		e.Pooled, e.PooledEpoch = false, 0
		t.addToIndexes(e)
		return InsertResult{Status: StatusReplaced, Replaced: old,
			ReplacedAdv: oldAdv, ReplacedStamp: oldStamp}
	}
	e := &Entry{Tuple: tp, Count: 1, Stamp: stamp, Expires: expires, pkHash: h}
	t.rows[h] = append(t.rows[h], e)
	t.n++
	t.addToIndexes(e)
	res := InsertResult{Status: StatusNew}
	if t.maxSize > 0 {
		t.order = append(t.order, e)
		res.Evicted = t.evictOverflow()
	}
	return res
}

// evictOverflow drops the oldest rows until the table fits maxSize.
func (t *Table) evictOverflow() []val.Tuple {
	var evicted []val.Tuple
	for t.n > t.maxSize && t.head < len(t.order) {
		e := t.order[t.head]
		t.head++
		if e.dead {
			t.dead--
			continue
		}
		t.removeRow(e, true)
		evicted = append(evicted, e.Tuple)
	}
	t.compactOrder()
	return evicted
}

// Delete decrements the derivation count of tp. It returns (gone,
// existed): existed is false if the exact tuple is not present; gone is
// true when the count reached zero and the row was removed.
func (t *Table) Delete(tp val.Tuple) (gone, existed bool) {
	_, gone, existed = t.DeleteE(tp)
	return gone, existed
}

// DeleteE is Delete returning a snapshot of the entry as it was before
// the deletion, so callers needing its bookkeeping (Adv, Stamp) skip a
// separate lookup.
func (t *Table) DeleteE(tp val.Tuple) (snap Entry, gone, existed bool) {
	e := t.find(t.pkHash(tp), tp)
	if e == nil || !e.Tuple.Equal(tp) {
		return Entry{}, false, false
	}
	snap = *e
	e.Count--
	if e.Count > 0 {
		return snap, false, true
	}
	t.removeRow(e, false)
	return snap, true, true
}

// DeleteByKey removes the row whose primary key matches tp regardless of
// its non-key fields and derivation count, returning the removed tuple.
// Used for base-table updates where the new value displaces the old.
func (t *Table) DeleteByKey(tp val.Tuple) (val.Tuple, bool) {
	e := t.find(t.pkHash(tp), tp)
	if e == nil {
		return val.Tuple{}, false
	}
	t.removeRow(e, false)
	return e.Tuple, true
}

// Contains reports whether the exact tuple is stored.
func (t *Table) Contains(tp val.Tuple) bool {
	e := t.find(t.pkHash(tp), tp)
	return e != nil && e.Tuple.Equal(tp)
}

// Get returns the entry with tp's primary key, if any.
func (t *Table) Get(tp val.Tuple) (*Entry, bool) {
	e := t.find(t.pkHash(tp), tp)
	return e, e != nil
}

// Count returns the derivation count of the exact tuple (0 if absent).
func (t *Table) Count(tp val.Tuple) int {
	e := t.find(t.pkHash(tp), tp)
	if e == nil || !e.Tuple.Equal(tp) {
		return 0
	}
	return e.Count
}

// Scan visits every live entry; return false from fn to stop early.
func (t *Table) Scan(fn func(*Entry) bool) {
	for _, bucket := range t.rows {
		for _, e := range bucket {
			if !fn(e) {
				return
			}
		}
	}
}

// Tuples returns all live tuples in deterministic (Tuple.Compare) order.
func (t *Table) Tuples() []val.Tuple {
	out := make([]val.Tuple, 0, t.n)
	for _, bucket := range t.rows {
		for _, e := range bucket {
			out = append(out, e.Tuple)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func indexSig(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// EnsureIndex builds (or reuses) a secondary index over cols and returns
// its handle for Bucket/Match lookups. Handles stay valid for the life
// of the table, so callers resolve an index once instead of per probe.
func (t *Table) EnsureIndex(cols []int) *Index {
	sig := indexSig(cols)
	if ix, ok := t.indexes[sig]; ok {
		return ix
	}
	ix := &Index{cols: append([]int(nil), cols...), m: map[uint64][]*Entry{}}
	for _, bucket := range t.rows {
		for _, e := range bucket {
			ix.add(e)
		}
	}
	t.indexes[sig] = ix
	t.idxList = append(t.idxList, ix)
	return ix
}

func (t *Table) addToIndexes(e *Entry) {
	for _, ix := range t.idxList {
		ix.add(e)
	}
}

func (t *Table) removeFromIndexes(e *Entry) {
	for _, ix := range t.idxList {
		ix.remove(e)
	}
}

// ExpireBefore removes and returns all soft-state tuples whose TTL has
// lapsed at virtual time now.
func (t *Table) ExpireBefore(now float64) []val.Tuple {
	if t.ttl < 0 {
		return nil
	}
	var dead []*Entry
	for _, bucket := range t.rows {
		for _, e := range bucket {
			if e.Expires >= 0 && e.Expires <= now {
				dead = append(dead, e)
			}
		}
	}
	var expired []val.Tuple
	for _, e := range dead {
		expired = append(expired, e.Tuple)
		t.removeRow(e, false)
	}
	return expired
}

// Catalog is the set of tables at one node.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// Declare creates the table if absent and returns it. Redeclaring an
// existing name returns the existing table unchanged.
func (c *Catalog) Declare(name string, keys []int, ttl float64, maxSize int) *Table {
	if t, ok := c.tables[name]; ok {
		return t
	}
	t := New(name, keys, ttl, maxSize)
	c.tables[name] = t
	return t
}

// Get returns the table for name, creating a default (whole-row key,
// hard-state) table on first use. NDlog predicates without a materialize
// declaration behave this way in P2.
func (c *Catalog) Get(name string) *Table {
	if t, ok := c.tables[name]; ok {
		return t
	}
	return c.Declare(name, nil, -1, 0)
}

// Has reports whether a table exists without creating it.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[name]
	return ok
}

// Names returns the declared table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExpireBefore expires soft state across all tables, returning the dead
// tuples per table.
func (c *Catalog) ExpireBefore(now float64) []val.Tuple {
	var out []val.Tuple
	for _, n := range c.Names() {
		out = append(out, c.tables[n].ExpireBefore(now)...)
	}
	return out
}
