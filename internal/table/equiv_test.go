package table

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ndlog/internal/val"
)

// refTable is a deliberately naive reference model of Table keyed by
// canonical key strings (the seed's substrate). The hash-keyed Table
// must behave identically under the same operation stream; this is the
// randomized equivalence oracle for the storage rewrite.
type refTable struct {
	keys    []int
	ttl     float64
	maxSize int
	rows    map[string]*refRow
	order   []string // live primary keys, FIFO
}

type refRow struct {
	tuple   val.Tuple
	count   int
	stamp   uint64
	expires float64
}

func newRef(keys []int, ttl float64, maxSize int) *refTable {
	return &refTable{keys: keys, ttl: ttl, maxSize: maxSize, rows: map[string]*refRow{}}
}

func (r *refTable) pk(tp val.Tuple) string {
	if len(r.keys) == 0 {
		return tp.Key()
	}
	return tp.KeyOn(r.keys)
}

func (r *refTable) dropOrder(key string) {
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

func (r *refTable) insert(tp val.Tuple, stamp uint64, now float64) (Status, val.Tuple, []val.Tuple) {
	key := r.pk(tp)
	expires := -1.0
	if r.ttl >= 0 {
		expires = now + r.ttl
	}
	if row, ok := r.rows[key]; ok {
		if row.tuple.Equal(tp) {
			if r.ttl < 0 {
				row.count++
			}
			row.expires = expires
			return StatusDuplicate, val.Tuple{}, nil
		}
		old := row.tuple
		row.tuple = tp
		row.count = 1
		row.stamp = stamp
		row.expires = expires
		return StatusReplaced, old, nil
	}
	r.rows[key] = &refRow{tuple: tp, count: 1, stamp: stamp, expires: expires}
	r.order = append(r.order, key)
	var evicted []val.Tuple
	if r.maxSize > 0 {
		for len(r.rows) > r.maxSize && len(r.order) > 0 {
			k := r.order[0]
			r.order = r.order[1:]
			row := r.rows[k]
			delete(r.rows, k)
			evicted = append(evicted, row.tuple)
		}
	}
	return StatusNew, val.Tuple{}, evicted
}

func (r *refTable) delete(tp val.Tuple) (gone, existed bool) {
	key := r.pk(tp)
	row, ok := r.rows[key]
	if !ok || !row.tuple.Equal(tp) {
		return false, false
	}
	row.count--
	if row.count > 0 {
		return false, true
	}
	delete(r.rows, key)
	r.dropOrder(key)
	return true, true
}

func (r *refTable) deleteByKey(tp val.Tuple) (val.Tuple, bool) {
	key := r.pk(tp)
	row, ok := r.rows[key]
	if !ok {
		return val.Tuple{}, false
	}
	delete(r.rows, key)
	r.dropOrder(key)
	return row.tuple, true
}

func (r *refTable) expireBefore(now float64) []val.Tuple {
	if r.ttl < 0 {
		return nil
	}
	var out []val.Tuple
	for key, row := range r.rows {
		if row.expires >= 0 && row.expires <= now {
			out = append(out, row.tuple)
			delete(r.rows, key)
			r.dropOrder(key)
		}
	}
	return out
}

func (r *refTable) tuples() []val.Tuple {
	out := make([]val.Tuple, 0, len(r.rows))
	for _, row := range r.rows {
		out = append(out, row.tuple)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func sortedKeys(ts []val.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

func sameTupleSet(a, b []val.Tuple) bool {
	ka, kb := sortedKeys(a), sortedKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestTableMatchesReferenceModel drives the hash-keyed Table and the
// string-keyed reference model with one random stream of inserts,
// deletes, key-deletes, and expiries, asserting identical statuses,
// displaced tuples, and table contents throughout.
func TestTableMatchesReferenceModel(t *testing.T) {
	configs := []struct {
		name    string
		keys    []int
		ttl     float64
		maxSize int
	}{
		{"keyed-hard", []int{0, 1}, -1, 0},
		{"wholerow-hard", nil, -1, 0},
		{"keyed-soft", []int{0, 1}, 5, 0},
		{"keyed-bounded", []int{0, 1}, -1, 8},
		{"wholerow-bounded-soft", nil, 3, 6},
	}
	for ci, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(ci) + 7))
			tb := New("p", cfg.keys, cfg.ttl, cfg.maxSize)
			ref := newRef(cfg.keys, cfg.ttl, cfg.maxSize)
			idx := tb.EnsureIndex([]int{1})

			randTuple := func() val.Tuple {
				return val.NewTuple("p",
					val.NewAddr(fmt.Sprintf("n%d", r.Intn(6))),
					val.NewAddr(fmt.Sprintf("m%d", r.Intn(4))),
					val.NewInt(int64(r.Intn(3))))
			}
			now := 0.0
			for step := 0; step < 4000; step++ {
				now += r.Float64()
				tp := randTuple()
				switch r.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					st, repl, ev := ref.insert(tp, uint64(step), now)
					res := tb.Insert(tp, uint64(step), now)
					if res.Status != st {
						t.Fatalf("step %d: status %v != %v", step, res.Status, st)
					}
					if st == StatusReplaced && !res.Replaced.Equal(repl) {
						t.Fatalf("step %d: replaced %v != %v", step, res.Replaced, repl)
					}
					if len(res.Evicted) != len(ev) {
						t.Fatalf("step %d: evicted %v != %v", step, res.Evicted, ev)
					}
					for i := range ev {
						if !res.Evicted[i].Equal(ev[i]) {
							t.Fatalf("step %d: evicted[%d] %v != %v", step, i, res.Evicted[i], ev[i])
						}
					}
				case 6, 7:
					g1, e1 := ref.delete(tp)
					g2, e2 := tb.Delete(tp)
					if g1 != g2 || e1 != e2 {
						t.Fatalf("step %d: delete (%v,%v) != (%v,%v)", step, g2, e2, g1, e1)
					}
				case 8:
					o1, ok1 := ref.deleteByKey(tp)
					o2, ok2 := tb.DeleteByKey(tp)
					if ok1 != ok2 || (ok1 && !o1.Equal(o2)) {
						t.Fatalf("step %d: deleteByKey (%v,%v) != (%v,%v)", step, o2, ok2, o1, ok1)
					}
				case 9:
					e1 := ref.expireBefore(now)
					e2 := tb.ExpireBefore(now)
					if !sameTupleSet(e1, e2) {
						t.Fatalf("step %d: expired %v != %v", step, e2, e1)
					}
				}
				if tb.Len() != len(ref.rows) {
					t.Fatalf("step %d: len %d != %d", step, tb.Len(), len(ref.rows))
				}
				if step%97 == 0 {
					got, want := tb.Tuples(), ref.tuples()
					if !sameTupleSet(got, want) {
						t.Fatalf("step %d: contents diverged:\n got %v\nwant %v", step, got, want)
					}
					for _, tp := range want {
						if tb.Count(tp) != ref.rows[ref.pk(tp)].count {
							t.Fatalf("step %d: count(%v) = %d", step, tp, tb.Count(tp))
						}
						// Secondary index agrees with a full scan.
						n := 0
						for _, e := range idx.Match(tp.Fields[1:2]) {
							_ = e
							n++
						}
						m := 0
						for _, u := range want {
							if u.Fields[1].Equal(tp.Fields[1]) {
								m++
							}
						}
						if n != m {
							t.Fatalf("step %d: index match %d != scan %d for %v", step, n, m, tp)
						}
					}
				}
			}
		})
	}
}

// TestEvictionOrderBounded is the regression test for the seed's
// eviction-list leak: deleted keys stayed in Table.order forever and
// t.order = t.order[1:] pinned the backing array. After many
// delete+reinsert cycles under maxSize, the order list must stay
// proportional to the live row count.
func TestEvictionOrderBounded(t *testing.T) {
	const maxSize = 64
	tb := New("p", []int{0}, -1, maxSize)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		k := r.Intn(512)
		tp := val.NewTuple("p", val.NewAddr(fmt.Sprintf("k%d", k)), val.NewInt(int64(i)))
		if r.Intn(3) == 0 {
			tb.DeleteByKey(tp)
		} else {
			tb.Insert(tp, uint64(i), 0)
		}
	}
	if tb.Len() > maxSize {
		t.Fatalf("len %d exceeds maxSize %d", tb.Len(), maxSize)
	}
	if got := len(tb.order); got > 4*maxSize+128 {
		t.Fatalf("order list leaked: %d entries for %d live rows", got, tb.Len())
	}
	if tb.head > len(tb.order) {
		t.Fatalf("head %d beyond order %d", tb.head, len(tb.order))
	}
}
