package table

import (
	"testing"

	"ndlog/internal/val"
)

func link(s, d string, c int64) val.Tuple {
	return val.NewTuple("link", val.NewAddr(s), val.NewAddr(d), val.NewInt(c))
}

func TestInsertStatuses(t *testing.T) {
	tb := New("link", []int{0, 1}, -1, 0)
	r := tb.Insert(link("a", "b", 5), 1, 0)
	if r.Status != StatusNew {
		t.Fatalf("first insert status = %v", r.Status)
	}
	r = tb.Insert(link("a", "b", 5), 2, 0)
	if r.Status != StatusDuplicate {
		t.Fatalf("dup insert status = %v", r.Status)
	}
	if tb.Count(link("a", "b", 5)) != 2 {
		t.Errorf("count = %d, want 2", tb.Count(link("a", "b", 5)))
	}
	// Same PK, different cost: replaced.
	r = tb.Insert(link("a", "b", 9), 3, 0)
	if r.Status != StatusReplaced {
		t.Fatalf("replace status = %v", r.Status)
	}
	if !r.Replaced.Equal(link("a", "b", 5)) {
		t.Errorf("replaced tuple = %v", r.Replaced)
	}
	if tb.Len() != 1 {
		t.Errorf("len = %d", tb.Len())
	}
	if !tb.Contains(link("a", "b", 9)) || tb.Contains(link("a", "b", 5)) {
		t.Error("content after replace wrong")
	}
}

func TestStatusString(t *testing.T) {
	if StatusNew.String() != "new" || StatusDuplicate.String() != "duplicate" ||
		StatusReplaced.String() != "replaced" {
		t.Error("status names wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should render")
	}
}

func TestDeleteCountAlgorithm(t *testing.T) {
	tb := New("p", nil, -1, 0)
	tp := link("a", "b", 1)
	tb.Insert(tp, 1, 0)
	tb.Insert(tp, 2, 0) // count = 2

	gone, existed := tb.Delete(tp)
	if gone || !existed {
		t.Fatalf("first delete: gone=%v existed=%v", gone, existed)
	}
	if !tb.Contains(tp) {
		t.Fatal("tuple should survive while count > 0")
	}
	gone, existed = tb.Delete(tp)
	if !gone || !existed {
		t.Fatalf("second delete: gone=%v existed=%v", gone, existed)
	}
	if tb.Contains(tp) {
		t.Fatal("tuple should be gone at count 0")
	}
	gone, existed = tb.Delete(tp)
	if gone || existed {
		t.Fatalf("delete of absent: gone=%v existed=%v", gone, existed)
	}
}

func TestDeleteWrongFieldsSamePK(t *testing.T) {
	tb := New("link", []int{0, 1}, -1, 0)
	tb.Insert(link("a", "b", 5), 1, 0)
	// Delete with matching PK but different cost must not remove.
	gone, existed := tb.Delete(link("a", "b", 7))
	if gone || existed {
		t.Error("delete with different fields should be a no-op")
	}
	if !tb.Contains(link("a", "b", 5)) {
		t.Error("original tuple lost")
	}
}

func TestDeleteByKey(t *testing.T) {
	tb := New("link", []int{0, 1}, -1, 0)
	tb.Insert(link("a", "b", 5), 1, 0)
	old, ok := tb.DeleteByKey(link("a", "b", 999))
	if !ok || !old.Equal(link("a", "b", 5)) {
		t.Errorf("DeleteByKey = %v, %v", old, ok)
	}
	if _, ok := tb.DeleteByKey(link("a", "b", 0)); ok {
		t.Error("DeleteByKey on empty should fail")
	}
}

func TestSecondaryIndex(t *testing.T) {
	tb := New("link", []int{0, 1}, -1, 0)
	idx := tb.EnsureIndex([]int{1}) // index on destination
	tb.Insert(link("a", "b", 1), 1, 0)
	tb.Insert(link("c", "b", 2), 2, 0)
	tb.Insert(link("a", "d", 3), 3, 0)

	b := []val.Value{val.NewAddr("b")}
	hits := idx.Match(b)
	if len(hits) != 2 {
		t.Fatalf("Match(b) = %d entries", len(hits))
	}
	// Index must follow deletes.
	tb.Delete(link("a", "b", 1))
	if len(idx.Match(b)) != 1 {
		t.Errorf("Match(b) after delete = %d", len(idx.Match(b)))
	}
	// Index must follow replacement.
	tb.Insert(link("c", "b", 9), 4, 0)
	hits = idx.Match(b)
	if len(hits) != 1 || hits[0].Tuple.Fields[2].Int() != 9 {
		t.Errorf("Match(b) after replace = %v", hits)
	}
	// Building the index after rows exist must backfill.
	idx2 := tb.EnsureIndex([]int{0})
	if len(idx2.Match([]val.Value{val.NewAddr("a")})) != 1 {
		t.Errorf("backfilled index wrong: %v", idx2.Match([]val.Value{val.NewAddr("a")}))
	}
	// EnsureIndex twice returns the same handle.
	if tb.EnsureIndex([]int{0}) != idx2 {
		t.Error("EnsureIndex not idempotent")
	}
}

// TestIndexMatchVerifies checks that Match filters structurally, not
// just by hash: probing for values that are absent returns nothing, and
// the raw Bucket of an absent hash is empty.
func TestIndexMatchVerifies(t *testing.T) {
	tb := New("link", []int{0, 1}, -1, 0)
	idx := tb.EnsureIndex([]int{1})
	tb.Insert(link("a", "b", 1), 1, 0)
	if got := idx.Match([]val.Value{val.NewAddr("zzz")}); len(got) != 0 {
		t.Errorf("Match(zzz) = %v", got)
	}
	// An addr and a string with the same text are different values.
	if got := idx.Match([]val.Value{val.NewString("b")}); len(got) != 0 {
		t.Errorf("Match(string b) = %v", got)
	}
	if got := idx.Bucket(val.HashValues([]val.Value{val.NewAddr("zzz")})); len(got) != 0 {
		t.Errorf("Bucket(zzz) = %v", got)
	}
	// A probe of the wrong width matches nothing.
	if got := idx.Match([]val.Value{val.NewAddr("b"), val.NewInt(1)}); len(got) != 0 {
		t.Errorf("Match(wrong arity) = %v", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	tb := New("link", []int{0, 1}, 10, 0)
	tb.Insert(link("a", "b", 1), 1, 100)
	tb.Insert(link("a", "c", 1), 2, 105)

	if got := tb.ExpireBefore(105); len(got) != 0 {
		t.Errorf("nothing should expire at 105: %v", got)
	}
	got := tb.ExpireBefore(110)
	if len(got) != 1 || !got[0].Equal(link("a", "b", 1)) {
		t.Errorf("expired = %v", got)
	}
	if tb.Len() != 1 {
		t.Errorf("len = %d", tb.Len())
	}
	// Re-insertion refreshes TTL.
	tb.Insert(link("a", "c", 1), 3, 114)
	if got := tb.ExpireBefore(115); len(got) != 0 {
		t.Errorf("refreshed tuple expired: %v", got)
	}
	if got := tb.ExpireBefore(124.5); len(got) != 1 {
		t.Errorf("refreshed tuple should expire at 124: %v", got)
	}
	// Hard state never expires.
	hard := New("p", nil, -1, 0)
	hard.Insert(link("a", "b", 1), 1, 0)
	if got := hard.ExpireBefore(1e18); got != nil {
		t.Errorf("hard state expired: %v", got)
	}
}

func TestMaxSizeEviction(t *testing.T) {
	tb := New("cache", []int{0, 1}, -1, 2)
	tb.Insert(link("a", "b", 1), 1, 0)
	tb.Insert(link("a", "c", 2), 2, 0)
	r := tb.Insert(link("a", "d", 3), 3, 0)
	if len(r.Evicted) != 1 || !r.Evicted[0].Equal(link("a", "b", 1)) {
		t.Errorf("evicted = %v", r.Evicted)
	}
	if tb.Len() != 2 {
		t.Errorf("len = %d", tb.Len())
	}
	if tb.Contains(link("a", "b", 1)) {
		t.Error("evicted tuple still present")
	}
}

func TestTuplesDeterministicOrder(t *testing.T) {
	tb := New("link", []int{0, 1}, -1, 0)
	tb.Insert(link("c", "x", 1), 1, 0)
	tb.Insert(link("a", "x", 1), 2, 0)
	tb.Insert(link("b", "x", 1), 3, 0)
	ts := tb.Tuples()
	if len(ts) != 3 || ts[0].Loc() != "a" || ts[1].Loc() != "b" || ts[2].Loc() != "c" {
		t.Errorf("Tuples order = %v", ts)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tb := New("link", []int{0, 1}, -1, 0)
	tb.Insert(link("a", "b", 1), 1, 0)
	tb.Insert(link("a", "c", 1), 2, 0)
	n := 0
	tb.Scan(func(*Entry) bool { n++; return false })
	if n != 1 {
		t.Errorf("scan visited %d, want 1", n)
	}
}

func TestStampStored(t *testing.T) {
	tb := New("p", nil, -1, 0)
	tb.Insert(link("a", "b", 1), 42, 0)
	e, ok := tb.Get(link("a", "b", 1))
	if !ok || e.Stamp != 42 {
		t.Errorf("stamp = %v, %v", e, ok)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tl := c.Declare("link", []int{0, 1}, -1, 0)
	if c.Declare("link", nil, 5, 0) != tl {
		t.Error("redeclare should return existing table")
	}
	if !c.Has("link") || c.Has("path") {
		t.Error("Has wrong")
	}
	p := c.Get("path") // implicit declaration
	if p == nil || !c.Has("path") {
		t.Error("Get should create default table")
	}
	if p.TTL() >= 0 {
		t.Error("default table should be hard state")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "link" || names[1] != "path" {
		t.Errorf("Names = %v", names)
	}
	// Catalog-wide expiry.
	soft := c.Declare("soft", nil, 1, 0)
	soft.Insert(link("a", "b", 1), 1, 0)
	dead := c.ExpireBefore(10)
	if len(dead) != 1 {
		t.Errorf("catalog expiry = %v", dead)
	}
}

func TestWholeRowKeyTable(t *testing.T) {
	tb := New("p", nil, -1, 0)
	tb.Insert(link("a", "b", 1), 1, 0)
	tb.Insert(link("a", "b", 2), 2, 0) // different row, both live
	if tb.Len() != 2 {
		t.Errorf("len = %d, want 2 (whole-row key)", tb.Len())
	}
}
