package table

import (
	"fmt"
	"testing"

	"ndlog/internal/ast"
	"ndlog/internal/val"
)

// Microbenchmarks for the hash-keyed storage substrate (DESIGN.md
// "Hash-based tuple storage"). Run with -benchmem; the headline numbers
// are allocs/op on the insert and probe paths.

func benchTuples(n int) []val.Tuple {
	out := make([]val.Tuple, n)
	for i := range out {
		out[i] = val.NewTuple("link",
			val.NewAddr(fmt.Sprintf("n%d", i)),
			val.NewAddr(fmt.Sprintf("m%d", i%97)),
			val.NewFloat(float64(i%13)+0.5))
	}
	return out
}

func BenchmarkTableInsert(b *testing.B) {
	tuples := benchTuples(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := New("link", []int{0, 1}, -1, 0)
		for _, tp := range tuples {
			tb.Insert(tp, 1, 0)
		}
	}
	b.ReportMetric(float64(len(tuples)), "rows/op")
}

func BenchmarkIndexMatch(b *testing.B) {
	tuples := benchTuples(1024)
	tb := New("link", []int{0, 1}, -1, 0)
	idx := tb.EnsureIndex([]int{1})
	for _, tp := range tuples {
		tb.Insert(tp, 1, 0)
	}
	probe := []val.Value{val.Nil}
	hits := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe[0] = tuples[i%len(tuples)].Fields[1]
		hits += len(idx.Match(probe))
	}
	if hits == 0 {
		b.Fatal("no matches")
	}
}

func BenchmarkTableDeleteInsert(b *testing.B) {
	tuples := benchTuples(1024)
	tb := New("link", []int{0, 1}, -1, 0)
	for _, tp := range tuples {
		tb.Insert(tp, 1, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := tuples[i%len(tuples)]
		tb.Delete(tp)
		tb.Insert(tp, uint64(i), 0)
	}
}

func BenchmarkGroupAggAdd(b *testing.B) {
	key := []val.Value{val.NewAddr("s"), val.NewAddr("d")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGroupAgg(ast.AggMin)
		for j := 0; j < 64; j++ {
			g.Add(key, val.NewInt(int64(j%7)))
		}
	}
}
