// Package durable is the persistence layer under a sharded NDlog
// deployment: an append-only, CRC-framed write-ahead log of base-fact
// deltas plus periodic whole-node snapshots, organised as numbered
// generations so a worker killed mid-run (kill -9) reopens its data
// directory and recovers to the last committed record.
//
// Layout. A Store owns one directory holding at most one live
// generation G: an optional snapshot file snap-<G> (the node's
// EncodeState blob, written atomically via rename) and a log file
// wal-<G> holding the records appended since that snapshot. Taking a
// snapshot opens generation G+1 and deletes generation G, which is how
// the WAL is truncated. Record payloads are opaque to this package —
// the engine layers its own delta encoding inside them.
//
// Framing. Each WAL record is [len u32le][crc32 u32le][payload], crc
// over the payload (IEEE). Snapshot files are [crc32 u32le][payload].
// On open, the WAL is replayed until the first short, oversized, or
// CRC-failing record; the file is truncated back to the last good
// record, so a torn tail from a crash mid-write is dropped rather than
// poisoning recovery.
//
// Durability. Append buffers records in memory; Commit writes them to
// the log and syncs according to the configured policy: SyncCommit
// fsyncs every commit (a crash loses nothing committed), SyncInterval
// fsyncs at most once per SyncEvery (a crash loses at most that
// window), SyncNone leaves syncing to the OS. Group commit falls out of
// the Append/Commit split: all records appended during one evaluator
// drain are framed and synced as a single batch.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy names an fsync discipline for WAL commits.
type SyncPolicy string

const (
	// SyncCommit fsyncs the log on every Commit. Default.
	SyncCommit SyncPolicy = "commit"
	// SyncInterval fsyncs at most once per Options.SyncEvery.
	SyncInterval SyncPolicy = "interval"
	// SyncNone never fsyncs; the OS flushes when it pleases.
	SyncNone SyncPolicy = "none"
)

// Options configures a Store. The zero value is valid: SyncCommit,
// default snapshot threshold and sync interval.
type Options struct {
	// Sync is the fsync policy; "" means SyncCommit.
	Sync SyncPolicy
	// SyncEvery is the maximum un-fsynced window under SyncInterval.
	// Zero means 100ms.
	SyncEvery time.Duration
	// SnapshotBytes is the WAL size beyond which ShouldSnapshot reports
	// true. Zero means 256 KiB; negative disables the suggestion.
	SnapshotBytes int64
}

func (o *Options) fill() error {
	switch o.Sync {
	case "":
		o.Sync = SyncCommit
	case SyncCommit, SyncInterval, SyncNone:
	default:
		return fmt.Errorf("durable: unknown sync policy %q", o.Sync)
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 256 << 10
	}
	return nil
}

// maxRecord bounds a single WAL record payload. A record holds one
// drain's worth of deltas for one node; 16 MiB is far beyond any real
// batch and small enough that a corrupt length field cannot drive a
// huge allocation.
const maxRecord = 16 << 20

// Recovered is what Open found on disk: the latest snapshot (nil if
// none was ever taken), the WAL records appended after it, in order,
// and whether a torn or corrupt tail was truncated to reach them.
type Recovered struct {
	Snapshot  []byte
	Records   [][]byte
	Truncated bool
}

// Empty reports whether recovery found no persisted state at all.
func (r *Recovered) Empty() bool {
	return len(r.Snapshot) == 0 && len(r.Records) == 0
}

// Store is one node's durable state: a live WAL generation plus the
// snapshot it extends. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	gen      uint64
	wal      *os.File
	walBytes int64  // framed bytes in the wal file
	pending  []byte // framed records not yet written
	dirty    bool   // written but not yet fsynced
	lastSync time.Time
	closed   bool
	commits  uint64 // commit batches written (see Commits)
	syncs    uint64 // fsyncs issued (see Syncs)
}

const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
)

func genName(prefix string, gen uint64) string {
	return fmt.Sprintf("%s%016x", prefix, gen)
}

// Open opens (creating if needed) the store rooted at dir and recovers
// whatever a previous incarnation persisted there. The caller replays
// Recovered into its evaluator, then appends new records as usual; a
// fresh Snapshot right after recovery is the idiomatic way to fold the
// replayed tail back into a compact generation.
func Open(dir string, opts Options) (*Store, Recovered, error) {
	if err := opts.fill(); err != nil {
		return nil, Recovered{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, err
	}
	gen, err := latestGen(dir)
	if err != nil {
		return nil, Recovered{}, err
	}
	var rec Recovered
	if gen == 0 {
		gen = 1 // first incarnation: generation 1, no snapshot
	} else {
		snap, err := readSnapshot(filepath.Join(dir, genName(snapPrefix, gen)))
		if err != nil && !os.IsNotExist(err) {
			return nil, Recovered{}, err
		}
		rec.Snapshot = snap
	}
	walPath := filepath.Join(dir, genName(walPrefix, gen))
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovered{}, err
	}
	records, good, truncated, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, Recovered{}, err
	}
	if truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, Recovered{}, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, Recovered{}, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, Recovered{}, err
	}
	rec.Records = records
	rec.Truncated = truncated
	s := &Store{dir: dir, opts: opts, gen: gen, wal: f, walBytes: good}
	s.removeStale()
	return s, rec, nil
}

// latestGen scans dir for generation files and returns the highest
// generation number seen, or 0 if the directory holds none.
func latestGen(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var best uint64
	for _, e := range ents {
		name := e.Name()
		var rest string
		switch {
		case strings.HasPrefix(name, snapPrefix):
			rest = name[len(snapPrefix):]
		case strings.HasPrefix(name, walPrefix):
			rest = name[len(walPrefix):]
		default:
			continue
		}
		g, err := strconv.ParseUint(rest, 16, 64)
		if err != nil || g == 0 {
			continue // tmp files, strays
		}
		if g > best {
			best = g
		}
	}
	return best, nil
}

// removeStale deletes generation files older than the live generation
// (left behind if a crash interrupted a snapshot's cleanup step) and
// any abandoned snapshot temp files. Best-effort.
func (s *Store) removeStale() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		var rest string
		switch {
		case strings.HasPrefix(name, snapPrefix):
			rest = name[len(snapPrefix):]
		case strings.HasPrefix(name, walPrefix):
			rest = name[len(walPrefix):]
		default:
			continue
		}
		if g, err := strconv.ParseUint(rest, 16, 64); err == nil && g < s.gen {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// readSnapshot reads and verifies a [crc][payload] snapshot file.
func readSnapshot(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("durable: snapshot %s: short file", path)
	}
	want := binary.LittleEndian.Uint32(b)
	payload := b[4:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("durable: snapshot %s: checksum mismatch", path)
	}
	return payload, nil
}

// scanWAL parses records from the start of f, returning the parsed
// payloads, the offset just past the last good record, and whether
// trailing bytes past that offset must be discarded.
func scanWAL(f *os.File) (records [][]byte, good int64, truncated bool, err error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, false, err
	}
	size := info.Size()
	if size == 0 {
		return nil, 0, false, nil
	}
	b := make([]byte, size)
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, 0, false, err
	}
	off := int64(0)
	for int64(len(b))-off >= 8 {
		n := int64(binary.LittleEndian.Uint32(b[off:]))
		want := binary.LittleEndian.Uint32(b[off+4:])
		if n > maxRecord || off+8+n > int64(len(b)) {
			break // torn or corrupt length
		}
		payload := b[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt record: stop at last good
		}
		records = append(records, append([]byte(nil), payload...))
		off += 8 + n
	}
	return records, off, off != size, nil
}

// Append buffers one record for the next Commit. The payload is copied.
func (s *Store) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("durable: record of %d bytes exceeds limit", len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	s.pending = append(s.pending, hdr[:]...)
	s.pending = append(s.pending, payload...)
	return nil
}

// Commit writes all appended records to the log in one batch and syncs
// per the configured policy.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	return s.commitLocked(false)
}

func (s *Store) commitLocked(forceSync bool) error {
	if len(s.pending) > 0 {
		if _, err := s.wal.Write(s.pending); err != nil {
			return err
		}
		s.walBytes += int64(len(s.pending))
		s.pending = s.pending[:0]
		s.dirty = true
		s.commits++
	}
	if !s.dirty {
		return nil
	}
	sync := forceSync
	switch s.opts.Sync {
	case SyncCommit:
		sync = true
	case SyncInterval:
		if time.Since(s.lastSync) >= s.opts.SyncEvery {
			sync = true
		}
	}
	if !sync {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.dirty = false
	s.lastSync = time.Now()
	s.syncs++
	return nil
}

// Commits returns the number of commit batches written to the live WAL
// (Commit calls that had pending records).
func (s *Store) Commits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits
}

// Syncs returns the number of fsyncs issued against the live WAL — the
// quantity group commit collapses: without it a shard pays one per node
// per drain, with it one per shard per drain.
func (s *Store) Syncs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// WALBytes returns the committed size of the live WAL generation.
func (s *Store) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes + int64(len(s.pending))
}

// ShouldSnapshot reports whether the WAL has outgrown the configured
// snapshot threshold.
func (s *Store) ShouldSnapshot() bool {
	if s.opts.SnapshotBytes < 0 {
		return false
	}
	return s.WALBytes() >= s.opts.SnapshotBytes
}

// Snapshot persists a full-state blob and rolls the WAL: the snapshot
// is written atomically (tmp + rename + sync), a fresh empty log opens
// the next generation, and the superseded generation is deleted. Any
// records still pending are dropped — the snapshot subsumes them.
func (s *Store) Snapshot(state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	next := s.gen + 1
	snapPath := filepath.Join(s.dir, genName(snapPrefix, next))
	tmp := snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(state))
	if _, err := f.Write(crc[:]); err == nil {
		_, err = f.Write(state)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return err
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, genName(walPrefix, next)),
		os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		wal.Close()
		return err
	}
	old := s.gen
	s.wal.Close()
	s.wal = wal
	s.gen = next
	s.walBytes = 0
	s.pending = s.pending[:0]
	s.dirty = false
	os.Remove(filepath.Join(s.dir, genName(snapPrefix, old)))
	os.Remove(filepath.Join(s.dir, genName(walPrefix, old)))
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Bundle flushes pending records and packages the live snapshot plus
// WAL tail as one migratable blob — the unit Rebalance ships instead of
// a freshly exported state. See EncodeBundle for the format.
func (s *Store) Bundle() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("durable: store closed")
	}
	if err := s.commitLocked(true); err != nil {
		return nil, err
	}
	var snap []byte
	snapPath := filepath.Join(s.dir, genName(snapPrefix, s.gen))
	if b, err := readSnapshot(snapPath); err == nil {
		snap = b
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	records, _, _, err := scanWAL(s.wal)
	if err != nil {
		return nil, err
	}
	return EncodeBundle(snap, records), nil
}

// Close flushes and fsyncs outstanding records and releases the log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.commitLocked(true)
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

// Destroy closes the store and deletes its directory — used when a
// node is released to another shard and this copy of its state must
// not resurrect on restart.
func (s *Store) Destroy() error {
	s.mu.Lock()
	if !s.closed {
		s.wal.Close()
		s.closed = true
	}
	dir := s.dir
	s.mu.Unlock()
	return os.RemoveAll(dir)
}

// bundleMagic distinguishes a migration bundle from a bare EncodeState
// blob (whose magic is 0x4E); ImportNode sniffs the first byte.
const bundleMagic = 0x44

// EncodeBundle packages a snapshot (possibly empty) and WAL records:
//
//	0x44  len(snap) uvarint  snap
//	      nrecords uvarint  { len uvarint  payload }*
func EncodeBundle(snap []byte, records [][]byte) []byte {
	out := []byte{bundleMagic}
	out = binary.AppendUvarint(out, uint64(len(snap)))
	out = append(out, snap...)
	out = binary.AppendUvarint(out, uint64(len(records)))
	for _, r := range records {
		out = binary.AppendUvarint(out, uint64(len(r)))
		out = append(out, r...)
	}
	return out
}

// IsBundle reports whether b starts with the bundle magic.
func IsBundle(b []byte) bool {
	return len(b) > 0 && b[0] == bundleMagic
}

// DecodeBundle parses an EncodeBundle blob. Lengths are validated
// against the remaining input before any allocation, so corrupt or
// adversarial blobs fail cleanly rather than over-allocating. Returned
// slices are copies.
func DecodeBundle(b []byte) (snap []byte, records [][]byte, err error) {
	if !IsBundle(b) {
		return nil, nil, fmt.Errorf("durable: not a bundle")
	}
	in := b[1:]
	next := func() ([]byte, error) {
		n, k := binary.Uvarint(in)
		if k <= 0 || n > uint64(len(in)-k) {
			return nil, fmt.Errorf("durable: corrupt bundle")
		}
		chunk := in[k : k+int(n)]
		in = in[k+int(n):]
		return append([]byte(nil), chunk...), nil
	}
	if snap, err = next(); err != nil {
		return nil, nil, err
	}
	if len(snap) == 0 {
		snap = nil
	}
	nrec, k := binary.Uvarint(in)
	if k <= 0 || nrec > uint64(len(in)-k) {
		return nil, nil, fmt.Errorf("durable: corrupt bundle")
	}
	in = in[k:]
	records = make([][]byte, 0, nrec)
	for i := uint64(0); i < nrec; i++ {
		r, err := next()
		if err != nil {
			return nil, nil, err
		}
		records = append(records, r)
	}
	if len(in) != 0 {
		return nil, nil, fmt.Errorf("durable: trailing bytes in bundle")
	}
	return snap, records, nil
}
