package durable

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

func openGroupT(t *testing.T, dir string, opts Options) *Group {
	t.Helper()
	g, err := OpenGroup(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func attachT(t *testing.T, g *Group, id string) (*GroupStore, Recovered) {
	t.Helper()
	s, rec, err := g.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

func TestGroupRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := openGroupT(t, dir, Options{})
	records := map[string][][]byte{
		"a": {[]byte("a1"), []byte("a2-longer")},
		"b": {[]byte("b1")},
		"c": {}, // attached but never appended
	}
	for _, id := range []string{"a", "b", "c"} {
		s, rec := attachT(t, g, id)
		if !rec.Empty() {
			t.Fatalf("fresh member %s recovered state: %+v", id, rec)
		}
		for _, r := range records[id] {
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One group commit covers every member's appends.
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := g.Syncs(); got != 1 {
		t.Errorf("Syncs = %d after one group commit, want 1", got)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := openGroupT(t, dir, Options{})
	defer g2.Close()
	members := g2.Members()
	if len(members) != 2 { // c never wrote anything, so recovery can't know it
		t.Fatalf("Members = %v, want a and b", members)
	}
	for id, want := range records {
		_, rec := attachT(t, g2, id)
		if len(rec.Records) != len(want) {
			t.Fatalf("member %s recovered %d records, want %d", id, len(rec.Records), len(want))
		}
		for i, r := range want {
			if !bytes.Equal(rec.Records[i], r) {
				t.Errorf("member %s record %d: %q vs %q", id, i, rec.Records[i], r)
			}
		}
	}
}

func TestGroupSnapshotAndRoll(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every member snapshot also rolls the shared log.
	g := openGroupT(t, dir, Options{SnapshotBytes: 32})
	a, _ := attachT(t, g, "a")
	b, _ := attachT(t, g, "b")
	// Large enough that the shared log passes its roll threshold
	// (SnapshotBytes x members+1 = 96 bytes) by snapshot time.
	a.Append(append([]byte("a-pre-snapshot"), make([]byte, 120)...))
	b.Append([]byte("b-survives-the-roll"))
	g.Commit()
	if !a.ShouldSnapshot() {
		t.Fatal("member a under threshold despite oversized tail")
	}
	if err := a.Snapshot([]byte("A-STATE")); err != nil {
		t.Fatal(err)
	}
	if a.WALBytes() != 0 {
		t.Errorf("member a tail = %d bytes after snapshot, want 0", a.WALBytes())
	}
	a.Append([]byte("a-post"))
	g.Commit()
	g.Close()

	// The roll rewrote the log: generation 2 only.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if gen, ok := parseGen(e.Name(), gwalPrefix); ok && gen != 2 {
			t.Errorf("stale log generation %d on disk", gen)
		}
	}

	g2 := openGroupT(t, dir, Options{SnapshotBytes: 32})
	defer g2.Close()
	_, recA := attachT(t, g2, "a")
	if string(recA.Snapshot) != "A-STATE" {
		t.Errorf("member a snapshot = %q", recA.Snapshot)
	}
	if len(recA.Records) != 1 || string(recA.Records[0]) != "a-post" {
		t.Errorf("member a records = %q; pre-snapshot tail must be subsumed", recA.Records)
	}
	_, recB := attachT(t, g2, "b")
	if len(recB.Records) != 1 || string(recB.Records[0]) != "b-survives-the-roll" {
		t.Errorf("member b records = %q; the roll must carry other members' tails", recB.Records)
	}
}

func TestGroupDestroyTombstone(t *testing.T) {
	dir := t.TempDir()
	g := openGroupT(t, dir, Options{})
	a, _ := attachT(t, g, "a")
	b, _ := attachT(t, g, "b")
	a.Append([]byte("a-doomed"))
	a.Snapshot([]byte("A-DOOMED-STATE"))
	b.Append([]byte("b-keeps"))
	g.Commit()
	if err := a.Destroy(); err != nil {
		t.Fatal(err)
	}
	g.Close()

	g2 := openGroupT(t, dir, Options{})
	defer g2.Close()
	if members := g2.Members(); len(members) != 1 || members[0] != "b" {
		t.Fatalf("Members = %v after destroying a, want [b]", members)
	}
	_, recA := attachT(t, g2, "a")
	if !recA.Empty() {
		t.Errorf("destroyed member resurrected: %+v", recA)
	}
	if _, err := os.Stat(g2.nodeDir("a")); !os.IsNotExist(err) {
		t.Errorf("destroyed member's snapshot dir survives: %v", err)
	}
}

func TestGroupBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := openGroupT(t, dir, Options{})
	defer g.Close()
	a, _ := attachT(t, g, "a")
	a.Snapshot([]byte("A-STATE"))
	a.Append([]byte("a-tail-1"))
	a.Append([]byte("a-tail-2"))
	blob, err := a.Bundle()
	if err != nil {
		t.Fatal(err)
	}
	if !IsBundle(blob) {
		t.Fatal("Bundle output not recognized")
	}
	snap, recs, err := DecodeBundle(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "A-STATE" {
		t.Errorf("bundle snapshot = %q", snap)
	}
	if len(recs) != 2 || string(recs[0]) != "a-tail-1" || string(recs[1]) != "a-tail-2" {
		t.Errorf("bundle records = %q", recs)
	}
}

// TestGroupCommitCollapse hammers the shared log from many goroutines:
// every commit batch must be covered by an fsync, but the leader-
// follower protocol should collapse concurrent commits onto far fewer
// fsyncs than members.
func TestGroupCommitCollapse(t *testing.T) {
	dir := t.TempDir()
	g := openGroupT(t, dir, Options{})
	const members, rounds = 8, 20
	stores := make([]*GroupStore, members)
	for i := range stores {
		stores[i], _ = attachT(t, g, fmt.Sprintf("n%d", i))
	}
	var wg sync.WaitGroup
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *GroupStore) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := s.Append([]byte(fmt.Sprintf("n%d-r%d", i, r))); err != nil {
					t.Error(err)
					return
				}
				if err := s.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	syncs, commits := g.Syncs(), g.Commits()
	if syncs == 0 || commits == 0 {
		t.Fatalf("no activity recorded: syncs=%d commits=%d", syncs, commits)
	}
	if syncs > commits {
		t.Errorf("syncs=%d > commits=%d; followers must ride the leader's fsync", syncs, commits)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := openGroupT(t, dir, Options{})
	defer g2.Close()
	for i := 0; i < members; i++ {
		_, rec := attachT(t, g2, fmt.Sprintf("n%d", i))
		if len(rec.Records) != rounds {
			t.Errorf("member n%d recovered %d records, want %d", i, len(rec.Records), rounds)
		}
	}
}
