package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) (*Store, Recovered) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openT(t, dir, Options{})
	if !rec.Empty() || rec.Truncated {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	records := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-record")}
	for _, r := range records {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := openT(t, dir, Options{})
	defer s2.Close()
	if rec2.Snapshot != nil || rec2.Truncated {
		t.Fatalf("unexpected snapshot/truncation: %+v", rec2)
	}
	if len(rec2.Records) != len(records) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(records))
	}
	for i, r := range records {
		if !bytes.Equal(rec2.Records[i], r) {
			t.Errorf("record %d: %q vs %q", i, rec2.Records[i], r)
		}
	}
}

func TestSnapshotRollsGeneration(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	s.Append([]byte("pre-snapshot"))
	s.Commit()
	if err := s.Snapshot([]byte("STATE")); err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("post-snapshot"))
	s.Commit()
	s.Close()

	// Only generation 2 files remain on disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{genName(snapPrefix, 2), genName(walPrefix, 2)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("dir = %v, want %v", names, want)
	}

	s2, rec := openT(t, dir, Options{})
	defer s2.Close()
	if string(rec.Snapshot) != "STATE" {
		t.Errorf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "post-snapshot" {
		t.Errorf("records = %q; pre-snapshot WAL must be truncated", rec.Records)
	}
}

func TestCorruptWALRecovery(t *testing.T) {
	// Each case mutates a three-record WAL and says which records must
	// survive and whether truncation is reported.
	frame := func(payload string) []byte {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE([]byte(payload)))
		return append(hdr[:], payload...)
	}
	full := bytes.Join([][]byte{frame("one"), frame("two"), frame("three")}, nil)
	cases := []struct {
		name      string
		mutate    func([]byte) []byte
		survive   []string
		truncated bool
	}{
		{"intact", func(b []byte) []byte { return b }, []string{"one", "two", "three"}, false},
		{"torn tail", func(b []byte) []byte { return b[:len(b)-2] }, []string{"one", "two"}, true},
		{"torn header", func(b []byte) []byte { return b[:len(frame("one"))+3] }, []string{"one"}, true},
		{"bad crc middle", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(frame("one"))+8] ^= 0xff // flip a byte of "two"'s payload
			return c
		}, []string{"one"}, true},
		{"huge length", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[len(frame("one")):], maxRecord+1)
			return c
		}, []string{"one"}, true},
		{"garbage file", func(b []byte) []byte { return []byte("not a wal at all") }, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, genName(walPrefix, 1))
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), full...)), 0o644); err != nil {
				t.Fatal(err)
			}
			s, rec := openT(t, dir, Options{})
			var got []string
			for _, r := range rec.Records {
				got = append(got, string(r))
			}
			if !reflect.DeepEqual(got, tc.survive) {
				t.Errorf("recovered %q, want %q", got, tc.survive)
			}
			if rec.Truncated != tc.truncated {
				t.Errorf("truncated = %v, want %v", rec.Truncated, tc.truncated)
			}
			// Appends after a truncated recovery land after the last good
			// record and survive a clean reopen.
			s.Append([]byte("appended"))
			s.Commit()
			s.Close()
			_, rec2 := openT(t, dir, Options{})
			want := append(append([]string(nil), tc.survive...), "appended")
			got = nil
			for _, r := range rec2.Records {
				got = append(got, string(r))
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("after reopen: %q, want %q", got, want)
			}
		})
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	if err := s.Snapshot([]byte("STATE")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, genName(snapPrefix, 2))
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestStaleGenerationCleanup(t *testing.T) {
	// A crash between snapshot rename and old-generation cleanup leaves
	// both generations on disk; Open must pick the newest and delete the
	// rest, including abandoned temp files.
	dir := t.TempDir()
	write := func(name string, b []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snap := func(payload string) []byte {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE([]byte(payload)))
		return append(crc[:], payload...)
	}
	write(genName(walPrefix, 1), nil)
	write(genName(snapPrefix, 2), snap("NEW"))
	write(genName(snapPrefix, 3)+".tmp", []byte("abandoned"))
	s, rec := openT(t, dir, Options{})
	defer s.Close()
	if string(rec.Snapshot) != "NEW" || len(rec.Records) != 0 {
		t.Fatalf("recovered %+v", rec)
	}
	ents, _ := os.ReadDir(dir)
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{genName(snapPrefix, 2), genName(walPrefix, 2)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("dir = %v, want %v", names, want)
	}
}

func TestSyncPoliciesAndThreshold(t *testing.T) {
	if _, _, err := Open(t.TempDir(), Options{Sync: "yolo"}); err == nil {
		t.Error("bad sync policy accepted")
	}
	s, _ := openT(t, t.TempDir(), Options{Sync: SyncInterval, SyncEvery: time.Hour, SnapshotBytes: 16})
	defer s.Close()
	if s.ShouldSnapshot() {
		t.Error("empty store wants snapshot")
	}
	s.Append(bytes.Repeat([]byte("x"), 32))
	if !s.ShouldSnapshot() {
		t.Error("oversized WAL does not want snapshot")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.WALBytes(); got != 40 {
		t.Errorf("WALBytes = %d, want 40", got)
	}

	s2, _ := openT(t, t.TempDir(), Options{Sync: SyncNone, SnapshotBytes: -1})
	defer s2.Close()
	s2.Append(bytes.Repeat([]byte("y"), 1<<20))
	if s2.ShouldSnapshot() {
		t.Error("negative threshold still suggests snapshots")
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "node-a")
	s, _ := openT(t, dir, Options{})
	s.Append([]byte("doomed"))
	s.Commit()
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("dir survives destroy: %v", err)
	}
	if err := s.Append([]byte("late")); err == nil {
		t.Error("append after destroy succeeded")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	if err := s.Snapshot([]byte("SNAP")); err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("tail-1"))
	s.Append([]byte("tail-2"))
	// Bundle must flush pending records itself.
	b, err := s.Bundle()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !IsBundle(b) {
		t.Fatal("bundle lacks magic")
	}
	snap, recs, err := DecodeBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "SNAP" || len(recs) != 2 ||
		string(recs[0]) != "tail-1" || string(recs[1]) != "tail-2" {
		t.Fatalf("decoded snap=%q recs=%q", snap, recs)
	}

	// Snapshot-less bundle: snap comes back nil.
	s2, _ := openT(t, t.TempDir(), Options{})
	defer s2.Close()
	s2.Append([]byte("only"))
	b2, err := s2.Bundle()
	if err != nil {
		t.Fatal(err)
	}
	snap2, recs2, err := DecodeBundle(b2)
	if err != nil {
		t.Fatal(err)
	}
	if snap2 != nil || len(recs2) != 1 || string(recs2[0]) != "only" {
		t.Fatalf("decoded snap=%q recs=%q", snap2, recs2)
	}
}

func TestDecodeBundleCorrupt(t *testing.T) {
	good := EncodeBundle([]byte("SNAP"), [][]byte{[]byte("r1"), []byte("r2")})
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeBundle(good[:cut]); err == nil {
			t.Errorf("truncated bundle at %d decoded", cut)
		}
	}
	if _, _, err := DecodeBundle(append(good, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, _, err := DecodeBundle([]byte{0x4E, 1, 2}); err == nil {
		t.Error("state blob accepted as bundle")
	}
	// A record-count field far beyond the payload must fail before
	// allocating.
	bad := []byte{bundleMagic, 0}
	bad = binary.AppendUvarint(bad, 1<<40)
	if _, _, err := DecodeBundle(bad); err == nil {
		t.Error("huge record count decoded")
	}
}
