package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the store as an on-disk WAL:
// recovery must never panic, must be idempotent (a second open after
// the truncating first open sees the same records with nothing left to
// truncate), and appends after recovery must survive a clean reopen —
// i.e. a corrupt tail can be dropped but never partially applied.
func FuzzWALReplay(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		return append(hdr[:], payload...)
	}
	f.Add([]byte{})
	f.Add(frame([]byte("hello")))
	f.Add(append(frame([]byte("hello")), frame([]byte("world"))[:7]...))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, genName(walPrefix, 1)), wal, 0o644); err != nil {
			t.Skip()
		}
		s, rec, err := Open(dir, Options{})
		if err != nil {
			t.Skip() // unreadable dir, not a framing outcome
		}
		if err := s.Append([]byte("post-recovery")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer s2.Close()
		if rec2.Truncated {
			t.Fatal("recovery not idempotent: second open truncated again")
		}
		if len(rec2.Records) != len(rec.Records)+1 {
			t.Fatalf("records %d after reopen, want %d", len(rec2.Records), len(rec.Records)+1)
		}
		for i, r := range rec.Records {
			if !bytes.Equal(rec2.Records[i], r) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		if string(rec2.Records[len(rec.Records)]) != "post-recovery" {
			t.Fatal("post-recovery append lost")
		}
	})
}

// FuzzDecodeBundle: arbitrary bytes must never panic or over-allocate,
// and anything that decodes must survive an encode/decode round trip.
func FuzzDecodeBundle(f *testing.F) {
	f.Add(EncodeBundle(nil, nil))
	f.Add(EncodeBundle([]byte("SNAP"), [][]byte{[]byte("r1"), {}}))
	f.Add([]byte{bundleMagic, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, recs, err := DecodeBundle(b)
		if err != nil {
			return
		}
		snap2, recs2, err := DecodeBundle(EncodeBundle(snap, recs))
		if err != nil {
			t.Fatalf("re-encoded bundle fails decode: %v", err)
		}
		if !bytes.Equal(snap, snap2) || len(recs) != len(recs2) {
			t.Fatalf("round trip changed bundle: %x", b)
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}
