package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Group is the shard-wide variant of Store: every co-resident node's
// records land in ONE shared write-ahead log, so a drain that touches N
// nodes costs one fsync instead of N. Per-node state is still separable
// — each member keeps its own snapshot file and its live WAL tail is
// tracked in memory — so Bundle and Destroy work per node exactly as
// they do against private stores.
//
// Layout. The group directory holds one live log generation
// gwal-<G> (Store framing: [len u32le][crc32 u32le][payload]) and a
// nodes/<id>/ subdirectory per member containing its latest snapshot
// snap-<K> ([crc32 u32le][payload], written atomically via rename).
// Record payloads are multiplexed:
//
//	kind u8  idlen uvarint  id  rest
//
// kind 0 (data): rest is one opaque engine record for node id.
// kind 1 (mark): rest is a snapshot generation uvarint — records for id
// earlier in the log are subsumed by nodes/<id>/snap-<gen>. Generation
// 0 is a tombstone: the node was destroyed and must not resurrect.
//
// Rolling. Because each member's live tail (records since its last
// mark) is retained in memory, truncating the shared log is a rewrite:
// when it outgrows its threshold, a fresh generation is written holding
// only the current marks and tails, and the old file is deleted.
//
// Commit. Commits are leader–follower: concurrent committers write
// their framed batches under the group lock, then one caller fsyncs for
// every batch written so far while the rest wait on its result — the
// group-commit collapse this type exists for.
type Group struct {
	dir  string
	opts Options

	mu       sync.Mutex
	synced   *sync.Cond // broadcast when a leader finishes an fsync
	gen      uint64
	wal      *os.File
	walBytes int64
	pending  []byte // framed records not yet written
	members  map[string]*groupMember
	lastSync time.Time
	closed   bool

	writeSeq uint64 // commit batches written to the log file
	syncSeq  uint64 // highest batch covered by a completed fsync
	syncing  bool   // a leader's fsync is in flight
	commits  uint64
	syncs    uint64
}

// groupMember is one node's slice of the shared log.
type groupMember struct {
	id      string
	snapGen uint64   // latest snapshot generation; 0 = none yet
	tail    [][]byte // records appended since the last snapshot mark
	tailLen int64    // framed bytes those records cost the shared log
}

const (
	gwalPrefix = "gwal-"
	grpData    = 0 // payload kind: engine record
	grpMark    = 1 // payload kind: snapshot mark / tombstone
)

// OpenGroup opens (creating if needed) the shared store rooted at dir
// and replays the live generation, rebuilding every member's in-memory
// tail. Recovered state is handed out per node by Attach.
func OpenGroup(dir string, opts Options) (*Group, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "nodes"), 0o755); err != nil {
		return nil, err
	}
	gen, err := latestGroupGen(dir)
	if err != nil {
		return nil, err
	}
	if gen == 0 {
		gen = 1
	}
	f, err := os.OpenFile(filepath.Join(dir, genName(gwalPrefix, gen)),
		os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	records, good, truncated, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if truncated {
		if err := f.Truncate(good); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, err
	}
	g := &Group{dir: dir, opts: opts, gen: gen, wal: f, walBytes: good,
		members: make(map[string]*groupMember)}
	g.synced = sync.NewCond(&g.mu)
	var tombs []string
	for _, rec := range records {
		kind, id, rest, err := splitGroupRecord(rec)
		if err != nil {
			continue // unreachable past the CRC, but never poison recovery
		}
		m := g.members[id]
		if m == nil {
			m = &groupMember{id: id}
			g.members[id] = m
		}
		switch kind {
		case grpData:
			m.tail = append(m.tail, rest)
			m.tailLen += frameCost(rec)
		case grpMark:
			snapGen, _ := binary.Uvarint(rest)
			if snapGen == 0 { // tombstone
				delete(g.members, id)
				tombs = append(tombs, id)
				continue
			}
			m.snapGen = snapGen
			m.tail = nil
			m.tailLen = 0
		}
	}
	for _, id := range tombs {
		os.RemoveAll(g.nodeDir(id))
	}
	g.removeStale()
	return g, nil
}

// frameCost is the shared-log footprint of one framed record.
func frameCost(payload []byte) int64 { return 8 + int64(len(payload)) }

func latestGroupGen(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var best uint64
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), gwalPrefix); ok && g > best {
			best = g
		}
	}
	return best, nil
}

// removeStale deletes log generations older than the live one and
// abandoned temp files, best-effort (crash debris from a roll).
func (g *Group) removeStale() {
	ents, err := os.ReadDir(g.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if gen, ok := parseGen(name, gwalPrefix); ok && gen < g.gen {
			os.Remove(filepath.Join(g.dir, name))
		} else if filepath.Ext(name) == ".tmp" {
			os.Remove(filepath.Join(g.dir, name))
		}
	}
}

func (g *Group) nodeDir(id string) string {
	return filepath.Join(g.dir, "nodes", encodeNodeDir(id))
}

// splitGroupRecord parses the multiplex header off one shared-log
// payload.
func splitGroupRecord(rec []byte) (kind byte, id string, rest []byte, err error) {
	if len(rec) < 2 {
		return 0, "", nil, fmt.Errorf("durable: short group record")
	}
	kind = rec[0]
	n, k := binary.Uvarint(rec[1:])
	if k <= 0 || n > uint64(len(rec)-1-k) {
		return 0, "", nil, fmt.Errorf("durable: corrupt group record id")
	}
	id = string(rec[1+k : 1+k+int(n)])
	return kind, id, rec[1+k+int(n):], nil
}

// appendLocked frames one multiplexed record into the pending batch
// and, for data records, mirrors it into the member's in-memory tail.
func (g *Group) appendLocked(m *groupMember, kind byte, rest []byte) error {
	payload := make([]byte, 0, 1+10+len(m.id)+len(rest))
	payload = append(payload, kind)
	payload = binary.AppendUvarint(payload, uint64(len(m.id)))
	payload = append(payload, m.id...)
	payload = append(payload, rest...)
	if len(payload) > maxRecord {
		return fmt.Errorf("durable: record of %d bytes exceeds limit", len(rest))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	g.pending = append(g.pending, hdr[:]...)
	g.pending = append(g.pending, payload...)
	if kind == grpData {
		m.tail = append(m.tail, payload[len(payload)-len(rest):])
		m.tailLen += frameCost(payload)
	}
	return nil
}

// Commit writes every appended record to the shared log as one batch
// and syncs per the configured policy. Concurrent commits collapse:
// whichever caller reaches the fsync first covers all batches written
// before it started, and the others wait for that result instead of
// issuing their own.
func (g *Group) Commit() error { return g.commit(false) }

func (g *Group) commit(forceSync bool) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("durable: group closed")
	}
	if len(g.pending) > 0 {
		if _, err := g.wal.Write(g.pending); err != nil {
			g.mu.Unlock()
			return err
		}
		g.walBytes += int64(len(g.pending))
		g.pending = g.pending[:0]
		g.writeSeq++
		g.commits++
	}
	sync := forceSync
	switch g.opts.Sync {
	case SyncCommit:
		sync = true
	case SyncInterval:
		if time.Since(g.lastSync) >= g.opts.SyncEvery {
			sync = true
		}
	}
	if !sync || g.writeSeq == g.syncSeq {
		g.mu.Unlock()
		return nil
	}
	upto := g.writeSeq
	for g.syncSeq < upto && g.syncing {
		g.synced.Wait()
	}
	if g.syncSeq >= upto { // a leader's fsync covered our batch
		g.mu.Unlock()
		return nil
	}
	g.syncing = true
	g.mu.Unlock()
	err := g.wal.Sync() // off-lock: followers queue, writers proceed
	g.mu.Lock()
	g.syncing = false
	if err == nil {
		g.syncs++
		g.lastSync = time.Now()
		if upto > g.syncSeq {
			g.syncSeq = upto
		}
	}
	g.synced.Broadcast()
	g.mu.Unlock()
	return err
}

// Commits returns the number of commit batches written to the shared
// log; Syncs the number of fsyncs issued against it. The fsync-per-
// drain collapse is Syncs growing by one while member stores would have
// grown by the member count.
func (g *Group) Commits() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commits
}

// Syncs returns the number of fsyncs issued against the shared log.
func (g *Group) Syncs() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.syncs
}

// WALBytes returns the committed size of the live shared generation.
func (g *Group) WALBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.walBytes + int64(len(g.pending))
}

// rollThresholdLocked is the shared-log size past which Snapshot also
// rewrites the log: generous enough that rolls stay rare even with many
// members, bounded so the log cannot grow without limit.
func (g *Group) rollThresholdLocked() int64 {
	if g.opts.SnapshotBytes < 0 {
		return -1
	}
	return g.opts.SnapshotBytes * int64(len(g.members)+1)
}

// rollLocked rewrites the live log into the next generation holding
// only the current snapshot marks and in-memory tails, then deletes the
// old file. Pending records must have been committed first.
func (g *Group) rollLocked() error {
	next := g.gen + 1
	path := filepath.Join(g.dir, genName(gwalPrefix, next))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	old, oldBytes := g.wal, g.walBytes
	g.wal, g.walBytes, g.gen = f, 0, next
	for _, m := range g.members {
		tail := m.tail
		m.tail, m.tailLen = nil, 0
		if m.snapGen > 0 {
			var mark [10]byte
			if err := g.appendLocked(m, grpMark, mark[:binary.PutUvarint(mark[:], m.snapGen)]); err != nil {
				return err
			}
		}
		for _, rec := range tail {
			if err := g.appendLocked(m, grpData, rec); err != nil {
				return err
			}
		}
	}
	if len(g.pending) > 0 {
		if _, err := f.Write(g.pending); err != nil {
			// Restore the old generation: it is still complete on disk.
			g.wal, g.walBytes, g.gen = old, oldBytes, g.gen-1
			f.Close()
			os.Remove(path)
			return err
		}
		g.walBytes += int64(len(g.pending))
		g.pending = g.pending[:0]
		g.writeSeq++
	}
	if err := f.Sync(); err != nil {
		g.wal, g.walBytes, g.gen = old, oldBytes, g.gen-1
		f.Close()
		os.Remove(path)
		return err
	}
	g.syncs++
	g.syncSeq = g.writeSeq
	if err := syncDir(g.dir); err != nil {
		return err
	}
	old.Close()
	os.Remove(filepath.Join(g.dir, genName(gwalPrefix, g.gen-1)))
	return nil
}

// Close flushes and fsyncs outstanding records and releases the log.
func (g *Group) Close() error {
	err := g.commit(true)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	if cerr := g.wal.Close(); err == nil {
		err = cerr
	}
	g.closed = true
	return err
}

// Members returns the ids recovery found in the shared log (attached or
// not), for callers that restart every persisted node.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := make([]string, 0, len(g.members))
	for id := range g.members {
		ids = append(ids, id)
	}
	return ids
}

// Attach binds one node's slice of the group, returning its per-node
// store view plus whatever a previous incarnation persisted for it.
func (g *Group) Attach(id string) (*GroupStore, Recovered, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, Recovered{}, fmt.Errorf("durable: group closed")
	}
	m := g.members[id]
	if m == nil {
		m = &groupMember{id: id}
		g.members[id] = m
	}
	var rec Recovered
	if m.snapGen > 0 {
		snap, err := readSnapshot(filepath.Join(g.nodeDir(id), genName(snapPrefix, m.snapGen)))
		if err != nil {
			return nil, Recovered{}, err
		}
		rec.Snapshot = snap
	}
	if len(m.tail) > 0 {
		rec.Records = make([][]byte, len(m.tail))
		copy(rec.Records, m.tail)
	}
	return &GroupStore{g: g, m: m}, rec, nil
}

// GroupStore is one member's view of a Group — the same Append/Commit/
// Snapshot/Bundle surface as a private Store, multiplexed onto the
// shared log so commits coalesce into shard-wide fsyncs.
type GroupStore struct {
	g *Group
	m *groupMember
}

// Append buffers one record for the next group Commit. The payload is
// copied.
func (s *GroupStore) Append(payload []byte) error {
	g := s.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("durable: group closed")
	}
	return g.appendLocked(s.m, grpData, payload)
}

// Commit commits the whole group: this member's records ride the same
// batch and fsync as every other member's.
func (s *GroupStore) Commit() error { return s.g.Commit() }

// Commits reports the group's commit batches (shared across members).
func (s *GroupStore) Commits() uint64 { return s.g.Commits() }

// Syncs reports the group's fsync count (shared across members).
func (s *GroupStore) Syncs() uint64 { return s.g.Syncs() }

// WALBytes reports this member's share of the live log: the framed cost
// of its tail.
func (s *GroupStore) WALBytes() int64 {
	g := s.g
	g.mu.Lock()
	defer g.mu.Unlock()
	return s.m.tailLen
}

// ShouldSnapshot reports whether this member's tail has outgrown the
// per-node snapshot threshold.
func (s *GroupStore) ShouldSnapshot() bool {
	if s.g.opts.SnapshotBytes < 0 {
		return false
	}
	return s.WALBytes() >= s.g.opts.SnapshotBytes
}

// Snapshot persists a full-state blob for this member and truncates its
// slice of the shared log: the snapshot file is written atomically, a
// mark record supersedes the member's earlier records, and the member's
// in-memory tail resets. When the shared log itself has outgrown its
// threshold it is rolled to a fresh generation.
func (s *GroupStore) Snapshot(state []byte) error {
	g, m := s.g, s.m
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("durable: group closed")
	}
	dir := g.nodeDir(m.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	next := m.snapGen + 1
	path := filepath.Join(dir, genName(snapPrefix, next))
	if err := writeSnapshotFile(path, state); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	old := m.snapGen
	m.snapGen = next
	m.tail, m.tailLen = nil, 0
	var mark [10]byte
	if err := g.appendLocked(m, grpMark, mark[:binary.PutUvarint(mark[:], next)]); err != nil {
		return err
	}
	// The mark must be durable before the old snapshot disappears,
	// otherwise a crash could recover pre-snapshot records against a
	// missing file. Rolling achieves the same durably and also truncates.
	var err error
	if t := g.rollThresholdLocked(); t >= 0 && g.walBytes+int64(len(g.pending)) >= t {
		err = g.rollLocked()
	} else {
		err = g.commitAndSyncLocked()
	}
	if err != nil {
		return err
	}
	if old > 0 {
		os.Remove(filepath.Join(dir, genName(snapPrefix, old)))
	}
	return nil
}

// commitAndSyncLocked flushes pending records and fsyncs inline (lock
// held) — used on the snapshot/destroy paths where ordering against
// file deletions matters more than commit latency.
func (g *Group) commitAndSyncLocked() error {
	if len(g.pending) > 0 {
		if _, err := g.wal.Write(g.pending); err != nil {
			return err
		}
		g.walBytes += int64(len(g.pending))
		g.pending = g.pending[:0]
		g.writeSeq++
		g.commits++
	}
	if g.writeSeq == g.syncSeq {
		return nil
	}
	if err := g.wal.Sync(); err != nil {
		return err
	}
	g.syncs++
	g.lastSync = time.Now()
	g.syncSeq = g.writeSeq
	return nil
}

// Bundle flushes pending records and packages this member's snapshot
// plus live tail as one migratable blob (same format as Store.Bundle).
func (s *GroupStore) Bundle() ([]byte, error) {
	g, m := s.g, s.m
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("durable: group closed")
	}
	if err := g.commitAndSyncLocked(); err != nil {
		return nil, err
	}
	var snap []byte
	if m.snapGen > 0 {
		b, err := readSnapshot(filepath.Join(g.nodeDir(m.id), genName(snapPrefix, m.snapGen)))
		if err != nil {
			return nil, err
		}
		snap = b
	}
	records := make([][]byte, len(m.tail))
	for i, r := range m.tail {
		records[i] = append([]byte(nil), r...)
	}
	return EncodeBundle(snap, records), nil
}

// Close detaches the member without touching its persisted state; the
// shared log stays open until Group.Close.
func (s *GroupStore) Close() error { return s.g.Commit() }

// Destroy removes the member's persisted state: a durable tombstone
// mark in the shared log (so recovery never resurrects it) followed by
// deletion of its snapshot directory.
func (s *GroupStore) Destroy() error {
	g, m := s.g, s.m
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("durable: group closed")
	}
	m.tail, m.tailLen, m.snapGen = nil, 0, 0
	var mark [10]byte
	if err := g.appendLocked(m, grpMark, mark[:binary.PutUvarint(mark[:], 0)]); err != nil {
		return err
	}
	if err := g.commitAndSyncLocked(); err != nil {
		return err
	}
	delete(g.members, m.id)
	return os.RemoveAll(g.nodeDir(m.id))
}

// writeSnapshotFile writes a [crc][payload] snapshot atomically via
// tmp + fsync + rename.
func writeSnapshotFile(path string, state []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(state))
	if _, err = f.Write(crc[:]); err == nil {
		_, err = f.Write(state)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// parseGen extracts the generation number from a prefixed file name.
func parseGen(name, prefix string) (uint64, bool) {
	if len(name) != len(prefix)+16 || name[:len(prefix)] != prefix {
		return 0, false
	}
	var g uint64
	for i := len(prefix); i < len(name); i++ {
		c := name[i]
		switch {
		case c >= '0' && c <= '9':
			g = g<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			g = g<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return g, g != 0
}

// encodeNodeDir makes a node id filesystem-safe. Ids in this codebase
// are short tokens; anything risky is hex-escaped.
func encodeNodeDir(id string) string {
	safe := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.') {
			safe = false
			break
		}
	}
	if safe && id != "" && id != "." && id != ".." {
		return id
	}
	return fmt.Sprintf("x%x", id)
}
