package val

import (
	"fmt"
	"strings"
)

// Tuple is a fact: a predicate name plus a row of field values. Tuples are
// immutable after construction; engine bookkeeping (timestamps, derivation
// counts) lives in the storage layer, not here.
type Tuple struct {
	Pred   string
	Fields []Value
}

// NewTuple builds a tuple for predicate pred with the given fields.
func NewTuple(pred string, fields ...Value) Tuple {
	return Tuple{Pred: pred, Fields: fields}
}

// Arity returns the number of fields.
func (t Tuple) Arity() int { return len(t.Fields) }

// Loc returns the location specifier (first field) as an address. It
// panics if the tuple is empty or the first field is not an address;
// planner checks guarantee this never happens for well-formed programs.
func (t Tuple) Loc() string { return t.Fields[0].Addr() }

// Equal reports whether two tuples have the same predicate and fields.
// Tuples resolved through the same Interner share field storage, so the
// comparison short-circuits to a pointer check on the hot path.
func (t Tuple) Equal(o Tuple) bool {
	if t.Pred != o.Pred || len(t.Fields) != len(o.Fields) {
		return false
	}
	if len(t.Fields) > 0 && &t.Fields[0] == &o.Fields[0] {
		return true // same canonical storage (values are immutable)
	}
	for i := range t.Fields {
		if !t.Fields[i].Equal(o.Fields[i]) {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit hash of the whole tuple, consistent with Equal.
// It allocates nothing; the storage layer uses it (plus Equal on
// collision) in place of string keys.
func (t Tuple) Hash() uint64 {
	h := NewHash().AddString(t.Pred)
	for i := range t.Fields {
		h = h.AddValue(t.Fields[i])
	}
	return h.Sum()
}

// HashOn hashes the projection of t onto cols, consistent with
// HashValues over the same field sequence: a lookup hashing its bound
// values lands in the bucket of the tuples whose projection matches.
// Out-of-range columns fold a distinct marker.
func (t Tuple) HashOn(cols []int) uint64 {
	h := NewHash()
	for _, c := range cols {
		if c < 0 || c >= len(t.Fields) {
			h = h.AddOOB()
			continue
		}
		h = h.AddValue(t.Fields[c])
	}
	return h.Sum()
}

// Compare orders tuples: by predicate, then arity, then fieldwise
// Value.Compare. It is a total order consistent with Equal and is the
// deterministic ordering used by Table.Tuples (replacing sorted string
// keys).
func (t Tuple) Compare(o Tuple) int {
	if c := strings.Compare(t.Pred, o.Pred); c != 0 {
		return c
	}
	if c := len(t.Fields) - len(o.Fields); c != 0 {
		if c < 0 {
			return -1
		}
		return 1
	}
	for i := range t.Fields {
		if c := t.Fields[i].Compare(o.Fields[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Key returns a canonical string key for the tuple, usable as a map key.
// Two tuples have the same Key iff they are Equal. It formats every
// field, so it is for display, tracing, and deterministic test output
// only — the storage layer keys by Hash instead.
func (t Tuple) Key() string {
	var b strings.Builder
	b.WriteString(t.Pred)
	b.WriteByte('(')
	for i := range t.Fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Fields[i].String())
	}
	b.WriteByte(')')
	return b.String()
}

// KeyOn returns a canonical string key over the given field positions,
// used for primary-key and join-index lookups.
func (t Tuple) KeyOn(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		if c < 0 || c >= len(t.Fields) {
			b.WriteString("<oob>")
			continue
		}
		b.WriteString(t.Fields[c].String())
	}
	return b.String()
}

// Project returns a new tuple for predicate pred holding the fields of t
// at positions cols, in order.
func (t Tuple) Project(pred string, cols []int) Tuple {
	fs := make([]Value, len(cols))
	for i, c := range cols {
		fs[i] = t.Fields[c]
	}
	return Tuple{Pred: pred, Fields: fs}
}

// String renders the tuple in NDlog fact syntax.
func (t Tuple) String() string { return t.Key() }

// Clone returns a tuple with a copied field slice (values themselves are
// immutable and shared).
func (t Tuple) Clone() Tuple {
	fs := make([]Value, len(t.Fields))
	copy(fs, t.Fields)
	return Tuple{Pred: t.Pred, Fields: fs}
}

// GoString implements fmt.GoStringer for readable test failures.
func (t Tuple) GoString() string { return fmt.Sprintf("val.Tuple%s", t.Key()) }
