package val

import (
	"math/rand"
	"testing"
)

func TestEncodeRoundTrip(t *testing.T) {
	vals := []Value{
		Nil,
		NewAddr("node-17"),
		NewInt(0), NewInt(-1), NewInt(1 << 40),
		NewFloat(0), NewFloat(-2.5), NewFloat(1e300),
		NewString(""), NewString("hello world"),
		NewBool(true), NewBool(false),
		NewList(),
		NewList(NewInt(1), NewAddr("a"), NewList(NewString("deep"))),
	}
	for _, v := range vals {
		b := AppendValue(nil, v)
		got, n, err := DecodeValue(b)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(b) {
			t.Errorf("DecodeValue(%v) consumed %d of %d bytes", v, n, len(b))
		}
		if !got.Equal(v) {
			t.Errorf("roundtrip %v -> %v", v, got)
		}
		if sz := valueSize(v); sz != len(b) {
			t.Errorf("valueSize(%v) = %d, encoded %d", v, sz, len(b))
		}
	}
}

func TestTupleEncodeRoundTrip(t *testing.T) {
	tp := NewTuple("path",
		NewAddr("a"), NewAddr("d"), NewAddr("b"),
		NewList(NewAddr("a"), NewAddr("b"), NewAddr("d")), NewInt(6))
	b := AppendTuple(nil, tp)
	got, n, err := DecodeTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("consumed %d of %d", n, len(b))
	}
	if !got.Equal(tp) {
		t.Errorf("roundtrip %v -> %v", tp, got)
	}
	if sz := EncodedSize(tp); sz != len(b) {
		t.Errorf("EncodedSize = %d, encoded %d", sz, len(b))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{byte(KindInt)},          // missing varint
		{byte(KindAddr), 5, 'a'}, // truncated string
		{byte(KindBool)},         // missing payload
		{byte(KindFloat)},        // missing payload
		{99},                     // unknown kind
	}
	for _, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(%v) succeeded on corrupt input", b)
		}
	}
	if _, _, err := DecodeTuple([]byte{10}); err == nil {
		t.Error("DecodeTuple succeeded on truncated predicate")
	}
	if _, _, err := DecodeTuple(appendString(nil, "p")); err == nil {
		t.Error("DecodeTuple succeeded without field count")
	}
	// Valid pred + count but truncated field.
	b := appendString(nil, "p")
	b = append(b, 1) // one field
	if _, _, err := DecodeTuple(b); err == nil {
		t.Error("DecodeTuple succeeded with missing field")
	}
}

func TestPropertyEncodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		v := randomValue(r, 3)
		b := AppendValue(nil, v)
		got, n, err := DecodeValue(b)
		if err != nil || n != len(b) || !got.Equal(v) {
			t.Fatalf("roundtrip failed for %v: got %v, n=%d/%d, err=%v", v, got, n, len(b), err)
		}
		if valueSize(v) != len(b) {
			t.Fatalf("valueSize mismatch for %v", v)
		}
	}
}

func BenchmarkEncodeTuple(b *testing.B) {
	tp := NewTuple("path",
		NewAddr("a"), NewAddr("d"), NewAddr("b"),
		NewList(NewAddr("a"), NewAddr("b"), NewAddr("d")), NewInt(6))
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTuple(buf[:0], tp)
	}
}

func BenchmarkTupleHash(b *testing.B) {
	tp := NewTuple("path",
		NewAddr("a"), NewAddr("d"), NewAddr("b"),
		NewList(NewAddr("a"), NewAddr("b"), NewAddr("d")), NewInt(6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tp.Hash()
	}
}
