package val

import (
	"bytes"
	"testing"
)

func internTuples() []Tuple {
	return []Tuple{
		NewTuple("path", NewAddr("a"), NewAddr("d"),
			NewList(NewAddr("a"), NewAddr("b"), NewAddr("d")), NewFloat(2.5)),
		NewTuple("path", NewAddr("a"), NewAddr("d"),
			NewList(NewAddr("a"), NewAddr("c"), NewAddr("d")), NewFloat(3.5)),
		NewTuple("link", NewAddr("a"), NewAddr("b"), NewInt(1)),
		NewTuple("q", NewAddr("x"), NewString("hello"), NewBool(true), Nil),
	}
}

// sameStorage reports whether two tuples are the same canonical object:
// same predicate and shared field storage.
func sameStorage(a, b Tuple) bool {
	if a.Pred != b.Pred || len(a.Fields) != len(b.Fields) {
		return false
	}
	return len(a.Fields) == 0 || &a.Fields[0] == &b.Fields[0]
}

func TestInternCanonicalIdentity(t *testing.T) {
	in := NewInterner()
	for _, tp := range internTuples() {
		c1 := in.Intern(tp)
		// A structurally-equal tuple with fresh storage must resolve to
		// the identical canonical object.
		c2 := in.Intern(tp.Clone())
		if !sameStorage(c1, c2) {
			t.Errorf("Intern(%v): clones did not unify onto one canonical tuple", tp)
		}
		c3 := in.InternFields(tp.Pred, append([]Value(nil), tp.Fields...))
		if !sameStorage(c1, c3) {
			t.Errorf("InternFields(%v): did not resolve to the canonical tuple", tp)
		}
		r := in.Resolve(tp.Pred, tp.Fields)
		if !sameStorage(c1, r) {
			t.Errorf("Resolve(%v): did not resolve to the canonical tuple", tp)
		}
	}
}

func TestResolveDoesNotRetain(t *testing.T) {
	in := NewInterner()
	tp := internTuples()[0]
	r1 := in.Resolve(tp.Pred, tp.Fields)
	r2 := in.Resolve(tp.Pred, tp.Fields)
	if sameStorage(r1, r2) {
		t.Fatal("Resolve misses must not populate the pool")
	}
	if !r1.Equal(tp) || !r2.Equal(tp) {
		t.Fatal("Resolve miss must return a structural copy")
	}
	// After an explicit intern, Resolve returns the canonical copy.
	c := in.Intern(tp)
	if r := in.Resolve(tp.Pred, tp.Fields); !sameStorage(c, r) {
		t.Fatal("Resolve after Intern must hit the canonical tuple")
	}
}

// TestDecodeDoesNotAliasBuffer is the aliasing regression test: decode a
// tuple (plain and through an interner), scribble over the source
// buffer, and verify the decoded tuples are intact. Any string or list
// field retaining a view of the buffer fails this.
func TestDecodeDoesNotAliasBuffer(t *testing.T) {
	orig := NewTuple("path", NewAddr("node-one"), NewAddr("node-two"),
		NewList(NewAddr("node-one"), NewAddr("mid"), NewAddr("node-two")),
		NewString("metadata"), NewFloat(7.25))
	enc := AppendTuple(nil, orig)

	buf := append([]byte(nil), enc...)
	plain, n1, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterner()
	interned, n2, err := DecodeTupleIn(buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != len(enc) || n2 != len(enc) {
		t.Fatalf("consumed %d/%d bytes, want %d", n1, n2, len(enc))
	}

	// Scribble: simulate the datagram loop reusing its read buffer.
	for i := range buf {
		buf[i] = 0xFF
	}

	for name, got := range map[string]Tuple{"plain": plain, "interned": interned} {
		if !got.Equal(orig) {
			t.Errorf("%s decode corrupted by buffer reuse: %v", name, got)
		}
		if re := AppendTuple(nil, got); !bytes.Equal(re, enc) {
			t.Errorf("%s decode does not re-encode identically after scribble", name)
		}
	}

	// Same property when the tuple resolves to an already-interned
	// canonical: decode from a second buffer, scribble it, and check the
	// canonical tuple (shared with earlier references) is untouched.
	in.Intern(interned)
	buf2 := append([]byte(nil), enc...)
	canon, _, err := DecodeTupleIn(buf2, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf2 {
		buf2[i] = 0xAA
	}
	if !canon.Equal(orig) {
		t.Errorf("canonical tuple corrupted by buffer reuse: %v", canon)
	}
}

// TestInternHashCollision forces structurally-distinct tuples (and
// lists) into one 64-bit bucket via a truncating key map and asserts
// the interner keeps them apart — hash-equal must never be treated as
// equal.
func TestInternHashCollision(t *testing.T) {
	in := newInterner(DefaultInternLimit, func(h uint64) uint64 { return 42 })
	tps := internTuples()
	canon := make([]Tuple, len(tps))
	for i, tp := range tps {
		canon[i] = in.Intern(tp)
	}
	for i, tp := range tps {
		got := in.Intern(tp.Clone())
		if !sameStorage(canon[i], got) {
			t.Errorf("collision bucket lost tuple %v", tp)
		}
		for j := range tps {
			if i != j && sameStorage(canon[j], got) {
				t.Errorf("collision bucket unified distinct tuples %v and %v", tp, tps[j])
			}
		}
	}
	// Lists collide into one bucket too.
	l1 := []Value{NewAddr("a"), NewAddr("b")}
	l2 := []Value{NewInt(1), NewInt(2), NewInt(3)}
	c1 := in.InternValues(l1)
	c2 := in.InternValues(l2)
	if !ValuesEqual(c1, l1) || !ValuesEqual(c2, l2) {
		t.Fatal("colliding lists corrupted")
	}
	if r := in.InternValues(append([]Value(nil), l1...)); &r[0] != &c1[0] {
		t.Error("collision bucket lost list l1")
	}
	if r := in.InternValues(append([]Value(nil), l2...)); &r[0] != &c2[0] {
		t.Error("collision bucket lost list l2")
	}
}

// TestInternGenerationBound pins the two-generation aging: the pool
// never exceeds two generations of the limit, and hot entries survive a
// flip through promotion.
func TestInternGenerationBound(t *testing.T) {
	const limit = 8
	in := newInterner(limit, nil)
	hot := in.Intern(NewTuple("hot", NewAddr("x"), NewList(NewInt(0))))
	for i := 0; i < 10*limit; i++ {
		in.Intern(NewTuple("cold", NewInt(int64(i)), NewList(NewInt(int64(i)))))
		// Touch the hot tuple every round so promotion keeps it alive.
		if got := in.Intern(NewTuple("hot", NewAddr("x"), NewList(NewInt(0)))); !sameStorage(hot, got) {
			t.Fatalf("hot tuple lost identity after %d cold interns", i)
		}
		if in.Len() > 2*limit+2 {
			t.Fatalf("pool exceeded two generations: %d entries", in.Len())
		}
	}
	// Reset is always safe and empties the pool.
	in.Reset()
	if in.Len() != 0 {
		t.Fatalf("Reset left %d entries", in.Len())
	}
	if got := in.Intern(NewTuple("hot", NewAddr("x"), NewList(NewInt(0)))); sameStorage(hot, got) {
		t.Fatal("Reset must mint a fresh canonical")
	}
}

// TestInternWorthy pins the pooling policy boundary.
func TestInternWorthy(t *testing.T) {
	if InternWorthy([]Value{NewAddr("a"), NewInt(1)}) {
		t.Error("small flat tuple should not be intern-worthy")
	}
	if !InternWorthy([]Value{NewList(NewAddr("a"))}) {
		t.Error("list-bearing tuple should be intern-worthy")
	}
	wide := []Value{NewInt(1), NewInt(2), NewInt(3), NewInt(4), NewInt(5), NewInt(6)}
	if !InternWorthy(wide) {
		t.Error("wide tuple should be intern-worthy")
	}
}

// TestDecodeTupleInResolvesCanonical verifies the decode path returns
// the canonical copy for pooled tuples and fresh storage otherwise.
func TestDecodeTupleInResolvesCanonical(t *testing.T) {
	tp := internTuples()[0]
	enc := AppendTuple(nil, tp)
	in := NewInterner()

	d1, _, err := DecodeTupleIn(enc, in)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(tp) {
		t.Fatalf("decode mismatch: %v", d1)
	}
	c := in.Intern(d1)
	d2, _, err := DecodeTupleIn(enc, in)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStorage(c, d2) {
		t.Error("decode of a pooled tuple must resolve to its canonical copy")
	}
}
